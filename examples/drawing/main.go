// Drawing gallery: reproduces the paper's Figures 1, 7, and 8 on the
// barth5 analogue — the same mesh drawn by ParHDE, ParHDE with random
// pivots, PHDE, PivotMDS, the full spectral method, and a 10-hop zoom.
//
// Run with: go run ./examples/drawing [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pivot"
	"repro/internal/render"
)

func main() {
	outDir := flag.String("out", "drawings", "output directory for PNG files")
	side := flag.Int("side", 120, "mesh side length (vertices before holes)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	g := gen.PlateWithHoles(*side, *side)
	fmt.Printf("plate-with-holes mesh (barth5 analogue): n=%d m=%d\n", g.NumV, g.NumEdges())

	type method struct {
		name string
		f    func() (*core.Layout, error)
	}
	methods := []method{
		{"parhde", func() (*core.Layout, error) {
			l, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"parhde_random_pivots", func() (*core.Layout, error) {
			l, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, Pivots: pivot.Random})
			return l, err
		}},
		{"phde", func() (*core.Layout, error) {
			l, _, err := core.PHDE(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"pivotmds", func() (*core.Layout, error) {
			l, _, err := core.PivotMDS(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"spectral", func() (*core.Layout, error) {
			pw := eigen.WalkPower(g, 2, eigen.PowerOptions{Seed: 1, MaxIters: 5000, Tol: 1e-9})
			return &core.Layout{Coords: pw.Vectors}, nil
		}},
	}
	for _, m := range methods {
		start := time.Now()
		lay, err := m.f()
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		elapsed := time.Since(start)
		q := core.Evaluate(g, lay)
		path := filepath.Join(*outDir, m.name+".png")
		if err := save(path, g, lay); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.3fs  Hall %.5f  -> %s\n", m.name, elapsed.Seconds(), q.HallRatio, path)
	}

	// Figure 8: the interactive zoom.
	center := int32(g.NumV / 2)
	z, err := core.Zoom(g, center, 10, core.Options{Subspace: 20, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*outDir, "zoom.png")
	if err := save(path, z.Subgraph, z.Layout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s n=%d m=%d -> %s\n", "zoom(10 hops)", z.Subgraph.NumV, z.Subgraph.NumEdges(), path)
}

func save(path string, g *graph.CSR, lay *core.Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.Draw(f, g, lay, render.Options{Size: 900})
}
