// Multilevel: the paper's §5 future-work direction — run ParHDE inside a
// coarsen/solve/prolong V-cycle and compare against the single-level
// algorithm, then polish the result with a few sparse-stress sweeps
// (§4.5.4's majorization seeded by the HDE layout).
//
// Run with: go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stress"
)

func main() {
	g := gen.PlateWithHoles(150, 150)
	fmt.Printf("plate mesh: n=%d m=%d\n", g.NumV, g.NumEdges())

	// Single-level reference.
	start := time.Now()
	single, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tSingle := time.Since(start)
	fmt.Printf("single-level ParHDE: %.3fs, Hall %.5f\n",
		tSingle.Seconds(), core.Evaluate(g, single).HallRatio)

	// Multilevel: the subspace machinery runs only on the coarse graph.
	start = time.Now()
	multi, rep, err := core.MultilevelParHDE(g, core.MultilevelOptions{
		Base:    core.Options{Subspace: 50, Seed: 1},
		Coarsen: coarsen.Options{MinVertices: 500, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	tMulti := time.Since(start)
	fmt.Printf("multilevel ParHDE:   %.3fs, Hall %.5f, hierarchy %v (coarsest m=%d)\n",
		tMulti.Seconds(), core.Evaluate(g, multi).HallRatio, rep.Levels, rep.CoarsestEdges)
	fmt.Printf("speedup %.1fx\n", float64(tSingle)/float64(tMulti))

	// Optional polish: HDE-seeded sparse stress majorization.
	start = time.Now()
	res, err := stress.Sparse(g, multi, stress.Options{MaxIters: 15, Pivots: 16, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse stress polish: %.3fs, stress %.4f -> %.4f over %d iterations\n",
		time.Since(start).Seconds(), res.History[0], res.Stress, res.Iterations)
	fmt.Printf("final quality: Hall %.5f\n", core.Evaluate(g, multi).HallRatio)
}
