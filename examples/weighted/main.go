// Weighted: the §3.3 extension — layout of weighted graphs via the
// Δ-stepping SSSP phase, with the §4.4 comparison of unit vs random
// integer weights.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A road-network analogue: the high-diameter weighted case of §4.4.
	base := gen.Road(150, 150, 7)
	fmt.Printf("road analogue: n=%d m=%d\n", base.NumV, base.NumEdges())

	run := func(name string, g *graph.CSR, delta float64) *core.Layout {
		opt := core.Options{Subspace: 10, Seed: 1, Delta: delta}
		start := time.Now()
		lay, rep, err := core.ParHDE(g, opt)
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		fmt.Printf("%-28s %8.3fs  (traversal %v, DOrtho %v, TripleProd %v)\n",
			name, time.Since(start).Seconds(),
			rep.Breakdown.BFSTraversal.Round(time.Millisecond),
			rep.Breakdown.DOrtho.Round(time.Millisecond),
			rep.Breakdown.TripleProd().Round(time.Millisecond))
		return lay
	}

	// 1. Unweighted BFS baseline.
	layBFS := run("unweighted (parallel BFS)", base, 0)

	// 2. Unit weights through the SSSP path: same distances, so the layout
	// quality must match the BFS run (the paper measured it 18% slower).
	layUnit := run("unit weights (Δ-stepping)", base.WithUnitWeights(), 1)

	// 3. Random integer weights 1..100: genuinely different metric.
	weighted := gen.WithRandomWeights(base, 100, 9)
	layW := run("random weights (Δ=heur)", weighted, 0)
	run("random weights (Δ=25)", weighted, 25)

	qBFS := core.Evaluate(base, layBFS)
	qUnit := core.Evaluate(base, layUnit)
	qW := core.Evaluate(weighted, layW)
	fmt.Printf("\nHall ratios: bfs %.5f, unit-weight sssp %.5f (should match), weighted %.5f\n",
		qBFS.HallRatio, qUnit.HallRatio, qW.HallRatio)
}
