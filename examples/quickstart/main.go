// Quickstart: build a graph, lay it out with ParHDE, inspect the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	// 1. Get a graph. Generators cover the paper's test families; real
	// graphs load through graph.ReadEdgeList / graph.ReadMatrixMarket and
	// graph.FromEdges, which applies the standard preprocessing
	// (symmetrize, de-loop, de-duplicate, largest component).
	g := gen.PlateWithHoles(80, 80)
	fmt.Printf("graph: n=%d, m=%d, max degree %d\n", g.NumV, g.NumEdges(), g.MaxDegree())

	// 2. Lay it out. Options zero-value gives the paper defaults (s=10,
	// k-centers pivots, Modified Gram-Schmidt, D-orthogonalization).
	layout, report, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The report carries the phase breakdown the paper charts.
	fmt.Println("timing:", report.Breakdown.String())
	fmt.Printf("pivots used: %d (first few: %v)\n", len(report.Sources), report.Sources[:3])
	fmt.Printf("distance vectors kept after D-orthogonalization: %d (dropped %d)\n",
		report.KeptColumns, report.DroppedColumns)
	fmt.Printf("projected eigenvalue estimates: %.5f, %.5f\n",
		report.Eigenvalues[0], report.Eigenvalues[1])

	// 4. Coordinates are two length-n vectors.
	x, y := layout.X(), layout.Y()
	fmt.Printf("vertex 0 at (%.4f, %.4f)\n", x[0], y[0])

	// 5. Quality: the Equation-1 energy ratio, compared against a random
	// placement.
	q := core.Evaluate(g, layout)
	r := core.Evaluate(g, core.RandomLayout(g.NumV, 2, 7))
	fmt.Printf("Hall energy ratio: ParHDE %.5f vs random %.5f (lower is better)\n",
		q.HallRatio, r.HallRatio)
}
