// Clustering: the §4.5.4 visualization use-case — detect communities with
// label propagation, lay the graph out with ParHDE, and draw intra-cluster
// edges in per-cluster colors with inter-cluster edges in red, "shedding
// insights into the inner workings of partitioning/clustering algorithms".
//
// Run with: go run ./examples/clustering [-out clusters.png] [-svg clusters.svg]
package main

import (
	"flag"
	"fmt"
	"image/color"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/render"
)

func main() {
	outPNG := flag.String("out", "clusters.png", "output PNG (empty = skip)")
	outSVG := flag.String("svg", "", "output SVG (empty = skip)")
	flag.Parse()

	// A web-crawl analogue has real community structure (hosts).
	g := gen.WebGraph(20000, 14, 21)
	fmt.Printf("web graph: n=%d m=%d\n", g.NumV, g.NumEdges())

	labels, communities := cluster.LabelPropagation(g, cluster.Options{Seed: 3})
	fmt.Printf("label propagation: %d communities, modularity %.3f\n",
		communities, cluster.Modularity(g, labels))

	lay, rep, err := core.ParHDE(g, core.Options{Subspace: 30, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout:", rep.Breakdown.String())

	palette := []color.RGBA{
		{R: 220, G: 40, B: 40, A: 255}, // inter-cluster edges
		{R: 60, G: 60, B: 200, A: 255},
		{R: 40, G: 160, B: 80, A: 255},
		{R: 150, G: 100, B: 220, A: 255},
		{R: 200, G: 150, B: 40, A: 255},
		{R: 50, G: 160, B: 180, A: 255},
	}
	opts := render.Options{
		Size: 900,
		EdgeClass: func(u, v int32) int {
			if labels[u] != labels[v] {
				return 0
			}
			return 1 + int(labels[u])%(len(palette)-1)
		},
		Palette: palette,
	}
	if *outPNG != "" {
		f, err := os.Create(*outPNG)
		if err != nil {
			log.Fatal(err)
		}
		if err := render.Draw(f, g, lay, opts); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("drawing ->", *outPNG)
	}
	if *outSVG != "" {
		f, err := os.Create(*outSVG)
		if err != nil {
			log.Fatal(err)
		}
		if err := render.DrawSVG(f, g, lay, opts); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("drawing ->", *outSVG)
	}
}
