// Partition: the §4.5.4 extension — use ParHDE coordinates for geometric
// graph partitioning (replacing the force-directed layout of ScalaPart)
// and visualize the result by coloring intra- vs inter-partition edges.
//
// Run with: go run ./examples/partition [-out partition.png]
package main

import (
	"flag"
	"fmt"
	"image/color"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/render"
)

func main() {
	out := flag.String("out", "partition.png", "output drawing")
	levels := flag.Int("levels", 3, "bisection levels (2^levels parts)")
	flag.Parse()

	// A power-grid-like graph: the kind geometric partitioners target.
	g := gen.PowerGrid(80, 80, 11)
	fmt.Printf("power-grid analogue: n=%d m=%d\n", g.NumV, g.NumEdges())

	lay, rep, err := core.ParHDE(g, core.Options{Subspace: 30, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout:", rep.Breakdown.String())

	part, err := partition.CoordinateBisection(lay, *levels)
	if err != nil {
		log.Fatal(err)
	}
	st := partition.EvaluateCut(g, part)
	fmt.Printf("%d-way geometric partition: cut %d edges (%.1f%% of m), imbalance %.3f\n",
		st.Parts, st.CutEdges, 100*st.CutRatio, st.Imbalance)

	// Baseline: the same bisection on random coordinates.
	rndPart, err := partition.CoordinateBisection(core.RandomLayout(g.NumV, 2, 5), *levels)
	if err != nil {
		log.Fatal(err)
	}
	rst := partition.EvaluateCut(g, rndPart)
	fmt.Printf("random-coordinates baseline: cut %d edges (%.1f%% of m) — %.1fx worse\n",
		rst.CutEdges, 100*rst.CutRatio, float64(rst.CutEdges)/float64(st.CutEdges))

	// Visualization: intra-partition edges in part colors, inter-partition
	// edges in red — the paper's clustering-insight rendering.
	palette := []color.RGBA{
		{R: 220, G: 40, B: 40, A: 255}, // class 0: cut edges
		{R: 60, G: 60, B: 200, A: 255}, // intra colors cycle below
		{R: 40, G: 160, B: 80, A: 255},
		{R: 150, G: 100, B: 220, A: 255},
		{R: 200, G: 150, B: 40, A: 255},
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	err = render.Draw(f, g, lay, render.Options{
		Size: 900,
		EdgeClass: func(u, v int32) int {
			if part[u] != part[v] {
				return 0 // cut edge
			}
			return 1 + int(part[u])%(len(palette)-1)
		},
		Palette: palette,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("drawing ->", *out)
}
