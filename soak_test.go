package repro_bench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ortho"
	"repro/internal/pivot"
)

// TestSoakRandomizedPipelines hammers the whole stack with randomized
// graph families × option combinations, checking the invariants that must
// hold for every successful run: finite coordinates, kept-column
// accounting, phase-time accounting, and quality better than random. It
// is the catch-all for option-interaction bugs that targeted tests miss.
func TestSoakRandomizedPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rand.New(rand.NewSource(20260706))
	families := []func(seed uint64) *graph.CSR{
		func(s uint64) *graph.CSR { return gen.Urand(9, 6+int(s%8), s) },
		func(s uint64) *graph.CSR { return gen.Kron(9, 8, s) },
		func(s uint64) *graph.CSR { return gen.WebGraph(2000+int(s%2000), 10, s) },
		func(s uint64) *graph.CSR { return gen.Grid2D(15+int(s%20), 15+int(s%25)) },
		func(s uint64) *graph.CSR { return gen.Road(30+int(s%20), 30+int(s%20), s) },
		func(s uint64) *graph.CSR { return gen.PlateWithHoles(20+int(s%15), 20+int(s%15)) },
		func(s uint64) *graph.CSR { return gen.BarabasiAlbert(1500+int(s%1000), 3, s) },
		func(s uint64) *graph.CSR { return gen.WattsStrogatz(1500+int(s%1000), 6, 0.1, s) },
		func(s uint64) *graph.CSR { return gen.RandomGeometric(2000, 0.05, s) },
		func(s uint64) *graph.CSR {
			return gen.WithRandomWeights(gen.Grid2D(20+int(s%10), 20), 1+int(s%20), s)
		},
	}
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		seed := uint64(r.Int63())
		g := families[trial%len(families)](seed)
		opt := core.Options{
			Subspace:   3 + r.Intn(20),
			Seed:       seed,
			PlainOrtho: r.Intn(4) == 0,
			Dims:       2 + r.Intn(2),
		}
		if !g.Weighted() {
			opt.Pivots = []pivot.Strategy{pivot.KCenters, pivot.Random, pivot.RandomMS}[r.Intn(3)]
			if r.Intn(3) == 0 && opt.Pivots == pivot.KCenters {
				opt.Coupled = true
			}
		}
		if r.Intn(2) == 0 {
			opt.Ortho = ortho.CGS
			opt.Coupled = false
		}
		if r.Intn(3) == 0 {
			opt.LS = core.LSTiled
		}
		lay, rep, err := core.ParHDE(g, opt)
		if err != nil {
			// The only acceptable failure at these sizes: too few
			// independent columns for the requested dimensionality.
			if rep == nil && opt.Subspace <= opt.Dims+1 {
				continue
			}
			t.Fatalf("trial %d (family %d, opts %+v): %v", trial, trial%len(families), opt, err)
		}
		if lay.NumVertices() != g.NumV || lay.Dims() != opt.Dims {
			t.Fatalf("trial %d: layout shape %dx%d", trial, lay.NumVertices(), lay.Dims())
		}
		for _, v := range lay.Coords.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite coordinate", trial)
			}
		}
		if rep.KeptColumns < opt.Dims || rep.KeptColumns+rep.DroppedColumns > opt.Subspace {
			t.Fatalf("trial %d: column accounting kept=%d dropped=%d s=%d",
				trial, rep.KeptColumns, rep.DroppedColumns, opt.Subspace)
		}
		bd := rep.Breakdown
		if bd.BFS()+bd.DOrtho+bd.TripleProd()+bd.Other() > bd.Total {
			t.Fatalf("trial %d: phase times exceed total", trial)
		}
		q := core.Evaluate(g, lay)
		rq := core.Evaluate(g, core.RandomLayout(g.NumV, opt.Dims, seed^1))
		if !(q.HallRatio < rq.HallRatio) {
			t.Fatalf("trial %d: quality %.4g not below random %.4g", trial, q.HallRatio, rq.HallRatio)
		}
	}
}
