// Command graphinfo loads a graph, runs the paper's preprocessing
// pipeline, and reports Table 2-style statistics plus the Figure 2
// adjacency-gap histogram.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/fibbin"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "", "input graph file (required)")
		format = flag.String("format", "edges", "input format: edges, mtx, bin")
		gaps   = flag.Bool("gaps", false, "print the Fibonacci-binned gap histogram")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var g *graph.CSR
	switch *format {
	case "bin":
		g, err = graph.ReadBinary(bufio.NewReader(f))
	case "edges", "mtx":
		var n int
		var edges []graph.Edge
		if *format == "edges" {
			n, edges, err = graph.ReadEdgeList(bufio.NewReader(f))
		} else {
			n, edges, err = graph.ReadMatrixMarket(bufio.NewReader(f))
		}
		if err != nil {
			return err
		}
		g, err = graph.FromEdges(n, edges, graph.BuildOptions{})
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	gs := graph.GapSummary(g)
	fmt.Printf("vertices (n):      %d\n", g.NumV)
	fmt.Printf("edges (m):         %d\n", g.NumEdges())
	fmt.Printf("max degree:        %d\n", g.MaxDegree())
	fmt.Printf("avg degree:        %.2f\n", float64(2*g.NumEdges())/float64(g.NumV))
	fmt.Printf("gap count (2m-n'): %d\n", gs.Count)
	fmt.Printf("mean gap:          %.1f\n", gs.Mean)
	if *gaps {
		h := fibbin.New(int64(g.NumV))
		graph.Gaps(g, h.Add)
		fmt.Println("\ngap histogram (Fibonacci bins, 'upper-bound count'):")
		if err := h.Fprint(os.Stdout, "gaps"); err != nil {
			return err
		}
	}
	return nil
}
