// Command gengraph generates the synthetic test graphs used in the
// evaluation and writes them as edge lists or binary CSR files, so large
// inputs are built once and reused across benchmark runs.
//
// Usage:
//
//	gengraph -kind kron -scale 20 -degree 16 -o kron20.bin -format bin
//	gengraph -kind plate -rows 200 -cols 200 -o plate.txt
//
// Kinds: urand, kron, chunglu, web, smallworld, ba, rgg, grid, road, mesh3d,
// powergrid, county, plate, path, cycle, star, tree.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind   = flag.String("kind", "urand", "generator kind")
		scale  = flag.Int("scale", 16, "log2 vertex count (urand, kron)")
		n      = flag.Int("n", 100000, "vertex count (chunglu, web, path, cycle, star, tree)")
		degree = flag.Int("degree", 16, "average degree")
		gamma  = flag.Float64("gamma", 2.1, "power-law exponent (chunglu)")
		rows   = flag.Int("rows", 300, "rows (grid, road, powergrid, county, plate)")
		cols   = flag.Int("cols", 300, "cols (grid, road, powergrid, county, plate)")
		dim3   = flag.Int("z", 24, "third dimension (mesh3d)")
		seed   = flag.Uint64("seed", 1, "random seed")
		maxW   = flag.Int("weights", 0, "attach random integer weights in [1,maxW] (0 = unweighted)")
		out    = flag.String("o", "", "output path (required)")
		format = flag.String("format", "edges", "output format: edges, bin")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("missing -o")
	}

	var g *graph.CSR
	switch *kind {
	case "urand":
		g = gen.Urand(*scale, *degree, *seed)
	case "kron":
		g = gen.Kron(*scale, *degree, *seed)
	case "chunglu":
		g = gen.ChungLu(*n, *degree, *gamma, *seed)
	case "web":
		g = gen.WebGraph(*n, *degree, *seed)
	case "smallworld":
		g = gen.WattsStrogatz(*n, *degree, 0.1, *seed)
	case "ba":
		g = gen.BarabasiAlbert(*n, *degree/2, *seed)
	case "rgg":
		g = gen.RandomGeometric(*n, 0.03, *seed)
	case "grid":
		g = gen.Grid2D(*rows, *cols)
	case "road":
		g = gen.Road(*rows, *cols, *seed)
	case "mesh3d":
		g = gen.Mesh3D(*rows, *cols, *dim3)
	case "powergrid":
		g = gen.PowerGrid(*rows, *cols, *seed)
	case "county":
		g = gen.CountyMesh(*rows, *cols, *seed)
	case "plate":
		g = gen.PlateWithHoles(*rows, *cols)
	case "path":
		g = gen.Path(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "star":
		g = gen.Star(*n)
	case "tree":
		g = gen.BinaryTree(*n)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *maxW > 0 {
		g = gen.WithRandomWeights(g, *maxW, *seed^0x5bd1e995)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	switch *format {
	case "edges":
		err = graph.WriteEdgeList(w, g)
	case "bin":
		err = graph.WriteBinary(w, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("%s: n=%d m=%d weighted=%v -> %s\n", *kind, g.NumV, g.NumEdges(), g.Weighted(), *out)
	return nil
}
