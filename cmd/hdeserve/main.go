// Command hdeserve runs the §4.5.2 browser-based interactive layout
// viewer: it lays out a startup graph with ParHDE, then serves renders
// of it — plus a whole catalog of further graphs — over HTTP.
//
// Beyond the single-graph viewer endpoints, the server exposes a REST
// API for production-style use: POST /graphs uploads more graphs into a
// byte-budgeted catalog, and POST /jobs runs layouts asynchronously on a
// bounded worker pool with cancellation (DELETE /jobs/{id}) and
// per-phase progress (GET /jobs/{id}). Graphs are mutable in place:
// PATCH /graphs/{name} applies edge/vertex mutation batches and queues a
// warm-start refinement of the previous layout, whose coordinate deltas
// stream to GET /graphs/{name}/stream subscribers as versioned
// Server-Sent Events. See the README for curl examples.
//
// The HTTP server is hardened for real traffic: read/write/idle
// timeouts (so slow clients cannot pin connections), a byte-budget
// render cache, Prometheus-style /metrics plus /healthz, optional
// /debug/pprof/, and graceful shutdown on SIGINT/SIGTERM that drains
// in-flight requests and stops the job workers.
//
// Usage:
//
//	hdeserve -in graph.txt -addr :8080
//	hdeserve -demo            # built-in plate mesh, no input file
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file (edge list)")
		format = flag.String("format", "edges", "input format: edges, mtx, bin")
		demo   = flag.Bool("demo", false, "serve the built-in plate-with-holes demo mesh")
		s      = flag.Int("s", 50, "subspace dimension")
		addr   = flag.String("addr", "localhost:8080", "listen address")

		cacheBytes = flag.Int64("cache-bytes", server.DefaultCacheBytes,
			"render cache budget in bytes (negative = unbounded)")
		maxRenders = flag.Int("max-renders", 0,
			"max concurrently executing renders (0 = GOMAXPROCS)")
		pprofOn = flag.Bool("pprof", false, "expose /debug/pprof/ endpoints")
		quiet   = flag.Bool("quiet", false, "disable the per-request access log")

		workers = flag.Int("workers", 0,
			"layout job worker pool size (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0,
			"bounded job queue depth; further submissions get HTTP 429 (0 = default)")
		jobsTTL = flag.Duration("jobs-ttl", 0,
			"how long finished jobs stay queryable (0 = default, negative = forever)")
		dataDir = flag.String("data-dir", "",
			"directory to persist completed job results (empty = off)")
		catalogBytes = flag.Int64("catalog-bytes", 0,
			"graph catalog byte budget; LRU-evicts unpinned graphs (0 = default, negative = unbounded)")
		maxUpload = flag.Int64("max-upload", 0,
			"per-request graph upload size cap in bytes (0 = default)")
		rebuildThreshold = flag.Int("rebuild-threshold", 0,
			"pending mutated edges before a dynamic graph's CSR is rebuilt (0 = default, negative = rebuild only on refresh)")

		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second,
			"how long graceful shutdown waits for in-flight requests")
	)
	flag.Parse()

	var g *graph.CSR
	switch {
	case *demo:
		g = gen.PlateWithHoles(120, 120)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.Read(f, *format, graph.BuildOptions{})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := server.Config{
		CacheBytes:           *cacheBytes,
		MaxConcurrentRenders: *maxRenders,
		EnablePprof:          *pprofOn,
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		JobsTTL:              *jobsTTL,
		DataDir:              *dataDir,
		CatalogBytes:         *catalogBytes,
		MaxUploadBytes:       *maxUpload,
		RebuildThreshold:     *rebuildThreshold,
	}
	if !*quiet {
		cfg.AccessLog = log.New(os.Stderr, "access ", log.LstdFlags)
	}
	srv, err := server.NewWithConfig(g, core.Options{Subspace: *s, Seed: 1}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving layout of n=%d m=%d on http://%s/ (layout took %v)",
		g.NumV, g.NumEdges(), *addr, srv.Report().Breakdown.Total.Round(time.Millisecond))

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received; draining in-flight requests (up to %v)", *drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		srv.Close() // cancel queued/running layout jobs, stop the workers
	}
}
