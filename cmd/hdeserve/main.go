// Command hdeserve runs the §4.5.2 browser-based interactive layout
// viewer: it lays out a graph with ParHDE once, then serves the global
// drawing plus on-demand zoomed neighborhood layouts over HTTP.
//
// Usage:
//
//	hdeserve -in graph.txt -addr :8080
//	hdeserve -demo            # built-in plate mesh, no input file
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file (edge list)")
		format = flag.String("format", "edges", "input format: edges, mtx, bin")
		demo   = flag.Bool("demo", false, "serve the built-in plate-with-holes demo mesh")
		s      = flag.Int("s", 50, "subspace dimension")
		addr   = flag.String("addr", "localhost:8080", "listen address")
	)
	flag.Parse()

	var g *graph.CSR
	switch {
	case *demo:
		g = gen.PlateWithHoles(120, 120)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		switch *format {
		case "bin":
			g, err = graph.ReadBinary(bufio.NewReader(f))
		case "edges", "mtx":
			var n int
			var edges []graph.Edge
			if *format == "edges" {
				n, edges, err = graph.ReadEdgeList(bufio.NewReader(f))
			} else {
				n, edges, err = graph.ReadMatrixMarket(bufio.NewReader(f))
			}
			if err == nil {
				g, err = graph.FromEdges(n, edges, graph.BuildOptions{})
			}
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	srv, err := server.New(g, core.Options{Subspace: *s, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving layout of n=%d m=%d on http://%s/", g.NumV, g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
