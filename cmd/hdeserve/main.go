// Command hdeserve runs the §4.5.2 browser-based interactive layout
// viewer: it lays out a startup graph with ParHDE, then serves renders
// of it — plus a whole catalog of further graphs — over HTTP.
//
// Beyond the single-graph viewer endpoints, the server exposes a REST
// API for production-style use: POST /graphs uploads more graphs into a
// byte-budgeted catalog, and POST /jobs runs layouts asynchronously on a
// bounded worker pool with cancellation (DELETE /jobs/{id}) and
// per-phase progress (GET /jobs/{id}). Graphs are mutable in place:
// PATCH /graphs/{name} applies edge/vertex mutation batches and queues a
// warm-start refinement of the previous layout, whose coordinate deltas
// stream to GET /graphs/{name}/stream subscribers as versioned
// Server-Sent Events. See API.md for the full endpoint reference.
//
// The same binary scales out (-mode): "single" is the classic one
// process doing everything; "worker" is one shard of a fleet, with a
// stable -worker-id that prefixes its job ids and a -data-dir it can
// recover its catalog and interrupted jobs from after a crash;
// "router" is the stateless front end that consistently hashes graph
// names across -peers, replicates uploads, retries idempotent reads on
// sibling replicas, and caches hot rendered tiles with ETag
// revalidation. OPERATIONS.md covers the deployment topologies.
//
// The HTTP server is hardened for real traffic: read/write/idle
// timeouts (so slow clients cannot pin connections), a byte-budget
// render cache, Prometheus-style /metrics plus /healthz, optional
// /debug/pprof/, and graceful shutdown on SIGINT/SIGTERM that drains
// in-flight requests and stops the job workers.
//
// Usage:
//
//	hdeserve -in graph.txt -addr :8080
//	hdeserve -demo            # built-in plate mesh, no input file
//	hdeserve -mode worker -worker-id w1 -demo -addr :8081 -data-dir /var/lib/hde/w1
//	hdeserve -mode router -peers http://h1:8081,http://h2:8081 -addr :8080
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var opt options
	fs := newFlagSet(&opt)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}

	switch opt.mode {
	case "single", "worker":
		runServer(fs, opt)
	case "router":
		runRouter(opt)
	default:
		log.Fatalf("unknown -mode %q (have single, worker, router)", opt.mode)
	}
}

// runServer is the single/worker path: load a startup graph, lay it
// out, serve. The only difference between the two modes is a worker's
// stable identity (job-id prefix + response header + /shardz).
func runServer(fs *flag.FlagSet, opt options) {
	if opt.mode == "worker" && opt.workerID == "" {
		log.Fatal("-mode worker requires -worker-id")
	}
	if opt.mode == "single" && opt.workerID != "" {
		log.Fatal("-worker-id only applies to -mode worker")
	}

	var g *graph.CSR
	switch {
	case opt.demo:
		g = gen.PlateWithHoles(120, 120)
	case opt.in != "":
		f, err := os.Open(opt.in)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		g, rerr = graph.Read(f, opt.format, graph.BuildOptions{})
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}

	cfg := server.Config{
		WorkerID:             opt.workerID,
		CacheBytes:           opt.cacheBytes,
		MaxConcurrentRenders: opt.maxRenders,
		EnablePprof:          opt.pprofOn,
		Workers:              opt.workers,
		QueueDepth:           opt.queueDepth,
		JobsTTL:              opt.jobsTTL,
		DataDir:              opt.dataDir,
		CatalogBytes:         opt.catalogBytes,
		MaxUploadBytes:       opt.maxUpload,
		RebuildThreshold:     opt.rebuildThreshold,
	}
	if !opt.quiet {
		cfg.AccessLog = log.New(os.Stderr, "access ", log.LstdFlags)
	}
	srv, err := server.NewWithConfig(g, core.Options{Subspace: opt.subspace, Seed: 1}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	role := ""
	if opt.workerID != "" {
		role = " as worker " + opt.workerID
	}
	log.Printf("serving layout of n=%d m=%d on http://%s/%s (layout took %v)",
		g.NumV, g.NumEdges(), opt.addr, role,
		srv.Report().Breakdown.Total.Round(time.Millisecond))
	serveUntilSignal(opt, srv.Handler(), srv.Close)
}

// runRouter is the stateless front-end path: no graph, no layout, just
// the ring, the fleet, and the tile cache.
func runRouter(opt options) {
	var peers []string
	for _, p := range strings.Split(opt.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	if len(peers) == 0 {
		log.Fatal("-mode router requires -peers (comma-separated worker URLs)")
	}
	cfg := shard.Config{
		Peers:          peers,
		Replication:    opt.replication,
		VirtualNodes:   opt.virtualNodes,
		HealthInterval: opt.healthInterval,
		CacheBytes:     opt.routerCache,
		MaxUploadBytes: opt.maxUpload,
	}
	if !opt.quiet {
		cfg.Logger = log.New(os.Stderr, "access ", log.LstdFlags)
	}
	rt, err := shard.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing for %d workers (replication %d) on http://%s/",
		len(peers), opt.replication, opt.addr)
	serveUntilSignal(opt, rt.Handler(), rt.Close)
}

// serveUntilSignal runs the hardened HTTP server until SIGINT/SIGTERM,
// then drains in-flight requests and calls shutdown (job-engine close
// for a worker, health-loop stop for a router).
func serveUntilSignal(opt options, h http.Handler, shutdown func()) {
	httpSrv := &http.Server{
		Addr:              opt.addr,
		Handler:           h,
		ReadTimeout:       opt.readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      opt.writeTimeout,
		IdleTimeout:       opt.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received; draining in-flight requests (up to %v)", opt.drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		shutdown()
	}
}
