package main

import (
	"flag"
	"time"

	"repro/internal/server"
)

// options holds every hdeserve flag. Keeping the full set in one struct
// (and registering it in one place, newFlagSet) lets the docs
// cross-check test enumerate the live flags and hold OPERATIONS.md to
// exactly that list.
type options struct {
	// topology
	mode           string
	workerID       string
	peers          string
	replication    int
	virtualNodes   int
	healthInterval time.Duration
	routerCache    int64

	// startup graph
	in       string
	format   string
	demo     bool
	subspace int

	// serving
	addr       string
	cacheBytes int64
	maxRenders int
	pprofOn    bool
	quiet      bool

	// jobs + catalog
	workers          int
	queueDepth       int
	jobsTTL          time.Duration
	dataDir          string
	catalogBytes     int64
	maxUpload        int64
	rebuildThreshold int

	// HTTP hardening
	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	drainTimeout time.Duration
}

// newFlagSet registers every hdeserve flag onto a fresh FlagSet bound to
// opt. This is the single authoritative flag table: main parses it, and
// the OPERATIONS.md cross-check test walks it.
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("hdeserve", flag.ContinueOnError)

	fs.StringVar(&opt.mode, "mode", "single",
		"process role: single (router+worker in one), worker (one shard of a fleet), router (stateless front end)")
	fs.StringVar(&opt.workerID, "worker-id", "",
		"stable worker identity; prefixes job ids and the X-Hdeserve-Worker header (required in -mode worker)")
	fs.StringVar(&opt.peers, "peers", "",
		"comma-separated worker base URLs the router forwards to (required in -mode router)")
	fs.IntVar(&opt.replication, "replication", 2,
		"how many workers hold each graph; reads fall back across them")
	fs.IntVar(&opt.virtualNodes, "virtual-nodes", 0,
		"virtual nodes per worker on the consistent-hash ring (0 = default 128)")
	fs.DurationVar(&opt.healthInterval, "health-interval", 2*time.Second,
		"router worker health-probe interval")
	fs.Int64Var(&opt.routerCache, "router-cache-bytes", 64<<20,
		"router hot-tile cache budget in bytes (negative = disabled)")

	fs.StringVar(&opt.in, "in", "", "input graph file (edge list)")
	fs.StringVar(&opt.format, "format", "edges", "input format: edges, mtx, bin")
	fs.BoolVar(&opt.demo, "demo", false, "serve the built-in plate-with-holes demo mesh")
	fs.IntVar(&opt.subspace, "s", 50, "subspace dimension")
	fs.StringVar(&opt.addr, "addr", "localhost:8080", "listen address")

	fs.Int64Var(&opt.cacheBytes, "cache-bytes", server.DefaultCacheBytes,
		"render cache budget in bytes (negative = unbounded)")
	fs.IntVar(&opt.maxRenders, "max-renders", 0,
		"max concurrently executing renders (0 = GOMAXPROCS)")
	fs.BoolVar(&opt.pprofOn, "pprof", false, "expose /debug/pprof/ endpoints")
	fs.BoolVar(&opt.quiet, "quiet", false, "disable the per-request access log")

	fs.IntVar(&opt.workers, "workers", 0,
		"layout job worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&opt.queueDepth, "queue-depth", 0,
		"bounded job queue depth; further submissions get HTTP 429 (0 = default)")
	fs.DurationVar(&opt.jobsTTL, "jobs-ttl", 0,
		"how long finished jobs stay queryable (0 = default, negative = forever)")
	fs.StringVar(&opt.dataDir, "data-dir", "",
		"directory to persist job results, submission intents, and graph snapshots; a restarted worker recovers from it (empty = off)")
	fs.Int64Var(&opt.catalogBytes, "catalog-bytes", 0,
		"graph catalog byte budget; LRU-evicts unpinned graphs (0 = default, negative = unbounded)")
	fs.Int64Var(&opt.maxUpload, "max-upload", 0,
		"per-request graph upload size cap in bytes (0 = default)")
	fs.IntVar(&opt.rebuildThreshold, "rebuild-threshold", 0,
		"pending mutated edges before a dynamic graph's CSR is rebuilt (0 = default, negative = rebuild only on refresh)")

	fs.DurationVar(&opt.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout")
	fs.DurationVar(&opt.writeTimeout, "write-timeout", 60*time.Second, "HTTP write timeout")
	fs.DurationVar(&opt.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
	fs.DurationVar(&opt.drainTimeout, "drain-timeout", 15*time.Second,
		"how long graceful shutdown waits for in-flight requests")

	return fs
}
