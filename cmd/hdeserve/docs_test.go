package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// operationsFlagRows extracts the flag names documented in
// OPERATIONS.md's "## Flag reference" table (first-column code spans of
// the form `-name`).
func operationsFlagRows(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	doc := string(raw)
	header := "## Flag reference"
	i := strings.Index(doc, header)
	if i < 0 {
		t.Fatalf("section %q not found in OPERATIONS.md", header)
	}
	body := doc[i+len(header):]
	if j := strings.Index(body, "\n## "); j >= 0 {
		body = body[:j]
	}
	var out []string
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `-") {
			continue
		}
		cell := strings.TrimPrefix(line, "| `-")
		end := strings.Index(cell, "`")
		if end < 0 {
			t.Fatalf("unterminated code span in flag table row: %s", line)
		}
		out = append(out, cell[:end])
	}
	if len(out) == 0 {
		t.Fatal("no flag rows found under the Flag reference table")
	}
	return out
}

// TestOperationsDocFlagTableMatchesFlagSet holds OPERATIONS.md's flag
// reference to the binary's live flag set (newFlagSet), in both
// directions: a flag added without documentation fails, and a
// documented flag the binary no longer accepts fails.
func TestOperationsDocFlagTableMatchesFlagSet(t *testing.T) {
	documented := operationsFlagRows(t)
	docSet := make(map[string]bool)
	for _, name := range documented {
		if docSet[name] {
			t.Errorf("OPERATIONS.md documents -%s twice", name)
		}
		docSet[name] = true
	}

	var opt options
	live := make(map[string]bool)
	newFlagSet(&opt).VisitAll(func(f *flag.Flag) { live[f.Name] = true })

	for name := range live {
		if !docSet[name] {
			t.Errorf("flag -%s is registered but missing from OPERATIONS.md's Flag reference", name)
		}
	}
	for name := range docSet {
		if !live[name] {
			t.Errorf("OPERATIONS.md documents -%s which the binary does not register", name)
		}
	}
}
