// Command hdebench regenerates the paper's tables and figures on the
// synthetic analogue graphs. Run `hdebench -list` to see experiment ids;
// `hdebench -exp all` reproduces the complete evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		factor  = flag.Int("factor", 1, "dataset scale factor (edges grow ~linearly)")
		reps    = flag.Int("reps", 3, "timing repetitions (minimum reported)")
		s       = flag.Int("s", 10, "subspace dimension where not pinned by the experiment")
		outDir  = flag.String("out", "", "directory for PNG drawings (fig1/7/8)")
		threads = flag.Int("threads", 0, "max GOMAXPROCS for sweeps (0 = all cores)")
	)
	flag.Parse()
	if *list {
		for _, id := range exp.Names() {
			desc, _ := exp.Describe(id)
			fmt.Printf("%-8s %s\n", id, desc)
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := exp.Config{
		Factor:     *factor,
		Reps:       *reps,
		Subspace:   *s,
		OutDir:     *outDir,
		MaxThreads: *threads,
	}
	if err := exp.Run(*name, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hdebench:", err)
		os.Exit(1)
	}
}
