// Command hdebench regenerates the paper's tables and figures on the
// synthetic analogue graphs. Run `hdebench -list` to see experiment ids;
// `hdebench -exp all` reproduces the complete evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		factor  = flag.Int("factor", 1, "dataset scale factor (edges grow ~linearly)")
		reps    = flag.Int("reps", 3, "timing repetitions (minimum reported)")
		s       = flag.Int("s", 10, "subspace dimension where not pinned by the experiment")
		outDir  = flag.String("out", "", "directory for PNG drawings (fig1/7/8)")
		threads = flag.Int("threads", 0, "max GOMAXPROCS for sweeps (0 = all cores)")
		benchJS = flag.String("bench-json", "",
			"run the standard ParHDE perf suite and write a machine-readable BENCH_<date>.json to this directory")
		scaling = flag.String("scaling", "",
			"run the worker-budget scaling sweep and write BENCH_SCALING_<date>.json to this directory; exits nonzero if coordinates differ across budgets")
	)
	flag.Parse()
	if *list {
		for _, id := range exp.Names() {
			desc, _ := exp.Describe(id)
			fmt.Printf("%-8s %s\n", id, desc)
		}
		return
	}
	if *name == "" && *benchJS == "" && *scaling == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := exp.Config{
		Factor:     *factor,
		Reps:       *reps,
		Subspace:   *s,
		OutDir:     *outDir,
		MaxThreads: *threads,
	}
	if *name != "" {
		if err := exp.Run(*name, os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "hdebench:", err)
			os.Exit(1)
		}
	}
	if *benchJS != "" {
		rep, err := exp.Bench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdebench:", err)
			os.Exit(1)
		}
		path, err := exp.WriteBenchJSON(*benchJS, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d graphs)\n", path, len(rep.Entries))
	}
	if *scaling != "" {
		rep, err := exp.Scaling(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdebench:", err)
			os.Exit(1)
		}
		path, err := exp.WriteScalingJSON(*scaling, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d graphs, deterministic=%v)\n", path, len(rep.Graphs), rep.Deterministic)
		if !rep.Deterministic {
			fmt.Fprintln(os.Stderr, "hdebench: scaling sweep produced different coordinates across worker budgets")
			os.Exit(1)
		}
	}
}
