// Command parhde computes a 2-D layout of a graph with ParHDE (or one of
// its sibling algorithms) and writes coordinates and, optionally, a PNG
// drawing.
//
// Usage:
//
//	parhde -in graph.txt [-format edges|mtx|bin] [-algo parhde|phde|pivotmds|prior]
//	       [-s 50] [-pivots kcenters|random] [-ortho mgs|cgs] [-plain]
//	       [-png out.png] [-coords out.xy] [-refine N] [-zoom vertex -hops K]
//
// The input is preprocessed exactly as in the paper: symmetrized, self
// loops and parallel edges removed, largest connected component extracted.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ortho"
	"repro/internal/pivot"
	"repro/internal/render"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parhde:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input graph file (required)")
		format   = flag.String("format", "edges", "input format: edges, mtx, bin")
		algo     = flag.String("algo", "parhde", "algorithm: parhde, phde, pivotmds, prior, multilevel")
		s        = flag.Int("s", 50, "subspace dimension (number of pivots)")
		pivots   = flag.String("pivots", "kcenters", "pivot strategy: kcenters, random")
		orthoM   = flag.String("ortho", "mgs", "orthogonalization: mgs, cgs, mgs-l1")
		plain    = flag.Bool("plain", false, "plain orthogonalization instead of D-orthogonalization")
		weighted = flag.Bool("weighted", false, "keep edge weights and use Δ-stepping SSSP")
		delta    = flag.Float64("delta", 0, "Δ-stepping bucket width (0 = heuristic)")
		seed     = flag.Uint64("seed", 1, "random seed")
		pngOut   = flag.String("png", "", "write a PNG drawing to this path")
		svgOut   = flag.String("svg", "", "write an SVG drawing to this path")
		dotOut   = flag.String("dot", "", "write a Graphviz DOT file (pinned positions) to this path")
		coords   = flag.String("coords", "", "write vertex coordinates to this path")
		refine   = flag.Int("refine", 0, "centroid-refinement sweeps after layout")
		zoomV    = flag.Int("zoom", -1, "zoom: center vertex (-1 = no zoom)")
		hops     = flag.Int("hops", 10, "zoom: neighborhood radius in hops")
		quiet    = flag.Bool("q", false, "suppress the run report")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	g, err := loadGraph(*in, *format, *weighted)
	if err != nil {
		return err
	}
	opt := core.Options{
		Subspace: *s,
		Seed:     *seed,
		Delta:    *delta,
	}
	if *pivots == "random" {
		opt.Pivots = pivot.Random
	}
	switch *orthoM {
	case "cgs":
		opt.Ortho = ortho.CGS
	case "mgs-l1":
		opt.Ortho = ortho.MGSLevel1
	}
	opt.PlainOrtho = *plain

	if *zoomV >= 0 {
		z, err := core.Zoom(g, int32(*zoomV), *hops, opt)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("zoom: %d-hop neighborhood of %d: n=%d m=%d\n",
				*hops, *zoomV, z.Subgraph.NumV, z.Subgraph.NumEdges())
		}
		return emit(z.Subgraph, z.Layout, *pngOut, *svgOut, *dotOut, *coords)
	}

	var lay *core.Layout
	var rep *core.Report
	switch *algo {
	case "parhde":
		lay, rep, err = core.ParHDE(g, opt)
	case "phde":
		lay, rep, err = core.PHDE(g, opt)
	case "pivotmds":
		lay, rep, err = core.PivotMDS(g, opt)
	case "prior":
		lay, rep, err = core.Prior(g, opt)
	case "multilevel":
		var mrep *core.MultilevelReport
		lay, mrep, err = core.MultilevelParHDE(g, core.MultilevelOptions{Base: opt})
		if err == nil {
			rep = mrep.BaseReport
			if !*quiet {
				fmt.Printf("multilevel: hierarchy %v\n", mrep.Levels)
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if *refine > 0 {
		st := core.Refine(g, lay, *refine, 1e-9)
		if !*quiet {
			fmt.Printf("refine: %d sweeps, residual %.3g\n", st.Iterations, st.Residual)
		}
	}
	if !*quiet {
		fmt.Printf("graph: n=%d m=%d (largest component, relabeled)\n", g.NumV, g.NumEdges())
		fmt.Printf("%s: %s\n", *algo, rep.Breakdown.String())
		q := core.Evaluate(g, lay)
		fmt.Printf("quality: Hall ratio %.5f, mean edge length %.4f, edge CV %.3f\n",
			q.HallRatio, q.MeanEdgeLength, q.EdgeLengthCV)
	}
	return emit(g, lay, *pngOut, *svgOut, *dotOut, *coords)
}

func loadGraph(path, format string, weighted bool) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "bin" {
		return graph.ReadBinary(bufio.NewReader(f))
	}
	var n int
	var edges []graph.Edge
	switch format {
	case "edges":
		n, edges, err = graph.ReadEdgeList(bufio.NewReader(f))
	case "mtx":
		n, edges, err = graph.ReadMatrixMarket(bufio.NewReader(f))
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted})
}

func emit(g *graph.CSR, lay *core.Layout, pngOut, svgOut, dotOut, coordsOut string) error {
	save := func(path string, write func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := save(pngOut, func(f *os.File) error { return render.Draw(f, g, lay, render.Options{}) }); err != nil {
		return err
	}
	if err := save(svgOut, func(f *os.File) error { return render.DrawSVG(f, g, lay, render.Options{}) }); err != nil {
		return err
	}
	if err := save(dotOut, func(f *os.File) error { return render.WriteDOT(f, g, lay, 10) }); err != nil {
		return err
	}
	if coordsOut != "" {
		f, err := os.Create(coordsOut)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for i := 0; i < lay.NumVertices(); i++ {
			fmt.Fprintf(w, "%d %.10g %.10g\n", i, lay.X()[i], lay.Y()[i])
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
