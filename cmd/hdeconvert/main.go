// Command hdeconvert converts graphs between the repository's formats and
// applies the preprocessing transformations the evaluation uses: largest-
// component extraction, random vertex permutation (the §4.4 ordering
// experiment), weight attachment, and subgraph extraction.
//
// Usage:
//
//	hdeconvert -in web.txt -out web.mtx -to mtx
//	hdeconvert -in web.bin -from bin -out shuffled.bin -to bin -permute -seed 7
//	hdeconvert -in big.txt -out ball.txt -center 123 -hops 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hdeconvert:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input path (required)")
		out      = flag.String("out", "", "output path (required)")
		from     = flag.String("from", "edges", "input format: edges, mtx, bin")
		to       = flag.String("to", "edges", "output format: edges, mtx, bin")
		weighted = flag.Bool("weighted", false, "keep input edge weights")
		addW     = flag.Int("add-weights", 0, "attach random integer weights in [1,N] (0 = keep as-is)")
		permute  = flag.Bool("permute", false, "randomly permute vertex ids (destroys ordering locality)")
		center   = flag.Int("center", -1, "extract the k-hop neighborhood of this vertex")
		hops     = flag.Int("hops", 10, "neighborhood radius for -center")
		seed     = flag.Uint64("seed", 1, "random seed for -permute / -add-weights")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		return fmt.Errorf("missing -in or -out")
	}

	g, err := load(*in, *from, *weighted || *addW > 0)
	if err != nil {
		return err
	}
	if *addW > 0 {
		g = gen.WithRandomWeights(g.Unweighted(), *addW, *seed^0xdead)
	}
	if *center >= 0 {
		vs, err := graph.Neighborhood(g, int32(*center), *hops)
		if err != nil {
			return err
		}
		g, _, err = graph.InducedSubgraph(g, vs)
		if err != nil {
			return err
		}
	}
	if *permute {
		perm := graph.RandomPermutation(g.NumV, *seed)
		g, err = graph.Permute(g, perm)
		if err != nil {
			return err
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	switch *to {
	case "edges":
		err = graph.WriteEdgeList(w, g)
	case "mtx":
		err = graph.WriteMatrixMarket(w, g)
	case "bin":
		err = graph.WriteBinary(w, g)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	s := graph.Summarize(g)
	fmt.Printf("n=%d m=%d maxdeg=%d diam≈%d meangap=%.0f weighted=%v -> %s\n",
		s.N, s.M, s.MaxDegree, s.PseudoDiameter, s.MeanGap, g.Weighted(), *out)
	return nil
}

func load(path, format string, weighted bool) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "bin" {
		return graph.ReadBinary(bufio.NewReader(f))
	}
	var n int
	var edges []graph.Edge
	switch format {
	case "edges":
		n, edges, err = graph.ReadEdgeList(bufio.NewReader(f))
	case "mtx":
		n, edges, err = graph.ReadMatrixMarket(bufio.NewReader(f))
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted})
}
