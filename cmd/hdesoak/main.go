// Command hdesoak soak-tests a sharded hdeserve fleet end to end, with
// real processes: it starts a router and N workers from a built hdeserve
// binary, drives mixed upload/job/read traffic through the router,
// SIGKILLs one worker mid-run and restarts it on the same address and
// data directory, and verifies the zero-dropped-jobs invariant — every
// accepted submission ends as exactly one persisted record with no
// journaled intent left behind.
//
// It also measures scale-out: the same job batch runs against a 1-worker
// fleet and an N-worker fleet (each worker pinned to GOMAXPROCS=1, so a
// worker models one fixed-size box) and the jobs/sec ratio is reported.
// Results are written as JSON for CI artifacts and EXPERIMENTS.md.
//
// Usage:
//
//	go build -o /tmp/hdeserve ./cmd/hdeserve
//	go run ./cmd/hdesoak -bin /tmp/hdeserve -out soak_shard.json
//
// With -min-speedup X the run fails if the N-vs-1 throughput ratio falls
// below X — but only when the host has at least N CPUs; on smaller
// hosts the ratio is recorded and the gate is skipped.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

type options struct {
	bin        string
	workers    int
	jobs       int
	gridSide   int
	subspace   int
	basePort   int
	out        string
	minSpeedup float64
}

// proc is one fleet member: a real hdeserve process we can SIGKILL and
// restart with identical arguments.
type proc struct {
	name string
	args []string
	env  []string
	url  string
	cmd  *exec.Cmd
}

func (p *proc) start(bin string) error {
	p.cmd = exec.Command(bin, p.args...)
	p.cmd.Env = append(os.Environ(), p.env...)
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", p.name, err)
	}
	go p.cmd.Wait() // reap whenever it exits; we poll health, not the process
	return nil
}

func (p *proc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not healthy after %v", url, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fleet is a router plus its workers, with the temp data dirs that hold
// the durable state the invariants are checked against.
type fleet struct {
	router  *proc
	workers []*proc
	dirs    []string
}

func (f *fleet) stop() {
	if f.router != nil {
		f.router.kill()
	}
	for _, w := range f.workers {
		w.kill()
	}
}

// startFleet launches n workers (GOMAXPROCS=1 each — one worker models
// one fixed-size box) and a router with replication 1, so that exactly
// one persisted record per accepted job is the correct final count.
func startFleet(opt options, n int, tmp, label string) (*fleet, error) {
	// Pre-flight: every port must be free, or a stray process from an
	// earlier run would answer our health checks in the fleet's place.
	// The previous phase's SIGKILLed fleet can take a moment to release
	// its ports, so give each one a few seconds.
	for i := 0; i <= n; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", opt.basePort+i)
		deadline := time.Now().Add(10 * time.Second)
		for {
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				ln.Close()
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("port check %s: %w (stray hdeserve process?)", addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	f := &fleet{}
	var peers []string
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", opt.basePort+1+i)
		dir := filepath.Join(tmp, fmt.Sprintf("%s-w%d", label, i+1))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		w := &proc{
			name: fmt.Sprintf("w%d", i+1),
			url:  "http://" + addr,
			env:  []string{"GOMAXPROCS=1"},
			args: []string{
				"-mode", "worker", "-worker-id", fmt.Sprintf("w%d", i+1),
				"-demo", "-s", "8", "-addr", addr, "-data-dir", dir,
				"-workers", "1", "-queue-depth", "256", "-quiet",
			},
		}
		if err := w.start(opt.bin); err != nil {
			f.stop()
			return nil, err
		}
		f.workers = append(f.workers, w)
		f.dirs = append(f.dirs, dir)
		peers = append(peers, w.url)
	}
	raddr := fmt.Sprintf("127.0.0.1:%d", opt.basePort)
	f.router = &proc{
		name: "router",
		url:  "http://" + raddr,
		args: []string{
			"-mode", "router", "-addr", raddr, "-quiet",
			"-peers", strings.Join(peers, ","), "-replication", "1",
		},
	}
	if err := f.router.start(opt.bin); err != nil {
		f.stop()
		return nil, err
	}
	for _, w := range f.workers {
		if err := waitHealthy(w.url, 60*time.Second); err != nil {
			f.stop()
			return nil, err
		}
	}
	if err := waitHealthy(f.router.url, 30*time.Second); err != nil {
		f.stop()
		return nil, err
	}
	return f, nil
}

func post(url, ctype string, body []byte) (int, []byte, string, error) {
	resp, err := http.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Hdeserve-Worker"), nil
}

// drain polls every worker until no job is queued or running and no
// intent file remains in any data dir.
func (f *fleet) drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		busy := false
		for _, w := range f.workers {
			resp, err := http.Get(w.url + "/jobs")
			if err != nil {
				busy = true // restarting worker; keep waiting
				break
			}
			var list struct {
				Jobs []struct {
					ID    string `json:"id"`
					State string `json:"state"`
					Error string `json:"error"`
				} `json:"jobs"`
			}
			err = json.NewDecoder(resp.Body).Decode(&list)
			resp.Body.Close()
			if err != nil {
				return err
			}
			for _, j := range list.Jobs {
				if j.State == "queued" || j.State == "running" {
					busy = true
				}
				if j.State == "failed" {
					return fmt.Errorf("job %s failed: %s", j.ID, j.Error)
				}
			}
		}
		if !busy {
			if n := countFiles(f.dirs, ".intent.json"); n == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not drain within %v (%d intents left)",
				timeout, countFiles(f.dirs, ".intent.json"))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// countFiles counts files across the fleet's data dirs: records are
// "*.json" minus the "*.intent.json" journal entries.
func countFiles(dirs []string, suffix string) int {
	n := 0
	for _, dir := range dirs {
		paths, _ := filepath.Glob(filepath.Join(dir, "*.json"))
		for _, p := range paths {
			isIntent := strings.HasSuffix(p, ".intent.json")
			if (suffix == ".intent.json") == isIntent {
				n++
			}
		}
	}
	return n
}

type phaseResult struct {
	Workers    int     `json:"workers"`
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobsPerSec"`
	Restarted  bool    `json:"restartedWorker"`
	Replayed   int     `json:"replayedIntents"`
	Records    int     `json:"records"`
	Intents    int     `json:"intentsLeft"`
}

// runPhase uploads graphs, pushes the job batch through the router, and
// (optionally) SIGKILLs + restarts one worker mid-run. The makespan is
// first submit → fleet drained, i.e. restart recovery counts against
// throughput, as it would in production.
func runPhase(opt options, f *fleet, restart bool) (phaseResult, error) {
	res := phaseResult{Workers: len(f.workers), Jobs: opt.jobs, Restarted: restart}

	var edges bytes.Buffer
	if err := graph.WriteEdgeList(&edges, gen.Grid2D(opt.gridSide, opt.gridSide)); err != nil {
		return res, err
	}
	// One graph name per fleet slot ×2 so the ring has names to spread;
	// job i goes to graph i mod len(names). The X-Hdeserve-Worker header
	// on each upload response names the shard the router placed it on.
	victim := f.workers[len(f.workers)-1]
	names := make([]string, 0, 2*len(f.workers))
	victimName := ""
	uploadTo := func(name string) (owner string, err error) {
		code, body, owner, err := post(f.router.url+"/graphs?name="+name, "text/plain", edges.Bytes())
		if err != nil {
			return "", err
		}
		if code != http.StatusCreated {
			return "", fmt.Errorf("upload %s: status %d: %s", name, code, body)
		}
		return owner, nil
	}
	for i := 0; i < 2*len(f.workers); i++ {
		name := fmt.Sprintf("soak%d", i)
		owner, err := uploadTo(name)
		if err != nil {
			return res, err
		}
		if owner == victim.name {
			victimName = name
		}
		names = append(names, name)
	}
	// The restart phase needs a graph on the victim's shard to pin it
	// down with; scan extra names until the ring lands one there.
	for i := 0; restart && victimName == "" && i < 256; i++ {
		name := fmt.Sprintf("pin%d", i)
		owner, err := uploadTo(name)
		if err != nil {
			return res, err
		}
		if owner == victim.name {
			victimName = name
		}
	}
	if restart && victimName == "" {
		return res, fmt.Errorf("no probe name hashed to %s", victim.name)
	}

	start := time.Now()
	accepted := 0
	submit := func(name string) error {
		spec := fmt.Sprintf(`{"graph":%q,"subspace":%d,"seed":1,"skipQuality":true}`,
			name, opt.subspace)
		code, body, _, err := post(f.router.url+"/jobs", "application/json", []byte(spec))
		if err != nil {
			return err
		}
		if code != http.StatusAccepted {
			return fmt.Errorf("submit %s: status %d: %s", name, code, body)
		}
		accepted++
		return nil
	}
	for i := 0; i < opt.jobs; i++ {
		if err := submit(names[i%len(names)]); err != nil {
			return res, err
		}
	}

	if restart {
		// Pin the victim's single pool worker with a backlog, then
		// SIGKILL it with work queued and running.
		for i := 0; i < 4; i++ {
			if err := submit(victimName); err != nil {
				return res, err
			}
		}
		log.Printf("SIGKILL %s mid-run", victim.name)
		victim.kill()
		time.Sleep(300 * time.Millisecond) // let the OS release the port
		res.Replayed = countFiles(f.dirs[len(f.dirs)-1:], ".intent.json")
		log.Printf("%s died with %d journaled jobs unresolved", victim.name, res.Replayed)
		if res.Replayed == 0 {
			return res, fmt.Errorf("SIGKILL interrupted nothing; the victim drained its backlog first")
		}
		if err := victim.start(opt.bin); err != nil {
			return res, err
		}
		if err := waitHealthy(victim.url, 60*time.Second); err != nil {
			return res, err
		}
		log.Printf("%s restarted; replaying journaled jobs", victim.name)
	}

	if err := f.drain(5 * time.Minute); err != nil {
		return res, err
	}
	res.Seconds = time.Since(start).Seconds()
	res.JobsPerSec = float64(accepted) / res.Seconds
	res.Records = countFiles(f.dirs, ".json")
	res.Intents = countFiles(f.dirs, ".intent.json")
	if res.Intents != 0 {
		return res, fmt.Errorf("%d intents left after drain", res.Intents)
	}
	if res.Records != accepted {
		return res, fmt.Errorf("records = %d, want %d (one per accepted job): jobs were dropped or duplicated",
			res.Records, accepted)
	}
	return res, nil
}

func main() {
	var opt options
	flag.StringVar(&opt.bin, "bin", "", "path to a built hdeserve binary (required)")
	flag.IntVar(&opt.workers, "workers", 4, "fleet size for the scaled phase")
	flag.IntVar(&opt.jobs, "jobs", 24, "layout jobs per phase")
	flag.IntVar(&opt.gridSide, "grid", 80, "side of the square grid graph each job lays out")
	flag.IntVar(&opt.subspace, "s", 128, "job subspace dimension (bigger = slower jobs)")
	flag.IntVar(&opt.basePort, "port", 18300, "base port (router; workers use the ports above it)")
	flag.StringVar(&opt.out, "out", "soak_shard.json", "result JSON path")
	flag.Float64Var(&opt.minSpeedup, "min-speedup", 0,
		"fail if N-vs-1 jobs/sec ratio is below this (0 = record only; gate skipped when NumCPU < workers)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("hdesoak: ")
	if opt.bin == "" {
		log.Fatal("-bin is required (go build -o /tmp/hdeserve ./cmd/hdeserve)")
	}

	tmp, err := os.MkdirTemp("", "hdesoak")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// log.Fatal skips defers, so phase errors stop the fleet explicitly —
	// a leaked worker process would outlive the harness and hold its port.
	run := func(label string, n int, restart bool) phaseResult {
		log.Printf("phase %s: %d worker(s), %d jobs, restart=%v", label, n, opt.jobs, restart)
		f, err := startFleet(opt, n, tmp, label)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runPhase(opt, f, restart)
		f.stop()
		if err != nil {
			os.RemoveAll(tmp)
			log.Fatal(err)
		}
		log.Printf("phase done: %.1fs, %.2f jobs/s, %d records, 0 dropped",
			res.Seconds, res.JobsPerSec, res.Records)
		return res
	}

	// Three phases: the 1-vs-N throughput comparison runs clean (no
	// restart, so the ratio measures scale-out, not recovery latency),
	// then a separate N-worker phase proves the zero-dropped-jobs
	// invariant across a SIGKILL + restart under load.
	baseline := run("baseline", 1, false)
	scaled := run("scaled", opt.workers, false)
	restarted := run("restart", opt.workers, true)
	speedup := scaled.JobsPerSec / baseline.JobsPerSec

	out := struct {
		Date      string      `json:"date"`
		NumCPU    int         `json:"numCPU"`
		Baseline  phaseResult `json:"baseline"`
		Scaled    phaseResult `json:"scaled"`
		Restarted phaseResult `json:"restarted"`
		Speedup   float64     `json:"speedup"`
	}{
		Date:      time.Now().UTC().Format(time.RFC3339),
		NumCPU:    runtime.NumCPU(),
		Baseline:  baseline,
		Scaled:    scaled,
		Restarted: restarted,
		Speedup:   speedup,
	}
	blob, _ := json.MarshalIndent(out, "", "  ")
	if err := os.WriteFile(opt.out, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("speedup %d-vs-1 workers: %.2fx (numCPU=%d) → %s",
		opt.workers, speedup, runtime.NumCPU(), opt.out)

	if opt.minSpeedup > 0 {
		if runtime.NumCPU() < opt.workers {
			log.Printf("speedup gate skipped: %d CPUs < %d workers", runtime.NumCPU(), opt.workers)
		} else if speedup < opt.minSpeedup {
			log.Fatalf("speedup %.2fx below required %.2fx", speedup, opt.minSpeedup)
		}
	}
}
