package repro_bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/shard"
)

// soakWorker is one in-process shard: a real server.Server behind a real
// TCP listener whose address survives a kill/restart cycle, which is the
// part httptest.Server cannot do.
type soakWorker struct {
	id   string
	dir  string
	addr string
	srv  *server.Server
	hs   *http.Server
}

func (w *soakWorker) url() string { return "http://" + w.addr }

// start (re)creates the server on the worker's DataDir and serves it on
// w.addr (chosen by the kernel on first start, reused on restart).
func (w *soakWorker) start(t *testing.T) {
	t.Helper()
	cfg := server.Config{WorkerID: w.id, DataDir: w.dir, Workers: 1, QueueDepth: 32}
	s, err := server.NewWithConfig(gen.PlateWithHoles(20, 20), core.Options{Subspace: 8, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	laddr := w.addr
	if laddr == "" {
		laddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	w.srv = s
	w.hs = &http.Server{Handler: s.Handler()}
	go w.hs.Serve(ln)
}

// kill closes the listener and the server without draining, the
// in-process stand-in for SIGKILL + journal recovery: running and queued
// jobs become shutdown-cancelled and leave their intents on disk.
func (w *soakWorker) kill() {
	w.hs.Close()
	w.srv.Close()
}

func soakPost(t *testing.T, url, ctype, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestSoakShardedFleetRestart drives a router + 3-worker fleet with
// mixed traffic (uploads, jobs, cached reads), SIGKILLs one worker with
// jobs queued and running, restarts it on the same address and DataDir,
// and asserts the fleet-wide zero-dropped-jobs invariant: every accepted
// submission ends as exactly one persisted record, no intent left behind,
// and every graph is fully servable through the router afterwards.
func TestSoakShardedFleetRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}

	workers := make([]*soakWorker, 3)
	urls := make([]string, 3)
	for i := range workers {
		workers[i] = &soakWorker{id: fmt.Sprintf("w%d", i+1), dir: t.TempDir()}
		workers[i].start(t)
		urls[i] = workers[i].url()
	}
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()

	rt, err := shard.NewRouter(shard.Config{
		Peers:          urls,
		Replication:    1, // exactly one copy per graph → crisp record accounting
		HealthInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Pick the victim and a graph it owns (the ring hashes names, so scan
	// for one), plus a slow grid for it: with one pool worker per shard,
	// big-subspace jobs on a 80×80 grid keep the victim busy long enough
	// for kill() to interrupt work mid-flight.
	ring := shard.NewRing(urls, 0)
	victim := workers[1]
	victimGraph := ""
	for i := 0; victimGraph == ""; i++ {
		if name := fmt.Sprintf("s%d", i); ring.Owner(name) == victim.url() {
			victimGraph = name
		}
	}
	quickNames := []string{"q0", "q1", "q2", "q3"}

	upload := func(name string, n int) {
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, gen.Grid2D(n, n)); err != nil {
			t.Fatal(err)
		}
		code, body := soakPost(t, ts.URL+"/graphs?name="+name, "text/plain", buf.String())
		if code != http.StatusCreated {
			t.Fatalf("upload %s: status %d: %s", name, code, body)
		}
	}
	upload(victimGraph, 100)
	for _, name := range quickNames {
		upload(name, 25)
	}

	accepted := 0
	submit := func(name string, subspace int) {
		body := fmt.Sprintf(`{"graph":%q,"subspace":%d,"seed":1}`, name, subspace)
		code, resp := soakPost(t, ts.URL+"/jobs", "application/json", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d: %s", name, code, resp)
		}
		accepted++
	}

	// Spread quick jobs across the fleet first, with read traffic
	// interleaved while they churn: catalog listings and cached stats
	// reads through the router must never error.
	for round := 0; round < 2; round++ {
		for _, name := range quickNames {
			submit(name, 16)
		}
	}
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/graphs")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("catalog read: status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Now pin the victim's single pool worker down with big-subspace
	// jobs and kill it mid-run: the first job is running and the rest
	// queued, so intents must survive for all of them.
	for i := 0; i < 4; i++ {
		submit(victimGraph, 256-16*i)
	}
	time.Sleep(50 * time.Millisecond)
	victim.kill()
	pending, errs := jobs.PendingIntents(victim.dir)
	if len(errs) != 0 {
		t.Fatalf("intent scan: %v", errs)
	}
	if len(pending) == 0 {
		t.Fatal("kill interrupted nothing; test needs slower victim jobs")
	}
	survivorGraph := ""
	for _, name := range quickNames {
		if ring.Owner(name) != victim.url() {
			survivorGraph = name
			break
		}
	}
	if survivorGraph != "" {
		resp, err := http.Get(ts.URL + "/graphs/" + survivorGraph + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			t.Fatalf("read with one worker down: status %d", resp.StatusCode)
		}
	}

	// Restart on the same address and DataDir: the shard recovers its
	// catalog and replays every interrupted job under fresh ids.
	victim.start(t)

	// Drain: every worker idle, no intent anywhere, no job failed.
	deadline := time.Now().Add(120 * time.Second)
	for {
		busy := false
		for _, w := range workers {
			resp, err := http.Get(w.url() + "/jobs")
			if err != nil {
				t.Fatal(err)
			}
			var list struct{ Jobs []jobs.Status }
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			for _, st := range list.Jobs {
				if st.State == "queued" || st.State == "running" {
					busy = true
				}
				if st.State == "failed" || st.State == "cancelled" {
					t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
				}
			}
			if left, _ := jobs.PendingIntents(w.dir); len(left) != 0 {
				busy = true
			}
		}
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never drained after restart")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Zero dropped, zero duplicated: records across the fleet's data
	// dirs match the accepted submissions exactly.
	records := 0
	for _, w := range workers {
		paths, _ := filepath.Glob(filepath.Join(w.dir, "*.json"))
		for _, p := range paths {
			if !strings.HasSuffix(p, ".intent.json") {
				records++
			}
		}
	}
	if records != accepted {
		t.Fatalf("persisted records = %d, want %d (one per accepted job)", records, accepted)
	}

	// The router must re-admit the restarted worker and serve every
	// graph's stats (each had at least one completed layout job).
	healthDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/shardz")
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Peers []struct {
				Healthy bool `json:"healthy"`
			} `json:"peers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		healthy := 0
		for _, p := range view.Peers {
			if p.Healthy {
				healthy++
			}
		}
		if healthy == len(workers) {
			break
		}
		if time.Now().After(healthDeadline) {
			t.Fatalf("router re-admitted only %d/%d workers", healthy, len(workers))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, name := range append([]string{victimGraph}, quickNames...) {
		resp, err := http.Get(ts.URL + "/graphs/" + name + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict {
			// A layout installed on the victim before the kill died with
			// the process (completed jobs don't replay — only unresolved
			// intents do). The graph itself recovered; a fresh job must
			// bring the view back.
			submit(name, 16)
			waitDeadline := time.Now().Add(30 * time.Second)
			for resp.StatusCode == http.StatusConflict {
				if time.Now().After(waitDeadline) {
					t.Fatalf("stats %s never recovered after fresh job", name)
				}
				time.Sleep(50 * time.Millisecond)
				if resp, err = http.Get(ts.URL + "/graphs/" + name + "/stats"); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats %s after recovery: status %d", name, resp.StatusCode)
		}
	}
}
