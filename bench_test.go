// Package repro_bench holds the testing.B harness: one benchmark per table
// and figure of the paper (see DESIGN.md's experiment index), plus kernel
// ablations for the design choices the paper calls out. Absolute numbers
// depend on the host; the shapes to check are who wins and by what factor.
//
// The richer multi-configuration sweeps (core counts, Δ values, drawings)
// live in cmd/hdebench; these benchmarks pin one representative
// configuration per experiment so `go test -bench=.` regenerates every
// headline comparison.
package repro_bench

import (
	"os"
	"sync"
	"testing"

	"repro/internal/bfs"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fibbin"
	"repro/internal/forcedirected"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/partition"
	"repro/internal/pivot"
	"repro/internal/sssp"
	"repro/internal/stress"
)

// Benchmark datasets, built once. Scales are chosen so the full -bench=.
// pass completes in minutes on a laptop while keeping every graph large
// enough that phase times dominate fixed overheads.
var (
	once sync.Once

	gKron  *graph.CSR // skewed low-diameter (kron27 analogue)
	gUrand *graph.CSR // uniform random (urand27 analogue)
	gWeb   *graph.CSR // locality-ordered (sk-2005 analogue)
	gRoad  *graph.CSR // high-diameter sparse (road_usa analogue)
	gPlate *graph.CSR // barth5 analogue
	gSmall *graph.CSR // small mesh for 30-source pivot study
)

// TestMain builds every dataset before any benchmark's timer starts.
func TestMain(m *testing.M) {
	datasets()
	os.Exit(m.Run())
}

func datasets() {
	once.Do(func() {
		gKron = gen.Kron(14, 16, 102)
		gUrand = gen.Urand(14, 16, 101)
		gWeb = gen.WebGraph(40000, 24, 103)
		gRoad = gen.Road(220, 220, 105)
		gPlate = gen.PlateWithHoles(120, 120)
		gSmall = gen.Mesh3D(24, 24, 24)
	})
}

func reportGraph(b *testing.B, g *graph.CSR) {
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

// --- Table 2: preprocessing pipeline ------------------------------------

func BenchmarkTable2Preprocess(b *testing.B) {
	// Times the §4.1 pipeline itself: symmetrize, dedupe, largest
	// component, relabel — on a raw multigraph edge list.
	rng := gen.NewRNG(7)
	n := 1 << 15
	edges := make([]graph.Edge, 8*n)
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Int32n(int32(n)), V: rng.Int32n(int32(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		reportGraph(b, g)
	}
}

// --- Figure 2: adjacency gap distributions ------------------------------

func BenchmarkFig2Gaps(b *testing.B) {
	datasets()
	for _, c := range []struct {
		name string
		g    *graph.CSR
	}{{"web_local", gWeb}, {"urand", gUrand}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := fibbin.New(int64(c.g.NumV))
				graph.Gaps(c.g, h.Add)
				b.ReportMetric(float64(graph.GapSummary(c.g).Mean), "mean-gap")
			}
		})
	}
}

// --- Table 3: ParHDE vs prior implementation ----------------------------

func BenchmarkTable3ParHDE(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ParHDE(gKron, opt); err != nil {
			b.Fatal(err)
		}
	}
	reportGraph(b, gKron)
}

func BenchmarkTable3PriorBaseline(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Prior(gKron, opt); err != nil {
			b.Fatal(err)
		}
	}
	reportGraph(b, gKron)
}

// --- Table 4 / Figure 3 / Figure 4: ParHDE across graph families --------

func BenchmarkTable4ParHDE(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for _, c := range []struct {
		name string
		g    *graph.CSR
	}{
		{"urand", gUrand}, {"kron", gKron}, {"web", gWeb}, {"road", gRoad},
	} {
		b.Run(c.name, func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = core.ParHDE(c.g, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			// Figure 3's split, surfaced as metrics.
			bd := rep.Breakdown
			bp, tp, op, _ := bd.Percentages()
			b.ReportMetric(bp, "bfs%")
			b.ReportMetric(tp, "tripleprod%")
			b.ReportMetric(op, "dortho%")
		})
	}
}

// --- Table 5 / Figure 6: PHDE and PivotMDS -------------------------------

func BenchmarkTable5PHDE(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PHDE(gKron, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5PivotMDS(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PivotMDS(gKron, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 6: pivot selection strategies ---------------------------------

func BenchmarkTable6Pivots(b *testing.B) {
	datasets()
	const sources = 30
	for _, c := range []struct {
		name  string
		strat pivot.Strategy
	}{{"kcenters", pivot.KCenters}, {"random", pivot.Random}} {
		b.Run(c.name, func(b *testing.B) {
			m := linalg.NewDense(gSmall.NumV, sources)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pivot.Phase(gSmall, m, 0, c.strat, bfs.Options{}, nil, nil)
			}
		})
	}
}

// --- Table 7: MGS vs CGS --------------------------------------------------

func BenchmarkTable7Ortho(b *testing.B) {
	datasets()
	s := 30
	m := linalg.NewDense(gKron.NumV, s)
	pivot.Phase(gKron, m, 0, pivot.KCenters, bfs.Options{}, nil, nil)
	deg := gKron.WeightedDegrees()
	for _, c := range []struct {
		name   string
		method ortho.Method
	}{{"MGS", ortho.MGS}, {"CGS", ortho.CGS}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ortho.DOrthogonalize(m, deg, c.method)
			}
		})
	}
}

// --- Figure 1: HDE vs full spectral computation ---------------------------

func BenchmarkFig1ParHDE(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ParHDE(gPlate, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1SpectralBaseline(b *testing.B) {
	datasets()
	for i := 0; i < b.N; i++ {
		eigen.WalkPower(gPlate, 2, eigen.PowerOptions{Seed: 1, MaxIters: 2000, Tol: 1e-8})
	}
}

// --- Figure 5: subspace dimension scaling (s=10 vs s=50) ------------------

func BenchmarkFig5Subspace(b *testing.B) {
	datasets()
	for _, s := range []int{10, 50} {
		b.Run(map[int]string{10: "s10", 50: "s50"}[s], func(b *testing.B) {
			opt := core.Options{Subspace: s, Seed: 42, SkipConnectivityCheck: true}
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = core.ParHDE(gWeb, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			_, _, op, _ := rep.Breakdown.Percentages()
			b.ReportMetric(op, "dortho%") // quadratic in s: grows sharply at s=50
		})
	}
}

// --- Figure 7: alternative drawing algorithms -----------------------------

func BenchmarkFig7RandomPivotParHDE(b *testing.B) {
	datasets()
	opt := core.Options{Subspace: 50, Seed: 3, Pivots: pivot.Random, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ParHDE(gPlate, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: interactive zoom -------------------------------------------

func BenchmarkFig8Zoom(b *testing.B) {
	datasets()
	for i := 0; i < b.N; i++ {
		if _, err := core.Zoom(gPlate, int32(gPlate.NumV/2), 10, core.Options{Subspace: 20, Seed: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.4: SSSP vs BFS phase ----------------------------------------------

func BenchmarkSSSPvsBFS(b *testing.B) {
	datasets()
	unit := gRoad.WithUnitWeights()
	weighted := gen.WithRandomWeights(gRoad, 100, 7)
	b.Run("bfs", func(b *testing.B) {
		opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ParHDE(gRoad, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sssp_unit", func(b *testing.B) {
		opt := core.Options{Subspace: 10, Seed: 42, Delta: 1, SkipConnectivityCheck: true}
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ParHDE(unit, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sssp_random_w", func(b *testing.B) {
		opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ParHDE(weighted, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- §4.4: vertex ordering and the LS kernel -------------------------------

func BenchmarkPermutationLS(b *testing.B) {
	datasets()
	perm := graph.RandomPermutation(gWeb.NumV, 99)
	gp, err := graph.Permute(gWeb, perm)
	if err != nil {
		b.Fatal(err)
	}
	s := linalg.NewDense(gWeb.NumV, 10)
	for i := range s.Data {
		s.Data[i] = float64(i % 13)
	}
	for _, c := range []struct {
		name string
		g    *graph.CSR
	}{{"locality_order", gWeb}, {"random_perm", gp}} {
		deg := c.g.WeightedDegrees()
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linalg.LapMulDense(c.g, deg, s)
			}
		})
	}
}

// --- §4.5.3: refinement vs cold power iteration ----------------------------

func BenchmarkRefineVsPower(b *testing.B) {
	datasets()
	b.Run("parhde_plus_refine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lay, _, err := core.ParHDE(gPlate, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
			if err != nil {
				b.Fatal(err)
			}
			core.Refine(gPlate, lay, 30, 0)
		}
	})
	b.Run("cold_power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eigen.WalkPower(gPlate, 2, eigen.PowerOptions{Seed: 9, MaxIters: 1000, Tol: 1e-7})
		}
	})
}

// --- Kernel ablations -------------------------------------------------------

func BenchmarkBFSDirection(b *testing.B) {
	datasets()
	for _, c := range []struct {
		name string
		opt  bfs.Options
	}{
		{"direction_optimizing", bfs.Options{}},
		{"top_down_only", bfs.Options{ForceTopDown: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			runner := bfs.NewRunner(gKron, c.opt)
			dist := make([]int32, gKron.NumV)
			b.ResetTimer()
			var scanned int64
			for i := 0; i < b.N; i++ {
				st := runner.Distances(0, dist)
				scanned = st.ScannedEdges
			}
			b.ReportMetric(float64(scanned), "edges-scanned")
		})
	}
}

func BenchmarkLSKernel(b *testing.B) {
	datasets()
	deg := gKron.WeightedDegrees()
	s := linalg.NewDense(gKron.NumV, 10)
	for i := range s.Data {
		s.Data[i] = float64(i % 17)
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.LapMulDense(gKron, deg, s)
		}
	})
	b.Run("explicit_laplacian", func(b *testing.B) {
		lap := linalg.NewExplicitLaplacian(gKron)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lap.MulDense(s)
		}
	})
}

func BenchmarkDeltaStepping(b *testing.B) {
	datasets()
	g := gen.WithRandomWeights(gRoad, 100, 7)
	dist := make([]float64, g.NumV)
	for _, delta := range []struct {
		name string
		v    float64
	}{{"delta10", 10}, {"delta50", 50}} {
		b.Run(delta.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sssp.DeltaStepping(g, 0, delta.v, dist)
			}
		})
	}
}

func BenchmarkGemmAtB(b *testing.B) {
	datasets()
	n, s := gKron.NumV, 10
	x := linalg.NewDense(n, s)
	for i := range x.Data {
		x.Data[i] = float64(i%11) * 0.3
	}
	for i := 0; i < b.N; i++ {
		linalg.AtB(x, x)
	}
}

// --- §5 future work: multilevel ParHDE --------------------------------------

func BenchmarkMultilevelParHDE(b *testing.B) {
	datasets()
	b.Run("single_level", func(b *testing.B) {
		opt := core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true}
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ParHDE(gPlate, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multilevel", func(b *testing.B) {
		opt := core.MultilevelOptions{
			Base:    core.Options{Subspace: 50, Seed: 1},
			Coarsen: coarsen.Options{MinVertices: 500, Seed: 1},
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MultilevelParHDE(gPlate, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- §4.5.4: stress majorization seeding ------------------------------------

func BenchmarkStressSeeding(b *testing.B) {
	small := gen.PlateWithHoles(40, 40)
	b.Run("hde_seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lay, _, err := core.ParHDE(small, core.Options{Subspace: 20, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			res, err := stress.Full(small, lay, stress.Options{MaxIters: 5, Tol: 0})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stress, "final-stress")
		}
	})
	b.Run("random_seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lay := core.RandomLayout(small.NumV, 2, 7)
			res, err := stress.Full(small, lay, stress.Options{MaxIters: 5, Tol: 0})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stress, "final-stress")
		}
	})
}

// --- §4.2 related work: force-directed baseline -------------------------------

func BenchmarkForceDirectedBaseline(b *testing.B) {
	datasets()
	for i := 0; i < b.N; i++ {
		forcedirected.Layout(gPlate, forcedirected.Options{Iterations: 50, Seed: 2})
	}
}

// --- §4.5.3: eigensolver seeding ----------------------------------------------

func BenchmarkSubspaceSeeded(b *testing.B) {
	small := gen.PlateWithHoles(50, 50)
	const tol = 1e-4
	b.Run("hde_seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lay, _, err := core.ParHDE(small, core.Options{Subspace: 30, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			res := eigen.SubspaceIterate(small, 2, eigen.SubspaceOptions{Seed: 3, MaxIters: 50000, Tol: tol, Init: lay.Coords})
			b.ReportMetric(float64(res.Iterations), "iterations")
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := eigen.SubspaceIterate(small, 2, eigen.SubspaceOptions{Seed: 3, MaxIters: 50000, Tol: tol})
			b.ReportMetric(float64(res.Iterations), "iterations")
		}
	})
}

// --- §4.5.4: partitioning -------------------------------------------------------

func BenchmarkPartitionPipeline(b *testing.B) {
	datasets()
	lay, _, err := core.ParHDE(gSmall, core.Options{Subspace: 20, Seed: 3, SkipConnectivityCheck: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		part, err := partition.CoordinateBisection(lay.Clone(), 3)
		if err != nil {
			b.Fatal(err)
		}
		partition.Refine(gSmall, part, partition.RefineOptions{})
		st := partition.EvaluateCut(gSmall, part)
		b.ReportMetric(float64(st.CutEdges), "cut-edges")
	}
}

// --- MS-BFS and tiled-LS kernel ablations --------------------------------------

func BenchmarkMSBFSvsSerialBatch(b *testing.B) {
	datasets()
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32((i * 997) % gKron.NumV)
	}
	b.Run("msbfs_64", func(b *testing.B) {
		dists := make([][]int32, 64)
		for i := range dists {
			dists[i] = make([]int32, gKron.NumV)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bfs.MSBFS(gKron, sources, dists)
		}
	})
	b.Run("serial_64", func(b *testing.B) {
		dist := make([]int32, gKron.NumV)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, src := range sources {
				bfs.Serial(gKron, src, dist)
			}
		}
	})
}

func BenchmarkLSTiled(b *testing.B) {
	datasets()
	deg := gWeb.WeightedDegrees()
	s := linalg.NewDense(gWeb.NumV, 50)
	for i := range s.Data {
		s.Data[i] = float64(i % 23)
	}
	b.Run("columnwise_s50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.LapMulDense(gWeb, deg, s)
		}
	})
	b.Run("tiled_s50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.LapMulDenseTiled(gWeb, deg, s)
		}
	})
}

// --- Coupled vs decoupled pipeline ------------------------------------------------

func BenchmarkCoupledPipeline(b *testing.B) {
	datasets()
	for _, c := range []struct {
		name    string
		coupled bool
	}{{"decoupled", false}, {"coupled", true}} {
		b.Run(c.name, func(b *testing.B) {
			opt := core.Options{Subspace: 30, Seed: 1, Coupled: c.coupled, SkipConnectivityCheck: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ParHDE(gPlate, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Lanczos vs power-iteration baseline -------------------------------------------

func BenchmarkSpectralBaselines(b *testing.B) {
	datasets()
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eigen.WalkPower(gPlate, 2, eigen.PowerOptions{Seed: 1, MaxIters: 2000, Tol: 1e-8})
		}
	})
	b.Run("lanczos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eigen.Lanczos(gPlate, 2, eigen.LanczosOptions{Seed: 1, Tol: 1e-8})
		}
	})
}

// --- §4.5.3: LOBPCG (the paper's named eigensolver) ---------------------------------

func BenchmarkLOBPCGSeeding(b *testing.B) {
	small := gen.PlateWithHoles(50, 50)
	const tol = 1e-6
	b.Run("hde_seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lay, _, err := core.ParHDE(small, core.Options{Subspace: 30, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			res := eigen.LOBPCG(small, 2, eigen.LOBPCGOptions{Seed: 3, MaxIters: 50000, Tol: tol, Init: lay.Coords})
			b.ReportMetric(float64(res.Iterations), "iterations")
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := eigen.LOBPCG(small, 2, eigen.LOBPCGOptions{Seed: 3, MaxIters: 50000, Tol: tol})
			b.ReportMetric(float64(res.Iterations), "iterations")
		}
	})
}

// --- Figure 3 / Figure 6: breakdown benches (explicit per-figure mapping) -----

func BenchmarkFig3Breakdown(b *testing.B) {
	datasets()
	for _, c := range []struct {
		name string
		run  func() *core.Report
	}{
		{"parhde", func() *core.Report {
			_, rep, err := core.ParHDE(gKron, core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true})
			if err != nil {
				b.Fatal(err)
			}
			return rep
		}},
		{"prior", func() *core.Report {
			_, rep, err := core.Prior(gKron, core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true})
			if err != nil {
				b.Fatal(err)
			}
			return rep
		}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				rep = c.run()
			}
			bp, tp, op, _ := rep.Breakdown.Percentages()
			b.ReportMetric(bp, "bfs%")
			b.ReportMetric(tp, "tripleprod%")
			b.ReportMetric(op, "dortho%")
		})
	}
}

func BenchmarkFig6Breakdowns(b *testing.B) {
	datasets()
	for _, c := range []struct {
		name string
		f    func(*graph.CSR, core.Options) (*core.Layout, *core.Report, error)
	}{{"pivotmds", core.PivotMDS}, {"phde", core.PHDE}} {
		b.Run(c.name, func(b *testing.B) {
			opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = c.f(gKron, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			bd := rep.Breakdown
			tot := float64(bd.Total)
			b.ReportMetric(100*float64(bd.BFS())/tot, "bfs%")
			b.ReportMetric(100*float64(bd.Centering)/tot, "center%")
			b.ReportMetric(100*float64(bd.Gemm+bd.Project)/tot, "matmul%")
		})
	}
}

// --- Figure 4: core-count scaling (one data point per GOMAXPROCS setting) -----

func BenchmarkFig4ScalingPoint(b *testing.B) {
	// go test -cpu 1,2,4 -bench Fig4ScalingPoint sweeps the core counts the
	// way the paper's Figure 4 does; each -cpu value is one curve point.
	datasets()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ParHDE(gUrand, opt); err != nil {
			b.Fatal(err)
		}
	}
}
