package bfs

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// msRows allocates s distance rows for an n-vertex graph.
func msRows(s, n int) [][]int32 {
	rows := make([][]int32, s)
	for i := range rows {
		rows[i] = make([]int32, n)
	}
	return rows
}

// msRun traverses sources under one budget/options pair into fresh rows.
func msRun(g *graph.CSR, sources []int32, bud parallel.Budget, opt MSOptions) ([][]int32, Stats) {
	rows := msRows(len(sources), g.NumV)
	st := MSBFSOpts(bud, g, sources, rows, NewScratch(g.NumV, bud.Workers()), opt)
	return rows, st
}

// assertRowsEqual fails unless every distance row is bitwise identical.
func assertRowsEqual(t *testing.T, label string, want, got [][]int32) {
	t.Helper()
	for s := range want {
		for v := range want[s] {
			if want[s][v] != got[s][v] {
				t.Fatalf("%s: source %d dist[%d] = %d, want %d", label, s, v, got[s][v], want[s][v])
			}
		}
	}
}

// msbfsBudgets is the budget sweep of the equivalence tests: the serial
// fast path, two fixed parallel partitions, and the live budget.
func msbfsBudgets() []parallel.Budget {
	return []parallel.Budget{
		parallel.FixedBudget(1),
		parallel.FixedBudget(2),
		parallel.FixedBudget(4),
		parallel.Live(),
	}
}

// TestMSBFSDirOptAdversarial pins the direction-optimizing engine to the
// retained top-down oracle on the shapes that stress its block/summary
// machinery: a star (one level floods everything — instant bottom-up
// switch), a long path (frontier of one vertex forever — summaries must
// skip nearly every block), a disconnected graph (bottom-up keeps seeing
// unreachable missing bits), a 64-source full-mask batch (the `full`
// active-mask fast exit), and sizes straddling the msBlockVerts tile
// boundary — every case swept across budgets 1/2/4/live.
func TestMSBFSDirOptAdversarial(t *testing.T) {
	disc, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		g       *graph.CSR
		sources []int32
	}{
		{"star", gen.Star(20000), []int32{0, 1, 19999}},
		{"path", gen.Path(9000), []int32{0, 4500, 8999}},
		{"disconnected", disc, []int32{0, 2}},
		{"kron", gen.Kron(11, 10, 7), nil},                                   // 64 sources filled below
		{"block-boundary-under", gen.Grid2D(63, 65), []int32{0, 2047, 4094}}, // n = 4095
		{"block-boundary-exact", gen.Grid2D(64, 64), []int32{0, 2048, 4095}}, // n = 4096
		{"block-boundary-over", gen.Grid2D(64, 65), []int32{0, 4095, 4096}},  // n = 4160 > one block
	}
	for _, tc := range cases {
		sources := tc.sources
		if sources == nil {
			sources = make([]int32, 64) // full-mask batch: every bit of `full` active
			for i := range sources {
				sources[i] = int32((i * 257) % tc.g.NumV)
			}
		}
		want, wantSt := msRun(tc.g, sources, parallel.FixedBudget(1), MSOptions{ForceTopDown: true})
		if wantSt.BottomUpSteps != 0 {
			t.Fatalf("%s: ForceTopDown ran %d bottom-up steps", tc.name, wantSt.BottomUpSteps)
		}
		for _, bud := range msbfsBudgets() {
			got, _ := msRun(tc.g, sources, bud, MSOptions{})
			assertRowsEqual(t, tc.name+"/diropt", want, got)
			gotTD, st := msRun(tc.g, sources, bud, MSOptions{ForceTopDown: true})
			assertRowsEqual(t, tc.name+"/topdown", want, gotTD)
			if st.BottomUpSteps != 0 {
				t.Fatalf("%s: ForceTopDown under budget ran bottom-up", tc.name)
			}
		}
	}
}

// TestMSBFSDirOptSwitchesOnKron asserts the engine actually takes the
// bottom-up direction on a skewed low-diameter graph and that doing so
// scans fewer edges than the retained top-down path (the γ < 1 work
// reduction the direction switch exists for).
func TestMSBFSDirOptSwitchesOnKron(t *testing.T) {
	g := gen.Kron(12, 12, 3)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32((i * 997) % g.NumV)
	}
	_, opt := msRun(g, sources, parallel.FixedBudget(1), MSOptions{})
	_, td := msRun(g, sources, parallel.FixedBudget(1), MSOptions{ForceTopDown: true})
	if opt.BottomUpSteps == 0 {
		t.Fatalf("no bottom-up steps on kron: %+v", opt)
	}
	if opt.ScannedEdges >= td.ScannedEdges {
		t.Fatalf("direction optimization scanned %d ≥ top-down %d", opt.ScannedEdges, td.ScannedEdges)
	}
	if opt.Levels != td.Levels {
		t.Fatalf("level count diverged: %d vs %d", opt.Levels, td.Levels)
	}
}

// TestMSBFSStatsAdd covers the aggregation the observability rollups use.
func TestMSBFSStatsAdd(t *testing.T) {
	a := Stats{Levels: 3, TopDownSteps: 2, BottomUpSteps: 1, ScannedEdges: 10}
	a.Add(Stats{Levels: 2, TopDownSteps: 1, BottomUpSteps: 1, ScannedEdges: 5})
	want := Stats{Levels: 5, TopDownSteps: 3, BottomUpSteps: 2, ScannedEdges: 15}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

// TestMSBFSScratchShrinkReuse drives one scratch through a big graph,
// then a small one, then the big one again: the summary bitmaps must
// reslice correctly in both directions and stale bits from the earlier
// runs must never leak into later distance rows.
func TestMSBFSScratchShrinkReuse(t *testing.T) {
	big := gen.Grid2D(100, 90) // n = 9000 → 3 blocks
	small := gen.Path(500)     // n = 500 → 1 block
	sc := NewScratch(big.NumV, 4)
	bud := parallel.FixedBudget(4)
	for round := 0; round < 2; round++ {
		for _, g := range []*graph.CSR{big, small} {
			sources := []int32{0, int32(g.NumV / 2)}
			rows := msRows(len(sources), g.NumV)
			MSBFSOpts(bud, g, sources, rows, sc, MSOptions{})
			want := make([]int32, g.NumV)
			for i, src := range sources {
				Serial(g, src, want)
				for v := range want {
					if rows[i][v] != want[v] {
						t.Fatalf("round %d n=%d src=%d: dist[%d] = %d, want %d",
							round, g.NumV, src, v, rows[i][v], want[v])
					}
				}
			}
		}
	}
}

// TestMSBFSOptsSharesRunnerDefaults pins the option plumbing: Options.MS
// must carry the single-source α/β straight across, and the zero MSOptions
// must normalize to the shared defaults.
func TestMSBFSOptsSharesRunnerDefaults(t *testing.T) {
	ms := Options{Alpha: 7, Beta: 9, ForceTopDown: true}.MS()
	if ms.Alpha != 7 || ms.Beta != 9 || !ms.ForceTopDown {
		t.Fatalf("Options.MS dropped fields: %+v", ms)
	}
	def := MSOptions{}.withDefaults()
	if def.Alpha != DefaultAlpha || def.Beta != DefaultBeta {
		t.Fatalf("defaults = %+v, want α=%d β=%d", def, DefaultAlpha, DefaultBeta)
	}
}

// FuzzMSBFSDirOptEquivalence fuzzes graph family × source count × budget
// and asserts the direction-optimizing engine's distance rows are bitwise
// identical to the retained top-down path — the PR's central invariant —
// and identical across every worker budget.
func FuzzMSBFSDirOptEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint8(0))
	f.Add(int64(2), uint8(1), uint8(64), uint8(2))
	f.Add(int64(3), uint8(2), uint8(1), uint8(4))
	f.Add(int64(4), uint8(3), uint8(17), uint8(1))
	f.Add(int64(5), uint8(4), uint8(33), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, family, nSources, workers uint8) {
		r := rand.New(rand.NewSource(seed))
		var g *graph.CSR
		switch family % 5 {
		case 0:
			g = gen.Kron(8, 6, uint64(seed)|1)
		case 1:
			g = gen.Grid2D(10+r.Intn(60), 10+r.Intn(60))
		case 2:
			g = gen.Path(50 + r.Intn(5000))
		case 3:
			g = gen.Star(50 + r.Intn(5000))
		default:
			// Arbitrary (possibly disconnected) random graph.
			n := 10 + r.Intn(3000)
			edges := make([]graph.Edge, n+r.Intn(3*n))
			for i := range edges {
				edges[i] = graph.Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
			}
			var err error
			g, err = graph.FromEdges(n, edges, graph.BuildOptions{KeepAllComponents: true})
			if err != nil || g.NumV < 2 {
				t.Skip()
			}
		}
		s := 1 + int(nSources)%64
		sources := make([]int32, s)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumV))
		}
		want, _ := msRun(g, sources, parallel.FixedBudget(1), MSOptions{ForceTopDown: true})
		budgets := []parallel.Budget{
			parallel.FixedBudget(1),
			parallel.FixedBudget(1 + int(workers)%8),
			parallel.Live(),
		}
		for _, bud := range budgets {
			got, _ := msRun(g, sources, bud, MSOptions{})
			assertRowsEqual(t, "diropt", want, got)
			gotTD, _ := msRun(g, sources, bud, MSOptions{ForceTopDown: true})
			assertRowsEqual(t, "topdown", want, gotTD)
		}
	})
}
