package bfs

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Unreached marks vertices not reached by a traversal.
const Unreached = int32(-1)

// Default direction-switch parameters from the GAP BFS (Beamer's α and β).
const (
	DefaultAlpha = 15
	DefaultBeta  = 18
)

// Stats reports what a traversal did — the raw material of the paper's
// BFS-phase breakdowns (Fig. 5 middle) and the γ work-reduction factor of
// Table 1.
type Stats struct {
	Levels        int   // eccentricity of the source + 1 iterations
	TopDownSteps  int   // levels run in top-down mode
	BottomUpSteps int   // levels run in bottom-up mode
	ScannedEdges  int64 // adjacency entries actually examined
}

// Add accumulates o into s — the aggregation the per-layout observability
// rollups (core.Report.BFSTotals, the server's direction counters) run
// over every traversal of a phase.
func (s *Stats) Add(o Stats) {
	s.Levels += o.Levels
	s.TopDownSteps += o.TopDownSteps
	s.BottomUpSteps += o.BottomUpSteps
	s.ScannedEdges += o.ScannedEdges
}

// Options configures a traversal.
type Options struct {
	Alpha int64 // top-down → bottom-up switch threshold (0 = DefaultAlpha)
	Beta  int64 // bottom-up → top-down switch threshold (0 = DefaultBeta)
	// ForceTopDown disables the bottom-up direction entirely, yielding a
	// plain level-synchronous parallel BFS (used for ablation benches).
	ForceTopDown bool
}

// Runner holds the reusable state for repeated traversals over one graph,
// so the s searches of the BFS phase don't reallocate frontiers — the
// paper stresses the O(sn) distance storage is the dominant extra memory.
type Runner struct {
	g       *graph.CSR
	opt     Options
	sc      *Scratch
	bud     parallel.Budget
	workers int
}

// NewRunner creates a Runner for g with private scratch.
func NewRunner(g *graph.CSR, opt Options) *Runner {
	return NewRunnerScratch(g, opt, nil)
}

// NewRunnerScratch creates a Runner for g backed by sc, regrowing it if it
// is too small for g (nil allocates private scratch). The caller may hand
// the same Scratch to successive Runners over different graphs — the PR-2
// job engine reuses one per worker — but must not share it between
// concurrently live Runners.
func NewRunnerScratch(g *graph.CSR, opt Options, sc *Scratch) *Runner {
	return NewRunnerBudget(g, opt, sc, parallel.SnapshotBudget())
}

// NewRunnerBudget is NewRunnerScratch with an explicit worker budget. The
// budget is pinned for the Runner's lifetime: the per-worker queue arenas
// and every traversal step use the same worker count, so a GOMAXPROCS
// change mid-run can never desynchronize the partition from the scratch
// (live budgets are snapshotted once here for exactly that reason).
func NewRunnerBudget(g *graph.CSR, opt Options, sc *Scratch, bud parallel.Budget) *Runner {
	if opt.Alpha <= 0 {
		opt.Alpha = DefaultAlpha
	}
	if opt.Beta <= 0 {
		opt.Beta = DefaultBeta
	}
	if !bud.Fixed() {
		bud = parallel.SnapshotBudget()
	}
	w := bud.Workers()
	if sc == nil {
		sc = NewScratch(g.NumV, w)
	} else {
		sc.ensure(g.NumV, w)
	}
	return &Runner{g: g, opt: opt, sc: sc, bud: bud, workers: w}
}

// Distances runs a BFS from src, writing hop counts into dist (length
// NumV, filled with Unreached for unreachable vertices) and returning
// traversal statistics. dist may be a column of the HDE distance matrix B;
// the write pattern is atomic-free for distances (a CAS claims each vertex
// once, then the distance store is unconditional), matching §3.1.
func (r *Runner) Distances(src int32, dist []int32) Stats {
	g := r.g
	n := g.NumV
	if r.workers == 1 {
		for i := range dist {
			dist[i] = Unreached
		}
	} else {
		r.bud.For(n, func(i int) { dist[i] = Unreached })
	}
	dist[src] = 0

	var st Stats
	level := int32(0)
	// frontier state: either queue (top-down) or bitmap (bottom-up)
	r.sc.queue = append(r.sc.queue[:0], src)
	bottomUp := false
	frontierSize := int64(1)
	frontierEdges := int64(g.Degree(src))
	unexploredEdges := int64(len(g.Adj)) - frontierEdges

	for frontierSize > 0 {
		st.Levels++
		if !r.opt.ForceTopDown {
			if !bottomUp && frontierEdges > unexploredEdges/r.opt.Alpha {
				// Switch: materialize the frontier bitmap from the queue.
				r.sc.front.Reset()
				q := r.sc.queue
				if r.workers == 1 {
					for _, v := range q {
						r.sc.front.Set(v)
					}
				} else {
					r.bud.For(len(q), func(i int) { r.sc.front.Set(q[i]) })
				}
				bottomUp = true
			} else if bottomUp && frontierSize < int64(n)/r.opt.Beta {
				// Switch back: rebuild the queue from the bitmap.
				r.rebuildQueue(level)
				bottomUp = false
			}
		}
		var nf, ne, scanned int64
		if bottomUp {
			nf, ne, scanned = r.bottomUpStep(level, dist)
			st.BottomUpSteps++
		} else {
			nf, ne, scanned = r.topDownStep(level, dist)
			st.TopDownSteps++
		}
		st.ScannedEdges += scanned
		unexploredEdges -= ne
		frontierSize, frontierEdges = nf, ne
		level++
	}
	return st
}

// topDownStep expands the queue frontier, claiming unvisited neighbors
// with a CAS on their distance slot. Returns the next frontier size, its
// total degree, and the number of adjacency entries scanned.
func (r *Runner) topDownStep(level int32, dist []int32) (nf, ne, scanned int64) {
	g := r.g
	q := r.sc.queue
	w := r.workers
	if w == 1 {
		// Single-worker fast path: expand inline, no goroutine spawn (and
		// hence no per-level allocation on the steady-state hot path).
		local := r.sc.nextQ[0][:0]
		var localNE, localScan int64
		for _, u := range q {
			adj := g.Adj[g.Offsets[u]:g.Offsets[u+1]]
			localScan += int64(len(adj))
			for _, v := range adj {
				if dist[v] == Unreached {
					dist[v] = level + 1
					local = append(local, v)
					localNE += g.Offsets[v+1] - g.Offsets[v]
				}
			}
		}
		r.sc.nextQ[0] = local
		r.sc.queue = append(r.sc.queue[:0], local...)
		return int64(len(local)), localNE, localScan
	}
	var totNF, totNE, totScan int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			local := r.sc.nextQ[wk][:0]
			var localNE, localScan int64
			lo := wk * len(q) / w
			hi := (wk + 1) * len(q) / w
			for _, u := range q[lo:hi] {
				adj := g.Adj[g.Offsets[u]:g.Offsets[u+1]]
				localScan += int64(len(adj))
				for _, v := range adj {
					if atomic.LoadInt32(&dist[v]) == Unreached &&
						atomic.CompareAndSwapInt32(&dist[v], Unreached, level+1) {
						local = append(local, v)
						localNE += g.Offsets[v+1] - g.Offsets[v]
					}
				}
			}
			r.sc.nextQ[wk] = local
			atomic.AddInt64(&totNF, int64(len(local)))
			atomic.AddInt64(&totNE, localNE)
			atomic.AddInt64(&totScan, localScan)
		}(wk)
	}
	wg.Wait()
	// Concatenate per-worker buffers into the next queue.
	r.sc.queue = r.sc.queue[:0]
	for wk := 0; wk < w; wk++ {
		r.sc.queue = append(r.sc.queue, r.sc.nextQ[wk]...)
	}
	return totNF, totNE, totScan
}

// bottomUpStep has every unvisited vertex scan its own adjacency for a
// parent on the current level (held in dist), stopping at the first hit —
// the step that slashes edge traffic on low-diameter skewed graphs.
func (r *Runner) bottomUpStep(level int32, dist []int32) (nf, ne, scanned int64) {
	g := r.g
	r.sc.next.Reset()
	if r.workers == 1 {
		// Single-worker fast path: no goroutine, no closure, no atomics.
		nf, ne, scanned = r.bottomUpRange(level, dist, 0, g.NumV)
		r.sc.front.Swap(r.sc.next)
		return nf, ne, scanned
	}
	var totNF, totNE, totScan int64
	r.bud.ForBlock(g.NumV, func(lo, hi int) {
		var localNF, localNE, localScan int64
		for v := lo; v < hi; v++ {
			if dist[v] != Unreached {
				continue
			}
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			for k, u := range adj {
				// Membership in the frontier bitmap (fully built before this
				// phase's barrier) is the parent test; consulting dist here
				// would race with other workers claiming their own vertices.
				if r.sc.front.Get(u) {
					dist[v] = level + 1
					r.sc.next.Set(int32(v))
					localNF++
					localNE += g.Offsets[v+1] - g.Offsets[v]
					localScan += int64(k + 1)
					break
				}
				if k == len(adj)-1 {
					localScan += int64(len(adj))
				}
			}
		}
		atomic.AddInt64(&totNF, localNF)
		atomic.AddInt64(&totNE, localNE)
		atomic.AddInt64(&totScan, localScan)
	})
	r.sc.front.Swap(r.sc.next)
	return totNF, totNE, totScan
}

// bottomUpRange is one contiguous chunk of the bottom-up step: every
// unvisited vertex in [lo, hi) scans its adjacency for a parent on the
// frontier bitmap.
func (r *Runner) bottomUpRange(level int32, dist []int32, lo, hi int) (nf, ne, scanned int64) {
	g := r.g
	for v := lo; v < hi; v++ {
		if dist[v] != Unreached {
			continue
		}
		adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
		for k, u := range adj {
			if r.sc.front.Get(u) {
				dist[v] = level + 1
				r.sc.next.Set(int32(v))
				nf++
				ne += g.Offsets[v+1] - g.Offsets[v]
				scanned += int64(k + 1)
				break
			}
			if k == len(adj)-1 {
				scanned += int64(len(adj))
			}
		}
	}
	return nf, ne, scanned
}

// rebuildQueue converts the bitmap frontier (vertices at the given level)
// back into queue form.
func (r *Runner) rebuildQueue(level int32) {
	g := r.g
	w := r.workers
	if w == 1 {
		q := r.sc.queue[:0]
		for v := 0; v < g.NumV; v++ {
			if r.sc.front.Get(int32(v)) {
				q = append(q, int32(v))
			}
		}
		r.sc.queue = q
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			local := r.sc.nextQ[wk][:0]
			lo := wk * g.NumV / w
			hi := (wk + 1) * g.NumV / w
			for v := lo; v < hi; v++ {
				if r.sc.front.Get(int32(v)) {
					local = append(local, int32(v))
				}
			}
			r.sc.nextQ[wk] = local
		}(wk)
	}
	wg.Wait()
	r.sc.queue = r.sc.queue[:0]
	for wk := 0; wk < w; wk++ {
		r.sc.queue = append(r.sc.queue, r.sc.nextQ[wk]...)
	}
}

// Serial runs a textbook sequential BFS from src into dist, returning the
// number of levels. It is both the correctness oracle for the parallel
// traversal and the traversal used by the prior-work baseline, which "does
// not use parallel BFS" (§4.2).
func Serial(g *graph.CSR, src int32, dist []int32) int {
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := make([]int32, 1, 1024)
	queue[0] = src
	levels := 0
	for len(queue) > 0 {
		levels++
		var next []int32
		for _, u := range queue {
			d := dist[u]
			for _, v := range g.Neighbors(u) {
				if dist[v] == Unreached {
					dist[v] = d + 1
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return levels
}
