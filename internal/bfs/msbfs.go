package bfs

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// MSBFS runs up to 64 breadth-first searches simultaneously using
// bit-parallel frontiers (the multi-source BFS of Then et al.): each
// vertex carries a 64-bit mask of the searches that have reached it, so
// one pass over an adjacency list advances every search at once. This is
// the natural engine for the random-pivots strategy (§4.4, Table 6) when
// the number of pivots exceeds the core count: the s distance vectors are
// produced in ⌈s/64⌉ passes whose memory traffic is shared across
// sources.
//
// dists must have one row (length NumV) per source. Unreached vertices
// keep Unreached.
func MSBFS(g *graph.CSR, sources []int32, dists [][]int32) Stats {
	if len(sources) > 64 {
		panic("bfs: MSBFS supports at most 64 sources per batch")
	}
	if len(dists) < len(sources) {
		panic("bfs: MSBFS needs one distance row per source")
	}
	n := g.NumV
	for s := range sources {
		d := dists[s]
		parallel.For(n, func(i int) { d[i] = Unreached })
	}
	seen := make([]uint64, n)     // searches that have reached each vertex
	frontier := make([]uint64, n) // searches whose current level includes the vertex
	next := make([]uint64, n)

	for s, src := range sources {
		bit := uint64(1) << uint(s)
		seen[src] |= bit
		frontier[src] |= bit
		dists[s][src] = 0
	}

	var st Stats
	level := int32(0)
	active := true
	for active {
		st.Levels++
		level++
		var scanned int64
		var any int64
		parallel.ForBlock(n, func(lo, hi int) {
			var localScan int64
			var localAny int64
			for v := lo; v < hi; v++ {
				f := frontier[v]
				if f == 0 {
					continue
				}
				adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
				localScan += int64(len(adj))
				for _, u := range adj {
					// Searches in f that have not yet reached u.
					for {
						old := atomic.LoadUint64(&seen[u])
						newBits := f &^ old
						if newBits == 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&seen[u], old, old|newBits) {
							// Claimed newBits for u: record distances and
							// queue u for those searches.
							for b := newBits; b != 0; b &= b - 1 {
								dists[bits.TrailingZeros64(b)][u] = level
							}
							atomicOr(&next[u], newBits)
							localAny = 1
							break
						}
					}
				}
			}
			atomic.AddInt64(&scanned, localScan)
			atomic.AddInt64(&any, localAny)
		})
		st.ScannedEdges += scanned
		st.TopDownSteps++
		frontier, next = next, frontier
		parallel.For(n, func(i int) { next[i] = 0 })
		active = any != 0
	}
	st.Levels-- // last round discovered nothing
	return st
}

// atomicOr ORs mask into *addr.
func atomicOr(addr *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == mask {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}
