package bfs

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// MSBFS runs up to 64 breadth-first searches simultaneously using
// bit-parallel frontiers (the multi-source BFS of Then et al.): each
// vertex carries a 64-bit mask of the searches that have reached it, so
// one pass over an adjacency list advances every search at once. This is
// the natural engine for the random-pivots strategy (§4.4, Table 6) when
// the number of pivots exceeds the core count: the s distance vectors are
// produced in ⌈s/64⌉ passes whose memory traffic is shared across
// sources.
//
// dists must have one row (length NumV) per source. Unreached vertices
// keep Unreached.
func MSBFS(g *graph.CSR, sources []int32, dists [][]int32) Stats {
	return MSBFSScratch(g, sources, dists, nil)
}

// MSBFSScratch is MSBFS running over sc's pooled mask buffers (nil
// allocates fresh ones, equivalent to MSBFS). With a scratch the
// traversal performs no O(n)-sized allocations, and on one worker the
// whole call is allocation-free: every level loop has a plain serial
// body, so no closure ever escapes.
func MSBFSScratch(g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch) Stats {
	return MSBFSBudget(parallel.Live(), g, sources, dists, sc)
}

// MSBFSBudget is MSBFSScratch under an explicit worker budget. The CAS
// claim always stores the same level regardless of which worker wins, so
// the distance rows are bitwise identical for every budget.
func MSBFSBudget(bud parallel.Budget, g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch) Stats {
	if len(sources) > 64 {
		panic("bfs: MSBFS supports at most 64 sources per batch")
	}
	if len(dists) < len(sources) {
		panic("bfs: MSBFS needs one distance row per source")
	}
	n := g.NumV
	serial := bud.Serial(n)
	for s := range sources {
		d := dists[s]
		if serial {
			for i := range d {
				d[i] = Unreached
			}
		} else {
			bud.For(n, func(i int) { d[i] = Unreached })
		}
	}
	var seen, frontier, next []uint64
	if sc != nil {
		sc.ensureMS(n)
		seen, frontier, next = sc.msSeen, sc.msFront, sc.msNext
		if serial {
			for i := 0; i < n; i++ {
				seen[i], frontier[i], next[i] = 0, 0, 0
			}
		} else {
			bud.For(n, func(i int) { seen[i], frontier[i], next[i] = 0, 0, 0 })
		}
	} else {
		seen = make([]uint64, n)     // searches that have reached each vertex
		frontier = make([]uint64, n) // searches whose current level includes the vertex
		next = make([]uint64, n)
	}

	for s, src := range sources {
		bit := uint64(1) << uint(s)
		seen[src] |= bit
		frontier[src] |= bit
		dists[s][src] = 0
	}

	var st Stats
	level := int32(0)
	active := true
	// The parallel level body is hoisted out of the loop (reading its
	// level state through captured variables) so the per-level closure is
	// constructed once per traversal, not once per level.
	var scanned, any int64
	step := func(lo, hi int) {
		var localScan int64
		var localAny int64
		for v := lo; v < hi; v++ {
			f := frontier[v]
			if f == 0 {
				continue
			}
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			localScan += int64(len(adj))
			for _, u := range adj {
				// Searches in f that have not yet reached u.
				for {
					old := atomic.LoadUint64(&seen[u])
					newBits := f &^ old
					if newBits == 0 {
						break
					}
					if atomic.CompareAndSwapUint64(&seen[u], old, old|newBits) {
						// Claimed newBits for u: record distances and
						// queue u for those searches.
						for b := newBits; b != 0; b &= b - 1 {
							dists[bits.TrailingZeros64(b)][u] = level
						}
						atomicOr(&next[u], newBits)
						localAny = 1
						break
					}
				}
			}
		}
		atomic.AddInt64(&scanned, localScan)
		atomic.AddInt64(&any, localAny)
	}
	clearNext := func(i int) { next[i] = 0 }
	for active {
		st.Levels++
		level++
		scanned, any = 0, 0
		if serial {
			// Plain single-worker sweep: no atomics, no closures.
			for v := 0; v < n; v++ {
				f := frontier[v]
				if f == 0 {
					continue
				}
				adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
				scanned += int64(len(adj))
				for _, u := range adj {
					newBits := f &^ seen[u]
					if newBits == 0 {
						continue
					}
					seen[u] |= newBits
					for b := newBits; b != 0; b &= b - 1 {
						dists[bits.TrailingZeros64(b)][u] = level
					}
					next[u] |= newBits
					any = 1
				}
			}
		} else {
			bud.ForBlock(n, step)
		}
		st.ScannedEdges += scanned
		st.TopDownSteps++
		frontier, next = next, frontier
		if serial {
			for i := range next {
				next[i] = 0
			}
		} else {
			bud.For(n, clearNext)
		}
		active = any != 0
	}
	st.Levels-- // last round discovered nothing
	return st
}

// atomicOr ORs mask into *addr.
func atomicOr(addr *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == mask {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}
