package bfs

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// msBlockVerts is the vertex-range width of one MSBFS block: the fixed,
// worker-count-independent tiling every per-level pass runs over (the
// same 4096-row tile the linalg reduction layer uses, see
// linalg.ReduceBlocks). One block's three mask slabs (seen, frontier,
// next) are 3·4096·8 B = 96 KiB, so the fused finish pass re-touches
// words the expand pass just wrote while they are still cache-resident
// instead of striding all n again.
const msBlockVerts = 4096

// msBlocks returns the number of fixed vertex-range blocks covering n
// vertices (at least 1). Like linalg.ReduceBlocks it depends only on n,
// so summary bitmaps sized by it can never be desynchronized by a
// worker-count change.
func msBlocks(n int) int {
	if n <= msBlockVerts {
		return 1
	}
	return (n + msBlockVerts - 1) / msBlockVerts
}

// MSOptions configures a multi-source traversal. It shares the
// direction-switch parameters (DefaultAlpha, DefaultBeta) with the
// single-source Runner; Options.MS converts the single-source option set
// so one configuration drives both engines.
type MSOptions struct {
	Alpha int64 // top-down → bottom-up switch threshold (0 = DefaultAlpha)
	Beta  int64 // bottom-up → top-down switch threshold (0 = DefaultBeta)
	// ForceTopDown keeps the traversal on the retained top-down-only
	// path — the pre-direction-optimizing engine, kept verbatim as the
	// ablation baseline and the equivalence oracle of the fuzz suite.
	ForceTopDown bool
}

// MS converts single-source traversal options into the equivalent
// multi-source options, so a caller holding one bfs.Options (e.g.
// core.Options.BFS) configures the single- and multi-source engines
// identically.
func (o Options) MS() MSOptions {
	return MSOptions{Alpha: o.Alpha, Beta: o.Beta, ForceTopDown: o.ForceTopDown}
}

// withDefaults normalizes zero values to the shared GAP-style defaults.
func (o MSOptions) withDefaults() MSOptions {
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Beta <= 0 {
		o.Beta = DefaultBeta
	}
	return o
}

// MSBFS runs up to 64 breadth-first searches simultaneously using
// bit-parallel frontiers (the multi-source BFS of Then et al.): each
// vertex carries a 64-bit mask of the searches that have reached it, so
// one pass over an adjacency list advances every search at once. This is
// the natural engine for the random-pivots strategy (§4.4, Table 6) when
// the number of pivots exceeds the core count: the s distance vectors are
// produced in ⌈s/64⌉ passes whose memory traffic is shared across
// sources.
//
// dists must have one row (length NumV) per source. Unreached vertices
// keep Unreached.
func MSBFS(g *graph.CSR, sources []int32, dists [][]int32) Stats {
	return MSBFSScratch(g, sources, dists, nil)
}

// MSBFSScratch is MSBFS running over sc's pooled mask buffers (nil
// allocates fresh ones, equivalent to MSBFS). With a scratch the
// traversal performs no O(n)-sized allocations, and on one worker the
// whole call is allocation-free: every level loop has a plain serial
// body, so no closure ever escapes.
func MSBFSScratch(g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch) Stats {
	return MSBFSBudget(parallel.Live(), g, sources, dists, sc)
}

// MSBFSBudget is MSBFSScratch under an explicit worker budget and the
// default direction-optimizing options. Claims always store the same
// level regardless of direction or of which worker wins, so the distance
// rows are bitwise identical for every budget and either direction.
func MSBFSBudget(bud parallel.Budget, g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch) Stats {
	return MSBFSOpts(bud, g, sources, dists, sc, MSOptions{})
}

// MSBFSOpts is the fully-configurable multi-source traversal: a
// direction-optimizing (Beamer α/β), cache-tiled engine by default, or
// the retained top-down-only path under opt.ForceTopDown. Both produce
// bitwise-identical distance rows — a vertex's level does not depend on
// the direction it was discovered in — so ForceTopDown changes timing
// and Stats only.
func MSBFSOpts(bud parallel.Budget, g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch, opt MSOptions) Stats {
	if len(sources) > 64 {
		panic("bfs: MSBFS supports at most 64 sources per batch")
	}
	if len(dists) < len(sources) {
		panic("bfs: MSBFS needs one distance row per source")
	}
	opt = opt.withDefaults()
	if opt.ForceTopDown {
		return msbfsTopDown(bud, g, sources, dists, sc)
	}
	return msbfsDirOpt(bud, g, sources, dists, sc, opt)
}

// msbfsDirOpt is the direction-optimizing, cache-tiled engine. Per level
// it runs two passes over the fixed msBlockVerts tiling:
//
//  1. Expand — top-down (frontier vertices push: CAS-claim bits of
//     seen[u], OR them into next[u]) or bottom-up (every vertex still
//     missing bits of the active source mask scans its own adjacency,
//     ORs its neighbors' frontier masks, and claims the missing bits
//     with one plain store — the vertex is the only writer of its own
//     words, so the bottom-up step needs no CAS at all, and it stops
//     scanning as soon as every missing bit is found).
//  2. Finish — one fused block pass that (a) counts the new frontier's
//     occupied vertices and their total degree (the scanned-edge
//     estimates driving the α/β switch), and (b) clears the old
//     frontier's words so the buffer is ready to be the next level's
//     next. Both halves consult the per-block summary bitmaps, so
//     sparse levels touch only blocks that actually hold frontier bits
//     instead of striding all n — the separate full-length clear pass
//     of the retained path is gone entirely.
func msbfsDirOpt(bud parallel.Budget, g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch, opt MSOptions) Stats {
	n := g.NumV
	serial := bud.Serial(n)
	for s := range sources {
		d := dists[s]
		if serial {
			for i := range d {
				d[i] = Unreached
			}
		} else {
			bud.For(n, func(i int) { d[i] = Unreached })
		}
	}
	blocks := msBlocks(n)
	sumWords := (blocks + 63) / 64
	var seen, frontier, next, frontSum, nextSum []uint64
	if sc != nil {
		sc.ensureMS(n)
		seen, frontier, next = sc.msSeen, sc.msFront, sc.msNext
		frontSum, nextSum = sc.msFrontSum, sc.msNextSum
		if serial {
			for i := 0; i < n; i++ {
				seen[i], frontier[i], next[i] = 0, 0, 0
			}
		} else {
			bud.For(n, func(i int) { seen[i], frontier[i], next[i] = 0, 0, 0 })
		}
		for i := range frontSum {
			frontSum[i], nextSum[i] = 0, 0
		}
	} else {
		seen = make([]uint64, n)     // searches that have reached each vertex
		frontier = make([]uint64, n) // searches whose current level includes the vertex
		next = make([]uint64, n)
		frontSum = make([]uint64, sumWords) // blocks with any frontier bit
		nextSum = make([]uint64, sumWords)  // blocks with any next bit
	}

	// full is the active source mask: bottom-up skips vertices already
	// seen by every search in the batch.
	full := ^uint64(0)
	if len(sources) < 64 {
		full = uint64(1)<<uint(len(sources)) - 1
	}

	var frontierVerts, frontierEdges int64
	for s, src := range sources {
		bit := uint64(1) << uint(s)
		if frontier[src] == 0 {
			frontierVerts++
			frontierEdges += int64(g.Degree(src))
		}
		seen[src] |= bit
		frontier[src] |= bit
		blk := int(src) / msBlockVerts
		frontSum[blk>>6] |= uint64(1) << uint(blk&63)
		dists[s][src] = 0
	}
	unexplored := int64(len(g.Adj)) - frontierEdges

	var st Stats
	level := int32(0)
	bottomUp := false
	// Workers for the block passes: the clamp is against the block count,
	// not MinGrain — one block is 4096 vertices of real work.
	p := 1
	if !serial {
		if p = bud.Workers(); p > blocks {
			p = blocks
		}
	}
	var scanTot, nfTot, neTot int64
	// The parallel pass bodies are hoisted out of the level loop (reading
	// level/frontier state through captured variables) so each closure is
	// constructed once per traversal, not once per level.
	tdPar := func(w, blo, bhi int) {
		var localScan int64
		for blk := blo; blk < bhi; blk++ {
			if frontSum[blk>>6]&(uint64(1)<<uint(blk&63)) == 0 {
				continue
			}
			lo := blk * msBlockVerts
			hi := lo + msBlockVerts
			if hi > n {
				hi = n
			}
			for v := lo; v < hi; v++ {
				f := frontier[v]
				if f == 0 {
					continue
				}
				adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
				localScan += int64(len(adj))
				for _, u := range adj {
					for {
						old := atomic.LoadUint64(&seen[u])
						newBits := f &^ old
						if newBits == 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&seen[u], old, old|newBits) {
							// Claimed newBits for u: record distances and
							// queue u for those searches.
							for b := newBits; b != 0; b &= b - 1 {
								dists[bits.TrailingZeros64(b)][u] = level
							}
							atomicOr(&next[u], newBits)
							ub := int(u) / msBlockVerts
							if m := uint64(1) << uint(ub&63); atomic.LoadUint64(&nextSum[ub>>6])&m == 0 {
								atomicOr(&nextSum[ub>>6], m)
							}
							break
						}
					}
				}
			}
		}
		atomic.AddInt64(&scanTot, localScan)
	}
	buPar := func(w, blo, bhi int) {
		var localScan int64
		for blk := blo; blk < bhi; blk++ {
			lo := blk * msBlockVerts
			hi := lo + msBlockVerts
			if hi > n {
				hi = n
			}
			claimed := false
			for v := lo; v < hi; v++ {
				missing := full &^ seen[v]
				if missing == 0 {
					continue
				}
				adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
				var claim uint64
				scanned := len(adj)
				for k := 0; k < len(adj); k++ {
					claim |= frontier[adj[k]]
					if claim&missing == missing {
						scanned = k + 1
						break
					}
				}
				localScan += int64(scanned)
				newBits := claim & missing
				if newBits == 0 {
					continue
				}
				// The vertex claims its own bits: this worker owns [lo, hi),
				// frontier is read-only this level, and next[v] was cleared
				// by the previous finish pass — one plain store each, no CAS.
				seen[v] |= newBits
				next[v] = newBits
				for b := newBits; b != 0; b &= b - 1 {
					dists[bits.TrailingZeros64(b)][v] = level
				}
				claimed = true
			}
			if claimed {
				// Once per claiming block; the summary word spans 64 blocks
				// and may straddle a worker boundary, hence the atomic.
				atomicOr(&nextSum[blk>>6], uint64(1)<<uint(blk&63))
			}
		}
		atomic.AddInt64(&scanTot, localScan)
	}
	finPar := func(w, blo, bhi int) {
		var verts, edges int64
		for blk := blo; blk < bhi; blk++ {
			lo := blk * msBlockVerts
			hi := lo + msBlockVerts
			if hi > n {
				hi = n
			}
			if nextSum[blk>>6]&(uint64(1)<<uint(blk&63)) != 0 {
				for v := lo; v < hi; v++ {
					if next[v] != 0 {
						verts++
						edges += g.Offsets[v+1] - g.Offsets[v]
					}
				}
			}
			if frontSum[blk>>6]&(uint64(1)<<uint(blk&63)) != 0 {
				for v := lo; v < hi; v++ {
					frontier[v] = 0
				}
			}
		}
		atomic.AddInt64(&nfTot, verts)
		atomic.AddInt64(&neTot, edges)
	}

	for frontierVerts > 0 {
		st.Levels++
		level++
		// Beamer α/β direction switch on the scanned-edge estimates; no
		// frontier conversion is needed — both directions read and write
		// the same bitmap slabs.
		if !bottomUp && frontierEdges > unexplored/opt.Alpha {
			bottomUp = true
		} else if bottomUp && frontierVerts < int64(n)/opt.Beta {
			bottomUp = false
		}
		if p <= 1 {
			// Plain single-worker sweeps: no atomics, no closure dispatch.
			var localScan int64
			if bottomUp {
				for blk := 0; blk < blocks; blk++ {
					lo := blk * msBlockVerts
					hi := lo + msBlockVerts
					if hi > n {
						hi = n
					}
					claimed := false
					for v := lo; v < hi; v++ {
						missing := full &^ seen[v]
						if missing == 0 {
							continue
						}
						adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
						var claim uint64
						scanned := len(adj)
						for k := 0; k < len(adj); k++ {
							claim |= frontier[adj[k]]
							if claim&missing == missing {
								scanned = k + 1
								break
							}
						}
						localScan += int64(scanned)
						newBits := claim & missing
						if newBits == 0 {
							continue
						}
						seen[v] |= newBits
						next[v] = newBits
						for b := newBits; b != 0; b &= b - 1 {
							dists[bits.TrailingZeros64(b)][v] = level
						}
						claimed = true
					}
					if claimed {
						nextSum[blk>>6] |= uint64(1) << uint(blk&63)
					}
				}
			} else {
				for blk := 0; blk < blocks; blk++ {
					if frontSum[blk>>6]&(uint64(1)<<uint(blk&63)) == 0 {
						continue
					}
					lo := blk * msBlockVerts
					hi := lo + msBlockVerts
					if hi > n {
						hi = n
					}
					for v := lo; v < hi; v++ {
						f := frontier[v]
						if f == 0 {
							continue
						}
						adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
						localScan += int64(len(adj))
						for _, u := range adj {
							newBits := f &^ seen[u]
							if newBits == 0 {
								continue
							}
							seen[u] |= newBits
							for b := newBits; b != 0; b &= b - 1 {
								dists[bits.TrailingZeros64(b)][u] = level
							}
							next[u] |= newBits
							ub := int(u) / msBlockVerts
							nextSum[ub>>6] |= uint64(1) << uint(ub&63)
						}
					}
				}
			}
			scanTot = localScan
			nfTot, neTot = 0, 0
			for blk := 0; blk < blocks; blk++ {
				lo := blk * msBlockVerts
				hi := lo + msBlockVerts
				if hi > n {
					hi = n
				}
				if nextSum[blk>>6]&(uint64(1)<<uint(blk&63)) != 0 {
					for v := lo; v < hi; v++ {
						if next[v] != 0 {
							nfTot++
							neTot += g.Offsets[v+1] - g.Offsets[v]
						}
					}
				}
				if frontSum[blk>>6]&(uint64(1)<<uint(blk&63)) != 0 {
					for v := lo; v < hi; v++ {
						frontier[v] = 0
					}
				}
			}
		} else {
			scanTot, nfTot, neTot = 0, 0, 0
			if bottomUp {
				parallel.ForBlockIndexed(p, blocks, buPar)
			} else {
				parallel.ForBlockIndexed(p, blocks, tdPar)
			}
			parallel.ForBlockIndexed(p, blocks, finPar)
		}
		if bottomUp {
			st.BottomUpSteps++
		} else {
			st.TopDownSteps++
		}
		st.ScannedEdges += scanTot
		// Swap the roles of the two frontier slabs and their summaries; the
		// finish pass already zeroed the outgoing frontier's words, so the
		// incoming next buffer is clean. Only the tiny summary needs a
		// fresh clear (⌈blocks/64⌉ words, ≤ n/2^18).
		frontier, next = next, frontier
		frontSum, nextSum = nextSum, frontSum
		for i := range nextSum {
			nextSum[i] = 0
		}
		frontierVerts, frontierEdges = nfTot, neTot
		unexplored -= neTot
	}
	st.Levels-- // the last level discovered nothing
	if st.Levels < 0 {
		st.Levels = 0
	}
	return st
}

// msbfsTopDown is the retained top-down-only engine (the pre-PR-10
// MSBFS, kept verbatim): one full-length sweep of the frontier slab per
// level plus a separate full-length next-clear. It is the ForceTopDown
// ablation and the bitwise-equivalence oracle the direction-optimizing
// engine is fuzzed against.
func msbfsTopDown(bud parallel.Budget, g *graph.CSR, sources []int32, dists [][]int32, sc *Scratch) Stats {
	n := g.NumV
	serial := bud.Serial(n)
	for s := range sources {
		d := dists[s]
		if serial {
			for i := range d {
				d[i] = Unreached
			}
		} else {
			bud.For(n, func(i int) { d[i] = Unreached })
		}
	}
	var seen, frontier, next []uint64
	if sc != nil {
		sc.ensureMS(n)
		seen, frontier, next = sc.msSeen, sc.msFront, sc.msNext
		if serial {
			for i := 0; i < n; i++ {
				seen[i], frontier[i], next[i] = 0, 0, 0
			}
		} else {
			bud.For(n, func(i int) { seen[i], frontier[i], next[i] = 0, 0, 0 })
		}
	} else {
		seen = make([]uint64, n)     // searches that have reached each vertex
		frontier = make([]uint64, n) // searches whose current level includes the vertex
		next = make([]uint64, n)
	}

	for s, src := range sources {
		bit := uint64(1) << uint(s)
		seen[src] |= bit
		frontier[src] |= bit
		dists[s][src] = 0
	}

	var st Stats
	level := int32(0)
	active := true
	// The parallel level body is hoisted out of the loop (reading its
	// level state through captured variables) so the per-level closure is
	// constructed once per traversal, not once per level.
	var scanned, any int64
	step := func(lo, hi int) {
		var localScan int64
		var localAny int64
		for v := lo; v < hi; v++ {
			f := frontier[v]
			if f == 0 {
				continue
			}
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			localScan += int64(len(adj))
			for _, u := range adj {
				// Searches in f that have not yet reached u.
				for {
					old := atomic.LoadUint64(&seen[u])
					newBits := f &^ old
					if newBits == 0 {
						break
					}
					if atomic.CompareAndSwapUint64(&seen[u], old, old|newBits) {
						// Claimed newBits for u: record distances and
						// queue u for those searches.
						for b := newBits; b != 0; b &= b - 1 {
							dists[bits.TrailingZeros64(b)][u] = level
						}
						atomicOr(&next[u], newBits)
						localAny = 1
						break
					}
				}
			}
		}
		atomic.AddInt64(&scanned, localScan)
		atomic.AddInt64(&any, localAny)
	}
	clearNext := func(i int) { next[i] = 0 }
	for active {
		st.Levels++
		level++
		scanned, any = 0, 0
		if serial {
			// Plain single-worker sweep: no atomics, no closures.
			for v := 0; v < n; v++ {
				f := frontier[v]
				if f == 0 {
					continue
				}
				adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
				scanned += int64(len(adj))
				for _, u := range adj {
					newBits := f &^ seen[u]
					if newBits == 0 {
						continue
					}
					seen[u] |= newBits
					for b := newBits; b != 0; b &= b - 1 {
						dists[bits.TrailingZeros64(b)][u] = level
					}
					next[u] |= newBits
					any = 1
				}
			}
		} else {
			bud.ForBlock(n, step)
		}
		st.ScannedEdges += scanned
		st.TopDownSteps++
		frontier, next = next, frontier
		if serial {
			for i := range next {
				next[i] = 0
			}
		} else {
			bud.For(n, clearNext)
		}
		active = any != 0
	}
	st.Levels-- // last round discovered nothing
	return st
}

// atomicOr ORs mask into *addr. Every caller holds bits of mask
// exclusively (they were just CAS-claimed from the seen word), so mask
// can never already be fully present — the helper goes straight to the
// CAS instead of the old load-and-test first iteration, which could
// never return early.
func atomicOr(addr *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}
