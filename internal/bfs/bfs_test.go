package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSerialPathDistances(t *testing.T) {
	g := gen.Path(100)
	dist := make([]int32, g.NumV)
	levels := Serial(g, 0, dist)
	if levels != 100 {
		t.Fatalf("levels = %d, want 100", levels)
	}
	for i, d := range dist {
		if d != int32(i) {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
}

func TestParallelMatchesSerialOnFixtures(t *testing.T) {
	fixtures := map[string]*graph.CSR{
		"path":  gen.Path(2000),
		"cycle": gen.Cycle(999),
		"star":  gen.Star(5000),
		"grid":  gen.Grid2D(50, 40),
		"tree":  gen.BinaryTree(4095),
		"kron":  gen.Kron(10, 8, 1),
		"urand": gen.Urand(10, 10, 2),
		"web":   gen.WebGraph(3000, 10, 3),
	}
	for name, g := range fixtures {
		runner := NewRunner(g, Options{})
		want := make([]int32, g.NumV)
		got := make([]int32, g.NumV)
		for _, src := range []int32{0, int32(g.NumV / 2), int32(g.NumV - 1)} {
			Serial(g, src, want)
			st := runner.Distances(src, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s src=%d: dist[%d] = %d, want %d", name, src, i, got[i], want[i])
				}
			}
			if st.Levels == 0 {
				t.Fatalf("%s: zero levels", name)
			}
		}
	}
}

func TestParallelMatchesSerialProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(300)
		edges := make([]graph.Edge, 2*n)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
		if err != nil || g.NumV < 2 {
			return true
		}
		src := int32(r.Intn(g.NumV))
		want := make([]int32, g.NumV)
		got := make([]int32, g.NumV)
		Serial(g, src, want)
		NewRunner(g, Options{}).Distances(src, got)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestForceTopDownMatchesDefault(t *testing.T) {
	g := gen.Kron(11, 10, 5)
	src := int32(0)
	a := make([]int32, g.NumV)
	b := make([]int32, g.NumV)
	stDefault := NewRunner(g, Options{}).Distances(src, a)
	stTopDown := NewRunner(g, Options{ForceTopDown: true}).Distances(src, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dist[%d]: %d vs %d", i, a[i], b[i])
		}
	}
	if stTopDown.BottomUpSteps != 0 {
		t.Fatalf("ForceTopDown ran %d bottom-up steps", stTopDown.BottomUpSteps)
	}
	// Direction optimization must reduce scanned edges on skewed
	// low-diameter graphs (the γ < 1 of Table 1).
	if stDefault.BottomUpSteps > 0 && stDefault.ScannedEdges >= stTopDown.ScannedEdges {
		t.Fatalf("direction optimization scanned %d ≥ top-down %d",
			stDefault.ScannedEdges, stTopDown.ScannedEdges)
	}
}

func TestDistanceAxiomsProperty(t *testing.T) {
	// BFS distances satisfy: d(src)=0; every edge differs by at most 1;
	// every reached vertex ≠ src has a neighbor at d−1.
	g := gen.Urand(9, 8, 11)
	runner := NewRunner(g, Options{})
	dist := make([]int32, g.NumV)
	for trial := 0; trial < 5; trial++ {
		src := int32((trial * 131) % g.NumV)
		runner.Distances(src, dist)
		if dist[src] != 0 {
			t.Fatalf("dist[src] = %d", dist[src])
		}
		for v := int32(0); int(v) < g.NumV; v++ {
			if dist[v] == Unreached {
				t.Fatalf("vertex %d unreached in connected graph", v)
			}
			hasParent := dist[v] == 0
			for _, u := range g.Neighbors(v) {
				diff := dist[v] - dist[u]
				if diff < -1 || diff > 1 {
					t.Fatalf("edge {%d,%d}: |%d − %d| > 1", v, u, dist[v], dist[u])
				}
				if dist[u] == dist[v]-1 {
					hasParent = true
				}
			}
			if !hasParent {
				t.Fatalf("vertex %d at distance %d has no parent", v, dist[v])
			}
		}
	}
}

func TestDisconnectedMarksUnreached(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int32, 4)
	NewRunner(g, Options{}).Distances(0, dist)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatalf("cross-component distances %d %d, want Unreached", dist[2], dist[3])
	}
	if dist[0] != 0 || dist[1] != 1 {
		t.Fatalf("in-component distances wrong: %v", dist)
	}
}

func TestStarTraversalStats(t *testing.T) {
	g := gen.Star(100000)
	dist := make([]int32, g.NumV)
	st := NewRunner(g, Options{}).Distances(0, dist)
	if st.Levels != 2 {
		t.Fatalf("star levels = %d, want 2", st.Levels)
	}
	for i := 1; i < g.NumV; i++ {
		if dist[i] != 1 {
			t.Fatalf("leaf %d at distance %d", i, dist[i])
		}
	}
}

func TestRunnerReuseAcrossSources(t *testing.T) {
	g := gen.Grid2D(30, 30)
	runner := NewRunner(g, Options{})
	want := make([]int32, g.NumV)
	got := make([]int32, g.NumV)
	for src := int32(0); src < 10; src++ {
		Serial(g, src, want)
		runner.Distances(src, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("reused runner wrong at src=%d", src)
			}
		}
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(200)
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(199)
	for _, i := range []int32{0, 63, 64, 199} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(100) {
		t.Fatal("bit 100 spuriously set")
	}
	b.Reset()
	if b.Get(0) || b.Get(199) {
		t.Fatal("reset did not clear")
	}
	b.SetSerial(5)
	if !b.Get(5) {
		t.Fatal("SetSerial failed")
	}
	o := NewBitmap(200)
	o.Set(7)
	b.Swap(o)
	if !b.Get(7) || b.Get(5) || !o.Get(5) {
		t.Fatal("swap failed")
	}
}

func TestMSBFSMatchesSerial(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"grid": gen.Grid2D(30, 30),
		"kron": gen.Kron(9, 8, 2),
		"path": gen.Path(500),
	}
	for name, g := range graphs {
		sources := []int32{0, int32(g.NumV / 3), int32(g.NumV / 2), int32(g.NumV - 1)}
		dists := make([][]int32, len(sources))
		for i := range dists {
			dists[i] = make([]int32, g.NumV)
		}
		st := MSBFS(g, sources, dists)
		want := make([]int32, g.NumV)
		for i, src := range sources {
			Serial(g, src, want)
			for v := range want {
				if dists[i][v] != want[v] {
					t.Fatalf("%s src=%d: dist[%d] = %d, want %d", name, src, v, dists[i][v], want[v])
				}
			}
		}
		if st.ScannedEdges == 0 || st.Levels == 0 {
			t.Fatalf("%s: implausible stats %+v", name, st)
		}
	}
}

func TestMSBFS64Sources(t *testing.T) {
	g := gen.Kron(10, 8, 5)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32((i * 131) % g.NumV)
	}
	dists := make([][]int32, 64)
	for i := range dists {
		dists[i] = make([]int32, g.NumV)
	}
	MSBFS(g, sources, dists)
	want := make([]int32, g.NumV)
	for _, i := range []int{0, 31, 63} {
		Serial(g, sources[i], want)
		for v := range want {
			if dists[i][v] != want[v] {
				t.Fatalf("source %d wrong at %d", i, v)
			}
		}
	}
}

func TestMSBFSDuplicateSources(t *testing.T) {
	g := gen.Grid2D(10, 10)
	sources := []int32{5, 5}
	dists := [][]int32{make([]int32, g.NumV), make([]int32, g.NumV)}
	MSBFS(g, sources, dists)
	for v := 0; v < g.NumV; v++ {
		if dists[0][v] != dists[1][v] {
			t.Fatalf("duplicate sources disagree at %d", v)
		}
	}
}

func TestMSBFSPanicsOnMisuse(t *testing.T) {
	g := gen.Path(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("65 sources accepted")
			}
		}()
		MSBFS(g, make([]int32, 65), make([][]int32, 65))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short dists accepted")
			}
		}()
		MSBFS(g, []int32{0, 1}, [][]int32{make([]int32, 4)})
	}()
}

func TestMSBFSDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	dists := [][]int32{make([]int32, 4)}
	MSBFS(g, []int32{0}, dists)
	if dists[0][2] != Unreached || dists[0][3] != Unreached {
		t.Fatalf("unreachable not marked: %v", dists[0])
	}
}
