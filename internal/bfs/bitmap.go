// Package bfs implements the graph-traversal phase of ParHDE: a parallel
// level-synchronous breadth-first search with the direction-optimizing
// top-down/bottom-up switch of Beamer et al., as adapted from the GAP
// Benchmark Suite, modified to produce hop distances rather than parent
// pointers (ICPP'20 §3.1).
package bfs

import "sync/atomic"

// Bitmap is a fixed-size concurrent bitset over vertex ids. Set uses an
// atomic OR so workers handling adjacent vertices may share words safely;
// Get is a plain load, valid under the level-synchronous phase barrier.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns a bitmap able to hold n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Set atomically sets bit i.
func (b *Bitmap) Set(i int32) {
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// SetSerial sets bit i without atomics; callers must own the bitmap.
func (b *Bitmap) SetSerial(i int32) {
	b.words[i>>6] |= uint64(1) << (uint(i) & 63)
}

// Get reports bit i.
func (b *Bitmap) Get(i int32) bool {
	return b.words[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// Swap exchanges the contents of two bitmaps (pointer swap).
func (b *Bitmap) Swap(o *Bitmap) {
	b.words, o.words = o.words, b.words
}
