package bfs

// Scratch owns the reusable traversal state of a Runner: the two frontier
// bitmaps, the top-down queue, and the per-worker next-queue buffers. A
// Runner is bound to one graph; a Scratch is bound only to a vertex-count
// ceiling, so a pooled workspace can carry one Scratch across many
// same-shaped graphs (and regrow it when a bigger graph arrives) without
// re-paying the frontier allocations on every layout job.
type Scratch struct {
	front *Bitmap
	next  *Bitmap
	queue []int32
	nextQ [][]int32
}

// NewScratch returns traversal scratch sized for n-vertex graphs and the
// given worker count.
func NewScratch(n, workers int) *Scratch {
	sc := &Scratch{}
	sc.ensure(n, workers)
	return sc
}

// ensure grows the scratch to cover n vertices and workers per-worker
// queues. Already-sufficient buffers are kept (capacity is never shed),
// so reuse on a same-shaped graph touches no allocator.
func (sc *Scratch) ensure(n, workers int) {
	if sc.front == nil || len(sc.front.words) < (n+63)/64 {
		sc.front = NewBitmap(n)
		sc.next = NewBitmap(n)
	}
	if sc.queue == nil {
		sc.queue = make([]int32, 0, 1024)
	}
	if len(sc.nextQ) < workers {
		nq := make([][]int32, workers)
		copy(nq, sc.nextQ)
		sc.nextQ = nq
	}
}
