package bfs

// Scratch owns the reusable traversal state of a Runner: the two frontier
// bitmaps, the top-down queue, and the per-worker next-queue buffers. A
// Runner is bound to one graph; a Scratch is bound only to a vertex-count
// ceiling, so a pooled workspace can carry one Scratch across many
// same-shaped graphs (and regrow it when a bigger graph arrives) without
// re-paying the frontier allocations on every layout job.
type Scratch struct {
	front *Bitmap
	next  *Bitmap
	queue []int32
	nextQ [][]int32
	// Multi-source traversal state: per-vertex 64-bit search masks. Only
	// allocated once an MSBFSScratch call arrives (the single-source
	// runner never touches them).
	msSeen  []uint64
	msFront []uint64
	msNext  []uint64
	// Per-block frontier summaries for the tiled direction-optimizing
	// engine: one bit per msBlockVerts-vertex block (msFrontSum marks
	// blocks holding frontier bits, msNextSum next-frontier bits), so
	// sparse levels skip whole blocks instead of striding all n.
	msFrontSum []uint64
	msNextSum  []uint64
}

// NewScratch returns traversal scratch sized for n-vertex graphs and the
// given worker count.
func NewScratch(n, workers int) *Scratch {
	sc := &Scratch{}
	sc.ensure(n, workers)
	return sc
}

// ensure grows the scratch to cover n vertices and workers per-worker
// queues. Already-sufficient buffers are kept (capacity is never shed),
// so reuse on a same-shaped graph touches no allocator.
func (sc *Scratch) ensure(n, workers int) {
	if sc.front == nil || len(sc.front.words) < (n+63)/64 {
		sc.front = NewBitmap(n)
		sc.next = NewBitmap(n)
	}
	if sc.queue == nil {
		sc.queue = make([]int32, 0, 1024)
	}
	if len(sc.nextQ) < workers {
		nq := make([][]int32, workers)
		copy(nq, sc.nextQ)
		sc.nextQ = nq
	}
}

// ensureMS grows the multi-source mask buffers (and their block
// summaries) to cover n vertices.
func (sc *Scratch) ensureMS(n int) {
	if cap(sc.msSeen) < n {
		sc.msSeen = make([]uint64, n)
		sc.msFront = make([]uint64, n)
		sc.msNext = make([]uint64, n)
	}
	sc.msSeen, sc.msFront, sc.msNext = sc.msSeen[:n], sc.msFront[:n], sc.msNext[:n]
	sw := (msBlocks(n) + 63) / 64
	if cap(sc.msFrontSum) < sw {
		sc.msFrontSum = make([]uint64, sw)
		sc.msNextSum = make([]uint64, sw)
	}
	sc.msFrontSum, sc.msNextSum = sc.msFrontSum[:sw], sc.msNextSum[:sw]
}
