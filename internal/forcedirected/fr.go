// Package forcedirected implements a grid-accelerated Fruchterman-Reingold
// layout — the class of algorithms the paper's §4.2 compares ParHDE
// against ("MulMent reports 27 seconds for a graph with a million
// vertices… ParHDE is two orders of magnitude faster"; ForceAtlas2 on
// GPUs runs "in the order of several minutes"). Having the baseline in
// the repository lets the benchmark harness reproduce that comparison
// directly.
package forcedirected

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Options controls the simulation.
type Options struct {
	Iterations int     // force sweeps (default 50)
	Seed       uint64  // initial random placement
	Theta      float64 // neighborhood radius in grid cells for repulsion (default 1)
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 50
	}
	if o.Theta <= 0 {
		o.Theta = 1
	}
	return o
}

// Layout runs Fruchterman-Reingold on g. Repulsive forces are
// approximated with a uniform spatial grid: each vertex repels only
// vertices in its own and adjacent cells, plus each non-empty far cell's
// aggregate mass at its centroid — the standard linear-time
// approximation, close in spirit to the quadtree methods of the
// GPU/multipole implementations the paper cites.
func Layout(g *graph.CSR, opt Options) *core.Layout {
	opt = opt.withDefaults()
	n := g.NumV
	l := core.RandomLayout(n, 2, opt.Seed)
	if n <= 1 {
		return l
	}
	area := 1.0
	k := math.Sqrt(area / float64(n)) // ideal edge length
	x, y := l.X(), l.Y()
	dispX := make([]float64, n)
	dispY := make([]float64, n)

	cells := int(math.Ceil(1 / (4 * k))) // cell width ≈ 4k
	if cells < 1 {
		cells = 1
	}
	if cells > 256 {
		cells = 256
	}

	temp := 0.1
	cool := math.Pow(0.01/temp, 1/float64(opt.Iterations))
	for it := 0; it < opt.Iterations; it++ {
		// Bin vertices into the grid.
		grid := make([][]int32, cells*cells)
		cellOf := func(v int) int {
			cx := int(clamp01(x[v]) * float64(cells-1))
			cy := int(clamp01(y[v]) * float64(cells-1))
			return cy*cells + cx
		}
		for v := 0; v < n; v++ {
			c := cellOf(v)
			grid[c] = append(grid[c], int32(v))
		}
		// Far-cell aggregates.
		aggX := make([]float64, len(grid))
		aggY := make([]float64, len(grid))
		aggN := make([]float64, len(grid))
		for c, vs := range grid {
			for _, v := range vs {
				aggX[c] += x[v]
				aggY[c] += y[v]
				aggN[c] += 1
			}
			if aggN[c] > 0 {
				aggX[c] /= aggN[c]
				aggY[c] /= aggN[c]
			}
		}
		rad := int(opt.Theta)
		parallel.For(n, func(v int) {
			var dx, dy float64
			cx := int(clamp01(x[v]) * float64(cells-1))
			cy := int(clamp01(y[v]) * float64(cells-1))
			// Exact repulsion from nearby cells, aggregate from far cells.
			for gy := 0; gy < cells; gy++ {
				for gx := 0; gx < cells; gx++ {
					c := gy*cells + gx
					if aggN[c] == 0 {
						continue
					}
					near := abs(gx-cx) <= rad && abs(gy-cy) <= rad
					if near {
						for _, u := range grid[c] {
							if int(u) == v {
								continue
							}
							ddx := x[v] - x[u]
							ddy := y[v] - y[u]
							d2 := ddx*ddx + ddy*ddy + 1e-12
							f := k * k / d2
							dx += ddx * f
							dy += ddy * f
						}
					} else {
						ddx := x[v] - aggX[c]
						ddy := y[v] - aggY[c]
						d2 := ddx*ddx + ddy*ddy + 1e-12
						f := aggN[c] * k * k / d2
						dx += ddx * f
						dy += ddy * f
					}
				}
			}
			// Attraction along edges.
			for _, u := range g.Neighbors(int32(v)) {
				ddx := x[v] - x[u]
				ddy := y[v] - y[u]
				d := math.Sqrt(ddx*ddx+ddy*ddy) + 1e-12
				f := d / k
				dx -= ddx / d * f * d
				dy -= ddy / d * f * d
			}
			dispX[v], dispY[v] = dx, dy
		})
		// Apply displacements, capped by temperature.
		parallel.For(n, func(v int) {
			d := math.Sqrt(dispX[v]*dispX[v] + dispY[v]*dispY[v])
			if d > 1e-12 {
				step := math.Min(d, temp)
				x[v] = clamp01(x[v] + dispX[v]/d*step)
				y[v] = clamp01(y[v] + dispY[v]/d*step)
			}
		})
		temp *= cool
	}
	return l
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
