package forcedirected

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestLayoutImprovesOverRandom(t *testing.T) {
	g := gen.Grid2D(20, 20)
	l := Layout(g, Options{Iterations: 80, Seed: 1})
	q := core.Evaluate(g, l)
	r := core.Evaluate(g, core.RandomLayout(g.NumV, 2, 2))
	if q.HallRatio >= r.HallRatio {
		t.Fatalf("FR Hall ratio %.4g not better than random %.4g", q.HallRatio, r.HallRatio)
	}
}

func TestLayoutCoordsInUnitBox(t *testing.T) {
	g := gen.Kron(8, 8, 3)
	l := Layout(g, Options{Iterations: 20, Seed: 4})
	for k := 0; k < 2; k++ {
		for _, v := range l.Coords.Col(k) {
			if v < 0 || v > 1 {
				t.Fatalf("coordinate %g outside unit box", v)
			}
		}
	}
}

func TestLayoutDeterministic(t *testing.T) {
	g := gen.Cycle(100)
	a := Layout(g, Options{Iterations: 10, Seed: 5})
	b := Layout(g, Options{Iterations: 10, Seed: 5})
	for i := range a.Coords.Data {
		if a.Coords.Data[i] != b.Coords.Data[i] {
			t.Fatal("same seed, different FR layout")
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := gen.Path(n)
		l := Layout(g, Options{Iterations: 5, Seed: 1})
		if l.NumVertices() != n {
			t.Fatalf("n=%d: layout size %d", n, l.NumVertices())
		}
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Iterations != 50 || o.Theta != 1 {
		t.Fatalf("defaults %+v", o)
	}
}
