package dyngraph

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// edgeKey mirrors the package's canonical packing for the model below.
func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// model is the trivially-correct reference: a vertex count plus a set of
// canonical edges, mutated with the same semantics Apply promises.
type model struct {
	numV  int
	edges map[uint64]struct{}
}

func (m *model) apply(mu Mutation) {
	switch mu.Op {
	case AddEdge:
		m.edges[edgeKey(mu.U, mu.V)] = struct{}{}
	case DelEdge:
		delete(m.edges, edgeKey(mu.U, mu.V))
	case AddVertices:
		m.numV += mu.Count
	case DelVertex:
		for k := range m.edges {
			if int32(k>>32) == mu.U || int32(uint32(k)) == mu.U {
				delete(m.edges, k)
			}
		}
	}
}

func (m *model) csr(t testing.TB) *graph.CSR {
	edges := make([]graph.Edge, 0, len(m.edges))
	for k := range m.edges {
		edges = append(edges, graph.Edge{U: int32(k >> 32), V: int32(uint32(k))})
	}
	g, err := graph.FromEdges(m.numV, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatalf("reference FromEdges: %v", err)
	}
	return g
}

// decodeMutation turns 5 fuzz bytes into one mutation against a graph
// that currently has numV vertices. Returns ok=false for undecodable
// slots so the fuzzer can skip them without aborting the sequence.
func decodeMutation(b []byte, numV int) (Mutation, bool) {
	if numV < 2 {
		return Mutation{}, false
	}
	u := int32(uint32(b[1])<<8|uint32(b[2])) % int32(numV)
	v := int32(uint32(b[3])<<8|uint32(b[4])) % int32(numV)
	switch b[0] % 5 {
	case 0, 1:
		if u == v {
			return Mutation{}, false
		}
		return Mutation{Op: AddEdge, U: u, V: v}, true
	case 2:
		if u == v {
			return Mutation{}, false
		}
		return Mutation{Op: DelEdge, U: u, V: v}, true
	case 3:
		return Mutation{Op: AddVertices, Count: 1 + int(b[1]%3)}, true
	default:
		return Mutation{Op: DelVertex, U: u}, true
	}
}

// FuzzRebuildEquivalence drives a dyngraph.Graph and the reference model
// with the same mutation sequence — with auto-rebuilds, interleaved
// Flushes, and batching all derived from the fuzz input — and requires
// the flushed CSR to be structurally identical to a from-scratch build.
func FuzzRebuildEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 2, 0, 1, 0, 2, 3, 1, 0, 0, 0})
	f.Add([]byte{4, 0, 3, 0, 0, 0, 0, 5, 0, 1, 1, 0, 2, 0, 5})
	f.Add(make([]byte, 60))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		base := gen.Grid2D(3, 4) // 12 vertices
		threshold := int(data[0]%8) + 1
		flushEvery := int(data[1]%5) + 2
		data = data[2:]

		d, err := New(base, Options{RebuildThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		ref := &model{numV: base.NumV, edges: map[uint64]struct{}{}}
		for v := int32(0); v < int32(base.NumV); v++ {
			for _, w := range base.Neighbors(v) {
				ref.edges[edgeKey(v, w)] = struct{}{}
			}
		}

		var batch []Mutation
		steps := 0
		for off := 0; off+5 <= len(data); off += 5 {
			mu, ok := decodeMutation(data[off:off+5], ref.numV)
			if !ok {
				continue
			}
			// Track the model eagerly so later ops in the same batch
			// decode against the post-mutation vertex count, matching
			// Apply's intra-batch semantics.
			ref.apply(mu)
			batch = append(batch, mu)
			if len(batch) == 3 {
				if _, err := d.Apply(batch); err != nil {
					t.Fatalf("Apply(%v): %v", batch, err)
				}
				batch = batch[:0]
			}
			if steps++; steps%flushEvery == 0 {
				d.Flush()
			}
		}
		if len(batch) > 0 {
			if _, err := d.Apply(batch); err != nil {
				t.Fatalf("Apply(%v): %v", batch, err)
			}
		}

		got, _ := d.Flush()
		want := ref.csr(t)
		if got.NumV != want.NumV {
			t.Fatalf("NumV: got %d want %d", got.NumV, want.NumV)
		}
		if !reflect.DeepEqual(got.Offsets, want.Offsets) {
			t.Fatalf("Offsets diverge:\n got %v\nwant %v", got.Offsets, want.Offsets)
		}
		if !reflect.DeepEqual(got.Adj, want.Adj) {
			t.Fatalf("Adj diverge:\n got %v\nwant %v", got.Adj, want.Adj)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("flushed CSR invalid: %v", err)
		}
		if d.Pending() != 0 {
			t.Fatalf("pending %d after flush", d.Pending())
		}
	})
}
