// Package dyngraph provides the mutable graph type behind the dynamic
// serving path: a CSR snapshot plus buffered adjacency deltas. The batch
// pipeline assumes immutable CSR inputs everywhere — BFS runners, the
// workspace pool, the render cache, and the job engine all key off a
// graph pointer that never changes under them — so mutability lives one
// level up: every mutation (edge insert/delete, vertex add/remove) lands
// in a small add/delete overlay, queries consult snapshot+overlay, and
// the overlay is folded into a fresh CSR by an amortized rebuild once the
// dirty-edge count crosses a configurable threshold (or a caller needs a
// materialized graph and calls Flush). Each rebuild bumps a generation
// counter, which the catalog and render cache use to invalidate anything
// derived from an older topology.
//
// Rebuilds merge the old CSR with per-vertex sorted delta lists in one
// linear pass — O(n + m + Δ log Δ) — instead of re-running the full
// graph.Builder sort/dedupe pipeline, which is the amortization that
// makes a mutation-heavy workload cheap: mutations are O(1) map updates,
// and the O(n + m) cost is paid once per threshold-many mutations.
//
// Concurrency: a Graph is safe for concurrent use. Snapshots are
// immutable once returned — readers laying out or rendering an old
// generation are never invalidated mid-run; they simply observe a stale
// generation number.
package dyngraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// DefaultRebuildThreshold is the pending dirty-edge count past which a
// mutation batch triggers an automatic CSR rebuild. The default keeps the
// overlay small enough that overlay-aware queries stay O(1)-ish while
// amortizing the O(n + m) rebuild over thousands of mutations.
const DefaultRebuildThreshold = 4096

// Sentinel errors; the HTTP layer maps these onto status codes.
var (
	// ErrWeighted reports an attempt to make a weighted graph dynamic
	// (the incremental path is defined for unweighted graphs).
	ErrWeighted = errors.New("dyngraph: weighted graphs cannot be mutated")
	// ErrBadMutation reports an invalid mutation (out-of-range vertex,
	// self loop, non-positive vertex count).
	ErrBadMutation = errors.New("dyngraph: invalid mutation")
)

// Op is a mutation kind.
type Op uint8

const (
	// AddEdge inserts the undirected edge {U, V}. Inserting an existing
	// edge is a no-op.
	AddEdge Op = iota
	// DelEdge removes the undirected edge {U, V}. Removing a missing
	// edge is a no-op.
	DelEdge
	// AddVertices appends Count fresh isolated vertices and extends the
	// id space; new ids are assigned contiguously from the old NumV.
	AddVertices
	// DelVertex removes every edge incident to U. The id slot remains
	// (isolated) so existing coordinates and ids stay stable; ids are
	// never reused or compacted.
	DelVertex
)

// String names the op the way the HTTP mutation API spells it.
func (o Op) String() string {
	switch o {
	case AddEdge:
		return "addEdge"
	case DelEdge:
		return "delEdge"
	case AddVertices:
		return "addVertices"
	case DelVertex:
		return "delVertex"
	default:
		return "unknown"
	}
}

// Mutation is one buffered graph change. U and V are the edge endpoints
// for AddEdge/DelEdge; AddVertices uses Count; DelVertex uses U.
type Mutation struct {
	Op    Op
	U, V  int32
	Count int
}

// Options tunes a dynamic graph. The zero value gets sane defaults.
type Options struct {
	// RebuildThreshold is the pending dirty-edge count that triggers an
	// automatic rebuild at the end of an Apply batch
	// (0 = DefaultRebuildThreshold, negative = only Flush rebuilds).
	RebuildThreshold int
}

// Result summarizes one Apply batch.
type Result struct {
	// Applied counts mutations that changed state (no-ops excluded).
	Applied int
	// Pending is the dirty-edge overlay size after the batch.
	Pending int
	// NumV is the vertex-id space after the batch.
	NumV int
	// Gen is the snapshot generation after the batch.
	Gen uint64
	// Rebuilt reports whether the batch crossed the threshold and the
	// overlay was folded into a fresh CSR.
	Rebuilt bool
	// FirstNewVertex is the id of the first vertex added by the batch's
	// AddVertices ops (-1 when none were added).
	FirstNewVertex int32
}

// Graph is a mutable undirected simple graph: an immutable CSR snapshot
// plus an add/delete edge overlay. Safe for concurrent use.
type Graph struct {
	mu   sync.RWMutex
	opt  Options
	base *graph.CSR // immutable; replaced wholesale by rebuilds
	numV int        // current id space; ≥ base.NumV, never shrinks
	gen  uint64     // bumped on every rebuild

	adds map[uint64]struct{} // pending edge inserts, canonical keys
	dels map[uint64]struct{} // pending edge deletes, canonical keys
}

// key packs the undirected edge {u, v} into its canonical (min, max) form.
func key(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func unkey(k uint64) (u, v int32) {
	return int32(k >> 32), int32(uint32(k))
}

// New wraps base (which must be unweighted) as a dynamic graph at
// generation 1. base must not be mutated by the caller afterwards.
func New(base *graph.CSR, opt Options) (*Graph, error) {
	if base.Weighted() {
		return nil, ErrWeighted
	}
	if opt.RebuildThreshold == 0 {
		opt.RebuildThreshold = DefaultRebuildThreshold
	}
	return &Graph{
		opt:  opt,
		base: base,
		numV: base.NumV,
		gen:  1,
		adds: map[uint64]struct{}{},
		dels: map[uint64]struct{}{},
	}, nil
}

// baseHas reports whether the snapshot contains {u, v} (false for ids
// beyond the snapshot's vertex count).
func (d *Graph) baseHas(u, v int32) bool {
	if int(u) >= d.base.NumV || int(v) >= d.base.NumV {
		return false
	}
	return d.base.HasEdge(u, v)
}

// validate dry-runs the batch against the evolving id space so Apply is
// atomic: an invalid mutation anywhere rejects the whole batch.
func (d *Graph) validate(batch []Mutation) error {
	numV := d.numV
	for i, m := range batch {
		switch m.Op {
		case AddEdge, DelEdge:
			if m.U < 0 || m.V < 0 || int(m.U) >= numV || int(m.V) >= numV {
				return fmt.Errorf("%w: mutation %d: edge {%d,%d} out of range [0,%d)", ErrBadMutation, i, m.U, m.V, numV)
			}
			if m.U == m.V {
				return fmt.Errorf("%w: mutation %d: self loop at %d", ErrBadMutation, i, m.U)
			}
		case AddVertices:
			if m.Count <= 0 {
				return fmt.Errorf("%w: mutation %d: addVertices count %d, want > 0", ErrBadMutation, i, m.Count)
			}
			numV += m.Count
		case DelVertex:
			if m.U < 0 || int(m.U) >= numV {
				return fmt.Errorf("%w: mutation %d: vertex %d out of range [0,%d)", ErrBadMutation, i, m.U, numV)
			}
		default:
			return fmt.Errorf("%w: mutation %d: unknown op %d", ErrBadMutation, i, m.Op)
		}
	}
	return nil
}

// Apply buffers a batch of mutations, rebuilding the snapshot when the
// dirty-edge overlay crosses the threshold. The batch is atomic: any
// invalid mutation rejects the whole batch with ErrBadMutation before
// state changes.
func (d *Graph) Apply(batch []Mutation) (Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.validate(batch); err != nil {
		return Result{}, err
	}
	res := Result{FirstNewVertex: -1}
	for _, m := range batch {
		switch m.Op {
		case AddEdge:
			if d.addEdgeLocked(m.U, m.V) {
				res.Applied++
			}
		case DelEdge:
			if d.delEdgeLocked(m.U, m.V) {
				res.Applied++
			}
		case AddVertices:
			if res.FirstNewVertex < 0 {
				res.FirstNewVertex = int32(d.numV)
			}
			d.numV += m.Count
			res.Applied++
		case DelVertex:
			res.Applied += d.delVertexLocked(m.U)
		}
	}
	if t := d.opt.RebuildThreshold; t > 0 && len(d.adds)+len(d.dels) >= t {
		d.rebuildLocked()
		res.Rebuilt = true
	}
	res.Pending = len(d.adds) + len(d.dels)
	res.NumV = d.numV
	res.Gen = d.gen
	return res, nil
}

func (d *Graph) addEdgeLocked(u, v int32) bool {
	k := key(u, v)
	if _, ok := d.dels[k]; ok {
		delete(d.dels, k)
		return true
	}
	if d.baseHas(u, v) {
		return false
	}
	if _, ok := d.adds[k]; ok {
		return false
	}
	d.adds[k] = struct{}{}
	return true
}

func (d *Graph) delEdgeLocked(u, v int32) bool {
	k := key(u, v)
	if _, ok := d.adds[k]; ok {
		delete(d.adds, k)
		return true
	}
	if !d.baseHas(u, v) {
		return false
	}
	if _, ok := d.dels[k]; ok {
		return false
	}
	d.dels[k] = struct{}{}
	return true
}

// delVertexLocked removes every current edge incident to v and returns
// how many it removed.
func (d *Graph) delVertexLocked(v int32) int {
	removed := 0
	if int(v) < d.base.NumV {
		for _, u := range d.base.Neighbors(v) {
			if d.delEdgeLocked(v, u) {
				removed++
			}
		}
	}
	// Pending inserts incident to v: collect first (deleting while
	// ranging a map is legal but collecting keeps the logic obvious).
	var incident []uint64
	for k := range d.adds {
		a, b := unkey(k)
		if a == v || b == v {
			incident = append(incident, k)
		}
	}
	for _, k := range incident {
		delete(d.adds, k)
		removed++
	}
	return removed
}

// Flush folds any pending overlay into a fresh CSR snapshot and returns
// it with its generation. With an empty overlay and an unchanged id space
// it is a cheap read.
func (d *Graph) Flush() (*graph.CSR, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.adds)+len(d.dels) > 0 || d.numV != d.base.NumV {
		d.rebuildLocked()
	}
	return d.base, d.gen
}

// Snapshot returns the last rebuilt CSR and its generation without
// forcing a rebuild; up to RebuildThreshold buffered mutations may not be
// reflected in it (Pending reports how many).
func (d *Graph) Snapshot() (*graph.CSR, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base, d.gen
}

// Gen returns the current snapshot generation.
func (d *Graph) Gen() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// Pending returns the dirty-edge overlay size.
func (d *Graph) Pending() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.adds) + len(d.dels)
}

// NumVertices returns the current vertex-id space (including vertices
// added since the last rebuild).
func (d *Graph) NumVertices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.numV
}

// NumEdges returns the current undirected edge count, overlay included.
func (d *Graph) NumEdges() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.NumEdges() + int64(len(d.adds)) - int64(len(d.dels))
}

// HasEdge reports whether {u, v} is currently an edge, overlay included.
func (d *Graph) HasEdge(u, v int32) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if u < 0 || v < 0 || int(u) >= d.numV || int(v) >= d.numV || u == v {
		return false
	}
	k := key(u, v)
	if _, ok := d.adds[k]; ok {
		return true
	}
	if _, ok := d.dels[k]; ok {
		return false
	}
	return d.baseHas(u, v)
}

// rebuildLocked folds the overlay into a fresh CSR: per-vertex sorted
// delta lists merged against the old sorted adjacency in one linear pass.
// Caller holds d.mu.
func (d *Graph) rebuildLocked() {
	n := d.numV
	old := d.base
	// Per-vertex sorted delta lists, both directions of every overlay edge.
	addList := deltaLists(d.adds)
	delList := deltaLists(d.dels)

	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		deg := int64(len(addList[int32(v)]) - len(delList[int32(v)]))
		if v < old.NumV {
			deg += old.Offsets[v+1] - old.Offsets[v]
		}
		offsets[v+1] = offsets[v] + deg
	}
	adj := make([]int32, offsets[n])
	for v := 0; v < n; v++ {
		out := adj[offsets[v]:offsets[v]:offsets[v+1]]
		var base []int32
		if v < old.NumV {
			base = old.Neighbors(int32(v))
		}
		out = mergeAdj(out, base, addList[int32(v)], delList[int32(v)])
		if int64(len(out)) != offsets[v+1]-offsets[v] {
			// Only reachable through a bookkeeping bug (an overlay entry
			// disagreeing with the snapshot); fail loudly rather than
			// serve a corrupt CSR.
			panic(fmt.Sprintf("dyngraph: vertex %d merged to %d arcs, expected %d", v, len(out), offsets[v+1]-offsets[v]))
		}
	}
	d.base = &graph.CSR{NumV: n, Offsets: offsets, Adj: adj}
	d.gen++
	clear(d.adds)
	clear(d.dels)
}

// deltaLists explodes canonical edge keys into per-vertex sorted
// neighbor lists (both directions).
func deltaLists(set map[uint64]struct{}) map[int32][]int32 {
	if len(set) == 0 {
		return nil
	}
	out := make(map[int32][]int32, len(set))
	for k := range set {
		u, v := unkey(k)
		out[u] = append(out[u], v)
		out[v] = append(out[v], u)
	}
	for _, l := range out {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return out
}

// mergeAdj appends (base − del) ∪ add to out, keeping sorted order. base,
// add, and del are each sorted; add is disjoint from base and del ⊆ base
// by the overlay invariants.
func mergeAdj(out, base, add, del []int32) []int32 {
	ai, di := 0, 0
	for _, u := range base {
		for di < len(del) && del[di] < u {
			di++
		}
		if di < len(del) && del[di] == u {
			di++
			continue
		}
		for ai < len(add) && add[ai] < u {
			out = append(out, add[ai])
			ai++
		}
		out = append(out, u)
	}
	out = append(out, add[ai:]...)
	return out
}
