package dyngraph

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func mustNew(t *testing.T, g *graph.CSR, opt Options) *Graph {
	t.Helper()
	d, err := New(g, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func apply(t *testing.T, d *Graph, batch ...Mutation) Result {
	t.Helper()
	res, err := d.Apply(batch)
	if err != nil {
		t.Fatalf("Apply(%v): %v", batch, err)
	}
	return res
}

func TestEdgeInsertDeleteOverlay(t *testing.T) {
	g := gen.Grid2D(4, 4) // 16 vertices, no diagonal edges
	d := mustNew(t, g, Options{})
	if d.HasEdge(0, 5) {
		t.Fatal("diagonal edge present before insert")
	}
	res := apply(t, d, Mutation{Op: AddEdge, U: 0, V: 5})
	if res.Applied != 1 || res.Pending != 1 {
		t.Fatalf("insert: applied=%d pending=%d, want 1/1", res.Applied, res.Pending)
	}
	if !d.HasEdge(0, 5) || !d.HasEdge(5, 0) {
		t.Fatal("overlay edge not visible before rebuild")
	}
	// Re-inserting is a no-op; deleting cancels the buffered insert.
	if res := apply(t, d, Mutation{Op: AddEdge, U: 5, V: 0}); res.Applied != 0 {
		t.Fatalf("duplicate insert applied=%d, want 0", res.Applied)
	}
	if res := apply(t, d, Mutation{Op: DelEdge, U: 0, V: 5}); res.Applied != 1 || res.Pending != 0 {
		t.Fatalf("cancel: applied=%d pending=%d, want 1/0", res.Applied, res.Pending)
	}
	// Deleting a base edge buffers a delete; re-inserting cancels it.
	apply(t, d, Mutation{Op: DelEdge, U: 0, V: 1})
	if d.HasEdge(0, 1) {
		t.Fatal("deleted base edge still visible")
	}
	if res := apply(t, d, Mutation{Op: AddEdge, U: 1, V: 0}); res.Pending != 0 {
		t.Fatalf("resurrect left pending=%d, want 0", res.Pending)
	}
	if !d.HasEdge(0, 1) {
		t.Fatal("resurrected edge missing")
	}
}

func TestThresholdTriggersRebuild(t *testing.T) {
	g := gen.Grid2D(8, 8)
	d := mustNew(t, g, Options{RebuildThreshold: 3})
	if d.Gen() != 1 {
		t.Fatalf("initial gen %d, want 1", d.Gen())
	}
	apply(t, d, Mutation{Op: AddEdge, U: 0, V: 9})
	apply(t, d, Mutation{Op: AddEdge, U: 0, V: 18})
	if d.Gen() != 1 || d.Pending() != 2 {
		t.Fatalf("below threshold: gen=%d pending=%d", d.Gen(), d.Pending())
	}
	res := apply(t, d, Mutation{Op: AddEdge, U: 0, V: 27})
	if !res.Rebuilt || res.Gen != 2 || res.Pending != 0 {
		t.Fatalf("threshold batch: rebuilt=%v gen=%d pending=%d", res.Rebuilt, res.Gen, res.Pending)
	}
	snap, gen := d.Snapshot()
	if gen != 2 {
		t.Fatalf("snapshot gen %d, want 2", gen)
	}
	if !snap.HasEdge(0, 27) {
		t.Fatal("rebuilt snapshot missing folded edge")
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("rebuilt snapshot invalid: %v", err)
	}
}

func TestVertexAddDelete(t *testing.T) {
	g := gen.Grid2D(3, 3) // 9 vertices
	d := mustNew(t, g, Options{})
	res := apply(t, d,
		Mutation{Op: AddVertices, Count: 2},
		Mutation{Op: AddEdge, U: 9, V: 0},
		Mutation{Op: AddEdge, U: 9, V: 10},
	)
	if res.FirstNewVertex != 9 || res.NumV != 11 {
		t.Fatalf("addVertices: first=%d numV=%d, want 9/11", res.FirstNewVertex, res.NumV)
	}
	snap, _ := d.Flush()
	if snap.NumV != 11 || !snap.HasEdge(9, 10) || !snap.HasEdge(0, 9) {
		t.Fatalf("flushed snapshot wrong: n=%d", snap.NumV)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("flushed snapshot invalid: %v", err)
	}
	// Deleting vertex 9 strips both its edges; the slot stays.
	res = apply(t, d, Mutation{Op: DelVertex, U: 9})
	if res.Applied != 2 {
		t.Fatalf("delVertex removed %d edges, want 2", res.Applied)
	}
	snap, _ = d.Flush()
	if snap.NumV != 11 || snap.Degree(9) != 0 {
		t.Fatalf("deleted vertex: n=%d deg=%d, want 11/0", snap.NumV, snap.Degree(9))
	}
}

func TestDelVertexDropsPendingInserts(t *testing.T) {
	g := gen.Grid2D(3, 3)
	d := mustNew(t, g, Options{})
	apply(t, d, Mutation{Op: AddEdge, U: 0, V: 4})
	res := apply(t, d, Mutation{Op: DelVertex, U: 4})
	// Pending insert {0,4} plus base edges of vertex 4 (grid center: 4
	// neighbors... vertex 4 of a 3x3 grid has neighbors 1,3,5,7).
	if res.Applied != 5 {
		t.Fatalf("delVertex applied %d, want 5", res.Applied)
	}
	if d.HasEdge(0, 4) {
		t.Fatal("pending insert survived delVertex")
	}
}

func TestBatchAtomicity(t *testing.T) {
	g := gen.Grid2D(3, 3)
	d := mustNew(t, g, Options{})
	_, err := d.Apply([]Mutation{
		{Op: AddEdge, U: 0, V: 4},
		{Op: AddEdge, U: 0, V: 99}, // out of range
	})
	if !errors.Is(err, ErrBadMutation) {
		t.Fatalf("err = %v, want ErrBadMutation", err)
	}
	if d.Pending() != 0 || d.HasEdge(0, 4) {
		t.Fatal("rejected batch partially applied")
	}
	// Edges may reference vertices added earlier in the same batch.
	if _, err := d.Apply([]Mutation{
		{Op: AddVertices, Count: 1},
		{Op: AddEdge, U: 9, V: 0},
	}); err != nil {
		t.Fatalf("intra-batch new-vertex edge rejected: %v", err)
	}
	if _, err := d.Apply([]Mutation{{Op: AddEdge, U: 1, V: 1}}); !errors.Is(err, ErrBadMutation) {
		t.Fatal("self loop accepted")
	}
}

func TestWeightedRejected(t *testing.T) {
	g := gen.Grid2D(3, 3).WithUnitWeights()
	if _, err := New(g, Options{}); !errors.Is(err, ErrWeighted) {
		t.Fatalf("weighted New err = %v, want ErrWeighted", err)
	}
}

func TestNumEdgesTracksOverlay(t *testing.T) {
	g := gen.Grid2D(4, 4)
	d := mustNew(t, g, Options{})
	m0 := d.NumEdges()
	apply(t, d, Mutation{Op: AddEdge, U: 0, V: 5}, Mutation{Op: DelEdge, U: 0, V: 1})
	if got := d.NumEdges(); got != m0 {
		t.Fatalf("NumEdges = %d, want %d (one add, one del)", got, m0)
	}
	snap, _ := d.Flush()
	if snap.NumEdges() != m0 {
		t.Fatalf("flushed NumEdges = %d, want %d", snap.NumEdges(), m0)
	}
}

// TestConcurrentMutateAndRead exercises the mutate/snapshot paths under
// -race: writers apply batches (crossing the rebuild threshold
// repeatedly) while readers take snapshots and run overlay queries.
// Snapshots must stay internally consistent because they are immutable.
func TestConcurrentMutateAndRead(t *testing.T) {
	g := gen.Grid2D(16, 16)
	d := mustNew(t, g, Options{RebuildThreshold: 64})
	n := int32(g.NumV)
	const writers, readers, opsPerWriter = 4, 4, 300

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for i := 0; i < opsPerWriter; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				u := int32((uint64(rng) >> 33) % uint64(n))
				v := (u + 1 + int32((uint64(rng)>>15)%uint64(n-1))) % n
				op := AddEdge
				if rng&1 == 0 {
					op = DelEdge
				}
				if _, err := d.Apply([]Mutation{{Op: op, U: u, V: v}}); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, gen := d.Snapshot()
				if gen == 0 || snap.Offsets[snap.NumV] != int64(len(snap.Adj)) {
					t.Errorf("inconsistent snapshot at gen %d", gen)
					return
				}
				d.HasEdge(0, 1)
				d.NumEdges()
				d.Pending()
			}
		}()
	}
	waitAll := make(chan struct{})
	go func() { wg.Wait(); close(waitAll) }()
	close(stop)
	<-waitAll

	snap, _ := d.Flush()
	if err := snap.Validate(); err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
}
