//go:build perf

// Package kernelbench is the perf-tagged kernel-regression harness: it
// benchmarks the blocked/fused kernels against their naive references and
// gates CI on the speedup ratios recorded in perf/kernel_budget.json.
// Ratios (blocked time vs reference time on the same machine, same run)
// are machine-portable in a way absolute ns/op numbers are not, so the
// gate travels between laptops and CI runners without re-baselining.
// Build-tagged `perf` to keep the tier-1 `go test ./...` fast and
// non-flaky; CI runs it as a dedicated gate step:
//
//	go test -tags perf -count=1 -v ./internal/kernelbench/
package kernelbench

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/parallel"
)

// kernelBudget mirrors perf/kernel_budget.json.
type kernelBudget struct {
	Comment string  `json:"comment"`
	Margin  float64 `json:"margin"`
	Kernels map[string]struct {
		BaselineSpeedup float64 `json:"baseline_speedup"`
	} `json:"kernels"`
}

func loadBudget(t *testing.T) kernelBudget {
	t.Helper()
	b, err := os.ReadFile("../../perf/kernel_budget.json")
	if err != nil {
		t.Fatalf("reading kernel budget: %v", err)
	}
	var budget kernelBudget
	if err := json.Unmarshal(b, &budget); err != nil {
		t.Fatalf("decoding kernel budget: %v", err)
	}
	if budget.Margin <= 0 || budget.Margin >= 1 {
		t.Fatalf("kernel budget margin %v out of (0,1)", budget.Margin)
	}
	return budget
}

// minTime returns the fastest of reps timings of f — the standard
// minimum-of-repetitions estimator, robust to scheduling noise.
func minTime(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func randDense(n, s int, seed int64) *linalg.Dense {
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewDense(n, s)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// TestKernelBudgetGate measures each optimized kernel against its naive
// reference and fails when the speedup falls below baseline·margin (a
// >15% regression at the default margin 0.85). GOMAXPROCS is pinned to 1
// so the ratio reflects per-core kernel quality, not the parallel
// scheduler.
func TestKernelBudgetGate(t *testing.T) {
	budget := loadBudget(t)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	check := func(name string, speedup float64) {
		t.Helper()
		want, ok := budget.Kernels[name]
		if !ok {
			t.Fatalf("no kernel budget entry for %q", name)
		}
		floor := want.BaselineSpeedup * budget.Margin
		t.Logf("%s: speedup %.2fx (baseline %.2fx, floor %.2fx)", name, speedup, want.BaselineSpeedup, floor)
		if speedup < floor {
			t.Errorf("%s: speedup %.2fx below floor %.2fx — if the regression is intentional, lower perf/kernel_budget.json", name, speedup, floor)
		}
	}

	const reps = 5

	// Blocked 4×2 AtB vs the unblocked reference (TripleProd's Z = SᵀP).
	{
		n, s := 1<<16, 48
		a, b := randDense(n, s, 1), randDense(n, s, 2)
		c := linalg.NewDense(s, s)
		tBlocked := minTime(reps, func() { linalg.AtBInto(a, b, c, nil) })
		tNaive := minTime(reps, func() { linalg.AtBNaiveInto(a, b, c, nil) })
		check("atb_blocked_vs_naive", float64(tNaive)/float64(tBlocked))
	}

	// Panel-blocked Gram-Schmidt vs the unblocked Level-1 sweep (DOrtho).
	{
		n, s := 1<<17, 48
		b := randDense(n, s, 3)
		d := make([]float64, n)
		r := rand.New(rand.NewSource(4))
		for i := range d {
			d[i] = 1 + float64(r.Intn(20))
		}
		sc := ortho.NewScratch(n, s)
		tPanel := minTime(reps, func() { ortho.DOrthogonalizeScratch(b, d, ortho.MGS, sc) })
		tL1 := minTime(reps, func() { ortho.DOrthogonalizeScratch(b, d, ortho.MGSLevel1, sc) })
		check("panel_mgs_vs_level1", float64(tL1)/float64(tPanel))
	}

	// Packed-arena kernels vs their unpacked counterparts at one worker.
	// Packing is pure overhead here — no parallel bandwidth contention to
	// relieve — so these ratios sit just below 1.0 and the entries guard
	// the overhead staying small (the multi-worker win is gated by the
	// *_packed_{2,4}w entries of TestParallelEfficiencyGate).
	{
		n, s := 1<<16, 48
		a, b := randDense(n, s, 21), randDense(n, s, 22)
		c := linalg.NewDense(s, s)
		tPacked := minTime(reps, func() { linalg.AtBPacked(a, b) })
		tStream := minTime(reps, func() { linalg.AtBInto(a, b, c, nil) })
		check("atb_packed_vs_streaming", float64(tStream)/float64(tPacked))
	}
	{
		n, s := 1<<17, 48
		b := randDense(n, s, 23)
		d := make([]float64, n)
		r := rand.New(rand.NewSource(24))
		for i := range d {
			d[i] = 1 + float64(r.Intn(20))
		}
		sc := ortho.NewScratch(n, s)
		tPacked := minTime(reps, func() { ortho.DOrthogonalizeScratch(cloneDense(b), d, ortho.MGS, sc) })
		tFlat := minTime(reps, func() { ortho.DOrthogonalizeScratch(cloneDense(b), d, ortho.MGSUnpacked, sc) })
		check("panel_mgs_packed_vs_flat", float64(tFlat)/float64(tPacked))
	}

	// Fused widen+min+argmax vs the three-pass sequence (BFS bookkeeping).
	{
		n := 1 << 20
		src := make([]int32, n)
		dmin := make([]int32, n)
		dst := make([]float64, n)
		r := rand.New(rand.NewSource(5))
		for i := range src {
			src[i] = int32(r.Intn(1 << 20))
		}
		reset := func() {
			for i := range dmin {
				dmin[i] = int32(1) << 30
			}
		}
		reset()
		tFused := minTime(reps, func() { linalg.WidenMinArgmax(dst, dmin, src) })
		reset()
		tUnfused := minTime(reps, func() {
			linalg.Int32ToFloat64(dst, src)
			linalg.MinUpdateInt32(dmin, src)
			_ = parallelArgmax(dmin)
		})
		check("fused_widen_vs_unfused", float64(tUnfused)/float64(tFused))
	}

	// Direction-optimizing tiled MSBFS vs the retained top-down path on
	// the paper's headline kron shape, one full 64-source batch. Bottom-up
	// must win on a skewed low-diameter graph even on one core — the γ < 1
	// work reduction, not a parallel effect.
	{
		g, sources, rows, sc := msbfsFixture(18, 16)
		bud := parallel.FixedBudget(1)
		tOpt := minTime(3, func() { bfs.MSBFSOpts(bud, g, sources, rows, sc, bfs.MSOptions{}) })
		tTD := minTime(3, func() { bfs.MSBFSOpts(bud, g, sources, rows, sc, bfs.MSOptions{ForceTopDown: true}) })
		check("msbfs_diropt_vs_topdown", float64(tTD)/float64(tOpt))
	}
}

// msbfsFixture builds the MSBFS gate/bench inputs: a kron graph, one full
// 64-source batch, its distance rows, and a warm traversal scratch.
func msbfsFixture(scale, factor int) (*graph.CSR, []int32, [][]int32, *bfs.Scratch) {
	g := gen.Kron(scale, factor, 102)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32((i * 997) % g.NumV)
	}
	rows := make([][]int32, 64)
	arena := make([]int32, 64*g.NumV)
	for i := range rows {
		rows[i] = arena[i*g.NumV : (i+1)*g.NumV]
	}
	return g, sources, rows, bfs.NewScratch(g.NumV, runtime.GOMAXPROCS(0))
}

// BenchmarkMSBFSDirOpt / BenchmarkMSBFSTopDown are the raw
// microbenchmarks behind the msbfs_diropt_vs_topdown gate ratio; run with
// go test -tags perf -bench MSBFS ./internal/kernelbench/.
func BenchmarkMSBFSDirOpt(b *testing.B) { benchmarkMSBFS(b, bfs.MSOptions{}) }

func BenchmarkMSBFSTopDown(b *testing.B) { benchmarkMSBFS(b, bfs.MSOptions{ForceTopDown: true}) }

func benchmarkMSBFS(b *testing.B, opt bfs.MSOptions) {
	g, sources, rows, sc := msbfsFixture(18, 16)
	bud := parallel.FixedBudget(runtime.GOMAXPROCS(0))
	b.SetBytes(int64(len(g.Adj) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.MSBFSOpts(bud, g, sources, rows, sc, opt)
	}
}

// parallelArgmax mirrors the pre-fusion argmax pass (serial here because
// the gate pins one core; parallel.ArgmaxInt32 takes the same path).
func parallelArgmax(v []int32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// BenchmarkAtBBlocked / BenchmarkAtBNaive are the raw microbenchmarks
// behind the gate's first ratio; run with
// go test -tags perf -bench AtB ./internal/kernelbench/.
func BenchmarkAtBBlocked(b *testing.B) {
	n, s := 1<<16, 48
	x, y := randDense(n, s, 1), randDense(n, s, 2)
	c := linalg.NewDense(s, s)
	b.SetBytes(int64(2 * n * s * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.AtBInto(x, y, c, nil)
	}
}

func BenchmarkAtBNaive(b *testing.B) {
	n, s := 1<<16, 48
	x, y := randDense(n, s, 1), randDense(n, s, 2)
	c := linalg.NewDense(s, s)
	b.SetBytes(int64(2 * n * s * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.AtBNaiveInto(x, y, c, nil)
	}
}

// BenchmarkAtBPacked is the cache-resident packed variant: operand
// chunks are copied into a per-worker arena and the 4×2 kernels run out
// of it (go test -tags perf -bench AtB ./internal/kernelbench/).
func BenchmarkAtBPacked(b *testing.B) {
	n, s := 1<<16, 48
	x, y := randDense(n, s, 1), randDense(n, s, 2)
	c := linalg.NewDense(s, s)
	partials := make([]float64, linalg.ReduceBlocks(n)*s*s)
	var arena linalg.PackArena
	b.SetBytes(int64(2 * n * s * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.AtBPackedBudget(parallel.Live(), x, y, c, partials, &arena)
	}
}

func benchmarkDOrtho(b *testing.B, method ortho.Method) {
	n, s := 1<<15, 48
	m := randDense(n, s, 3)
	d := make([]float64, n)
	r := rand.New(rand.NewSource(4))
	for i := range d {
		d[i] = 1 + float64(r.Intn(20))
	}
	sc := ortho.NewScratch(n, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ortho.DOrthogonalizeScratch(m, d, method, sc)
	}
}

// BenchmarkPanelMGSPacked is the default MGS path (tile-major packed
// kept-column store); BenchmarkPanelMGSUnpacked is the flat-arena
// ablation it replaced.
func BenchmarkPanelMGSPacked(b *testing.B)   { benchmarkDOrtho(b, ortho.MGS) }
func BenchmarkPanelMGSUnpacked(b *testing.B) { benchmarkDOrtho(b, ortho.MGSUnpacked) }
func BenchmarkLevel1MGS(b *testing.B)        { benchmarkDOrtho(b, ortho.MGSLevel1) }
func BenchmarkCGSLevel2(b *testing.B)        { benchmarkDOrtho(b, ortho.CGS) }

func BenchmarkWidenMinArgmaxFused(b *testing.B) {
	n := 1 << 20
	src := make([]int32, n)
	dmin := make([]int32, n)
	dst := make([]float64, n)
	r := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = int32(r.Intn(1 << 20))
	}
	b.SetBytes(int64(n * (4 + 4 + 8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.WidenMinArgmax(dst, dmin, src)
	}
}

func BenchmarkWidenMinArgmaxUnfused(b *testing.B) {
	n := 1 << 20
	src := make([]int32, n)
	dmin := make([]int32, n)
	dst := make([]float64, n)
	r := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = int32(r.Intn(1 << 20))
	}
	b.SetBytes(int64(n * (4 + 4 + 8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Int32ToFloat64(dst, src)
		linalg.MinUpdateInt32(dmin, src)
		_ = parallelArgmax(dmin)
	}
}
