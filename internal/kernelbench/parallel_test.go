//go:build perf

package kernelbench

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/parallel"
)

// TestParallelEfficiencyGate measures the 4-worker speedup of each
// parallel kernel path over its 1-worker (serial) path on the same
// machine in the same run, and gates against the *_parallel_4w entries
// of perf/kernel_budget.json. Ratios, not absolute times, so the gate
// travels across machines — but it needs 4 real cores to mean anything,
// so it skips on smaller hosts (the paper's Figure 4 scaling claims are
// likewise statements about multicore hardware).
func TestParallelEfficiencyGate(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("parallel-efficiency gate needs >= 4 cores, have %d", runtime.NumCPU())
	}
	budget := loadBudget(t)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	check := func(name string, speedup float64) {
		t.Helper()
		want, ok := budget.Kernels[name]
		if !ok {
			t.Fatalf("no kernel budget entry for %q", name)
		}
		floor := want.BaselineSpeedup * budget.Margin
		t.Logf("%s: 4-worker speedup %.2fx (baseline %.2fx, floor %.2fx)", name, speedup, want.BaselineSpeedup, floor)
		if speedup < floor {
			t.Errorf("%s: speedup %.2fx below floor %.2fx — if the regression is intentional, lower perf/kernel_budget.json", name, speedup, floor)
		}
	}

	const reps = 5
	serial := parallel.FixedBudget(1)
	four := parallel.FixedBudget(4)

	// Parallel blocked AtB: per-worker tile ranges vs the serial sweep.
	{
		n, s := 1<<20, 48
		a, b := randDense(n, s, 11), randDense(n, s, 12)
		partials := make([]float64, linalg.ReduceBlocks(n)*s*s)
		t1 := minTime(reps, func() { linalg.AtBBudget(serial, a, b, nil, partials) })
		t4 := minTime(reps, func() { linalg.AtBBudget(four, a, b, nil, partials) })
		check("atb_parallel_4w", float64(t1)/float64(t4))
	}

	// Parallel panel MGS: fused panel dots and axpys fanned over tiles.
	{
		n, s := 1<<19, 48
		d := make([]float64, n)
		r := rand.New(rand.NewSource(13))
		for i := range d {
			d[i] = 1 + float64(r.Intn(20))
		}
		sc := ortho.NewScratch(n, s)
		b1, b4 := randDense(n, s, 14), randDense(n, s, 14)
		t1 := minTime(reps, func() { ortho.DOrthogonalizeBudget(serial, cloneDense(b1), d, ortho.MGS, sc) })
		t4 := minTime(reps, func() { ortho.DOrthogonalizeBudget(four, cloneDense(b4), d, ortho.MGS, sc) })
		check("panel_mgs_parallel_4w", float64(t1)/float64(t4))
	}

	// Parallel fused widen/min/argmax with the fixed-tile reduction.
	{
		n := 1 << 22
		src := make([]int32, n)
		dmin := make([]int32, n)
		dst := make([]float64, n)
		r := rand.New(rand.NewSource(15))
		for i := range src {
			src[i] = int32(r.Intn(1 << 20))
		}
		tiles := linalg.ReduceBlocks(n)
		idxs, vals := make([]int, tiles), make([]int32, tiles)
		reset := func() {
			for i := range dmin {
				dmin[i] = int32(1) << 30
			}
		}
		reset()
		t1 := minTime(reps, func() { linalg.WidenMinArgmaxBudget(serial, dst, dmin, src, idxs, vals) })
		reset()
		t4 := minTime(reps, func() { linalg.WidenMinArgmaxBudget(four, dst, dmin, src, idxs, vals) })
		check("fused_widen_parallel_4w", float64(t1)/float64(t4))
	}

	// Whole-layout scaling on the paper's headline graph shape: the
	// ISSUE's acceptance target (kron 2^18 at 4 workers vs 1).
	{
		g := gen.Kron(18, 16, 102)
		run := func(p int) func() {
			opt := core.Options{Subspace: 10, Seed: 42, Workers: p, SkipConnectivityCheck: true}
			return func() {
				if _, _, err := core.ParHDE(g, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		t1 := minTime(3, run(1))
		t4 := minTime(3, run(4))
		check("layout_parallel_4w", float64(t1)/float64(t4))
	}
}

// cloneDense copies m so repeated in-place orthogonalizations see the
// same input.
func cloneDense(m *linalg.Dense) *linalg.Dense {
	c := linalg.NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}
