//go:build perf

package kernelbench

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/parallel"
)

// TestParallelEfficiencyGate measures the multi-worker speedup of each
// parallel kernel path over its 1-worker (serial) path on the same
// machine in the same run, and gates against the *_parallel_Nw /
// *_packed_Nw entries of perf/kernel_budget.json. Ratios, not absolute
// times, so the gate travels across machines. It needs 4 real cores for
// the full-strength *_4w floors; on 2- and 3-core hosts it falls back
// to the *_2w floors (measured at 2 workers) so smaller CI runners
// still gate something, and only a single-core host skips — loudly,
// with the reason in the test log.
func TestParallelEfficiencyGate(t *testing.T) {
	workers, suffix := 4, "_4w"
	switch {
	case runtime.NumCPU() >= 4:
	case runtime.NumCPU() >= 2:
		workers, suffix = 2, "_2w"
		t.Logf("FALLBACK: only %d cores — gating the 2-worker floors (*_2w) instead of the 4-worker acceptance floors (*_4w); run on a >=4-core host for the full gate", runtime.NumCPU())
	default:
		t.Skipf("SKIPPED (not silently): parallel-efficiency gate needs >= 2 cores, have %d — a single core cannot exhibit any parallel speedup; the *_4w acceptance floors are enforced on multicore CI runners", runtime.NumCPU())
	}
	budget := loadBudget(t)
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	check := func(name string, speedup float64) {
		t.Helper()
		name += suffix
		want, ok := budget.Kernels[name]
		if !ok {
			t.Fatalf("no kernel budget entry for %q", name)
		}
		floor := want.BaselineSpeedup * budget.Margin
		t.Logf("%s: %d-worker speedup %.2fx (baseline %.2fx, floor %.2fx)", name, workers, speedup, want.BaselineSpeedup, floor)
		if speedup < floor {
			t.Errorf("%s: speedup %.2fx below floor %.2fx — if the regression is intentional, lower perf/kernel_budget.json", name, speedup, floor)
		}
	}

	const reps = 5
	serial := parallel.FixedBudget(1)
	par := parallel.FixedBudget(workers)

	// Parallel packed AtB: per-worker tile ranges running out of packed
	// arena slots vs the serial sweep, plus the packed-vs-streaming ratio
	// at the same worker count (the cache-residency payoff the tentpole
	// claims — at one worker packing is overhead, see the single-core
	// gate; with workers contending for DRAM it must win).
	{
		n, s := 1<<20, 48
		a, b := randDense(n, s, 11), randDense(n, s, 12)
		partials := make([]float64, linalg.ReduceBlocks(n)*s*s)
		var arena linalg.PackArena
		t1 := minTime(reps, func() { linalg.AtBPackedBudget(serial, a, b, nil, partials, &arena) })
		tp := minTime(reps, func() { linalg.AtBPackedBudget(par, a, b, nil, partials, &arena) })
		tStream := minTime(reps, func() { linalg.AtBBudget(par, a, b, nil, partials) })
		check("atb_parallel", float64(t1)/float64(tp))
		check("atb_packed", float64(tStream)/float64(tp))
	}

	// Parallel panel MGS: packed fan-out scaling, plus packed (MGS) vs
	// flat-arena (MGSUnpacked) at the same worker count.
	{
		n, s := 1<<19, 48
		d := make([]float64, n)
		r := rand.New(rand.NewSource(13))
		for i := range d {
			d[i] = 1 + float64(r.Intn(20))
		}
		sc := ortho.NewScratch(n, s)
		b1 := randDense(n, s, 14)
		t1 := minTime(reps, func() { ortho.DOrthogonalizeBudget(serial, cloneDense(b1), d, ortho.MGS, sc) })
		tp := minTime(reps, func() { ortho.DOrthogonalizeBudget(par, cloneDense(b1), d, ortho.MGS, sc) })
		tFlat := minTime(reps, func() { ortho.DOrthogonalizeBudget(par, cloneDense(b1), d, ortho.MGSUnpacked, sc) })
		check("panel_mgs_parallel", float64(t1)/float64(tp))
		check("panel_mgs_packed", float64(tFlat)/float64(tp))
	}

	// Parallel fused widen/min/argmax with the fixed-tile reduction.
	{
		n := 1 << 22
		src := make([]int32, n)
		dmin := make([]int32, n)
		dst := make([]float64, n)
		r := rand.New(rand.NewSource(15))
		for i := range src {
			src[i] = int32(r.Intn(1 << 20))
		}
		tiles := linalg.ReduceBlocks(n)
		idxs, vals := make([]int, tiles), make([]int32, tiles)
		reset := func() {
			for i := range dmin {
				dmin[i] = int32(1) << 30
			}
		}
		reset()
		t1 := minTime(reps, func() { linalg.WidenMinArgmaxBudget(serial, dst, dmin, src, idxs, vals) })
		reset()
		tp := minTime(reps, func() { linalg.WidenMinArgmaxBudget(par, dst, dmin, src, idxs, vals) })
		check("fused_widen_parallel", float64(t1)/float64(tp))
	}

	// Tiled direction-optimizing MSBFS: the blocked bitmap passes must
	// scale when workers own disjoint vertex-range blocks (bottom-up
	// writes are CAS-free precisely because of that ownership).
	{
		g, sources, rows, sc := msbfsFixture(18, 16)
		t1 := minTime(reps, func() { bfs.MSBFSOpts(serial, g, sources, rows, sc, bfs.MSOptions{}) })
		tp := minTime(reps, func() { bfs.MSBFSOpts(par, g, sources, rows, sc, bfs.MSOptions{}) })
		check("msbfs_tiled", float64(t1)/float64(tp))
	}

	// Whole-layout scaling on the paper's headline graph shape: the
	// ISSUE's acceptance targets (kron 2^18 at `workers` vs 1, and the
	// packed layout vs the NoPack ablation at `workers`).
	{
		g := gen.Kron(18, 16, 102)
		run := func(p int, noPack bool) func() {
			opt := core.Options{Subspace: 10, Seed: 42, Workers: p, SkipConnectivityCheck: true, NoPack: noPack}
			return func() {
				if _, _, err := core.ParHDE(g, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		t1 := minTime(3, run(1, false))
		tp := minTime(3, run(workers, false))
		tFlat := minTime(3, run(workers, true))
		check("layout_parallel", float64(t1)/float64(tp))
		check("layout_packed", float64(tFlat)/float64(tp))
	}
}

// cloneDense copies m so repeated in-place orthogonalizations see the
// same input.
func cloneDense(m *linalg.Dense) *linalg.Dense {
	c := linalg.NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}
