// Package parallel provides shared-memory fan-out primitives used by every
// compute kernel in this repository: grained parallel loops over index
// ranges and parallel reductions. All primitives degrade to straight serial
// loops when only one worker is available, so single-threaded baselines pay
// no synchronization cost. The package-level helpers follow the live
// GOMAXPROCS setting; kernels that must keep a stable partition for a
// whole run thread a Budget through instead (see budget.go).
package parallel

import (
	"runtime"
	"sync"
)

// MinGrain is the smallest per-worker chunk of loop iterations worth the
// cost of spawning a goroutine. Loops shorter than MinGrain run serially.
const MinGrain = 1024

// Workers reports the number of workers parallel loops will fan out to.
// It follows runtime.GOMAXPROCS so benchmark harnesses can sweep core
// counts the way the paper sweeps 1..28 cores. Kernels that must keep a
// stable partition across a whole run capture a Budget once instead of
// calling this repeatedly.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// Serial reports whether a length-n loop will run on one worker. Hot
// kernels branch on it to run a plain loop instead of For /
// ForBlock: a func literal passed to those escapes to the heap (its
// parameter flows into goroutines), so skipping the call skips the
// closure allocation — the difference between a steady-state
// allocation-free kernel and one that allocates per invocation.
func Serial(n int) bool {
	return Workers() <= 1 || n < 2*MinGrain
}

// For executes body(i) for every i in [0, n) using up to Workers()
// goroutines. Iterations are divided into contiguous blocks (one per
// worker) so that memory access within a worker stays sequential, matching
// the static scheduling the paper's OpenMP pragmas use.
func For(n int, body func(i int)) {
	Live().For(n, body)
}

// ForBlock divides [0, n) into one contiguous block per worker and runs
// body(lo, hi) on each block concurrently. It is the preferred primitive
// for kernels that carry per-block state (local accumulators, buffers).
func ForBlock(n int, body func(lo, hi int)) {
	Live().ForBlock(n, body)
}

// ForDynamic executes body(i) for every i in [0, n) with dynamic
// (work-stealing style) scheduling: workers grab chunks of the given size
// from a shared counter. Use it for loops with irregular per-iteration
// cost, e.g. per-vertex adjacency scans on skewed-degree graphs.
func ForDynamic(n, chunk int, body func(i int)) {
	Live().ForDynamic(n, chunk, body)
}

// ForDynamicBlock is the block form of ForDynamic: workers repeatedly claim
// [lo, hi) chunks of the given size until the range is exhausted.
func ForDynamicBlock(n, chunk int, body func(lo, hi int)) {
	Live().ForDynamicBlock(n, chunk, body)
}

// Run executes the given thunks concurrently and waits for all of them.
func Run(thunks ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(thunks))
	for _, t := range thunks {
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	wg.Wait()
}

// SumFloat64 computes the sum of f(i) over [0, n) with a per-worker partial
// accumulator followed by a serial combine, so the result is deterministic
// for a fixed worker count.
func SumFloat64(n int, f func(i int) float64) float64 {
	partials := reduceBlocks(n, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		return s
	})
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// SumInt64 is SumFloat64 for integer summands.
func SumInt64(n int, f func(i int) int64) int64 {
	partials := reduceBlocks(n, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		return s
	})
	var s int64
	for _, p := range partials {
		s += p
	}
	return s
}

// MaxIndexInt32 returns the index in [0, n) maximizing key(i), breaking
// ties toward the smallest index ("ties are arbitrarily broken" in the
// paper; we pick a deterministic rule so runs are reproducible). n must be
// positive.
func MaxIndexInt32(n int, key func(i int) int32) int {
	type im struct {
		idx int
		val int32
	}
	if Serial(n) {
		best := im{0, key(0)}
		for i := 1; i < n; i++ {
			if v := key(i); v > best.val {
				best = im{i, v}
			}
		}
		return best.idx
	}
	partials := reduceBlocks(n, func(lo, hi int) im {
		best := im{lo, key(lo)}
		for i := lo + 1; i < hi; i++ {
			if v := key(i); v > best.val {
				best = im{i, v}
			}
		}
		return best
	})
	best := partials[0]
	for _, p := range partials[1:] {
		if p.val > best.val || (p.val == best.val && p.idx < best.idx) {
			best = p
		}
	}
	return best.idx
}

// MaxIndexFloat64 is MaxIndexInt32 for float64 keys.
func MaxIndexFloat64(n int, key func(i int) float64) int {
	type im struct {
		idx int
		val float64
	}
	if Serial(n) {
		best := im{0, key(0)}
		for i := 1; i < n; i++ {
			if v := key(i); v > best.val {
				best = im{i, v}
			}
		}
		return best.idx
	}
	partials := reduceBlocks(n, func(lo, hi int) im {
		best := im{lo, key(lo)}
		for i := lo + 1; i < hi; i++ {
			if v := key(i); v > best.val {
				best = im{i, v}
			}
		}
		return best
	})
	best := partials[0]
	for _, p := range partials[1:] {
		if p.val > best.val || (p.val == best.val && p.idx < best.idx) {
			best = p
		}
	}
	return best.idx
}

// ArgmaxInt32 returns the index of the maximum element of x, ties broken
// toward the smallest index — the same deterministic rule as
// MaxIndexInt32, but over a slice so no per-call key closure is needed
// and the serial path allocates nothing.
func ArgmaxInt32(x []int32) int {
	if Serial(len(x)) {
		best, bv := 0, x[0]
		for i := 1; i < len(x); i++ {
			if x[i] > bv {
				best, bv = i, x[i]
			}
		}
		return best
	}
	return MaxIndexInt32(len(x), func(i int) int32 { return x[i] })
}

// reduceBlocks runs block(lo, hi) over one contiguous block per worker and
// returns the per-block results in block order.
func reduceBlocks[T any](n int, block func(lo, hi int) T) []T {
	p := blockWorkers(n, Workers())
	if p <= 1 {
		return []T{block(0, n)}
	}
	out := make([]T, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		go func(w, lo, hi int) {
			defer wg.Done()
			out[w] = block(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}
