package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, MinGrain - 1, MinGrain, 2*MinGrain + 3, 10 * MinGrain} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForBlockPartitionsRange(t *testing.T) {
	n := 5*MinGrain + 17
	covered := make([]int32, n)
	ForBlock(n, func(lo, hi int) {
		if lo > hi {
			t.Errorf("block [%d,%d) inverted", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForBlockNegativeAndZero(t *testing.T) {
	called := false
	ForBlock(0, func(lo, hi int) { called = true })
	ForBlock(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, chunk := range []int{1, 3, 100, 5000} {
		n := 3*MinGrain + 11
		hits := make([]int32, n)
		ForDynamic(n, chunk, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, h)
			}
		}
	}
}

func TestForDynamicDefaultChunk(t *testing.T) {
	n := 2 * MinGrain
	var count int64
	ForDynamic(n, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != int64(n) {
		t.Fatalf("visited %d of %d", count, n)
	}
}

func TestRunExecutesAllThunks(t *testing.T) {
	var a, b, c int32
	Run(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("thunks not all run: %d %d %d", a, b, c)
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	n := 4*MinGrain + 9
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%13) - 6
	}
	var want float64
	for _, v := range vals {
		want += v
	}
	got := SumFloat64(n, func(i int) float64 { return vals[i] })
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SumFloat64 = %g, want %g", got, want)
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		var want int64
		for _, v := range raw {
			want += int64(v)
		}
		got := SumInt64(len(raw), func(i int) int64 { return int64(raw[i]) })
		return got == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxIndexInt32(t *testing.T) {
	vals := []int32{3, 9, 2, 9, 1}
	if got := MaxIndexInt32(len(vals), func(i int) int32 { return vals[i] }); got != 1 {
		t.Fatalf("MaxIndexInt32 = %d, want 1 (first of tied maxima)", got)
	}
}

func TestMaxIndexInt32Property(t *testing.T) {
	err := quick.Check(func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		got := MaxIndexInt32(len(raw), func(i int) int32 { return raw[i] })
		for _, v := range raw {
			if v > raw[got] {
				return false
			}
		}
		// First-index tie-break.
		for i := 0; i < got; i++ {
			if raw[i] == raw[got] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxIndexInt32LargeFirstTieBreak(t *testing.T) {
	// Exercise the parallel path: ties across different worker blocks must
	// resolve to the smallest index.
	n := 8 * MinGrain
	if got := MaxIndexInt32(n, func(i int) int32 { return 7 }); got != 0 {
		t.Fatalf("tie-break across blocks: got %d, want 0", got)
	}
}

func TestMaxIndexFloat64(t *testing.T) {
	n := 3 * MinGrain
	target := n - 2
	got := MaxIndexFloat64(n, func(i int) float64 {
		if i == target {
			return 100
		}
		return float64(i % 10)
	})
	if got != target {
		t.Fatalf("MaxIndexFloat64 = %d, want %d", got, target)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

// withProcs runs f under an elevated GOMAXPROCS so the fan-out code paths
// execute even when the test host defaults to one core.
func withProcs(t *testing.T, p int, f func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(prev)
	f()
}

func TestParallelPathsUnderMultipleWorkers(t *testing.T) {
	withProcs(t, 4, func() {
		n := 8 * MinGrain
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("For under 4 procs: index %d hit %d times", i, h)
			}
		}
		var count int64
		ForDynamic(n, 100, func(i int) { atomic.AddInt64(&count, 1) })
		if count != int64(n) {
			t.Fatalf("ForDynamic covered %d of %d", count, n)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i % 7)
		}
		var want float64
		for _, v := range vals {
			want += v
		}
		if got := SumFloat64(n, func(i int) float64 { return vals[i] }); math.Abs(got-want) > 1e-6 {
			t.Fatalf("SumFloat64 under 4 procs: %g want %g", got, want)
		}
		if got := SumInt64(n, func(i int) int64 { return 2 }); got != int64(2*n) {
			t.Fatalf("SumInt64 under 4 procs: %d", got)
		}
		if idx := MaxIndexInt32(n, func(i int) int32 { return int32(i % 1000) }); idx != 999 {
			t.Fatalf("MaxIndexInt32 under 4 procs: %d", idx)
		}
		if idx := MaxIndexFloat64(n, func(i int) float64 { return -math.Abs(float64(i - 42)) }); idx != 42 {
			t.Fatalf("MaxIndexFloat64 under 4 procs: %d", idx)
		}
	})
}
