package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Budget is an explicit worker-count budget for the fan-out primitives.
// The zero value is "live": it follows runtime.GOMAXPROCS at each use,
// matching the package-level For/ForBlock helpers. A fixed budget
// (FixedBudget, SnapshotBudget) pins the worker count for its lifetime, so
// a layout that captures one budget at entry keeps a stable partition even
// while a harness sweeps GOMAXPROCS underneath it — the mid-layout
// repartitioning race the PR-6 scaling work closes. Budgets are small
// values; copy them freely.
type Budget struct{ p int }

// FixedBudget returns a budget pinned to p workers (values below 1 pin to
// one worker, i.e. fully serial execution).
func FixedBudget(p int) Budget {
	if p < 1 {
		p = 1
	}
	return Budget{p: p}
}

// SnapshotBudget captures the current live worker count (GOMAXPROCS) as a
// fixed budget: the once-per-layout snapshot that keeps every kernel of a
// run on the same partition.
func SnapshotBudget() Budget {
	return FixedBudget(runtime.GOMAXPROCS(0))
}

// Live returns the zero budget, which re-reads GOMAXPROCS at every use —
// the legacy behavior of the package-level helpers.
func Live() Budget {
	return Budget{}
}

// Fixed reports whether the budget is pinned (false for the live budget).
func (b Budget) Fixed() bool {
	return b.p > 0
}

// Workers reports the number of workers loops run under this budget fan
// out to: the pinned count for a fixed budget, GOMAXPROCS for a live one.
func (b Budget) Workers() int {
	if b.p > 0 {
		return b.p
	}
	return runtime.GOMAXPROCS(0)
}

// Serial reports whether a length-n loop will run on one worker under
// this budget. Hot kernels branch on it to run a plain loop instead of
// For/ForBlock: a func literal passed to those escapes to the heap, so
// skipping the call skips the closure allocation.
func (b Budget) Serial(n int) bool {
	return b.Workers() <= 1 || n < 2*MinGrain
}

// BlockWorkers reports how many workers ForBlock would actually fan a
// length-n loop across under this budget — Workers() clamped by the
// MinGrain floor. Packed kernels call it once at entry to size their
// per-worker arenas, then fan out across exactly that count via
// ForBlockIndexed, so a live budget's GOMAXPROCS moving between the two
// calls can never send a worker to a slot that was not sized.
func (b Budget) BlockWorkers(n int) int {
	return blockWorkers(n, b.Workers())
}

// ForBlockIndexed divides [0, n) into one contiguous block per worker —
// the same w·n/p partition as Budget.ForBlock — and runs body(w, lo, hi)
// on each block concurrently, with w the owning worker's index. The
// worker count is the caller's, already clamped (BlockWorkers), so the
// fan-out matches whatever per-worker state the caller sized for it.
func ForBlockIndexed(workers, n int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w, w*n/workers, (w+1)*n/workers)
		}(w)
	}
	wg.Wait()
}

// For executes body(i) for every i in [0, n) using up to Workers()
// goroutines, in contiguous per-worker blocks (static scheduling).
func (b Budget) For(n int, body func(i int)) {
	b.ForBlock(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock divides [0, n) into one contiguous block per worker and runs
// body(lo, hi) on each block concurrently.
func (b Budget) ForBlock(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := blockWorkers(n, b.Workers())
	if p <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic executes body(i) for every i in [0, n) with dynamic
// scheduling; see ForDynamicBlock.
func (b Budget) ForDynamic(n, chunk int, body func(i int)) {
	b.ForDynamicBlock(n, chunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForDynamicBlock is the block form of ForDynamic: workers repeatedly
// claim [lo, hi) chunks of the given size until the range is exhausted.
// Worker count is clamped to the number of chunks, so a short irregular
// loop never spawns goroutines that would find the counter exhausted.
func (b Budget) ForDynamicBlock(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = MinGrain
	}
	p := dynamicWorkers(n, chunk, b.Workers())
	if p <= 1 {
		body(0, n)
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// blockWorkers clamps a static partition's worker count so every worker
// gets at least MinGrain iterations (and short loops run serially).
func blockWorkers(n, p int) int {
	if p <= 1 || n < 2*MinGrain {
		return 1
	}
	if maxB := (n + MinGrain - 1) / MinGrain; p > maxB {
		p = maxB
	}
	return p
}

// dynamicWorkers clamps a dynamic loop's worker count to the number of
// chunks: with fewer chunks than workers the surplus goroutines would
// only spin the claim counter once and exit, pure spawn overhead.
func dynamicWorkers(n, chunk, p int) int {
	if p <= 1 || n <= chunk {
		return 1
	}
	if chunks := (n + chunk - 1) / chunk; p > chunks {
		p = chunks
	}
	return p
}
