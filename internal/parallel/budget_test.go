package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestFixedBudgetClampsToOne(t *testing.T) {
	for _, p := range []int{-3, 0, 1} {
		if got := FixedBudget(p).Workers(); got != 1 {
			t.Fatalf("FixedBudget(%d).Workers() = %d, want 1", p, got)
		}
	}
	if got := FixedBudget(7).Workers(); got != 7 {
		t.Fatalf("FixedBudget(7).Workers() = %d, want 7", got)
	}
	if !FixedBudget(1).Fixed() {
		t.Fatal("FixedBudget(1).Fixed() = false")
	}
}

func TestLiveBudgetFollowsGOMAXPROCS(t *testing.T) {
	bud := Live()
	if bud.Fixed() {
		t.Fatal("Live().Fixed() = true")
	}
	withProcs(t, 3, func() {
		if got := bud.Workers(); got != 3 {
			t.Fatalf("live Workers() under GOMAXPROCS(3) = %d", got)
		}
	})
	withProcs(t, 1, func() {
		if got := bud.Workers(); got != 1 {
			t.Fatalf("live Workers() under GOMAXPROCS(1) = %d", got)
		}
	})
}

// TestSnapshotBudgetPinsAcrossSweep: the once-per-layout snapshot is the
// mid-layout repartitioning fix — a budget captured at 4 must keep
// reporting 4 even after the harness moves GOMAXPROCS.
func TestSnapshotBudgetPinsAcrossSweep(t *testing.T) {
	var bud Budget
	withProcs(t, 4, func() { bud = SnapshotBudget() })
	withProcs(t, 1, func() {
		if got := bud.Workers(); got != 4 {
			t.Fatalf("snapshot taken at 4 reports %d workers after GOMAXPROCS(1)", got)
		}
	})
	if !bud.Fixed() {
		t.Fatal("SnapshotBudget().Fixed() = false")
	}
}

func TestBlockWorkersClamp(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{100, 8, 1},              // below 2*MinGrain: serial
		{2*MinGrain - 1, 8, 1},   // still below the threshold
		{2 * MinGrain, 8, 2},     // 2048 rows -> 2 grains
		{10 * MinGrain, 4, 4},    // plenty of grains: keep p
		{10 * MinGrain, 100, 10}, // more workers than grains: clamp
		{3*MinGrain + 1, 100, 4}, // ceil(n/MinGrain)
		{10 * MinGrain, 1, 1},    // serial budget stays serial
		{10 * MinGrain, 0, 1},    // degenerate p
	}
	for _, c := range cases {
		if got := blockWorkers(c.n, c.p); got != c.want {
			t.Errorf("blockWorkers(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// TestDynamicWorkersClamp is the regression test for ForDynamicBlock
// spawning p goroutines even when there were fewer chunks than workers.
func TestDynamicWorkersClamp(t *testing.T) {
	cases := []struct{ n, chunk, p, want int }{
		{100, 100, 8, 1}, // one chunk: serial
		{100, 200, 8, 1}, // n <= chunk: serial
		{100, 1, 8, 8},   // 100 chunks: keep p
		{100, 40, 8, 3},  // ceil(100/40) = 3 chunks: clamp 8 -> 3
		{101, 50, 8, 3},  // ceil rounding
		{100, 50, 2, 2},  // exactly as many chunks as workers
		{100, 10, 1, 1},  // serial budget stays serial
		{100, 10, 0, 1},  // degenerate p
	}
	for _, c := range cases {
		if got := dynamicWorkers(c.n, c.chunk, c.p); got != c.want {
			t.Errorf("dynamicWorkers(%d, %d, %d) = %d, want %d", c.n, c.chunk, c.p, got, c.want)
		}
	}
}

// TestForDynamicBlockCoversRangeAcrossBudgets: every element is visited
// exactly once for any budget, including budgets larger than the chunk
// count (the case the clamp protects).
func TestForDynamicBlockCoversRangeAcrossBudgets(t *testing.T) {
	withProcs(t, 4, func() {
		for _, n := range []int{0, 1, 99, 100, 4096} {
			for _, chunk := range []int{1, 7, 64, 4096} {
				for _, bud := range []Budget{FixedBudget(1), FixedBudget(2), FixedBudget(16), Live()} {
					seen := make([]int32, n)
					bud.ForDynamicBlock(n, chunk, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&seen[i], 1)
						}
					})
					for i, c := range seen {
						if c != 1 {
							t.Fatalf("n=%d chunk=%d workers=%d: index %d visited %d times", n, chunk, bud.Workers(), i, c)
						}
					}
				}
			}
		}
	})
}

// TestBudgetForBlockCoversRange: the static partition covers [0, n)
// exactly once and in-block order for fixed and live budgets.
func TestBudgetForBlockCoversRange(t *testing.T) {
	withProcs(t, 4, func() {
		n := 3*MinGrain + 5
		for _, bud := range []Budget{FixedBudget(1), FixedBudget(3), Live()} {
			seen := make([]int32, n)
			bud.ForBlock(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", bud.Workers(), i, c)
				}
			}
		}
	})
}

// TestBudgetForBlockGoroutineBound: ForBlock never runs more goroutines
// than blockWorkers allows, even with an oversized fixed budget.
func TestBudgetForBlockGoroutineBound(t *testing.T) {
	n := 4 * MinGrain // 4 grains
	var peak, cur int32
	FixedBudget(64).ForBlock(n, func(lo, hi int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 4 {
		t.Fatalf("ForBlock ran %d concurrent bodies for %d grains", peak, n/MinGrain)
	}
}
