package catalog

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/graph"
)

// ErrWeighted reports an attempt to promote a weighted graph to a mutable
// entry (HTTP 409); the mutation subsystem is unweighted-only.
var ErrWeighted = dyngraph.ErrWeighted

// Generation returns the named entry's content generation. Generations
// start at 1 and grow monotonically under Touch, Promote, and Refresh;
// cache layers that key artifacts by (name, generation) are therefore
// invalidated by every mutation path, present and future.
func (c *Catalog) Generation(name string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return 0, false
	}
	return e.info.Generation, true
}

// Touch bumps the named entry's generation without changing its graph —
// the hook for any code path that alters what a graph's derived artifacts
// should look like (mutation, re-upload in place, external invalidation).
// It returns the new generation.
func (c *Catalog) Touch(name string) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.info.Generation++
	return e.info.Generation, nil
}

// Promote converts the named static entry into a mutable one backed by a
// dyngraph.Graph and returns it. Promoting an already-dynamic entry
// returns the existing handle (opt is ignored then), so concurrent
// mutators race harmlessly. Weighted entries cannot be promoted.
// Promotion itself bumps the generation: derived artifacts may now go
// stale at any time.
func (c *Catalog) Promote(name string, opt dyngraph.Options) (*dyngraph.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.dyn != nil {
		return e.dyn, nil
	}
	d, err := dyngraph.New(e.g, opt)
	if err != nil {
		return nil, err
	}
	e.dyn = d
	e.info.Dynamic = true
	e.info.Generation++
	return d, nil
}

// Dynamic returns the named entry's mutable graph, or ok=false if the
// entry does not exist or has not been promoted.
func (c *Catalog) Dynamic(name string) (*dyngraph.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || e.dyn == nil {
		return nil, false
	}
	return e.dyn, true
}

// Refresh folds the named dynamic entry's buffered mutations into a new
// CSR snapshot and installs it as the entry's graph: vertex/edge counts
// and the byte accounting are updated, the generation is bumped, and the
// budget is re-enforced (the refreshed entry itself is never the
// eviction victim). Subsequent Get calls return the new snapshot. The
// returned generation is the entry's — not the dyngraph's — and is what
// cache keys should carry.
func (c *Catalog) Refresh(name string) (*graph.CSR, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.dyn == nil {
		return nil, 0, fmt.Errorf("%w: %q is not dynamic", ErrNotFound, name)
	}
	snap, _ := e.dyn.Flush()
	if snap != e.g {
		gb := GraphBytes(snap)
		c.bytes += gb - e.info.Bytes
		e.g = snap
		e.info.Bytes = gb
		e.info.Vertices = snap.NumV
		e.info.Edges = snap.NumEdges()
		e.info.Generation++
		c.evictLocked(name)
	}
	return e.g, e.info.Generation, nil
}
