package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// Graph persistence: a layout worker that owns a shard of the catalog
// saves every uploaded graph as a binary CSR file so a restart can
// rebuild its shard from disk (the layout jobs themselves recover
// separately through the jobs package's intent records). File names are
// the catalog names — safe because validName already restricts them to a
// filesystem-friendly character set.

// savedExt is the on-disk suffix of a persisted graph snapshot.
const savedExt = ".csr"

// savedPath returns the snapshot path for a graph name inside dir.
func savedPath(dir, name string) string {
	return filepath.Join(dir, name+savedExt)
}

// SaveGraph writes g as dir/<name>.csr (creating dir), atomically via a
// rename so a crash mid-write never leaves a truncated snapshot.
func SaveGraph(dir, name string, g *graph.CSR) error {
	if !validName.MatchString(name) || name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := savedPath(dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := graph.WriteBinary(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RemoveSaved deletes the persisted snapshot of name inside dir, if any.
func RemoveSaved(dir, name string) error {
	err := os.Remove(savedPath(dir, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// LoadDir reads every *.csr snapshot in dir back into the catalog with
// the file path as its source, skipping names already registered (the
// pinned startup graph, typically). A missing dir is an empty shard, not
// an error. Unreadable snapshots are skipped and reported in errs so one
// corrupt file cannot keep a worker from rebuilding the rest of its
// shard. It returns the names restored.
func (c *Catalog) LoadDir(dir string) (restored []string, errs []error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, []error{err}
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), savedExt) {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), savedExt)
		if _, ok := c.Get(name); ok {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := os.Open(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		g, err := graph.ReadBinary(f)
		f.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("catalog: restoring %s: %w", path, err))
			continue
		}
		if err := c.Add(name, g, path); err != nil {
			errs = append(errs, err)
			continue
		}
		restored = append(restored, name)
	}
	return restored, errs
}
