package catalog

import (
	"errors"
	"testing"

	"repro/internal/dyngraph"
)

func TestGenerationAndTouch(t *testing.T) {
	c := New(-1)
	if err := c.Add("a", grid(t, 6), "test"); err != nil {
		t.Fatal(err)
	}
	gen0, ok := c.Generation("a")
	if !ok || gen0 != 1 {
		t.Fatalf("Generation(a) = %d, %v; want 1, true", gen0, ok)
	}
	g1, err := c.Touch("a")
	if err != nil || g1 != 2 {
		t.Fatalf("Touch(a) = %d, %v; want 2", g1, err)
	}
	if infos := c.List(); infos[0].Generation != 2 {
		t.Fatalf("List generation = %d, want 2", infos[0].Generation)
	}
	if _, err := c.Touch("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Touch(missing) err = %v", err)
	}
	if _, ok := c.Generation("missing"); ok {
		t.Fatal("Generation(missing) reported ok")
	}
}

func TestPromoteAndRefresh(t *testing.T) {
	c := New(-1)
	base := grid(t, 6) // 36 vertices
	if err := c.Add("a", base, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := c.Promote("a", dyngraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Promotion bumps the generation and marks the entry dynamic.
	if gen, _ := c.Generation("a"); gen != 2 {
		t.Fatalf("post-promote generation %d, want 2", gen)
	}
	if infos := c.List(); !infos[0].Dynamic {
		t.Fatal("promoted entry not marked dynamic")
	}
	// A second promote returns the same handle.
	if d2, err := c.Promote("a", dyngraph.Options{}); err != nil || d2 != d {
		t.Fatalf("re-promote returned %p, %v; want %p", d2, err, d)
	}
	if got, ok := c.Dynamic("a"); !ok || got != d {
		t.Fatal("Dynamic(a) did not return the promoted handle")
	}

	// Refresh with no pending mutations is a no-op.
	if _, gen, err := c.Refresh("a"); err != nil || gen != 2 {
		t.Fatalf("idle refresh: gen=%d err=%v, want 2", gen, err)
	}
	if _, err := d.Apply([]dyngraph.Mutation{{Op: dyngraph.AddEdge, U: 0, V: 7}}); err != nil {
		t.Fatal(err)
	}
	snap, gen, err := c.Refresh("a")
	if err != nil || gen != 3 {
		t.Fatalf("refresh: gen=%d err=%v, want 3", gen, err)
	}
	if !snap.HasEdge(0, 7) {
		t.Fatal("refreshed snapshot missing the applied edge")
	}
	// Get now serves the refreshed snapshot, and Info tracks its size.
	if got, ok := c.Get("a"); !ok || got != snap {
		t.Fatal("Get(a) did not return the refreshed snapshot")
	}
	if infos := c.List(); infos[0].Edges != snap.NumEdges() || infos[0].Bytes != GraphBytes(snap) {
		t.Fatalf("info not refreshed: %+v", infos[0])
	}
	if c.Bytes() != GraphBytes(snap) {
		t.Fatalf("catalog bytes %d, want %d", c.Bytes(), GraphBytes(snap))
	}
}

func TestPromoteErrors(t *testing.T) {
	c := New(-1)
	if err := c.Add("w", grid(t, 4).WithUnitWeights(), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Promote("w", dyngraph.Options{}); !errors.Is(err, ErrWeighted) {
		t.Fatalf("Promote(weighted) err = %v, want ErrWeighted", err)
	}
	if _, err := c.Promote("missing", dyngraph.Options{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Promote(missing) err = %v, want ErrNotFound", err)
	}
	if _, _, err := c.Refresh("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Refresh(missing) err = %v, want ErrNotFound", err)
	}
	if err := c.Add("s", grid(t, 4), "test"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Refresh("s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Refresh(static) err = %v, want ErrNotFound", err)
	}
	if _, ok := c.Dynamic("s"); ok {
		t.Fatal("static entry reported dynamic")
	}
}
