package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func grid(t *testing.T, side int) *graph.CSR {
	t.Helper()
	return gen.Grid2D(side, side)
}

func TestAddGetListRemove(t *testing.T) {
	c := New(-1)
	g := grid(t, 8)
	if err := c.Add("a", g, "test"); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("a"); !ok || got != g {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get(nope) found something")
	}
	if err := c.Add("a", g, "test"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Add error = %v, want ErrExists", err)
	}
	if err := c.Add("b", grid(t, 4), "test"); err != nil {
		t.Fatal(err)
	}
	infos := c.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Vertices != 64 || infos[0].Bytes != GraphBytes(g) {
		t.Fatalf("info = %+v", infos[0])
	}
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove error = %v, want ErrNotFound", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestBadNames(t *testing.T) {
	c := New(0)
	g := grid(t, 4)
	for _, name := range []string{"", "a/b", "a b", "..", string(make([]byte, 80))} {
		if err := c.Add(name, g, "test"); !errors.Is(err, ErrBadName) {
			t.Errorf("Add(%q) error = %v, want ErrBadName", name, err)
		}
	}
	if err := c.Add("ok-name.v2_x", g, "test"); err != nil {
		t.Fatal(err)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	g := grid(t, 16)
	gb := GraphBytes(g)
	c := New(2*gb + gb/2) // room for two graphs, not three
	for _, name := range []string{"g1", "g2"} {
		if err := c.Add(name, g, "test"); err != nil {
			t.Fatal(err)
		}
	}
	// Touch g1 so g2 is the LRU victim.
	c.Get("g1")
	if err := c.Add("g3", g, "test"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("g2"); ok {
		t.Fatal("g2 survived eviction")
	}
	for _, name := range []string{"g1", "g3"} {
		if _, ok := c.Get(name); !ok {
			t.Fatalf("%s evicted unexpectedly", name)
		}
	}
	if c.Bytes() > 2*gb+gb/2 {
		t.Fatalf("bytes %d over budget", c.Bytes())
	}
}

func TestPinnedNeverEvictedOrRemoved(t *testing.T) {
	g := grid(t, 16)
	gb := GraphBytes(g)
	c := New(gb + gb/2) // only one graph fits
	if err := c.AddPinned("keep", g, "startup"); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("extra", g, "test"); err != nil {
		t.Fatal(err)
	}
	// The unpinned newcomer cannot push the pinned entry out; the
	// catalog stays over budget with both resident rather than evicting
	// the pinned graph.
	if _, ok := c.Get("keep"); !ok {
		t.Fatal("pinned graph evicted")
	}
	if err := c.Remove("keep"); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove(pinned) error = %v, want ErrPinned", err)
	}
}

func TestTooLarge(t *testing.T) {
	g := grid(t, 16)
	c := New(GraphBytes(g) - 1)
	if err := c.Add("big", g, "test"); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Add error = %v, want ErrTooLarge", err)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(0)
	if err := c.LoadFile("tri", path, "edges"); err != nil {
		t.Fatal(err)
	}
	g, ok := c.Get("tri")
	if !ok || g.NumV != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded graph: %v ok=%v", g, ok)
	}
	if err := c.LoadFile("bad", path, "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := c.LoadFile("gone", filepath.Join(dir, "missing"), "edges"); err == nil {
		t.Fatal("missing file accepted")
	}
}
