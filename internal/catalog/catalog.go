// Package catalog is the multi-graph registry behind the serving layer:
// one server instance holds many named graphs (loaded from disk at
// startup or uploaded over HTTP) and the async job engine lays them out
// on demand. The catalog enforces a byte budget with LRU eviction so an
// upload-heavy deployment cannot grow the heap without bound; graphs the
// operator marks pinned (the startup graph) are never evicted.
package catalog

import (
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/graph"
)

// DefaultBudget is the aggregate graph-byte budget when New is given 0:
// roomy enough for several million-edge graphs without risking the host.
const DefaultBudget int64 = 2 << 30

// Sentinel errors; the HTTP layer maps these onto status codes.
var (
	// ErrNotFound reports an unknown graph name (HTTP 404).
	ErrNotFound = errors.New("catalog: graph not found")
	// ErrExists reports a name collision on registration (HTTP 409).
	ErrExists = errors.New("catalog: graph already registered")
	// ErrTooLarge reports a graph bigger than the whole budget (HTTP 413).
	ErrTooLarge = errors.New("catalog: graph exceeds the catalog byte budget")
	// ErrPinned reports an attempt to remove a pinned graph (HTTP 409).
	ErrPinned = errors.New("catalog: graph is pinned")
	// ErrBadName reports a name unusable in URLs and filenames (HTTP 400).
	ErrBadName = errors.New("catalog: invalid graph name")
)

// validName keeps names usable as URL path segments and result filenames.
var validName = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Info is the externally visible description of one catalog entry.
type Info struct {
	Name     string    `json:"name"`     // unique catalog key (URL-safe)
	Vertices int       `json:"vertices"` // vertex count
	Edges    int64     `json:"edges"`    // undirected edge count
	Bytes    int64     `json:"bytes"`    // in-memory CSR footprint
	Weighted bool      `json:"weighted"` // whether edges carry weights
	Source   string    `json:"source"`   // where the graph came from
	Pinned   bool      `json:"pinned"`   // pinned entries never evict
	Added    time.Time `json:"added"`    // insertion time
	// Dynamic marks an entry promoted to a mutable dyngraph.Graph.
	Dynamic bool `json:"dynamic"`
	// Generation counts content changes of this entry: it starts at 1 and
	// is bumped by Touch, Refresh, and dynamic rebuilds. Cache layers key
	// derived artifacts (render tiles, layouts) by (name, generation), so
	// any mutation path that bumps it invalidates them all.
	Generation uint64 `json:"generation"`
}

type entry struct {
	info     Info
	g        *graph.CSR
	dyn      *dyngraph.Graph // non-nil once promoted to a mutable entry
	lastUsed time.Time       // for LRU eviction; guarded by the catalog mutex
}

// Catalog is a byte-budgeted registry of named graphs, safe for
// concurrent use.
type Catalog struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	clock   int64 // logical clock so same-nanosecond touches still order
}

// New returns an empty catalog with the given aggregate byte budget
// (0 = DefaultBudget, negative = unbounded).
func New(budget int64) *Catalog {
	if budget == 0 {
		budget = DefaultBudget
	}
	return &Catalog{budget: budget, entries: map[string]*entry{}}
}

// GraphBytes estimates the resident size of a CSR: offsets, adjacency,
// and weights. Vertex-count metadata is noise by comparison.
func GraphBytes(g *graph.CSR) int64 {
	b := int64(len(g.Offsets))*8 + int64(len(g.Adj))*4
	if g.Weights != nil {
		b += int64(len(g.Weights)) * 8
	}
	return b
}

// Add registers g under name, evicting least-recently-used unpinned
// entries if the budget is exceeded. source is a free-form provenance
// string ("upload", a file path, …).
func (c *Catalog) Add(name string, g *graph.CSR, source string) error {
	return c.add(name, g, source, false)
}

// AddPinned registers g under name and protects it from eviction and
// removal (the single-graph startup mode).
func (c *Catalog) AddPinned(name string, g *graph.CSR, source string) error {
	return c.add(name, g, source, true)
}

func (c *Catalog) add(name string, g *graph.CSR, source string, pinned bool) error {
	// "." and ".." pass the character class but are hostile as URL path
	// segments and filenames; reject them explicitly.
	if !validName.MatchString(name) || name == "." || name == ".." {
		return fmt.Errorf("%w: %q (want %s)", ErrBadName, name, validName)
	}
	gb := GraphBytes(g)
	if c.budget > 0 && gb > c.budget {
		return fmt.Errorf("%w: %d bytes against a %d budget", ErrTooLarge, gb, c.budget)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	c.clock++
	c.entries[name] = &entry{
		info: Info{
			Name:       name,
			Vertices:   g.NumV,
			Edges:      g.NumEdges(),
			Bytes:      gb,
			Weighted:   g.Weighted(),
			Source:     source,
			Pinned:     pinned,
			Added:      time.Now(),
			Generation: 1,
		},
		g:        g,
		lastUsed: time.Unix(0, c.clock),
	}
	c.bytes += gb
	c.evictLocked(name)
	return nil
}

// evictLocked drops least-recently-used unpinned entries (never the one
// named keep) until the catalog fits its budget again.
func (c *Catalog) evictLocked(keep string) {
	for c.budget > 0 && c.bytes > c.budget {
		var victim string
		var oldest time.Time
		for name, e := range c.entries {
			if e.info.Pinned || name == keep {
				continue
			}
			if victim == "" || e.lastUsed.Before(oldest) {
				victim, oldest = name, e.lastUsed
			}
		}
		if victim == "" {
			return // only pinned entries (and the newcomer) remain
		}
		c.bytes -= c.entries[victim].info.Bytes
		delete(c.entries, victim)
	}
}

// Get returns the graph registered under name and marks it
// most-recently-used.
func (c *Catalog) Get(name string) (*graph.CSR, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, false
	}
	c.clock++
	e.lastUsed = time.Unix(0, c.clock)
	return e.g, true
}

// Remove deletes the named graph. Pinned graphs cannot be removed.
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.info.Pinned {
		return fmt.Errorf("%w: %q", ErrPinned, name)
	}
	c.bytes -= e.info.Bytes
	delete(c.entries, name)
	return nil
}

// List returns every entry's Info, sorted by name.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the aggregate resident graph bytes.
func (c *Catalog) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// LoadFile reads a graph file in the named format (see graph.Formats)
// and registers it under name with the path as its source.
func (c *Catalog) LoadFile(name, path, format string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.Read(f, format, graph.BuildOptions{})
	if err != nil {
		return fmt.Errorf("catalog: loading %s: %w", path, err)
	}
	return c.Add(name, g, path)
}
