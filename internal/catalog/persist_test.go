package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g1, g2 := gen.Grid2D(8, 9), gen.Kron(6, 4, 7)
	if err := SaveGraph(dir, "grid", g1); err != nil {
		t.Fatal(err)
	}
	if err := SaveGraph(dir, "kron", g2); err != nil {
		t.Fatal(err)
	}
	if err := SaveGraph(dir, "../evil", g1); err == nil {
		t.Fatal("hostile name accepted")
	}

	c := New(-1)
	if err := c.Add("grid", gen.Grid2D(3, 3), "pinned-before-restore"); err != nil {
		t.Fatal(err)
	}
	restored, errs := c.LoadDir(dir)
	if len(errs) != 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	if len(restored) != 1 || restored[0] != "kron" {
		t.Fatalf("restored %v; want just kron (grid already registered)", restored)
	}
	got, ok := c.Get("kron")
	if !ok || got.NumV != g2.NumV || got.NumEdges() != g2.NumEdges() {
		t.Fatalf("kron round-trip: ok=%v n=%d m=%d", ok, got.NumV, got.NumEdges())
	}
	// The already-registered name kept its in-memory graph.
	if g, _ := c.Get("grid"); g.NumV != 9 {
		t.Fatalf("grid overwritten by restore: n=%d", g.NumV)
	}

	if err := RemoveSaved(dir, "kron"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveSaved(dir, "kron"); err != nil {
		t.Fatalf("double remove not idempotent: %v", err)
	}
}

func TestLoadDirSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := SaveGraph(dir, "good", gen.Grid2D(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.csr"), []byte("not a csr"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(-1)
	restored, errs := c.LoadDir(dir)
	if len(restored) != 1 || restored[0] != "good" {
		t.Fatalf("restored %v", restored)
	}
	if len(errs) != 1 {
		t.Fatalf("want 1 corrupt-file error, got %v", errs)
	}
	if restored, errs := New(-1).LoadDir(filepath.Join(dir, "missing")); restored != nil || errs != nil {
		t.Fatalf("missing dir should be an empty shard, got %v %v", restored, errs)
	}
}
