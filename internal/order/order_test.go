package order

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRCMIsPermutationAndReducesBandwidth(t *testing.T) {
	// Start from a deliberately scrambled grid.
	g := gen.Grid2D(30, 30)
	scramble := graph.RandomPermutation(g.NumV, 9)
	bad, err := graph.Permute(g, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm := RCM(bad)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			t.Fatal("RCM output is not a permutation")
		}
		seen[p] = true
	}
	fixed, err := graph.Permute(bad, perm)
	if err != nil {
		t.Fatal(err)
	}
	bwBad, bwFixed := Bandwidth(bad), Bandwidth(fixed)
	if bwFixed >= bwBad/4 {
		t.Fatalf("RCM bandwidth %d not well below scrambled %d", bwFixed, bwBad)
	}
	// Mean gap must also recover substantially.
	gapBad := graph.GapSummary(bad).Mean
	gapFixed := graph.GapSummary(fixed).Mean
	if gapFixed >= gapBad/4 {
		t.Fatalf("RCM mean gap %.0f not well below scrambled %.0f", gapFixed, gapBad)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}}
	g, err := graph.FromEdges(5, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	perm := RCM(g)
	seen := make([]bool, 5)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate id")
		}
		seen[p] = true
	}
}

func TestHilbertFromLayoutRecoversLocality(t *testing.T) {
	// Scramble a grid, lay it out with ParHDE, reorder along the Hilbert
	// curve of the drawing: the mean adjacency gap must drop dramatically.
	g := gen.Grid2D(40, 40)
	scramble := graph.RandomPermutation(g.NumV, 4)
	bad, err := graph.Permute(g, scramble)
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := core.ParHDE(bad, core.Options{Subspace: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := HilbertFromLayout(lay, 10)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := graph.Permute(bad, perm)
	if err != nil {
		t.Fatal(err)
	}
	gapBad := graph.GapSummary(bad).Mean
	gapFixed := graph.GapSummary(fixed).Mean
	if gapFixed >= gapBad/5 {
		t.Fatalf("Hilbert-from-layout mean gap %.0f not well below scrambled %.0f", gapFixed, gapBad)
	}
}

func TestHilbertErrorsAndClamps(t *testing.T) {
	one := core.RandomLayout(10, 1, 1)
	if _, err := HilbertFromLayout(one, 10); err == nil {
		t.Fatal("1-D layout accepted")
	}
	l := core.RandomLayout(100, 2, 2)
	for _, order := range []int{0, 20} { // clamped, not rejected
		perm, err := HilbertFromLayout(l, order)
		if err != nil || len(perm) != 100 {
			t.Fatalf("order %d: %v", order, err)
		}
	}
}

func TestHilbertCurveAdjacency(t *testing.T) {
	// Consecutive curve positions are adjacent cells: d(x,y) values over a
	// small grid must form a bijection with unit-step continuity.
	order := 3
	side := int32(1) << uint(order)
	pos := make(map[uint64][2]int32, side*side)
	for x := int32(0); x < side; x++ {
		for y := int32(0); y < side; y++ {
			d := hilbertD(order, x, y)
			if _, dup := pos[d]; dup {
				t.Fatalf("duplicate curve distance %d", d)
			}
			pos[d] = [2]int32{x, y}
		}
	}
	for d := uint64(0); d+1 < uint64(side*side); d++ {
		a, b := pos[d], pos[d+1]
		manhattan := abs32(a[0]-b[0]) + abs32(a[1]-b[1])
		if manhattan != 1 {
			t.Fatalf("curve jump between %d and %d: %v -> %v", d, d+1, a, b)
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestBandwidthPath(t *testing.T) {
	g := gen.Path(100)
	if bw := Bandwidth(g); bw != 1 {
		t.Fatalf("path bandwidth %d", bw)
	}
}

// BenchmarkRCM orders a 2^16-vertex Kronecker (R-MAT) graph: the skewed
// degree distribution exercises the degree-sorted expansion on hub
// vertices, where the old per-component map and per-vertex neighbor copy
// dominated. Compare allocs/op against the epoch-slice rewrite.
func BenchmarkRCM(b *testing.B) {
	g := gen.Kron(16, 8, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCM(g)
	}
}
