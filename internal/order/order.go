// Package order implements locality-enhancing vertex orderings. The
// paper's §4.4 ordering study concludes that the initial vertex order
// dominates SpMV performance ("this observation highlights the benefits
// of locality-enhancing vertex orderings"); this package provides two ways
// to *recover* locality for badly ordered inputs: the classic reverse
// Cuthill-McKee bandwidth-reducing order, and a geometric order derived
// from ParHDE's own coordinates via a Hilbert space-filling curve —
// closing the loop on §4.5.4's observation that HDE coordinates feed
// geometric algorithms.
package order

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// RCM computes the reverse Cuthill-McKee ordering: a BFS from a
// low-degree peripheral vertex, visiting neighbors in increasing-degree
// order, reversed at the end. Returns perm with perm[old] = new. The
// ordering minimizes (heuristically) the adjacency bandwidth, which is
// exactly small adjacency gaps in Figure 2's terms.
func RCM(g *graph.CSR) []int32 {
	n := g.NumV
	perm := make([]int32, n)
	visited := make([]bool, n)
	orderList := make([]int32, 0, n)
	// queued marks enqueued vertices across the whole run: components are
	// vertex-disjoint, so one flat []bool replaces the per-component
	// map[int32]bool (and its per-vertex hashing) the original used.
	queued := make([]bool, n)
	queue := make([]int32, 0, 1024)
	// keys is the reusable neighbor-sort buffer: each neighbor packs to
	// degree<<32|id, so an ascending uint64 sort orders by increasing
	// degree with ids breaking ties — no per-vertex slice copy, no
	// sort.Slice closure.
	keys := make([]uint64, 0, 256)
	// Process every component, starting each from its minimum-degree
	// vertex (a cheap peripheral heuristic).
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Find the min-degree vertex in this component via a quick scan
		// from the entry point.
		comp := collectComponent(g, int32(start), visited)
		best := comp[0]
		for _, v := range comp {
			if g.Degree(v) < g.Degree(best) || (g.Degree(v) == g.Degree(best) && v < best) {
				best = v
			}
		}
		// BFS with degree-sorted adjacency expansion.
		queued[best] = true
		queue = append(queue[:0], best)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			orderList = append(orderList, v)
			keys = keys[:0]
			for _, u := range g.Neighbors(v) {
				if !queued[u] {
					keys = append(keys, uint64(g.Degree(u))<<32|uint64(uint32(u)))
				}
			}
			slices.Sort(keys)
			for _, k := range keys {
				u := int32(uint32(k))
				// Recheck in case the adjacency list carries duplicates.
				if !queued[u] {
					queued[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	// Reverse.
	for i, v := range orderList {
		perm[v] = int32(n - 1 - i)
	}
	return perm
}

// collectComponent marks and returns all vertices reachable from start.
func collectComponent(g *graph.CSR, start int32, visited []bool) []int32 {
	visited[start] = true
	comp := []int32{start}
	for qi := 0; qi < len(comp); qi++ {
		for _, u := range g.Neighbors(comp[qi]) {
			if !visited[u] {
				visited[u] = true
				comp = append(comp, u)
			}
		}
	}
	return comp
}

// HilbertFromLayout orders vertices along a Hilbert space-filling curve
// over their 2-D layout coordinates: vertices drawn near each other get
// nearby ids, so graph locality (which a good drawing exposes) becomes
// memory locality. order is the curve resolution in bits per axis
// (default 12 → a 4096×4096 grid).
func HilbertFromLayout(l *core.Layout, order int) ([]int32, error) {
	if l.Dims() < 2 {
		return nil, fmt.Errorf("order: Hilbert ordering needs a 2-D layout")
	}
	if order <= 0 {
		order = 12
	}
	if order > 15 {
		order = 15
	}
	n := l.NumVertices()
	norm := l.Clone()
	norm.NormalizeUnit()
	side := int32(1) << uint(order)
	type hv struct {
		h uint64
		v int32
	}
	keys := make([]hv, n)
	for v := 0; v < n; v++ {
		x := int32(norm.X()[v] * float64(side-1))
		y := int32(norm.Y()[v] * float64(side-1))
		keys[v] = hv{hilbertD(order, x, y), int32(v)}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].h != keys[b].h {
			return keys[a].h < keys[b].h
		}
		return keys[a].v < keys[b].v
	})
	perm := make([]int32, n)
	for newID, k := range keys {
		perm[k.v] = int32(newID)
	}
	return perm, nil
}

// hilbertD converts (x, y) to its distance along the order-bit Hilbert
// curve (the standard bit-twiddling conversion).
func hilbertD(order int, x, y int32) uint64 {
	var d uint64
	for s := int32(1) << uint(order-1); s > 0; s /= 2 {
		var rx, ry int32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// Bandwidth returns the maximum |u − v| over edges — the quantity RCM
// minimizes, and an upper bound on every adjacency gap.
func Bandwidth(g *graph.CSR) int64 {
	var bw int64
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if d := int64(u) - int64(v); d > bw {
				bw = d
			}
		}
	}
	return bw
}
