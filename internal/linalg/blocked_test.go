package linalg

import (
	"math/rand"
	"runtime"
	"testing"
)

// Adversarial row counts for the blocked kernels: everything that can go
// wrong with a 4-row unroll, a 4×2 output tile, and the MinGrain-based
// row partition — sizes below, at, and just past each boundary.
var adversarialRows = []int{1, 2, 3, 4, 5, 7, 8, 9, 63, 1023, 1024, 1025, 2047, 2048, 2049, 4097}

// TestBlockedAtBBitwiseMatchesNaive is the blocked micro-kernel's
// correctness property: because each output element is accumulated by a
// single dedicated register in ascending row order, the 4×2-tiled kernel
// must be BITWISE equal to the naive reference — no tolerance — across
// shapes where n is not a multiple of the unroll, s and t are not
// multiples of the tile, and the parallel row partition kicks in.
func TestBlockedAtBBitwiseMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range adversarialRows {
		for _, st := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {3, 5}, {4, 2}, {5, 4}, {7, 9}, {8, 8}, {9, 3}} {
			s, u := st[0], st[1]
			a, b := NewDense(n, s), NewDense(n, u)
			for i := range a.Data {
				a.Data[i] = r.NormFloat64()
			}
			for i := range b.Data {
				b.Data[i] = r.NormFloat64()
			}
			want := NewDense(s, u)
			AtBNaiveInto(a, b, want, nil)
			got := AtB(a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d s=%d t=%d: AtB[%d] = %g, naive %g (must be bitwise equal)",
						n, s, u, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestBlockedAtBSerialMatchesParallel pins the determinism contract for
// the row-parallel path: per-block partials are combined serially in
// block order, so for a fixed worker count the result is reproducible,
// and because each block is itself a single-accumulator sum the one-worker
// result equals the naive kernel exactly.
func TestBlockedAtBSerialMatchesParallel(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	n, s, u := 3*2048+17, 5, 3
	a, b := NewDense(n, s), NewDense(n, u)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	par := AtB(a, b)
	wantPar := NewDense(s, u)
	AtBNaiveInto(a, b, wantPar, nil) // same worker count as par
	prev := runtime.GOMAXPROCS(1)
	ser := AtB(a, b)
	wantSer := NewDense(s, u)
	AtBNaiveInto(a, b, wantSer, nil)
	runtime.GOMAXPROCS(prev)
	for i := range wantSer.Data {
		// Blocked equals naive bitwise at each worker count (same block
		// partition, same in-order combine)...
		if ser.Data[i] != wantSer.Data[i] {
			t.Fatalf("serial AtB[%d] = %g, naive %g", i, ser.Data[i], wantSer.Data[i])
		}
		if par.Data[i] != wantPar.Data[i] {
			t.Fatalf("parallel AtB[%d] = %g, naive %g", i, par.Data[i], wantPar.Data[i])
		}
		// ...and worker counts only reassociate the block combine, which
		// must stay within rounding of the serial sum.
		if !approxEq(par.Data[i], ser.Data[i], 1e-12) {
			t.Fatalf("parallel AtB[%d] = %g, serial %g", i, par.Data[i], ser.Data[i])
		}
	}
}

// TestDDotPanelMatchesReference checks the fused multi-dot against plain
// per-column dots over adversarial panel widths (k=0, k=1, partial
// chunks, many chunks) and row counts, with and without the D weighting.
// The fused kernel associates d with the shared vector rather than the
// column, so comparison is tolerance-based.
func TestDDotPanelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 5, 8, 1023, 2048, 2600} {
		for _, k := range []int{0, 1, 2, 7, 8, 9, 17, 63} {
			cols := make([][]float64, k)
			for j := range cols {
				cols[j] = randVec(n, r)
			}
			work := randVec(n, r)
			d := randVec(n, r)
			for i := range d {
				d[i] = 1 + d[i]*d[i] // positive weights
			}
			for _, dd := range [][]float64{nil, d} {
				got := DDotPanel(cols, work, dd, nil, nil)
				if len(got) != k {
					t.Fatalf("n=%d k=%d: got %d dots", n, k, len(got))
				}
				for j := 0; j < k; j++ {
					var want float64
					for i := 0; i < n; i++ {
						w := work[i]
						if dd != nil {
							w *= dd[i]
						}
						want += cols[j][i] * w
					}
					if !approxEq(got[j], want, 1e-12) {
						t.Fatalf("n=%d k=%d d=%v: dot[%d] = %g, want %g", n, k, dd != nil, j, got[j], want)
					}
				}
			}
		}
	}
}

// TestSubtractScaledMatchesReference checks the fused multi-axpy against
// a sequence of plain Axpys over the same adversarial panel widths.
func TestSubtractScaledMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 4, 9, 1023, 2048, 2600} {
		for _, k := range []int{0, 1, 3, 8, 9, 16, 63} {
			cols := make([][]float64, k)
			coeffs := make([]float64, k)
			for j := range cols {
				cols[j] = randVec(n, r)
				coeffs[j] = r.NormFloat64()
			}
			work := randVec(n, r)
			want := append([]float64(nil), work...)
			for j := range cols {
				Axpy(-coeffs[j], cols[j], want)
			}
			SubtractScaled(work, cols, coeffs)
			for i := range work {
				if !approxEq(work[i], want[i], 1e-12) {
					t.Fatalf("n=%d k=%d: work[%d] = %g, want %g", n, k, i, work[i], want[i])
				}
			}
		}
	}
}

// TestWidenMinArgmaxMatchesUnfused checks the fused BFS bookkeeping pass
// against the three separate kernels it replaces, including argmax
// tie-breaking (ties toward the smallest index) and parallel row counts.
func TestWidenMinArgmaxMatchesUnfused(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 2, 9, 1024, 2600, 5000} {
		src := make([]int32, n)
		dmin := make([]int32, n)
		for i := range src {
			src[i] = int32(r.Intn(7)) // small range forces argmax ties
			dmin[i] = int32(r.Intn(7))
		}
		wantMin := append([]int32(nil), dmin...)
		wantDst := make([]float64, n)
		Int32ToFloat64(wantDst, src)
		MinUpdateInt32(wantMin, src)
		wantIdx := 0
		for i, v := range wantMin {
			if v > wantMin[wantIdx] {
				wantIdx = i
			}
		}
		dst := make([]float64, n)
		gotIdx := WidenMinArgmax(dst, dmin, src)
		if gotIdx != wantIdx {
			t.Fatalf("n=%d: argmax %d, want %d", n, gotIdx, wantIdx)
		}
		for i := range dmin {
			if dmin[i] != wantMin[i] || dst[i] != wantDst[i] {
				t.Fatalf("n=%d: row %d fused (%d,%g), unfused (%d,%g)", n, i, dmin[i], dst[i], wantMin[i], wantDst[i])
			}
		}
	}
}

// TestScaledCopyDDotMatchesUnfused checks the fused keep-step kernel
// (copy+scale+D-norm in one pass) against the unfused sequence, bitwise:
// both scale first and accumulate in ascending index order.
func TestScaledCopyDDotMatchesUnfused(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 3, 1024, 2600} {
		src := randVec(n, r)
		d := randVec(n, r)
		a := 1 / (1 + r.Float64())
		want := make([]float64, n)
		CopyVec(want, src)
		Scale(a, want)
		for _, dd := range [][]float64{nil, d} {
			wantDN := 0.0
			for i := range want {
				w := want[i] * want[i]
				if dd != nil {
					w = want[i] * dd[i] * want[i]
				}
				wantDN += w
			}
			dst := make([]float64, n)
			dn := ScaledCopyDDot(dst, src, dd, a, nil)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d: dst[%d] = %g, want %g", n, i, dst[i], want[i])
				}
			}
			if !approxEq(dn, wantDN, 1e-12) {
				t.Fatalf("n=%d d=%v: dnorm %g, want %g", n, dd != nil, dn, wantDN)
			}
		}
	}
}
