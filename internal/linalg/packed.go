package linalg

import (
	"repro/internal/parallel"
)

// Cache-resident packed kernels. The blocked kernels in blocked.go cut
// redundant loads with register tiling, but they still stream their
// operands out of the column-major matrices in place: for an n×s matrix
// the columns sit n·8 bytes apart, and at the power-of-two sizes the
// layouts run at (n = 2^16…2^20) every column of a 4×2 tile pass maps to
// the same cache sets, so the per-tile working set that should be served
// from L1/L2 is evicted by its own conflict misses and each B-column pair
// re-reads the A tile from DRAM. The kernels here close that gap by
// packing: each worker copies the chunk of rows it is about to consume
// into its own contiguous arena slot once, then runs the same 4×2
// micro-kernels out of the packed copy, which stays cache-resident for
// every subsequent pass over the chunk. Packing is a copy and every
// accumulator chain still advances one product at a time in ascending row
// order, so the packed kernels are bitwise identical to their unpacked
// counterparts (and, transitively, to the naive references) for every
// worker budget — the property the packed-equivalence fuzz and
// budget-invariance suites pin down.

// PackRows is the row height of one packed chunk: 512 rows are 4 KiB per
// packed column, so a chunk of a 48-column A panel plus a 48-column B
// panel is ~384 KiB — comfortably L2-resident on every deployment target
// while tall enough that the pack copy is amortized over the s·t/8 kernel
// passes that consume it. Chunk boundaries never change results: the
// accumulator chains are carried through the output panel between chunks.
const PackRows = 512

// PackArena holds the per-worker packed-chunk buffers of the packed
// kernels. Each worker of a fan-out owns one slot and packs the rows it
// is about to consume into it, so slots are written and read by exactly
// one goroutine per call. A zero PackArena is ready to use; Ensure grows
// it on demand and never sheds capacity, so a pooled workspace that
// carries one arena across runs allocates only when the worker count or
// chunk footprint actually grows. Slot sizing is the caller's worker
// count snapshotted at kernel entry — a live budget's GOMAXPROCS moving
// mid-call cannot outrun the arena (the kernels fan out across exactly
// the snapshotted count).
type PackArena struct {
	buf []float64
	per int
}

// Ensure shapes the arena to workers slots of per floats each, growing
// the backing storage only when the total footprint exceeds its capacity.
func (pa *PackArena) Ensure(workers, per int) {
	if workers < 1 {
		workers = 1
	}
	need := workers * per
	if cap(pa.buf) < need {
		pa.buf = make([]float64, need)
	}
	pa.buf = pa.buf[:cap(pa.buf)]
	pa.per = per
}

// slot returns worker w's packed-chunk buffer (after Ensure).
func (pa *PackArena) slot(w int) []float64 {
	return pa.buf[w*pa.per : (w+1)*pa.per]
}

// AtBPacked is AtBInto running the packed kernel with private storage —
// the convenience form the property tests exercise; production callers
// use AtBPackedBudget with a pooled arena.
func AtBPacked(a, b *Dense) *Dense {
	return AtBPackedBudget(parallel.Live(), a, b, nil, nil, nil)
}

// AtBPackedBudget is AtBBudget with cache-resident packed tiles: each
// worker packs the PackRows-high chunk of A and B columns it is about to
// consume into its arena slot and runs the 4×2 micro-kernels out of the
// packed copy, so the chunk is read from DRAM once and served from cache
// for all s·t/8 kernel passes (the unpacked kernel re-reads the A tile
// once per B-column pair). The tile grid, per-tile panels, and serial
// ascending-order combine are exactly AtBBudget's, and the accumulator
// chains are carried through the output panel between chunks, so the
// result is bitwise identical to AtBBudget and AtBNaiveBudget for every
// worker budget. arena may be nil (private storage) — a workspace-backed
// caller passes the pooled arena and the steady state allocates nothing.
func AtBPackedBudget(bud parallel.Budget, a, b, c *Dense, partials []float64, arena *PackArena) *Dense {
	n, s, t, c := atbCheck(a, b, c)
	tiles := ReduceBlocks(n)
	workers := bud.Workers()
	if workers > tiles {
		workers = tiles
	}
	if arena == nil {
		arena = &PackArena{}
	}
	arena.Ensure(workers, PackRows*(s+t))
	if tiles == 1 {
		atbPackedPanel(a, b, c.Data, 0, n, arena.slot(0))
		return c
	}
	var buf []float64
	if cap(partials) >= tiles*s*t {
		buf = partials[:tiles*s*t]
	} else {
		buf = make([]float64, tiles*s*t)
	}
	if workers <= 1 {
		slot := arena.slot(0)
		for tl := 0; tl < tiles; tl++ {
			atbPackedPanel(a, b, buf[tl*s*t:(tl+1)*s*t], tl*n/tiles, (tl+1)*n/tiles, slot)
		}
	} else {
		forTilesIndexed(workers, n, tiles, func(w, tl, lo, hi int) {
			atbPackedPanel(a, b, buf[tl*s*t:(tl+1)*s*t], lo, hi, arena.slot(w))
		})
	}
	combinePanels(c.Data, buf, tiles, s*t)
	return c
}

// atbPackedPanel is atbPanel running out of packed storage: rows
// [lo, hi) are consumed in PackRows-high chunks, each chunk's A and B
// columns copied contiguously into the worker's arena slot before the
// 4×2 kernels sweep it. The output panel doubles as the accumulator
// store between chunks — every element is loaded, extended by the
// chunk's products in ascending row order, and stored back — so the
// additions happen in exactly the order of one unpacked full-range pass.
func atbPackedPanel(a, b *Dense, out []float64, lo, hi int, pack []float64) {
	s, t := a.Cols, b.Cols
	for k := range out[: s*t : s*t] {
		out[k] = 0
	}
	for r0 := lo; r0 < hi; r0 += PackRows {
		r1 := min(r0+PackRows, hi)
		w := r1 - r0
		packA := pack[: s*w : s*w]
		packB := pack[s*w : (s+t)*w]
		for i := 0; i < s; i++ {
			copy(packA[i*w:(i+1)*w], a.Col(i)[r0:r1])
		}
		for j := 0; j < t; j++ {
			copy(packB[j*w:(j+1)*w], b.Col(j)[r0:r1])
		}
		j := 0
		for ; j+2 <= t; j += 2 {
			b0, b1 := packB[j*w:(j+1)*w], packB[(j+1)*w:(j+2)*w]
			o0, o1 := out[j*s:(j+1)*s], out[(j+1)*s:(j+2)*s]
			i := 0
			for ; i+4 <= s; i += 4 {
				o0[i], o0[i+1], o0[i+2], o0[i+3], o1[i], o1[i+1], o1[i+2], o1[i+3] = dot4x2(
					packA[i*w:(i+1)*w], packA[(i+1)*w:(i+2)*w], packA[(i+2)*w:(i+3)*w], packA[(i+3)*w:(i+4)*w],
					b0, b1,
					o0[i], o0[i+1], o0[i+2], o0[i+3], o1[i], o1[i+1], o1[i+2], o1[i+3])
			}
			for ; i < s; i++ {
				o0[i], o1[i] = dot1x2(packA[i*w:(i+1)*w], b0, b1, o0[i], o1[i])
			}
		}
		if j < t {
			b0 := packB[j*w : (j+1)*w]
			o0 := out[j*s : (j+1)*s]
			i := 0
			for ; i+4 <= s; i += 4 {
				o0[i], o0[i+1], o0[i+2], o0[i+3] = dot4x1(
					packA[i*w:(i+1)*w], packA[(i+1)*w:(i+2)*w], packA[(i+2)*w:(i+3)*w], packA[(i+3)*w:(i+4)*w],
					b0, o0[i], o0[i+1], o0[i+2], o0[i+3])
			}
			for ; i < s; i++ {
				o0[i] = dot1x1(packA[i*w:(i+1)*w], b0, o0[i])
			}
		}
	}
}
