package linalg

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/parallel"
)

// Adversarial equivalence suite for the packed kernels. The hazard of
// packing is silent numerical divergence on shapes where the chunk,
// tile, and panel boundaries interact — row counts straddling PackRows
// and TileRows, degenerate column counts, empty inputs — so every test
// here compares bitwise against the naive or flat reference on exactly
// those shapes, under every worker budget, with arenas reused across
// calls the way a pooled workspace reuses them.

// adversarialAtBShapes are the (n, s, t) cases the packed AᵀB kernel
// must survive bitwise: rows not a multiple of the pack chunk or the
// reduction tile, rows below one chunk/tile, single and odd column
// counts (micro-kernel tails), and the empty-row matrix.
var adversarialAtBShapes = []struct{ n, s, t int }{
	{0, 3, 2},                // empty rows: output must still zero
	{1, 1, 1},                // scalar corner everywhere
	{5, 1, 3},                // t odd, s=1: 1x2 + 1x1 tails only
	{100, 7, 5},              // n < PackRows, both columns odd
	{PackRows - 1, 4, 2},     // one short chunk
	{PackRows, 3, 3},         // exactly one chunk
	{PackRows + 1, 8, 8},     // chunk + 1-row tail
	{3*PackRows + 17, 5, 4},  // several chunks + ragged tail
	{TileRows, 7, 2},         // exactly one reduction tile
	{TileRows + 1, 2, 7},     // first multi-tile shape
	{2*TileRows + 317, 9, 3}, // tiles and chunks both ragged
	{3*TileRows + 1, 12, 12}, // wide panel, ragged tiles
}

func fillRand(d *Dense, rng *rand.Rand) {
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
}

func assertDenseEqual(t *testing.T, tag string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for k := range want.Data {
		if got.Data[k] != want.Data[k] {
			t.Fatalf("%s: element %d: %v != %v", tag, k, got.Data[k], want.Data[k])
		}
	}
}

// TestAtBPackedAdversarialShapes: the packed AᵀB kernel is bitwise equal
// to AtBNaiveInto on every adversarial shape, for every worker budget,
// with both private and reused arenas/partials.
func TestAtBPackedAdversarialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arena := &PackArena{} // reused across every shape and budget, like a pooled workspace
	withProcs(4, func() {
		for _, sh := range adversarialAtBShapes {
			a, b := NewDense(sh.n, sh.s), NewDense(sh.n, sh.t)
			fillRand(a, rng)
			fillRand(b, rng)
			ref := AtBNaiveInto(a, b, nil, nil)
			partials := make([]float64, ReduceBlocks(sh.n)*sh.s*sh.t)
			for _, bud := range testBudgets() {
				got := AtBPackedBudget(bud, a, b, nil, nil, nil)
				assertDenseEqual(t, "private arena", got, ref)
				got = AtBPackedBudget(bud, a, b, NewDense(sh.s, sh.t), partials, arena)
				assertDenseEqual(t, "pooled arena", got, ref)
			}
			if got := AtBPacked(a, b); true {
				assertDenseEqual(t, "live convenience", got, ref)
			}
		}
	})
}

// TestAtBPackedBudgetInvariance: packed, blocked, and naive AᵀB agree
// bitwise across worker budgets while one arena is shared mid-run, so a
// budget change between calls cannot leave stale packed state behind.
func TestAtBPackedBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	arena := &PackArena{}
	withProcs(4, func() {
		for _, n := range []int{64, TileRows, 3*TileRows + 5} {
			s, u := 7, 5
			a, b := NewDense(n, s), NewDense(n, u)
			fillRand(a, rng)
			fillRand(b, rng)
			partials := make([]float64, ReduceBlocks(n)*s*u)
			ref := AtBBudget(parallel.FixedBudget(1), a, b, nil, nil)
			for _, bud := range testBudgets() {
				got := AtBPackedBudget(bud, a, b, nil, partials, arena)
				assertDenseEqual(t, "packed vs blocked", got, ref)
			}
		}
	})
}

// TestLapMulPackedBudgetInvariance: the fused packed TripleProd kernel
// matches the two-pass tiled kernel bitwise for every budget, sharing
// one arena across budgets and shapes.
func TestLapMulPackedBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	arena := &PackArena{}
	withProcs(4, func() {
		for _, n := range []int{97, PackRows + 3, 2*TileRows + 13} {
			g := gen.Path(n)
			deg := g.WeightedDegrees()
			for _, cols := range []int{1, 6, 9} {
				s := NewDense(g.NumV, cols)
				fillRand(s, rng)
				ref := LapMulDenseTiledBudget(parallel.FixedBudget(1), g, deg, s, nil, nil, nil)
				srm := make([]float64, g.NumV*cols)
				for _, bud := range testBudgets() {
					got := LapMulDenseTiledPackedBudget(bud, g, deg, s, nil, srm, arena)
					assertDenseEqual(t, "packed vs tiled LapMul", got, ref)
				}
				if got := LapMulDenseTiledPacked(g, deg, s); true {
					assertDenseEqual(t, "live convenience", got, ref)
				}
			}
		}
	})
}

// TestPackedColsBitwiseVsFlat: every PackedCols kernel — the fused
// append, the panel multi-dot over a column range, and the fused
// multi-axpy — reproduces its flat counterpart bitwise, on row counts
// chosen to make tile widths ragged and column counts exercising both
// the full-width and tail chunks.
func TestPackedColsBitwiseVsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var pc PackedCols // zero value + Ensure, like a pooled scratch
	withProcs(4, func() {
		for _, n := range []int{1, 37, TileRows, 2*TileRows + 317} {
			for _, k := range []int{1, PanelCols - 1, PanelCols, PanelCols + 3, 2*PanelCols + 1} {
				cols := make([][]float64, k)
				flat := make([][]float64, k)
				srcs := make([][]float64, k)
				for j := range cols {
					srcs[j] = randVec(n, rng)
					flat[j] = make([]float64, n)
				}
				d := randVec(n, rng)
				work := randVec(n, rng)
				partials := make([]float64, ReduceBlocks(n)*(k+1))
				for _, bud := range testBudgets() {
					pc.Ensure(n, k)
					// Append every column; D-norms must match the flat fused
					// keep-step kernel, and the stored bits must round-trip.
					for j := range srcs {
						a := 0.5 + rng.Float64()
						want := ScaledCopyDDotBudget(bud, flat[j], srcs[j], d, a, partials)
						got := pc.AppendScaledDDotBudget(bud, srcs[j], d, a, partials)
						if got != want {
							t.Fatalf("n=%d k=%d workers=%d: append D-norm %v != %v", n, k, bud.Workers(), got, want)
						}
						unpacked := make([]float64, n)
						pc.CopyColInto(unpacked, j)
						for i := range unpacked {
							if unpacked[i] != flat[j][i] {
								t.Fatalf("n=%d k=%d col=%d: stored bits diverge at %d", n, k, j, i)
							}
						}
						cols[j] = flat[j]
					}
					if pc.Len() != k {
						t.Fatalf("Len %d != %d", pc.Len(), k)
					}
					// Panel multi-dot over every sub-range the MGS sweep uses.
					for p0 := 0; p0 < k; p0 += PanelCols {
						p1 := p0 + PanelCols
						if p1 > k {
							p1 = k
						}
						want := DDotPanelBudget(bud, cols[p0:p1], work, d, nil, partials)
						got := pc.DDotPanelRangeBudget(bud, p0, p1, work, d, nil, partials)
						for j := range want {
							if got[j] != want[j] {
								t.Fatalf("n=%d k=%d workers=%d panel %d:%d dot[%d] %v != %v", n, k, bud.Workers(), p0, p1, j, got[j], want[j])
							}
						}
						wantPlain := DDotPanelBudget(bud, cols[p0:p1], work, nil, nil, partials)
						gotPlain := pc.DDotPanelRangeBudget(bud, p0, p1, work, nil, nil, partials)
						for j := range wantPlain {
							if gotPlain[j] != wantPlain[j] {
								t.Fatalf("plain panel %d:%d dot[%d] diverged", p0, p1, j)
							}
						}
						// Fused multi-axpy: identical residual updates.
						coeffs := make([]float64, p1-p0)
						for j := range coeffs {
							coeffs[j] = rng.NormFloat64()
						}
						wantWork := append([]float64(nil), work...)
						gotWork := append([]float64(nil), work...)
						SubtractScaledBudget(bud, wantWork, cols[p0:p1], coeffs)
						pc.SubtractScaledRangeBudget(bud, p0, p1, gotWork, coeffs)
						for i := range wantWork {
							if gotWork[i] != wantWork[i] {
								t.Fatalf("n=%d k=%d workers=%d panel %d:%d: subtract[%d] %v != %v", n, k, bud.Workers(), p0, p1, i, gotWork[i], wantWork[i])
							}
						}
					}
					// CopyColIntoBudget matches the serial unpack.
					dst1, dst2 := make([]float64, n), make([]float64, n)
					pc.CopyColInto(dst1, k-1)
					pc.CopyColIntoBudget(bud, dst2, k-1)
					for i := range dst1 {
						if dst1[i] != dst2[i] {
							t.Fatalf("CopyColIntoBudget diverged at %d", i)
						}
					}
				}
			}
		}
	})
}

// TestPackedColsRangeChecks: the packed store panics on out-of-range
// column access instead of reading stale slots.
func TestPackedColsRangeChecks(t *testing.T) {
	var pc PackedCols
	pc.Ensure(16, 2)
	pc.AppendScaledDDotBudget(parallel.FixedBudget(1), make([]float64, 16), nil, 1, nil)
	for name, f := range map[string]func(){
		"dot": func() { pc.DDotPanelRangeBudget(parallel.FixedBudget(1), 0, 2, make([]float64, 16), nil, nil, nil) },
		"subtract": func() {
			pc.SubtractScaledRangeBudget(parallel.FixedBudget(1), 0, 2, make([]float64, 16), make([]float64, 2))
		},
		"mismatch": func() {
			pc.SubtractScaledRangeBudget(parallel.FixedBudget(1), 0, 1, make([]float64, 16), make([]float64, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// FuzzAtBPackedEquivalence fuzzes (n, s, t, seed) and asserts the packed
// kernel is bitwise equal to AtBNaiveInto under serial, parallel, and
// live budgets with a shared arena — the randomized arm of the
// adversarial shape table.
func FuzzAtBPackedEquivalence(f *testing.F) {
	f.Add(0, 3, 2, int64(1))
	f.Add(1, 1, 1, int64(2))
	f.Add(PackRows+1, 8, 8, int64(3))
	f.Add(TileRows+1, 5, 1, int64(4))
	f.Add(2*TileRows+317, 9, 3, int64(5))
	arena := &PackArena{}
	f.Fuzz(func(t *testing.T, n, s, u int, seed int64) {
		// Clamp to shapes that stress boundaries without slowing the fuzzer:
		// rows around a few tiles, columns around the 4×2 micro-kernel tile.
		if n < 0 {
			n = -n
		}
		if s < 0 {
			s = -s
		}
		if u < 0 {
			u = -u
		}
		n %= 2*TileRows + 512
		s = s%17 + 1
		u = u%17 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := NewDense(n, s), NewDense(n, u)
		fillRand(a, rng)
		fillRand(b, rng)
		ref := AtBNaiveInto(a, b, nil, nil)
		for _, bud := range []parallel.Budget{parallel.FixedBudget(1), parallel.FixedBudget(3), parallel.Live()} {
			got := AtBPackedBudget(bud, a, b, nil, nil, arena)
			for k := range ref.Data {
				if got.Data[k] != ref.Data[k] {
					t.Fatalf("n=%d s=%d t=%d workers=%d: packed[%d] %v != naive %v",
						n, s, u, bud.Workers(), k, got.Data[k], ref.Data[k])
				}
			}
		}
	})
}
