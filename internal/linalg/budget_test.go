package linalg

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/parallel"
)

// withProcs runs f under the given GOMAXPROCS so multi-goroutine fan-out
// paths execute even on a single-core host.
func withProcs(p int, f func()) {
	prev := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(prev)
	f()
}

// budgets under test: serial, two fixed parallel budgets, and the live
// budget (which follows the GOMAXPROCS(4) pin).
func testBudgets() []parallel.Budget {
	return []parallel.Budget{
		parallel.FixedBudget(1),
		parallel.FixedBudget(2),
		parallel.FixedBudget(4),
		parallel.Live(),
	}
}

// TestDotBudgetInvariance: the dot reductions are bitwise identical for
// every worker budget, including the allocation-free serial path.
func TestDotBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	withProcs(4, func() {
		for _, n := range []int{1, 100, TileRows, TileRows + 1, 3*TileRows + 17, 20000} {
			x, y, d := randVec(n, rng), randVec(n, rng), randVec(n, rng)
			partials := make([]float64, ReduceBlocks(n))
			ref := DotBudget(parallel.FixedBudget(1), x, y, nil)
			refD := DDotBudget(parallel.FixedBudget(1), x, d, y, nil)
			for _, bud := range testBudgets() {
				if got := DotBudget(bud, x, y, partials); got != ref {
					t.Fatalf("n=%d workers=%d: Dot %v != %v", n, bud.Workers(), got, ref)
				}
				if got := DDotBudget(bud, x, d, y, partials); got != refD {
					t.Fatalf("n=%d workers=%d: DDot %v != %v", n, bud.Workers(), got, refD)
				}
			}
			if got := Dot(x, y); got != ref {
				t.Fatalf("n=%d: live Dot %v != %v", n, got, ref)
			}
		}
	})
}

// TestAtBBudgetInvariance: the blocked AᵀB product is bitwise identical
// across worker budgets, and reusing a pooled partials arena changes
// nothing.
func TestAtBBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	withProcs(4, func() {
		for _, n := range []int{64, TileRows, 3*TileRows + 5} {
			s, u := 7, 5
			a, b := NewDense(n, s), NewDense(n, u)
			copy(a.Data, randVec(n*s, rng))
			copy(b.Data, randVec(n*u, rng))
			partials := make([]float64, ReduceBlocks(n)*s*u)
			ref := AtBBudget(parallel.FixedBudget(1), a, b, nil, nil)
			for _, bud := range testBudgets() {
				got := AtBBudget(bud, a, b, nil, partials)
				for k := range ref.Data {
					if got.Data[k] != ref.Data[k] {
						t.Fatalf("n=%d workers=%d: AtB[%d] %v != %v", n, bud.Workers(), k, got.Data[k], ref.Data[k])
					}
				}
				naive := AtBNaiveBudget(bud, a, b, nil, partials)
				for k := range ref.Data {
					if naive.Data[k] != ref.Data[k] {
						t.Fatalf("n=%d workers=%d: naive[%d] %v != %v", n, bud.Workers(), k, naive.Data[k], ref.Data[k])
					}
				}
			}
		}
	})
}

// TestDDotPanelBudgetInvariance: the fused panel multi-dot matches across
// budgets bitwise for panel widths around PanelCols.
func TestDDotPanelBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	withProcs(4, func() {
		n := 2*TileRows + 31
		work, d := randVec(n, rng), randVec(n, rng)
		for _, k := range []int{1, PanelCols - 1, PanelCols, PanelCols + 3, 2*PanelCols + 1} {
			cols := make([][]float64, k)
			for j := range cols {
				cols[j] = randVec(n, rng)
			}
			partials := make([]float64, ReduceBlocks(n)*k)
			ref := DDotPanelBudget(parallel.FixedBudget(1), cols, work, d, nil, nil)
			refPlain := DDotPanelBudget(parallel.FixedBudget(1), cols, work, nil, nil, nil)
			for _, bud := range testBudgets() {
				got := DDotPanelBudget(bud, cols, work, d, nil, partials)
				for j := range ref {
					if got[j] != ref[j] {
						t.Fatalf("k=%d workers=%d: DDotPanel[%d] %v != %v", k, bud.Workers(), j, got[j], ref[j])
					}
				}
				got = DDotPanelBudget(bud, cols, work, nil, nil, partials)
				for j := range refPlain {
					if got[j] != refPlain[j] {
						t.Fatalf("k=%d workers=%d: plain DDotPanel[%d] %v != %v", k, bud.Workers(), j, got[j], refPlain[j])
					}
				}
			}
		}
	})
}

// TestWidenMinArgmaxBudgetInvariance: the fused widen/min/argmax returns
// the same index and leaves identical dst/dmin for every budget,
// including ties (constant vectors) and pooled arena reuse.
func TestWidenMinArgmaxBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	withProcs(4, func() {
		for _, n := range []int{1, 513, TileRows, 3*TileRows + 9} {
			for trial := 0; trial < 3; trial++ {
				src := make([]int32, n)
				base := make([]int32, n)
				for i := range src {
					src[i] = int32(rng.Intn(64))
					base[i] = int32(rng.Intn(64))
				}
				if trial == 2 { // all-equal: exercises first-max tie-breaking
					for i := range src {
						src[i], base[i] = 7, 7
					}
				}
				tiles := ReduceBlocks(n)
				idxs, vals := make([]int, tiles), make([]int32, tiles)
				refDst := make([]float64, n)
				refMin := append([]int32(nil), base...)
				refIdx := WidenMinArgmaxBudget(parallel.FixedBudget(1), refDst, refMin, src, nil, nil)
				for _, bud := range testBudgets() {
					dst := make([]float64, n)
					dmin := append([]int32(nil), base...)
					gotIdx := WidenMinArgmaxBudget(bud, dst, dmin, src, idxs, vals)
					if gotIdx != refIdx {
						t.Fatalf("n=%d workers=%d trial=%d: argmax %d != %d", n, bud.Workers(), trial, gotIdx, refIdx)
					}
					for i := range dst {
						if dst[i] != refDst[i] || dmin[i] != refMin[i] {
							t.Fatalf("n=%d workers=%d: element %d diverged", n, bud.Workers(), i)
						}
					}
				}
			}
		}
	})
}

// TestScaledCopyDDotBudgetInvariance: the fused keep-step kernel is
// bitwise identical across budgets for both the D-weighted and plain
// variants.
func TestScaledCopyDDotBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	withProcs(4, func() {
		for _, n := range []int{100, TileRows + 1, 2*TileRows + 77} {
			src, d := randVec(n, rng), randVec(n, rng)
			partials := make([]float64, ReduceBlocks(n))
			refDst := make([]float64, n)
			ref := ScaledCopyDDotBudget(parallel.FixedBudget(1), refDst, src, d, 1.25, nil)
			refPlain := ScaledCopyDDotBudget(parallel.FixedBudget(1), refDst, src, nil, 1.25, nil)
			for _, bud := range testBudgets() {
				dst := make([]float64, n)
				if got := ScaledCopyDDotBudget(bud, dst, src, d, 1.25, partials); got != ref {
					t.Fatalf("n=%d workers=%d: ScaledCopyDDot %v != %v", n, bud.Workers(), got, ref)
				}
				for i := range dst {
					if dst[i] != refDst[i] {
						t.Fatalf("n=%d workers=%d: dst[%d] diverged", n, bud.Workers(), i)
					}
				}
				if got := ScaledCopyDDotBudget(bud, dst, src, nil, 1.25, partials); got != refPlain {
					t.Fatalf("n=%d workers=%d: plain ScaledCopyDDot %v != %v", n, bud.Workers(), got, refPlain)
				}
			}
		}
	})
}

// TestLapMulBudgetInvariance: the Laplacian kernels (column-wise and
// tiled) agree bitwise with each other and across budgets.
func TestLapMulBudgetInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.Path(2*TileRows + 13)
	n := g.NumV
	deg := g.WeightedDegrees()
	withProcs(4, func() {
		s := NewDense(n, 6)
		copy(s.Data, randVec(n*6, rng))
		ref := LapMulDenseBudget(parallel.FixedBudget(1), g, deg, s)
		for _, bud := range testBudgets() {
			got := LapMulDenseBudget(bud, g, deg, s)
			tiled := LapMulDenseTiledBudget(bud, g, deg, s, nil, nil, nil)
			for k := range ref.Data {
				if got.Data[k] != ref.Data[k] {
					t.Fatalf("workers=%d: LapMulDense[%d] diverged", bud.Workers(), k)
				}
				if tiled.Data[k] != ref.Data[k] {
					t.Fatalf("workers=%d: LapMulDenseTiled[%d] diverged", bud.Workers(), k)
				}
			}
		}
	})
}
