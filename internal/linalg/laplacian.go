package linalg

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// LapMulVec computes p ← L·x for the graph Laplacian L = D − A without
// materializing L: (L·x)(i) = deg(i)·x(i) − Σ_{j∈Adj(i)} w(i,j)·x(j).
// deg is the weighted degree vector (the dense degrees array the paper
// uses for the diagonal). One call is one SpMV.
func LapMulVec(g *graph.CSR, deg []float64, x, p []float64) {
	LapMulVecBudget(parallel.Live(), g, deg, x, p)
}

// LapMulVecBudget is LapMulVec under an explicit worker budget. Each
// output element is produced by one worker with a fixed adjacency-order
// summation, so results are partition-independent.
func LapMulVecBudget(bud parallel.Budget, g *graph.CSR, deg []float64, x, p []float64) {
	checkLen(len(x), g.NumV)
	checkLen(len(p), g.NumV)
	if g.Weighted() {
		bud.ForBlock(g.NumV, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var sum float64
				o0, o1 := g.Offsets[i], g.Offsets[i+1]
				for k := o0; k < o1; k++ {
					sum += g.Weights[k] * x[g.Adj[k]]
				}
				p[i] = deg[i]*x[i] - sum
			}
		})
		return
	}
	bud.ForBlock(g.NumV, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for _, j := range g.Adj[g.Offsets[i]:g.Offsets[i+1]] {
				sum += x[j]
			}
			p[i] = deg[i]*x[i] - sum
		}
	})
}

// LapMulDense computes P = L·S column by column — the s fused SpMVs of
// step 1 of the TripleProd phase. The irregular reads x[g.Adj[k]] are the
// accesses whose cost tracks the adjacency-gap distribution of Figure 2.
func LapMulDense(g *graph.CSR, deg []float64, s *Dense) *Dense {
	return LapMulDenseBudget(parallel.Live(), g, deg, s)
}

// LapMulDenseBudget is LapMulDense under an explicit worker budget.
func LapMulDenseBudget(bud parallel.Budget, g *graph.CSR, deg []float64, s *Dense) *Dense {
	p := NewDense(s.Rows, s.Cols)
	for j := 0; j < s.Cols; j++ {
		LapMulVecBudget(bud, g, deg, s.Col(j), p.Col(j))
	}
	return p
}

// WalkMulVec computes p ← D⁻¹A·x, the transition-matrix product used by
// the power-iteration baseline for Figure 1's bottom drawing (dominant
// eigenvectors of the normalized adjacency matrix).
func WalkMulVec(g *graph.CSR, deg []float64, x, p []float64) {
	checkLen(len(x), g.NumV)
	checkLen(len(p), g.NumV)
	if g.Weighted() {
		parallel.ForBlock(g.NumV, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var sum float64
				o0, o1 := g.Offsets[i], g.Offsets[i+1]
				for k := o0; k < o1; k++ {
					sum += g.Weights[k] * x[g.Adj[k]]
				}
				if deg[i] != 0 {
					p[i] = sum / deg[i]
				} else {
					p[i] = 0
				}
			}
		})
		return
	}
	parallel.ForBlock(g.NumV, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for _, j := range g.Adj[g.Offsets[i]:g.Offsets[i+1]] {
				sum += x[j]
			}
			if deg[i] != 0 {
				p[i] = sum / deg[i]
			} else {
				p[i] = 0
			}
		}
	})
}

// ExplicitLaplacian is the materialized CSR Laplacian used by the
// prior-work baseline. The paper attributes that implementation's memory
// blow-up (it could not run billion-edge graphs in 128 GB) to exactly this
// structure: n+2m explicit nonzeros with values, instead of the dense
// degrees array ParHDE keeps.
type ExplicitLaplacian struct {
	N       int
	Offsets []int64
	Cols    []int32
	Vals    []float64
}

// NewExplicitLaplacian materializes L = D − A for g.
func NewExplicitLaplacian(g *graph.CSR) *ExplicitLaplacian {
	n := g.NumV
	deg := g.WeightedDegrees()
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + (g.Offsets[i+1] - g.Offsets[i]) + 1
	}
	cols := make([]int32, offsets[n])
	vals := make([]float64, offsets[n])
	parallel.For(n, func(i int) {
		pos := offsets[i]
		placedDiag := false
		for k := g.Offsets[i]; k < g.Offsets[i+1]; k++ {
			j := g.Adj[k]
			if !placedDiag && int64(j) > int64(i) {
				cols[pos] = int32(i)
				vals[pos] = deg[i]
				pos++
				placedDiag = true
			}
			w := 1.0
			if g.Weighted() {
				w = g.Weights[k]
			}
			cols[pos] = j
			vals[pos] = -w
			pos++
		}
		if !placedDiag {
			cols[pos] = int32(i)
			vals[pos] = deg[i]
		}
	})
	return &ExplicitLaplacian{N: n, Offsets: offsets, Cols: cols, Vals: vals}
}

// MulVec computes p ← L·x through the explicit CSR structure (the generic
// SpMV the prior baseline pays for).
func (l *ExplicitLaplacian) MulVec(x, p []float64) {
	checkLen(len(x), l.N)
	checkLen(len(p), l.N)
	parallel.ForBlock(l.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for k := l.Offsets[i]; k < l.Offsets[i+1]; k++ {
				sum += l.Vals[k] * x[l.Cols[k]]
			}
			p[i] = sum
		}
	})
}

// MulDense computes P = L·S column by column.
func (l *ExplicitLaplacian) MulDense(s *Dense) *Dense {
	p := NewDense(s.Rows, s.Cols)
	for j := 0; j < s.Cols; j++ {
		l.MulVec(s.Col(j), p.Col(j))
	}
	return p
}
