package linalg

import (
	"repro/internal/parallel"
)

// Fused elementwise kernels. The BFS-phase bookkeeping and the DOrtho
// column hand-off were built from single-purpose Level-1 passes (widen,
// min-update, argmax, copy, scale), each streaming the same n-length
// vectors again; at layout scale those phases are pure memory traffic, so
// the fused forms here do the combined job in one pass.

// WidenMinArgmax fuses the per-pivot bookkeeping of the k-centers BFS
// loop: dst[i] = float64(src[i]), dmin[i] = min(dmin[i], src[i]), and the
// return value is the index of the maximum of the updated dmin (ties
// toward the smallest index, matching parallel.ArgmaxInt32). One pass
// over memory instead of the three the unfused widen → min-update →
// argmax sequence performs, with identical results.
func WidenMinArgmax(dst []float64, dmin, src []int32) int {
	return WidenMinArgmaxBudget(parallel.Live(), dst, dmin, src, nil, nil)
}

// WidenMinArgmaxBudget is WidenMinArgmax under an explicit worker budget,
// with idxs/vals as the per-tile argmax arenas (capacity ≥
// ReduceBlocks(n) each, allocated when short); a pooled caller passes
// both so the steady-state call allocates nothing. The elementwise writes
// are partition-independent, and the cross-tile first-maximum combine
// matches the serial first-maximum scan, so every budget returns the
// same index.
func WidenMinArgmaxBudget(bud parallel.Budget, dst []float64, dmin, src []int32, idxs []int, vals []int32) int {
	checkLen(len(dst), len(src))
	checkLen(len(dmin), len(src))
	n := len(src)
	tiles := ReduceBlocks(n)
	if tiles == 1 || bud.Workers() <= 1 {
		best, bv := 0, int32(-1<<31)
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = float64(v)
			if v < dmin[i] {
				dmin[i] = v
			}
			if dmin[i] > bv {
				best, bv = i, dmin[i]
			}
		}
		return best
	}
	var ib []int
	if cap(idxs) >= tiles {
		ib = idxs[:tiles]
	} else {
		ib = make([]int, tiles)
	}
	var vb []int32
	if cap(vals) >= tiles {
		vb = vals[:tiles]
	} else {
		vb = make([]int32, tiles)
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		best, bv := lo, int32(-1<<31)
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = float64(v)
			if v < dmin[i] {
				dmin[i] = v
			}
			if dmin[i] > bv {
				best, bv = i, dmin[i]
			}
		}
		ib[t], vb[t] = best, bv
	})
	best, bv := ib[0], vb[0]
	for t := 1; t < tiles; t++ {
		if vb[t] > bv {
			best, bv = ib[t], vb[t]
		}
	}
	return best
}

// ScaledCopy computes dst[i] = a·src[i] in one pass — the fused form of
// CopyVec followed by Scale.
func ScaledCopy(dst, src []float64, a float64) {
	ScaledCopyBudget(parallel.Live(), dst, src, a)
}

// ScaledCopyBudget is ScaledCopy under an explicit worker budget. Each
// element is written by one worker, so results are partition-independent.
func ScaledCopyBudget(bud parallel.Budget, dst, src []float64, a float64) {
	checkLen(len(dst), len(src))
	if bud.Serial(len(src)) {
		for i, v := range src {
			dst[i] = a * v
		}
		return
	}
	bud.ForBlock(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a * src[i]
		}
	})
}

// ScaledCopyDDot computes dst[i] = a·src[i] and returns dstᵀdiag(d)dst
// (plain dstᵀdst when d is nil) in the same pass: the fused form of the
// DOrtho keep step, which previously copied, scaled, and then re-streamed
// the column a third time for its D-norm. partials is the reduction
// buffer (capacity ≥ ReduceBlocks(n), grown when short); the fixed
// tiling and serial in-tile-order combine match DotWith/DDotWith, so the
// sum is bitwise identical for every worker budget.
func ScaledCopyDDot(dst, src, d []float64, a float64, partials []float64) float64 {
	return ScaledCopyDDotBudget(parallel.Live(), dst, src, d, a, partials)
}

// ScaledCopyDDotBudget is ScaledCopyDDot under an explicit worker budget.
func ScaledCopyDDotBudget(bud parallel.Budget, dst, src, d []float64, a float64, partials []float64) float64 {
	checkLen(len(dst), len(src))
	if d != nil {
		checkLen(len(d), len(src))
	}
	n := len(src)
	tiles := ReduceBlocks(n)
	if tiles == 1 {
		return scaledCopyDDotRange(dst, src, d, a, 0, n)
	}
	if bud.Workers() <= 1 {
		var s float64
		for t := 0; t < tiles; t++ {
			s += scaledCopyDDotRange(dst, src, d, a, t*n/tiles, (t+1)*n/tiles)
		}
		return s
	}
	var buf []float64
	if cap(partials) >= tiles {
		buf = partials[:tiles]
	} else {
		buf = make([]float64, tiles)
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		buf[t] = scaledCopyDDotRange(dst, src, d, a, lo, hi)
	})
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// scaledCopyDDotRange is one tile of ScaledCopyDDot.
func scaledCopyDDotRange(dst, src, d []float64, a float64, lo, hi int) float64 {
	var s float64
	if d == nil {
		for i := lo; i < hi; i++ {
			v := a * src[i]
			dst[i] = v
			s += v * v
		}
		return s
	}
	for i := lo; i < hi; i++ {
		v := a * src[i]
		dst[i] = v
		s += v * d[i] * v
	}
	return s
}
