package linalg

import (
	"sync"

	"repro/internal/parallel"
)

// Fused elementwise kernels. The BFS-phase bookkeeping and the DOrtho
// column hand-off were built from single-purpose Level-1 passes (widen,
// min-update, argmax, copy, scale), each streaming the same n-length
// vectors again; at layout scale those phases are pure memory traffic, so
// the fused forms here do the combined job in one pass.

// WidenMinArgmax fuses the per-pivot bookkeeping of the k-centers BFS
// loop: dst[i] = float64(src[i]), dmin[i] = min(dmin[i], src[i]), and the
// return value is the index of the maximum of the updated dmin (ties
// toward the smallest index, matching parallel.ArgmaxInt32). One pass
// over memory instead of the three the unfused widen → min-update →
// argmax sequence performs, with identical results.
func WidenMinArgmax(dst []float64, dmin, src []int32) int {
	checkLen(len(dst), len(src))
	checkLen(len(dmin), len(src))
	n := len(src)
	nb := ReduceBlocks(n)
	if nb == 1 {
		best, bv := 0, int32(-1<<31)
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = float64(v)
			if v < dmin[i] {
				dmin[i] = v
			}
			if dmin[i] > bv {
				best, bv = i, dmin[i]
			}
		}
		return best
	}
	idxs := make([]int, nb)
	vals := make([]int32, nb)
	var wg sync.WaitGroup
	wg.Add(nb)
	for w := 0; w < nb; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/nb, (w+1)*n/nb
			best, bv := lo, int32(-1<<31)
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = float64(v)
				if v < dmin[i] {
					dmin[i] = v
				}
				if dmin[i] > bv {
					best, bv = i, dmin[i]
				}
			}
			idxs[w], vals[w] = best, bv
		}(w)
	}
	wg.Wait()
	best, bv := idxs[0], vals[0]
	for w := 1; w < nb; w++ {
		if vals[w] > bv {
			best, bv = idxs[w], vals[w]
		}
	}
	return best
}

// ScaledCopy computes dst[i] = a·src[i] in one pass — the fused form of
// CopyVec followed by Scale.
func ScaledCopy(dst, src []float64, a float64) {
	checkLen(len(dst), len(src))
	if parallel.Serial(len(src)) {
		for i, v := range src {
			dst[i] = a * v
		}
		return
	}
	parallel.ForBlock(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a * src[i]
		}
	})
}

// ScaledCopyDDot computes dst[i] = a·src[i] and returns dstᵀdiag(d)dst
// (plain dstᵀdst when d is nil) in the same pass: the fused form of the
// DOrtho keep step, which previously copied, scaled, and then re-streamed
// the column a third time for its D-norm. partials is the reduction
// buffer (capacity ≥ ReduceBlocks(n), grown when short); the block
// partition and serial in-order combine match DotWith/DDotWith.
func ScaledCopyDDot(dst, src, d []float64, a float64, partials []float64) float64 {
	checkLen(len(dst), len(src))
	if d != nil {
		checkLen(len(d), len(src))
	}
	n := len(src)
	nb := ReduceBlocks(n)
	if nb == 1 {
		return scaledCopyDDotRange(dst, src, d, a, 0, n)
	}
	var buf []float64
	if cap(partials) >= nb {
		buf = partials[:nb]
	} else {
		buf = make([]float64, nb)
	}
	var wg sync.WaitGroup
	wg.Add(nb)
	for w := 0; w < nb; w++ {
		go func(w int) {
			defer wg.Done()
			buf[w] = scaledCopyDDotRange(dst, src, d, a, w*n/nb, (w+1)*n/nb)
		}(w)
	}
	wg.Wait()
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// scaledCopyDDotRange is one contiguous block of ScaledCopyDDot.
func scaledCopyDDotRange(dst, src, d []float64, a float64, lo, hi int) float64 {
	var s float64
	if d == nil {
		for i := lo; i < hi; i++ {
			v := a * src[i]
			dst[i] = v
			s += v * v
		}
		return s
	}
	for i := lo; i < hi; i++ {
		v := a * src[i]
		dst[i] = v
		s += v * d[i] * v
	}
	return s
}
