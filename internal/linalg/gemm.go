package linalg

import (
	"repro/internal/parallel"
)

// AtB computes the small dense product C = AᵀB, where A and B are n×s and
// n×t column-major matrices with large n and small s, t. This is the
// dgemm step of the TripleProd phase, Z = Sᵀ(LS): the paper notes its
// arithmetic intensity is s and its depth is independent of s (Table 1).
//
// The row dimension is cut into the fixed TileRows tiling; each tile is
// filled with the register-blocked 4×2 micro-kernel (see blocked.go) into
// its own s×t panel and the panels are combined serially in tile order.
// Because the tile grid depends only on n, the result is bitwise
// identical for every worker budget, including the serial path. Each
// output element owns one accumulator advancing in ascending row order,
// so the blocked kernel also sums in the same order as the naive
// reference within a tile.
func AtB(a, b *Dense) *Dense {
	return AtBInto(a, b, nil, nil)
}

// AtBInto is AtB writing into c (allocated when nil; contents are
// overwritten) with partials as the per-tile panel arena (capacity ≥
// ReduceBlocks(n)·s·t floats, grown when short). A workspace-backed
// caller passes both and the steady-state product allocates nothing.
func AtBInto(a, b, c *Dense, partials []float64) *Dense {
	return AtBBudget(parallel.Live(), a, b, c, partials)
}

// AtBBudget is AtBInto running under an explicit worker budget: the
// budget sets how many goroutines the fixed tile grid fans out across and
// nothing else, so every budget produces identical bits.
func AtBBudget(bud parallel.Budget, a, b, c *Dense, partials []float64) *Dense {
	n, s, t, c := atbCheck(a, b, c)
	tiles := ReduceBlocks(n)
	if tiles == 1 {
		atbPanel(a, b, c.Data, 0, n)
		return c
	}
	var buf []float64
	if cap(partials) >= tiles*s*t {
		buf = partials[:tiles*s*t]
	} else {
		buf = make([]float64, tiles*s*t)
	}
	if bud.Workers() <= 1 {
		for tl := 0; tl < tiles; tl++ {
			atbPanel(a, b, buf[tl*s*t:(tl+1)*s*t], tl*n/tiles, (tl+1)*n/tiles)
		}
	} else {
		forTiles(bud, n, tiles, func(tl, lo, hi int) {
			atbPanel(a, b, buf[tl*s*t:(tl+1)*s*t], lo, hi)
		})
	}
	combinePanels(c.Data, buf, tiles, s*t)
	return c
}

// AtBNaiveInto is the unblocked reference kernel: one full pass over a
// column pair per output element (A streamed t times, B streamed s
// times). It is kept as the correctness oracle for the blocked kernel's
// property tests and as the baseline the perf/kernel_budget.json gate
// measures the blocked kernel against; production callers should use
// AtBInto.
func AtBNaiveInto(a, b, c *Dense, partials []float64) *Dense {
	return AtBNaiveBudget(parallel.Live(), a, b, c, partials)
}

// AtBNaiveBudget is AtBNaiveInto under an explicit worker budget, tiled
// exactly like AtBBudget so the two stay bitwise comparable.
func AtBNaiveBudget(bud parallel.Budget, a, b, c *Dense, partials []float64) *Dense {
	n, s, t, c := atbCheck(a, b, c)
	tiles := ReduceBlocks(n)
	if tiles == 1 {
		naivePanel(a, b, c.Data, 0, n)
		return c
	}
	var buf []float64
	if cap(partials) >= tiles*s*t {
		buf = partials[:tiles*s*t]
	} else {
		buf = make([]float64, tiles*s*t)
	}
	if bud.Workers() <= 1 {
		for tl := 0; tl < tiles; tl++ {
			naivePanel(a, b, buf[tl*s*t:(tl+1)*s*t], tl*n/tiles, (tl+1)*n/tiles)
		}
	} else {
		forTiles(bud, n, tiles, func(tl, lo, hi int) {
			naivePanel(a, b, buf[tl*s*t:(tl+1)*s*t], lo, hi)
		})
	}
	combinePanels(c.Data, buf, tiles, s*t)
	return c
}

// atbCheck validates shapes and allocates c when nil.
func atbCheck(a, b, c *Dense) (n, s, t int, out *Dense) {
	if a.Rows != b.Rows {
		panic("linalg: AtB dimension mismatch")
	}
	n, s, t = a.Rows, a.Cols, b.Cols
	if c == nil {
		c = NewDense(s, t)
	} else if c.Rows != s || c.Cols != t {
		panic("linalg: AtBInto output shape mismatch")
	}
	return n, s, t, c
}

// naivePanel is the reference inner loop: one column-pair pass per
// output element over rows [lo, hi).
func naivePanel(a, b *Dense, out []float64, lo, hi int) {
	s, t := a.Cols, b.Cols
	for j := 0; j < t; j++ {
		bj := b.Col(j)
		for i := 0; i < s; i++ {
			ai := a.Col(i)
			var sum float64
			for r := lo; r < hi; r++ {
				sum += ai[r] * bj[r]
			}
			out[j*s+i] = sum
		}
	}
}

// combinePanels sums the nb per-tile panels serially in ascending tile
// order — the fixed combine order that keeps results identical across
// worker budgets.
func combinePanels(dst, buf []float64, nb, panel int) {
	for k := 0; k < panel; k++ {
		var sum float64
		for w := 0; w < nb; w++ {
			sum += buf[w*panel+k]
		}
		dst[k] = sum
	}
}

// MulSmall computes C = A·Y where A is n×s column-major (large n) and Y is
// s×p (tiny). This is the final projection [x, y] = B·Y of both HDE
// variants. Parallelized over row blocks; within a block the output
// columns are produced in pairs so every A column is streamed once per
// pair instead of once per output column (half the read traffic for the
// usual p = 2).
func MulSmall(a, y *Dense) *Dense {
	return MulSmallInto(a, y, nil)
}

// MulSmallInto is MulSmall writing into c (allocated when nil; contents
// are overwritten). Each output element is produced by exactly one block,
// so reuse changes nothing numerically.
func MulSmallInto(a, y, c *Dense) *Dense {
	return MulSmallBudget(parallel.Live(), a, y, c)
}

// MulSmallBudget is MulSmallInto under an explicit worker budget. Each
// output element is produced by exactly one worker with a fixed in-row
// summation order, so the result is partition-independent.
func MulSmallBudget(bud parallel.Budget, a, y, c *Dense) *Dense {
	if a.Cols != y.Rows {
		panic("linalg: MulSmall dimension mismatch")
	}
	n, p := a.Rows, y.Cols
	if c == nil {
		c = NewDense(n, p)
	} else if c.Rows != n || c.Cols != p {
		panic("linalg: MulSmallInto output shape mismatch")
	}
	if bud.Serial(n) {
		mulSmallRows(a, y, c, 0, n)
	} else {
		bud.ForBlock(n, func(lo, hi int) { mulSmallRows(a, y, c, lo, hi) })
	}
	return c
}

// mulSmallRows computes rows [lo, hi) of c = a·y, two output columns at a
// time: for each row quad the k-loop reads a[k·n+r] once and feeds both
// columns' accumulators, summing over k in ascending order exactly like
// the one-column-at-a-time reference.
func mulSmallRows(a, y, c *Dense, lo, hi int) {
	n, s, p := a.Rows, a.Cols, y.Cols
	ad := a.Data
	j := 0
	for ; j+2 <= p; j += 2 {
		y0, y1 := y.Col(j), y.Col(j+1)
		c0, c1 := c.Col(j), c.Col(j+1)
		r := lo
		for ; r+4 <= hi; r += 4 {
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for k := 0; k < s; k++ {
				base := k * n
				f0, f1 := y0[k], y1[k]
				a0, a1, a2, a3 := ad[base+r], ad[base+r+1], ad[base+r+2], ad[base+r+3]
				s00 += a0 * f0
				s10 += a0 * f1
				s01 += a1 * f0
				s11 += a1 * f1
				s02 += a2 * f0
				s12 += a2 * f1
				s03 += a3 * f0
				s13 += a3 * f1
			}
			c0[r], c0[r+1], c0[r+2], c0[r+3] = s00, s01, s02, s03
			c1[r], c1[r+1], c1[r+2], c1[r+3] = s10, s11, s12, s13
		}
		for ; r < hi; r++ {
			var s0, s1 float64
			for k := 0; k < s; k++ {
				av := ad[k*n+r]
				s0 += av * y0[k]
				s1 += av * y1[k]
			}
			c0[r], c1[r] = s0, s1
		}
	}
	if j < p {
		y0 := y.Col(j)
		c0 := c.Col(j)
		for r := lo; r < hi; r++ {
			var s0 float64
			for k := 0; k < s; k++ {
				s0 += ad[k*n+r] * y0[k]
			}
			c0[r] = s0
		}
	}
}
