package linalg

import (
	"sync"

	"repro/internal/parallel"
)

// AtB computes the small dense product C = AᵀB, where A and B are n×s and
// n×t column-major matrices with large n and small s, t. This is the
// dgemm step of the TripleProd phase, Z = Sᵀ(LS): the paper notes its
// arithmetic intensity is s and its depth is independent of s (Table 1).
//
// The row dimension is blocked across workers; each worker accumulates a
// private s×t panel and the panels are combined serially in block order,
// so results are deterministic for a fixed worker count.
func AtB(a, b *Dense) *Dense {
	return AtBInto(a, b, nil, nil)
}

// AtBInto is AtB writing into c (allocated when nil; contents are
// overwritten) with partials as the per-block panel arena (capacity ≥
// ReduceBlocks(n)·s·t floats, grown when short). A workspace-backed
// caller passes both and the steady-state product allocates nothing.
func AtBInto(a, b, c *Dense, partials []float64) *Dense {
	if a.Rows != b.Rows {
		panic("linalg: AtB dimension mismatch")
	}
	n, s, t := a.Rows, a.Cols, b.Cols
	if c == nil {
		c = NewDense(s, t)
	} else if c.Rows != s || c.Cols != t {
		panic("linalg: AtBInto output shape mismatch")
	}
	nb := ReduceBlocks(n)
	if nb == 1 {
		for j := 0; j < t; j++ {
			bj := b.Col(j)
			for i := 0; i < s; i++ {
				ai := a.Col(i)
				var sum float64
				for r := 0; r < n; r++ {
					sum += ai[r] * bj[r]
				}
				c.Data[j*s+i] = sum
			}
		}
		return c
	}
	// buf: see dotBlocks — keep the captured variable write-free after
	// capture so the serial path stays allocation-free.
	var buf []float64
	if cap(partials) >= nb*s*t {
		buf = partials[:nb*s*t]
	} else {
		buf = make([]float64, nb*s*t)
	}
	var wg sync.WaitGroup
	wg.Add(nb)
	for w := 0; w < nb; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/nb, (w+1)*n/nb
			local := buf[w*s*t : (w+1)*s*t]
			for j := 0; j < t; j++ {
				bj := b.Col(j)
				for i := 0; i < s; i++ {
					ai := a.Col(i)
					var sum float64
					for r := lo; r < hi; r++ {
						sum += ai[r] * bj[r]
					}
					local[j*s+i] = sum
				}
			}
		}(w)
	}
	wg.Wait()
	// Combine the per-block panels serially in block order (deterministic,
	// unlike a lock-ordered reduction).
	for k := 0; k < s*t; k++ {
		var sum float64
		for w := 0; w < nb; w++ {
			sum += buf[w*s*t+k]
		}
		c.Data[k] = sum
	}
	return c
}

// MulSmall computes C = A·Y where A is n×s column-major (large n) and Y is
// s×p (tiny). This is the final projection [x, y] = B·Y of both HDE
// variants. Parallelized over row blocks.
func MulSmall(a, y *Dense) *Dense {
	return MulSmallInto(a, y, nil)
}

// MulSmallInto is MulSmall writing into c (allocated when nil; contents
// are overwritten). Each output element is produced by exactly one block,
// so reuse changes nothing numerically.
func MulSmallInto(a, y, c *Dense) *Dense {
	if a.Cols != y.Rows {
		panic("linalg: MulSmall dimension mismatch")
	}
	n, p := a.Rows, y.Cols
	if c == nil {
		c = NewDense(n, p)
	} else if c.Rows != n || c.Cols != p {
		panic("linalg: MulSmallInto output shape mismatch")
	}
	if parallel.Serial(n) {
		mulSmallRows(a, y, c, 0, n)
	} else {
		parallel.ForBlock(n, func(lo, hi int) { mulSmallRows(a, y, c, lo, hi) })
	}
	return c
}

// mulSmallRows computes rows [lo, hi) of c = a·y.
func mulSmallRows(a, y, c *Dense, lo, hi int) {
	s, p := a.Cols, y.Cols
	for j := 0; j < p; j++ {
		cj := c.Col(j)
		for r := lo; r < hi; r++ {
			cj[r] = 0
		}
		for k := 0; k < s; k++ {
			ak := a.Col(k)
			f := y.At(k, j)
			if f == 0 {
				continue
			}
			for r := lo; r < hi; r++ {
				cj[r] += f * ak[r]
			}
		}
	}
}
