package linalg

import (
	"sync"

	"repro/internal/parallel"
)

// AtB computes the small dense product C = AᵀB, where A and B are n×s and
// n×t column-major matrices with large n and small s, t. This is the
// dgemm step of the TripleProd phase, Z = Sᵀ(LS): the paper notes its
// arithmetic intensity is s and its depth is independent of s (Table 1).
//
// The row dimension is blocked across workers; each worker accumulates a
// private s×t panel that is reduced serially at the end, so results are
// deterministic for a fixed worker count.
func AtB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("linalg: AtB dimension mismatch")
	}
	n, s, t := a.Rows, a.Cols, b.Cols
	c := NewDense(s, t)
	var mu sync.Mutex
	parallel.ForBlock(n, func(lo, hi int) {
		local := make([]float64, s*t)
		for j := 0; j < t; j++ {
			bj := b.Col(j)
			for i := 0; i < s; i++ {
				ai := a.Col(i)
				var sum float64
				for r := lo; r < hi; r++ {
					sum += ai[r] * bj[r]
				}
				local[j*s+i] = sum
			}
		}
		mu.Lock()
		for k, v := range local {
			c.Data[k] += v
		}
		mu.Unlock()
	})
	return c
}

// MulSmall computes C = A·Y where A is n×s column-major (large n) and Y is
// s×p (tiny). This is the final projection [x, y] = B·Y of both HDE
// variants. Parallelized over row blocks.
func MulSmall(a, y *Dense) *Dense {
	if a.Cols != y.Rows {
		panic("linalg: MulSmall dimension mismatch")
	}
	n, s, p := a.Rows, a.Cols, y.Cols
	c := NewDense(n, p)
	parallel.ForBlock(n, func(lo, hi int) {
		for j := 0; j < p; j++ {
			cj := c.Col(j)
			for k := 0; k < s; k++ {
				ak := a.Col(k)
				f := y.At(k, j)
				if f == 0 {
					continue
				}
				for r := lo; r < hi; r++ {
					cj[r] += f * ak[r]
				}
			}
		}
	})
	return c
}
