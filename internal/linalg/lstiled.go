package linalg

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// LapMulDenseTiled computes P = L·S like LapMulDense but exploits the
// s ≫ 1 special case the paper points at ("performance can be further
// improved for special cases such as m/n ≫ s or s ≫ 1", §3.1): instead
// of s independent SpMV passes that each re-read the adjacency structure,
// the matrix is repacked row-major so one pass over the edge list
// advances all s columns — each neighbor access loads a vertex's full
// s-wide row contiguously, raising the kernel's arithmetic intensity from
// O(1) to O(s) (Table 1's analysis). The repacking costs two extra
// streaming passes over the n×s data, which the single graph traversal
// amortizes for s ≳ 8. Per-element accumulation order matches
// LapMulDense exactly, so the two kernels are bitwise interchangeable.
func LapMulDenseTiled(g *graph.CSR, deg []float64, s *Dense) *Dense {
	return LapMulDenseTiledInto(g, deg, s, nil, nil, nil)
}

// LapMulDenseTiledInto is LapMulDenseTiled with caller-provided storage:
// p receives the product (allocated when nil), and srm/prm are the n·s
// row-major repack panels (allocated when their capacity is short). A
// workspace-backed caller passes all three and the steady-state kernel
// performs no O(n·s) allocations.
func LapMulDenseTiledInto(g *graph.CSR, deg []float64, s, p *Dense, srm, prm []float64) *Dense {
	return LapMulDenseTiledBudget(parallel.Live(), g, deg, s, p, srm, prm)
}

// LapMulDenseTiledBudget is LapMulDenseTiledInto under an explicit worker
// budget. Every output element is produced by exactly one worker with a
// fixed per-element accumulation order, so the result is
// partition-independent.
func LapMulDenseTiledBudget(bud parallel.Budget, g *graph.CSR, deg []float64, s, p *Dense, srm, prm []float64) *Dense {
	n, cols := s.Rows, s.Cols
	if n != g.NumV {
		panic("linalg: LapMulDenseTiled dimension mismatch")
	}
	if p == nil {
		p = NewDense(n, cols)
	} else if p.Rows != n || p.Cols != cols {
		panic("linalg: LapMulDenseTiledInto output shape mismatch")
	}
	if cols == 0 {
		return p
	}
	if cap(srm) < n*cols {
		srm = make([]float64, n*cols)
	}
	if cap(prm) < n*cols {
		prm = make([]float64, n*cols)
	}
	srm, prm = srm[:n*cols], prm[:n*cols]
	// Pack S row-major.
	if bud.Serial(n) {
		packRowMajor(s, srm, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { packRowMajor(s, srm, lo, hi, cols) })
	}
	// One edge-list pass advances all cols columns. Each vertex's output
	// row doubles as its accumulator — rows partition across blocks, so
	// this is race-free and saves a per-block scratch allocation.
	if bud.Serial(n) {
		fusedRows(g, deg, srm, prm, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { fusedRows(g, deg, srm, prm, lo, hi, cols) })
	}
	// Unpack to the column-major result.
	if bud.Serial(n) {
		unpackRowMajor(p, prm, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { unpackRowMajor(p, prm, lo, hi, cols) })
	}
	return p
}

// packRowMajor transposes rows [lo, hi) of the column-major s into srm.
func packRowMajor(s *Dense, srm []float64, lo, hi, cols int) {
	for j := 0; j < cols; j++ {
		col := s.Col(j)
		for i := lo; i < hi; i++ {
			srm[i*cols+j] = col[i]
		}
	}
}

// fusedRows computes rows [lo, hi) of the row-major product prm = L·S
// over the row-major pack srm: prm_i = deg_i·srm_i − Σ_{u∈adj(i)} srm_u,
// accumulating into prm_i itself. The accumulation order per element
// matches LapMulDense exactly (adjacency order, degree term last).
func fusedRows(g *graph.CSR, deg, srm, prm []float64, lo, hi, cols int) {
	weighted := g.Weighted()
	for i := lo; i < hi; i++ {
		acc := prm[i*cols : (i+1)*cols]
		for k := range acc {
			acc[k] = 0
		}
		o0, o1 := g.Offsets[i], g.Offsets[i+1]
		if weighted {
			for a := o0; a < o1; a++ {
				row := srm[int(g.Adj[a])*cols:]
				w := g.Weights[a]
				for k := 0; k < cols; k++ {
					acc[k] += w * row[k]
				}
			}
		} else {
			for a := o0; a < o1; a++ {
				row := srm[int(g.Adj[a])*cols:]
				for k := 0; k < cols; k++ {
					acc[k] += row[k]
				}
			}
		}
		d := deg[i]
		self := srm[i*cols:]
		for k := 0; k < cols; k++ {
			acc[k] = d*self[k] - acc[k]
		}
	}
}

// unpackRowMajor transposes rows [lo, hi) of prm into the column-major p.
func unpackRowMajor(p *Dense, prm []float64, lo, hi, cols int) {
	for j := 0; j < cols; j++ {
		col := p.Col(j)
		for i := lo; i < hi; i++ {
			col[i] = prm[i*cols+j]
		}
	}
}
