package linalg

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// LapMulDenseTiled computes P = L·S like LapMulDense but exploits the
// s ≫ 1 special case the paper points at ("performance can be further
// improved for special cases such as m/n ≫ s or s ≫ 1", §3.1): instead
// of s independent SpMV passes that each re-read the adjacency structure,
// the matrix is repacked row-major so one pass over the edge list
// advances all s columns — each neighbor access loads a vertex's full
// s-wide row contiguously, raising the kernel's arithmetic intensity from
// O(1) to O(s) (Table 1's analysis). The repacking costs two extra
// streaming passes over the n×s data, which the single graph traversal
// amortizes for s ≳ 8. Per-element accumulation order matches
// LapMulDense exactly, so the two kernels are bitwise interchangeable.
func LapMulDenseTiled(g *graph.CSR, deg []float64, s *Dense) *Dense {
	return LapMulDenseTiledInto(g, deg, s, nil, nil, nil)
}

// LapMulDenseTiledInto is LapMulDenseTiled with caller-provided storage:
// p receives the product (allocated when nil), and srm/prm are the n·s
// row-major repack panels (allocated when their capacity is short). A
// workspace-backed caller passes all three and the steady-state kernel
// performs no O(n·s) allocations.
func LapMulDenseTiledInto(g *graph.CSR, deg []float64, s, p *Dense, srm, prm []float64) *Dense {
	return LapMulDenseTiledBudget(parallel.Live(), g, deg, s, p, srm, prm)
}

// LapMulDenseTiledBudget is LapMulDenseTiledInto under an explicit worker
// budget. Every output element is produced by exactly one worker with a
// fixed per-element accumulation order, so the result is
// partition-independent.
func LapMulDenseTiledBudget(bud parallel.Budget, g *graph.CSR, deg []float64, s, p *Dense, srm, prm []float64) *Dense {
	n, cols := s.Rows, s.Cols
	if n != g.NumV {
		panic("linalg: LapMulDenseTiled dimension mismatch")
	}
	if p == nil {
		p = NewDense(n, cols)
	} else if p.Rows != n || p.Cols != cols {
		panic("linalg: LapMulDenseTiledInto output shape mismatch")
	}
	if cols == 0 {
		return p
	}
	if cap(srm) < n*cols {
		srm = make([]float64, n*cols)
	}
	if cap(prm) < n*cols {
		prm = make([]float64, n*cols)
	}
	srm, prm = srm[:n*cols], prm[:n*cols]
	// Pack S row-major.
	if bud.Serial(n) {
		packRowMajor(s, srm, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { packRowMajor(s, srm, lo, hi, cols) })
	}
	// One edge-list pass advances all cols columns. Each vertex's output
	// row doubles as its accumulator — rows partition across blocks, so
	// this is race-free and saves a per-block scratch allocation.
	if bud.Serial(n) {
		fusedRows(g, deg, srm, prm, 0, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { fusedRows(g, deg, srm, prm, 0, lo, hi, cols) })
	}
	// Unpack to the column-major result.
	if bud.Serial(n) {
		unpackRowMajor(p, prm, 0, 0, n, cols)
	} else {
		bud.ForBlock(n, func(lo, hi int) { unpackRowMajor(p, prm, 0, lo, hi, cols) })
	}
	return p
}

// LapMulDenseTiledPacked is LapMulDenseTiledPackedBudget with private
// storage — the convenience form the property tests exercise.
func LapMulDenseTiledPacked(g *graph.CSR, deg []float64, s *Dense) *Dense {
	return LapMulDenseTiledPackedBudget(parallel.Live(), g, deg, s, nil, nil, nil)
}

// LapMulDenseTiledPackedBudget is LapMulDenseTiledBudget with the output
// pass kept cache-resident: instead of fusing all n rows into a full n·s
// row-major panel and transposing it back in a second sweep — an extra
// n·s·16-byte DRAM round trip that dominates at layout sizes — each
// worker fuses a PackRows-high chunk into its arena slot and unpacks it
// into the column-major result while it is still in cache. The source
// pack srm stays global (fusedRows gathers arbitrary neighbors' rows, so
// it cannot be chunked), but the prm panel disappears entirely. Every
// output element is produced by one worker with the per-element
// accumulation order of fusedRows, so the result is bitwise identical to
// LapMulDenseTiledBudget for every worker budget.
func LapMulDenseTiledPackedBudget(bud parallel.Budget, g *graph.CSR, deg []float64, s, p *Dense, srm []float64, arena *PackArena) *Dense {
	n, cols := s.Rows, s.Cols
	if n != g.NumV {
		panic("linalg: LapMulDenseTiledPacked dimension mismatch")
	}
	if p == nil {
		p = NewDense(n, cols)
	} else if p.Rows != n || p.Cols != cols {
		panic("linalg: LapMulDenseTiledPacked output shape mismatch")
	}
	if cols == 0 {
		return p
	}
	if cap(srm) < n*cols {
		srm = make([]float64, n*cols)
	}
	srm = srm[:n*cols]
	if arena == nil {
		arena = &PackArena{}
	}
	workers := bud.BlockWorkers(n)
	arena.Ensure(workers, PackRows*cols)
	if workers <= 1 {
		packRowMajor(s, srm, 0, n, cols)
		slot := arena.slot(0)
		for r0 := 0; r0 < n; r0 += PackRows {
			r1 := min(r0+PackRows, n)
			fusedRows(g, deg, srm, slot, r0, r0, r1, cols)
			unpackRowMajor(p, slot, r0, r0, r1, cols)
		}
		return p
	}
	parallel.ForBlockIndexed(workers, n, func(_, lo, hi int) {
		packRowMajor(s, srm, lo, hi, cols)
	})
	parallel.ForBlockIndexed(workers, n, func(w, lo, hi int) {
		slot := arena.slot(w)
		for r0 := lo; r0 < hi; r0 += PackRows {
			r1 := min(r0+PackRows, hi)
			fusedRows(g, deg, srm, slot, r0, r0, r1, cols)
			unpackRowMajor(p, slot, r0, r0, r1, cols)
		}
	})
	return p
}

// packRowMajor transposes rows [lo, hi) of the column-major s into srm.
func packRowMajor(s *Dense, srm []float64, lo, hi, cols int) {
	for j := 0; j < cols; j++ {
		col := s.Col(j)
		for i := lo; i < hi; i++ {
			srm[i*cols+j] = col[i]
		}
	}
}

// fusedRows computes rows [lo, hi) of the row-major product prm = L·S
// over the row-major pack srm: prm_i = deg_i·srm_i − Σ_{u∈adj(i)} srm_u,
// accumulating into prm_i itself. prm is indexed relative to base —
// base 0 addresses a full n-row panel, base lo a chunk holding only
// [lo, hi) (the packed path's arena slot). The accumulation order per
// element matches LapMulDense exactly (adjacency order, degree term
// last) and does not depend on base.
func fusedRows(g *graph.CSR, deg, srm, prm []float64, base, lo, hi, cols int) {
	weighted := g.Weighted()
	for i := lo; i < hi; i++ {
		acc := prm[(i-base)*cols : (i-base+1)*cols]
		for k := range acc {
			acc[k] = 0
		}
		o0, o1 := g.Offsets[i], g.Offsets[i+1]
		if weighted {
			for a := o0; a < o1; a++ {
				row := srm[int(g.Adj[a])*cols:]
				w := g.Weights[a]
				for k := 0; k < cols; k++ {
					acc[k] += w * row[k]
				}
			}
		} else {
			for a := o0; a < o1; a++ {
				row := srm[int(g.Adj[a])*cols:]
				for k := 0; k < cols; k++ {
					acc[k] += row[k]
				}
			}
		}
		d := deg[i]
		self := srm[i*cols:]
		for k := 0; k < cols; k++ {
			acc[k] = d*self[k] - acc[k]
		}
	}
}

// unpackRowMajor transposes rows [lo, hi) of prm into the column-major
// p. prm is indexed relative to base, like fusedRows.
func unpackRowMajor(p *Dense, prm []float64, base, lo, hi, cols int) {
	for j := 0; j < cols; j++ {
		col := p.Col(j)
		for i := lo; i < hi; i++ {
			col[i] = prm[(i-base)*cols+j]
		}
	}
}
