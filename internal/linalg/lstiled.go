package linalg

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// LapMulDenseTiled computes P = L·S like LapMulDense but exploits the
// s ≫ 1 special case the paper points at ("performance can be further
// improved for special cases such as m/n ≫ s or s ≫ 1", §3.1): instead
// of s independent SpMV passes that each re-read the adjacency structure,
// the matrix is repacked row-major so one pass over the graph advances all
// s columns — each neighbor access loads s contiguous values, raising the
// kernel's arithmetic intensity from O(1) to O(s) (Table 1's analysis).
// The repacking costs two extra streaming passes over the n×s data, which
// the single graph traversal amortizes for s ≳ 8.
func LapMulDenseTiled(g *graph.CSR, deg []float64, s *Dense) *Dense {
	n, cols := s.Rows, s.Cols
	if n != g.NumV {
		panic("linalg: LapMulDenseTiled dimension mismatch")
	}
	if cols == 0 {
		return NewDense(n, 0)
	}
	// Pack S row-major.
	srm := make([]float64, n*cols)
	parallel.ForBlock(n, func(lo, hi int) {
		for j := 0; j < cols; j++ {
			col := s.Col(j)
			for i := lo; i < hi; i++ {
				srm[i*cols+j] = col[i]
			}
		}
	})
	prm := make([]float64, n*cols)
	weighted := g.Weighted()
	parallel.ForBlock(n, func(lo, hi int) {
		acc := make([]float64, cols)
		for i := lo; i < hi; i++ {
			for k := range acc {
				acc[k] = 0
			}
			o0, o1 := g.Offsets[i], g.Offsets[i+1]
			if weighted {
				for a := o0; a < o1; a++ {
					row := srm[int(g.Adj[a])*cols:]
					w := g.Weights[a]
					for k := 0; k < cols; k++ {
						acc[k] += w * row[k]
					}
				}
			} else {
				for a := o0; a < o1; a++ {
					row := srm[int(g.Adj[a])*cols:]
					for k := 0; k < cols; k++ {
						acc[k] += row[k]
					}
				}
			}
			d := deg[i]
			self := srm[i*cols:]
			out := prm[i*cols:]
			for k := 0; k < cols; k++ {
				out[k] = d*self[k] - acc[k]
			}
		}
	})
	// Unpack to the column-major result.
	p := NewDense(n, cols)
	parallel.ForBlock(n, func(lo, hi int) {
		for j := 0; j < cols; j++ {
			col := p.Col(j)
			for i := lo; i < hi; i++ {
				col[i] = prm[i*cols+j]
			}
		}
	})
	return p
}
