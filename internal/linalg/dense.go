package linalg

import "fmt"

// Dense is a column-major dense matrix. ParHDE stores the distance matrix
// B and the subspace matrix S column-major (Algorithm 3, line 2) because
// every kernel — orthogonalization, SpMM, projection — works a column at a
// time over length-n vectors.
type Dense struct {
	Rows, Cols int
	Data       []float64 // column j is Data[j*Rows : (j+1)*Rows]
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// ViewDense wraps buf as a rows×cols column-major matrix without copying
// (cap(buf) must be ≥ rows·cols). Workspace-backed kernels use it to give
// pooled flat buffers a Dense shape; the contents are reused verbatim, so
// callers that need zeroed storage must clear it themselves.
func ViewDense(buf []float64, rows, cols int) *Dense {
	if cap(buf) < rows*cols {
		panic(fmt.Sprintf("linalg: viewing %d×%d over cap %d", rows, cols, cap(buf)))
	}
	return &Dense{Rows: rows, Cols: cols, Data: buf[:rows*cols]}
}

// Col returns column j as a slice sharing the matrix storage.
func (m *Dense) Col(j int) []float64 {
	return m.Data[j*m.Rows : (j+1)*m.Rows]
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[j*m.Rows+i] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[j*m.Rows+i] = v }

// Slice returns a view of the first cols columns (no copy).
func (m *Dense) Slice(cols int) *Dense {
	if cols > m.Cols {
		panic(fmt.Sprintf("linalg: slicing %d cols from %d", cols, m.Cols))
	}
	return &Dense{Rows: m.Rows, Cols: cols, Data: m.Data[:cols*m.Rows]}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// DropColumns returns a matrix keeping only the listed columns, in order.
// Orthogonalization uses it to discard near-linearly-dependent distance
// vectors (Algorithm 3, lines 12-13).
func (m *Dense) DropColumns(keep []int) *Dense {
	out := NewDense(m.Rows, len(keep))
	for j, k := range keep {
		copy(out.Col(j), m.Col(k))
	}
	return out
}
