package linalg

import "repro/internal/parallel"

// ColumnCenter subtracts each column's mean from its entries, in the
// two-phase manner §3.2 describes for parallel PHDE: a parallel reduction
// computes the means, then a parallel sweep performs the subtraction.
// After the call every column of m sums to zero.
func ColumnCenter(m *Dense) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		mean := parallel.SumFloat64(len(col), func(i int) float64 { return col[i] }) / float64(len(col))
		parallel.ForBlock(len(col), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				col[i] -= mean
			}
		})
	}
}

// DoubleCenter applies the double-centering operator of classical MDS /
// PivotMDS to the n×s squared-distance matrix: subtract row means, column
// means, add the grand mean, and scale by −1/2. PivotMDS requires this in
// place of PHDE's column centering (§3.2); the computation is "similar to
// column centering" and is organized the same two-phase way.
func DoubleCenter(m *Dense) {
	n, s := m.Rows, m.Cols
	colMean := make([]float64, s)
	for j := 0; j < s; j++ {
		col := m.Col(j)
		colMean[j] = parallel.SumFloat64(n, func(i int) float64 { return col[i] }) / float64(n)
	}
	rowMean := make([]float64, n)
	parallel.ForBlock(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for j := 0; j < s; j++ {
				sum += m.At(i, j)
			}
			rowMean[i] = sum / float64(s)
		}
	})
	var grand float64
	for _, cm := range colMean {
		grand += cm
	}
	grand /= float64(s)
	for j := 0; j < s; j++ {
		col := m.Col(j)
		cm := colMean[j]
		parallel.ForBlock(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				col[i] = -0.5 * (col[i] - cm - rowMean[i] + grand)
			}
		})
	}
}

// SquareElements replaces every entry with its square (PivotMDS operates
// on squared graph distances).
func SquareElements(m *Dense) {
	parallel.ForBlock(len(m.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] *= m.Data[i]
		}
	})
}
