// Package linalg provides the parallel vector and matrix kernels behind
// ParHDE's DOrtho and TripleProd phases: Level-1 style vector operations,
// a column-major dense matrix, a parallel small-dimension GEMM, and the
// fused Laplacian × dense-matrix product that never materializes the
// Laplacian (the paper's key memory optimization over prior work).
package linalg

import (
	"math"
	"sync"

	"repro/internal/parallel"
)

// Dot returns xᵀy. The summation is parallelized with per-worker partials
// combined serially (log-depth reduction in the paper's model).
func Dot(x, y []float64) float64 {
	checkLen(len(x), len(y))
	return dotBlocks(x, nil, y, nil)
}

// DotWith is Dot with a caller-provided partials buffer (capacity ≥
// parallel.Workers()), so a steady-state caller — e.g. the MGS sweep
// reusing one buffer across all its inner products — allocates nothing.
// The blocking and serial combine order are identical to Dot's, so the
// two produce bitwise-identical sums.
func DotWith(x, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	return dotBlocks(x, nil, y, partials)
}

// DDot returns xᵀDy where D is the diagonal matrix diag(d) — the D-inner
// product used by degree-normalized orthogonalization.
func DDot(x, d, y []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return dotBlocks(x, d, y, nil)
}

// DDotWith is DDot with a caller-provided partials buffer; see DotWith.
func DDotWith(x, d, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return dotBlocks(x, d, y, partials)
}

// ReduceBlocks returns the number of contiguous blocks a length-n
// reduction fans out to: the partitioning parallel.SumFloat64 uses, so a
// caller sizing a reusable partials buffer can cover the worst case with
// ReduceBlocks(n) entries (bounded by parallel.Workers()).
func ReduceBlocks(n int) int {
	p := parallel.Workers()
	if p <= 1 || n < 2*parallel.MinGrain {
		return 1
	}
	if maxB := (n + parallel.MinGrain - 1) / parallel.MinGrain; p > maxB {
		p = maxB
	}
	return p
}

// dotBlocks computes xᵀy (d == nil) or xᵀdiag(d)y with one contiguous
// block per worker and a serial in-order combine: the same shape as
// parallel.SumFloat64, minus the per-call closure, plus an optional
// reusable partials buffer. Deterministic for a fixed worker count.
func dotBlocks(x, d, y, partials []float64) float64 {
	n := len(x)
	p := ReduceBlocks(n)
	if p == 1 {
		var s float64
		if d == nil {
			for i := 0; i < n; i++ {
				s += x[i] * y[i]
			}
		} else {
			for i := 0; i < n; i++ {
				s += x[i] * d[i] * y[i]
			}
		}
		return s
	}
	// buf is written only before the goroutines capture it: a captured
	// variable assigned after capture would be heap-boxed at function
	// entry, charging even the serial early-return path one allocation.
	var buf []float64
	if cap(partials) >= p {
		buf = partials[:p]
	} else {
		buf = make([]float64, p)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/p, (w+1)*n/p
			var s float64
			if d == nil {
				for i := lo; i < hi; i++ {
					s += x[i] * y[i]
				}
			} else {
				for i := lo; i < hi; i++ {
					s += x[i] * d[i] * y[i]
				}
			}
			buf[w] = s
		}(w)
	}
	wg.Wait()
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// Axpy computes y ← y + a·x. Like every Level-1 kernel here, the serial
// branch is written out so small or single-worker calls construct no
// escaping closure and allocate nothing.
func Axpy(a float64, x, y []float64) {
	checkLen(len(x), len(y))
	if parallel.Serial(len(x)) {
		for i := range x {
			y[i] += a * x[i]
		}
		return
	}
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// Scale computes x ← a·x.
func Scale(a float64, x []float64) {
	if parallel.Serial(len(x)) {
		for i := range x {
			x[i] *= a
		}
		return
	}
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Fill sets every element of x to a.
func Fill(x []float64, a float64) {
	if parallel.Serial(len(x)) {
		for i := range x {
			x[i] = a
		}
		return
	}
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = a
		}
	})
}

// CopyVec copies src into dst.
func CopyVec(dst, src []float64) {
	checkLen(len(dst), len(src))
	if parallel.Serial(len(src)) {
		copy(dst, src)
		return
	}
	parallel.ForBlock(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// MinUpdateInt32 computes d[j] ← min(d[j], b[j]) elementwise over int32
// vectors — the farthest-vertex bookkeeping of the BFS phase ("BFS: Other"
// in Table 1).
func MinUpdateInt32(d, b []int32) {
	checkLen(len(d), len(b))
	if parallel.Serial(len(d)) {
		for i := range d {
			if b[i] < d[i] {
				d[i] = b[i]
			}
		}
		return
	}
	parallel.ForBlock(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if b[i] < d[i] {
				d[i] = b[i]
			}
		}
	})
}

// Int32ToFloat64 widens an int32 hop-distance vector into a float64 column.
func Int32ToFloat64(dst []float64, src []int32) {
	checkLen(len(dst), len(src))
	if parallel.Serial(len(src)) {
		for i := range src {
			dst[i] = float64(src[i])
		}
		return
	}
	parallel.ForBlock(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float64(src[i])
		}
	})
}

func checkLen(a, b int) {
	if a != b {
		panic("linalg: dimension mismatch")
	}
}
