// Package linalg provides the parallel vector and matrix kernels behind
// ParHDE's DOrtho and TripleProd phases: Level-1 style vector operations,
// a column-major dense matrix, a parallel small-dimension GEMM, and the
// fused Laplacian × dense-matrix product that never materializes the
// Laplacian (the paper's key memory optimization over prior work).
package linalg

import (
	"math"

	"repro/internal/parallel"
)

// Dot returns xᵀy. The summation is parallelized with per-worker partials
// combined serially (log-depth reduction in the paper's model).
func Dot(x, y []float64) float64 {
	checkLen(len(x), len(y))
	return parallel.SumFloat64(len(x), func(i int) float64 { return x[i] * y[i] })
}

// DDot returns xᵀDy where D is the diagonal matrix diag(d) — the D-inner
// product used by degree-normalized orthogonalization.
func DDot(x, d, y []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return parallel.SumFloat64(len(x), func(i int) float64 { return x[i] * d[i] * y[i] })
}

// Axpy computes y ← y + a·x.
func Axpy(a float64, x, y []float64) {
	checkLen(len(x), len(y))
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// Scale computes x ← a·x.
func Scale(a float64, x []float64) {
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Fill sets every element of x to a.
func Fill(x []float64, a float64) {
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = a
		}
	})
}

// CopyVec copies src into dst.
func CopyVec(dst, src []float64) {
	checkLen(len(dst), len(src))
	parallel.ForBlock(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// MinUpdateInt32 computes d[j] ← min(d[j], b[j]) elementwise over int32
// vectors — the farthest-vertex bookkeeping of the BFS phase ("BFS: Other"
// in Table 1).
func MinUpdateInt32(d, b []int32) {
	checkLen(len(d), len(b))
	parallel.ForBlock(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if b[i] < d[i] {
				d[i] = b[i]
			}
		}
	})
}

// Int32ToFloat64 widens an int32 hop-distance vector into a float64 column.
func Int32ToFloat64(dst []float64, src []int32) {
	checkLen(len(dst), len(src))
	parallel.ForBlock(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float64(src[i])
		}
	})
}

func checkLen(a, b int) {
	if a != b {
		panic("linalg: dimension mismatch")
	}
}
