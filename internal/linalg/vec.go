// Package linalg provides the parallel vector and matrix kernels behind
// ParHDE's DOrtho and TripleProd phases: Level-1 style vector operations,
// a column-major dense matrix, a parallel small-dimension GEMM, and the
// fused Laplacian × dense-matrix product that never materializes the
// Laplacian (the paper's key memory optimization over prior work).
//
// Every reduction in the package runs over a fixed tiling of the row
// dimension (TileRows rows per tile, see ReduceBlocks) with the per-tile
// partial sums combined serially in ascending tile order. The tile grid
// depends only on the problem size — never on the worker count — so a
// reduction's result is bitwise identical across any worker budget,
// including the serial path, and arenas sized by ReduceBlocks can never
// be desynchronized by a GOMAXPROCS change mid-run. A parallel.Budget
// only controls how many goroutines the tiles fan out across.
package linalg

import (
	"math"
	"sync"

	"repro/internal/parallel"
)

// TileRows is the row height of one reduction tile: 4096 float64 rows are
// 32 KiB — half an L1 data cache per streamed operand — which is fine
// enough to load-balance across any realistic core count and coarse
// enough that the per-tile bookkeeping is negligible next to the tile's
// arithmetic.
const TileRows = 4096

// Dot returns xᵀy. The summation runs over the fixed row tiling with
// per-tile partials combined serially in tile order, so the result is
// bitwise identical for every worker budget.
func Dot(x, y []float64) float64 {
	checkLen(len(x), len(y))
	return dotBlocks(parallel.Live(), x, nil, y, nil)
}

// DotWith is Dot with a caller-provided partials buffer (capacity ≥
// ReduceBlocks(n)), so a steady-state caller — e.g. the MGS sweep
// reusing one buffer across all its inner products — allocates nothing.
// The tiling and serial combine order are identical to Dot's, so the
// two produce bitwise-identical sums.
func DotWith(x, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	return dotBlocks(parallel.Live(), x, nil, y, partials)
}

// DotBudget is DotWith running under an explicit worker budget.
func DotBudget(bud parallel.Budget, x, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	return dotBlocks(bud, x, nil, y, partials)
}

// DDot returns xᵀDy where D is the diagonal matrix diag(d) — the D-inner
// product used by degree-normalized orthogonalization.
func DDot(x, d, y []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return dotBlocks(parallel.Live(), x, d, y, nil)
}

// DDotWith is DDot with a caller-provided partials buffer; see DotWith.
func DDotWith(x, d, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return dotBlocks(parallel.Live(), x, d, y, partials)
}

// DDotBudget is DDotWith running under an explicit worker budget.
func DDotBudget(bud parallel.Budget, x, d, y, partials []float64) float64 {
	checkLen(len(x), len(y))
	checkLen(len(x), len(d))
	return dotBlocks(bud, x, d, y, partials)
}

// ReduceBlocks returns the number of tiles a length-n reduction is cut
// into: ⌈n/TileRows⌉ (at least 1). The tile count depends only on n, so a
// caller sizing a reusable partials arena with ReduceBlocks(n) entries is
// immune to concurrent GOMAXPROCS changes — the arena can never silently
// fall short mid-run — and the serial in-tile-order combine makes every
// reduction bitwise identical across worker budgets.
func ReduceBlocks(n int) int {
	if n <= TileRows {
		return 1
	}
	return (n + TileRows - 1) / TileRows
}

// forTiles runs body(t, lo, hi) for every tile t of the fixed [0, n)
// tiling, fanning the tiles out across min(bud.Workers(), tiles)
// goroutines; each worker owns a contiguous tile range so its memory
// access stays sequential. Callers needing an allocation-free serial path
// must branch on bud.Workers() <= 1 themselves before constructing the
// body closure.
func forTiles(bud parallel.Budget, n, tiles int, body func(t, lo, hi int)) {
	p := bud.Workers()
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		for t := 0; t < tiles; t++ {
			body(t, t*n/tiles, (t+1)*n/tiles)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for t := w * tiles / p; t < (w+1)*tiles/p; t++ {
				body(t, t*n/tiles, (t+1)*n/tiles)
			}
		}(w)
	}
	wg.Wait()
}

// forTilesIndexed is forTiles with the owning worker's index passed to
// body and the worker count fixed by the caller. The count is snapshotted
// once — before any worker-indexed arena is sized — so a live budget whose
// GOMAXPROCS moves mid-call can never fan out across more workers than the
// arena has slots. Worker w owns the contiguous tile range
// [w·tiles/p, (w+1)·tiles/p), the same partition forTiles uses.
func forTilesIndexed(p, n, tiles int, body func(w, t, lo, hi int)) {
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		for t := 0; t < tiles; t++ {
			body(0, t, t*n/tiles, (t+1)*n/tiles)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for t := w * tiles / p; t < (w+1)*tiles/p; t++ {
				body(w, t, t*n/tiles, (t+1)*n/tiles)
			}
		}(w)
	}
	wg.Wait()
}

// dotBlocks computes xᵀy (d == nil) or xᵀdiag(d)y over the fixed tiling.
// The serial path streams the per-tile sums into one accumulator in tile
// order — the same additions, in the same order, as the parallel arena +
// combine path — so all budgets produce identical bits, and the serial
// path needs neither arena nor closure (allocation-free).
func dotBlocks(bud parallel.Budget, x, d, y, partials []float64) float64 {
	n := len(x)
	tiles := ReduceBlocks(n)
	if tiles == 1 {
		return dotRange(x, d, y, 0, n)
	}
	if bud.Workers() <= 1 {
		var s float64
		for t := 0; t < tiles; t++ {
			s += dotRange(x, d, y, t*n/tiles, (t+1)*n/tiles)
		}
		return s
	}
	// buf is written only before the goroutines capture it: a captured
	// variable assigned after capture would be heap-boxed at function
	// entry, charging even the serial early-return path one allocation.
	var buf []float64
	if cap(partials) >= tiles {
		buf = partials[:tiles]
	} else {
		buf = make([]float64, tiles)
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		buf[t] = dotRange(x, d, y, lo, hi)
	})
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// dotRange is one tile of dotBlocks: a straight accumulation over rows
// [lo, hi).
func dotRange(x, d, y []float64, lo, hi int) float64 {
	var s float64
	if d == nil {
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		return s
	}
	for i := lo; i < hi; i++ {
		s += x[i] * d[i] * y[i]
	}
	return s
}

// Axpy computes y ← y + a·x. Like every Level-1 kernel here, the serial
// branch is written out so small or single-worker calls construct no
// escaping closure and allocate nothing.
func Axpy(a float64, x, y []float64) {
	AxpyBudget(parallel.Live(), a, x, y)
}

// AxpyBudget is Axpy under an explicit worker budget. Each element is
// written by exactly one worker, so the result is partition-independent.
func AxpyBudget(bud parallel.Budget, a float64, x, y []float64) {
	checkLen(len(x), len(y))
	if bud.Serial(len(x)) {
		for i := range x {
			y[i] += a * x[i]
		}
		return
	}
	bud.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// Scale computes x ← a·x.
func Scale(a float64, x []float64) {
	if parallel.Serial(len(x)) {
		for i := range x {
			x[i] *= a
		}
		return
	}
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Fill sets every element of x to a.
func Fill(x []float64, a float64) {
	FillBudget(parallel.Live(), x, a)
}

// FillBudget is Fill under an explicit worker budget.
func FillBudget(bud parallel.Budget, x []float64, a float64) {
	if bud.Serial(len(x)) {
		for i := range x {
			x[i] = a
		}
		return
	}
	bud.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = a
		}
	})
}

// CopyVec copies src into dst.
func CopyVec(dst, src []float64) {
	CopyVecBudget(parallel.Live(), dst, src)
}

// CopyVecBudget is CopyVec under an explicit worker budget.
func CopyVecBudget(bud parallel.Budget, dst, src []float64) {
	checkLen(len(dst), len(src))
	if bud.Serial(len(src)) {
		copy(dst, src)
		return
	}
	bud.ForBlock(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// MinUpdateInt32 computes d[j] ← min(d[j], b[j]) elementwise over int32
// vectors — the farthest-vertex bookkeeping of the BFS phase ("BFS: Other"
// in Table 1).
func MinUpdateInt32(d, b []int32) {
	checkLen(len(d), len(b))
	if parallel.Serial(len(d)) {
		for i := range d {
			if b[i] < d[i] {
				d[i] = b[i]
			}
		}
		return
	}
	parallel.ForBlock(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if b[i] < d[i] {
				d[i] = b[i]
			}
		}
	})
}

// Int32ToFloat64 widens an int32 hop-distance vector into a float64 column.
func Int32ToFloat64(dst []float64, src []int32) {
	Int32ToFloat64Budget(parallel.Live(), dst, src)
}

// Int32ToFloat64Budget is Int32ToFloat64 under an explicit worker budget.
func Int32ToFloat64Budget(bud parallel.Budget, dst []float64, src []int32) {
	checkLen(len(dst), len(src))
	if bud.Serial(len(src)) {
		for i := range src {
			dst[i] = float64(src[i])
		}
		return
	}
	bud.ForBlock(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float64(src[i])
		}
	})
}

func checkLen(a, b int) {
	if a != b {
		panic("linalg: dimension mismatch")
	}
}
