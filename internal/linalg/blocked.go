package linalg

// Register-blocked micro-kernels for the dense TripleProd/projection
// phases. The naive AᵀB kernel streams one column of A and one column of
// B per output element, so A is read t times and B s times — 2·s·t·n
// float64 loads for an s×t output. The kernels here compute a 4×2 output
// tile per pass instead: four A columns and two B columns are streamed
// together into eight independent accumulators, cutting the loads to
// 6·n per 8 outputs (0.75·s·t·n total, a 2.7× traffic reduction) while
// the row loop is unrolled by 4 to expose independent FMA chains. Each
// output element still owns exactly one accumulator advancing in
// ascending row order, so the blocked kernels sum in the same order as
// the naive ones and stay deterministic for a fixed worker count.
//
// All kernels are tail-safe: row counts that are not a multiple of the
// unroll factor and column counts that are not a multiple of the tile
// shape fall through to narrower kernels covering the remainder.

// dot4x2 accumulates the 4×2 tile cᵢⱼ += Σ_r aᵢ[r]·bⱼ[r] over the full
// slice length with a 4-way unrolled row loop. The accumulators start
// from the caller's running values (zero for a one-shot product): each
// adds one product at a time in ascending row order, so a caller that
// feeds a row range through in chunks — spilling the accumulators to
// memory between chunks, as the packed kernels do — performs exactly the
// same additions in exactly the same order as one full-range call.
func dot4x2(a0, a1, a2, a3, b0, b1 []float64, c00, c10, c20, c30, c01, c11, c21, c31 float64) (float64, float64, float64, float64, float64, float64, float64, float64) {
	n := len(a0)
	a1, a2, a3, b0, b1 = a1[:n], a2[:n], a3[:n], b0[:n], b1[:n]
	r := 0
	for ; r+4 <= n; r += 4 {
		x0, x1 := b0[r], b1[r]
		c00 += a0[r] * x0
		c01 += a0[r] * x1
		c10 += a1[r] * x0
		c11 += a1[r] * x1
		c20 += a2[r] * x0
		c21 += a2[r] * x1
		c30 += a3[r] * x0
		c31 += a3[r] * x1
		x0, x1 = b0[r+1], b1[r+1]
		c00 += a0[r+1] * x0
		c01 += a0[r+1] * x1
		c10 += a1[r+1] * x0
		c11 += a1[r+1] * x1
		c20 += a2[r+1] * x0
		c21 += a2[r+1] * x1
		c30 += a3[r+1] * x0
		c31 += a3[r+1] * x1
		x0, x1 = b0[r+2], b1[r+2]
		c00 += a0[r+2] * x0
		c01 += a0[r+2] * x1
		c10 += a1[r+2] * x0
		c11 += a1[r+2] * x1
		c20 += a2[r+2] * x0
		c21 += a2[r+2] * x1
		c30 += a3[r+2] * x0
		c31 += a3[r+2] * x1
		x0, x1 = b0[r+3], b1[r+3]
		c00 += a0[r+3] * x0
		c01 += a0[r+3] * x1
		c10 += a1[r+3] * x0
		c11 += a1[r+3] * x1
		c20 += a2[r+3] * x0
		c21 += a2[r+3] * x1
		c30 += a3[r+3] * x0
		c31 += a3[r+3] * x1
	}
	for ; r < n; r++ {
		x0, x1 := b0[r], b1[r]
		c00 += a0[r] * x0
		c01 += a0[r] * x1
		c10 += a1[r] * x0
		c11 += a1[r] * x1
		c20 += a2[r] * x0
		c21 += a2[r] * x1
		c30 += a3[r] * x0
		c31 += a3[r] * x1
	}
	return c00, c10, c20, c30, c01, c11, c21, c31
}

// dot4x1 is the j-tail of the 4×2 tile: four A columns against one B
// column, extending the caller's accumulator chains like dot4x2.
func dot4x1(a0, a1, a2, a3, b0 []float64, c0, c1, c2, c3 float64) (float64, float64, float64, float64) {
	n := len(a0)
	a1, a2, a3, b0 = a1[:n], a2[:n], a3[:n], b0[:n]
	r := 0
	// Each accumulator advances one product at a time (no multi-product
	// sums): Go cannot reassociate these, so the summation order is
	// exactly the naive kernel's and results stay bitwise identical.
	for ; r+4 <= n; r += 4 {
		x0, x1, x2, x3 := b0[r], b0[r+1], b0[r+2], b0[r+3]
		c0 += a0[r] * x0
		c0 += a0[r+1] * x1
		c0 += a0[r+2] * x2
		c0 += a0[r+3] * x3
		c1 += a1[r] * x0
		c1 += a1[r+1] * x1
		c1 += a1[r+2] * x2
		c1 += a1[r+3] * x3
		c2 += a2[r] * x0
		c2 += a2[r+1] * x1
		c2 += a2[r+2] * x2
		c2 += a2[r+3] * x3
		c3 += a3[r] * x0
		c3 += a3[r+1] * x1
		c3 += a3[r+2] * x2
		c3 += a3[r+3] * x3
	}
	for ; r < n; r++ {
		x := b0[r]
		c0 += a0[r] * x
		c1 += a1[r] * x
		c2 += a2[r] * x
		c3 += a3[r] * x
	}
	return c0, c1, c2, c3
}

// dot1x2 is the i-tail of the 4×2 tile: one A column against two B
// columns, extending the caller's accumulator chains like dot4x2.
func dot1x2(a0, b0, b1 []float64, c0, c1 float64) (float64, float64) {
	n := len(a0)
	b0, b1 = b0[:n], b1[:n]
	r := 0
	for ; r+4 <= n; r += 4 {
		x0, x1, x2, x3 := a0[r], a0[r+1], a0[r+2], a0[r+3]
		c0 += x0 * b0[r]
		c0 += x1 * b0[r+1]
		c0 += x2 * b0[r+2]
		c0 += x3 * b0[r+3]
		c1 += x0 * b1[r]
		c1 += x1 * b1[r+1]
		c1 += x2 * b1[r+2]
		c1 += x3 * b1[r+3]
	}
	for ; r < n; r++ {
		c0 += a0[r] * b0[r]
		c1 += a0[r] * b1[r]
	}
	return c0, c1
}

// dot1x1 is the scalar corner of the tiling, extending the caller's
// accumulator chain like dot4x2.
func dot1x1(a0, b0 []float64, c float64) float64 {
	n := len(a0)
	b0 = b0[:n]
	r := 0
	for ; r+4 <= n; r += 4 {
		c += a0[r] * b0[r]
		c += a0[r+1] * b0[r+1]
		c += a0[r+2] * b0[r+2]
		c += a0[r+3] * b0[r+3]
	}
	for ; r < n; r++ {
		c += a0[r] * b0[r]
	}
	return c
}

// atbPanel writes the s×t column-major panel out[j*s+i] = Σ_{r∈[lo,hi)}
// a_i[r]·b_j[r], tiling the output 4×2 so each pass over the row range
// serves eight elements. Called once per row block by AtBInto; with one
// block it produces the final product directly.
func atbPanel(a, b *Dense, out []float64, lo, hi int) {
	s, t := a.Cols, b.Cols
	j := 0
	for ; j+2 <= t; j += 2 {
		b0, b1 := b.Col(j)[lo:hi], b.Col(j + 1)[lo:hi]
		o0, o1 := out[j*s:(j+1)*s], out[(j+1)*s:(j+2)*s]
		i := 0
		for ; i+4 <= s; i += 4 {
			c00, c10, c20, c30, c01, c11, c21, c31 := dot4x2(
				a.Col(i)[lo:hi], a.Col(i + 1)[lo:hi], a.Col(i + 2)[lo:hi], a.Col(i + 3)[lo:hi], b0, b1,
				0, 0, 0, 0, 0, 0, 0, 0)
			o0[i], o0[i+1], o0[i+2], o0[i+3] = c00, c10, c20, c30
			o1[i], o1[i+1], o1[i+2], o1[i+3] = c01, c11, c21, c31
		}
		for ; i < s; i++ {
			o0[i], o1[i] = dot1x2(a.Col(i)[lo:hi], b0, b1, 0, 0)
		}
	}
	if j < t {
		b0 := b.Col(j)[lo:hi]
		o0 := out[j*s : (j+1)*s]
		i := 0
		for ; i+4 <= s; i += 4 {
			o0[i], o0[i+1], o0[i+2], o0[i+3] = dot4x1(
				a.Col(i)[lo:hi], a.Col(i + 1)[lo:hi], a.Col(i + 2)[lo:hi], a.Col(i + 3)[lo:hi], b0,
				0, 0, 0, 0)
		}
		for ; i < s; i++ {
			o0[i] = dot1x1(a.Col(i)[lo:hi], b0, 0)
		}
	}
}
