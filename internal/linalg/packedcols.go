package linalg

import (
	"repro/internal/parallel"
)

// PackedCols is a tile-major store for the kept columns of a panel
// Gram-Schmidt sweep. The flat arena the sweep previously projected
// against keeps each kept column n·8 bytes from the next — a power of
// two at layout sizes, so the eight columns of a panel chunk collide in
// the same cache sets and each projection pass re-reads them from DRAM.
// Here every column is split over the fixed ReduceBlocks(n) reduction
// tiles and stored tile-major: tile t holds all columns' [t·n/tiles,
// (t+1)·n/tiles) rows contiguously, each column slot padded by
// packColPad floats so adjacent slots sit a non-power-of-two stride
// apart and panel chunks stream conflict-free. A column is packed once
// when it is kept (AppendScaledDDotBudget — the same fused write the
// flat path performs) and then re-read in packed form by every later
// projection, so packing costs nothing extra. All three kernels mirror
// their flat counterparts' per-element accumulation orders exactly, so
// the packed sweep is bitwise identical to the flat one for every
// worker budget.
type PackedCols struct {
	buf     []float64
	n       int // rows per column
	tiles   int // ReduceBlocks(n)
	stride  int // floats per column slot: ⌈n/tiles⌉ + packColPad
	capCols int // column slots per tile
	k       int // columns currently stored
}

// packColPad is the padding appended to each column slot: one cache line
// of floats, enough to stagger the power-of-two tile widths the layout
// sizes produce (4096-row tiles → 32 KiB slots that would otherwise all
// map to the same L1 sets).
const packColPad = 8

// Ensure shapes the store for n-row columns with room for capCols of
// them, growing the backing storage only when the footprint exceeds its
// capacity, and resets the column count to zero.
func (pc *PackedCols) Ensure(n, capCols int) {
	tiles := ReduceBlocks(n)
	stride := (n+tiles-1)/tiles + packColPad
	need := tiles * capCols * stride
	if cap(pc.buf) < need {
		pc.buf = make([]float64, need)
	}
	pc.buf = pc.buf[:cap(pc.buf)]
	pc.n, pc.tiles, pc.stride, pc.capCols, pc.k = n, tiles, stride, capCols, 0
}

// Reset drops the stored columns (capacity is kept) so the store can
// host the next sweep.
func (pc *PackedCols) Reset() { pc.k = 0 }

// Len reports the number of stored columns.
func (pc *PackedCols) Len() int { return pc.k }

// slot returns column j's storage for tile t; only the tile's width is
// valid, the rest is padding.
func (pc *PackedCols) slot(t, j int) []float64 {
	base := (t*pc.capCols + j) * pc.stride
	return pc.buf[base : base+pc.stride]
}

// AppendScaledDDotBudget appends the column a·src to the store and
// returns its D-norm ⟨a·src, a·src⟩_D (plain when d is nil) from the
// same pass — ScaledCopyDDotBudget with the packed store as
// destination. The tiling, per-tile expression, and serial in-tile-order
// combine are ScaledCopyDDotBudget's, so the returned sum is bitwise
// identical to the flat kernel's for every worker budget.
func (pc *PackedCols) AppendScaledDDotBudget(bud parallel.Budget, src, d []float64, a float64, partials []float64) float64 {
	j := pc.k
	pc.k++
	n, tiles := pc.n, pc.tiles
	if tiles == 1 {
		return packScaledDDotRange(pc.slot(0, j), src, d, a, 0, n)
	}
	if bud.Workers() <= 1 {
		var s float64
		for t := 0; t < tiles; t++ {
			s += packScaledDDotRange(pc.slot(t, j), src, d, a, t*n/tiles, (t+1)*n/tiles)
		}
		return s
	}
	var buf []float64
	if cap(partials) >= tiles {
		buf = partials[:tiles]
	} else {
		buf = make([]float64, tiles)
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		buf[t] = packScaledDDotRange(pc.slot(t, j), src, d, a, lo, hi)
	})
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// packScaledDDotRange is scaledCopyDDotRange writing into a tile slot:
// identical value stream and accumulation order, packed destination.
func packScaledDDotRange(slot, src, d []float64, a float64, lo, hi int) float64 {
	var s float64
	if d == nil {
		for i := lo; i < hi; i++ {
			v := a * src[i]
			slot[i-lo] = v
			s += v * v
		}
		return s
	}
	for i := lo; i < hi; i++ {
		v := a * src[i]
		slot[i-lo] = v
		s += v * d[i] * v
	}
	return s
}

// DDotPanelRangeBudget appends ⟨col_j, work⟩_D for every stored column
// j in [j0, j1) to out and returns it — DDotPanelBudget over a packed
// column range. Tiling, chunking, per-element order, and the
// ascending-tile combine mirror the flat kernel called on the same
// column slice exactly, so results are bitwise identical for every
// worker budget; only the column loads hit the padded tile-major
// storage instead of n-strided flat columns.
func (pc *PackedCols) DDotPanelRangeBudget(bud parallel.Budget, j0, j1 int, work, d, out, partials []float64) []float64 {
	k := j1 - j0
	if j1 > pc.k {
		panic("linalg: PackedCols column range exceeds stored columns")
	}
	if k <= 0 {
		return out
	}
	n, tiles := pc.n, pc.tiles
	base := len(out)
	for i := 0; i < k; i++ {
		out = append(out, 0)
	}
	if tiles == 1 {
		pc.dDotPackedRange(0, j0, j1, work, d, 0, n, out[base:])
		return out
	}
	var buf []float64
	if cap(partials) >= tiles*k {
		buf = partials[:tiles*k]
	} else {
		buf = make([]float64, tiles*k)
	}
	if bud.Workers() <= 1 {
		for t := 0; t < tiles; t++ {
			pc.dDotPackedRange(t, j0, j1, work, d, t*n/tiles, (t+1)*n/tiles, buf[t*k:(t+1)*k])
		}
	} else {
		forTiles(bud, n, tiles, func(t, lo, hi int) {
			pc.dDotPackedRange(t, j0, j1, work, d, lo, hi, buf[t*k:(t+1)*k])
		})
	}
	for j := 0; j < k; j++ {
		var s float64
		for t := 0; t < tiles; t++ {
			s += buf[t*k+j]
		}
		out[base+j] = s
	}
	return out
}

// dDotPackedRange is dDotPanelRange over tile t's slots: columns
// [j0, j1) walked in PanelCols-wide chunks from j0, one fused pass per
// chunk — the same chunk boundaries the flat kernel produces for the
// slice cols[j0:j1].
func (pc *PackedCols) dDotPackedRange(t, j0, j1 int, work, d []float64, lo, hi int, acc []float64) {
	for c0 := j0; c0 < j1; c0 += PanelCols {
		c1 := c0 + PanelCols
		if c1 > j1 {
			c1 = j1
		}
		pc.dDotPackedChunk(t, c0, c1, work, d, lo, hi, acc[c0-j0:c1-j0])
	}
}

// dDotPackedChunk is dDotChunkRange against packed slots, with the slot
// rows indexed relative to lo.
func (pc *PackedCols) dDotPackedChunk(t, j0, j1 int, work, d []float64, lo, hi int, acc []float64) {
	if j1-j0 == PanelCols {
		c0, c1, c2, c3 := pc.slot(t, j0), pc.slot(t, j0+1), pc.slot(t, j0+2), pc.slot(t, j0+3)
		c4, c5, c6, c7 := pc.slot(t, j0+4), pc.slot(t, j0+5), pc.slot(t, j0+6), pc.slot(t, j0+7)
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		if d == nil {
			for r := lo; r < hi; r++ {
				w := work[r]
				a0 += c0[r-lo] * w
				a1 += c1[r-lo] * w
				a2 += c2[r-lo] * w
				a3 += c3[r-lo] * w
				a4 += c4[r-lo] * w
				a5 += c5[r-lo] * w
				a6 += c6[r-lo] * w
				a7 += c7[r-lo] * w
			}
		} else {
			for r := lo; r < hi; r++ {
				w := d[r] * work[r]
				a0 += c0[r-lo] * w
				a1 += c1[r-lo] * w
				a2 += c2[r-lo] * w
				a3 += c3[r-lo] * w
				a4 += c4[r-lo] * w
				a5 += c5[r-lo] * w
				a6 += c6[r-lo] * w
				a7 += c7[r-lo] * w
			}
		}
		acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
		acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
		return
	}
	// Narrow tail chunk: row-outer with a j-inner loop, like the flat
	// kernel. The slot headers live in a fixed-size stack array so the
	// tail allocates nothing.
	var cs [PanelCols][]float64
	kk := j1 - j0
	for j := 0; j < kk; j++ {
		cs[j] = pc.slot(t, j0+j)
	}
	for j := 0; j < kk; j++ {
		acc[j] = 0
	}
	if d == nil {
		for r := lo; r < hi; r++ {
			w := work[r]
			for j := 0; j < kk; j++ {
				acc[j] += cs[j][r-lo] * w
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		w := d[r] * work[r]
		for j := 0; j < kk; j++ {
			acc[j] += cs[j][r-lo] * w
		}
	}
}

// SubtractScaledRangeBudget computes work ← work − Σ_j coeffs[j−j0]·col_j
// over the stored columns [j0, j1) — SubtractScaledBudget against a
// packed column range. Each work element is combined with the same
// chunk-ordered compound expression as the flat kernel, so results are
// bitwise identical; the parallel partition runs over the fixed tiling
// (whose boundaries the packed slots cover exactly) rather than
// ForBlock, which is immaterial because every element is written by
// exactly one worker.
func (pc *PackedCols) SubtractScaledRangeBudget(bud parallel.Budget, j0, j1 int, work, coeffs []float64) {
	if j1 > pc.k {
		panic("linalg: PackedCols column range exceeds stored columns")
	}
	if len(coeffs) != j1-j0 {
		panic("linalg: PackedCols column/coefficient mismatch")
	}
	if j1 <= j0 {
		return
	}
	n, tiles := pc.n, pc.tiles
	if tiles == 1 || bud.Workers() <= 1 {
		for t := 0; t < tiles; t++ {
			pc.subPackedRange(t, j0, j1, work, coeffs, t*n/tiles, (t+1)*n/tiles)
		}
		return
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		pc.subPackedRange(t, j0, j1, work, coeffs, lo, hi)
	})
}

// subPackedRange is subScaledRange over tile t's slots for columns
// [j0, j1), chunked from j0 like dDotPackedRange.
func (pc *PackedCols) subPackedRange(t, j0, j1 int, work, coeffs []float64, lo, hi int) {
	for c0 := j0; c0 < j1; c0 += PanelCols {
		c1 := c0 + PanelCols
		if c1 > j1 {
			c1 = j1
		}
		pc.subPackedChunk(t, c0, c1, work, coeffs[c0-j0:c1-j0], lo, hi)
	}
}

// subPackedChunk is subChunkRange against packed slots.
func (pc *PackedCols) subPackedChunk(t, j0, j1 int, work, f []float64, lo, hi int) {
	if j1-j0 == PanelCols {
		c0, c1, c2, c3 := pc.slot(t, j0), pc.slot(t, j0+1), pc.slot(t, j0+2), pc.slot(t, j0+3)
		c4, c5, c6, c7 := pc.slot(t, j0+4), pc.slot(t, j0+5), pc.slot(t, j0+6), pc.slot(t, j0+7)
		f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
		f4, f5, f6, f7 := f[4], f[5], f[6], f[7]
		for r := lo; r < hi; r++ {
			work[r] -= f0*c0[r-lo] + f1*c1[r-lo] + f2*c2[r-lo] + f3*c3[r-lo] +
				f4*c4[r-lo] + f5*c5[r-lo] + f6*c6[r-lo] + f7*c7[r-lo]
		}
		return
	}
	var cs [PanelCols][]float64
	kk := j1 - j0
	for j := 0; j < kk; j++ {
		cs[j] = pc.slot(t, j0+j)
	}
	for r := lo; r < hi; r++ {
		w := work[r]
		for j := 0; j < kk; j++ {
			w -= f[j] * cs[j][r-lo]
		}
		work[r] = w
	}
}

// CopyColInto unpacks stored column j into the flat dst (length ≥ n).
func (pc *PackedCols) CopyColInto(dst []float64, j int) {
	n, tiles := pc.n, pc.tiles
	for t := 0; t < tiles; t++ {
		lo, hi := t*n/tiles, (t+1)*n/tiles
		copy(dst[lo:hi], pc.slot(t, j)[:hi-lo])
	}
}

// CopyColIntoBudget is CopyColInto with the tiles fanned out across the
// budget's workers — used when unpacking a full kept panel at result
// time.
func (pc *PackedCols) CopyColIntoBudget(bud parallel.Budget, dst []float64, j int) {
	n, tiles := pc.n, pc.tiles
	if tiles == 1 || bud.Workers() <= 1 {
		pc.CopyColInto(dst, j)
		return
	}
	forTiles(bud, n, tiles, func(t, lo, hi int) {
		copy(dst[lo:hi], pc.slot(t, j)[:hi-lo])
	})
}
