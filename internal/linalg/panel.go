package linalg

import (
	"repro/internal/parallel"
)

// Panel kernels for block Gram-Schmidt: a fused multi-dot that computes
// the inner products of one vector against a panel of columns in a single
// pass over memory, and the fused multi-axpy applying the combined
// update. The Level-1 formulation streams the work vector (and d) twice
// per kept column; these stream them twice per panel of PanelCols
// columns, and every panel column exactly as often as before — the
// remaining bandwidth is the irreducible column traffic of Gram-Schmidt.

// PanelCols is the column width of the fused panel kernels: eight
// accumulators fit the register budget of the unrolled inner loops, and
// wider panels would only re-stream columns that no longer fit cache.
const PanelCols = 8

// DDotPanel appends ⟨cols[j], work⟩_D (plain inner products when d is
// nil) for every column to out and returns it. The row dimension runs
// over the fixed TileRows tiling with per-tile partials combined serially
// in tile order — exactly like DotWith — so results are bitwise identical
// for every worker budget. partials is the per-tile arena (capacity ≥
// ReduceBlocks(n)·len(cols), grown when short); out should have spare
// capacity for len(cols) more entries to keep the call allocation-free.
func DDotPanel(cols [][]float64, work, d []float64, out, partials []float64) []float64 {
	return DDotPanelBudget(parallel.Live(), cols, work, d, out, partials)
}

// DDotPanelBudget is DDotPanel running under an explicit worker budget.
func DDotPanelBudget(bud parallel.Budget, cols [][]float64, work, d []float64, out, partials []float64) []float64 {
	k := len(cols)
	if k == 0 {
		return out
	}
	n := len(work)
	base := len(out)
	for i := 0; i < k; i++ {
		out = append(out, 0)
	}
	tiles := ReduceBlocks(n)
	if tiles == 1 {
		dDotPanelRange(cols, work, d, 0, n, out[base:])
		return out
	}
	var buf []float64
	if cap(partials) >= tiles*k {
		buf = partials[:tiles*k]
	} else {
		buf = make([]float64, tiles*k)
	}
	if bud.Workers() <= 1 {
		for t := 0; t < tiles; t++ {
			dDotPanelRange(cols, work, d, t*n/tiles, (t+1)*n/tiles, buf[t*k:(t+1)*k])
		}
	} else {
		forTiles(bud, n, tiles, func(t, lo, hi int) {
			dDotPanelRange(cols, work, d, lo, hi, buf[t*k:(t+1)*k])
		})
	}
	for j := 0; j < k; j++ {
		var s float64
		for t := 0; t < tiles; t++ {
			s += buf[t*k+j]
		}
		out[base+j] = s
	}
	return out
}

// dDotPanelRange fills acc[j] = ⟨cols[j], work⟩_D over rows [lo, hi),
// walking the columns in PanelCols-wide chunks so each chunk is one
// fused pass.
func dDotPanelRange(cols [][]float64, work, d []float64, lo, hi int, acc []float64) {
	for c0 := 0; c0 < len(cols); c0 += PanelCols {
		c1 := c0 + PanelCols
		if c1 > len(cols) {
			c1 = len(cols)
		}
		dDotChunkRange(cols[c0:c1], work, d, lo, hi, acc[c0:c1])
	}
}

// dDotChunkRange is one fused pass computing up to PanelCols inner
// products; the full-width chunk keeps all eight accumulators in
// registers.
func dDotChunkRange(cols [][]float64, work, d []float64, lo, hi int, acc []float64) {
	if len(cols) == PanelCols {
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		c4, c5, c6, c7 := cols[4], cols[5], cols[6], cols[7]
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		if d == nil {
			for r := lo; r < hi; r++ {
				w := work[r]
				a0 += c0[r] * w
				a1 += c1[r] * w
				a2 += c2[r] * w
				a3 += c3[r] * w
				a4 += c4[r] * w
				a5 += c5[r] * w
				a6 += c6[r] * w
				a7 += c7[r] * w
			}
		} else {
			for r := lo; r < hi; r++ {
				w := d[r] * work[r]
				a0 += c0[r] * w
				a1 += c1[r] * w
				a2 += c2[r] * w
				a3 += c3[r] * w
				a4 += c4[r] * w
				a5 += c5[r] * w
				a6 += c6[r] * w
				a7 += c7[r] * w
			}
		}
		acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
		acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
		return
	}
	// Narrow tail chunk: accumulate row-outer with a j-inner loop.
	for j := range acc {
		acc[j] = 0
	}
	if d == nil {
		for r := lo; r < hi; r++ {
			w := work[r]
			for j, col := range cols {
				acc[j] += col[r] * w
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		w := d[r] * work[r]
		for j, col := range cols {
			acc[j] += col[r] * w
		}
	}
}

// SubtractScaled computes work ← work − Σ_j coeffs[j]·cols[j] with one
// fused pass per PanelCols-wide chunk: the multi-axpy update of block
// Gram-Schmidt (and the Level-2 "gemv" update of CGS). Each element of
// work is updated by exactly one worker, and the per-element combination
// order is fixed by the chunk walk, so results are deterministic
// regardless of the row partition.
func SubtractScaled(work []float64, cols [][]float64, coeffs []float64) {
	SubtractScaledBudget(parallel.Live(), work, cols, coeffs)
}

// SubtractScaledBudget is SubtractScaled under an explicit worker budget.
func SubtractScaledBudget(bud parallel.Budget, work []float64, cols [][]float64, coeffs []float64) {
	if len(cols) != len(coeffs) {
		panic("linalg: SubtractScaled column/coefficient mismatch")
	}
	if len(cols) == 0 {
		return
	}
	if bud.Serial(len(work)) {
		subScaledRange(work, cols, coeffs, 0, len(work))
		return
	}
	bud.ForBlock(len(work), func(lo, hi int) {
		subScaledRange(work, cols, coeffs, lo, hi)
	})
}

// subScaledRange applies the multi-axpy over rows [lo, hi) chunk by
// chunk.
func subScaledRange(work []float64, cols [][]float64, coeffs []float64, lo, hi int) {
	for c0 := 0; c0 < len(cols); c0 += PanelCols {
		c1 := c0 + PanelCols
		if c1 > len(cols) {
			c1 = len(cols)
		}
		subChunkRange(work, cols[c0:c1], coeffs[c0:c1], lo, hi)
	}
}

// subChunkRange subtracts one chunk's combination from work over rows
// [lo, hi).
func subChunkRange(work []float64, cols [][]float64, f []float64, lo, hi int) {
	if len(cols) == PanelCols {
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		c4, c5, c6, c7 := cols[4], cols[5], cols[6], cols[7]
		f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
		f4, f5, f6, f7 := f[4], f[5], f[6], f[7]
		for r := lo; r < hi; r++ {
			work[r] -= f0*c0[r] + f1*c1[r] + f2*c2[r] + f3*c3[r] +
				f4*c4[r] + f5*c5[r] + f6*c6[r] + f7*c7[r]
		}
		return
	}
	for r := lo; r < hi; r++ {
		w := work[r]
		for j, col := range cols {
			w -= f[j] * col[r]
		}
		work[r] = w
	}
}
