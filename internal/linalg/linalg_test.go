package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func randVec(n int, r *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestDotMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 1000, 5000} {
		x, y := randVec(n, r), randVec(n, r)
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		if got := Dot(x, y); !approxEq(got, want, 1e-12) {
			t.Fatalf("n=%d: Dot = %g, want %g", n, got, want)
		}
	}
}

func TestDDot(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 3000
	x, y, d := randVec(n, r), randVec(n, r), randVec(n, r)
	var want float64
	for i := range x {
		want += x[i] * d[i] * y[i]
	}
	if got := DDot(x, d, y); !approxEq(got, want, 1e-12) {
		t.Fatalf("DDot = %g, want %g", got, want)
	}
}

func TestAxpyScaleNormFill(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 4000
	x, y := randVec(n, r), randVec(n, r)
	yc := append([]float64(nil), y...)
	Axpy(2.5, x, y)
	for i := range y {
		if !approxEq(y[i], yc[i]+2.5*x[i], 1e-12) {
			t.Fatalf("Axpy wrong at %d", i)
		}
	}
	Scale(0.5, y)
	for i := range y {
		if !approxEq(y[i], (yc[i]+2.5*x[i])*0.5, 1e-12) {
			t.Fatalf("Scale wrong at %d", i)
		}
	}
	Fill(y, 7)
	for i := range y {
		if y[i] != 7 {
			t.Fatalf("Fill wrong at %d", i)
		}
	}
	if got := Norm2(y); !approxEq(got, 7*math.Sqrt(float64(n)), 1e-12) {
		t.Fatalf("Norm2 = %g", got)
	}
}

func TestCopyVecAndConversions(t *testing.T) {
	src32 := []int32{3, -1, 7, 0}
	dst := make([]float64, 4)
	Int32ToFloat64(dst, src32)
	for i := range dst {
		if dst[i] != float64(src32[i]) {
			t.Fatal("Int32ToFloat64 wrong")
		}
	}
	d := []int32{5, 5, 5, 5}
	MinUpdateInt32(d, []int32{7, 2, 5, -1})
	want := []int32{5, 2, 5, -1}
	for i := range d {
		if d[i] != want[i] {
			t.Fatalf("MinUpdateInt32[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":  func() { Dot(make([]float64, 3), make([]float64, 4)) },
		"axpy": func() { Axpy(1, make([]float64, 3), make([]float64, 4)) },
		"copy": func() { CopyVec(make([]float64, 3), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(3, 2)
	m.Set(2, 1, 9)
	if m.At(2, 1) != 9 || m.Col(1)[2] != 9 {
		t.Fatal("Set/At/Col inconsistent")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) == 5 {
		t.Fatal("Clone aliases storage")
	}
	s := m.Slice(1)
	if s.Cols != 1 || s.Rows != 3 {
		t.Fatal("Slice wrong shape")
	}
	d := m.DropColumns([]int{1})
	if d.Cols != 1 || d.At(2, 0) != 9 {
		t.Fatal("DropColumns wrong")
	}
}

func naiveAtB(a, b *Dense) *Dense {
	c := NewDense(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for r := 0; r < a.Rows; r++ {
				s += a.At(r, i) * b.At(r, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestAtBMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, shape := range [][3]int{{10, 3, 4}, {5000, 6, 6}, {1, 2, 3}} {
		n, s, u := shape[0], shape[1], shape[2]
		a, b := NewDense(n, s), NewDense(n, u)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		want := naiveAtB(a, b)
		got := AtB(a, b)
		for i := range want.Data {
			if !approxEq(got.Data[i], want.Data[i], 1e-10) {
				t.Fatalf("shape %v: AtB[%d] = %g, want %g", shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulSmallMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, s, p := 3000, 5, 2
	a, y := NewDense(n, s), NewDense(s, p)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = r.NormFloat64()
	}
	got := MulSmall(a, y)
	for i := 0; i < n; i += 97 {
		for j := 0; j < p; j++ {
			var want float64
			for k := 0; k < s; k++ {
				want += a.At(i, k) * y.At(k, j)
			}
			if !approxEq(got.At(i, j), want, 1e-10) {
				t.Fatalf("MulSmall(%d,%d) = %g, want %g", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestLaplacianQuadraticFormIdentity(t *testing.T) {
	// yᵀLy = Σ_{⟨i,j⟩∈E} w(i,j)(y_i − y_j)² — the spectral identity §2.1
	// builds everything on.
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64, weighted bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(60)
		edges := make([]graph.Edge, 3*n)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: 1 + float64(r.Intn(5))}
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted, KeepAllComponents: true})
		if err != nil {
			return false
		}
		y := randVec(g.NumV, r)
		deg := g.WeightedDegrees()
		ly := make([]float64, g.NumV)
		LapMulVec(g, deg, y, ly)
		got := Dot(y, ly)
		var want float64
		for v := int32(0); int(v) < g.NumV; v++ {
			for k, u := range g.Neighbors(v) {
				if u <= v {
					continue
				}
				w := 1.0
				if weighted {
					w = g.NeighborWeights(v)[k]
				}
				d := y[v] - y[u]
				want += w * d * d
			}
		}
		return approxEq(got, want, 1e-9)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLaplacianAnnihilatesConstants(t *testing.T) {
	g := gen.Kron(8, 8, 3)
	deg := g.WeightedDegrees()
	ones := make([]float64, g.NumV)
	Fill(ones, 3.7)
	out := make([]float64, g.NumV)
	LapMulVec(g, deg, ones, out)
	for i, v := range out {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("L·const ≠ 0 at %d: %g", i, v)
		}
	}
}

func TestFusedMatchesExplicitLaplacian(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		var g *graph.CSR
		if weighted {
			g = gen.WithRandomWeights(gen.Grid2D(20, 20), 7, 5)
		} else {
			g = gen.Urand(9, 8, 6)
		}
		deg := g.WeightedDegrees()
		r := rand.New(rand.NewSource(8))
		s := NewDense(g.NumV, 4)
		for i := range s.Data {
			s.Data[i] = r.NormFloat64()
		}
		fused := LapMulDense(g, deg, s)
		explicit := NewExplicitLaplacian(g).MulDense(s)
		for i := range fused.Data {
			if !approxEq(fused.Data[i], explicit.Data[i], 1e-10) {
				t.Fatalf("weighted=%v: fused[%d] = %g, explicit %g", weighted, i, fused.Data[i], explicit.Data[i])
			}
		}
	}
}

func TestExplicitLaplacianStructure(t *testing.T) {
	g := gen.Path(5)
	lap := NewExplicitLaplacian(g)
	// Path Laplacian row 0: [1, -1, 0, 0, 0]; row 2: [0,-1,2,-1,0].
	x := []float64{1, 2, 3, 4, 5}
	p := make([]float64, 5)
	lap.MulVec(x, p)
	want := []float64{-1, 0, 0, 0, 1}
	for i := range want {
		if !approxEq(p[i], want[i], 1e-12) {
			t.Fatalf("L·x[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}

func TestWalkMulVecRowStochastic(t *testing.T) {
	// D⁻¹A applied to the all-ones vector returns all ones (row sums 1).
	g := gen.ChungLu(500, 8, 2.3, 4)
	deg := g.WeightedDegrees()
	ones := make([]float64, g.NumV)
	Fill(ones, 1)
	out := make([]float64, g.NumV)
	WalkMulVec(g, deg, ones, out)
	for i, v := range out {
		if !approxEq(v, 1, 1e-12) {
			t.Fatalf("walk row sum at %d = %g", i, v)
		}
	}
}

func TestColumnCenterZeroMeans(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := NewDense(2048, 5)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()*10 + 3
	}
	ColumnCenter(m)
	for j := 0; j < m.Cols; j++ {
		var sum float64
		for _, v := range m.Col(j) {
			sum += v
		}
		if math.Abs(sum/float64(m.Rows)) > 1e-10 {
			t.Fatalf("column %d mean %g after centering", j, sum/float64(m.Rows))
		}
	}
}

func TestDoubleCenterZeroRowAndColMeans(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := NewDense(300, 6)
	for i := range m.Data {
		m.Data[i] = math.Abs(r.NormFloat64()) * 5
	}
	DoubleCenter(m)
	for j := 0; j < m.Cols; j++ {
		var sum float64
		for _, v := range m.Col(j) {
			sum += v
		}
		if math.Abs(sum) > 1e-8 {
			t.Fatalf("column %d sum %g after double centering", j, sum)
		}
	}
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for j := 0; j < m.Cols; j++ {
			sum += m.At(i, j)
		}
		if math.Abs(sum) > 1e-8 {
			t.Fatalf("row %d sum %g after double centering", i, sum)
		}
	}
}

func TestSquareElements(t *testing.T) {
	m := NewDense(2, 2)
	copy(m.Data, []float64{-3, 2, 0, 5})
	SquareElements(m)
	want := []float64{9, 4, 0, 25}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatal("SquareElements wrong")
		}
	}
}

func TestTiledMatchesColumnwiseLS(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		var g *graph.CSR
		if weighted {
			g = gen.WithRandomWeights(gen.Kron(9, 8, 4), 9, 2)
		} else {
			g = gen.WebGraph(3000, 10, 3)
		}
		deg := g.WeightedDegrees()
		r := rand.New(rand.NewSource(6))
		for _, cols := range []int{0, 1, 7, 50} {
			s := NewDense(g.NumV, cols)
			for i := range s.Data {
				s.Data[i] = r.NormFloat64()
			}
			a := LapMulDense(g, deg, s)
			b := LapMulDenseTiled(g, deg, s)
			for i := range a.Data {
				if !approxEq(a.Data[i], b.Data[i], 1e-10) {
					t.Fatalf("weighted=%v cols=%d: tiled[%d] = %g, columnwise %g", weighted, cols, i, b.Data[i], a.Data[i])
				}
			}
		}
	}
}

func TestTiledPanicsOnMismatch(t *testing.T) {
	g := gen.Path(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LapMulDenseTiled(g, g.WeightedDegrees(), NewDense(4, 2))
}
