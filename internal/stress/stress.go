// Package stress implements layout by stress majorization (Gansner, Koren,
// North — SMACOF iterations), the optimization the paper's §4.5.4 proposes
// seeding with ParHDE instead of PHDE: "It is known that PHDE's layout
// serves as a good initialization for layout using stress majorization.
// We could consider replacing PHDE by ParHDE to see if this speeds up this
// optimization problem."
//
// Two stress models are provided: full stress over all vertex pairs
// (graph-theoretic distances by repeated BFS; quadratic, for small
// graphs), and sparse stress over edges plus per-vertex pivot terms
// (linear per iteration, the practical large-graph variant).
package stress

import (
	"fmt"
	"math"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/pivot"
)

// Options controls the majorization loop.
type Options struct {
	MaxIters int     // majorization sweeps (default 100)
	Tol      float64 // relative stress-decrease stopping threshold (default 1e-4)
	// Pivots is the number of pivot terms per vertex in the sparse model
	// (default 16; ignored by Full).
	Pivots int
	Seed   uint64
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.Pivots <= 0 {
		o.Pivots = 16
	}
	return o
}

// Result reports a majorization run.
type Result struct {
	Iterations int
	// Stress is Σ w_ij (‖x_i−x_j‖ − d_ij)² over the model's terms, after
	// the final iteration, normalized by the number of terms.
	Stress float64
	// History holds the stress after each iteration (for convergence
	// plots; HDE-seeded runs start far lower than random-seeded ones).
	History []float64
}

// Full runs full-stress majorization on g, refining the given layout in
// place. All-pairs graph distances are computed by n BFS traversals, so
// this is only sensible for small graphs (n ≲ 5000).
func Full(g *graph.CSR, l *core.Layout, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := g.NumV
	if n > 20000 {
		return Result{}, fmt.Errorf("stress: full model on %d vertices; use Sparse", n)
	}
	if l.NumVertices() != n {
		return Result{}, fmt.Errorf("stress: layout has %d vertices, graph %d", l.NumVertices(), n)
	}
	// All-pairs hop distances, row by row.
	dist := make([][]int32, n)
	runner := bfs.NewRunner(g, bfs.Options{})
	for v := 0; v < n; v++ {
		row := make([]int32, n)
		runner.Distances(int32(v), row)
		for _, d := range row {
			if d < 0 {
				return Result{}, fmt.Errorf("stress: graph is not connected")
			}
		}
		dist[v] = row
	}
	terms := func(i int, f func(j int32, d float64)) {
		for j := 0; j < n; j++ {
			if j != i {
				f(int32(j), float64(dist[i][j]))
			}
		}
	}
	return majorize(l, opt, terms), nil
}

// Sparse runs sparse-stress majorization: each vertex's terms are its
// graph neighbors (distance 1 or the edge weight) plus its distances to a
// set of shared pivot vertices chosen farthest-first — the pivot
// machinery ParHDE already has. The layout is refined in place.
func Sparse(g *graph.CSR, l *core.Layout, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := g.NumV
	if l.NumVertices() != n {
		return Result{}, fmt.Errorf("stress: layout has %d vertices, graph %d", l.NumVertices(), n)
	}
	p := opt.Pivots
	if p >= n {
		p = n - 1
	}
	b := linalg.NewDense(n, p)
	ps := pivot.Phase(g, b, int32(opt.Seed%uint64(n)), pivot.KCenters, bfs.Options{}, nil, nil)
	pivots := ps.Sources
	terms := func(i int, f func(j int32, d float64)) {
		for k, u := range g.Neighbors(int32(i)) {
			d := 1.0
			if g.Weighted() {
				// HDE weights are similarities; stress distances are their
				// inverse, clamped away from zero.
				if w := g.NeighborWeights(int32(i))[k]; w > 0 {
					d = 1 / w
				}
			}
			f(u, d)
		}
		for k, pv := range pivots {
			if pv == int32(i) {
				continue
			}
			d := b.At(i, k)
			if d > 0 {
				f(pv, d)
			}
		}
	}
	return majorize(l, opt, terms), nil
}

// majorize runs SMACOF sweeps: each vertex moves to the weighted average
// of the positions its terms prescribe, with weights w = 1/d². Vertices
// are updated Jacobi-style (from the previous iterate) in parallel, which
// preserves the majorization monotonicity in practice and parallelizes
// cleanly.
func majorize(l *core.Layout, opt Options, terms func(i int, f func(j int32, d float64))) Result {
	n := l.NumVertices()
	dims := l.Dims()
	optimalScale(l, terms)
	next := linalg.NewDense(n, dims)
	res := Result{}
	prevStress := math.Inf(1)
	for it := 0; it < opt.MaxIters; it++ {
		var stressSum float64
		var termCount int64
		stressSum = parallel.SumFloat64(n, func(i int) float64 {
			var s float64
			terms(i, func(j int32, d float64) {
				s += pairStress(l, i, int(j), d)
			})
			return s
		})
		termCount = parallel.SumInt64(n, func(i int) int64 {
			var c int64
			terms(i, func(int32, float64) { c++ })
			return c
		})
		if termCount > 0 {
			stressSum /= float64(termCount)
		}
		res.History = append(res.History, stressSum)
		res.Stress = stressSum
		res.Iterations = it
		if prevStress-stressSum <= opt.Tol*math.Abs(prevStress) && it > 0 {
			break
		}
		prevStress = stressSum

		parallel.For(n, func(i int) {
			var wsum float64
			acc := make([]float64, dims)
			terms(i, func(j int32, d float64) {
				if d <= 0 {
					return
				}
				w := 1 / (d * d)
				// distance between current positions
				var norm float64
				for k := 0; k < dims; k++ {
					diff := l.Coords.At(i, k) - l.Coords.At(int(j), k)
					norm += diff * diff
				}
				norm = math.Sqrt(norm)
				for k := 0; k < dims; k++ {
					xj := l.Coords.At(int(j), k)
					target := xj
					if norm > 1e-12 {
						target = xj + d*(l.Coords.At(i, k)-xj)/norm
					}
					acc[k] += w * target
				}
				wsum += w
			})
			if wsum > 0 {
				for k := 0; k < dims; k++ {
					next.Set(i, k, acc[k]/wsum)
				}
			} else {
				for k := 0; k < dims; k++ {
					next.Set(i, k, l.Coords.At(i, k))
				}
			}
		})
		l.Coords.Data, next.Data = next.Data, l.Coords.Data
	}
	return res
}

// optimalScale rescales the layout by the α minimizing
// Σ w (α‖δ_ij‖ − d_ij)², w = 1/d², so that seed layouts of arbitrary
// scale (HDE axes are unit vectors) start from their best-possible stress.
func optimalScale(l *core.Layout, terms func(i int, f func(j int32, d float64))) {
	n := l.NumVertices()
	num := parallel.SumFloat64(n, func(i int) float64 {
		var s float64
		terms(i, func(j int32, d float64) {
			if d > 0 {
				s += dist(l, i, int(j)) / d
			}
		})
		return s
	})
	den := parallel.SumFloat64(n, func(i int) float64 {
		var s float64
		terms(i, func(j int32, d float64) {
			if d > 0 {
				dd := dist(l, i, int(j))
				s += dd * dd / (d * d)
			}
		})
		return s
	})
	if den > 0 && num > 0 {
		alpha := num / den
		for k := 0; k < l.Dims(); k++ {
			linalg.Scale(alpha, l.Coords.Col(k))
		}
	}
}

func dist(l *core.Layout, i, j int) float64 {
	var s float64
	for k := 0; k < l.Dims(); k++ {
		d := l.Coords.At(i, k) - l.Coords.At(j, k)
		s += d * d
	}
	return math.Sqrt(s)
}

func pairStress(l *core.Layout, i, j int, d float64) float64 {
	var norm float64
	for k := 0; k < l.Dims(); k++ {
		diff := l.Coords.At(i, k) - l.Coords.At(j, k)
		norm += diff * diff
	}
	norm = math.Sqrt(norm)
	if d <= 0 {
		return 0
	}
	e := norm - d
	return e * e / (d * d)
}
