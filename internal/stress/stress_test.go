package stress

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestFullStressDecreasesMonotonically(t *testing.T) {
	g := gen.Grid2D(12, 12)
	l := core.RandomLayout(g.NumV, 2, 1)
	res, err := Full(g, l, Options{MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Fatalf("history %v", res.History)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*1.0001 {
			t.Fatalf("stress increased at %d: %.6g -> %.6g", i, res.History[i-1], res.History[i])
		}
	}
	if res.Stress >= res.History[0] {
		t.Fatal("no improvement over initial stress")
	}
}

func TestFullStressRecoversCycleGeometry(t *testing.T) {
	// A cycle's stress-optimal drawing is (near) a circle: all edge lengths
	// equal. Check the edge-length coefficient of variation is small.
	g := gen.Cycle(40)
	l := core.RandomLayout(g.NumV, 2, 3)
	if _, err := Full(g, l, Options{MaxIters: 300, Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	q := core.Evaluate(g, l)
	if q.EdgeLengthCV > 0.25 {
		t.Fatalf("cycle edge-length CV %.3f after full stress", q.EdgeLengthCV)
	}
}

func TestHDESeedConvergesFasterThanRandom(t *testing.T) {
	// §4.5.4: an HDE layout is a good initialization for stress
	// majorization. After the same few iterations the HDE-seeded run must
	// be at lower stress than the random-seeded run.
	g := gen.PlateWithHoles(20, 20)
	iters := Options{MaxIters: 5, Tol: 0}

	hdeLay, _, err := core.ParHDE(g, core.Options{Subspace: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hdeLay.NormalizeUnit()
	resHDE, err := Full(g, hdeLay, iters)
	if err != nil {
		t.Fatal(err)
	}
	rndLay := core.RandomLayout(g.NumV, 2, 2)
	resRnd, err := Full(g, rndLay, iters)
	if err != nil {
		t.Fatal(err)
	}
	if resHDE.History[0] >= resRnd.History[0] {
		t.Fatalf("initial stress: HDE %.4g not below random %.4g", resHDE.History[0], resRnd.History[0])
	}
	if resHDE.Stress >= resRnd.Stress {
		t.Fatalf("after %d iters: HDE-seeded %.4g not below random-seeded %.4g",
			iters.MaxIters, resHDE.Stress, resRnd.Stress)
	}
}

func TestSparseStressImprovesLayout(t *testing.T) {
	g := gen.PlateWithHoles(30, 30)
	l := core.RandomLayout(g.NumV, 2, 5)
	res, err := Sparse(g, l, Options{MaxIters: 40, Pivots: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stress >= res.History[0] {
		t.Fatal("sparse stress did not decrease")
	}
	// The result must be a sane layout: better Hall ratio than random.
	q := core.Evaluate(g, l)
	r := core.Evaluate(g, core.RandomLayout(g.NumV, 2, 6))
	if q.HallRatio >= r.HallRatio {
		t.Fatalf("sparse stress quality %.4g not better than random %.4g", q.HallRatio, r.HallRatio)
	}
}

func TestFullRejectsMisuse(t *testing.T) {
	big := gen.Grid2D(200, 200)
	if _, err := Full(big, core.RandomLayout(big.NumV, 2, 1), Options{}); err == nil {
		t.Fatal("full stress accepted a 40k-vertex graph")
	}
	g := gen.Grid2D(5, 5)
	if _, err := Full(g, core.RandomLayout(7, 2, 1), Options{}); err == nil {
		t.Fatal("layout size mismatch accepted")
	}
	if _, err := Sparse(g, core.RandomLayout(7, 2, 1), Options{}); err == nil {
		t.Fatal("sparse layout size mismatch accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIters != 100 || o.Tol != 1e-4 || o.Pivots != 16 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestPairStressZeroDistanceGuard(t *testing.T) {
	l := core.RandomLayout(4, 2, 1)
	if s := pairStress(l, 0, 1, 0); s != 0 {
		t.Fatalf("pairStress with d=0 returned %g", s)
	}
	if s := pairStress(l, 0, 1, 1); math.IsNaN(s) || s < 0 {
		t.Fatalf("pairStress = %g", s)
	}
}
