package coarsen

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBuildShrinksToMinVertices(t *testing.T) {
	g := gen.Grid2D(60, 60)
	h, err := Build(g, Options{MinVertices: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) < 3 {
		t.Fatalf("only %d levels for a 3600-vertex grid", len(h.Levels))
	}
	if h.Levels[0].G != g {
		t.Fatal("level 0 must be the input graph")
	}
	for i := 1; i < len(h.Levels); i++ {
		prev, cur := h.Levels[i-1].G, h.Levels[i].G
		if cur.NumV >= prev.NumV {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev.NumV, cur.NumV)
		}
	}
	if c := h.Coarsest(); c.NumV > 2*100 {
		t.Fatalf("coarsest level %d vertices, expected near %d", c.NumV, 100)
	}
}

func TestMatchingIsValid(t *testing.T) {
	g := gen.Kron(9, 8, 3)
	match := heavyEdgeMatching(g, 7)
	for v := int32(0); int(v) < g.NumV; v++ {
		u := match[v]
		if u < 0 || int(u) >= g.NumV {
			t.Fatalf("match[%d] = %d out of range", v, u)
		}
		if u != v {
			if match[u] != v {
				t.Fatalf("matching not symmetric: match[%d]=%d but match[%d]=%d", v, u, u, match[u])
			}
			if !g.HasEdge(v, u) {
				t.Fatalf("matched pair {%d,%d} not an edge", v, u)
			}
		}
	}
}

func TestContractionPreservesStructure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rows := 4 + int(uint64(seed)%20)
		g := gen.Grid2D(rows, rows)
		h, err := Build(g, Options{MinVertices: 4, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for i, lvl := range h.Levels {
			if err := lvl.G.Validate(); err != nil {
				return false
			}
			// Connectivity is preserved by contraction.
			if _, count := graph.Components(lvl.G); count != 1 {
				return false
			}
			if i+1 < len(h.Levels) {
				// Every fine vertex maps into the coarse vertex range, and
				// every coarse edge comes from some fine edge crossing
				// the partition.
				coarse := h.Levels[i+1].G
				for _, c := range lvl.Map {
					if c < 0 || int(c) >= coarse.NumV {
						return false
					}
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoarseEdgesAggregateWeights(t *testing.T) {
	// A 4-cycle with one heavy edge: matching collapses two pairs; the two
	// coarse vertices must be connected with total inter-pair weight.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 10}, // heavy: matched first
		{U: 1, V: 2, W: 1},
		{U: 2, V: 3, W: 10},
		{U: 3, V: 0, W: 1},
	}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(g, Options{MinVertices: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Levels[1].G
	if c.NumV != 2 || c.NumEdges() != 1 {
		t.Fatalf("coarse graph n=%d m=%d", c.NumV, c.NumEdges())
	}
	// The inter-pair weight must be the sum of the two light edges (2) —
	// heavy edges are inside the matched pairs.
	if w := c.NeighborWeights(0)[0]; w != 2 {
		t.Fatalf("coarse weight %g, want 2", w)
	}
}

func TestStarResistsCollapse(t *testing.T) {
	// A star only matches one leaf per round; MinShrink must stop the
	// hierarchy rather than looping.
	g := gen.Star(1000)
	h, err := Build(g, Options{MinVertices: 4, Seed: 2, MaxLevels: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) >= 100 {
		t.Fatalf("hierarchy did not terminate early: %d levels", len(h.Levels))
	}
}

func TestProlong(t *testing.T) {
	g := gen.Grid2D(8, 8)
	h, err := Build(g, Options{MinVertices: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lvl := h.Levels[0]
	coarseN := h.Levels[1].G.NumV
	vals := make([]float64, coarseN)
	for i := range vals {
		vals[i] = float64(i) * 2
	}
	fine := Prolong(lvl, vals)
	if len(fine) != g.NumV {
		t.Fatalf("prolonged length %d", len(fine))
	}
	for v, x := range fine {
		if x != vals[lvl.Map[v]] {
			t.Fatalf("prolong wrong at %d", v)
		}
	}
}

func TestBuildEmptyGraphErrors(t *testing.T) {
	g := &graph.CSR{NumV: 0, Offsets: []int64{0}}
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}
