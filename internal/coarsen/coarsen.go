// Package coarsen implements the multilevel paradigm the paper names as
// its main future-work direction ("we will adapt ParHDE to be compatible
// with the multilevel approach", §5) and which the prior work [27, 33]
// already used: heavy-edge-matching graph coarsening, the coarse-to-fine
// prolongation of vertex coordinates, and the level hierarchy that a
// multilevel layout driver walks.
package coarsen

import (
	"fmt"

	"repro/internal/graph"
)

// Level is one rung of a coarsening hierarchy.
type Level struct {
	G *graph.CSR
	// Map[v] is the coarse vertex that fine vertex v collapsed into
	// (indices into the next-coarser level's graph). nil for the coarsest
	// level.
	Map []int32
}

// Options controls hierarchy construction.
type Options struct {
	// MinVertices stops coarsening once a level is at most this size
	// (default 64).
	MinVertices int
	// MaxLevels bounds the hierarchy depth (default 30).
	MaxLevels int
	// MinShrink aborts when a level fails to shrink by at least this
	// factor (default 0.9: a level must lose ≥10% of vertices), which
	// guards against matching-resistant graphs (stars) looping forever.
	MinShrink float64
	// Seed randomizes the matching visit order.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MinVertices <= 1 {
		o.MinVertices = 64
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 30
	}
	if o.MinShrink <= 0 || o.MinShrink >= 1 {
		o.MinShrink = 0.9
	}
	return o
}

// Hierarchy is a sequence of levels, finest first.
type Hierarchy struct {
	Levels []Level
}

// Coarsest returns the smallest graph in the hierarchy.
func (h *Hierarchy) Coarsest() *graph.CSR {
	return h.Levels[len(h.Levels)-1].G
}

// Build constructs a coarsening hierarchy for g by repeated heavy-edge
// matching: unmatched vertices (visited in a pseudo-random order) pair
// with their heaviest unmatched neighbor; matched pairs collapse into one
// coarse vertex and parallel coarse edges merge by weight addition, so
// coarse edge weights approximate how many fine edges they stand for.
// The input graph is always Level 0, unmodified.
func Build(g *graph.CSR, opt Options) (*Hierarchy, error) {
	opt = opt.withDefaults()
	if g.NumV == 0 {
		return nil, fmt.Errorf("coarsen: empty graph")
	}
	h := &Hierarchy{}
	cur := g
	for len(h.Levels) < opt.MaxLevels && cur.NumV > opt.MinVertices {
		match := heavyEdgeMatching(cur, opt.Seed+uint64(len(h.Levels)))
		coarse, cmap := contract(cur, match)
		if float64(coarse.NumV) > opt.MinShrink*float64(cur.NumV) {
			// Not shrinking: record the level unmapped and stop.
			break
		}
		h.Levels = append(h.Levels, Level{G: cur, Map: cmap})
		cur = coarse
	}
	h.Levels = append(h.Levels, Level{G: cur})
	return h, nil
}

// heavyEdgeMatching computes a maximal matching preferring heavy edges.
// match[v] = partner, or v itself for unmatched vertices.
func heavyEdgeMatching(g *graph.CSR, seed uint64) []int32 {
	n := g.NumV
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := graph.RandomPermutation(n, seed)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		bestW := -1.0
		best := int32(-1)
		adj := g.Neighbors(v)
		for k, u := range adj {
			if match[u] >= 0 {
				continue
			}
			w := 1.0
			if g.Weighted() {
				w = g.NeighborWeights(v)[k]
			}
			if w > bestW {
				bestW, best = w, u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	return match
}

// contract collapses matched pairs into coarse vertices. Coarse ids are
// assigned in fine-id order (the lower endpoint of each pair claims the
// id), preserving the locality of the fine ordering as far as possible —
// the property §4.4 shows matters for SpMM.
func contract(g *graph.CSR, match []int32) (*graph.CSR, []int32) {
	n := g.NumV
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var nc int32
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		u := match[v]
		cmap[v] = nc
		if u >= 0 && int(u) != v {
			cmap[u] = nc
		}
		nc++
	}
	edges := make([]graph.Edge, 0, len(g.Adj)/2)
	for v := int32(0); int(v) < n; v++ {
		for k, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			cu, cv := cmap[u], cmap[v]
			if cu == cv {
				continue // internal edge disappears
			}
			w := 1.0
			if g.Weighted() {
				w = g.NeighborWeights(v)[k]
			}
			edges = append(edges, graph.Edge{U: cv, V: cu, W: w})
		}
	}
	coarse, err := fromEdgesSummed(int(nc), edges)
	if err != nil {
		panic("coarsen: contract produced invalid graph: " + err.Error())
	}
	return coarse, cmap
}

// fromEdgesSummed builds a weighted CSR where parallel edges merge by
// adding weights (unlike graph.FromEdges's max-merge, addition is the
// right semantics for contraction: a coarse edge represents the sum of
// the fine similarities it bundles).
func fromEdgesSummed(n int, edges []graph.Edge) (*graph.CSR, error) {
	type key struct{ u, v int32 }
	agg := make(map[key]float64, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		agg[key{u, v}] += e.W
	}
	merged := make([]graph.Edge, 0, len(agg))
	for k, w := range agg {
		merged = append(merged, graph.Edge{U: k.u, V: k.v, W: w})
	}
	return graph.FromEdges(n, merged, graph.BuildOptions{Weighted: true, KeepAllComponents: true})
}

// Prolong lifts coarse vertex values to the fine level: fine vertex v
// inherits the value of Map[v]. Used to carry coordinates down the
// hierarchy.
func Prolong(level Level, coarseVals []float64) []float64 {
	out := make([]float64, level.G.NumV)
	for v := range out {
		out[v] = coarseVals[level.Map[v]]
	}
	return out
}
