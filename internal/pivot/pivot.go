// Package pivot implements the BFS phase of ParHDE: source (pivot)
// selection and the s traversals that build the distance matrix B. Two
// strategies from the paper are provided. The default is the
// farthest-first 2-approximation to k-centers (Gonzalez), where each BFS
// is internally parallel and the next source is the vertex maximizing the
// distance to all previous sources. The alternative (§4.4, Table 6) picks
// pivots uniformly at random without repetition and runs whole BFSes
// concurrently — lower overhead for small or high-diameter graphs and when
// s exceeds the core count.
package pivot

import (
	"sync"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Strategy selects the pivot-selection algorithm.
type Strategy int

const (
	// KCenters is the farthest-first strategy of Algorithm 3 (default).
	KCenters Strategy = iota
	// Random picks pivots uniformly at random and runs serial BFSes
	// concurrently, one per worker.
	Random
	// RandomMS picks pivots uniformly at random and runs them through the
	// bit-parallel multi-source BFS (64 searches share each adjacency
	// scan) — the strongest engine when s is large relative to cores.
	RandomMS
)

func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case RandomMS:
		return "random-msbfs"
	default:
		return "k-centers"
	}
}

// PhaseStats decomposes BFS-phase time the way Figure 5 (middle) does:
// pure traversal versus "other" overhead (source selection, the min-update
// reduction, and the int→float widening of B's columns).
type PhaseStats struct {
	Sources []int32
	// Traversal holds per-traversal statistics: one entry per BFS under
	// KCenters, one per 64-source batch under RandomMS (direction-step
	// counts included either way; plain Random records none).
	Traversal    []bfs.Stats
	ScannedEdges int64
}

// Scratch bundles the reusable buffers of the k-centers BFS phase: the
// traversal scratch plus the per-pivot hop vector and the running
// minimum-distance vector that drives farthest-first source selection. A
// pooled workspace owns one and hands it to PhaseScratch so repeated
// layouts on same-shaped graphs re-pay no BFS-phase allocations.
type Scratch struct {
	// BFS is the frontier/queue scratch shared by all s traversals.
	BFS *bfs.Scratch
	// Dist receives each traversal's hop distances (length ≥ n).
	Dist []int32
	// DMin tracks min distance to all previous sources (length ≥ n).
	DMin []int32
	// Multi-source buffers (lazily sized by the RandomMS strategy): the
	// pivot permutation and one 64×n distance-row arena per batch.
	perm    []int32
	msArena []int32
	msRows  [][]int32
	// Per-tile argmax arenas for the fused widen/min/argmax reduction,
	// sized by linalg.ReduceBlocks(n) — a function of n only, so the
	// arenas can never be desynchronized by a worker-count change.
	amIdx  []int
	amVals []int32
}

// ensureMS sizes the RandomMS-only buffers: the permutation vector and
// a 64-row distance arena covering one MSBFS batch.
func (sc *Scratch) ensureMS(n int) {
	if cap(sc.perm) < n {
		sc.perm = make([]int32, n)
	}
	sc.perm = sc.perm[:n]
	if cap(sc.msArena) < 64*n {
		sc.msArena = make([]int32, 64*n)
	}
	sc.msArena = sc.msArena[:64*n]
	if sc.msRows == nil {
		sc.msRows = make([][]int32, 64)
	}
	for i := range sc.msRows {
		sc.msRows[i] = sc.msArena[i*n : (i+1)*n]
	}
}

// NewScratch returns BFS-phase scratch for n-vertex graphs.
func NewScratch(n int) *Scratch {
	sc := &Scratch{}
	sc.Ensure(n)
	return sc
}

// Ensure grows the scratch to cover n vertices; sufficient buffers are
// kept, so same-shape reuse touches no allocator.
func (sc *Scratch) Ensure(n int) {
	if sc.BFS == nil {
		sc.BFS = bfs.NewScratch(n, parallel.Workers())
	}
	if cap(sc.Dist) < n {
		sc.Dist = make([]int32, n)
		sc.DMin = make([]int32, n)
	}
	sc.Dist, sc.DMin = sc.Dist[:n], sc.DMin[:n]
	if tiles := linalg.ReduceBlocks(n); cap(sc.amIdx) < tiles {
		sc.amIdx = make([]int, tiles)
		sc.amVals = make([]int32, tiles)
	}
}

// ArgmaxArenas exposes the per-tile argmax arenas (sized by Ensure) for
// callers that run the fused widen/min/argmax reduction themselves — the
// coupled core path, which owns the pivot loop but reuses this scratch.
func (sc *Scratch) ArgmaxArenas() ([]int, []int32) { return sc.amIdx, sc.amVals }

// Phase runs the complete BFS phase: s traversals from pivots chosen by
// the given strategy, writing hop distances into the n×s column-major
// matrix b. Unreachable is impossible by precondition (connected graph).
// start is the randomly-chosen first vertex (Algorithm 3, line 4); timers
// for traversal vs. other work are accumulated via the optional hooks.
func Phase(g *graph.CSR, b *linalg.Dense, start int32, strat Strategy, opt bfs.Options, onTraversal, onOther func(f func())) PhaseStats {
	return PhaseScratch(g, b, start, strat, opt, nil, onTraversal, onOther)
}

// PhaseScratch is Phase running over sc's pooled buffers (nil allocates
// fresh ones, equivalent to Phase). The k-centers and multi-source random
// strategies consume the scratch — plain Random keeps its per-worker
// private distance vectors — and results are bit-identical either way.
func PhaseScratch(g *graph.CSR, b *linalg.Dense, start int32, strat Strategy, opt bfs.Options, sc *Scratch, onTraversal, onOther func(f func())) PhaseStats {
	return PhaseBudget(parallel.SnapshotBudget(), g, b, start, strat, opt, sc, onTraversal, onOther)
}

// PhaseBudget is PhaseScratch running under an explicit worker budget.
// Live budgets are snapshotted once on entry, so every traversal, fill,
// and reduction of the phase shares one worker count — a GOMAXPROCS
// change mid-phase can no longer re-partition running kernels.
func PhaseBudget(bud parallel.Budget, g *graph.CSR, b *linalg.Dense, start int32, strat Strategy, opt bfs.Options, sc *Scratch, onTraversal, onOther func(f func())) PhaseStats {
	if !bud.Fixed() {
		bud = parallel.SnapshotBudget()
	}
	if onTraversal == nil {
		onTraversal = func(f func()) { f() }
	}
	if onOther == nil {
		onOther = func(f func()) { f() }
	}
	switch strat {
	case Random:
		return randomPhase(bud, g, b, start, onTraversal, onOther)
	case RandomMS:
		return randomMSPhase(bud, g, b, start, opt, sc, onTraversal, onOther)
	default:
		return kCentersPhase(bud, g, b, start, opt, sc, onTraversal, onOther)
	}
}

func kCentersPhase(bud parallel.Budget, g *graph.CSR, b *linalg.Dense, start int32, opt bfs.Options, sc *Scratch, onTraversal, onOther func(f func())) PhaseStats {
	n := g.NumV
	s := b.Cols
	if sc == nil {
		sc = NewScratch(n)
	} else {
		sc.Ensure(n)
	}
	runner := bfs.NewRunnerBudget(g, opt, sc.BFS, bud)
	dist, dmin := sc.Dist, sc.DMin
	if bud.Serial(n) {
		for i := range dmin {
			dmin[i] = int32(1) << 30
		}
	} else {
		bud.For(n, func(i int) { dmin[i] = int32(1) << 30 })
	}

	st := PhaseStats{
		Sources:   make([]int32, 0, s),
		Traversal: make([]bfs.Stats, 0, s),
	}
	src := start
	// The timing hooks' closures are hoisted out of the pivot loop (and
	// read their loop state through captured variables) so the
	// steady-state loop body allocates nothing.
	var i int
	var ts bfs.Stats
	traverse := func() { ts = runner.Distances(src, dist) }
	other := func() {
		// One fused pass: widen the distances into the matrix column,
		// d(j) ← min(d(j), b_i(j)), and pick the next source as the
		// farthest vertex from all previous sources (lines 13-15 of
		// Algorithm 1).
		src = int32(linalg.WidenMinArgmaxBudget(bud, b.Col(i), dmin, dist, sc.amIdx, sc.amVals))
	}
	for i = 0; i < s; i++ {
		st.Sources = append(st.Sources, src)
		onTraversal(traverse)
		st.Traversal = append(st.Traversal, ts)
		st.ScannedEdges += ts.ScannedEdges
		onOther(other)
	}
	return st
}

// randomPhase runs serial BFSes concurrently: pivot i is processed by
// whichever worker claims it, each traversal single-threaded. With s ≥
// workers this keeps every core busy without per-level barriers.
func randomPhase(bud parallel.Budget, g *graph.CSR, b *linalg.Dense, start int32, onTraversal, onOther func(f func())) PhaseStats {
	n := g.NumV
	s := b.Cols
	st := PhaseStats{Sources: make([]int32, s)}
	onOther(func() {
		// Uniform pivots without repetition, seeded by the start vertex so
		// runs are reproducible.
		perm := graph.RandomPermutation(n, uint64(start)*0x9e3779b97f4a7c15+1)
		st.Sources[0] = start
		k := 1
		for _, v := range perm {
			if k == s {
				break
			}
			if v != start {
				st.Sources[k] = v
				k++
			}
		}
	})
	onTraversal(func() {
		workers := bud.Workers()
		var next int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		var scanned int64
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				dist := make([]int32, n)
				var local int64
				for {
					mu.Lock()
					i := int(next)
					next++
					mu.Unlock()
					if i >= s {
						break
					}
					bfs.Serial(g, st.Sources[i], dist)
					col := b.Col(i)
					for j := 0; j < n; j++ {
						col[j] = float64(dist[j])
					}
					local += int64(len(g.Adj))
				}
				mu.Lock()
				scanned += local
				mu.Unlock()
			}()
		}
		wg.Wait()
		st.ScannedEdges = scanned
	})
	return st
}

// randomMSPhase draws random pivots like randomPhase but traverses them in
// batches of 64 with the bit-parallel multi-source BFS, sharing adjacency
// scans across all searches in a batch. With a scratch the batch distance
// rows, the pivot permutation, and the traversal masks all come from
// pooled buffers, so the steady-state phase performs no O(n) allocations.
func randomMSPhase(bud parallel.Budget, g *graph.CSR, b *linalg.Dense, start int32, opt bfs.Options, sc *Scratch, onTraversal, onOther func(f func())) PhaseStats {
	n := g.NumV
	s := b.Cols
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensureMS(n)
	if sc.BFS == nil {
		sc.BFS = bfs.NewScratch(n, bud.Workers())
	}
	msOpt := opt.MS()
	st := PhaseStats{
		Sources:   make([]int32, s),
		Traversal: make([]bfs.Stats, 0, (s+63)/64),
	}
	onOther(func() {
		perm := graph.RandomPermutationInto(sc.perm, uint64(start)*0x9e3779b97f4a7c15+1)
		st.Sources[0] = start
		k := 1
		for _, v := range perm {
			if k == s {
				break
			}
			if v != start {
				st.Sources[k] = v
				k++
			}
		}
	})
	// Hoisted batch closures: the loop body reads batch/hi through the
	// captured variables, so the steady-state loop allocates nothing.
	var batch, hi int
	traverse := func() {
		ms := bfs.MSBFSOpts(bud, g, st.Sources[batch:hi], sc.msRows[:hi-batch], sc.BFS, msOpt)
		st.Traversal = append(st.Traversal, ms)
		st.ScannedEdges += ms.ScannedEdges
	}
	widen := func() {
		for i := batch; i < hi; i++ {
			linalg.Int32ToFloat64Budget(bud, b.Col(i), sc.msRows[i-batch])
		}
	}
	for batch = 0; batch < s; batch += 64 {
		hi = batch + 64
		if hi > s {
			hi = s
		}
		onTraversal(traverse)
		onOther(widen)
	}
	return st
}
