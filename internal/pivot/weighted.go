package pivot

import (
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/sssp"
)

// PhaseWeighted is the weighted-graph BFS phase of §3.3: Δ-stepping SSSP
// replaces each parallel BFS, with the same farthest-first source
// selection over real-valued distances. delta ≤ 0 selects
// sssp.SuggestDelta's heuristic.
func PhaseWeighted(g *graph.CSR, b *linalg.Dense, start int32, delta float64, onTraversal, onOther func(f func())) PhaseStats {
	if onTraversal == nil {
		onTraversal = func(f func()) { f() }
	}
	if onOther == nil {
		onOther = func(f func()) { f() }
	}
	if delta <= 0 {
		delta = sssp.SuggestDelta(g)
	}
	n := g.NumV
	s := b.Cols
	dist := make([]float64, n)
	dmin := make([]float64, n)
	parallel.For(n, func(i int) { dmin[i] = sssp.Inf })

	st := PhaseStats{Sources: make([]int32, 0, s)}
	src := start
	for i := 0; i < s; i++ {
		st.Sources = append(st.Sources, src)
		onTraversal(func() {
			ds := sssp.DeltaStepping(g, src, delta, dist)
			st.ScannedEdges += ds.EdgesScanned
		})
		onOther(func() {
			linalg.CopyVec(b.Col(i), dist)
			parallel.ForBlock(n, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					if dist[j] < dmin[j] {
						dmin[j] = dist[j]
					}
				}
			})
			src = int32(parallel.MaxIndexFloat64(n, func(j int) float64 { return dmin[j] }))
		})
	}
	return st
}
