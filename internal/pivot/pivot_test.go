package pivot

import (
	"math"
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/sssp"
)

func TestKCentersPhaseColumnsAreBFSDistances(t *testing.T) {
	g := gen.Grid2D(20, 20)
	s := 5
	b := linalg.NewDense(g.NumV, s)
	ps := Phase(g, b, 0, KCenters, bfs.Options{}, nil, nil)
	if len(ps.Sources) != s {
		t.Fatalf("%d sources, want %d", len(ps.Sources), s)
	}
	want := make([]int32, g.NumV)
	for i, src := range ps.Sources {
		bfs.Serial(g, src, want)
		col := b.Col(i)
		for j := range want {
			if col[j] != float64(want[j]) {
				t.Fatalf("column %d (src %d) wrong at %d: %g vs %d", i, src, j, col[j], want[j])
			}
		}
	}
}

func TestKCentersFarthestFirstProperty(t *testing.T) {
	// Each subsequent source must maximize the min-distance to all
	// previous sources (Gonzalez's invariant).
	g := gen.PlateWithHoles(25, 25)
	s := 4
	b := linalg.NewDense(g.NumV, s)
	ps := Phase(g, b, 3, KCenters, bfs.Options{}, nil, nil)
	for i := 1; i < s; i++ {
		chosen := ps.Sources[i]
		var chosenMin float64 = math.Inf(1)
		best := 0.0
		for v := 0; v < g.NumV; v++ {
			dmin := math.Inf(1)
			for j := 0; j < i; j++ {
				if d := b.At(v, j); d < dmin {
					dmin = d
				}
			}
			if dmin > best {
				best = dmin
			}
			if int32(v) == chosen {
				chosenMin = dmin
			}
		}
		if chosenMin != best {
			t.Fatalf("source %d has min-dist %g, farthest available %g", i, chosenMin, best)
		}
	}
}

func TestKCentersSourcesOnPath(t *testing.T) {
	// On a path started at vertex 0, the second pivot must be the far end.
	g := gen.Path(100)
	b := linalg.NewDense(g.NumV, 2)
	ps := Phase(g, b, 0, KCenters, bfs.Options{}, nil, nil)
	if ps.Sources[1] != 99 {
		t.Fatalf("second pivot %d, want 99", ps.Sources[1])
	}
}

func TestRandomPhaseDistancesCorrect(t *testing.T) {
	g := gen.Kron(9, 8, 4)
	s := 6
	b := linalg.NewDense(g.NumV, s)
	ps := Phase(g, b, 7, Random, bfs.Options{}, nil, nil)
	if len(ps.Sources) != s {
		t.Fatalf("%d sources", len(ps.Sources))
	}
	if ps.Sources[0] != 7 {
		t.Fatalf("start vertex %d, want 7", ps.Sources[0])
	}
	seen := map[int32]bool{}
	for _, src := range ps.Sources {
		if seen[src] {
			t.Fatalf("repeated pivot %d", src)
		}
		seen[src] = true
	}
	want := make([]int32, g.NumV)
	for i, src := range ps.Sources {
		bfs.Serial(g, src, want)
		col := b.Col(i)
		for j := range want {
			if col[j] != float64(want[j]) {
				t.Fatalf("random phase column %d wrong at %d", i, j)
			}
		}
	}
}

func TestPhaseTimerHooksInvoked(t *testing.T) {
	g := gen.Grid2D(10, 10)
	b := linalg.NewDense(g.NumV, 3)
	var trav, other int
	Phase(g, b, 0, KCenters, bfs.Options{},
		func(f func()) { trav++; f() },
		func(f func()) { other++; f() })
	if trav != 3 || other != 3 {
		t.Fatalf("hooks: traversal %d, other %d, want 3 each", trav, other)
	}
}

func TestPhaseWeightedMatchesDijkstra(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(15, 15), 9, 5)
	s := 4
	b := linalg.NewDense(g.NumV, s)
	ps := PhaseWeighted(g, b, 2, 0, nil, nil)
	want := make([]float64, g.NumV)
	for i, src := range ps.Sources {
		sssp.Dijkstra(g, src, want)
		col := b.Col(i)
		for j := range want {
			if math.Abs(col[j]-want[j]) > 1e-9 {
				t.Fatalf("weighted column %d wrong at %d: %g vs %g", i, j, col[j], want[j])
			}
		}
	}
	// Farthest-first invariant holds for real distances too.
	second := ps.Sources[1]
	dmin0 := b.Col(0)
	best := 0.0
	for _, d := range dmin0 {
		if d > best {
			best = d
		}
	}
	if dmin0[second] != best {
		t.Fatalf("weighted second pivot at distance %g, farthest %g", dmin0[second], best)
	}
}

func TestStrategyString(t *testing.T) {
	if KCenters.String() != "k-centers" || Random.String() != "random" {
		t.Fatal("strategy names wrong")
	}
}

func TestRandomPhaseMoreSourcesThanVertices(t *testing.T) {
	g := gen.Complete(5)
	b := linalg.NewDense(g.NumV, 4)
	ps := Phase(g, b, 1, Random, bfs.Options{}, nil, nil)
	if len(ps.Sources) != 4 {
		t.Fatalf("%d sources", len(ps.Sources))
	}
}

var _ = graph.CSR{} // keep the import for fixture helpers extended later

func TestRandomMSPhaseDistancesCorrect(t *testing.T) {
	g := gen.Kron(9, 8, 4)
	s := 70 // exercises two MSBFS batches
	b := linalg.NewDense(g.NumV, s)
	ps := Phase(g, b, 3, RandomMS, bfs.Options{}, nil, nil)
	if len(ps.Sources) != s || ps.Sources[0] != 3 {
		t.Fatalf("sources %v", ps.Sources[:3])
	}
	want := make([]int32, g.NumV)
	for _, i := range []int{0, 33, 69} {
		bfs.Serial(g, ps.Sources[i], want)
		col := b.Col(i)
		for j := range want {
			if col[j] != float64(want[j]) {
				t.Fatalf("msbfs phase column %d wrong at %d: %g vs %d", i, j, col[j], want[j])
			}
		}
	}
	if RandomMS.String() != "random-msbfs" {
		t.Fatal("strategy name")
	}
	// The phase records one Stats entry per 64-source batch (70 pivots →
	// 2 batches) for the observability rollups.
	if len(ps.Traversal) != 2 {
		t.Fatalf("traversal stats entries = %d, want 2", len(ps.Traversal))
	}
	var steps int
	for _, st := range ps.Traversal {
		steps += st.TopDownSteps + st.BottomUpSteps
		if st.ScannedEdges <= 0 {
			t.Fatalf("batch recorded no scanned edges: %+v", st)
		}
	}
	if steps <= 0 {
		t.Fatal("no direction steps recorded")
	}
}

func TestRandomMSForceTopDownMatchesDefault(t *testing.T) {
	// bfs.Options flow through to the multi-source engine: ForceTopDown
	// must keep columns bitwise identical while running zero bottom-up
	// steps — the per-phase ablation switch.
	g := gen.Kron(9, 8, 6)
	s := 40
	b1 := linalg.NewDense(g.NumV, s)
	b2 := linalg.NewDense(g.NumV, s)
	p1 := Phase(g, b1, 5, RandomMS, bfs.Options{}, nil, nil)
	p2 := Phase(g, b2, 5, RandomMS, bfs.Options{ForceTopDown: true}, nil, nil)
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatal("ForceTopDown changed the distance matrix")
		}
	}
	for _, st := range p2.Traversal {
		if st.BottomUpSteps != 0 {
			t.Fatalf("ForceTopDown phase ran bottom-up: %+v", st)
		}
	}
	var bu int
	for _, st := range p1.Traversal {
		bu += st.BottomUpSteps
	}
	if bu == 0 {
		t.Fatal("default phase never switched bottom-up on kron")
	}
}

func TestRandomMSMatchesRandomPhase(t *testing.T) {
	// Same seed → same pivot set; distance columns must agree between the
	// serial-concurrent and bit-parallel engines.
	g := gen.Grid2D(20, 20)
	s := 10
	b1 := linalg.NewDense(g.NumV, s)
	b2 := linalg.NewDense(g.NumV, s)
	p1 := Phase(g, b1, 7, Random, bfs.Options{}, nil, nil)
	p2 := Phase(g, b2, 7, RandomMS, bfs.Options{}, nil, nil)
	for i := range p1.Sources {
		if p1.Sources[i] != p2.Sources[i] {
			t.Fatalf("pivot sets diverge at %d", i)
		}
	}
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatal("distance matrices diverge")
		}
	}
}
