// Package fibbin implements Fibonacci binning (Vigna, 2013), the
// histogram technique behind the paper's Figure 2: bin boundaries follow
// the Fibonacci sequence, giving log-scale-friendly exponential bins whose
// widths are themselves "round" numbers. A point [x_i, c] means c values
// fell in [x_{i−1}, x_i), with x_0 = 0, x_1 = 1, x_i = x_{i−1} + x_{i−2}.
package fibbin

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Histogram is a concurrent Fibonacci-binned histogram over positive
// int64 values.
type Histogram struct {
	bounds []int64 // bounds[i] = x_i; bin i counts values in [x_{i-1}, x_i)
	counts []int64 // atomic
}

// New creates a histogram covering values up to at least maxValue.
func New(maxValue int64) *Histogram {
	bounds := []int64{0, 1}
	for bounds[len(bounds)-1] <= maxValue {
		k := len(bounds)
		bounds = append(bounds, bounds[k-1]+bounds[k-2])
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

// Add records one value. Negative values are clamped to zero (gap lists
// are nonnegative by construction; zero gaps cannot occur for strictly
// sorted adjacencies but are tolerated). Safe for concurrent use.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	// Find the first bound > v: bin index.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] > v })
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	atomic.AddInt64(&h.counts[i], 1)
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 {
	var t int64
	for i := range h.counts {
		t += atomic.LoadInt64(&h.counts[i])
	}
	return t
}

// Bin describes one non-empty histogram bin.
type Bin struct {
	Lo, Hi int64 // values counted: Lo ≤ v < Hi
	Count  int64
}

// Bins returns the non-empty bins in ascending order.
func (h *Histogram) Bins() []Bin {
	var out []Bin
	for i := 1; i < len(h.bounds); i++ {
		c := atomic.LoadInt64(&h.counts[i])
		if c == 0 {
			continue
		}
		out = append(out, Bin{Lo: h.bounds[i-1], Hi: h.bounds[i], Count: c})
	}
	if c := atomic.LoadInt64(&h.counts[0]); c > 0 {
		out = append([]Bin{{Lo: 0, Hi: 0, Count: c}}, out...)
	}
	return out
}

// Fprint writes the histogram as "x_i count" rows — the series plotted in
// Figure 2 (both axes log scale).
func (h *Histogram) Fprint(w io.Writer, label string) error {
	for _, b := range h.Bins() {
		if _, err := fmt.Fprintf(w, "%-12s %12d %12d\n", label, b.Hi, b.Count); err != nil {
			return err
		}
	}
	return nil
}
