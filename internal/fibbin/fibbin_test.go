package fibbin

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestBoundsAreFibonacci(t *testing.T) {
	h := New(100)
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds %v", h.bounds)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d", i, h.bounds[i], want[i])
		}
	}
}

func TestAddAndBins(t *testing.T) {
	h := New(100)
	// One gap of each: 1 → bin (1,2]? Bin semantics: [x_{i-1}, x_i).
	h.Add(1) // [1,2)
	h.Add(1)
	h.Add(4)  // [3,5)
	h.Add(13) // [13,21)
	if h.Total() != 4 {
		t.Fatalf("total %d", h.Total())
	}
	bins := h.Bins()
	counts := map[int64]int64{}
	for _, b := range bins {
		counts[b.Lo] = b.Count
	}
	if counts[1] != 2 || counts[3] != 1 || counts[13] != 1 {
		t.Fatalf("bins %v", bins)
	}
	// Values inside each bin satisfy Lo ≤ v < Hi.
	for _, b := range bins {
		if b.Lo >= b.Hi && b.Hi != 0 {
			t.Fatalf("bad bin %+v", b)
		}
	}
}

func TestOverflowClampsToLastBin(t *testing.T) {
	h := New(10)
	h.Add(1 << 40)
	if h.Total() != 1 {
		t.Fatal("overflow value lost")
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	h := New(10)
	h.Add(-5)
	bins := h.Bins()
	if len(bins) != 1 || bins[0].Lo != 0 || bins[0].Count != 1 {
		t.Fatalf("bins %v", bins)
	}
}

func TestConcurrentAdd(t *testing.T) {
	h := New(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Add(int64(i%1000 + w))
			}
		}(w)
	}
	wg.Wait()
	if h.Total() != 80000 {
		t.Fatalf("total %d, want 80000", h.Total())
	}
}

func TestFprintFormat(t *testing.T) {
	h := New(10)
	h.Add(2)
	h.Add(3)
	var buf bytes.Buffer
	if err := h.Fprint(&buf, "road"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "road") {
		t.Fatalf("output missing label: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("expected 2 rows: %q", out)
	}
}
