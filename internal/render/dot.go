package render

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
)

// WriteDOT exports the graph with pinned layout positions in Graphviz DOT
// format (`neato -n` renders it verbatim), so ParHDE coordinates flow into
// the wider graph-drawing toolchain. Coordinates are scaled to a
// `scale`-inch canvas; weighted graphs carry edge weights as attributes.
func WriteDOT(w io.Writer, g *graph.CSR, l *core.Layout, scale float64) error {
	if scale <= 0 {
		scale = 10
	}
	l = Project3D(l)
	norm := l.Clone()
	norm.NormalizeUnit()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, "graph parhde {"); err != nil {
		return err
	}
	fmt.Fprintln(bw, `  node [shape=point, width=0.02];`)
	for v := 0; v < g.NumV; v++ {
		fmt.Fprintf(bw, "  %d [pos=\"%.4f,%.4f!\"];\n",
			v, norm.X()[v]*scale, norm.Y()[v]*scale)
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := g.Adj[k]
			if u <= v {
				continue
			}
			if g.Weighted() {
				fmt.Fprintf(bw, "  %d -- %d [weight=%g];\n", v, u, g.Weights[k])
			} else {
				fmt.Fprintf(bw, "  %d -- %d;\n", v, u)
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
