// Package render writes node-link drawings of graph layouts to PNG files
// using only the standard library — the untimed output step of the
// paper's pipeline ("we use an open-source PNG format file writer to
// create the drawings. Edges are drawn as straight lines of fixed
// thickness").
package render

import (
	"image"
	"image/color"
	"image/png"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// Options controls the rendered image.
type Options struct {
	Size   int        // image width and height in pixels (default 800)
	Margin int        // border in pixels (default 16)
	Edge   color.RGBA // edge color (default dark slate)
	Back   color.RGBA // background (default white)
	// EdgeClass, when non-nil, maps an edge to a class index into Palette;
	// used to color intra- vs inter-partition edges (§4.5.4).
	EdgeClass func(u, v int32) int
	Palette   []color.RGBA
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 800
	}
	if o.Margin <= 0 {
		o.Margin = 16
	}
	if o.Margin*2 >= o.Size {
		o.Margin = o.Size / 8
	}
	if o.Edge == (color.RGBA{}) {
		o.Edge = color.RGBA{R: 40, G: 40, B: 60, A: 255}
	}
	if o.Back == (color.RGBA{}) {
		o.Back = color.RGBA{R: 255, G: 255, B: 255, A: 255}
	}
	return o
}

// Project3D returns a 2-D isometric projection of a 3-D layout
// (x' = x − z/√2, y' = y − z/√2), so p=3 embeddings (the paper allows
// p ∈ {2, 3}) can go through the same 2-D renderers. 2-D layouts are
// returned unchanged.
func Project3D(l *core.Layout) *core.Layout {
	if l.Dims() < 3 {
		return l
	}
	out := &core.Layout{Coords: linalg.NewDense(l.NumVertices(), 2)}
	x, y, z := l.Coords.Col(0), l.Coords.Col(1), l.Coords.Col(2)
	ox, oy := out.Coords.Col(0), out.Coords.Col(1)
	const f = 0.70710678118654752 // 1/√2
	for i := range x {
		ox[i] = x[i] - f*z[i]
		oy[i] = y[i] - f*z[i]
	}
	return out
}

// Draw renders the layout of g as straight-line edges and writes a PNG.
// 3-D layouts are isometrically projected first.
func Draw(w io.Writer, g *graph.CSR, l *core.Layout, opt Options) error {
	opt = opt.withDefaults()
	l = Project3D(l)
	img := image.NewRGBA(image.Rect(0, 0, opt.Size, opt.Size))
	for y := 0; y < opt.Size; y++ {
		for x := 0; x < opt.Size; x++ {
			img.SetRGBA(x, y, opt.Back)
		}
	}
	norm := l.Clone()
	norm.NormalizeUnit()
	scale := float64(opt.Size - 2*opt.Margin)
	px := func(v int32) (float64, float64) {
		return float64(opt.Margin) + norm.X()[v]*scale,
			float64(opt.Margin) + norm.Y()[v]*scale
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		x0, y0 := px(v)
		for _, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			x1, y1 := px(u)
			c := opt.Edge
			if opt.EdgeClass != nil && len(opt.Palette) > 0 {
				c = opt.Palette[opt.EdgeClass(v, u)%len(opt.Palette)]
			}
			line(img, x0, y0, x1, y1, c)
		}
	}
	return png.Encode(w, img)
}

// line draws an anti-alias-free 1px line with the integer Bresenham walk.
func line(img *image.RGBA, x0, y0, x1, y1 float64, c color.RGBA) {
	ix0, iy0 := int(x0+0.5), int(y0+0.5)
	ix1, iy1 := int(x1+0.5), int(y1+0.5)
	dx := abs(ix1 - ix0)
	dy := -abs(iy1 - iy0)
	sx, sy := 1, 1
	if ix0 > ix1 {
		sx = -1
	}
	if iy0 > iy1 {
		sy = -1
	}
	err := dx + dy
	for {
		if image.Pt(ix0, iy0).In(img.Rect) {
			img.SetRGBA(ix0, iy0, c)
		}
		if ix0 == ix1 && iy0 == iy1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			ix0 += sx
		}
		if e2 <= dx {
			err += dx
			iy0 += sy
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
