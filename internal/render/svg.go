package render

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
)

// DrawSVG writes the layout as a scalable vector drawing — the natural
// format for the §4.5.2 browser-based visualization path, where PNG
// rasterization loses detail on zoom. Edges are straight 1px lines, as in
// the paper's drawings; Options.EdgeClass/Palette color edges exactly as
// in Draw.
func DrawSVG(w io.Writer, g *graph.CSR, l *core.Layout, opt Options) error {
	opt = opt.withDefaults()
	l = Project3D(l)
	bw := bufio.NewWriterSize(w, 1<<16)
	norm := l.Clone()
	norm.NormalizeUnit()
	scale := float64(opt.Size - 2*opt.Margin)
	px := func(v int32) (float64, float64) {
		return float64(opt.Margin) + norm.X()[v]*scale,
			float64(opt.Margin) + norm.Y()[v]*scale
	}
	if _, err := fmt.Fprintf(bw,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Size, opt.Size, opt.Size, opt.Size); err != nil {
		return err
	}
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="#%02x%02x%02x"/>`+"\n",
		opt.Back.R, opt.Back.G, opt.Back.B)
	for v := int32(0); int(v) < g.NumV; v++ {
		x0, y0 := px(v)
		for _, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			x1, y1 := px(u)
			c := opt.Edge
			if opt.EdgeClass != nil && len(opt.Palette) > 0 {
				c = opt.Palette[opt.EdgeClass(v, u)%len(opt.Palette)]
			}
			fmt.Fprintf(bw,
				`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#%02x%02x%02x" stroke-width="1"/>`+"\n",
				x0, y0, x1, y1, c.R, c.G, c.B)
		}
	}
	if _, err := fmt.Fprintln(bw, `</svg>`); err != nil {
		return err
	}
	return bw.Flush()
}
