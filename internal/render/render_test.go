package render

import (
	"bytes"
	"encoding/xml"
	"image/color"
	"image/png"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestDrawProducesDecodablePNG(t *testing.T) {
	g := gen.Grid2D(10, 10)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Draw(&buf, g, lay, Options{Size: 120}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 120 || b.Dy() != 120 {
		t.Fatalf("image %dx%d", b.Dx(), b.Dy())
	}
	// At least one pixel must be non-background (edges were drawn).
	found := false
	for y := 0; y < 120 && !found; y++ {
		for x := 0; x < 120; x++ {
			r, g2, b2, _ := img.At(x, y).RGBA()
			if r != 0xffff || g2 != 0xffff || b2 != 0xffff {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("image is blank")
	}
}

func TestDrawWithEdgeClasses(t *testing.T) {
	g := gen.Grid2D(6, 6)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := Options{
		Size: 80,
		EdgeClass: func(u, v int32) int {
			if (u+v)%2 == 0 {
				return 0
			}
			return 1
		},
		Palette: []color.RGBA{
			{R: 255, A: 255},
			{B: 255, A: 255},
		},
	}
	if err := Draw(&buf, g, lay, opts); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reds, blues := 0, 0
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g2, b2, _ := img.At(x, y).RGBA()
			if r == 0xffff && g2 == 0 && b2 == 0 {
				reds++
			}
			if b2 == 0xffff && g2 == 0 && r == 0 {
				blues++
			}
		}
	}
	if reds == 0 || blues == 0 {
		t.Fatalf("edge classes not rendered: %d red, %d blue pixels", reds, blues)
	}
}

func TestDrawDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Size != 800 || o.Margin != 16 || o.Edge.A == 0 || o.Back.A == 0 {
		t.Fatalf("defaults %+v", o)
	}
	// Degenerate margin falls back.
	o = Options{Size: 10, Margin: 6}.withDefaults()
	if o.Margin*2 >= o.Size {
		t.Fatalf("margin %d not clamped for size %d", o.Margin, o.Size)
	}
}

func TestDrawSVGWellFormed(t *testing.T) {
	g := gen.Grid2D(8, 8)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DrawSVG(&buf, g, lay, Options{Size: 200}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an SVG document: %.80s", out)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// One line element per edge plus svg/rect.
	if got := strings.Count(out, "<line "); int64(got) != g.NumEdges() {
		t.Fatalf("%d line elements for %d edges", got, g.NumEdges())
	}
}

func TestDrawSVGEdgeClasses(t *testing.T) {
	g := gen.Path(4)
	lay := core.RandomLayout(4, 2, 1)
	var buf bytes.Buffer
	opts := Options{
		Size:      100,
		EdgeClass: func(u, v int32) int { return int(u) % 2 },
		Palette: []color.RGBA{
			{R: 255, A: 255},
			{G: 255, A: 255},
		},
	}
	if err := DrawSVG(&buf, g, lay, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#ff0000") || !strings.Contains(out, "#00ff00") {
		t.Fatalf("palette colors missing: %s", out)
	}
}

func TestProject3D(t *testing.T) {
	g := gen.Mesh3D(6, 6, 6)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 10, Dims: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	proj := Project3D(lay)
	if proj.Dims() != 2 || proj.NumVertices() != g.NumV {
		t.Fatalf("projection shape %dx%d", proj.NumVertices(), proj.Dims())
	}
	// 2-D layouts pass through untouched.
	two := core.RandomLayout(10, 2, 1)
	if Project3D(two) != two {
		t.Fatal("2D layout should be returned as-is")
	}
	// 3-D layouts render directly.
	var buf bytes.Buffer
	if err := Draw(&buf, g, lay, Options{Size: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(5, 5), 7, 1)
	lay, _, err := core.ParHDE(g.Unweighted(), core.Options{Subspace: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, lay, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph parhde {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("malformed DOT: %.60s", out)
	}
	if got := strings.Count(out, "pos="); int64(got) != int64(g.NumV) {
		t.Fatalf("%d pos attributes for %d vertices", got, g.NumV)
	}
	if got := strings.Count(out, " -- "); int64(got) != g.NumEdges() {
		t.Fatalf("%d edges in DOT for m=%d", got, g.NumEdges())
	}
	if !strings.Contains(out, "weight=") {
		t.Fatal("weighted graph lost weights in DOT")
	}
}
