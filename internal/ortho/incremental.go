package ortho

import (
	"math"

	"repro/internal/linalg"
)

// Incremental performs Modified Gram-Schmidt one column at a time, so the
// BFS phase and the DOrtho phase can be coupled: each distance vector is
// orthogonalized (and either kept or dropped) as soon as its traversal
// finishes, and the raw O(sn) distance matrix never needs to be stored.
// §4.4 notes this is exactly the capability CGS gives up ("the use of CGS
// requires all distance vectors to be precomputed… whereas the default
// procedure can also be executed with a coupled BFS and
// D-orthogonalization steps").
type Incremental struct {
	n       int
	d       []float64 // nil = plain orthogonalization
	kept    [][]float64
	keptDN  []float64
	keptIdx []int
	dropped int
	seen    int
	work    []float64
}

// NewIncremental starts a coupled orthogonalization over length-n vectors
// with D-inner products diag(d) (nil for plain inner products). The
// constant direction 1/√n is pre-seeded, exactly as in DOrthogonalize.
func NewIncremental(n int, d []float64) *Incremental {
	s0 := make([]float64, n)
	linalg.Fill(s0, 1/math.Sqrt(float64(n)))
	return &Incremental{
		n:      n,
		d:      d,
		kept:   [][]float64{s0},
		keptDN: []float64{dNorm(s0, d)},
		work:   make([]float64, n),
	}
}

// Add orthogonalizes col against everything kept so far and keeps it if it
// survives the drop tolerance. col is not modified. Reports whether the
// column was kept.
func (inc *Incremental) Add(col []float64) bool {
	if len(col) != inc.n {
		panic("ortho: Incremental.Add dimension mismatch")
	}
	idx := inc.seen
	inc.seen++
	linalg.CopyVec(inc.work, col)
	nrm := linalg.Norm2(inc.work)
	if nrm <= DropTolerance {
		inc.dropped++
		return false
	}
	linalg.Scale(1/nrm, inc.work)
	for j := range inc.kept {
		c := dDot(inc.kept[j], inc.work, inc.d) / inc.keptDN[j]
		linalg.Axpy(-c, inc.kept[j], inc.work)
	}
	res := linalg.Norm2(inc.work)
	if res <= DropTolerance {
		inc.dropped++
		return false
	}
	out := make([]float64, inc.n)
	linalg.CopyVec(out, inc.work)
	linalg.Scale(1/res, out)
	inc.kept = append(inc.kept, out)
	inc.keptDN = append(inc.keptDN, dNorm(out, inc.d))
	inc.keptIdx = append(inc.keptIdx, idx)
	return true
}

// Result packages the kept columns (constant column excluded) in the same
// form DOrthogonalize returns. The Incremental must not be used after.
func (inc *Incremental) Result() Result {
	out := linalg.NewDense(inc.n, len(inc.keptIdx))
	for j := range inc.keptIdx {
		linalg.CopyVec(out.Col(j), inc.kept[j+1])
	}
	return Result{
		S:       out,
		DNorms:  append([]float64(nil), inc.keptDN[1:]...),
		Kept:    append([]int(nil), inc.keptIdx...),
		Dropped: inc.dropped,
	}
}
