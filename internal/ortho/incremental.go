package ortho

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Incremental performs Modified Gram-Schmidt one column at a time, so the
// BFS phase and the DOrtho phase can be coupled: each distance vector is
// orthogonalized (and either kept or dropped) as soon as its traversal
// finishes, and the raw O(sn) distance matrix never needs to be stored.
// §4.4 notes this is exactly the capability CGS gives up ("the use of CGS
// requires all distance vectors to be precomputed… whereas the default
// procedure can also be executed with a coupled BFS and
// D-orthogonalization steps").
type Incremental struct {
	n       int
	d       []float64 // nil = plain orthogonalization
	bud     parallel.Budget
	sc      *Scratch
	pooled  bool
	kept    [][]float64
	keptDN  []float64
	keptIdx []int
	dropped int
	seen    int
}

// NewIncremental starts a coupled orthogonalization over length-n vectors
// with D-inner products diag(d) (nil for plain inner products). The
// constant direction 1/√n is pre-seeded, exactly as in DOrthogonalize.
func NewIncremental(n int, d []float64) *Incremental {
	return NewIncrementalScratch(n, d, nil)
}

// NewIncrementalScratch is NewIncremental running over sc's pooled
// buffers (nil allocates private scratch). The scratch bounds the column
// count: at most sc's s columns can be kept; columns added beyond that
// capacity grow the scratch. With a scratch the whole coupled DOrtho
// phase performs no O(n)-sized allocations and Result aliases scratch
// storage (valid until the scratch's next use).
func NewIncrementalScratch(n int, d []float64, sc *Scratch) *Incremental {
	return NewIncrementalBudget(parallel.Live(), n, d, sc)
}

// NewIncrementalBudget is NewIncrementalScratch running under an explicit
// worker budget; every Add reuses the same budget, so a coupled layout's
// orthogonalization fan-out is pinned for the whole run.
func NewIncrementalBudget(bud parallel.Budget, n int, d []float64, sc *Scratch) *Incremental {
	pooled := sc != nil
	if !pooled {
		// Start with room for a handful of columns; Add grows on demand.
		sc = NewScratch(n, 8)
	} else {
		cols := sc.s
		if cols < 1 {
			cols = 1
		}
		sc.Ensure(n, cols)
	}
	// The coupled sweep projects against the flat arena: it stays bitwise
	// identical to the packed batch path (both mirror projectPanels), and
	// the flat columns are what the per-pivot Add hands out.
	sc.ensureCols()
	s0 := sc.cols[0]
	linalg.FillBudget(bud, s0, 1/math.Sqrt(float64(n)))
	return &Incremental{
		n:       n,
		d:       d,
		bud:     bud,
		sc:      sc,
		pooled:  pooled,
		kept:    sc.cols[:1],
		keptDN:  append(sc.dNorms[:0], dNormP(bud, s0, d, sc.partials)),
		keptIdx: sc.keptIdx[:0],
	}
}

// Add orthogonalizes col against everything kept so far and keeps it if it
// survives the drop tolerance. col is not modified. Reports whether the
// column was kept.
func (inc *Incremental) Add(col []float64) bool {
	if len(col) != inc.n {
		panic("ortho: Incremental.Add dimension mismatch")
	}
	idx := inc.seen
	inc.seen++
	if len(inc.kept) == len(inc.sc.cols) {
		inc.grow()
	}
	sc := inc.sc
	work := sc.work
	nrm := norm2P(inc.bud, col, sc.partials)
	if nrm <= DropTolerance {
		inc.dropped++
		return false
	}
	linalg.ScaledCopyBudget(inc.bud, work, col, 1/nrm)
	// The same panel-blocked projection sweep as the batch MGS path, so
	// coupled and decoupled runs stay bitwise identical.
	sc.coeffs = projectPanels(inc.bud, inc.kept, inc.keptDN, work, inc.d, sc.coeffs[:0], sc)
	res := norm2P(inc.bud, work, sc.partials)
	if res <= DropTolerance {
		inc.dropped++
		return false
	}
	out := sc.cols[len(inc.kept)]
	dn := linalg.ScaledCopyDDotBudget(inc.bud, out, work, inc.d, 1/res, sc.partials)
	inc.kept = sc.cols[:len(inc.kept)+1]
	inc.keptDN = append(inc.keptDN, dn)
	inc.keptIdx = append(inc.keptIdx, idx)
	return true
}

// grow doubles the scratch's column capacity, preserving kept columns
// (only reachable on the private-scratch path or when more columns are
// added than the pooled scratch was shaped for).
func (inc *Incremental) grow() {
	ns := inc.sc.s * 2
	if ns < 4 {
		ns = 4
	}
	sc := NewScratch(inc.n, ns)
	sc.ensureCols()
	for j := range inc.kept {
		linalg.CopyVecBudget(inc.bud, sc.cols[j], inc.kept[j])
	}
	sc.dNorms = append(sc.dNorms[:0], inc.keptDN...)
	sc.keptIdx = append(sc.keptIdx[:0], inc.keptIdx...)
	inc.kept = sc.cols[:len(inc.kept)]
	inc.keptDN = sc.dNorms
	inc.keptIdx = sc.keptIdx
	inc.sc = sc
}

// Result packages the kept columns (constant column excluded) in the same
// form DOrthogonalize returns. The Incremental must not be used after.
func (inc *Incremental) Result() Result {
	inc.sc.dNorms, inc.sc.keptIdx = inc.keptDN[:0], inc.keptIdx[:0]
	if inc.pooled {
		return inc.sc.result(inc.kept, inc.keptDN, inc.keptIdx, inc.dropped)
	}
	out := linalg.NewDense(inc.n, len(inc.keptIdx))
	for j := range inc.keptIdx {
		linalg.CopyVec(out.Col(j), inc.kept[j+1])
	}
	return Result{
		S:       out,
		DNorms:  append([]float64(nil), inc.keptDN[1:]...),
		Kept:    append([]int(nil), inc.keptIdx...),
		Dropped: inc.dropped,
	}
}
