// Package ortho implements the DOrtho phase of ParHDE: Gram-Schmidt-style
// (D-)orthogonalization of the BFS distance vectors against the constant
// vector and each other, with near-linearly-dependent columns dropped
// (ICPP'20 Algorithm 3, lines 9-16). Two procedures are provided, matching
// the paper's Table 7 comparison: Modified Gram-Schmidt using only
// Level-1 operations (the default) and Classical Gram-Schmidt organized as
// Level-2 matrix-vector products, which trades numerical robustness for
// fewer synchronization points and is consistently ~2-3× faster.
package ortho

import (
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Method selects the orthogonalization procedure.
type Method int

const (
	// MGS is Modified Gram-Schmidt: each column is orthogonalized against
	// every previously kept column in sequence (Level-1 BLAS only).
	MGS Method = iota
	// CGS is Classical Gram-Schmidt: all projection coefficients for a
	// column are computed from the original column at once (Level-2 BLAS),
	// requiring all distance vectors to be precomputed.
	CGS
)

func (m Method) String() string {
	if m == CGS {
		return "CGS"
	}
	return "MGS"
}

// DropTolerance is the residual-norm threshold below which a column is
// considered linearly dependent and discarded (Algorithm 3, line 12).
const DropTolerance = 1e-3

// Result is the output of an orthogonalization pass.
type Result struct {
	// S holds the kept orthonormal columns (the 0th constant column is
	// already dropped, per Algorithm 3 line 16). Columns have unit
	// Euclidean norm.
	S *linalg.Dense
	// DNorms[j] = S_jᵀ D S_j for each kept column: the diagonal of SᵀDS,
	// needed to convert the projected eigenproblem to standard form when
	// D-orthogonalization (rather than D-orthonormalization) is used.
	DNorms []float64
	// Kept lists the indices of the input columns that survived.
	Kept []int
	// Dropped counts discarded near-dependent columns.
	Dropped int
}

// DOrthogonalize orthogonalizes the columns of b against 1/√n and each
// other under the D-inner product ⟨x,y⟩_D = xᵀdiag(d)y. Passing d == nil
// selects the plain orthogonalization variant of §4.5.1 (approximating
// Laplacian rather than degree-normalized eigenvectors). b is not
// modified.
func DOrthogonalize(b *linalg.Dense, d []float64, method Method) Result {
	return DOrthogonalizeScratch(b, d, method, nil)
}

// DOrthogonalizeScratch is DOrthogonalize running over sc's pooled
// buffers (nil allocates private scratch, equivalent to DOrthogonalize).
// With a scratch, the phase performs no O(n)-sized allocations and the
// returned Result aliases scratch storage: it is valid only until the
// scratch's next use and the numbers are bit-identical to the
// fresh-allocation run.
func DOrthogonalizeScratch(b *linalg.Dense, d []float64, method Method, sc *Scratch) Result {
	n, s := b.Rows, b.Cols
	pooled := sc != nil
	if pooled {
		sc.Ensure(n, s)
	} else {
		sc = NewScratch(n, s)
	}
	// s0 = 1/√n: the degenerate direction every column must be cleaned of.
	s0 := sc.cols[0]
	linalg.Fill(s0, 1/math.Sqrt(float64(n)))

	kept := sc.cols[:1]
	keptDN := append(sc.dNorms[:0], dNormP(s0, d, sc.partials))
	keptIdx := sc.keptIdx[:0]

	work := sc.work
	coeffs := sc.coeffs[:0]
	dropped := 0
	for i := 0; i < s; i++ {
		linalg.CopyVec(work, b.Col(i))
		// Pre-normalize so the drop tolerance is scale-free (Algorithm 1
		// normalizes each column before orthogonalizing).
		nrm := norm2P(work, sc.partials)
		if nrm <= DropTolerance {
			dropped++
			continue
		}
		linalg.Scale(1/nrm, work)
		switch method {
		case CGS:
			// All coefficients from the original vector in one fused pass,
			// then one combined update — the Level-2 formulation of
			// Table 7. Two sweeps over memory total, versus MGS's two
			// sweeps per previous column.
			coeffs = dDotAll(kept, work, d, coeffs[:0])
			for j := range coeffs {
				coeffs[j] /= keptDN[j]
			}
			subtractCombination(work, kept, coeffs)
		default:
			// The MGS sweep: every D-inner product reuses one partials
			// buffer, so the s² dots of the phase allocate nothing.
			for j := range kept {
				c := dDotP(kept[j], work, d, sc.partials) / keptDN[j]
				linalg.Axpy(-c, kept[j], work)
			}
		}
		res := norm2P(work, sc.partials)
		if res <= DropTolerance {
			dropped++
			continue
		}
		col := sc.cols[len(kept)]
		linalg.CopyVec(col, work)
		linalg.Scale(1/res, col)
		kept = sc.cols[:len(kept)+1]
		keptDN = append(keptDN, dNormP(col, d, sc.partials))
		keptIdx = append(keptIdx, i)
	}
	sc.dNorms, sc.keptIdx, sc.coeffs = keptDN[:0], keptIdx[:0], coeffs[:0]

	if pooled {
		return sc.result(kept, keptDN, keptIdx, dropped)
	}
	out := linalg.NewDense(n, len(keptIdx))
	for j := 0; j < len(keptIdx); j++ {
		linalg.CopyVec(out.Col(j), kept[j+1]) // skip the constant column
	}
	return Result{
		S:       out,
		DNorms:  append([]float64(nil), keptDN[1:]...),
		Kept:    append([]int(nil), keptIdx...),
		Dropped: dropped,
	}
}

// subtractCombination computes work ← work − Σ_j coeffs[j]·kept[j] in a
// single parallel sweep (the Level-2 "gemv" update of CGS): one pass over
// memory instead of len(kept) passes.
func subtractCombination(work []float64, kept [][]float64, coeffs []float64) {
	if parallel.Serial(len(work)) {
		for j, col := range kept {
			c := coeffs[j]
			if c == 0 {
				continue
			}
			for r := range work {
				work[r] -= c * col[r]
			}
		}
		return
	}
	parallel.ForBlock(len(work), func(lo, hi int) {
		for j, col := range kept {
			c := coeffs[j]
			if c == 0 {
				continue
			}
			for r := lo; r < hi; r++ {
				work[r] -= c * col[r]
			}
		}
	})
}

// dDotAll computes out[j] = ⟨kept[j], work⟩_D for every kept column in one
// blocked parallel sweep (the Level-2 "gemv" coefficient step of CGS):
// work and d are streamed once, not once per column. Per-block partials
// are combined serially in block order, so the result is deterministic
// for a fixed worker count.
func dDotAll(kept [][]float64, work, d []float64, out []float64) []float64 {
	k := len(kept)
	out = append(out, make([]float64, k)...)
	nb := linalg.ReduceBlocks(len(work))
	partials := make([]float64, nb*k)
	var wg sync.WaitGroup
	wg.Add(nb)
	n := len(work)
	for w := 0; w < nb; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/nb, (w+1)*n/nb
			local := partials[w*k : (w+1)*k]
			if d == nil {
				for j, col := range kept {
					var s float64
					for r := lo; r < hi; r++ {
						s += col[r] * work[r]
					}
					local[j] = s
				}
			} else {
				for j, col := range kept {
					var s float64
					for r := lo; r < hi; r++ {
						s += col[r] * d[r] * work[r]
					}
					local[j] = s
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < nb; w++ {
		for j := 0; j < k; j++ {
			out[j] += partials[w*k+j]
		}
	}
	return out
}

// dDotP computes ⟨x,y⟩ or ⟨x,y⟩_D reusing the given reduction-partials
// buffer; results are bit-identical to linalg.Dot / linalg.DDot.
func dDotP(x, y, d, partials []float64) float64 {
	if d == nil {
		return linalg.DotWith(x, y, partials)
	}
	return linalg.DDotWith(x, d, y, partials)
}

// dNormP computes ⟨x,x⟩_D with the shared partials buffer.
func dNormP(x, d, partials []float64) float64 {
	return dDotP(x, x, d, partials)
}

// norm2P computes ‖x‖₂ with the shared partials buffer.
func norm2P(x, partials []float64) float64 {
	return math.Sqrt(linalg.DotWith(x, x, partials))
}
