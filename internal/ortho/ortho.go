// Package ortho implements the DOrtho phase of ParHDE: Gram-Schmidt-style
// (D-)orthogonalization of the BFS distance vectors against the constant
// vector and each other, with near-linearly-dependent columns dropped
// (ICPP'20 Algorithm 3, lines 9-16). Three procedures are provided. The
// default, MGS, is panel-blocked Gram-Schmidt: the candidate column is
// projected against the kept columns one PanelCols-wide panel at a time,
// each panel costing one fused multi-dot pass and one fused multi-axpy
// pass instead of a dot/axpy pair per column — the bandwidth-lean
// formulation of the paper's Level-1 procedure. MGSLevel1 keeps the
// original column-at-a-time sweep as the reference/ablation baseline.
// CGS is Classical Gram-Schmidt organized as Level-2 matrix-vector
// products (Table 7), which trades numerical robustness for the fewest
// synchronization points.
package ortho

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Method selects the orthogonalization procedure.
type Method int

const (
	// MGS is panel-blocked (modified) Gram-Schmidt: the candidate is
	// orthogonalized against previously kept columns panel by panel, with
	// one fused multi-dot and one fused multi-axpy pass per panel.
	// Coefficients within a panel are computed from the same candidate
	// state (classical within the panel, modified across panels) — the
	// standard block Gram-Schmidt compromise.
	MGS Method = iota
	// CGS is Classical Gram-Schmidt: all projection coefficients for a
	// column are computed from the original column at once (Level-2 BLAS),
	// requiring all distance vectors to be precomputed.
	CGS
	// MGSLevel1 is the unblocked Modified Gram-Schmidt of the original
	// implementation: each kept column costs a separate dot and axpy pass
	// (Level-1 BLAS only). Kept as the numerical reference and as the
	// baseline the kernel-budget perf gate measures panel MGS against.
	MGSLevel1
	// MGSUnpacked is panel-blocked MGS projecting against the flat
	// kept-column arena — the pre-packing formulation, kept as the
	// ablation baseline the packed perf gate measures MGS against.
	// Bitwise identical to MGS, which runs the same sweep out of the
	// cache-resident tile-major store.
	MGSUnpacked
)

func (m Method) String() string {
	switch m {
	case CGS:
		return "CGS"
	case MGSLevel1:
		return "MGS-L1"
	case MGSUnpacked:
		return "MGS-flat"
	default:
		return "MGS"
	}
}

// DropTolerance is the residual-norm threshold below which a column is
// considered linearly dependent and discarded (Algorithm 3, line 12).
const DropTolerance = 1e-3

// Result is the output of an orthogonalization pass.
type Result struct {
	// S holds the kept orthonormal columns (the 0th constant column is
	// already dropped, per Algorithm 3 line 16). Columns have unit
	// Euclidean norm.
	S *linalg.Dense
	// DNorms[j] = S_jᵀ D S_j for each kept column: the diagonal of SᵀDS,
	// needed to convert the projected eigenproblem to standard form when
	// D-orthogonalization (rather than D-orthonormalization) is used.
	DNorms []float64
	// Kept lists the indices of the input columns that survived.
	Kept []int
	// Dropped counts discarded near-dependent columns.
	Dropped int
}

// DOrthogonalize orthogonalizes the columns of b against 1/√n and each
// other under the D-inner product ⟨x,y⟩_D = xᵀdiag(d)y. Passing d == nil
// selects the plain orthogonalization variant of §4.5.1 (approximating
// Laplacian rather than degree-normalized eigenvectors). b is not
// modified.
func DOrthogonalize(b *linalg.Dense, d []float64, method Method) Result {
	return DOrthogonalizeScratch(b, d, method, nil)
}

// DOrthogonalizeScratch is DOrthogonalize running over sc's pooled
// buffers (nil allocates private scratch, equivalent to DOrthogonalize).
// With a scratch, the phase performs no O(n)-sized allocations and the
// returned Result aliases scratch storage: it is valid only until the
// scratch's next use and the numbers are bit-identical to the
// fresh-allocation run.
func DOrthogonalizeScratch(b *linalg.Dense, d []float64, method Method, sc *Scratch) Result {
	return DOrthogonalizeBudget(parallel.Live(), b, d, method, sc)
}

// DOrthogonalizeBudget is DOrthogonalizeScratch running under an explicit
// worker budget. The budget only sets how many goroutines each kernel
// fans out across; the fixed row tiling of every reduction makes the
// numbers bitwise identical for every budget, including the serial path.
func DOrthogonalizeBudget(bud parallel.Budget, b *linalg.Dense, d []float64, method Method, sc *Scratch) Result {
	n, s := b.Rows, b.Cols
	pooled := sc != nil
	if pooled {
		sc.Ensure(n, s)
	} else {
		sc = NewScratch(n, s)
	}
	if method == MGS {
		return dOrthoPacked(bud, b, d, sc, pooled)
	}
	sc.ensureCols()
	// s0 = 1/√n: the degenerate direction every column must be cleaned of.
	s0 := sc.cols[0]
	linalg.FillBudget(bud, s0, 1/math.Sqrt(float64(n)))

	kept := sc.cols[:1]
	keptDN := append(sc.dNorms[:0], dNormP(bud, s0, d, sc.partials))
	keptIdx := sc.keptIdx[:0]

	work := sc.work
	coeffs := sc.coeffs[:0]
	dropped := 0
	for i := 0; i < s; i++ {
		src := b.Col(i)
		// Pre-normalize so the drop tolerance is scale-free (Algorithm 1
		// normalizes each column before orthogonalizing). The norm is taken
		// over the source column and folded into the copy, one fused pass
		// instead of copy + norm + scale.
		nrm := norm2P(bud, src, sc.partials)
		if nrm <= DropTolerance {
			dropped++
			continue
		}
		linalg.ScaledCopyBudget(bud, work, src, 1/nrm)
		switch method {
		case CGS:
			// All coefficients from the original vector at once, then one
			// combined update — the Level-2 formulation of Table 7. Two
			// sweeps over memory total, versus a sweep pair per panel.
			coeffs = linalg.DDotPanelBudget(bud, kept, work, d, coeffs[:0], sc.panelPartials)
			for j := range coeffs {
				coeffs[j] /= keptDN[j]
			}
			linalg.SubtractScaledBudget(bud, work, kept, coeffs)
		case MGSLevel1:
			// The original Level-1 sweep: every D-inner product reuses one
			// partials buffer, so the s² dots of the phase allocate nothing.
			for j := range kept {
				c := dDotP(bud, kept[j], work, d, sc.partials) / keptDN[j]
				linalg.AxpyBudget(bud, -c, kept[j], work)
			}
		default:
			coeffs = projectPanels(bud, kept, keptDN, work, d, coeffs, sc)
		}
		res := norm2P(bud, work, sc.partials)
		if res <= DropTolerance {
			dropped++
			continue
		}
		// Keep: normalize into the arena column and compute its D-norm in
		// the same fused pass.
		col := sc.cols[len(kept)]
		dn := linalg.ScaledCopyDDotBudget(bud, col, work, d, 1/res, sc.partials)
		kept = sc.cols[:len(kept)+1]
		keptDN = append(keptDN, dn)
		keptIdx = append(keptIdx, i)
	}
	sc.dNorms, sc.keptIdx, sc.coeffs = keptDN[:0], keptIdx[:0], coeffs[:0]

	if pooled {
		return sc.result(kept, keptDN, keptIdx, dropped)
	}
	out := linalg.NewDense(n, len(keptIdx))
	for j := 0; j < len(keptIdx); j++ {
		linalg.CopyVec(out.Col(j), kept[j+1]) // skip the constant column
	}
	return Result{
		S:       out,
		DNorms:  append([]float64(nil), keptDN[1:]...),
		Kept:    append([]int(nil), keptIdx...),
		Dropped: dropped,
	}
}

// dOrthoPacked is the default MGS sweep running against the scratch's
// tile-major packed kept-column store instead of the flat arena: each
// kept column is packed once when it survives (the same fused
// scale-copy-D-norm write the flat path performs) and every later panel
// projection streams it from padded cache-resident tile slots, so the
// sweep's dominant re-read traffic stops aliasing on the power-of-two
// column strides of layout-sized problems. Every kernel mirrors its
// flat counterpart's tiling and per-element accumulation order, so the
// packed sweep is bitwise identical to MGSUnpacked (and to the MGS
// results of every release before packing) for every worker budget.
func dOrthoPacked(bud parallel.Budget, b *linalg.Dense, d []float64, sc *Scratch, pooled bool) Result {
	n, s := b.Rows, b.Cols
	pk := sc.ensurePacked()
	work := sc.work
	// s0 = 1/√n: packed via the fused append (a·1.0 reproduces the flat
	// fill's value exactly, and the append's D-norm pass is bitwise
	// dNormP).
	linalg.FillBudget(bud, work, 1/math.Sqrt(float64(n)))
	keptDN := append(sc.dNorms[:0], pk.AppendScaledDDotBudget(bud, work, d, 1, sc.partials))
	keptIdx := sc.keptIdx[:0]

	coeffs := sc.coeffs[:0]
	dropped := 0
	for i := 0; i < s; i++ {
		src := b.Col(i)
		nrm := norm2P(bud, src, sc.partials)
		if nrm <= DropTolerance {
			dropped++
			continue
		}
		linalg.ScaledCopyBudget(bud, work, src, 1/nrm)
		coeffs = projectPanelsPacked(bud, pk, keptDN, work, d, coeffs, sc)
		res := norm2P(bud, work, sc.partials)
		if res <= DropTolerance {
			dropped++
			continue
		}
		// Keep: normalize into the packed store and compute the D-norm in
		// the same fused pass.
		dn := pk.AppendScaledDDotBudget(bud, work, d, 1/res, sc.partials)
		keptDN = append(keptDN, dn)
		keptIdx = append(keptIdx, i)
	}
	sc.dNorms, sc.keptIdx, sc.coeffs = keptDN[:0], keptIdx[:0], coeffs[:0]

	if pooled {
		return sc.resultPacked(bud, pk, keptDN, keptIdx, dropped)
	}
	out := linalg.NewDense(n, len(keptIdx))
	for j := range keptIdx {
		pk.CopyColIntoBudget(bud, out.Col(j), j+1) // skip the constant column
	}
	return Result{
		S:       out,
		DNorms:  append([]float64(nil), keptDN[1:]...),
		Kept:    append([]int(nil), keptIdx...),
		Dropped: dropped,
	}
}

// projectPanelsPacked is projectPanels against the packed store: the
// same PanelCols-wide panel walk with one fused multi-dot and one fused
// multi-axpy per panel, reading the kept columns from their tile slots.
// Panel boundaries, chunk shapes, and accumulation orders match
// projectPanels exactly, so the two are bitwise interchangeable.
func projectPanelsPacked(bud parallel.Budget, pk *linalg.PackedCols, keptDN []float64, work, d, coeffs []float64, sc *Scratch) []float64 {
	k := pk.Len()
	for p0 := 0; p0 < k; p0 += linalg.PanelCols {
		p1 := p0 + linalg.PanelCols
		if p1 > k {
			p1 = k
		}
		coeffs = pk.DDotPanelRangeBudget(bud, p0, p1, work, d, coeffs[:0], sc.panelPartials)
		for j := range coeffs {
			coeffs[j] /= keptDN[p0+j]
		}
		pk.SubtractScaledRangeBudget(bud, p0, p1, work, coeffs)
	}
	return coeffs
}

// projectPanels removes work's components along the kept columns with
// panel-blocked Gram-Schmidt: for each PanelCols-wide panel, one fused
// multi-dot pass yields the panel's coefficients and one fused multi-axpy
// applies the combined update. Both DOrthogonalizeScratch and the coupled
// Incremental route through this function, so the two paths stay bitwise
// identical. Returns the (reusable) coefficient slice.
func projectPanels(bud parallel.Budget, kept [][]float64, keptDN []float64, work, d, coeffs []float64, sc *Scratch) []float64 {
	for p0 := 0; p0 < len(kept); p0 += linalg.PanelCols {
		p1 := p0 + linalg.PanelCols
		if p1 > len(kept) {
			p1 = len(kept)
		}
		panel := kept[p0:p1]
		coeffs = linalg.DDotPanelBudget(bud, panel, work, d, coeffs[:0], sc.panelPartials)
		for j := range coeffs {
			coeffs[j] /= keptDN[p0+j]
		}
		linalg.SubtractScaledBudget(bud, work, panel, coeffs)
	}
	return coeffs
}

// dDotP computes ⟨x,y⟩ or ⟨x,y⟩_D reusing the given reduction-partials
// buffer; results are bit-identical to linalg.Dot / linalg.DDot.
func dDotP(bud parallel.Budget, x, y, d, partials []float64) float64 {
	if d == nil {
		return linalg.DotBudget(bud, x, y, partials)
	}
	return linalg.DDotBudget(bud, x, d, y, partials)
}

// dNormP computes ⟨x,x⟩_D with the shared partials buffer.
func dNormP(bud parallel.Budget, x, d, partials []float64) float64 {
	return dDotP(bud, x, x, d, partials)
}

// norm2P computes ‖x‖₂ with the shared partials buffer.
func norm2P(bud parallel.Budget, x, partials []float64) float64 {
	return math.Sqrt(linalg.DotBudget(bud, x, x, partials))
}
