package ortho

import (
	"runtime"
	"testing"

	"repro/internal/parallel"
)

// TestDOrthogonalizeBudgetInvariance: every method produces bitwise
// identical kept columns, D-norms, and drop sets for worker budgets
// 1, 2, 4 and the live budget, with and without a degree weighting.
func TestDOrthogonalizeBudgetInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	n, s := 9000, 9
	degrees := randDegrees(n, 3)
	budgets := []parallel.Budget{
		parallel.FixedBudget(1),
		parallel.FixedBudget(2),
		parallel.FixedBudget(4),
		parallel.Live(),
	}
	for _, method := range []Method{MGS, CGS, MGSLevel1, MGSUnpacked} {
		for _, d := range [][]float64{nil, degrees} {
			ref := DOrthogonalizeBudget(parallel.FixedBudget(1), randMatrix(n, s, 7), d, method, nil)
			for _, bud := range budgets {
				got := DOrthogonalizeBudget(bud, randMatrix(n, s, 7), d, method, nil)
				if len(got.Kept) != len(ref.Kept) || got.Dropped != ref.Dropped {
					t.Fatalf("%v workers=%d: kept %d/dropped %d, want %d/%d",
						method, bud.Workers(), len(got.Kept), got.Dropped, len(ref.Kept), ref.Dropped)
				}
				for j, k := range ref.Kept {
					if got.Kept[j] != k {
						t.Fatalf("%v workers=%d: Kept[%d] = %d, want %d", method, bud.Workers(), j, got.Kept[j], k)
					}
					if got.DNorms[j] != ref.DNorms[j] {
						t.Fatalf("%v workers=%d: DNorms[%d] %v != %v", method, bud.Workers(), j, got.DNorms[j], ref.DNorms[j])
					}
				}
				for k := range ref.S.Data {
					if got.S.Data[k] != ref.S.Data[k] {
						t.Fatalf("%v d=%v workers=%d: S.Data[%d] diverged: %v != %v",
							method, d != nil, bud.Workers(), k, got.S.Data[k], ref.S.Data[k])
					}
				}
			}
		}
	}
}

// TestMGSPackedMatchesUnpackedSharedScratch: the packed MGS sweep (the
// default) and the flat-arena MGSUnpacked sweep produce bitwise
// identical results while alternating mid-run over one shared pooled
// scratch across worker budgets — the reuse pattern a workspace-backed
// job worker produces, and the one where stale packed state or a
// misrouted arena would surface.
func TestMGSPackedMatchesUnpackedSharedScratch(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	n, s := 9000, 9
	degrees := randDegrees(n, 3)
	sc := NewScratch(n, s)
	for _, d := range [][]float64{nil, degrees} {
		// Non-pooled reference: fresh storage, nothing aliased.
		ref := DOrthogonalizeBudget(parallel.FixedBudget(1), randMatrix(n, s, 7), d, MGSUnpacked, nil)
		for _, bud := range []parallel.Budget{
			parallel.FixedBudget(1),
			parallel.FixedBudget(2),
			parallel.FixedBudget(4),
			parallel.Live(),
		} {
			for _, method := range []Method{MGS, MGSUnpacked, MGS} {
				got := DOrthogonalizeBudget(bud, randMatrix(n, s, 7), d, method, sc)
				if len(got.Kept) != len(ref.Kept) || got.Dropped != ref.Dropped {
					t.Fatalf("%v workers=%d: kept %d/dropped %d, want %d/%d",
						method, bud.Workers(), len(got.Kept), got.Dropped, len(ref.Kept), ref.Dropped)
				}
				for j := range ref.DNorms {
					if got.DNorms[j] != ref.DNorms[j] {
						t.Fatalf("%v workers=%d: DNorms[%d] %v != %v",
							method, bud.Workers(), j, got.DNorms[j], ref.DNorms[j])
					}
				}
				for k := range ref.S.Data {
					if got.S.Data[k] != ref.S.Data[k] {
						t.Fatalf("%v d=%v workers=%d: S.Data[%d] diverged: %v != %v",
							method, d != nil, bud.Workers(), k, got.S.Data[k], ref.S.Data[k])
					}
				}
			}
		}
	}
}

// TestIncrementalBudgetInvariance: the coupled-pipeline incremental
// orthogonalizer matches the serial reference bitwise for every budget.
func TestIncrementalBudgetInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	n, s := 9000, 8
	degrees := randDegrees(n, 5)
	run := func(bud parallel.Budget, d []float64) *Incremental {
		inc := NewIncrementalBudget(bud, n, d, nil)
		for j := 0; j < s; j++ {
			inc.Add(randMatrix(n, 1, int64(20+j)).Col(0))
		}
		return inc
	}
	for _, d := range [][]float64{nil, degrees} {
		ref := run(parallel.FixedBudget(1), d)
		refRes := ref.Result()
		for _, p := range []int{2, 4} {
			got := run(parallel.FixedBudget(p), d)
			res := got.Result()
			if len(res.Kept) != len(refRes.Kept) {
				t.Fatalf("workers=%d: kept %d, want %d", p, len(res.Kept), len(refRes.Kept))
			}
			for k := range refRes.S.Data {
				if res.S.Data[k] != refRes.S.Data[k] {
					t.Fatalf("workers=%d d=%v: S.Data[%d] diverged", p, d != nil, k)
				}
			}
			for j := range refRes.DNorms {
				if res.DNorms[j] != refRes.DNorms[j] {
					t.Fatalf("workers=%d: DNorms[%d] diverged", p, j)
				}
			}
		}
	}
}
