package ortho

import (
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Scratch owns the DOrtho phase's reusable storage: the kept-column arena
// (s+1 length-n columns — the constant direction plus up to s survivors),
// the working vector, the output matrix backing Result.S, and the
// reduction-partials buffer every D-inner product of the MGS sweep reuses
// instead of allocating per dot product. One Scratch serves both
// DOrthogonalizeScratch and NewIncrementalScratch; a pooled workspace
// keeps one per (n, s) shape.
//
// Results produced through a Scratch alias its storage (Result.S, DNorms,
// Kept), so they are valid only until the Scratch's next use.
type Scratch struct {
	n, s     int
	arena    []float64   // (s+1)·n backing for kept columns (flat paths, lazy)
	cols     [][]float64 // views into arena, rebuilt on ensureCols
	colsN    int         // shape the arena/cols were last built for
	colsS    int
	packed   *linalg.PackedCols // tile-major kept-column store (packed MGS, lazy)
	work     []float64
	partials []float64 // reduction partials shared by every dot in a sweep
	// panelPartials is the per-block arena of the fused panel multi-dot:
	// ReduceBlocks(n) blocks × up to s+1 columns (CGS projects against
	// every kept column at once).
	panelPartials []float64
	coeffs        []float64 // panel/CGS coefficient vector
	sOut          *linalg.Dense
	dNorms        []float64
	keptIdx       []int
}

// NewScratch returns orthogonalization scratch for up to s length-n
// input columns.
func NewScratch(n, s int) *Scratch {
	sc := &Scratch{}
	sc.Ensure(n, s)
	return sc
}

// Ensure grows the scratch to cover (n, s); sufficient buffers are kept,
// so same-shape reuse touches no allocator. The kept-column stores are
// lazy — ensureCols (flat paths) and ensurePacked (packed MGS) size
// their own storage on first use, so a scratch only pays for the sweep
// variant actually running through it.
func (sc *Scratch) Ensure(n, s int) {
	if sc.n == n && sc.s >= s {
		return
	}
	if cap(sc.work) < n {
		sc.work = make([]float64, n)
	}
	sc.work = sc.work[:n]
	if p := linalg.ReduceBlocks(n); cap(sc.partials) < p {
		sc.partials = make([]float64, p)
	}
	if p := linalg.ReduceBlocks(n) * (s + 1); cap(sc.panelPartials) < p {
		sc.panelPartials = make([]float64, p)
	}
	if cap(sc.coeffs) < s+1 {
		sc.coeffs = make([]float64, 0, s+1)
	}
	if sc.sOut == nil || sc.sOut.Rows != n || sc.sOut.Cols < s {
		sc.sOut = linalg.NewDense(n, s)
	}
	if cap(sc.dNorms) < s+1 {
		sc.dNorms = make([]float64, 0, s+1)
	}
	if cap(sc.keptIdx) < s {
		sc.keptIdx = make([]int, 0, s)
	}
	sc.n, sc.s = n, s
}

// ensureCols builds the flat kept-column arena for the current (n, s) —
// called at the top of every flat sweep (CGS, MGSLevel1, MGSUnpacked,
// Incremental) so the packed MGS path never pays for storage it does
// not touch.
func (sc *Scratch) ensureCols() {
	n, s := sc.n, sc.s
	if sc.colsN == n && sc.colsS >= s {
		return
	}
	if cap(sc.arena) < (s+1)*n {
		sc.arena = make([]float64, (s+1)*n)
	}
	sc.arena = sc.arena[:(s+1)*n]
	if cap(sc.cols) < s+1 {
		sc.cols = make([][]float64, 0, s+1)
	}
	sc.cols = sc.cols[:s+1]
	for j := range sc.cols {
		sc.cols[j] = sc.arena[j*n : (j+1)*n]
	}
	sc.colsN, sc.colsS = n, s
}

// ensurePacked shapes (and resets) the tile-major kept-column store for
// the current (n, s) — called at the top of every packed MGS sweep.
func (sc *Scratch) ensurePacked() *linalg.PackedCols {
	if sc.packed == nil {
		sc.packed = &linalg.PackedCols{}
	}
	sc.packed.Ensure(sc.n, sc.s+1)
	return sc.packed
}

// resultPacked is result over the packed store: kept columns 1…k
// (constant column excluded) are unpacked into the output views.
func (sc *Scratch) resultPacked(bud parallel.Budget, pk *linalg.PackedCols, keptDN []float64, keptIdx []int, dropped int) Result {
	out := linalg.ViewDense(sc.sOut.Data, sc.n, len(keptIdx))
	for j := range keptIdx {
		pk.CopyColIntoBudget(bud, out.Col(j), j+1) // skip the constant column
	}
	return Result{
		S:       out,
		DNorms:  keptDN[1:],
		Kept:    keptIdx,
		Dropped: dropped,
	}
}

// result packages the kept arena columns (constant column excluded) as a
// Result aliasing the scratch's output storage.
func (sc *Scratch) result(kept [][]float64, keptDN []float64, keptIdx []int, dropped int) Result {
	out := linalg.ViewDense(sc.sOut.Data, sc.n, len(keptIdx))
	for j := range keptIdx {
		linalg.CopyVec(out.Col(j), kept[j+1]) // skip the constant column
	}
	return Result{
		S:       out,
		DNorms:  keptDN[1:],
		Kept:    keptIdx,
		Dropped: dropped,
	}
}
