package ortho

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randMatrix(n, s int, seed int64) *linalg.Dense {
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewDense(n, s)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64() * 4
	}
	return m
}

func randDegrees(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + float64(r.Intn(20))
	}
	return d
}

func checkDOrthogonal(t *testing.T, res Result, d []float64, method Method) {
	t.Helper()
	s := res.S
	ones := make([]float64, s.Rows)
	linalg.Fill(ones, 1)
	tol := 1e-8
	if method == CGS {
		tol = 1e-6 // classical GS is less numerically robust (the tradeoff Table 7 buys speed with)
	}
	for i := 0; i < s.Cols; i++ {
		ci := s.Col(i)
		// Unit Euclidean norm.
		if n := linalg.Norm2(ci); math.Abs(n-1) > tol {
			t.Fatalf("column %d norm %g", i, n)
		}
		// D-orthogonal to the constant vector.
		var dot float64
		if d == nil {
			dot = linalg.Dot(ones, ci)
		} else {
			dot = linalg.DDot(ones, d, ci)
		}
		if math.Abs(dot) > tol*float64(s.Rows) {
			t.Fatalf("column %d not D-orthogonal to 1: %g", i, dot)
		}
		for j := i + 1; j < s.Cols; j++ {
			var dot float64
			if d == nil {
				dot = linalg.Dot(ci, s.Col(j))
			} else {
				dot = linalg.DDot(ci, d, s.Col(j))
			}
			if math.Abs(dot) > tol*10 {
				t.Fatalf("columns %d,%d not D-orthogonal: %g", i, j, dot)
			}
		}
		// Reported D-norms must match.
		var dn float64
		if d == nil {
			dn = linalg.Dot(ci, ci)
		} else {
			dn = linalg.DDot(ci, d, ci)
		}
		if math.Abs(dn-res.DNorms[i]) > 1e-9*(1+dn) {
			t.Fatalf("column %d DNorm reported %g, actual %g", i, res.DNorms[i], dn)
		}
	}
}

func TestMGSPlainOrthonormal(t *testing.T) {
	b := randMatrix(2000, 8, 1)
	res := DOrthogonalize(b, nil, MGS)
	if res.S.Cols != 8 || res.Dropped != 0 {
		t.Fatalf("kept %d dropped %d", res.S.Cols, res.Dropped)
	}
	checkDOrthogonal(t, res, nil, MGS)
}

func TestMGSWeightedDOrthogonal(t *testing.T) {
	b := randMatrix(2000, 8, 2)
	d := randDegrees(2000, 3)
	res := DOrthogonalize(b, d, MGS)
	checkDOrthogonal(t, res, d, MGS)
}

func TestCGSWeightedDOrthogonal(t *testing.T) {
	b := randMatrix(2000, 8, 4)
	d := randDegrees(2000, 5)
	res := DOrthogonalize(b, d, CGS)
	checkDOrthogonal(t, res, d, CGS)
}

func TestDropsDependentColumns(t *testing.T) {
	n := 1000
	b := randMatrix(n, 5, 6)
	// Column 2 := 2·column 0 + 3·column 1 (exactly dependent).
	c0, c1, c2 := b.Col(0), b.Col(1), b.Col(2)
	for i := 0; i < n; i++ {
		c2[i] = 2*c0[i] + 3*c1[i]
	}
	for _, method := range []Method{MGS, CGS} {
		res := DOrthogonalize(b, nil, method)
		if res.Dropped != 1 {
			t.Fatalf("%v: dropped %d, want 1", method, res.Dropped)
		}
		if res.S.Cols != 4 {
			t.Fatalf("%v: kept %d, want 4", method, res.S.Cols)
		}
		for _, k := range res.Kept {
			if k == 2 {
				t.Fatalf("%v: dependent column 2 kept", method)
			}
		}
	}
}

func TestDropsConstantColumn(t *testing.T) {
	// A constant column is parallel to s0 = 1/√n and must be discarded —
	// the "degenerate vector" of Algorithm 3 line 16.
	b := randMatrix(500, 3, 7)
	linalg.Fill(b.Col(1), 42)
	res := DOrthogonalize(b, nil, MGS)
	if res.Dropped != 1 || res.S.Cols != 2 {
		t.Fatalf("dropped %d kept %d", res.Dropped, res.S.Cols)
	}
}

func TestDropsZeroColumn(t *testing.T) {
	b := randMatrix(500, 3, 8)
	linalg.Fill(b.Col(0), 0)
	res := DOrthogonalize(b, nil, MGS)
	if res.Dropped != 1 || res.S.Cols != 2 {
		t.Fatalf("dropped %d kept %d", res.Dropped, res.S.Cols)
	}
}

func TestCGSAndMGSSpanSameSubspace(t *testing.T) {
	// Both methods orthogonalize against the same prefix, so each MGS
	// column must lie in the span of the CGS columns (and vice versa):
	// projecting onto the other basis reproduces the vector.
	b := randMatrix(1500, 6, 9)
	d := randDegrees(1500, 10)
	mgs := DOrthogonalize(b, d, MGS)
	cgs := DOrthogonalize(b, d, CGS)
	if mgs.S.Cols != cgs.S.Cols {
		t.Fatalf("kept mismatch: %d vs %d", mgs.S.Cols, cgs.S.Cols)
	}
	for i := 0; i < mgs.S.Cols; i++ {
		v := mgs.S.Col(i)
		// residual = v − Σ_j (⟨cgs_j, v⟩_D / ⟨cgs_j, cgs_j⟩_D)·cgs_j
		res := make([]float64, len(v))
		copy(res, v)
		for j := 0; j < cgs.S.Cols; j++ {
			cj := cgs.S.Col(j)
			coef := linalg.DDot(cj, d, res) / cgs.DNorms[j]
			linalg.Axpy(-coef, cj, res)
		}
		if r := linalg.Norm2(res); r > 1e-5 {
			t.Fatalf("MGS column %d outside CGS span: residual %g", i, r)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	b := linalg.NewDense(100, 0)
	res := DOrthogonalize(b, nil, MGS)
	if res.S.Cols != 0 || res.Dropped != 0 {
		t.Fatalf("empty input: kept %d dropped %d", res.S.Cols, res.Dropped)
	}
}

func TestMethodString(t *testing.T) {
	if MGS.String() != "MGS" || CGS.String() != "CGS" {
		t.Fatal("method names wrong")
	}
}

func TestIncrementalMatchesBatchMGS(t *testing.T) {
	b := randMatrix(1500, 7, 11)
	d := randDegrees(1500, 12)
	batch := DOrthogonalize(b, d, MGS)
	inc := NewIncremental(1500, d)
	for j := 0; j < b.Cols; j++ {
		inc.Add(b.Col(j))
	}
	res := inc.Result()
	if res.S.Cols != batch.S.Cols || res.Dropped != batch.Dropped {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", res.S.Cols, res.Dropped, batch.S.Cols, batch.Dropped)
	}
	for i := range batch.S.Data {
		if batch.S.Data[i] != res.S.Data[i] {
			t.Fatal("incremental and batch MGS differ")
		}
	}
	for i := range batch.DNorms {
		if batch.DNorms[i] != res.DNorms[i] {
			t.Fatal("DNorms differ")
		}
	}
	for i := range batch.Kept {
		if batch.Kept[i] != res.Kept[i] {
			t.Fatal("kept indices differ")
		}
	}
}

func TestIncrementalDropsAndPanics(t *testing.T) {
	inc := NewIncremental(100, nil)
	col := make([]float64, 100)
	for i := range col {
		col[i] = float64(i)
	}
	if !inc.Add(col) {
		t.Fatal("independent column dropped")
	}
	if inc.Add(col) {
		t.Fatal("duplicate column kept")
	}
	zero := make([]float64, 100)
	if inc.Add(zero) {
		t.Fatal("zero column kept")
	}
	res := inc.Result()
	if res.S.Cols != 1 || res.Dropped != 2 || res.Kept[0] != 0 {
		t.Fatalf("result %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewIncremental(10, nil).Add(make([]float64, 5))
}

// TestPanelMGSMatchesLevel1 is the panel-blocking property test: panel
// MGS must keep and drop exactly the same columns as the unblocked
// Level-1 sweep and produce the same orthonormal basis to within float
// tolerance, across adversarial widths (s below, at, and past PanelCols
// boundaries, including s=0 and s=1) with and without the D weighting.
// Panel widths alter the projection summation order, so the comparison is
// tolerance-based rather than bitwise; D-orthogonality itself is checked
// at the tight MGS tolerance.
func TestPanelMGSMatchesLevel1(t *testing.T) {
	for _, n := range []int{50, 700, 2600} {
		for _, s := range []int{0, 1, 7, 8, 9, 17, 63} {
			if s >= n {
				continue
			}
			b := randMatrix(n, s, int64(101*n+s))
			for _, d := range [][]float64{nil, randDegrees(n, int64(7*n+s))} {
				panel := DOrthogonalize(b, d, MGS)
				l1 := DOrthogonalize(b, d, MGSLevel1)
				if len(panel.Kept) != len(l1.Kept) || panel.Dropped != l1.Dropped {
					t.Fatalf("n=%d s=%d d=%v: panel kept/dropped %d/%d, level-1 %d/%d",
						n, s, d != nil, len(panel.Kept), panel.Dropped, len(l1.Kept), l1.Dropped)
				}
				for j := range panel.Kept {
					if panel.Kept[j] != l1.Kept[j] {
						t.Fatalf("n=%d s=%d: kept sets differ at %d: %d vs %d", n, s, j, panel.Kept[j], l1.Kept[j])
					}
				}
				checkDOrthogonal(t, panel, d, MGS)
				// Well-conditioned random input: the two sweeps must agree
				// column by column, not just span the same subspace.
				for j := 0; j < panel.S.Cols; j++ {
					pc, lc := panel.S.Col(j), l1.S.Col(j)
					for i := range pc {
						if math.Abs(pc[i]-lc[i]) > 1e-9 {
							t.Fatalf("n=%d s=%d col %d row %d: panel %g, level-1 %g", n, s, j, i, pc[i], lc[i])
						}
					}
				}
			}
		}
	}
}

// TestPanelMGSDegenerateColumns drives the panel path through heavy
// drops: duplicated columns, zero columns, and constant columns mixed in
// ensure the kept-column panels stay consistent when the kept set is much
// smaller than the input and column indices are not contiguous.
func TestPanelMGSDegenerateColumns(t *testing.T) {
	n := 1500
	b := randMatrix(n, 9, 3)
	copy(b.Col(2), b.Col(0))    // exact duplicate
	linalg.Fill(b.Col(4), 0)    // zero column
	linalg.Fill(b.Col(6), 3.25) // constant column (parallel to s0)
	copy(b.Col(8), b.Col(1))    // another duplicate
	d := randDegrees(n, 4)
	panel := DOrthogonalize(b, d, MGS)
	l1 := DOrthogonalize(b, d, MGSLevel1)
	if panel.Dropped != 4 || l1.Dropped != 4 {
		t.Fatalf("dropped %d (panel) / %d (level-1), want 4", panel.Dropped, l1.Dropped)
	}
	for j := range panel.Kept {
		if panel.Kept[j] != l1.Kept[j] {
			t.Fatalf("kept sets differ: %v vs %v", panel.Kept, l1.Kept)
		}
	}
	checkDOrthogonal(t, panel, d, MGS)
}
