// Package pipeline is the high-level facade a downstream user drives: one
// Config selects the algorithm and post-processing, one Run call goes from
// preprocessed graph to coordinates, quality metrics, and files. The lower
// internal packages stay importable for fine-grained control; this package
// bundles the common paths the examples and CLI tools follow.
package pipeline

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/render"
	"repro/internal/stress"
)

// Algorithm selects the layout engine.
type Algorithm int

const (
	// ParHDE is the paper's contribution (default).
	ParHDE Algorithm = iota
	// PHDE is the PCA-based predecessor (Algorithm 2).
	PHDE
	// PivotMDS is the double-centered sibling.
	PivotMDS
	// Multilevel runs ParHDE inside a coarsen/solve/prolong V-cycle (§5).
	Multilevel
	// Prior is the reproduced prior-work baseline (§4.2).
	Prior
)

func (a Algorithm) String() string {
	switch a {
	case PHDE:
		return "phde"
	case PivotMDS:
		return "pivotmds"
	case Multilevel:
		return "multilevel"
	case Prior:
		return "prior"
	default:
		return "parhde"
	}
}

// Config bundles one end-to-end run.
type Config struct {
	Algorithm Algorithm
	// Layout passes through to the engine (subspace dimension, pivots,
	// orthogonalization, seed, …). Layout.Workspace is honored for the
	// algorithms that run core.ParHDECtx directly; a workspace-backed
	// result aliases workspace storage, so callers that retain it across
	// runs must Clone it first (see internal/workspace).
	Layout core.Options
	// Coarsen configures the Multilevel hierarchy (ignored otherwise).
	Coarsen coarsen.Options
	// RefineSweeps applies §4.5.3 weighted-centroid refinement after
	// layout (0 = off).
	RefineSweeps int
	// StressPolish, when non-nil, runs sparse stress majorization seeded
	// by the layout (§4.5.4).
	StressPolish *stress.Options
	// SkipQuality suppresses the quality evaluation (it costs a pass over
	// the edges; benchmarks may not want it).
	SkipQuality bool
}

// Result is everything a run produced.
type Result struct {
	Layout  *core.Layout
	Report  *core.Report           // nil for Multilevel (see MLReport)
	ML      *core.MultilevelReport // nil unless Multilevel
	Quality core.Quality           // zero value when SkipQuality
	Stress  *stress.Result         // nil unless StressPolish ran
	Elapsed time.Duration
}

// Run lays out g according to cfg.
func Run(g *graph.CSR, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), g, cfg)
}

// RunCtx is Run with cooperative cancellation. The ParHDE path checks ctx
// at every phase boundary (and inside the coupled BFS pivot loop); the
// other algorithms and the post-processing steps check it between stages.
// On cancellation the returned error satisfies errors.Is(err, ctx.Err()).
func RunCtx(ctx context.Context, g *graph.CSR, cfg Config) (*Result, error) {
	start := time.Now()
	res := &Result{}
	var err error
	switch cfg.Algorithm {
	case PHDE:
		res.Layout, res.Report, err = core.PHDE(g, cfg.Layout)
	case PivotMDS:
		res.Layout, res.Report, err = core.PivotMDS(g, cfg.Layout)
	case Multilevel:
		res.Layout, res.ML, err = core.MultilevelParHDE(g, core.MultilevelOptions{
			Base:    cfg.Layout,
			Coarsen: cfg.Coarsen,
		})
	case Prior:
		res.Layout, res.Report, err = core.Prior(g, cfg.Layout)
	default:
		res.Layout, res.Report, err = core.ParHDECtx(ctx, g, cfg.Layout)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", cfg.Algorithm, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", cfg.Algorithm, err)
	}
	if cfg.RefineSweeps > 0 {
		core.NotifyPhase(ctx, "refine")
		core.Refine(g, res.Layout, cfg.RefineSweeps, 1e-9)
	}
	if cfg.StressPolish != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", cfg.Algorithm, err)
		}
		core.NotifyPhase(ctx, "stress")
		sres, err := stress.Sparse(g, res.Layout, *cfg.StressPolish)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stress polish: %w", err)
		}
		res.Stress = &sres
	}
	if !cfg.SkipQuality {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", cfg.Algorithm, err)
		}
		core.NotifyPhase(ctx, "quality")
		res.Quality = core.Evaluate(g, res.Layout)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// SavePNG renders the result to a PNG file.
func (r *Result) SavePNG(path string, g *graph.CSR, opt render.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.Draw(f, g, r.Layout, opt)
}

// SaveSVG renders the result to an SVG file.
func (r *Result) SaveSVG(path string, g *graph.CSR, opt render.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.DrawSVG(f, g, r.Layout, opt)
}

// SaveCoords writes "id x y [z]" rows.
func (r *Result) SaveCoords(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < r.Layout.NumVertices(); i++ {
		if _, err := fmt.Fprintf(f, "%d", i); err != nil {
			return err
		}
		for k := 0; k < r.Layout.Dims(); k++ {
			if _, err := fmt.Fprintf(f, " %.10g", r.Layout.Coords.At(i, k)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
