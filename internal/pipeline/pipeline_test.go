package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/render"
	"repro/internal/stress"
)

func TestRunAllAlgorithms(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	for _, algo := range []Algorithm{ParHDE, PHDE, PivotMDS, Multilevel, Prior} {
		cfg := Config{
			Algorithm: algo,
			Layout:    core.Options{Subspace: 10, Seed: 1},
			Coarsen:   coarsen.Options{MinVertices: 100, Seed: 1},
		}
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Layout.NumVertices() != g.NumV {
			t.Fatalf("%s: layout size %d", algo, res.Layout.NumVertices())
		}
		if res.Quality.HallRatio <= 0 {
			t.Fatalf("%s: quality not evaluated", algo)
		}
		if algo == Multilevel {
			if res.ML == nil || res.Report != nil {
				t.Fatalf("%s: wrong report fields", algo)
			}
		} else if res.Report == nil {
			t.Fatalf("%s: missing report", algo)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: elapsed not recorded", algo)
		}
	}
}

func TestRunWithRefineAndStress(t *testing.T) {
	g := gen.PlateWithHoles(20, 20)
	base, err := Run(g, Config{Layout: core.Options{Subspace: 15, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Run(g, Config{
		Layout:       core.Options{Subspace: 15, Seed: 2},
		RefineSweeps: 20,
		StressPolish: &stress.Options{MaxIters: 5, Pivots: 8, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if polished.Stress == nil || polished.Stress.Iterations == 0 {
		t.Fatal("stress polish did not run")
	}
	// Refinement should not hurt (and usually improves) the Hall ratio.
	if polished.Quality.HallRatio > 2*base.Quality.HallRatio {
		t.Fatalf("polish degraded quality: %.4g vs %.4g",
			polished.Quality.HallRatio, base.Quality.HallRatio)
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	g := gen.Path(1) // too small for any engine
	if _, err := Run(g, Config{}); err == nil {
		t.Fatal("tiny graph accepted")
	}
	wg := gen.WithRandomWeights(gen.Grid2D(5, 5), 3, 1)
	if _, err := Run(wg, Config{Algorithm: Prior, Layout: core.Options{Subspace: 4}}); err == nil {
		t.Fatal("weighted prior accepted")
	}
}

func TestSaveOutputs(t *testing.T) {
	g := gen.Grid2D(12, 12)
	res, err := Run(g, Config{Layout: core.Options{Subspace: 8, Seed: 4}, SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.HallRatio != 0 {
		t.Fatal("SkipQuality ignored")
	}
	dir := t.TempDir()
	png := filepath.Join(dir, "g.png")
	svg := filepath.Join(dir, "g.svg")
	xy := filepath.Join(dir, "g.xy")
	if err := res.SavePNG(png, g, render.Options{Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := res.SaveSVG(svg, g, render.Options{Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := res.SaveCoords(xy); err != nil {
		t.Fatal(err)
	}
	pngData, _ := os.ReadFile(png)
	if len(pngData) < 8 || string(pngData[1:4]) != "PNG" {
		t.Fatal("bad png")
	}
	svgData, _ := os.ReadFile(svg)
	if !strings.HasPrefix(string(svgData), "<svg") {
		t.Fatal("bad svg")
	}
	xyData, _ := os.ReadFile(xy)
	lines := strings.Split(strings.TrimSpace(string(xyData)), "\n")
	if len(lines) != g.NumV || len(strings.Fields(lines[0])) != 3 {
		t.Fatalf("coords file malformed: %d lines", len(lines))
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		ParHDE: "parhde", PHDE: "phde", PivotMDS: "pivotmds",
		Multilevel: "multilevel", Prior: "prior",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}
