package eigen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// PowerOptions configures the deflated power iteration.
type PowerOptions struct {
	MaxIters int     // per eigenvector (default 1000)
	Tol      float64 // convergence on eigenvector change (default 1e-7)
	Seed     uint64  // deterministic start vectors
}

// PowerResult reports the computed spectral layout basis.
type PowerResult struct {
	Vectors    *linalg.Dense // n×k, D-orthonormal, trivial vector deflated
	Values     []float64     // Rayleigh quotients (eigenvalues of D⁻¹A)
	Iterations []int         // iterations spent per vector
}

// WalkPower computes the k dominant non-degenerate eigenvectors of the
// transition (normalized adjacency) matrix D⁻¹A by power iteration with
// D-orthogonal deflation — the classical spectral drawing the paper's
// Figure 1 (bottom) uses as the quality reference, and the computation HDE
// accelerates as a preprocessing step in §4.5.3. The trivial eigenvector
// 1 (eigenvalue 1) is deflated first; vector j is additionally kept
// D-orthogonal to vectors 1..j−1 every iteration.
//
// The eigenvectors of D⁻¹A coincide with the degree-normalized
// generalized eigenvectors Lu = µDu (with reversed eigenvalue order), so
// this is also the "ground truth" ParHDE approximates.
func WalkPower(g *graph.CSR, k int, opt PowerOptions) PowerResult {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 1000
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-7
	}
	n := g.NumV
	deg := g.WeightedDegrees()
	res := PowerResult{Vectors: linalg.NewDense(n, k)}

	// Deflation basis: starts with the trivial vector, D-normalized.
	basis := make([][]float64, 0, k+1)
	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dNormalize(ones, deg)
	basis = append(basis, ones)

	state := opt.Seed*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11)/(1<<53) - 0.5
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := range x {
			x[i] = next()
		}
		dProjectOut(x, basis, deg)
		dNormalize(x, deg)
		iters := 0
		var lambda float64
		for ; iters < opt.MaxIters; iters++ {
			linalg.WalkMulVec(g, deg, x, y)
			// Rayleigh quotient in the D-inner product: xᵀD(D⁻¹A)x = xᵀAx.
			lambda = linalg.DDot(x, deg, y)
			// Shift to (I + D⁻¹A)/2, which maps the spectrum into [0, 1] so
			// power iteration cannot lock onto the −1 end on (near-)
			// bipartite graphs such as grids (Koren's recommended iteration).
			linalg.Axpy(1, x, y)
			linalg.Scale(0.5, y)
			dProjectOut(y, basis, deg)
			nrm := math.Sqrt(linalg.DDot(y, deg, y))
			if nrm == 0 {
				break
			}
			linalg.Scale(1/nrm, y)
			// Convergence: ‖y − x‖ (sign-corrected).
			var diff float64
			if linalg.Dot(x, y) < 0 {
				diff = normOfSum(x, y)
			} else {
				diff = normOfDiff(x, y)
			}
			x, y = y, x
			if diff < opt.Tol {
				iters++
				break
			}
		}
		col := make([]float64, n)
		linalg.CopyVec(col, x)
		basis = append(basis, col)
		linalg.CopyVec(res.Vectors.Col(j), x)
		res.Values = append(res.Values, lambda)
		res.Iterations = append(res.Iterations, iters)
	}
	return res
}

// dProjectOut removes the D-components of every basis vector from x. The
// basis vectors must be D-normalized.
func dProjectOut(x []float64, basis [][]float64, d []float64) {
	for _, b := range basis {
		c := linalg.DDot(b, d, x)
		linalg.Axpy(-c, b, x)
	}
}

// dNormalize scales x to unit D-norm.
func dNormalize(x, d []float64) {
	nrm := math.Sqrt(linalg.DDot(x, d, x))
	if nrm > 0 {
		linalg.Scale(1/nrm, x)
	}
}

func normOfDiff(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func normOfSum(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] + b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
