package eigen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// SubspaceOptions configures block subspace iteration.
type SubspaceOptions struct {
	MaxIters int     // outer iterations (default 500)
	Tol      float64 // max residual ‖Wx − λx‖_D for convergence (default 1e-6)
	Seed     uint64
	// Init, when non-nil, seeds the block with its first k columns — the
	// §4.5.3 use case: "ParHDE could be used as a preprocessing step for
	// modern eigensolvers". nil starts from random vectors.
	Init *linalg.Dense
}

// SubspaceResult reports the computed invariant subspace.
type SubspaceResult struct {
	Vectors    *linalg.Dense // n×k D-orthonormal Ritz vectors
	Values     []float64     // Ritz values of D⁻¹A, descending
	Iterations int
	Residual   float64 // max over vectors at exit
}

// SubspaceIterate computes the k dominant non-degenerate eigenpairs of the
// transition matrix D⁻¹A by orthogonal (block power) iteration with
// Rayleigh-Ritz extraction — the same family as the LOBPCG solver the
// paper points at, minus preconditioning. All k vectors advance together
// through the shifted operator (I + D⁻¹A)/2, are deflated against the
// trivial eigenvector, D-orthonormalized, and rotated to Ritz vectors
// every iteration. Seeding the block with an HDE layout (Init) cuts the
// iteration count dramatically versus a random start; the refine/seeding
// experiment quantifies it.
func SubspaceIterate(g *graph.CSR, k int, opt SubspaceOptions) SubspaceResult {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	n := g.NumV
	deg := g.WeightedDegrees()

	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dNormalize(ones, deg)

	// Initialize the block.
	x := linalg.NewDense(n, k)
	if opt.Init != nil {
		for j := 0; j < k && j < opt.Init.Cols; j++ {
			copy(x.Col(j), opt.Init.Col(j))
		}
	}
	state := opt.Seed*0x9e3779b97f4a7c15 + 12345
	for j := 0; j < k; j++ {
		col := x.Col(j)
		allZero := true
		for _, v := range col {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			for i := range col {
				state = state*2862933555777941757 + 3037000493
				col[i] = float64(state>>11)/(1<<53) - 0.5
			}
		}
	}
	dOrthonormalizeBlock(x, ones, deg)

	w := linalg.NewDense(n, k)
	res := SubspaceResult{}
	for it := 0; it < opt.MaxIters; it++ {
		res.Iterations = it + 1
		// W = (X + D⁻¹A·X)/2, deflated.
		for j := 0; j < k; j++ {
			linalg.WalkMulVec(g, deg, x.Col(j), w.Col(j))
			linalg.Axpy(1, x.Col(j), w.Col(j))
			linalg.Scale(0.5, w.Col(j))
			c := linalg.DDot(ones, deg, w.Col(j))
			linalg.Axpy(-c, ones, w.Col(j))
		}
		// Rayleigh-Ritz on span(W): D-orthonormalize, form the projected
		// operator H = WᵀD·Op(W), rotate to its eigenbasis.
		dOrthonormalizeBlock(w, ones, deg)
		h := linalg.NewDense(k, k)
		tmp := make([]float64, n)
		for j := 0; j < k; j++ {
			linalg.WalkMulVec(g, deg, w.Col(j), tmp)
			for i := 0; i < k; i++ {
				h.Set(i, j, linalg.DDot(w.Col(i), deg, tmp))
			}
		}
		// Symmetrize roundoff and solve.
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				avg := (h.At(i, j) + h.At(j, i)) / 2
				h.Set(i, j, avg)
				h.Set(j, i, avg)
			}
		}
		vals, vecs, err := SymEig(h)
		if err != nil {
			break
		}
		// Rotate, ordering Ritz pairs by descending eigenvalue.
		rot := linalg.NewDense(n, k)
		res.Values = make([]float64, k)
		for j := 0; j < k; j++ {
			src := k - 1 - j
			res.Values[j] = vals[src]
			dst := rot.Col(j)
			for c := 0; c < k; c++ {
				f := vecs.At(c, src)
				if f == 0 {
					continue
				}
				col := w.Col(c)
				for r := 0; r < n; r++ {
					dst[r] += f * col[r]
				}
			}
		}
		x = rot
		// Residuals.
		worst := 0.0
		for j := 0; j < k; j++ {
			linalg.WalkMulVec(g, deg, x.Col(j), tmp)
			linalg.Axpy(-res.Values[j], x.Col(j), tmp)
			r := math.Sqrt(linalg.DDot(tmp, deg, tmp))
			if r > worst {
				worst = r
			}
		}
		res.Residual = worst
		if worst < opt.Tol {
			break
		}
	}
	res.Vectors = x
	return res
}

// dOrthonormalizeBlock makes the columns of x D-orthonormal and
// D-orthogonal to the (already D-normalized) deflation vector.
func dOrthonormalizeBlock(x *linalg.Dense, deflate []float64, deg []float64) {
	for j := 0; j < x.Cols; j++ {
		col := x.Col(j)
		c := linalg.DDot(deflate, deg, col)
		linalg.Axpy(-c, deflate, col)
		for i := 0; i < j; i++ {
			prev := x.Col(i)
			linalg.Axpy(-linalg.DDot(prev, deg, col), prev, col)
		}
		nrm := math.Sqrt(linalg.DDot(col, deg, col))
		if nrm > 1e-300 {
			linalg.Scale(1/nrm, col)
		}
	}
}
