package eigen

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestLOBPCGMatchesDense(t *testing.T) {
	g := gen.Grid2D(6, 5)
	n := g.NumV
	deg := g.WeightedDegrees()
	sym := linalg.NewDense(n, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			sym.Set(v, int(u), 1/math.Sqrt(deg[v]*deg[u]))
		}
	}
	vals, _, err := SymEig(sym)
	if err != nil {
		t.Fatal(err)
	}
	res := LOBPCG(g, 2, LOBPCGOptions{Seed: 1, Tol: 1e-10, MaxIters: 2000})
	if math.Abs(res.Values[0]-vals[n-2]) > 1e-6 {
		t.Fatalf("LOBPCG λ1 = %g, dense %g", res.Values[0], vals[n-2])
	}
	if math.Abs(res.Values[1]-vals[n-3]) > 1e-6 {
		t.Fatalf("LOBPCG λ2 = %g, dense %g", res.Values[1], vals[n-3])
	}
}

func TestLOBPCGConvergesFasterThanSubspace(t *testing.T) {
	// The locally-optimal recurrence (X,R,P Rayleigh-Ritz) must beat plain
	// block power iteration on iteration count.
	g := gen.PlateWithHoles(20, 20)
	const tol = 1e-6
	lob := LOBPCG(g, 2, LOBPCGOptions{Seed: 2, Tol: tol, MaxIters: 20000})
	sub := SubspaceIterate(g, 2, SubspaceOptions{Seed: 2, Tol: tol, MaxIters: 20000})
	if lob.Residual > tol {
		t.Fatalf("LOBPCG did not converge: residual %g after %d iters", lob.Residual, lob.Iterations)
	}
	if lob.Iterations*2 >= sub.Iterations {
		t.Fatalf("LOBPCG took %d iterations vs subspace %d — expected ≥2x fewer", lob.Iterations, sub.Iterations)
	}
}

func TestLOBPCGVectorsDOrthonormal(t *testing.T) {
	g := gen.Mesh3D(6, 6, 6)
	deg := g.WeightedDegrees()
	res := LOBPCG(g, 3, LOBPCGOptions{Seed: 3, Tol: 1e-8, MaxIters: 5000})
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			d := linalg.DDot(res.Vectors.Col(i), deg, res.Vectors.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-6 {
				t.Fatalf("not D-orthonormal at (%d,%d): %g", i, j, d)
			}
		}
	}
	for i := 1; i < 3; i++ {
		if res.Values[i] > res.Values[i-1]+1e-8 {
			t.Fatalf("values not descending: %v", res.Values)
		}
	}
}

func TestLOBPCGHDESeedHelps(t *testing.T) {
	g := gen.PlateWithHoles(22, 22)
	const tol = 1e-7
	seed := WalkPower(g, 2, PowerOptions{Seed: 5, MaxIters: 100, Tol: 0})
	warm := LOBPCG(g, 2, LOBPCGOptions{Seed: 4, Tol: tol, MaxIters: 20000, Init: seed.Vectors})
	cold := LOBPCG(g, 2, LOBPCGOptions{Seed: 4, Tol: tol, MaxIters: 20000})
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm LOBPCG took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}
