package eigen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// LanczosOptions configures the Lanczos solver.
type LanczosOptions struct {
	// MaxDim bounds the Krylov subspace dimension (default min(n, 200)).
	MaxDim int
	// Tol is the Ritz-residual convergence threshold (default 1e-8).
	Tol  float64
	Seed uint64
}

// LanczosResult reports the computed dominant eigenpairs.
type LanczosResult struct {
	Values     []float64     // Ritz values of D⁻¹A (descending, trivial pair deflated)
	Vectors    *linalg.Dense // n×k Ritz vectors, D-orthonormal
	Iterations int           // Lanczos steps performed
	Residual   float64       // max Ritz residual at exit
}

// Lanczos computes the k dominant non-degenerate eigenpairs of the
// transition matrix D⁻¹A with the Lanczos process on the symmetric
// similar operator D^{1/2}(D⁻¹A)D^{-1/2} expressed through D-inner
// products, with full reorthogonalization (robust, and cheap at the
// subspace sizes drawing needs). Lanczos converges in far fewer operator
// applications than power iteration, making it the strongest full-graph
// spectral baseline for Figure 1 and the natural "modern eigensolver"
// target of §4.5.3.
func Lanczos(g *graph.CSR, k int, opt LanczosOptions) LanczosResult {
	n := g.NumV
	if opt.MaxDim <= 0 {
		opt.MaxDim = 200
	}
	if opt.MaxDim > n {
		opt.MaxDim = n
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	deg := g.WeightedDegrees()

	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dNormalize(ones, deg)

	// Krylov basis (D-orthonormal), tridiagonal coefficients.
	basis := make([][]float64, 0, opt.MaxDim)
	var alphas, betas []float64

	// Start vector: random, deflated against the trivial eigenvector.
	state := opt.Seed*0x9e3779b97f4a7c15 + 99
	v := make([]float64, n)
	for i := range v {
		state = state*2862933555777941757 + 3037000493
		v[i] = float64(state>>11)/(1<<53) - 0.5
	}
	dProjectOut(v, [][]float64{ones}, deg)
	dNormalize(v, deg)
	basis = append(basis, append([]float64(nil), v...))

	w := make([]float64, n)
	res := LanczosResult{}
	for j := 0; j < opt.MaxDim; j++ {
		res.Iterations = j + 1
		// w = Op(v_j): the walk operator under the D-inner product is
		// self-adjoint, so plain Lanczos applies.
		linalg.WalkMulVec(g, deg, basis[j], w)
		// Deflate the trivial direction (eigenvalue 1 would dominate).
		c := linalg.DDot(ones, deg, w)
		linalg.Axpy(-c, ones, w)
		alpha := linalg.DDot(basis[j], deg, w)
		alphas = append(alphas, alpha)
		linalg.Axpy(-alpha, basis[j], w)
		if j > 0 {
			linalg.Axpy(-betas[j-1], basis[j-1], w)
		}
		// Full reorthogonalization against the entire basis.
		for _, b := range basis {
			cb := linalg.DDot(b, deg, w)
			if cb != 0 {
				linalg.Axpy(-cb, b, w)
			}
		}
		beta := math.Sqrt(linalg.DDot(w, deg, w))
		// Solve the tridiagonal Ritz problem every few steps to check
		// convergence of the wanted pairs.
		if (j+1)%5 == 0 || beta < 1e-14 || j == opt.MaxDim-1 {
			vals, vecs, err := tridiagEig(alphas, betas)
			if err == nil && len(vals) >= k {
				worst := 0.0
				for t := 0; t < k; t++ {
					idx := len(vals) - 1 - t // descending
					// Ritz residual: |beta * last component|.
					r := math.Abs(beta * vecs.At(len(alphas)-1, idx))
					if r > worst {
						worst = r
					}
				}
				res.Residual = worst
				if worst < opt.Tol || beta < 1e-14 {
					res.Values, res.Vectors = ritzVectors(basis, vals, vecs, k, n)
					return res
				}
			}
		}
		if beta < 1e-14 {
			break
		}
		betas = append(betas, beta)
		linalg.Scale(1/beta, w)
		basis = append(basis, append([]float64(nil), w...))
	}
	vals, vecs, err := tridiagEig(alphas, betas)
	if err != nil || len(vals) == 0 {
		res.Vectors = linalg.NewDense(n, 0)
		return res
	}
	if k > len(vals) {
		k = len(vals)
	}
	res.Values, res.Vectors = ritzVectors(basis, vals, vecs, k, n)
	return res
}

// ritzVectors assembles the top-k Ritz vectors y = V·s from the Lanczos
// basis and the tridiagonal eigenvectors.
func ritzVectors(basis [][]float64, vals []float64, vecs *linalg.Dense, k, n int) ([]float64, *linalg.Dense) {
	m := len(vals)
	if k > m {
		k = m
	}
	outVals := make([]float64, k)
	out := linalg.NewDense(n, k)
	for t := 0; t < k; t++ {
		idx := m - 1 - t
		outVals[t] = vals[idx]
		dst := out.Col(t)
		for c := 0; c < m && c < len(basis); c++ {
			f := vecs.At(c, idx)
			if f == 0 {
				continue
			}
			b := basis[c]
			for r := 0; r < n; r++ {
				dst[r] += f * b[r]
			}
		}
	}
	return outVals, out
}

// tridiagEig solves the symmetric tridiagonal eigenproblem with the dense
// Jacobi solver (subspace dimensions here are ≤ a few hundred).
func tridiagEig(alphas, betas []float64) ([]float64, *linalg.Dense, error) {
	m := len(alphas)
	t := linalg.NewDense(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alphas[i])
		if i < len(betas) && i+1 < m {
			t.Set(i, i+1, betas[i])
			t.Set(i+1, i, betas[i])
		}
	}
	return SymEig(t)
}
