package eigen

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestSubspaceMatchesDenseEigen(t *testing.T) {
	g := gen.Grid2D(6, 5)
	n := g.NumV
	deg := g.WeightedDegrees()
	// Dense reference on the symmetric similar matrix.
	sym := linalg.NewDense(n, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			sym.Set(v, int(u), 1/math.Sqrt(deg[v]*deg[u]))
		}
	}
	vals, _, err := SymEig(sym)
	if err != nil {
		t.Fatal(err)
	}
	res := SubspaceIterate(g, 2, SubspaceOptions{Seed: 1, MaxIters: 5000, Tol: 1e-10})
	if math.Abs(res.Values[0]-vals[n-2]) > 1e-6 {
		t.Fatalf("λ1 = %g, dense %g", res.Values[0], vals[n-2])
	}
	if math.Abs(res.Values[1]-vals[n-3]) > 1e-5 {
		t.Fatalf("λ2 = %g, dense %g", res.Values[1], vals[n-3])
	}
	if res.Residual > 1e-6 {
		t.Fatalf("residual %g", res.Residual)
	}
}

func TestSubspaceVectorsDOrthonormal(t *testing.T) {
	g := gen.PlateWithHoles(20, 20)
	deg := g.WeightedDegrees()
	res := SubspaceIterate(g, 3, SubspaceOptions{Seed: 2, MaxIters: 3000, Tol: 1e-8})
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			d := linalg.DDot(res.Vectors.Col(i), deg, res.Vectors.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-6 {
				t.Fatalf("block not D-orthonormal at (%d,%d): %g", i, j, d)
			}
		}
	}
	// Values descending.
	for i := 1; i < 3; i++ {
		if res.Values[i] > res.Values[i-1]+1e-9 {
			t.Fatalf("Ritz values not descending: %v", res.Values)
		}
	}
}

func TestHDESeedCutsIterations(t *testing.T) {
	// §4.5.3: an HDE-style seed must converge in far fewer iterations than
	// a random start. We emulate the seed with WalkPower output perturbed?
	// No — use two SubspaceIterate runs: one seeded with a coarse solution
	// (few power iterations), one cold.
	g := gen.PlateWithHoles(25, 25)
	warmSeed := WalkPower(g, 2, PowerOptions{Seed: 7, MaxIters: 120, Tol: 0})
	const tol = 1e-5
	warm := SubspaceIterate(g, 2, SubspaceOptions{Seed: 3, MaxIters: 4000, Tol: tol, Init: warmSeed.Vectors})
	cold := SubspaceIterate(g, 2, SubspaceOptions{Seed: 3, MaxIters: 4000, Tol: tol})
	if warm.Residual > tol && cold.Residual <= tol {
		t.Fatalf("warm start failed to converge (res %g) while cold did", warm.Residual)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestSubspaceZeroInitColumnsRandomized(t *testing.T) {
	// An Init with fewer columns than k must not leave zero columns.
	g := gen.Grid2D(10, 10)
	seed := WalkPower(g, 1, PowerOptions{Seed: 4, MaxIters: 50})
	res := SubspaceIterate(g, 3, SubspaceOptions{Seed: 5, MaxIters: 200, Init: seed.Vectors})
	deg := g.WeightedDegrees()
	for j := 0; j < 3; j++ {
		if linalg.DDot(res.Vectors.Col(j), deg, res.Vectors.Col(j)) < 0.5 {
			t.Fatalf("column %d degenerate", j)
		}
	}
}
