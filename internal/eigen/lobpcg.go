package eigen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// LOBPCGOptions configures the LOBPCG solver.
type LOBPCGOptions struct {
	MaxIters int     // outer iterations (default 500)
	Tol      float64 // max residual D-norm for convergence (default 1e-6)
	Seed     uint64
	// Init seeds the block with its first k columns (the §4.5.3 use:
	// "ParHDE could be used as a preprocessing step for modern
	// eigensolvers such as LOBPCG [29]"). nil starts randomly.
	Init *linalg.Dense
}

// LOBPCGResult reports the computed eigenpairs.
type LOBPCGResult struct {
	Values     []float64     // eigenvalues of D⁻¹A, descending
	Vectors    *linalg.Dense // n×k, D-orthonormal
	Iterations int
	Residual   float64
}

// LOBPCG computes the k dominant non-degenerate eigenpairs of the
// transition matrix D⁻¹A with the Locally Optimal Block Preconditioned
// Conjugate Gradient method of Knyazev — the exact solver the paper's
// §4.5.3 proposes seeding with ParHDE. Each iteration performs a
// Rayleigh-Ritz extraction over the 3k-dimensional space
// span{X, R, P}: the current block, its residuals, and the previous
// search directions. No preconditioner is applied (T = I), which is the
// "locally optimal block CG" special case; the structure still converges
// far faster than plain power/subspace iteration on clustered spectra.
//
// The operator is B = (I + D⁻¹A)/2 under the D-inner product (self-
// adjoint, spectrum in [0, 1]), with the trivial eigenvector deflated.
// Reported Values are mapped back to eigenvalues of D⁻¹A (λ = 2µ − 1).
func LOBPCG(g *graph.CSR, k int, opt LOBPCGOptions) LOBPCGResult {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	n := g.NumV
	deg := g.WeightedDegrees()
	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dNormalize(ones, deg)

	apply := func(dst, src []float64) {
		linalg.WalkMulVec(g, deg, src, dst)
		linalg.Axpy(1, src, dst)
		linalg.Scale(0.5, dst)
		c := linalg.DDot(ones, deg, dst)
		linalg.Axpy(-c, ones, dst)
	}

	// Current block X, previous directions P, residuals R.
	x := linalg.NewDense(n, k)
	if opt.Init != nil {
		for j := 0; j < k && j < opt.Init.Cols; j++ {
			copy(x.Col(j), opt.Init.Col(j))
		}
	}
	state := opt.Seed*0x9e3779b97f4a7c15 + 7
	for j := 0; j < k; j++ {
		col := x.Col(j)
		zero := true
		for _, v := range col {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			for i := range col {
				state = state*2862933555777941757 + 3037000493
				col[i] = float64(state>>11)/(1<<53) - 0.5
			}
		}
	}
	dOrthonormalizeBlock(x, ones, deg)

	ax := linalg.NewDense(n, k)
	for j := 0; j < k; j++ {
		apply(ax.Col(j), x.Col(j))
	}
	var p *linalg.Dense // previous directions (nil on first iteration)
	res := LOBPCGResult{Values: make([]float64, k)}
	lambda := make([]float64, k)

	for it := 0; it < opt.MaxIters; it++ {
		res.Iterations = it + 1
		// Rayleigh quotients and residuals R = A·X − X·Λ.
		r := linalg.NewDense(n, k)
		worst := 0.0
		for j := 0; j < k; j++ {
			lambda[j] = linalg.DDot(x.Col(j), deg, ax.Col(j))
			linalg.CopyVec(r.Col(j), ax.Col(j))
			linalg.Axpy(-lambda[j], x.Col(j), r.Col(j))
			rn := math.Sqrt(linalg.DDot(r.Col(j), deg, r.Col(j)))
			if rn > worst {
				worst = rn
			}
		}
		res.Residual = worst
		if worst < opt.Tol {
			break
		}
		// Assemble the trial space [X | R | P], D-orthonormalized.
		cols := 2 * k
		if p != nil {
			cols = 3 * k
		}
		v := linalg.NewDense(n, cols)
		for j := 0; j < k; j++ {
			copy(v.Col(j), x.Col(j))
			copy(v.Col(k+j), r.Col(j))
			if p != nil {
				copy(v.Col(2*k+j), p.Col(j))
			}
		}
		dOrthonormalizeBlock(v, ones, deg)
		// Drop near-null columns produced by orthogonalization (e.g. P
		// nearly parallel to X late in convergence).
		keep := make([]int, 0, cols)
		for j := 0; j < cols; j++ {
			if linalg.DDot(v.Col(j), deg, v.Col(j)) > 0.5 {
				keep = append(keep, j)
			}
		}
		if len(keep) < k {
			break
		}
		if len(keep) < cols {
			v = v.DropColumns(keep)
			cols = len(keep)
		}
		// Projected operator H = Vᵀ D (A·V) and Rayleigh-Ritz.
		av := linalg.NewDense(n, cols)
		for j := 0; j < cols; j++ {
			apply(av.Col(j), v.Col(j))
		}
		h := linalg.NewDense(cols, cols)
		for j := 0; j < cols; j++ {
			for i := 0; i < cols; i++ {
				h.Set(i, j, linalg.DDot(v.Col(i), deg, av.Col(j)))
			}
		}
		for i := 0; i < cols; i++ {
			for j := i + 1; j < cols; j++ {
				avg := (h.At(i, j) + h.At(j, i)) / 2
				h.Set(i, j, avg)
				h.Set(j, i, avg)
			}
		}
		vals, vecs, err := SymEig(h)
		if err != nil {
			break
		}
		// New block: top-k Ritz vectors; new P: the R/P-component of the
		// update (Ritz vector minus its X-expansion), per Knyazev.
		newX := linalg.NewDense(n, k)
		newAX := linalg.NewDense(n, k)
		newP := linalg.NewDense(n, k)
		for t := 0; t < k; t++ {
			idx := cols - 1 - t
			xd := newX.Col(t)
			axd := newAX.Col(t)
			pd := newP.Col(t)
			for c := 0; c < cols; c++ {
				f := vecs.At(c, idx)
				if f == 0 {
					continue
				}
				vc := v.Col(c)
				avc := av.Col(c)
				for rix := 0; rix < n; rix++ {
					xd[rix] += f * vc[rix]
					axd[rix] += f * avc[rix]
				}
				if c >= k { // the R/P components form the next direction
					for rix := 0; rix < n; rix++ {
						pd[rix] += f * vc[rix]
					}
				}
			}
		}
		x, ax, p = newX, newAX, newP
		_ = vals // Ritz values recomputed from Rayleigh quotients next round
	}
	// Final Rayleigh quotients, mapped back to D⁻¹A's spectrum.
	dOrthonormalizeBlock(x, ones, deg)
	tmp := make([]float64, n)
	for j := 0; j < k; j++ {
		linalg.WalkMulVec(g, deg, x.Col(j), tmp)
		res.Values[j] = linalg.DDot(x.Col(j), deg, tmp)
	}
	res.Vectors = x
	return res
}
