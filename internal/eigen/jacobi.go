// Package eigen provides the two eigensolvers the reproduction needs: a
// cyclic Jacobi method for the tiny s×s symmetric matrix at the end of the
// HDE pipeline (the paper uses the Eigen library here; the step is
// negligible-time either way), and a deflated power iteration over the
// transition matrix D⁻¹A used for the full-graph spectral baseline of
// Figure 1 and the preprocessing extension of §4.5.3.
package eigen

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SymEig computes the full eigendecomposition of the symmetric matrix a
// (s×s, dense) with the cyclic Jacobi method. It returns the eigenvalues
// in ascending order and the matching eigenvectors as the columns of an
// s×s matrix. a is not modified. Jacobi is unconditionally stable and,
// for the s ≤ 100 matrices HDE produces, its O(s³) sweeps are
// negligible next to the O(sm) traversal work.
func SymEig(a *linalg.Dense) (vals []float64, vecs *linalg.Dense, err error) {
	s := a.Rows
	if a.Cols != s {
		return nil, nil, fmt.Errorf("eigen: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	// Verify symmetry within roundoff; callers build a as SᵀLS which is
	// symmetric up to floating-point noise, so symmetrize silently below
	// a small relative tolerance and reject anything worse.
	var scale float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	m := a.Clone()
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			diff := math.Abs(m.At(i, j) - m.At(j, i))
			if diff > 1e-8*math.Max(scale, 1) {
				return nil, nil, fmt.Errorf("eigen: matrix asymmetric at (%d,%d): |%g - %g|", i, j, m.At(i, j), m.At(j, i))
			}
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	v := linalg.NewDense(s, s)
	for i := 0; i < s; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off <= 1e-14*math.Max(scale, 1) {
			break
		}
		for p := 0; p < s-1; p++ {
			for q := p + 1; q < s; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rotate(m, v, p, q, c, sn)
			}
		}
	}
	vals = make([]float64, s)
	for i := 0; i < s; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns in lockstep.
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < s; i++ {
		for j := i; j > 0 && vals[order[j]] < vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sortedVals := make([]float64, s)
	sortedVecs := linalg.NewDense(s, s)
	for k, idx := range order {
		sortedVals[k] = vals[idx]
		copy(sortedVecs.Col(k), v.Col(idx))
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to m (two-sided) and
// accumulates it into v (one-sided).
func rotate(m, v *linalg.Dense, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m.At(p, i), m.At(q, i)
		m.Set(p, i, c*mpi-s*mqi)
		m.Set(q, i, s*mpi+c*mqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *linalg.Dense) float64 {
	var sum float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				sum += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(sum)
}

// BottomK returns the k eigenvectors with smallest eigenvalues as an s×k
// matrix, with their eigenvalues. For Z = SᵀLS (a projected Laplacian
// with the degenerate direction removed), these are the drawing axes: the
// minimizers of the Hall energy within the subspace.
func BottomK(a *linalg.Dense, k int) ([]float64, *linalg.Dense, error) {
	vals, vecs, err := SymEig(a)
	if err != nil {
		return nil, nil, err
	}
	if k > len(vals) {
		k = len(vals)
	}
	out := linalg.NewDense(a.Rows, k)
	for j := 0; j < k; j++ {
		copy(out.Col(j), vecs.Col(j))
	}
	return vals[:k], out, nil
}

// TopK returns the k eigenvectors with largest eigenvalues as an s×k
// matrix, with their eigenvalues (descending). PHDE and PivotMDS use the
// top two eigenvectors of the PCA covariance CᵀC.
func TopK(a *linalg.Dense, k int) ([]float64, *linalg.Dense, error) {
	vals, vecs, err := SymEig(a)
	if err != nil {
		return nil, nil, err
	}
	s := len(vals)
	if k > s {
		k = s
	}
	outVals := make([]float64, k)
	out := linalg.NewDense(a.Rows, k)
	for j := 0; j < k; j++ {
		outVals[j] = vals[s-1-j]
		copy(out.Col(j), vecs.Col(s-1-j))
	}
	return outVals, out, nil
}
