package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestSymEigDiagonal(t *testing.T) {
	a := linalg.NewDense(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 1)
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvector of -2 is e1 (up to sign).
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-12 {
		t.Fatalf("vecs col 0 = %v", vecs.Col(0))
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := linalg.NewDense(2, 2)
	copy(a.Data, []float64{2, 1, 1, 2})
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSymEigRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := SymEig(linalg.NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	a := linalg.NewDense(2, 2)
	copy(a.Data, []float64{1, 5, -5, 1})
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

// residualCheck verifies A·v = λ·v for every pair and that the
// eigenvector basis is orthonormal and reproduces the trace.
func residualCheck(t *testing.T, a *linalg.Dense, vals []float64, vecs *linalg.Dense) {
	t.Helper()
	s := a.Rows
	var scale float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		scale = 1
	}
	for k := 0; k < s; k++ {
		v := vecs.Col(k)
		for i := 0; i < s; i++ {
			var av float64
			for j := 0; j < s; j++ {
				av += a.At(i, j) * v[j]
			}
			if math.Abs(av-vals[k]*v[i]) > 1e-8*scale {
				t.Fatalf("residual at eigpair %d, row %d: %g", k, i, av-vals[k]*v[i])
			}
		}
	}
	for i := 0; i < s; i++ {
		for j := i; j < s; j++ {
			dot := linalg.Dot(vecs.Col(i), vecs.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal at (%d,%d): %g", i, j, dot)
			}
		}
	}
	var trace, sumVals float64
	for i := 0; i < s; i++ {
		trace += a.At(i, i)
	}
	for _, v := range vals {
		sumVals += v
	}
	if math.Abs(trace-sumVals) > 1e-8*(1+math.Abs(trace)) {
		t.Fatalf("trace %g != Σλ %g", trace, sumVals)
	}
}

func TestSymEigRandomProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 2 + r.Intn(20)
		a := linalg.NewDense(s, s)
		for i := 0; i < s; i++ {
			for j := i; j < s; j++ {
				v := r.NormFloat64() * 3
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			return false
		}
		// Ascending order.
		for i := 1; i < s; i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		// Residuals inline (avoid t.Fatalf in quick).
		for k := 0; k < s; k++ {
			v := vecs.Col(k)
			for i := 0; i < s; i++ {
				var av float64
				for j := 0; j < s; j++ {
					av += a.At(i, j) * v[j]
				}
				if math.Abs(av-vals[k]*v[i]) > 1e-7*(1+math.Abs(vals[k])) {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSymEigLaplacianOfPath(t *testing.T) {
	// Path P4 Laplacian eigenvalues: 2−2cos(kπ/4), k=0..3.
	s := 4
	a := linalg.NewDense(s, s)
	for i := 0; i < s; i++ {
		deg := 2.0
		if i == 0 || i == s-1 {
			deg = 1
		}
		a.Set(i, i, deg)
		if i+1 < s {
			a.Set(i, i+1, -1)
			a.Set(i+1, i, -1)
		}
	}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < s; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(s))
		if math.Abs(vals[k]-want) > 1e-10 {
			t.Fatalf("λ_%d = %g, want %g", k, vals[k], want)
		}
	}
	residualCheck(t, a, vals, vecs)
}

func TestBottomKTopK(t *testing.T) {
	a := linalg.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, float64(i+1))
	}
	vals, vecs, err := BottomK(a, 2)
	if err != nil || len(vals) != 2 || vecs.Cols != 2 {
		t.Fatalf("BottomK: %v %v", vals, err)
	}
	if vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("BottomK vals = %v", vals)
	}
	tv, tm, err := TopK(a, 2)
	if err != nil || tv[0] != 4 || tv[1] != 3 || tm.Cols != 2 {
		t.Fatalf("TopK vals = %v, err %v", tv, err)
	}
	// k larger than s clamps.
	if v, _, _ := TopK(a, 10); len(v) != 4 {
		t.Fatalf("TopK clamp: %v", v)
	}
}

func TestWalkPowerGridMatchesDenseEigen(t *testing.T) {
	// On a small graph, the power-iteration eigenvalues of D⁻¹A must
	// match a dense solve of the similar symmetric matrix
	// D^{-1/2} A D^{-1/2}.
	g := gen.Grid2D(5, 4)
	n := g.NumV
	deg := g.WeightedDegrees()
	sym := linalg.NewDense(n, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			sym.Set(v, int(u), 1/math.Sqrt(deg[v]*deg[u]))
		}
	}
	vals, _, err := SymEig(sym)
	if err != nil {
		t.Fatal(err)
	}
	// Largest is the trivial 1; next two are what WalkPower should find.
	want1, want2 := vals[n-2], vals[n-3]
	res := WalkPower(g, 2, PowerOptions{Seed: 3, MaxIters: 20000, Tol: 1e-12})
	if math.Abs(res.Values[0]-want1) > 1e-6 {
		t.Fatalf("power λ1 = %g, dense %g", res.Values[0], want1)
	}
	if math.Abs(res.Values[1]-want2) > 1e-5 {
		t.Fatalf("power λ2 = %g, dense %g", res.Values[1], want2)
	}
}

func TestWalkPowerVectorsAreDOrthogonal(t *testing.T) {
	g := gen.PlateWithHoles(20, 20)
	deg := g.WeightedDegrees()
	res := WalkPower(g, 2, PowerOptions{Seed: 1, MaxIters: 20000, Tol: 1e-10})
	v0, v1 := res.Vectors.Col(0), res.Vectors.Col(1)
	ones := make([]float64, g.NumV)
	linalg.Fill(ones, 1)
	if d := linalg.DDot(v0, deg, ones); math.Abs(d) > 1e-5 {
		t.Fatalf("v0 not deflated against 1: %g", d)
	}
	if d := linalg.DDot(v0, deg, v1); math.Abs(d) > 1e-5 {
		t.Fatalf("v0, v1 not D-orthogonal: %g", d)
	}
	// Unit D-norms.
	if d := linalg.DDot(v0, deg, v0); math.Abs(d-1) > 1e-6 {
		t.Fatalf("v0 D-norm %g", d)
	}
	// Residual ‖Wv − λv‖ small.
	y := make([]float64, g.NumV)
	linalg.WalkMulVec(g, deg, v0, y)
	linalg.Axpy(-res.Values[0], v0, y)
	if r := math.Sqrt(linalg.DDot(y, deg, y)); r > 1e-4 {
		t.Fatalf("eigen residual %g", r)
	}
}

func TestWalkPowerDeterministic(t *testing.T) {
	g := gen.Grid2D(8, 8)
	a := WalkPower(g, 1, PowerOptions{Seed: 5})
	b := WalkPower(g, 1, PowerOptions{Seed: 5})
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatal("same seed, different power iteration result")
		}
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	g := gen.Grid2D(6, 5)
	n := g.NumV
	deg := g.WeightedDegrees()
	sym := linalg.NewDense(n, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			sym.Set(v, int(u), 1/math.Sqrt(deg[v]*deg[u]))
		}
	}
	vals, _, err := SymEig(sym)
	if err != nil {
		t.Fatal(err)
	}
	res := Lanczos(g, 2, LanczosOptions{Seed: 1, Tol: 1e-10})
	if math.Abs(res.Values[0]-vals[n-2]) > 1e-7 {
		t.Fatalf("Lanczos λ1 = %g, dense %g", res.Values[0], vals[n-2])
	}
	if math.Abs(res.Values[1]-vals[n-3]) > 1e-7 {
		t.Fatalf("Lanczos λ2 = %g, dense %g", res.Values[1], vals[n-3])
	}
}

func TestLanczosResidualsAndOrthogonality(t *testing.T) {
	g := gen.PlateWithHoles(20, 20)
	deg := g.WeightedDegrees()
	res := Lanczos(g, 2, LanczosOptions{Seed: 2, Tol: 1e-9})
	y := make([]float64, g.NumV)
	for j := 0; j < 2; j++ {
		v := res.Vectors.Col(j)
		linalg.WalkMulVec(g, deg, v, y)
		lambda := linalg.DDot(v, deg, y) / linalg.DDot(v, deg, v)
		linalg.Axpy(-lambda, v, y)
		// Residual orthogonal to trivial direction before measuring.
		ones := make([]float64, g.NumV)
		linalg.Fill(ones, 1)
		c := linalg.DDot(ones, deg, y) / linalg.DDot(ones, deg, ones)
		linalg.Axpy(-c, ones, y)
		if r := math.Sqrt(linalg.DDot(y, deg, y)); r > 1e-6 {
			t.Fatalf("Ritz pair %d residual %g", j, r)
		}
	}
	if d := linalg.DDot(res.Vectors.Col(0), deg, res.Vectors.Col(1)); math.Abs(d) > 1e-7 {
		t.Fatalf("Ritz vectors not D-orthogonal: %g", d)
	}
}

func TestLanczosFarFewerOpsThanPower(t *testing.T) {
	// The point of the stronger baseline: Lanczos needs dramatically fewer
	// operator applications than power iteration for the same accuracy.
	g := gen.PlateWithHoles(20, 20)
	lz := Lanczos(g, 2, LanczosOptions{Seed: 3, Tol: 1e-8})
	pw := WalkPower(g, 2, PowerOptions{Seed: 3, MaxIters: 100000, Tol: 1e-10})
	powerOps := pw.Iterations[0] + pw.Iterations[1]
	if lz.Iterations*5 >= powerOps {
		t.Fatalf("Lanczos used %d ops vs power %d — expected ≥5x fewer", lz.Iterations, powerOps)
	}
	// And they agree on the eigenvalues.
	if math.Abs(lz.Values[0]-pw.Values[0]) > 1e-5 {
		t.Fatalf("λ1 disagreement: lanczos %g power %g", lz.Values[0], pw.Values[0])
	}
}

func TestSymEigRepeatedEigenvalues(t *testing.T) {
	// 2·I on a 4x4: all eigenvalues equal; any orthonormal basis is valid.
	a := linalg.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, 2)
	}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("vals %v", vals)
		}
	}
	residualCheck(t, a, vals, vecs)

	// A block with an exactly repeated pair: diag(1, 3, 3, 7) conjugated by
	// a rotation in the middle plane stays diag — verify residuals anyway.
	b := linalg.NewDense(3, 3)
	copy(b.Data, []float64{2, 1, 0, 1, 2, 0, 0, 0, 3})
	// eigenvalues 1, 3, 3 (the 2x2 block has 1 and 3; plus explicit 3).
	vals, vecs, err = SymEig(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals %v, want %v", vals, want)
		}
	}
	residualCheck(t, b, vals, vecs)
}

func TestSymEigZeroAndOneByOne(t *testing.T) {
	z := linalg.NewDense(2, 2)
	vals, vecs, err := SymEig(z)
	if err != nil || vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("zero matrix: %v %v", vals, err)
	}
	residualCheck(t, z, vals, vecs)
	one := linalg.NewDense(1, 1)
	one.Set(0, 0, -5)
	vals, _, err = SymEig(one)
	if err != nil || vals[0] != -5 {
		t.Fatalf("1x1: %v %v", vals, err)
	}
}
