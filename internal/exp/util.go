package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// Config controls harness runs.
type Config struct {
	// Factor scales dataset sizes (1 = laptop defaults, 4 ≈ 4× edges…).
	Factor int
	// Reps is how many times each timed region runs; the minimum is
	// reported, the usual practice for wall-clock microbenchmarks.
	Reps int
	// Subspace overrides s where an experiment doesn't pin it (0 = paper
	// default of 10).
	Subspace int
	// OutDir receives PNG drawings for the figure experiments ("" = skip
	// file output, metrics only).
	OutDir string
	// MaxThreads caps the GOMAXPROCS sweep of the scaling experiments
	// (0 = runtime.NumCPU()).
	MaxThreads int
}

func (c Config) withDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 1
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Subspace <= 0 {
		c.Subspace = 10
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = runtime.NumCPU()
	}
	return c
}

// minTime runs f reps times and returns the fastest wall time.
func minTime(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// withThreads runs f under the given GOMAXPROCS, restoring the previous
// setting afterwards — the harness's version of the paper's core-count
// sweep (OpenMP thread pinning has no Go equivalent; the Go scheduler
// assigns goroutines to the P cores granted here).
func withThreads(p int, f func()) {
	prev := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(prev)
	f()
}

// threadSweep returns the core counts to sweep: 1, 2, 4, … up to max,
// always including max itself (the paper uses 1, 4, 7, 14, 28 on its
// 28-core node).
func threadSweep(max int) []int {
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	out = append(out, max)
	if len(out) >= 2 && out[len(out)-2] == max {
		out = out[:len(out)-1]
	}
	return out
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// ratio guards against divide-by-zero when a phase is too fast to time.
func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
