// Package exp contains the evaluation harness: one runner per table and
// figure of the paper, printing the same rows/series the paper reports.
// Graphs are the synthetic analogues documented in DESIGN.md, scaled by a
// factor so the whole evaluation fits the host (the paper's originals are
// billion-edge SuiteSparse/GAP graphs).
package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// NamedGraph pairs a dataset with its Table 2 name (analogue of the
// original paper graph of the same position).
type NamedGraph struct {
	Name     string
	Analogue string // the paper graph this stands in for
	G        *graph.CSR
}

// scaled multiplies a base dimension by the square root of factor so that
// edge counts scale roughly linearly with factor.
func scaled(base, factor int) int {
	if factor <= 1 {
		return base
	}
	// integer sqrt scaling
	f := 1
	for f*f < factor {
		f++
	}
	return base * f
}

// LargeCollection returns analogues of the paper's five large graphs
// (urand27, kron27, sk-2005, twitter7, road_usa) at a laptop scale
// multiplied by factor.
func LargeCollection(factor int) []NamedGraph {
	sc := 0
	for f := 1; f < factor; f *= 2 {
		sc++
	}
	return []NamedGraph{
		{"urand", "urand27", gen.Urand(14+sc, 16, 101)},
		{"kron", "kron27", gen.Kron(14+sc, 16, 102)},
		{"web", "sk-2005", gen.WebGraph(scaled(40000, factor), 24, 103)},
		{"twitter", "twitter7", gen.ChungLu(scaled(30000, factor), 24, 2.1, 104)},
		{"road", "road_usa", gen.Road(scaled(220, factor), scaled(220, factor), 105)},
	}
}

// SmallCollection returns analogues of the paper's five smaller graphs
// (cage14, CurlCurl_4, kkt_power, ecology1, pa2010).
func SmallCollection(factor int) []NamedGraph {
	return []NamedGraph{
		{"cage", "cage14", gen.Mesh3D(scaled(24, factor), scaled(24, factor), scaled(24, factor))},
		{"curlcurl", "CurlCurl_4", gen.Mesh3D(scaled(32, factor), scaled(32, factor), scaled(16, factor))},
		{"kkt", "kkt_power", gen.PowerGrid(scaled(96, factor), scaled(96, factor), 106)},
		{"ecology", "ecology1", gen.Grid2D(scaled(128, factor), scaled(128, factor))},
		{"pa2010", "pa2010", gen.CountyMesh(scaled(100, factor), scaled(100, factor), 107)},
	}
}

// Collection returns the full Table 2 lineup: large graphs first, in
// decreasing edge count like the paper.
func Collection(factor int) []NamedGraph {
	return append(LargeCollection(factor), SmallCollection(factor)...)
}

// Describe formats a one-line dataset summary.
func (ng NamedGraph) Describe() string {
	return fmt.Sprintf("%-9s (for %-10s) m=%-9d n=%-8d", ng.Name, ng.Analogue, ng.G.NumEdges(), ng.G.NumV)
}
