package exp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/workspace"
)

// ScalingEntry is one worker-count point of a scaling sweep: the fastest
// wall time over the reps, its per-phase split, the speedups relative to
// the single-worker point, and a checksum of the produced coordinates.
type ScalingEntry struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"` // minimum over Reps runs
	// Speedup is t(1 worker) / t(Workers); Efficiency is Speedup/Workers
	// (the parallel efficiency the paper's Figure 4 curves chart).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Phases is the per-phase seconds of the fastest run; PhaseSpeedup is
	// each phase's speedup against the 1-worker entry (Table 5 style).
	Phases       map[string]float64 `json:"phases"`
	PhaseSpeedup map[string]float64 `json:"phaseSpeedup"`
	// Checksum is the SHA-256 of the output coordinates' raw bits. All
	// entries of one graph must agree — the layout is bitwise
	// deterministic across worker budgets by construction, and the
	// unpacked ablation run of each point must reproduce it too.
	Checksum string `json:"checksum"`
	// UnpackedSeconds is the same point laid out with core.Options.NoPack
	// (flat-arena MGS, two-pass TripleProd, streaming AᵀB), and
	// PackedSpeedup = UnpackedSeconds/Seconds — the before/after of the
	// cache-resident packed kernels at this worker count.
	UnpackedSeconds float64 `json:"unpackedSeconds"`
	PackedSpeedup   float64 `json:"packedSpeedup"`
	// BFS direction split of the fastest run: how many levels the
	// traversal phase ran top-down vs bottom-up, and the adjacency
	// entries it actually examined — the per-point record of the
	// direction-optimizing engine's choices.
	BFSTopDownSteps  int   `json:"bfsTopDownSteps"`
	BFSBottomUpSteps int   `json:"bfsBottomUpSteps"`
	BFSScannedEdges  int64 `json:"bfsScannedEdges"`
}

// ScalingGraph is one graph's sweep.
type ScalingGraph struct {
	Graph    string `json:"graph"`
	Analogue string `json:"analogue"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// Deterministic reports whether every sweep point produced
	// bit-identical coordinates.
	Deterministic bool           `json:"deterministic"`
	Entries       []ScalingEntry `json:"entries"`
}

// ScalingReport is the machine-readable record of one scaling sweep,
// written as BENCH_SCALING_<date>.json. It is the repo's Figure 4 /
// Table 5 analogue: per-phase scaling curves over a worker-count sweep,
// with determinism checksums alongside the timings.
type ScalingReport struct {
	Date      string `json:"date"`
	GoVersion string `json:"goVersion"`
	NumCPU    int    `json:"numCPU"`
	Factor    int    `json:"factor"`
	Reps      int    `json:"reps"`
	Subspace  int    `json:"subspace"`
	// Deterministic is the conjunction over all graphs; hdebench -scaling
	// exits nonzero when it is false.
	Deterministic bool           `json:"deterministic"`
	Graphs        []ScalingGraph `json:"graphs"`
}

// scalingGraphs picks the sweep inputs: the skewed kron analogue (the
// graph the paper's headline scaling numbers use) and the high-diameter
// road analogue, the two traversal extremes.
func scalingGraphs(factor int) []NamedGraph {
	var out []NamedGraph
	for _, ng := range LargeCollection(factor) {
		if ng.Name == "kron" || ng.Name == "road" {
			out = append(out, ng)
		}
	}
	return out
}

// Scaling sweeps the worker budget over 1, 2, 4, … cfg.MaxThreads and
// lays out each scaling graph at every point: GOMAXPROCS and
// core.Options.Workers are both set to the point's worker count, one
// workspace is shared across the whole sweep (so the steady state is
// measured, and so any worker-count-dependent arena bug would surface as
// a checksum mismatch), and each point records the fastest of cfg.Reps
// runs plus a coordinates checksum.
func Scaling(cfg Config) (*ScalingReport, error) {
	cfg = cfg.withDefaults()
	rep := &ScalingReport{
		Date:          time.Now().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Factor:        cfg.Factor,
		Reps:          cfg.Reps,
		Subspace:      cfg.Subspace,
		Deterministic: true,
	}
	sweep := threadSweep(cfg.MaxThreads)
	for _, ng := range scalingGraphs(cfg.Factor) {
		sg := ScalingGraph{
			Graph:         ng.Name,
			Analogue:      ng.Analogue,
			Vertices:      ng.G.NumV,
			Edges:         ng.G.NumEdges(),
			Deterministic: true,
		}
		// One workspace serves every sweep point: its reduction arenas are
		// sized by the problem shape only, so reuse across worker counts is
		// exactly the reuse a long-lived job worker sees.
		ws := workspace.New()
		var base *ScalingEntry
		for _, p := range sweep {
			opt := core.Options{
				Subspace:              cfg.Subspace,
				Seed:                  42,
				Workers:               p,
				Workspace:             ws,
				SkipConnectivityCheck: true,
			}
			var entry, flat ScalingEntry
			var err error
			withThreads(p, func() {
				entry, err = scalePoint(ng, opt, cfg.Reps)
				if err == nil {
					// The unpacked ablation shares the workspace and worker
					// count, so the delta is the packed kernels alone.
					optFlat := opt
					optFlat.NoPack = true
					flat, err = scalePoint(ng, optFlat, cfg.Reps)
				}
			})
			if err != nil {
				return nil, fmt.Errorf("scaling: %s at %d workers: %w", ng.Name, p, err)
			}
			entry.UnpackedSeconds = flat.Seconds
			entry.PackedSpeedup = safeDiv(flat.Seconds, entry.Seconds)
			if flat.Checksum != entry.Checksum {
				sg.Deterministic = false
				rep.Deterministic = false
			}
			if base == nil {
				b := entry
				base = &b
			}
			entry.Speedup = safeDiv(base.Seconds, entry.Seconds)
			entry.Efficiency = entry.Speedup / float64(p)
			entry.PhaseSpeedup = map[string]float64{}
			for name, sec := range entry.Phases {
				entry.PhaseSpeedup[name] = safeDiv(base.Phases[name], sec)
			}
			if entry.Checksum != base.Checksum {
				sg.Deterministic = false
				rep.Deterministic = false
			}
			sg.Entries = append(sg.Entries, entry)
		}
		rep.Graphs = append(rep.Graphs, sg)
	}
	return rep, nil
}

// scalePoint measures one (graph, worker count) sweep point.
func scalePoint(ng NamedGraph, opt core.Options, reps int) (ScalingEntry, error) {
	var best *core.Report
	var sum string
	for r := 0; r < reps; r++ {
		lay, res, err := core.ParHDE(ng.G, opt)
		if err != nil {
			return ScalingEntry{}, err
		}
		s := coordsChecksum(lay.Coords.Data)
		if sum == "" {
			sum = s
		} else if s != sum {
			return ScalingEntry{}, fmt.Errorf("nondeterministic repeat: %s then %s", sum, s)
		}
		if best == nil || res.Breakdown.Total < best.Breakdown.Total {
			best = res
		}
	}
	phases := map[string]float64{}
	for _, p := range best.Breakdown.Phases() {
		phases[p.Name] = p.D.Seconds()
	}
	bt := best.BFSTotals()
	return ScalingEntry{
		Workers:          best.Workers,
		Seconds:          best.Breakdown.Total.Seconds(),
		Phases:           phases,
		Checksum:         sum,
		BFSTopDownSteps:  bt.TopDownSteps,
		BFSBottomUpSteps: bt.BottomUpSteps,
		BFSScannedEdges:  bt.ScannedEdges,
	}, nil
}

// coordsChecksum hashes the raw float64 bits of the coordinates, so any
// single-ulp divergence between worker budgets is caught.
func coordsChecksum(coords []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range coords {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// safeDiv returns a/b, or 0 when b is zero (a phase too fast to time).
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ScalingExperiment prints the sweep as a Figure 4-style table and, when
// cfg.OutDir is set, writes the JSON record alongside.
func ScalingExperiment(w io.Writer, cfg Config) error {
	rep, err := Scaling(cfg)
	if err != nil {
		return err
	}
	fprintf(w, "Scaling: worker sweep %v (NumCPU=%d), fastest of %d reps\n",
		threadSweep(cfg.withDefaults().MaxThreads), rep.NumCPU, rep.Reps)
	fprintf(w, "%-10s %7s %10s %8s %6s %8s %8s %8s %8s  %s\n",
		"graph", "workers", "seconds", "speedup", "eff", "packed", "bfs", "gemm", "dortho", "deterministic")
	for _, sg := range rep.Graphs {
		for _, e := range sg.Entries {
			fprintf(w, "%-10s %7d %10.4f %7.2fx %5.2f %7.2fx %7.2fx %7.2fx %7.2fx  %v\n",
				sg.Graph, e.Workers, e.Seconds, e.Speedup, e.Efficiency,
				e.PackedSpeedup, e.PhaseSpeedup["bfs_traversal"],
				e.PhaseSpeedup["gemm"], e.PhaseSpeedup["dortho"], sg.Deterministic)
		}
	}
	if !rep.Deterministic {
		return fmt.Errorf("scaling: coordinates differ across worker budgets — determinism regression")
	}
	if cfg.OutDir != "" {
		path, err := WriteScalingJSON(cfg.OutDir, rep)
		if err != nil {
			return err
		}
		fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// WriteScalingJSON writes rep to dir/BENCH_SCALING_<date>.json atomically
// and returns the path.
func WriteScalingJSON(dir string, rep *ScalingReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_SCALING_"+rep.Date+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}
