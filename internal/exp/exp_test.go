package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"sssp", "perm", "refine", "ls", "delta", "alphabeta", "ldd",
		"multilevel", "stress", "fr", "subspace", "partition", "quality", "stream", "memory", "reorder"} {
		if _, ok := Describe(want); !ok {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Fatal("unknown experiment described")
	}
	if err := Run("nope", &bytes.Buffer{}, Config{}); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table2", &buf, Config{Factor: 1, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"urand", "kron", "web", "twitter", "road",
		"cage", "curlcurl", "kkt", "ecology", "pa2010"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table2 missing graph %q:\n%s", name, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("table2 only %d lines", lines)
	}
}

func TestFig8ZoomExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig8", &buf, Config{Factor: 1, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10-hop zoom") {
		t.Fatalf("fig8 output: %s", buf.String())
	}
}

func TestCollectionsConnectedAndOrdered(t *testing.T) {
	large := LargeCollection(1)
	small := SmallCollection(1)
	if len(large) != 5 || len(small) != 5 {
		t.Fatalf("collections %d/%d", len(large), len(small))
	}
	all := Collection(1)
	if len(all) != 10 {
		t.Fatalf("collection size %d", len(all))
	}
	for _, ng := range all {
		if ng.G.NumV < 100 {
			t.Fatalf("%s suspiciously small: %d", ng.Name, ng.G.NumV)
		}
		if ng.Describe() == "" {
			t.Fatal("empty describe")
		}
	}
	// Rough Table 2 ordering: urand/kron the largest by edges.
	if all[0].G.NumEdges() < all[9].G.NumEdges() {
		t.Fatal("collection not roughly ordered by size")
	}
}

func TestScaledAndThreadSweep(t *testing.T) {
	if scaled(100, 1) != 100 || scaled(100, 4) != 200 || scaled(100, 9) != 300 {
		t.Fatalf("scaled wrong: %d %d %d", scaled(100, 1), scaled(100, 4), scaled(100, 9))
	}
	sw := threadSweep(8)
	want := []int{1, 2, 4, 8}
	if len(sw) != len(want) {
		t.Fatalf("sweep %v", sw)
	}
	for i := range want {
		if sw[i] != want[i] {
			t.Fatalf("sweep %v", sw)
		}
	}
	sw = threadSweep(1)
	if len(sw) != 1 || sw[0] != 1 {
		t.Fatalf("sweep(1) = %v", sw)
	}
	sw = threadSweep(6)
	if sw[len(sw)-1] != 6 {
		t.Fatalf("sweep(6) = %v", sw)
	}
}

func TestRatioAndMinTime(t *testing.T) {
	if ratio(time.Second, 0) != 0 {
		t.Fatal("ratio div-by-zero not guarded")
	}
	if r := ratio(2*time.Second, time.Second); r != 2 {
		t.Fatalf("ratio = %g", r)
	}
	calls := 0
	minTime(3, func() { calls++ })
	if calls != 3 {
		t.Fatalf("minTime ran %d times", calls)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Factor != 1 || c.Reps != 3 || c.Subspace != 10 || c.MaxThreads < 1 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestCheapExperimentsSmoke(t *testing.T) {
	// Fast experiments run end-to-end in the test suite; the heavier ones
	// are exercised by cmd/hdebench and the CLI integration tests.
	for _, id := range []string{"stream", "memory", "ldd"} {
		var buf bytes.Buffer
		if err := Run(id, &buf, Config{Factor: 1, Reps: 1}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestQualityExperimentSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("quality", &buf, Config{Factor: 1, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parhde", "random", "dist-corr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quality output missing %q:\n%s", want, out)
		}
	}
}
