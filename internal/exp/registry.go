package exp

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment, writing its table/series to w.
type Runner func(w io.Writer, cfg Config) error

// registry maps experiment ids (as accepted by `hdebench -exp`) to
// runners. Ids follow the paper's table/figure numbering.
var registry = map[string]struct {
	Run  Runner
	Desc string
}{
	"table1":      {Table1, "empirical verification of Table 1 asymptotics (s- and n-sweeps)"},
	"table2":      {Table2, "graph collection sizes after preprocessing"},
	"table3":      {Table3, "ParHDE vs prior parallel implementation, s=10"},
	"table4":      {Table4, "ParHDE times and relative speedup, all graphs"},
	"table5":      {Table5, "PHDE and PivotMDS times and relative speedup"},
	"table6":      {Table6, "k-centers vs random pivots, BFS phase, 30 sources"},
	"table7":      {Table7, "MGS vs CGS D-orthogonalization"},
	"fig1":        {Fig1, "ParHDE vs full spectral drawing of the plate mesh"},
	"fig2":        {Fig2, "adjacency gap distributions (Fibonacci binning)"},
	"fig3":        {Fig3, "phase breakdown: parallel / 1-thread / prior"},
	"fig4":        {Fig4, "scaling of ParHDE and phases across cores"},
	"scaling":     {ScalingExperiment, "worker-budget sweep with per-phase curves and determinism checksums"},
	"fig5":        {Fig5, "s=50 breakdown; BFS and TripleProd internal splits"},
	"fig6":        {Fig6, "PivotMDS and PHDE breakdowns"},
	"fig7":        {Fig7, "random-pivot ParHDE / PHDE / PivotMDS drawings"},
	"fig8":        {Fig8, "zoomed 10-hop neighborhood drawing"},
	"sssp":        {SSSPExperiment, "weighted SSSP vs BFS phase (§4.4)"},
	"perm":        {PermExperiment, "random vertex permutation vs locality order (§4.4)"},
	"refine":      {RefineExperiment, "HDE-seeded refinement vs cold power iteration (§4.5.3)"},
	"ls":          {LSAblation, "fused LS kernel vs explicit-Laplacian SpMM"},
	"delta":       {DeltaSweep, "Δ-stepping bucket-width sensitivity"},
	"multilevel":  {MultilevelExperiment, "multilevel vs single-level ParHDE (§5 future work)"},
	"stress":      {StressExperiment, "HDE vs random seed for stress majorization (§4.5.4)"},
	"fr":          {ForceDirectedExperiment, "ParHDE vs force-directed baseline (§4.2)"},
	"subspace":    {SubspaceExperiment, "HDE-seeded block eigensolver vs cold start (§4.5.3)"},
	"partition":   {PartitionExperiment, "geometric partitioning + KL refinement (§4.5.4)"},
	"alphabeta":   {AlphaBetaExperiment, "direction-optimizing BFS switch-threshold sweep (§3.1)"},
	"reorder":     {ReorderExperiment, "RCM and Hilbert-from-layout locality recovery (§4.4)"},
	"memory":      {MemoryExperiment, "allocation footprint: decoupled vs coupled vs prior"},
	"stream":      {StreamExperiment, "STREAM Triad memory bandwidth (§4.1)"},
	"quality":     {QualityExperiment, "layout-quality metric battery across algorithms"},
	"incremental": {IncrementalExperiment, "warm-start refinement vs cold relayout after edge deltas (dynamic graphs)"},
	"ldd":         {LDDExperiment, "low-diameter decomposition of the road analogue (§5)"},
}

// Names returns all experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment id.
func Describe(name string) (string, bool) {
	e, ok := registry[name]
	if !ok {
		return "", false
	}
	return e.Desc, true
}

// Run executes the named experiment (or every experiment for "all").
func Run(name string, w io.Writer, cfg Config) error {
	if name == "all" {
		for _, id := range Names() {
			fprintf(w, "\n=== %s: %s ===\n", id, registry[id].Desc)
			if err := registry[id].Run(w, cfg); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return e.Run(w, cfg)
}
