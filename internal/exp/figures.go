package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fibbin"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pivot"
	"repro/internal/render"
)

// plate returns the barth5 analogue used by the drawing figures.
func plate(cfg Config) *graph.CSR {
	side := scaled(120, cfg.Factor)
	return gen.PlateWithHoles(side, side)
}

// savePNG writes a drawing when cfg.OutDir is set.
func savePNG(cfg Config, name string, g *graph.CSR, l *core.Layout) (string, error) {
	if cfg.OutDir == "" {
		return "(not written; set -out)", nil
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(cfg.OutDir, name+".png")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := render.Draw(f, g, l, render.Options{Size: 900}); err != nil {
		return "", err
	}
	return path, nil
}

// Fig1 reproduces Figure 1: the barth5 analogue drawn by ParHDE (top) and
// by the dominant eigenvectors of the normalized adjacency matrix
// (bottom), with quality metrics showing HDE approximates the spectral
// reference at a fraction of the cost.
func Fig1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "Figure 1: plate-with-holes (barth5 analogue), n=%d m=%d\n", g.NumV, g.NumEdges())

	start := time.Now()
	hdeLay, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
	if err != nil {
		return err
	}
	tHDE := time.Since(start)

	start = time.Now()
	pw := eigen.WalkPower(g, 2, eigen.PowerOptions{Seed: 1, MaxIters: 5000, Tol: 1e-9})
	spectral := &core.Layout{Coords: pw.Vectors}
	tSpec := time.Since(start)

	start = time.Now()
	lz := eigen.Lanczos(g, 2, eigen.LanczosOptions{Seed: 1, Tol: 1e-9})
	lanczosLay := &core.Layout{Coords: lz.Vectors}
	tLanczos := time.Since(start)

	qH := core.Evaluate(g, hdeLay)
	qS := core.Evaluate(g, spectral)
	dcH := core.DistanceCorrelation(g, hdeLay, 16, 9)
	dcS := core.DistanceCorrelation(g, spectral, 16, 9)
	p1, err := savePNG(cfg, "fig1_parhde", g, hdeLay)
	if err != nil {
		return err
	}
	p2, err := savePNG(cfg, "fig1_spectral", g, spectral)
	if err != nil {
		return err
	}
	fprintf(w, "%-22s %10s %12s %10s %9s   %s\n", "method", "time (s)", "Hall ratio", "edge CV", "dist-corr", "drawing")
	fprintf(w, "%-22s %10.4f %12.5f %10.3f %9.3f   %s\n", "ParHDE (top)", seconds(tHDE), qH.HallRatio, qH.EdgeLengthCV, dcH, p1)
	fprintf(w, "%-22s %10.4f %12.5f %10.3f %9.3f   %s\n", "spectral (bottom)", seconds(tSpec), qS.HallRatio, qS.EdgeLengthCV, dcS, p2)
	qL := core.Evaluate(g, lanczosLay)
	fprintf(w, "%-22s %10.4f %12.5f %10.3f %9.3f   %s\n", "spectral (Lanczos)", seconds(tLanczos), qL.HallRatio, qL.EdgeLengthCV,
		core.DistanceCorrelation(g, lanczosLay, 16, 9), "(not drawn)")
	fprintf(w, "HDE speedup: %.1fx over power iteration, %.1fx over Lanczos\n",
		ratio(tSpec, tHDE), ratio(tLanczos, tHDE))
	return nil
}

// Fig2 reproduces Figure 2: the adjacency-list gap distribution of the
// five large graphs under Fibonacci binning.
func Fig2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Figure 2: adjacency gap distribution (Fibonacci bins; series 'graph upper-bound count')\n")
	for _, ng := range LargeCollection(cfg.Factor) {
		h := fibbin.New(int64(ng.G.NumV))
		graph.Gaps(ng.G, h.Add)
		// Identity check from the paper: Σc = 2m − n (for vertices with
		// nonzero degree, which preprocessing guarantees here).
		fprintf(w, "# %s: total gaps %d (2m−n = %d), mean gap %.1f\n",
			ng.Name, h.Total(), 2*ng.G.NumEdges()-int64(ng.G.NumV), graph.GapSummary(ng.G).Mean)
		if err := h.Fprint(w, ng.Name); err != nil {
			return err
		}
	}
	return nil
}

// Fig3 reproduces Figure 3: component-wise execution-time percentages for
// ParHDE on all threads (left), ParHDE on one thread (middle), and the
// prior implementation (right), s = 10.
func Fig3(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	fprintf(w, "Figure 3: execution-time breakdown (%% of total), s=10\n")
	fprintf(w, "%-10s %-10s %7s %11s %8s %7s\n", "config", "graph", "BFS%", "TripleProd%", "DOrtho%", "Other%")
	for _, ng := range LargeCollection(cfg.Factor) {
		var repPar, repSer, repPrior *core.Report
		withThreads(cfg.MaxThreads, func() { repPar = mustParHDE(ng, opt) })
		withThreads(1, func() { repSer = mustParHDE(ng, opt) })
		repPrior = mustRun(core.Prior, ng, opt)
		for _, row := range []struct {
			cfg string
			rep *core.Report
		}{
			{"parallel", repPar}, {"1-thread", repSer}, {"prior", repPrior},
		} {
			b, t, o, r := row.rep.Breakdown.Percentages()
			fprintf(w, "%-10s %-10s %6.1f%% %10.1f%% %7.1f%% %6.1f%%\n", row.cfg, ng.Name, b, t, o, r)
		}
	}
	return nil
}

// Fig4 reproduces Figure 4: relative scaling of ParHDE and its phases
// across a core-count sweep.
func Fig4(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	sweep := threadSweep(cfg.MaxThreads)
	fprintf(w, "Figure 4: relative speedup vs 1 thread (cores swept: %v)\n", sweep)
	fprintf(w, "%-10s %6s %9s %8s %12s %8s\n", "graph", "cores", "overall", "BFS", "TripleProd", "DOrtho")
	for _, ng := range LargeCollection(cfg.Factor) {
		base := map[string]time.Duration{}
		for _, p := range sweep {
			// Pin the layout's worker budget to the sweep point explicitly —
			// the snapshot-at-start default would match here, but the sweep
			// should not depend on when the snapshot is taken.
			opt := opt
			opt.Workers = p
			var rep *core.Report
			var total time.Duration
			withThreads(p, func() {
				total = minTime(cfg.Reps, func() { rep = mustParHDE(ng, opt) })
			})
			bd := rep.Breakdown
			if p == 1 {
				base["overall"] = total
				base["bfs"] = bd.BFS()
				base["triple"] = bd.TripleProd()
				base["ortho"] = bd.DOrtho
			}
			fprintf(w, "%-10s %6d %8.2fx %7.2fx %11.2fx %7.2fx\n",
				ng.Name, p,
				ratio(base["overall"], total),
				ratio(base["bfs"], bd.BFS()),
				ratio(base["triple"], bd.TripleProd()),
				ratio(base["ortho"], bd.DOrtho))
		}
	}
	return nil
}

// Fig5 reproduces Figure 5: the s=50 breakdown (left), the split of the
// BFS phase into traversal and overhead (middle), and the split of
// TripleProd into LS and Sᵀ(LS) (right).
func Fig5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	opt := core.Options{Subspace: 50, Seed: 42, SkipConnectivityCheck: true}
	fprintf(w, "Figure 5 (left): breakdown with s=50\n")
	fprintf(w, "%-10s %7s %11s %8s %7s | %10s %10s | %7s %9s\n",
		"graph", "BFS%", "TripleProd%", "DOrtho%", "Other%", "traversal%", "overhead%", "LS%", "S'(LS)%")
	for _, ng := range LargeCollection(cfg.Factor) {
		rep := mustParHDE(ng, opt)
		bd := rep.Breakdown
		b, t, o, r := bd.Percentages()
		travPct := 100 * ratio(bd.BFSTraversal, bd.BFS())
		lsPct := 100 * ratio(bd.LS, bd.TripleProd())
		fprintf(w, "%-10s %6.1f%% %10.1f%% %7.1f%% %6.1f%% | %9.1f%% %9.1f%% | %6.1f%% %8.1f%%\n",
			ng.Name, b, t, o, r, travPct, 100-travPct, lsPct, 100-lsPct)
	}
	return nil
}

// Fig6 reproduces Figure 6: PivotMDS breakdown on all threads and one
// thread, and PHDE breakdown, s = 10. Categories: BFS, centering, matmul,
// other.
func Fig6(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	fprintf(w, "Figure 6: PivotMDS and PHDE breakdown (%% of total), s=10\n")
	fprintf(w, "%-16s %-10s %7s %9s %8s %7s\n", "config", "graph", "BFS%", "center%", "matmul%", "other%")
	for _, ng := range LargeCollection(cfg.Factor) {
		var mdsPar, mdsSer, phde *core.Report
		withThreads(cfg.MaxThreads, func() {
			mdsPar = mustRun(core.PivotMDS, ng, opt)
			phde = mustRun(core.PHDE, ng, opt)
		})
		withThreads(1, func() { mdsSer = mustRun(core.PivotMDS, ng, opt) })
		rows := []struct {
			cfg string
			rep *core.Report
		}{
			{"pivotmds-par", mdsPar}, {"pivotmds-1thr", mdsSer}, {"phde-par", phde},
		}
		for _, row := range rows {
			bd := row.rep.Breakdown
			tot := float64(bd.Total)
			if tot == 0 {
				tot = 1
			}
			bfsP := 100 * float64(bd.BFS()) / tot
			cenP := 100 * float64(bd.Centering) / tot
			mmP := 100 * float64(bd.Gemm+bd.Project) / tot
			fprintf(w, "%-16s %-10s %6.1f%% %8.1f%% %7.1f%% %6.1f%%\n",
				row.cfg, ng.Name, bfsP, cenP, mmP, 100-bfsP-cenP-mmP)
		}
	}
	return nil
}

// Fig7 reproduces Figure 7: drawings of the plate mesh by ParHDE with
// random pivots, PHDE, and PivotMDS — all should capture the four-hole
// global structure (verified here by quality metrics, with PNGs on
// request).
func Fig7(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "Figure 7: alternative drawings of the plate mesh\n")
	fprintf(w, "%-22s %12s %10s %9s   %s\n", "method", "Hall ratio", "edge CV", "dist-corr", "drawing")
	runs := []struct {
		name string
		f    func() (*core.Layout, error)
	}{
		{"parhde-random-pivots", func() (*core.Layout, error) {
			l, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 3, Pivots: pivot.Random, SkipConnectivityCheck: true})
			return l, err
		}},
		{"phde", func() (*core.Layout, error) {
			l, _, err := core.PHDE(g, core.Options{Subspace: 50, Seed: 3, SkipConnectivityCheck: true})
			return l, err
		}},
		{"pivotmds", func() (*core.Layout, error) {
			l, _, err := core.PivotMDS(g, core.Options{Subspace: 50, Seed: 3, SkipConnectivityCheck: true})
			return l, err
		}},
	}
	for _, r := range runs {
		lay, err := r.f()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		q := core.Evaluate(g, lay)
		dc := core.DistanceCorrelation(g, lay, 16, 9)
		path, err := savePNG(cfg, "fig7_"+r.name, g, lay)
		if err != nil {
			return err
		}
		fprintf(w, "%-22s %12.5f %10.3f %9.3f   %s\n", r.name, q.HallRatio, q.EdgeLengthCV, dc, path)
	}
	return nil
}

// Fig8 reproduces Figure 8: the zoomed drawing of the 10-hop neighborhood
// of a vertex in the plate mesh.
func Fig8(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	center := int32(g.NumV / 2)
	z, err := core.Zoom(g, center, 10, core.Options{Subspace: 20, Seed: 4})
	if err != nil {
		return err
	}
	path, err := savePNG(cfg, "fig8_zoom", z.Subgraph, z.Layout)
	if err != nil {
		return err
	}
	q := core.Evaluate(z.Subgraph, z.Layout)
	fprintf(w, "Figure 8: 10-hop zoom around vertex %d\n", center)
	fprintf(w, "neighborhood: n=%d m=%d  Hall ratio %.5f  drawing %s\n",
		z.Subgraph.NumV, z.Subgraph.NumEdges(), q.HallRatio, path)
	return nil
}
