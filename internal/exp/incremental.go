package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/quality"
)

// The incremental experiment quantifies the dynamic-graph extension: how
// much cheaper is a warm-start refinement of the previous layout than a
// cold ParHDE run after a small edge delta, and what does the shortcut
// cost in quality (sampled stress, neighborhood preservation)?

// IncrementalEntry is one delta-fraction row of the incremental
// experiment.
type IncrementalEntry struct {
	DeltaEdges    int64   `json:"deltaEdges"`
	DeltaFraction float64 `json:"deltaFraction"`
	ColdSeconds   float64 `json:"coldSeconds"`
	WarmSeconds   float64 `json:"warmSeconds"`
	Speedup       float64 `json:"speedup"`
	RefineSweeps  int     `json:"refineSweeps"`
	ColdStress    float64 `json:"coldStress"`
	WarmStress    float64 `json:"warmStress"`
	ColdNbhd      float64 `json:"coldNbhd"`
	WarmNbhd      float64 `json:"warmNbhd"`
}

// IncrementalReport is the machine-readable record `hdebench -exp
// incremental` emits next to the standard bench JSON.
type IncrementalReport struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"goVersion"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Factor     int                `json:"factor"`
	Reps       int                `json:"reps"`
	Subspace   int                `json:"subspace"`
	Graph      string             `json:"graph"`
	Vertices   int                `json:"vertices"`
	Edges      int64              `json:"edges"`
	Entries    []IncrementalEntry `json:"entries"`
}

// flipEdges applies `count` deterministic edge flips to a dynamic copy of
// base: mostly inserts of random non-edges, with every eighth flip
// deleting an existing edge, mimicking an evolving graph. Returns the
// mutated snapshot and the number of flips applied.
func flipEdges(base *graph.CSR, count int64, seed uint64) (*graph.CSR, int64, error) {
	d, err := dyngraph.New(base, dyngraph.Options{})
	if err != nil {
		return nil, 0, err
	}
	// Existing edges (u < v) to draw deletions from.
	edges := make([][2]int32, 0, base.NumEdges())
	for u := int32(0); int(u) < base.NumV; u++ {
		for _, v := range base.Neighbors(u) {
			if v > u {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	n := int32(base.NumV)
	h := seed
	next := func() uint64 {
		h += 0x9e3779b97f4a7c15
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var batch []dyngraph.Mutation
	seen := map[[2]int32]bool{}
	var applied int64
	for applied < count {
		if applied%8 == 7 && len(edges) > 0 {
			e := edges[next()%uint64(len(edges))]
			if seen[e] {
				continue
			}
			seen[e] = true
			batch = append(batch, dyngraph.Mutation{Op: dyngraph.DelEdge, U: e[0], V: e[1]})
			applied++
			continue
		}
		u := int32(next() % uint64(n))
		v := int32(next() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] || base.HasEdge(u, v) {
			continue
		}
		seen[[2]int32{u, v}] = true
		batch = append(batch, dyngraph.Mutation{Op: dyngraph.AddEdge, U: u, V: v})
		applied++
	}
	if _, err := d.Apply(batch); err != nil {
		return nil, 0, err
	}
	snap, _ := d.Flush()
	return snap, applied, nil
}

// RunIncremental executes the cold-vs-warm comparison and returns the
// machine-readable report (IncrementalExperiment wraps it for the CLI).
func RunIncremental(cfg Config, fractions []float64) (*IncrementalReport, error) {
	cfg = cfg.withDefaults()
	base := gen.Kron(16, 8, 107)
	opt := core.Options{Subspace: cfg.Subspace, Seed: 1, SkipConnectivityCheck: true}
	prior, _, err := core.ParHDE(base, opt)
	if err != nil {
		return nil, err
	}
	prior = prior.Clone()

	rep := &IncrementalReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Factor:     cfg.Factor,
		Reps:       cfg.Reps,
		Subspace:   cfg.Subspace,
		Graph:      "kron16",
		Vertices:   base.NumV,
		Edges:      base.NumEdges(),
	}
	const stressSources, nbhdK, nbhdSample = 6, 6, 120
	for _, frac := range fractions {
		delta := int64(frac * float64(base.NumEdges()))
		if delta < 1 {
			delta = 1
		}
		mutated, applied, err := flipEdges(base, delta, 0xda1a+uint64(delta))
		if err != nil {
			return nil, err
		}

		var coldLay *core.Layout
		tCold := minTime(cfg.Reps, func() {
			var err2 error
			coldLay, _, err2 = core.ParHDE(mutated, opt)
			if err2 != nil {
				panic(err2)
			}
		})

		warmOpt := opt
		warmOpt.Prior = prior
		warmOpt.PriorDeltaEdges = applied
		warmOpt.MaxPriorDelta = 2 * frac
		var warmLay *core.Layout
		var warmRep *core.Report
		tWarm := minTime(cfg.Reps, func() {
			var err2 error
			warmLay, warmRep, err2 = core.ParHDE(mutated, warmOpt)
			if err2 != nil {
				panic(err2)
			}
		})
		if !warmRep.Warm {
			return nil, fmt.Errorf("incremental: delta %d took the cold path", applied)
		}

		rep.Entries = append(rep.Entries, IncrementalEntry{
			DeltaEdges:    applied,
			DeltaFraction: frac,
			ColdSeconds:   seconds(tCold),
			WarmSeconds:   seconds(tWarm),
			Speedup:       ratio(tCold, tWarm),
			RefineSweeps:  warmRep.RefineSweeps,
			ColdStress:    quality.SampledStress(mutated, coldLay, stressSources, 9),
			WarmStress:    quality.SampledStress(mutated, warmLay, stressSources, 9),
			ColdNbhd:      quality.NeighborhoodPreservation(mutated, coldLay, nbhdK, nbhdSample, 9),
			WarmNbhd:      quality.NeighborhoodPreservation(mutated, warmLay, nbhdK, nbhdSample, 9),
		})
	}
	return rep, nil
}

// IncrementalExperiment is `hdebench -exp incremental`: cold relayout vs
// warm-start refinement on the kron analogue across edge-delta sizes,
// with quality deltas, written as a table and (with -out) as
// BENCH_INCREMENTAL_<date>.json.
func IncrementalExperiment(w io.Writer, cfg Config) error {
	rep, err := RunIncremental(cfg, []float64{0.001, 0.005, 0.01})
	if err != nil {
		return err
	}
	fprintf(w, "Incremental warm-start vs cold relayout (kron analogue, n=%d m=%d, s=%d)\n",
		rep.Vertices, rep.Edges, rep.Subspace)
	fprintf(w, "%8s %8s %10s %10s %8s %7s %11s %11s %10s %10s\n",
		"delta", "frac", "cold (s)", "warm (s)", "speedup", "sweeps",
		"stress cold", "stress warm", "nbhd cold", "nbhd warm")
	for _, e := range rep.Entries {
		fprintf(w, "%8d %7.2f%% %10.4f %10.4f %7.1fx %7d %11.4f %11.4f %10.3f %10.3f\n",
			e.DeltaEdges, 100*e.DeltaFraction, e.ColdSeconds, e.WarmSeconds,
			e.Speedup, e.RefineSweeps, e.ColdStress, e.WarmStress, e.ColdNbhd, e.WarmNbhd)
	}
	if cfg.OutDir != "" {
		path, err := writeIncrementalJSON(cfg.OutDir, rep)
		if err != nil {
			return err
		}
		fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// writeIncrementalJSON writes rep to dir/BENCH_INCREMENTAL_<date>.json
// atomically (tmp + rename), mirroring WriteBenchJSON.
func writeIncrementalJSON(dir string, rep *IncrementalReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_INCREMENTAL_"+rep.Date+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}
