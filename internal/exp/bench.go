package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
)

// BenchEntry is one graph's timing in a standard benchmark pass.
type BenchEntry struct {
	Graph     string             `json:"graph"`
	Analogue  string             `json:"analogue"`
	Vertices  int                `json:"vertices"`
	Edges     int64              `json:"edges"`
	Algorithm string             `json:"algorithm"`
	Seconds   float64            `json:"seconds"` // minimum over Reps runs
	Phases    map[string]float64 `json:"phases"`  // per-phase split of the fastest run
}

// BenchReport is the machine-readable benchmark record hdebench emits as
// BENCH_<date>.json, so the perf trajectory across PRs can be charted
// instead of eyeballed from table text.
type BenchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"goVersion"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Factor     int          `json:"factor"`
	Reps       int          `json:"reps"`
	Subspace   int          `json:"subspace"`
	Entries    []BenchEntry `json:"entries"`
}

// Bench runs the standard perf-trajectory suite: ParHDE over the small
// graph collection at cfg.Factor, keeping the fastest of cfg.Reps runs
// per graph and its per-phase breakdown.
func Bench(cfg Config) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	rep := &BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Factor:     cfg.Factor,
		Reps:       cfg.Reps,
		Subspace:   cfg.Subspace,
	}
	for _, ng := range SmallCollection(cfg.Factor) {
		opt := core.Options{Subspace: cfg.Subspace, Seed: 1, SkipConnectivityCheck: true}
		var best *core.Report
		for r := 0; r < cfg.Reps; r++ {
			_, res, err := core.ParHDE(ng.G, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", ng.Name, err)
			}
			if best == nil || res.Breakdown.Total < best.Breakdown.Total {
				best = res
			}
		}
		phases := map[string]float64{}
		for _, p := range best.Breakdown.Phases() {
			phases[p.Name] = p.D.Seconds()
		}
		rep.Entries = append(rep.Entries, BenchEntry{
			Graph:     ng.Name,
			Analogue:  ng.Analogue,
			Vertices:  ng.G.NumV,
			Edges:     ng.G.NumEdges(),
			Algorithm: "parhde",
			Seconds:   best.Breakdown.Total.Seconds(),
			Phases:    phases,
		})
	}
	return rep, nil
}

// WriteBenchJSON writes rep to dir/BENCH_<date>.json and returns the
// path. The write is atomic (tmp + rename) so a crashed run never leaves
// a truncated record behind.
func WriteBenchJSON(dir string, rep *BenchReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Date+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}
