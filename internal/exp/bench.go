package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workspace"
)

// BenchEntry is one graph's timing and allocation profile in a standard
// benchmark pass.
type BenchEntry struct {
	Graph     string             `json:"graph"`
	Analogue  string             `json:"analogue"`
	Vertices  int                `json:"vertices"`
	Edges     int64              `json:"edges"`
	Algorithm string             `json:"algorithm"`
	Seconds   float64            `json:"seconds"` // minimum over Reps runs
	Phases    map[string]float64 `json:"phases"`  // per-phase split of the fastest run

	// AllocsFresh / BytesFresh profile a run that allocates every buffer
	// itself (no workspace) — the cost a one-shot caller pays.
	AllocsFresh float64 `json:"allocsFresh"`
	BytesFresh  uint64  `json:"bytesFresh"`
	// AllocsSteady / BytesSteady profile the warmed-workspace steady
	// state — the cost a job-engine worker pays per layout after the
	// first. Near zero by design; the CI gate in perf/alloc_budget.json
	// keeps it there.
	AllocsSteady float64 `json:"allocsSteady"`
	BytesSteady  uint64  `json:"bytesSteady"`
	// PhaseAllocs attributes the steady-state heap objects to pipeline
	// phases (one TrackAllocs run over the warmed workspace).
	PhaseAllocs map[string]uint64 `json:"phaseAllocs"`
}

// BenchReport is the machine-readable benchmark record hdebench emits as
// BENCH_<date>.json, so the perf trajectory across PRs can be charted
// instead of eyeballed from table text.
type BenchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"goVersion"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Factor     int          `json:"factor"`
	Reps       int          `json:"reps"`
	Subspace   int          `json:"subspace"`
	Entries    []BenchEntry `json:"entries"`
}

// Bench runs the standard perf-trajectory suite: ParHDE over the small
// graph collection at cfg.Factor, keeping the fastest of cfg.Reps runs
// per graph and its per-phase breakdown.
func Bench(cfg Config) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	rep := &BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Factor:     cfg.Factor,
		Reps:       cfg.Reps,
		Subspace:   cfg.Subspace,
	}
	for _, ng := range SmallCollection(cfg.Factor) {
		opt := core.Options{Subspace: cfg.Subspace, Seed: 1, SkipConnectivityCheck: true}
		var best *core.Report
		for r := 0; r < cfg.Reps; r++ {
			_, res, err := core.ParHDE(ng.G, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", ng.Name, err)
			}
			if best == nil || res.Breakdown.Total < best.Breakdown.Total {
				best = res
			}
		}
		phases := map[string]float64{}
		for _, p := range best.Breakdown.Phases() {
			phases[p.Name] = p.D.Seconds()
		}
		e := BenchEntry{
			Graph:     ng.Name,
			Analogue:  ng.Analogue,
			Vertices:  ng.G.NumV,
			Edges:     ng.G.NumEdges(),
			Algorithm: "parhde",
			Seconds:   best.Breakdown.Total.Seconds(),
			Phases:    phases,
		}
		if err := profileAllocs(&e, ng.G, opt, cfg.Reps); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", ng.Name, err)
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// profileAllocs fills e's allocation fields: a fresh-buffers profile, a
// warmed-workspace steady-state profile, and the per-phase attribution of
// the steady state. GOMAXPROCS is pinned to 1 for the measurement so the
// parallel primitives take their deterministic serial paths and no
// concurrent goroutine pollutes the ReadMemStats deltas.
func profileAllocs(e *BenchEntry, g *graph.CSR, opt core.Options, reps int) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	measure := func(run func() error) (float64, uint64, error) {
		if err := run(); err != nil { // warm (pool buckets, workspace)
			return 0, 0, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < reps; i++ {
			if err := run(); err != nil {
				return 0, 0, err
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(reps),
			(after.TotalAlloc - before.TotalAlloc) / uint64(reps), nil
	}
	var err error
	fresh := opt
	if e.AllocsFresh, e.BytesFresh, err = measure(func() error {
		_, _, err := core.ParHDE(g, fresh)
		return err
	}); err != nil {
		return err
	}
	warmed := opt
	warmed.Workspace = workspace.New()
	if e.AllocsSteady, e.BytesSteady, err = measure(func() error {
		_, _, err := core.ParHDE(g, warmed)
		return err
	}); err != nil {
		return err
	}
	warmed.TrackAllocs = true
	_, rep, err := core.ParHDE(g, warmed)
	if err != nil {
		return err
	}
	e.PhaseAllocs = map[string]uint64{}
	for _, pa := range rep.PhaseAllocs {
		e.PhaseAllocs[pa.Name] = pa.Allocs
	}
	return nil
}

// WriteBenchJSON writes rep to dir/BENCH_<date>.json and returns the
// path. The write is atomic (tmp + rename) so a crashed run never leaves
// a truncated record behind.
func WriteBenchJSON(dir string, rep *BenchReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Date+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}
