package exp

import (
	"io"
	"runtime"
	"time"

	"repro/internal/bfs"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/forcedirected"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/order"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/quality"
	"repro/internal/stress"
)

// MultilevelExperiment compares single-level ParHDE with the multilevel
// variant the paper names as future work (§5): same quality regime, with
// the subspace machinery confined to a coarse graph.
func MultilevelExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "Multilevel ParHDE (plate mesh, n=%d m=%d)\n", g.NumV, g.NumEdges())

	var singleLay, multiLay *core.Layout
	tSingle := minTime(cfg.Reps, func() {
		var err error
		singleLay, _, err = core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
		if err != nil {
			panic(err)
		}
	})
	var mrep *core.MultilevelReport
	tMulti := minTime(cfg.Reps, func() {
		var err error
		multiLay, mrep, err = core.MultilevelParHDE(g, core.MultilevelOptions{
			Base:    core.Options{Subspace: 50, Seed: 1},
			Coarsen: coarsen.Options{MinVertices: 500, Seed: 1},
		})
		if err != nil {
			panic(err)
		}
	})
	qs := core.Evaluate(g, singleLay)
	qm := core.Evaluate(g, multiLay)
	fprintf(w, "%-22s %10s %12s %14s\n", "variant", "time (s)", "Hall ratio", "levels")
	fprintf(w, "%-22s %10.4f %12.5f %14s\n", "single-level", seconds(tSingle), qs.HallRatio, "-")
	fprintf(w, "%-22s %10.4f %12.5f %14v\n", "multilevel", seconds(tMulti), qm.HallRatio, mrep.Levels)
	return nil
}

// StressExperiment reproduces the §4.5.4 observation that an HDE layout is
// a good initialization for stress majorization: same iteration budget,
// compare stress reached from a ParHDE seed versus a random seed.
func StressExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	side := scaled(40, cfg.Factor)
	g := plateSide(side)
	fprintf(w, "Stress-majorization seeding (plate mesh, n=%d m=%d, full stress, 8 iterations)\n", g.NumV, g.NumEdges())

	opt := stress.Options{MaxIters: 8, Tol: 0}
	hdeLay, _, err := core.ParHDE(g, core.Options{Subspace: 30, Seed: 1})
	if err != nil {
		return err
	}
	start := time.Now()
	resHDE, err := stress.Full(g, hdeLay, opt)
	if err != nil {
		return err
	}
	tHDE := time.Since(start)

	rndLay := core.RandomLayout(g.NumV, 2, 7)
	start = time.Now()
	resRnd, err := stress.Full(g, rndLay, opt)
	if err != nil {
		return err
	}
	tRnd := time.Since(start)

	fprintf(w, "%-14s %14s %14s %10s\n", "seed", "initial stress", "final stress", "time (s)")
	fprintf(w, "%-14s %14.5f %14.5f %10.4f\n", "ParHDE", resHDE.History[0], resHDE.Stress, seconds(tHDE))
	fprintf(w, "%-14s %14.5f %14.5f %10.4f\n", "random", resRnd.History[0], resRnd.Stress, seconds(tRnd))
	fprintf(w, "HDE seed starts %.1fx lower and ends %.1fx lower after the same budget\n",
		resRnd.History[0]/resHDE.History[0], resRnd.Stress/resHDE.Stress)
	return nil
}

// ForceDirectedExperiment reproduces the §4.2 related-work comparison:
// ParHDE versus a force-directed (Fruchterman-Reingold) layout of the same
// graph — the paper estimates one to two orders of magnitude advantage.
func ForceDirectedExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "ParHDE vs force-directed baseline (plate mesh, n=%d m=%d)\n", g.NumV, g.NumEdges())
	var hdeLay, frLay *core.Layout
	tHDE := minTime(cfg.Reps, func() {
		var err error
		hdeLay, _, err = core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
		if err != nil {
			panic(err)
		}
	})
	tFR := minTime(1, func() {
		frLay = forcedirected.Layout(g, forcedirected.Options{Iterations: 100, Seed: 2})
	})
	qh := core.Evaluate(g, hdeLay)
	qf := core.Evaluate(g, frLay)
	fprintf(w, "%-20s %10s %12s\n", "method", "time (s)", "Hall ratio")
	fprintf(w, "%-20s %10.4f %12.5f\n", "ParHDE (s=50)", seconds(tHDE), qh.HallRatio)
	fprintf(w, "%-20s %10.4f %12.5f\n", "FR (100 iters)", seconds(tFR), qf.HallRatio)
	fprintf(w, "speedup: %.0fx (paper estimates 10-100x vs force-directed systems)\n", ratio(tFR, tHDE))
	return nil
}

// SubspaceExperiment extends §4.5.3 to a block eigensolver: iterations for
// subspace (orthogonal) iteration to converge from an HDE seed versus a
// cold start.
func SubspaceExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "Eigensolver seeding (plate mesh, n=%d m=%d, subspace iteration, tol 1e-6)\n", g.NumV, g.NumEdges())

	start := time.Now()
	hdeLay, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
	if err != nil {
		return err
	}
	tSeed := time.Since(start)

	const tol = 1e-6
	start = time.Now()
	warm := eigen.SubspaceIterate(g, 2, eigen.SubspaceOptions{Seed: 3, MaxIters: 100000, Tol: tol, Init: hdeLay.Coords})
	tWarm := time.Since(start)
	start = time.Now()
	cold := eigen.SubspaceIterate(g, 2, eigen.SubspaceOptions{Seed: 3, MaxIters: 100000, Tol: tol})
	tCold := time.Since(start)
	start = time.Now()
	lobWarm := eigen.LOBPCG(g, 2, eigen.LOBPCGOptions{Seed: 3, MaxIters: 100000, Tol: tol, Init: hdeLay.Coords})
	tLobWarm := time.Since(start)
	start = time.Now()
	lobCold := eigen.LOBPCG(g, 2, eigen.LOBPCGOptions{Seed: 3, MaxIters: 100000, Tol: tol})
	tLobCold := time.Since(start)

	fprintf(w, "%-28s %12s %12s %12s\n", "solver / start", "iterations", "residual", "time (s)")
	fprintf(w, "%-28s %12d %12.2e %12.4f\n", "subspace, ParHDE seed", warm.Iterations, warm.Residual, seconds(tWarm+tSeed))
	fprintf(w, "%-28s %12d %12.2e %12.4f\n", "subspace, cold", cold.Iterations, cold.Residual, seconds(tCold))
	fprintf(w, "%-28s %12d %12.2e %12.4f\n", "LOBPCG, ParHDE seed", lobWarm.Iterations, lobWarm.Residual, seconds(tLobWarm+tSeed))
	fprintf(w, "%-28s %12d %12.2e %12.4f\n", "LOBPCG, cold", lobCold.Iterations, lobCold.Residual, seconds(tLobCold))
	fprintf(w, "subspace seed reduction: %.1fx; LOBPCG vs subspace (cold): %.1fx fewer iterations\n",
		float64(cold.Iterations)/float64(warm.Iterations),
		float64(cold.Iterations)/float64(lobCold.Iterations))
	return nil
}

// PartitionExperiment quantifies §4.5.4: geometric partitioning from HDE
// coordinates, plus KL/FM boundary refinement, versus a random-coordinates
// baseline.
func PartitionExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := SmallCollection(cfg.Factor)[2].G // kkt_power analogue
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 30, Seed: 3, SkipConnectivityCheck: true})
	if err != nil {
		return err
	}
	fprintf(w, "Geometric partitioning (power-grid analogue, n=%d m=%d, 8 parts)\n", g.NumV, g.NumEdges())
	fprintf(w, "%-26s %10s %10s %10s\n", "configuration", "cut", "cut%", "imbalance")

	show := func(name string, part []int32) {
		st := partition.EvaluateCut(g, part)
		fprintf(w, "%-26s %10d %9.1f%% %10.3f\n", name, st.CutEdges, 100*st.CutRatio, st.Imbalance)
	}
	hdePart, err := partition.CoordinateBisection(lay, 3)
	if err != nil {
		return err
	}
	show("HDE coords", append([]int32(nil), hdePart...))
	refined := append([]int32(nil), hdePart...)
	moved := partition.Refine(g, refined, partition.RefineOptions{})
	show("HDE coords + KL refine", refined)
	fprintf(w, "  (refinement moved %d vertices)\n", moved)
	rndPart, err := partition.CoordinateBisection(core.RandomLayout(g.NumV, 2, 5), 3)
	if err != nil {
		return err
	}
	show("random coords", rndPart)

	// Multilevel KL with and without the HDE coarse seed: §4.5.4's claim
	// that coordinates reduce KL refinement work, measured in moves.
	mlRand, stRand, err := partition.MultilevelPartition(g, partition.MultilevelOptions{Levels: 3, Seed: 5})
	if err != nil {
		return err
	}
	show("multilevel KL (random)", mlRand)
	fprintf(w, "  (KL moves across levels: %d)\n", stRand.TotalMoved)
	mlHDE, stHDE, err := partition.MultilevelPartition(g, partition.MultilevelOptions{Levels: 3, UseHDESeed: true, Seed: 5})
	if err != nil {
		return err
	}
	show("multilevel KL (HDE seed)", mlHDE)
	fprintf(w, "  (KL moves across levels: %d — %.1fx less refinement work)\n",
		stHDE.TotalMoved, float64(stRand.TotalMoved)/float64(maxIntOne(stHDE.TotalMoved)))
	return nil
}

func maxIntOne(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// plateSide builds the plate mesh at an explicit side length (StressExperiment
// needs a small one: full stress is quadratic).
func plateSide(side int) *graph.CSR {
	return gen.PlateWithHoles(side, side)
}

// AlphaBetaExperiment sweeps the direction-optimizing BFS switch
// thresholds (Beamer's α and β, defaulting to the GAP values 15 and 18)
// on a skewed low-diameter graph — the ablation behind §3.1's choice of
// the GAP heuristic.
func AlphaBetaExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := LargeCollection(cfg.Factor)[1].G // kron analogue
	dist := make([]int32, g.NumV)
	fprintf(w, "Direction-optimizing switch sweep (kron analogue, n=%d m=%d)\n", g.NumV, g.NumEdges())
	fprintf(w, "%8s %8s %12s %16s %10s\n", "alpha", "beta", "time (s)", "edges scanned", "bottom-up")
	configs := []struct{ a, b int64 }{
		{1, 18}, {15, 18}, {64, 18}, {15, 2}, {15, 64}, {1 << 30, 18 /* effectively top-down */},
	}
	for _, c := range configs {
		runner := bfs.NewRunner(g, bfs.Options{Alpha: c.a, Beta: c.b})
		var st bfs.Stats
		t := minTime(cfg.Reps, func() { st = runner.Distances(0, dist) })
		fprintf(w, "%8d %8d %12.4f %16d %10d\n", c.a, c.b, seconds(t), st.ScannedEdges, st.BottomUpSteps)
	}
	return nil
}

// LDDExperiment demonstrates the §3/§5 future-work ingredient: a low
// diameter decomposition bounds per-cluster BFS depth at the cost of a
// controlled fraction of cut edges.
func LDDExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	side := scaled(220, cfg.Factor)
	g := gen.Road(side, side, 105)
	fprintf(w, "Low-diameter decomposition (road analogue, n=%d m=%d, pseudo-diameter %d)\n",
		g.NumV, g.NumEdges(), graph.PseudoDiameter(g, 0))
	fprintf(w, "%8s %10s %12s %14s\n", "beta", "clusters", "cut frac", "max radius")
	for _, beta := range []float64{0.02, 0.05, 0.1, 0.2} {
		label, clusters := graph.LowDiameterDecomposition(g, beta, 11)
		fprintf(w, "%8g %10d %12.3f %14d\n",
			beta, clusters, graph.CutFraction(g, label), graph.ClusterRadius(g, label, clusters))
	}
	return nil
}

// QualityExperiment scores every layout algorithm on the plate mesh with
// the full metric battery — the quantitative stand-in for the drawing
// comparisons the paper handles visually (Figures 1 and 7, which cite the
// experimental studies of Brandes-Pich and Hachul-Jünger).
func QualityExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plateSide(scaled(60, cfg.Factor))
	fprintf(w, "Layout quality battery (plate mesh, n=%d m=%d)\n", g.NumV, g.NumEdges())
	fprintf(w, "%-18s %12s %10s %11s %10s\n", "method", "Hall ratio", "dist-corr", "nbhd-pres", "crossings")

	type entry struct {
		name string
		f    func() (*core.Layout, error)
	}
	entries := []entry{
		{"parhde", func() (*core.Layout, error) {
			l, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"phde", func() (*core.Layout, error) {
			l, _, err := core.PHDE(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"pivotmds", func() (*core.Layout, error) {
			l, _, err := core.PivotMDS(g, core.Options{Subspace: 50, Seed: 1})
			return l, err
		}},
		{"multilevel", func() (*core.Layout, error) {
			l, _, err := core.MultilevelParHDE(g, core.MultilevelOptions{Base: core.Options{Subspace: 30, Seed: 1}})
			return l, err
		}},
		{"forcedirected", func() (*core.Layout, error) {
			return forcedirected.Layout(g, forcedirected.Options{Iterations: 100, Seed: 2}), nil
		}},
		{"random", func() (*core.Layout, error) {
			return core.RandomLayout(g.NumV, 2, 3), nil
		}},
	}
	for _, e := range entries {
		lay, err := e.f()
		if err != nil {
			return err
		}
		q := core.Evaluate(g, lay)
		dc := core.DistanceCorrelation(g, lay, 12, 5)
		np := quality.NeighborhoodPreservation(g, lay, 6, 80, 5)
		cr := quality.SampledCrossingRate(g, lay, 20000, 5)
		fprintf(w, "%-18s %12.5f %10.3f %11.3f %10.4f\n", e.name, q.HallRatio, dc, np, cr)
	}
	return nil
}

// StreamExperiment measures sustained memory bandwidth with the STREAM
// Triad kernel (a[i] = b[i] + q·c[i]) — the §4.1 hardware
// characterization ("we observed a STREAM Triad bandwidth of 112 GB/s on
// the 28-core system"), which contextualizes the memory-bound phases.
func StreamExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	n := 1 << 24 // 3 × 128 MiB working set
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = 1.5
		c[i] = 2.5
	}
	const q = 3.0
	triad := func() {
		parallel.ForBlock(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = b[i] + q*c[i]
			}
		})
	}
	triad() // warm up / fault pages
	best := minTime(maxInt(cfg.Reps, 5), triad)
	bytes := float64(3 * 8 * n)
	fprintf(w, "STREAM Triad: %d elements, best of %d: %.4fs = %.1f GB/s (paper's node: 112 GB/s on 28 cores)\n",
		n, maxInt(cfg.Reps, 5), seconds(best), bytes/seconds(best)/1e9)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MemoryExperiment measures allocation footprints of the pipeline
// variants: decoupled ParHDE (stores B: O(sn) extra, per Table 1),
// coupled ParHDE (B never materialized), and the prior baseline (explicit
// Laplacian) — the memory story behind §4.2's observation that the prior
// implementation could not fit the largest graphs in 128 GB.
func MemoryExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	s := 50
	fprintf(w, "Allocation footprint (plate mesh, n=%d m=%d, s=%d)\n", g.NumV, g.NumEdges(), s)
	fprintf(w, "%-22s %14s %12s\n", "variant", "alloc (MB)", "time (s)")
	measure := func(name string, f func()) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		fprintf(w, "%-22s %14.1f %12.4f\n", name,
			float64(after.TotalAlloc-before.TotalAlloc)/(1<<20), seconds(elapsed))
	}
	opt := core.Options{Subspace: s, Seed: 1, SkipConnectivityCheck: true}
	measure("parhde (decoupled)", func() {
		if _, _, err := core.ParHDE(g, opt); err != nil {
			panic(err)
		}
	})
	copt := opt
	copt.Coupled = true
	measure("parhde (coupled)", func() {
		if _, _, err := core.ParHDE(g, copt); err != nil {
			panic(err)
		}
	})
	measure("prior (explicit L)", func() {
		if _, _, err := core.Prior(g, opt); err != nil {
			panic(err)
		}
	})
	return nil
}

// ReorderExperiment closes the §4.4 ordering loop: take the web analogue
// with its ids randomly scrambled (the configuration that slows LS), then
// recover locality with (a) RCM and (b) a Hilbert order over ParHDE's own
// coordinates, and measure mean gap, bandwidth, and the LS kernel time.
func ReorderExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	orig := gen.WebGraph(scaled(100000, cfg.Factor), 16, 103)
	scrambled, err := graph.Permute(orig, graph.RandomPermutation(orig.NumV, 99))
	if err != nil {
		return err
	}
	fprintf(w, "Locality-recovering reorderings (web analogue, n=%d m=%d)\n", orig.NumV, orig.NumEdges())
	fprintf(w, "%-24s %12s %12s %12s\n", "ordering", "mean gap", "bandwidth", "LS time (s)")

	lsTime := func(g *graph.CSR) float64 {
		deg := g.WeightedDegrees()
		s := linalg.NewDense(g.NumV, 10)
		for i := range s.Data {
			s.Data[i] = float64(i % 13)
		}
		return seconds(minTime(cfg.Reps, func() { linalg.LapMulDense(g, deg, s) }))
	}
	show := func(name string, g *graph.CSR) {
		fprintf(w, "%-24s %12.0f %12d %12.4f\n",
			name, graph.GapSummary(g).Mean, order.Bandwidth(g), lsTime(g))
	}
	show("original (crawl order)", orig)
	show("random permutation", scrambled)

	rcmPerm := order.RCM(scrambled)
	rcmG, err := graph.Permute(scrambled, rcmPerm)
	if err != nil {
		return err
	}
	show("RCM", rcmG)

	lay, _, err := core.ParHDE(scrambled, core.Options{Subspace: 10, Seed: 1, SkipConnectivityCheck: true})
	if err != nil {
		return err
	}
	hilPerm, err := order.HilbertFromLayout(lay, 12)
	if err != nil {
		return err
	}
	hilG, err := graph.Permute(scrambled, hilPerm)
	if err != nil {
		return err
	}
	show("Hilbert(ParHDE coords)", hilG)
	return nil
}
