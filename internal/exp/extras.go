package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/sssp"
)

// SSSPExperiment reproduces the §4.4 weighted-graph study on the road
// analogue: unit-weight SSSP vs BFS-based ParHDE (paper: 18% slower), and
// random integer weights across a Δ sweep (paper: ≥ 3.66× slower).
func SSSPExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	side := scaled(220, cfg.Factor)
	road := gen.Road(side, side, 105)
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}

	tBFS := minTime(cfg.Reps, func() {
		if _, _, err := core.ParHDE(road, opt); err != nil {
			panic(err)
		}
	})
	fprintf(w, "SSSP experiment (road analogue, n=%d m=%d, s=10)\n", road.NumV, road.NumEdges())
	fprintf(w, "%-28s %12s %10s\n", "configuration", "time (s)", "vs BFS")
	fprintf(w, "%-28s %12.4f %9.2fx\n", "unweighted BFS", seconds(tBFS), 1.0)

	unit := road.WithUnitWeights()
	uopt := opt
	uopt.Delta = 1
	tUnit := minTime(cfg.Reps, func() {
		if _, _, err := core.ParHDE(unit, uopt); err != nil {
			panic(err)
		}
	})
	fprintf(w, "%-28s %12.4f %9.2fx\n", "SSSP, unit weights Δ=1", seconds(tUnit), ratio(tUnit, tBFS))

	weighted := gen.WithRandomWeights(road, 100, 7)
	for _, delta := range []float64{1, 10, 50, 0 /* heuristic */} {
		wopt := opt
		wopt.Delta = delta
		label := "SSSP, rand weights Δ=heur"
		if delta > 0 {
			label = fprintfStr("SSSP, rand weights Δ=%g", delta)
		}
		tW := minTime(cfg.Reps, func() {
			if _, _, err := core.ParHDE(weighted, wopt); err != nil {
				panic(err)
			}
		})
		fprintf(w, "%-28s %12.4f %9.2fx\n", label, seconds(tW), ratio(tW, tBFS))
	}
	return nil
}

// PermExperiment reproduces the §4.4 vertex-ordering study: randomly
// permuting a locality-ordered graph slows the LS step (paper: 6.8× on
// sk-2005) and the whole run (paper: 3.5×). Two inputs are measured: the
// web/sk analogue, and a large 2-D grid whose row-major ordering is the
// ideal-locality extreme. How much of the slowdown materializes depends on
// the host's last-level cache relative to n×8 bytes per dense column —
// crank Factor until the column no longer fits to see the full effect.
func PermExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	inputs := []NamedGraph{
		{"web", "sk-2005", gen.WebGraph(scaled(200000, cfg.Factor), 16, 103)},
		{"grid", "ordered mesh", gen.Grid2D(scaled(1000, cfg.Factor), scaled(1000, cfg.Factor))},
	}
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	fprintf(w, "Vertex-ordering experiment (paper: LS 6.8x, overall 3.5x slower after permutation)\n")
	fprintf(w, "%-8s %-22s %12s %12s %12s\n", "graph", "ordering", "total (s)", "LS (s)", "mean gap")
	for _, ng := range inputs {
		perm := graph.RandomPermutation(ng.G.NumV, 99)
		gp, err := graph.Permute(ng.G, perm)
		if err != nil {
			return err
		}
		measure := func(gg *graph.CSR) (total, ls time.Duration) {
			total = minTime(cfg.Reps, func() {
				_, rep, err := core.ParHDE(gg, opt)
				if err != nil {
					panic(err)
				}
				ls = rep.Breakdown.LS
			})
			return total, ls
		}
		tOrig, lsOrig := measure(ng.G)
		tPerm, lsPerm := measure(gp)
		fprintf(w, "%-8s %-22s %12.4f %12.4f %12.0f\n", ng.Name, "original (locality)", seconds(tOrig), seconds(lsOrig), graph.GapSummary(ng.G).Mean)
		fprintf(w, "%-8s %-22s %12.4f %12.4f %12.0f\n", ng.Name, "random permutation", seconds(tPerm), seconds(lsPerm), graph.GapSummary(gp).Mean)
		fprintf(w, "%-8s slowdown: LS %.1fx, overall %.1fx\n", ng.Name, ratio(lsPerm, lsOrig), ratio(tPerm, tOrig))
	}
	return nil
}

// RefineExperiment reproduces the §4.5.3 claim: ParHDE followed by
// centroid refinement reaches an eigenvector-quality layout much faster
// than cold power iteration (22×–131× in Kirmani et al. [27]).
func RefineExperiment(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g := plate(cfg)
	fprintf(w, "Preprocessing experiment (plate mesh, n=%d m=%d)\n", g.NumV, g.NumEdges())

	// Warm path: ParHDE seed + refinement sweeps to a target residual.
	const target = 1e-3
	start := time.Now()
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1, SkipConnectivityCheck: true})
	if err != nil {
		return err
	}
	var warmSweeps int
	for it := 0; it < 100000; it += 10 {
		st := core.Refine(g, lay, 10, 0)
		warmSweeps += st.Iterations
		if st.Residual < target {
			break
		}
	}
	tWarm := time.Since(start)
	warmRes := core.EigenResidual(g, lay)

	// Cold path: power iteration from random vectors to the same residual.
	start = time.Now()
	var coldIters int
	var coldRes float64
	for iters := 200; ; iters *= 2 {
		pw := eigen.WalkPower(g, 2, eigen.PowerOptions{Seed: 9, MaxIters: iters, Tol: 0})
		coldIters = pw.Iterations[0] + pw.Iterations[1]
		coldLay := &core.Layout{Coords: pw.Vectors}
		coldRes = core.EigenResidual(g, coldLay)
		if coldRes <= warmRes*1.05 || iters > 100000 {
			break
		}
	}
	tCold := time.Since(start)

	fprintf(w, "%-34s %12s %12s %10s\n", "method", "time (s)", "residual", "sweeps")
	fprintf(w, "%-34s %12.4f %12.2e %10d\n", "ParHDE + centroid refinement", seconds(tWarm), warmRes, warmSweeps)
	fprintf(w, "%-34s %12.4f %12.2e %10d\n", "cold power iteration", seconds(tCold), coldRes, coldIters)
	fprintf(w, "speedup of warm start: %.1fx (paper reports 22x-131x for the full scheme)\n", ratio(tCold, tWarm))
	return nil
}

// LSAblation isolates the fused LS kernel against the explicit-Laplacian
// SpMM (the paper reports its fused kernel beats MKL's sparse SpMM by
// 2.5× on average, partly by never materializing L).
func LSAblation(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "LS kernel ablation: fused column-wise vs tiled (s ≫ 1 special case) vs explicit-Laplacian SpMM, s=%d\n", cfg.Subspace)
	fprintf(w, "%-10s %12s %12s %14s %12s %11s %11s\n", "graph", "fused (s)", "tiled (s)", "explicit (s)", "build L (s)", "exp/fused", "fused/tiled")
	for _, ng := range LargeCollection(cfg.Factor) {
		g := ng.G
		deg := g.WeightedDegrees()
		s := linalg.NewDense(g.NumV, cfg.Subspace)
		for i := range s.Data {
			s.Data[i] = float64(i%17) * 0.25
		}
		tFused := minTime(cfg.Reps, func() { linalg.LapMulDense(g, deg, s) })
		tTiled := minTime(cfg.Reps, func() { linalg.LapMulDenseTiled(g, deg, s) })
		var lap *linalg.ExplicitLaplacian
		tBuild := minTime(1, func() { lap = linalg.NewExplicitLaplacian(g) })
		tExp := minTime(cfg.Reps, func() { lap.MulDense(s) })
		fprintf(w, "%-10s %12.4f %12.4f %14.4f %12.4f %10.2fx %10.2fx\n",
			ng.Name, seconds(tFused), seconds(tTiled), seconds(tExp), seconds(tBuild),
			ratio(tExp, tFused), ratio(tFused, tTiled))
	}
	return nil
}

// DeltaSweep measures Δ-stepping sensitivity to the bucket width on the
// weighted road analogue — the "performance is dependent on the setting
// for Δ" observation of §4.4.
func DeltaSweep(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	side := scaled(220, cfg.Factor)
	g := gen.WithRandomWeights(gen.Road(side, side, 105), 100, 7)
	dist := make([]float64, g.NumV)
	fprintf(w, "Δ-stepping sweep (weighted road analogue, n=%d, weights 1..100)\n", g.NumV)
	fprintf(w, "%8s %12s %10s %14s\n", "delta", "time (s)", "buckets", "light phases")
	for _, delta := range []float64{1, 5, 10, 25, 50, 100, 200} {
		var st sssp.Stats
		t := minTime(cfg.Reps, func() { st = sssp.DeltaStepping(g, 0, delta, dist) })
		fprintf(w, "%8g %12.4f %10d %14d\n", delta, seconds(t), st.Buckets, st.LightPhases)
	}
	return nil
}

func fprintfStr(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
