package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestIncrementalWarmStartAcceptance pins the dynamic-graph acceptance
// bar: after a ≤1% edge delta on the kron 2^16 analogue, the warm-start
// refinement must be at least 5× faster than a cold relayout while
// keeping sampled stress within 5% of the cold result.
func TestIncrementalWarmStartAcceptance(t *testing.T) {
	rep, err := RunIncremental(Config{Reps: 3}, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(rep.Entries))
	}
	e := rep.Entries[0]
	if float64(e.DeltaEdges) > 0.01*float64(rep.Edges)+1 {
		t.Fatalf("delta %d exceeds 1%% of %d edges", e.DeltaEdges, rep.Edges)
	}
	if e.RefineSweeps < 2 {
		t.Fatalf("refine sweeps = %d, want ≥ 2", e.RefineSweeps)
	}
	if e.Speedup < 5 {
		t.Errorf("warm speedup %.1fx (cold %.4fs, warm %.4fs), want ≥ 5x",
			e.Speedup, e.ColdSeconds, e.WarmSeconds)
	}
	if e.WarmStress > 1.05*e.ColdStress {
		t.Errorf("warm stress %.4f not within 5%% of cold %.4f", e.WarmStress, e.ColdStress)
	}
}

// TestIncrementalExperimentWritesJSON checks the hdebench wiring: the
// experiment renders a table and emits the machine-readable record.
func TestIncrementalExperimentWritesJSON(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := Run("incremental", &buf, Config{Reps: 1, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("speedup")) {
		t.Fatalf("table missing header:\n%s", buf.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_INCREMENTAL_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("incremental JSON not written: %v %v", matches, err)
	}
	b, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep IncrementalReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 3 || rep.Graph != "kron16" {
		t.Fatalf("unexpected report: graph=%q entries=%d", rep.Graph, len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.ColdSeconds <= 0 || e.WarmSeconds <= 0 || e.ColdStress <= 0 || e.WarmStress <= 0 {
			t.Fatalf("degenerate entry: %+v", e)
		}
	}
}
