package exp

import (
	"io"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/pivot"
)

// Table2 prints the graph collection after preprocessing (paper Table 2):
// name, edge count, vertex count.
func Table2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Table 2: test graph collection (synthetic analogues, factor %d)\n", cfg.Factor)
	fprintf(w, "%-10s %-11s %12s %12s\n", "graph", "analogue", "m", "n")
	for _, ng := range Collection(cfg.Factor) {
		fprintf(w, "%-10s %-11s %12d %12d\n", ng.Name, ng.Analogue, ng.G.NumEdges(), ng.G.NumV)
	}
	return nil
}

// Table3 compares ParHDE against the prior parallel implementation at
// s = 10 on the five large graphs (paper Table 3).
func Table3(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Table 3: ParHDE vs prior parallel implementation, s=10\n")
	fprintf(w, "%-10s %12s %12s %9s\n", "graph", "ParHDE (s)", "Prior (s)", "speedup")
	for _, ng := range LargeCollection(cfg.Factor) {
		opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
		tPar := minTime(cfg.Reps, func() {
			if _, _, err := core.ParHDE(ng.G, opt); err != nil {
				panic(err)
			}
		})
		tPrior := minTime(cfg.Reps, func() {
			if _, _, err := core.Prior(ng.G, opt); err != nil {
				panic(err)
			}
		})
		fprintf(w, "%-10s %12.4f %12.4f %8.1fx\n",
			ng.Name, seconds(tPar), seconds(tPrior), ratio(tPrior, tPar))
	}
	return nil
}

// Table4 reports ParHDE execution time on every graph plus the relative
// speedup over the single-threaded run (paper Table 4).
func Table4(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Table 4: ParHDE execution time and relative speedup (%d threads vs 1), s=10\n", cfg.MaxThreads)
	fprintf(w, "%-10s %12s %12s %10s\n", "graph", "time (s)", "1-thread(s)", "rel.spdup")
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for _, ng := range Collection(cfg.Factor) {
		var tPar, tSer time.Duration
		withThreads(cfg.MaxThreads, func() {
			tPar = minTime(cfg.Reps, func() { mustParHDE(ng, opt) })
		})
		withThreads(1, func() {
			tSer = minTime(cfg.Reps, func() { mustParHDE(ng, opt) })
		})
		fprintf(w, "%-10s %12.4f %12.4f %9.1fx\n",
			ng.Name, seconds(tPar), seconds(tSer), ratio(tSer, tPar))
	}
	return nil
}

// Table5 reports PHDE and PivotMDS times with relative speedups on the
// five large graphs (paper Table 5).
func Table5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Table 5: PHDE and PivotMDS execution times and relative speedup, s=10\n")
	fprintf(w, "%-10s %12s %10s %14s %10s\n", "graph", "PHDE (s)", "rel.spdup", "PivotMDS (s)", "rel.spdup")
	opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
	for _, ng := range LargeCollection(cfg.Factor) {
		var tP, tP1, tM, tM1 time.Duration
		withThreads(cfg.MaxThreads, func() {
			tP = minTime(cfg.Reps, func() { mustRun(core.PHDE, ng, opt) })
			tM = minTime(cfg.Reps, func() { mustRun(core.PivotMDS, ng, opt) })
		})
		withThreads(1, func() {
			tP1 = minTime(cfg.Reps, func() { mustRun(core.PHDE, ng, opt) })
			tM1 = minTime(cfg.Reps, func() { mustRun(core.PivotMDS, ng, opt) })
		})
		fprintf(w, "%-10s %12.4f %9.1fx %14.4f %9.1fx\n",
			ng.Name, seconds(tP), ratio(tP1, tP), seconds(tM), ratio(tM1, tM))
	}
	return nil
}

// Table6 compares the default k-centers pivot strategy against random
// pivots on the BFS phase with 30 sources, on the five smallest graphs
// (paper Table 6).
func Table6(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	const sources = 30
	fprintf(w, "Table 6: BFS phase, k-centers vs random pivots (plus bit-parallel MS-BFS), %d sources\n", sources)
	fprintf(w, "%-10s %14s %14s %9s %12s %9s\n", "graph", "k-centers (s)", "random (s)", "speedup", "ms-bfs (s)", "speedup")
	for _, ng := range SmallCollection(cfg.Factor) {
		g := ng.G
		s := sources
		if s >= g.NumV {
			s = g.NumV - 1
		}
		b := linalg.NewDense(g.NumV, s)
		tDefault := minTime(cfg.Reps, func() {
			pivot.Phase(g, b, 0, pivot.KCenters, bfs.Options{}, nil, nil)
		})
		tRandom := minTime(cfg.Reps, func() {
			pivot.Phase(g, b, 0, pivot.Random, bfs.Options{}, nil, nil)
		})
		tMS := minTime(cfg.Reps, func() {
			pivot.Phase(g, b, 0, pivot.RandomMS, bfs.Options{}, nil, nil)
		})
		fprintf(w, "%-10s %14.4f %14.4f %8.1fx %12.4f %8.1fx\n",
			ng.Name, seconds(tDefault), seconds(tRandom), ratio(tDefault, tRandom),
			seconds(tMS), ratio(tDefault, tMS))
	}
	return nil
}

// Table7 compares Gram-Schmidt procedures on the DOrtho phase for the
// five large graphs (paper Table 7), extended with the unblocked MGS-L1
// reference so the panel-blocking gain is visible alongside the paper's
// MGS-vs-CGS comparison.
func Table7(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fprintf(w, "Table 7: D-orthogonalization, panel MGS (default) vs CGS vs unblocked MGS-L1, s=%d\n", cfg.Subspace)
	fprintf(w, "%-10s %12s %12s %12s %9s\n", "graph", "MGS (s)", "CGS (s)", "MGS-L1 (s)", "speedup")
	for _, ng := range LargeCollection(cfg.Factor) {
		g := ng.G
		s := cfg.Subspace
		b := linalg.NewDense(g.NumV, s)
		pivot.Phase(g, b, 0, pivot.KCenters, bfs.Options{}, nil, nil)
		deg := g.WeightedDegrees()
		tMGS := minTime(cfg.Reps, func() { ortho.DOrthogonalize(b, deg, ortho.MGS) })
		tCGS := minTime(cfg.Reps, func() { ortho.DOrthogonalize(b, deg, ortho.CGS) })
		tL1 := minTime(cfg.Reps, func() { ortho.DOrthogonalize(b, deg, ortho.MGSLevel1) })
		fprintf(w, "%-10s %12.4f %12.4f %12.4f %8.1fx\n",
			ng.Name, seconds(tMGS), seconds(tCGS), seconds(tL1), ratio(tMGS, tCGS))
	}
	return nil
}

func mustParHDE(ng NamedGraph, opt core.Options) *core.Report {
	_, rep, err := core.ParHDE(ng.G, opt)
	if err != nil {
		panic("exp: " + ng.Name + ": " + err.Error())
	}
	return rep
}

func mustRun(f func(*graph.CSR, core.Options) (*core.Layout, *core.Report, error), ng NamedGraph, opt core.Options) *core.Report {
	_, rep, err := f(ng.G, opt)
	if err != nil {
		panic("exp: " + ng.Name + ": " + err.Error())
	}
	return rep
}
