package exp

import (
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
)

// Table1 empirically verifies the asymptotic analysis of the paper's
// Table 1: with the graph fixed, BFS-phase and TripleProd work grow
// linearly in the subspace dimension s while DOrtho grows quadratically;
// with s fixed, every phase grows (near-)linearly in the graph size. The
// runner sweeps both axes, fits log-log slopes, and prints the measured
// exponents next to the predicted ones.
func Table1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()

	// --- s-sweep on a fixed graph ------------------------------------
	g := gen.Kron(14, 16, 102)
	sValues := []int{5, 10, 20, 40, 80}
	fprintf(w, "Table 1 verification (kron analogue, n=%d m=%d): phase time vs s\n", g.NumV, g.NumEdges())
	fprintf(w, "%6s %10s %12s %10s\n", "s", "BFS (s)", "TripleProd", "DOrtho")
	var bfsT, tpT, doT []float64
	for _, s := range sValues {
		opt := core.Options{Subspace: s, Seed: 42, SkipConnectivityCheck: true}
		var rep *core.Report
		minTime(cfg.Reps, func() { rep = mustParHDE(NamedGraph{Name: "kron", G: g}, opt) })
		bd := rep.Breakdown
		bfsT = append(bfsT, seconds(bd.BFS()))
		tpT = append(tpT, seconds(bd.TripleProd()))
		doT = append(doT, seconds(bd.DOrtho))
		fprintf(w, "%6d %10.4f %12.4f %10.4f\n", s, seconds(bd.BFS()), seconds(bd.TripleProd()), seconds(bd.DOrtho))
	}
	sf := make([]float64, len(sValues))
	for i, s := range sValues {
		sf[i] = float64(s)
	}
	fprintf(w, "fitted exponents (time ∝ s^e): BFS e=%.2f (predict 1), TripleProd e=%.2f (predict 1..2: s·m for LS + s²·n for the gemm), DOrtho e=%.2f (predict 2)\n",
		loglogSlope(sf, bfsT), loglogSlope(sf, tpT), loglogSlope(sf, doT))

	// --- n-sweep at fixed s -------------------------------------------
	fprintf(w, "\nphase time vs n (grid family, s=10)\n")
	fprintf(w, "%10s %10s %12s %10s\n", "n", "BFS (s)", "TripleProd", "DOrtho")
	var ns, bfsN, tpN, doN []float64
	for _, side := range []int{64, 96, 128, 192, 256} {
		gg := gen.Grid2D(side*scaled(1, cfg.Factor), side*scaled(1, cfg.Factor))
		opt := core.Options{Subspace: 10, Seed: 42, SkipConnectivityCheck: true}
		var rep *core.Report
		minTime(cfg.Reps, func() { rep = mustParHDE(NamedGraph{Name: "grid", G: gg}, opt) })
		bd := rep.Breakdown
		ns = append(ns, float64(gg.NumV))
		bfsN = append(bfsN, seconds(bd.BFS()))
		tpN = append(tpN, seconds(bd.TripleProd()))
		doN = append(doN, seconds(bd.DOrtho))
		fprintf(w, "%10d %10.4f %12.4f %10.4f\n", gg.NumV, seconds(bd.BFS()), seconds(bd.TripleProd()), seconds(bd.DOrtho))
	}
	fprintf(w, "fitted exponents (time ∝ n^e): BFS e=%.2f, TripleProd e=%.2f, DOrtho e=%.2f (all predict ~1; grid BFS carries a √n diameter depth term)\n",
		loglogSlope(ns, bfsN), loglogSlope(ns, tpN), loglogSlope(ns, doN))
	return nil
}

// loglogSlope fits the least-squares slope of log(y) against log(x) —
// the empirical scaling exponent.
func loglogSlope(x, y []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			continue
		}
		lx, ly := math.Log(x[i]), math.Log(y[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / den
}
