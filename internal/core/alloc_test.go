package core

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ortho"
	"repro/internal/pivot"
	"repro/internal/workspace"
)

// propertyGraphs is the random-graph family the reuse property is checked
// over: regular and irregular degree distributions, low and high diameter.
func propertyGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"grid":     gen.Grid2D(17, 23),
		"mesh3d":   gen.Mesh3D(7, 8, 9),
		"smallwld": gen.WattsStrogatz(700, 6, 0.1, 42),
		"scalefr":  gen.BarabasiAlbert(600, 3, 99),
	}
}

// TestWorkspaceReuseBitIdentical is the tentpole's correctness property:
// a run through a dirtied, reused workspace must be bit-identical to a
// fresh-allocation run — same coordinates, same pivots, same kept
// columns — across graph families, subspace widths, and every pipeline
// configuration that consumes workspace buffers.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"decoupled-mgs", Options{}},
		{"coupled", Options{Coupled: true}},
		{"cgs", Options{Ortho: ortho.CGS}},
		{"plain-ortho", Options{PlainOrtho: true}},
		{"tiled", Options{LS: LSTiled}},
		{"columnwise", Options{LS: LSColumnWise}},
		{"random-pivots", Options{Pivots: pivot.Random}},
		{"random-ms-pivots", Options{Pivots: pivot.RandomMS}},
	}
	ws := workspace.New()
	for _, s := range []int{4, 10, 24} {
		for gname, g := range propertyGraphs() {
			for _, v := range variants {
				t.Run(fmt.Sprintf("s%d/%s/%s", s, gname, v.name), func(t *testing.T) {
					opt := v.opt
					opt.Subspace = s
					opt.Seed = uint64(s) * 31
					fresh, frep, err := ParHDE(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					// The workspace arrives dirty: it holds whatever the
					// previous subtest (different graph, width, and
					// configuration) left behind.
					opt.Workspace = ws
					got, grep, err := ParHDE(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					if got.Coords.Rows != fresh.Coords.Rows || got.Coords.Cols != fresh.Coords.Cols {
						t.Fatalf("shape %dx%d, fresh %dx%d", got.Coords.Rows, got.Coords.Cols, fresh.Coords.Rows, fresh.Coords.Cols)
					}
					for i := range fresh.Coords.Data {
						if got.Coords.Data[i] != fresh.Coords.Data[i] {
							t.Fatalf("coord %d = %v, fresh run has %v", i, got.Coords.Data[i], fresh.Coords.Data[i])
						}
					}
					if len(grep.Sources) != len(frep.Sources) {
						t.Fatalf("%d sources, fresh %d", len(grep.Sources), len(frep.Sources))
					}
					for i := range frep.Sources {
						if grep.Sources[i] != frep.Sources[i] {
							t.Fatalf("source %d = %d, fresh run picked %d", i, grep.Sources[i], frep.Sources[i])
						}
					}
					if grep.KeptColumns != frep.KeptColumns || grep.DroppedColumns != frep.DroppedColumns {
						t.Fatalf("kept/dropped %d/%d, fresh %d/%d",
							grep.KeptColumns, grep.DroppedColumns, frep.KeptColumns, frep.DroppedColumns)
					}
				})
			}
		}
	}
}

// allocBudget mirrors perf/alloc_budget.json: the CI gate over
// steady-state allocation behavior.
type allocBudget struct {
	Comment     string `json:"comment"`
	SteadyState map[string]struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  uint64  `json:"bytes_per_op"`
	} `json:"steady_state"`
}

func loadBudget(t *testing.T) allocBudget {
	t.Helper()
	b, err := os.ReadFile("../../perf/alloc_budget.json")
	if err != nil {
		t.Fatalf("reading allocation budget: %v", err)
	}
	var budget allocBudget
	if err := json.Unmarshal(b, &budget); err != nil {
		t.Fatalf("decoding allocation budget: %v", err)
	}
	return budget
}

// TestSteadyStateAllocBudget asserts the warmed-workspace hot path stays
// within the checked-in allocation budget. It pins GOMAXPROCS to 1 so the
// parallel primitives take their serial fast paths and the measurement is
// deterministic; what remains is the small shape-independent constant
// (result headers, the s×s eigensolve) the budget file pins down.
func TestSteadyStateAllocBudget(t *testing.T) {
	budget := loadBudget(t)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	g := gen.Grid2D(24, 30) // n = 720 < MinGrain·2: serial primitives
	for name, opt := range map[string]Options{
		"parhde_decoupled": {Subspace: 10, Seed: 3, SkipConnectivityCheck: true},
		"parhde_coupled":   {Subspace: 10, Seed: 3, SkipConnectivityCheck: true, Coupled: true},
		"parhde_random_ms": {Subspace: 10, Seed: 3, SkipConnectivityCheck: true, Pivots: pivot.RandomMS},
	} {
		t.Run(name, func(t *testing.T) {
			want, ok := budget.SteadyState[name]
			if !ok {
				t.Fatalf("no budget entry for %q", name)
			}
			ws := workspace.New()
			opt.Workspace = ws
			run := func() {
				if _, _, err := ParHDE(g, opt); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the workspace
			allocs := testing.AllocsPerRun(20, run)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			const reps = 20
			for i := 0; i < reps; i++ {
				run()
			}
			runtime.ReadMemStats(&after)
			bytesPerOp := (after.TotalAlloc - before.TotalAlloc) / reps
			t.Logf("%s: %.1f allocs/op, %d bytes/op (budget %.0f allocs, %d bytes)",
				name, allocs, bytesPerOp, want.AllocsPerOp, want.BytesPerOp)
			if allocs > want.AllocsPerOp {
				t.Errorf("steady state allocates %.1f objects/op, budget is %.0f — if the regression is intentional, raise perf/alloc_budget.json", allocs, want.AllocsPerOp)
			}
			if bytesPerOp > want.BytesPerOp {
				t.Errorf("steady state allocates %d bytes/op, budget is %d — if the regression is intentional, raise perf/alloc_budget.json", bytesPerOp, want.BytesPerOp)
			}
		})
	}
}

// TestTrackAllocsReportsPhases checks the per-phase allocation capture
// used by the hdebench alloc snapshots.
func TestTrackAllocsReportsPhases(t *testing.T) {
	g := gen.Grid2D(12, 12)
	_, rep, err := ParHDE(g, Options{Subspace: 6, Seed: 1, TrackAllocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhaseAllocs) == 0 {
		t.Fatal("TrackAllocs produced no PhaseAllocs")
	}
	seen := map[string]bool{}
	for _, pa := range rep.PhaseAllocs {
		seen[pa.Name] = true
	}
	for _, name := range []string{"bfs_traversal", "dortho", "ls", "gemm", "project"} {
		if !seen[name] {
			t.Errorf("phase %q missing from PhaseAllocs (have %v)", name, rep.PhaseAllocs)
		}
	}
	_, rep, err = ParHDE(g, Options{Subspace: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PhaseAllocs != nil {
		t.Fatal("PhaseAllocs populated without TrackAllocs")
	}
}

func benchmarkParHDE(b *testing.B, ws *workspace.Workspace) {
	g := gen.Grid2D(100, 100)
	opt := Options{Subspace: 10, Seed: 1, SkipConnectivityCheck: true, Workspace: ws}
	if _, _, err := ParHDE(g, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParHDE(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParHDEFresh allocates every buffer per run (the pre-workspace
// behavior); compare its allocs/op against BenchmarkParHDEWorkspace.
func BenchmarkParHDEFresh(b *testing.B) { benchmarkParHDE(b, nil) }

// BenchmarkParHDEWorkspace reuses one warmed workspace across all runs —
// the steady state of a job-engine worker.
func BenchmarkParHDEWorkspace(b *testing.B) { benchmarkParHDE(b, workspace.New()) }
