package core

import (
	"fmt"

	"repro/internal/graph"
)

// ZoomResult is a layout of the k-hop neighborhood of a selected vertex,
// with the mapping back to the original vertex ids.
type ZoomResult struct {
	// Layout is the neighborhood's own layout (subgraph vertex ids).
	Layout *Layout
	// Subgraph is the extracted k-hop neighborhood.
	Subgraph *graph.CSR
	// Orig[i] is the original id of subgraph vertex i.
	Orig []int32
	// Center is the subgraph id of the selected vertex.
	Center int32
}

// Zoom implements the §4.5.2 interactive "zoom" feature: extract the
// induced subgraph on all vertices within hops of center, then lay it out
// with ParHDE. Real-time zooming is feasible because ParHDE handles
// million-edge graphs interactively.
func Zoom(g *graph.CSR, center int32, hops int, opt Options) (*ZoomResult, error) {
	if hops < 1 {
		return nil, fmt.Errorf("core: zoom needs at least 1 hop")
	}
	vertices, err := graph.Neighborhood(g, center, hops)
	if err != nil {
		return nil, err
	}
	sub, orig, err := graph.InducedSubgraph(g, vertices)
	if err != nil {
		return nil, err
	}
	var subCenter int32 = -1
	for i, v := range orig {
		if v == center {
			subCenter = int32(i)
			break
		}
	}
	if opt.Subspace <= 0 {
		opt.Subspace = DefaultSubspace
	}
	lay, _, err := ParHDE(sub, opt)
	if err != nil {
		return nil, err
	}
	return &ZoomResult{
		Layout:   lay,
		Subgraph: sub,
		Orig:     orig,
		Center:   subCenter,
	}, nil
}
