package core

import "context"

// phaseNotifyKey carries an optional per-phase progress observer through a
// context. The layout engines call the observer at the start of each major
// phase, which is how the async job engine reports "where is this run now"
// without the core packages depending on it.
type phaseNotifyKey struct{}

// WithPhaseNotify returns a context that delivers phase-transition
// notifications to f. The engines call f synchronously from the layout
// goroutine at each phase boundary, so f must be cheap and must not block
// (store-an-atomic cheap; it is on the layout's critical path).
func WithPhaseNotify(ctx context.Context, f func(phase string)) context.Context {
	return context.WithValue(ctx, phaseNotifyKey{}, f)
}

// NotifyPhase reports entering the named phase to the observer installed
// with WithPhaseNotify, if any. Exported so the pipeline package can
// report its post-processing phases (refine, stress, quality) through the
// same channel.
func NotifyPhase(ctx context.Context, phase string) {
	if f, ok := ctx.Value(phaseNotifyKey{}).(func(string)); ok {
		f(phase)
	}
}
