package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Quality summarizes a layout against the paper's Equation 1 aesthetics:
// the Hall/Koren energy ratio (lower = similar vertices drawn closer,
// relative to overall scatter) plus simple edge-length statistics.
type Quality struct {
	// HallRatio is Σ_k xₖᵀLxₖ / Σ_k xₖᵀDxₖ, computed on centered axes —
	// the objective of Equation 1 (without the orthogonality constraints).
	HallRatio float64
	// MeanEdgeLength is the mean drawn edge length after unit
	// normalization.
	MeanEdgeLength float64
	// EdgeLengthCV is the coefficient of variation of the drawn edge
	// lengths — lower is more uniform.
	EdgeLengthCV float64
}

// Evaluate computes layout-quality metrics for l on g.
func Evaluate(g *graph.CSR, l *Layout) Quality {
	n := g.NumV
	deg := g.WeightedDegrees()
	var num, den float64
	tmp := make([]float64, n)
	for k := 0; k < l.Dims(); k++ {
		x := centered(g, l.Coords.Col(k), deg)
		linalg.LapMulVec(g, deg, x, tmp)
		num += linalg.Dot(x, tmp)
		den += linalg.DDot(x, deg, x)
	}
	q := Quality{}
	if den > 0 {
		q.HallRatio = num / den
	}

	// Edge-length statistics on a unit-normalized copy.
	copyL := l.Clone()
	copyL.NormalizeUnit()
	var sum, sumSq float64
	var count int64
	sum = parallel.SumFloat64(n, func(v int) float64 {
		var s float64
		for _, u := range g.Neighbors(int32(v)) {
			if u <= int32(v) {
				continue
			}
			s += edgeLen(copyL, int32(v), u)
		}
		return s
	})
	sumSq = parallel.SumFloat64(n, func(v int) float64 {
		var s float64
		for _, u := range g.Neighbors(int32(v)) {
			if u <= int32(v) {
				continue
			}
			d := edgeLen(copyL, int32(v), u)
			s += d * d
		}
		return s
	})
	count = g.NumEdges()
	if count > 0 {
		mean := sum / float64(count)
		q.MeanEdgeLength = mean
		variance := sumSq/float64(count) - mean*mean
		if variance < 0 {
			variance = 0
		}
		if mean > 0 {
			q.EdgeLengthCV = math.Sqrt(variance) / mean
		}
	}
	return q
}

// centered returns x minus its D-weighted mean — Equation 1's constraint
// xᵀD1 = 0 imposed before measuring energy.
func centered(g *graph.CSR, x, deg []float64) []float64 {
	n := len(x)
	var wsum, dsum float64
	wsum = parallel.SumFloat64(n, func(i int) float64 { return deg[i] * x[i] })
	dsum = parallel.SumFloat64(n, func(i int) float64 { return deg[i] })
	mean := 0.0
	if dsum > 0 {
		mean = wsum / dsum
	}
	out := make([]float64, n)
	parallel.ForBlock(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = x[i] - mean
		}
	})
	return out
}

func edgeLen(l *Layout, v, u int32) float64 {
	var s float64
	for k := 0; k < l.Dims(); k++ {
		col := l.Coords.Col(k)
		d := col[v] - col[u]
		s += d * d
	}
	return math.Sqrt(s)
}

// RandomLayout returns a uniform random layout in the unit square — the
// null model quality comparisons are made against (any sensible drawing
// algorithm should achieve a far lower HallRatio).
func RandomLayout(n, dims int, seed uint64) *Layout {
	coords := linalg.NewDense(n, dims)
	state := seed
	for i := range coords.Data {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		coords.Data[i] = float64(z>>11) / (1 << 53)
	}
	return &Layout{Coords: coords}
}

// DistanceCorrelation measures how well the layout preserves global
// structure: the Pearson correlation between graph (hop) distance and
// Euclidean layout distance over sampled vertex pairs. Values near 1 mean
// the drawing "captures the global structure" in Figure 1's sense. pairs
// source vertices are sampled; each contributes its distances to all
// other vertices.
func DistanceCorrelation(g *graph.CSR, l *Layout, sources int, seed uint64) float64 {
	n := g.NumV
	if sources > n {
		sources = n
	}
	if sources < 1 || n < 2 {
		return 0
	}
	perm := graph.RandomPermutation(n, seed)
	hops := make([]int32, n)
	var sumX, sumY, sumXX, sumYY, sumXY float64
	var count float64
	for si := 0; si < sources; si++ {
		src := perm[si]
		serialBFSInto(g, src, hops)
		for v := 0; v < n; v++ {
			if int32(v) == src || hops[v] < 0 {
				continue
			}
			gd := float64(hops[v])
			ed := edgeLen(l, src, int32(v))
			sumX += gd
			sumY += ed
			sumXX += gd * gd
			sumYY += ed * ed
			sumXY += gd * ed
			count++
		}
	}
	if count < 2 {
		return 0
	}
	cov := sumXY/count - (sumX/count)*(sumY/count)
	vx := sumXX/count - (sumX/count)*(sumX/count)
	vy := sumYY/count - (sumY/count)*(sumY/count)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// serialBFSInto is a minimal BFS used by the quality metric (avoids an
// import cycle with the bfs package, which depends on nothing here but
// keeps core free of traversal state).
func serialBFSInto(g *graph.CSR, src int32, dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		var next []int32
		for _, u := range queue {
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		queue = next
	}
}
