package core

import (
	"fmt"
	"math"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// Prior reimplements the prior parallel HDE of Kirmani and Madduri
// ([27, 33] in the paper) faithfully enough to reproduce Table 3's
// comparison. It shares ParHDE's three stages but keeps the three
// inefficiencies §4.2 identifies: (i) the BFS is sequential ("does not
// use parallel BFS"), with sequential source selection; (ii) the graph
// Laplacian is explicitly materialized, inflating the peak memory
// footprint by n+2m stored values plus indices; (iii) the LS product runs
// through the generic CSR SpMM over that structure instead of the fused
// degrees-array kernel. Dense matrix products remain parallel, as they
// were in the Eigen-based original.
func Prior(g *graph.CSR, opt Options) (*Layout, *Report, error) {
	opt = opt.withDefaults()
	if g.NumV < 2 {
		return nil, nil, fmt.Errorf("core: graph has %d vertices, need at least 2", g.NumV)
	}
	if g.Weighted() {
		return nil, nil, fmt.Errorf("core: the prior baseline is defined for unweighted graphs (its traversal is a plain BFS)")
	}
	rep := &Report{}
	bd := &rep.Breakdown
	n := g.NumV
	s := opt.Subspace
	if s >= n {
		s = n - 1
	}
	var layout *Layout
	var err error
	timed(&bd.Total, func() {
		// --- BFS phase: sequential traversal, sequential selection --------
		b := linalg.NewDense(n, s)
		dist := make([]int32, n)
		dmin := make([]int32, n)
		for i := range dmin {
			dmin[i] = int32(1) << 30
		}
		src := int32(splitmix(opt.Seed) % uint64(n))
		for i := 0; i < s; i++ {
			rep.Sources = append(rep.Sources, src)
			timed(&bd.BFSTraversal, func() { bfs.Serial(g, src, dist) })
			timed(&bd.BFSOther, func() {
				col := b.Col(i)
				best := 0
				for j := 0; j < n; j++ {
					col[j] = float64(dist[j])
					if dist[j] < dmin[j] {
						dmin[j] = dist[j]
					}
					if dmin[j] > dmin[best] {
						best = j
					}
				}
				src = int32(best)
			})
		}
		if !opt.SkipConnectivityCheck {
			for i := range dist {
				if b.At(i, 0) < 0 {
					err = fmt.Errorf("core: graph is not connected")
					return
				}
			}
		}

		// --- DOrtho phase: sequential Gram-Schmidt -------------------------
		deg := g.WeightedDegrees()
		var sMat *linalg.Dense
		var dNorms []float64
		timed(&bd.DOrtho, func() {
			sMat, dNorms = serialDOrtho(b, deg)
		})
		if sMat.Cols < opt.Dims {
			err = fmt.Errorf("core: only %d independent distance vectors", sMat.Cols)
			return
		}

		// --- Explicit Laplacian (the memory blow-up Table 3 charges for) ---
		var lap *linalg.ExplicitLaplacian
		timed(&bd.LapBuild, func() { lap = linalg.NewExplicitLaplacian(g) })

		// --- TripleProd through the explicit structure ----------------------
		var p *linalg.Dense
		timed(&bd.LS, func() { p = lap.MulDense(sMat) })
		var z *linalg.Dense
		timed(&bd.Gemm, func() { z = linalg.AtB(sMat, p) })

		// --- Eigensolve and projection --------------------------------------
		var axes *linalg.Dense
		timed(&bd.Eigensolve, func() {
			axes, rep.Eigenvalues, err = projectedAxes(z, dNorms, opt.Dims)
		})
		if err != nil {
			return
		}
		timed(&bd.Project, func() {
			layout = &Layout{Coords: linalg.MulSmall(sMat, axes)}
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return layout, rep, nil
}

// serialDOrtho is the single-threaded Modified Gram-Schmidt with D-inner
// products used by the prior baseline (its vector kernels ran through
// Eigen without OpenMP parallelism).
func serialDOrtho(b *linalg.Dense, deg []float64) (*linalg.Dense, []float64) {
	n, s := b.Rows, b.Cols
	s0 := make([]float64, n)
	inv := 1 / math.Sqrt(float64(n))
	for i := range s0 {
		s0[i] = inv
	}
	kept := [][]float64{s0}
	dn := []float64{serialDDot(s0, deg, s0)}
	work := make([]float64, n)
	var outCols [][]float64
	var outDN []float64
	for c := 0; c < s; c++ {
		copy(work, b.Col(c))
		nrm := serialNorm(work)
		if nrm <= 1e-3 {
			continue
		}
		for i := range work {
			work[i] /= nrm
		}
		for j, kc := range kept {
			coef := serialDDot(kc, deg, work) / dn[j]
			for i := range work {
				work[i] -= coef * kc[i]
			}
		}
		res := serialNorm(work)
		if res <= 1e-3 {
			continue
		}
		col := make([]float64, n)
		for i := range work {
			col[i] = work[i] / res
		}
		kept = append(kept, col)
		d := serialDDot(col, deg, col)
		dn = append(dn, d)
		outCols = append(outCols, col)
		outDN = append(outDN, d)
	}
	out := linalg.NewDense(n, len(outCols))
	for j, col := range outCols {
		copy(out.Col(j), col)
	}
	return out, outDN
}

func serialDDot(x, d, y []float64) float64 {
	var sum float64
	for i := range x {
		sum += x[i] * d[i] * y[i]
	}
	return sum
}

func serialNorm(x []float64) float64 {
	var sum float64
	for i := range x {
		sum += x[i] * x[i]
	}
	return math.Sqrt(sum)
}
