package core

import (
	"math"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/pivot"
)

func TestParHDEOnPathRecoversLine(t *testing.T) {
	// The second smallest Laplacian eigenvector of a path is monotone
	// (the Fiedler vector), so the first HDE axis must order the path
	// monotonically.
	g := gen.Path(200)
	lay, rep, err := ParHDE(g, Options{Subspace: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lay.Dims() != 2 || lay.NumVertices() != 200 {
		t.Fatalf("layout shape %dx%d", lay.NumVertices(), lay.Dims())
	}
	if rep.KeptColumns < 2 {
		t.Fatalf("kept %d columns", rep.KeptColumns)
	}
	x := lay.X()
	inc, dec := 0, 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[i-1] {
			inc++
		} else if x[i] < x[i-1] {
			dec++
		}
	}
	if inc != len(x)-1 && dec != len(x)-1 {
		t.Fatalf("first axis not monotone along path: %d up, %d down", inc, dec)
	}
}

func TestParHDEBeatsRandomLayoutQuality(t *testing.T) {
	// Meshes have tiny λ2, so spectral layouts should beat random by a wide
	// margin; expanders (kron) have λ2 = Θ(1) and only a modest win is
	// information-theoretically possible.
	cases := []struct {
		name   string
		g      *graph.CSR
		factor float64
	}{
		{"plate", gen.PlateWithHoles(30, 30), 2},
		{"grid", gen.Grid2D(25, 25), 2},
		{"kron", gen.Kron(9, 8, 2), 1},
	}
	for _, c := range cases {
		lay, _, err := ParHDE(c.g, Options{Subspace: 10, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		hde := Evaluate(c.g, lay)
		rnd := Evaluate(c.g, RandomLayout(c.g.NumV, 2, 3))
		if hde.HallRatio >= rnd.HallRatio/c.factor {
			t.Fatalf("%s: HDE Hall ratio %.4g not below random %.4g / %g", c.name, hde.HallRatio, rnd.HallRatio, c.factor)
		}
	}
}

func TestParHDEDeterministicForSeed(t *testing.T) {
	g := gen.Grid2D(20, 20)
	a, _, err := ParHDE(g, Options{Subspace: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ParHDE(g, Options{Subspace: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords.Data {
		if a.Coords.Data[i] != b.Coords.Data[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
}

func TestParHDERejectsDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParHDE(g, Options{Subspace: 3}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestParHDERejectsTinyGraph(t *testing.T) {
	g, _ := graph.FromEdges(1, nil, graph.BuildOptions{KeepAllComponents: true})
	if _, _, err := ParHDE(g, Options{}); err == nil {
		t.Fatal("1-vertex graph accepted")
	}
}

func TestParHDESubspaceClamp(t *testing.T) {
	// s ≥ n must clamp rather than loop forever.
	g := gen.Complete(6)
	lay, rep, err := ParHDE(g, Options{Subspace: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumVertices() != 6 {
		t.Fatal("wrong layout size")
	}
	if len(rep.Sources) >= 6+1 {
		t.Fatalf("%d sources for 6 vertices", len(rep.Sources))
	}
}

func TestParHDEVariantsAgreeOnQuality(t *testing.T) {
	// CGS vs MGS and plain vs D-ortho must all produce sane layouts of
	// similar quality (identical drawings are not guaranteed).
	g := gen.PlateWithHoles(25, 25)
	base, _, err := ParHDE(g, Options{Subspace: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseQ := Evaluate(g, base).HallRatio
	for name, opt := range map[string]Options{
		"cgs":        {Subspace: 10, Seed: 4, Ortho: ortho.CGS},
		"plain":      {Subspace: 10, Seed: 4, PlainOrtho: true},
		"random-piv": {Subspace: 10, Seed: 4, Pivots: pivot.Random},
	} {
		lay, _, err := ParHDE(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q := Evaluate(g, lay).HallRatio
		if q > 8*baseQ+1e-9 {
			t.Fatalf("%s quality %.4g vs base %.4g", name, q, baseQ)
		}
	}
}

func TestParHDEWeighted(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(15, 15), 5, 7)
	lay, rep, err := ParHDE(g, Options{Subspace: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumVertices() != g.NumV {
		t.Fatal("weighted layout wrong size")
	}
	if rep.Breakdown.BFSTraversal == 0 {
		t.Fatal("no SSSP time recorded")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	g := gen.Kron(10, 8, 6)
	_, rep, err := ParHDE(g, Options{Subspace: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bd := rep.Breakdown
	sum := bd.BFS() + bd.DOrtho + bd.TripleProd() + bd.Other()
	if sum > bd.Total {
		t.Fatalf("phase sum %v exceeds total %v", sum, bd.Total)
	}
	if float64(sum) < 0.5*float64(bd.Total) {
		t.Fatalf("phases %v account for under half of total %v", sum, bd.Total)
	}
	bp, tp, op, rp := bd.Percentages()
	if tot := bp + tp + op + rp; tot < 50 || tot > 100.001 {
		t.Fatalf("percentages sum to %.1f", tot)
	}
	if bd.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestPHDEAndPivotMDSProduceLayouts(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	for name, f := range map[string]func(*graph.CSR, Options) (*Layout, *Report, error){
		"phde":     PHDE,
		"pivotmds": PivotMDS,
	} {
		lay, rep, err := f(g, Options{Subspace: 10, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lay.NumVertices() != g.NumV || lay.Dims() != 2 {
			t.Fatalf("%s: bad shape", name)
		}
		if rep.Breakdown.Centering == 0 {
			t.Fatalf("%s: no centering time recorded", name)
		}
		// PCA variants maximize scatter; top eigenvalues must be positive
		// and descending.
		if len(rep.Eigenvalues) != 2 || rep.Eigenvalues[0] < rep.Eigenvalues[1] || rep.Eigenvalues[1] < 0 {
			t.Fatalf("%s: eigenvalues %v", name, rep.Eigenvalues)
		}
		q := Evaluate(g, lay)
		r := Evaluate(g, RandomLayout(g.NumV, 2, 1))
		if q.HallRatio >= r.HallRatio {
			t.Fatalf("%s: quality %.4g not better than random %.4g", name, q.HallRatio, r.HallRatio)
		}
	}
}

func TestPriorMatchesParHDEQuality(t *testing.T) {
	g := gen.PlateWithHoles(22, 22)
	par, _, err := ParHDE(g, Options{Subspace: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pri, rep, err := Prior(g, Options{Subspace: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pq := Evaluate(g, pri).HallRatio
	bq := Evaluate(g, par).HallRatio
	if pq > 4*bq+1e-9 || bq > 4*pq+1e-9 {
		t.Fatalf("prior quality %.4g vs parhde %.4g diverge", pq, bq)
	}
	if rep.Breakdown.LapBuild == 0 {
		t.Fatal("prior did not record Laplacian build time")
	}
}

func TestEigenvaluesApproximateSpectrum(t *testing.T) {
	// ParHDE's projected eigenvalues upper-bound the true generalized
	// eigenvalues (Rayleigh-Ritz) and should be small positive numbers on
	// a mesh.
	g := gen.Grid2D(20, 20)
	_, rep, err := ParHDE(g, Options{Subspace: 12, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Eigenvalues {
		if v < -1e-9 || v > 2.0 {
			t.Fatalf("generalized eigenvalue estimate %g outside [0,2]", v)
		}
	}
	if rep.Eigenvalues[0] > rep.Eigenvalues[1] {
		t.Fatalf("eigenvalues not ascending: %v", rep.Eigenvalues)
	}
}

func TestLayoutHelpers(t *testing.T) {
	coords := linalg.NewDense(3, 2)
	copy(coords.Col(0), []float64{0, 5, 10})
	copy(coords.Col(1), []float64{-2, 0, 2})
	l := &Layout{Coords: coords}
	min, max := l.Bounds()
	if min[0] != 0 || max[0] != 10 || min[1] != -2 || max[1] != 2 {
		t.Fatalf("bounds %v %v", min, max)
	}
	l.NormalizeUnit()
	min, max = l.Bounds()
	if min[0] != 0 || math.Abs(max[0]-1) > 1e-12 {
		t.Fatalf("normalized x bounds [%g,%g]", min[0], max[0])
	}
	// Aspect ratio preserved: y span (4) scaled by same factor as x (10).
	if math.Abs((max[1]-min[1])-0.4) > 1e-12 {
		t.Fatalf("y span %g, want 0.4", max[1]-min[1])
	}
	c := l.Clone()
	c.X()[0] = 99
	if l.X()[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestZoomNeighborhood(t *testing.T) {
	g := gen.PlateWithHoles(40, 40)
	z, err := Zoom(g, int32(g.NumV/2), 10, Options{Subspace: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if z.Subgraph.NumV < 50 || z.Subgraph.NumV >= g.NumV {
		t.Fatalf("zoom subgraph size %d", z.Subgraph.NumV)
	}
	if len(z.Orig) != z.Subgraph.NumV || z.Layout.NumVertices() != z.Subgraph.NumV {
		t.Fatal("zoom mapping sizes inconsistent")
	}
	if z.Orig[z.Center] != int32(g.NumV/2) {
		t.Fatal("zoom center mapping wrong")
	}
	// Every subgraph vertex must be within 10 hops of the center: verify
	// via the subgraph itself being connected.
	if _, count := graph.Components(z.Subgraph); count != 1 {
		t.Fatal("zoom subgraph disconnected")
	}
	// Errors.
	if _, err := Zoom(g, -1, 10, Options{}); err == nil {
		t.Fatal("negative center accepted")
	}
	if _, err := Zoom(g, 0, 0, Options{}); err == nil {
		t.Fatal("zero hops accepted")
	}
}

func TestRefineReducesEigenResidual(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	lay, _, err := ParHDE(g, Options{Subspace: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := EigenResidual(g, lay)
	st := Refine(g, lay, 50, 0)
	after := EigenResidual(g, lay)
	if after >= before {
		t.Fatalf("refinement did not reduce residual: %.4g → %.4g", before, after)
	}
	if st.Iterations != 50 {
		t.Fatalf("iterations %d", st.Iterations)
	}
	// Early stopping with tolerance.
	lay2, _, _ := ParHDE(g, Options{Subspace: 10, Seed: 3})
	st2 := Refine(g, lay2, 10000, 1e-3)
	if st2.Iterations >= 10000 {
		t.Fatal("tolerance did not stop refinement early")
	}
}

func TestQualityMetricsSane(t *testing.T) {
	g := gen.Grid2D(15, 15)
	lay, _, err := ParHDE(g, Options{Subspace: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, lay)
	if q.HallRatio <= 0 || math.IsNaN(q.HallRatio) {
		t.Fatalf("HallRatio %g", q.HallRatio)
	}
	if q.MeanEdgeLength <= 0 || q.MeanEdgeLength > 1 {
		t.Fatalf("MeanEdgeLength %g", q.MeanEdgeLength)
	}
	if q.EdgeLengthCV < 0 {
		t.Fatalf("EdgeLengthCV %g", q.EdgeLengthCV)
	}
}

func TestMultilevelParHDEQuality(t *testing.T) {
	g := gen.PlateWithHoles(40, 40)
	lay, rep, err := MultilevelParHDE(g, MultilevelOptions{
		Base:    Options{Subspace: 10, Seed: 1},
		Coarsen: coarsen.Options{MinVertices: 100, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumVertices() != g.NumV || lay.Dims() != 2 {
		t.Fatal("multilevel layout wrong shape")
	}
	if len(rep.Levels) < 3 || rep.Levels[0] != g.NumV {
		t.Fatalf("levels %v", rep.Levels)
	}
	q := Evaluate(g, lay)
	r := Evaluate(g, RandomLayout(g.NumV, 2, 1))
	if q.HallRatio >= r.HallRatio/2 {
		t.Fatalf("multilevel quality %.4g vs random %.4g", q.HallRatio, r.HallRatio)
	}
	// Must land in the same quality regime as single-level ParHDE.
	single, _, err := ParHDE(g, Options{Subspace: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sq := Evaluate(g, single)
	if q.HallRatio > 10*sq.HallRatio+1e-9 {
		t.Fatalf("multilevel quality %.4g an order off single-level %.4g", q.HallRatio, sq.HallRatio)
	}
}

func TestMultilevelAxesNotDegenerate(t *testing.T) {
	g := gen.Grid2D(30, 30)
	lay, _, err := MultilevelParHDE(g, MultilevelOptions{
		Base:    Options{Subspace: 8, Seed: 2},
		Coarsen: coarsen.Options{MinVertices: 50, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The two axes must not be (anti)parallel after smoothing.
	x, y := lay.X(), lay.Y()
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 {
		t.Fatal("degenerate axis")
	}
	cos := dot / math.Sqrt(nx*ny)
	if math.Abs(cos) > 0.5 {
		t.Fatalf("axes nearly parallel: cos=%.3f", cos)
	}
}

func TestDistanceCorrelation(t *testing.T) {
	g := gen.Grid2D(20, 20)
	lay, _, err := ParHDE(g, Options{Subspace: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hde := DistanceCorrelation(g, lay, 10, 3)
	rnd := DistanceCorrelation(g, RandomLayout(g.NumV, 2, 4), 10, 3)
	if hde < 0.8 {
		t.Fatalf("HDE distance correlation %.3f too low on a grid", hde)
	}
	if hde <= rnd {
		t.Fatalf("HDE correlation %.3f not above random %.3f", hde, rnd)
	}
	// Degenerate inputs.
	if c := DistanceCorrelation(g, lay, 0, 1); c != 0 {
		t.Fatalf("zero sources returned %g", c)
	}
	tiny, _ := graph.FromEdges(1, nil, graph.BuildOptions{KeepAllComponents: true})
	if c := DistanceCorrelation(tiny, RandomLayout(1, 2, 1), 1, 1); c != 0 {
		t.Fatalf("1-vertex correlation %g", c)
	}
}

func TestLSKernelVariantsAgree(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	a, _, err := ParHDE(g, Options{Subspace: 20, Seed: 5, LS: LSColumnWise})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ParHDE(g, Options{Subspace: 20, Seed: 5, LS: LSTiled})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords.Data {
		if math.Abs(a.Coords.Data[i]-b.Coords.Data[i]) > 1e-9 {
			t.Fatalf("LS kernels diverge at %d: %g vs %g", i, a.Coords.Data[i], b.Coords.Data[i])
		}
	}
	if LSAuto.String() != "auto" || LSTiled.String() != "tiled" || LSColumnWise.String() != "columnwise" {
		t.Fatal("kernel names")
	}
}

func TestCoupledMatchesDecoupled(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	a, arep, err := ParHDE(g, Options{Subspace: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, brep, err := ParHDE(g, Options{Subspace: 15, Seed: 6, Coupled: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords.Data {
		if a.Coords.Data[i] != b.Coords.Data[i] {
			t.Fatalf("coupled layout diverges at %d", i)
		}
	}
	for i := range arep.Sources {
		if arep.Sources[i] != brep.Sources[i] {
			t.Fatal("coupled pivots diverge")
		}
	}
	if brep.Breakdown.DOrtho == 0 || brep.Breakdown.BFSTraversal == 0 {
		t.Fatal("coupled run did not attribute phase times")
	}
}

func TestCoupledRejectsUnsupportedConfigs(t *testing.T) {
	g := gen.Grid2D(10, 10)
	cases := map[string]Options{
		"cgs":      {Subspace: 5, Coupled: true, Ortho: ortho.CGS},
		"random":   {Subspace: 5, Coupled: true, Pivots: pivot.Random},
		"weighted": {Subspace: 5, Coupled: true},
	}
	for name, opt := range cases {
		gg := g
		if name == "weighted" {
			gg = gen.WithRandomWeights(g, 5, 1)
		}
		if _, _, err := ParHDE(gg, opt); err == nil {
			t.Fatalf("%s: coupled accepted", name)
		}
	}
}

func TestCoupledRejectsDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParHDE(g, Options{Subspace: 3, Coupled: true}); err == nil {
		t.Fatal("coupled accepted disconnected graph")
	}
}

func TestParHDE3D(t *testing.T) {
	// p=3 layouts (the paper's "p is chosen to be 2 or 3").
	g := gen.Mesh3D(8, 8, 8)
	lay, rep, err := ParHDE(g, Options{Subspace: 12, Dims: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if lay.Dims() != 3 {
		t.Fatalf("dims = %d", lay.Dims())
	}
	if len(rep.Eigenvalues) != 3 {
		t.Fatalf("eigenvalues %v", rep.Eigenvalues)
	}
	// The third axis must carry real variance (not collapse to zero).
	z := lay.Coords.Col(2)
	var spread float64
	for _, v := range z {
		spread += v * v
	}
	if spread < 1e-12 {
		t.Fatal("third axis degenerate")
	}
	q := Evaluate(g, lay)
	r := Evaluate(g, RandomLayout(g.NumV, 3, 2))
	if q.HallRatio >= r.HallRatio/2 {
		t.Fatalf("3D quality %.4g vs random %.4g", q.HallRatio, r.HallRatio)
	}
}

func TestOptionsDefaultsAndClamps(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Subspace != DefaultSubspace || o.Dims != 2 {
		t.Fatalf("defaults %+v", o)
	}
	o = Options{Subspace: -5, Dims: -1}.withDefaults()
	if o.Subspace != DefaultSubspace || o.Dims != 2 {
		t.Fatalf("negative clamps %+v", o)
	}
	// Dims larger than subspace: must error cleanly, not panic.
	g := gen.Grid2D(10, 10)
	if _, _, err := ParHDE(g, Options{Subspace: 2, Dims: 4, Seed: 1}); err == nil {
		t.Fatal("dims > kept columns accepted")
	}
}
