package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workspace"
)

// mutateEdges returns a copy of g with delta edges flipped (present edges
// removed, absent ones added), deterministically.
func mutateEdges(t *testing.T, g *graph.CSR, delta int, seed uint64) *graph.CSR {
	t.Helper()
	edges := make(map[[2]int32]bool)
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges[[2]int32{v, u}] = true
			}
		}
	}
	h := seed
	n := int32(g.NumV)
	for changed := 0; changed < delta; {
		h = splitmix(h)
		u := int32(h % uint64(n))
		h = splitmix(h)
		v := int32(h % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int32{u, v}
		if edges[k] {
			// Keep deletions rare so connectivity survives.
			if h&7 != 0 {
				continue
			}
			delete(edges, k)
		} else {
			edges[k] = true
		}
		changed++
	}
	list := make([]graph.Edge, 0, len(edges))
	for k := range edges {
		list = append(list, graph.Edge{U: k[0], V: k[1]})
	}
	out, err := graph.FromEdges(g.NumV, list, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatalf("mutateEdges: %v", err)
	}
	return out
}

func TestWarmStartRunsAndRefines(t *testing.T) {
	g := gen.Grid2D(30, 30)
	prior, rep0, err := ParHDE(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Warm {
		t.Fatal("cold run reported Warm")
	}
	g2 := mutateEdges(t, g, 8, 99)
	lay, rep, err := ParHDE(g2, Options{Seed: 3, Prior: prior, PriorDeltaEdges: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := defaultSweeps(g2, Options{Prior: prior, PriorDeltaEdges: 8})
	if !rep.Warm || rep.RefineSweeps != want || want < 2 || want > DefaultWarmSweeps {
		t.Fatalf("warm=%v sweeps=%d, want warm with %d sweeps (2..%d)",
			rep.Warm, rep.RefineSweeps, want, DefaultWarmSweeps)
	}
	if rep.Breakdown.WarmRefine <= 0 || rep.Breakdown.Total <= 0 {
		t.Fatalf("warm breakdown not recorded: %+v", rep.Breakdown)
	}
	if lay.NumVertices() != g2.NumV || lay.Dims() != 2 {
		t.Fatalf("warm layout shape %dx%d", lay.NumVertices(), lay.Dims())
	}
	for j := 0; j < lay.Dims(); j++ {
		for _, v := range lay.Coords.Col(j) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("warm layout has non-finite coordinates")
			}
		}
	}
	// The refinement must actually move the prior (the graph changed) but
	// stay anchored to it: correlate axis 0 before/after.
	moved := false
	for i, v := range lay.X() {
		if v != prior.X()[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("warm refinement did not move any coordinate")
	}
	if c := axisCorr(prior.X(), lay.X()); math.Abs(c) < 0.9 {
		t.Fatalf("warm layout decorrelated from prior: |r| = %.3f", math.Abs(c))
	}
}

func axisCorr(a, b []float64) float64 {
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestWarmStartFallsBackCold(t *testing.T) {
	g := gen.Grid2D(20, 20)
	prior, _, err := ParHDE(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.CSR
		opt  Options
	}{
		{"nil prior", g, Options{Seed: 1}},
		{"delta too large", g, Options{Seed: 1, Prior: prior, PriorDeltaEdges: int64(g.NumEdges())}},
		{"unknown delta", g, Options{Seed: 1, Prior: prior, PriorDeltaEdges: -1}},
		{"dims mismatch", g, Options{Seed: 1, Prior: prior, Dims: 3, Subspace: 8}},
		{"weighted graph", g.WithUnitWeights(), Options{Seed: 1, Prior: prior}},
		{"prior larger than graph", gen.Grid2D(10, 10), Options{Seed: 1, Prior: prior}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, rep, err := ParHDE(tc.g, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Warm {
				t.Fatal("ineligible prior took the warm path")
			}
		})
	}
	// Tightening the bound flips an otherwise-eligible prior to cold.
	_, rep, err := ParHDE(g, Options{Seed: 1, Prior: prior, PriorDeltaEdges: 4, MaxPriorDelta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warm {
		t.Fatal("MaxPriorDelta bound not enforced")
	}
}

func TestWarmStartPlacesNewVertices(t *testing.T) {
	g := gen.Grid2D(20, 20) // 400 vertices
	prior, _, err := ParHDE(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the graph by two vertices: 400 hangs off 0, 401 hangs off 400
	// only (so its only neighbor is itself new).
	var edges []graph.Edge
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges = append(edges, graph.Edge{U: v, V: u})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 400}, graph.Edge{U: 400, V: 401})
	g2, err := graph.FromEdges(g.NumV+2, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	lay, rep, err := ParHDE(g2, Options{Seed: 5, Prior: prior, PriorDeltaEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warm {
		t.Fatal("growing delta within bound did not warm start")
	}
	if lay.NumVertices() != 402 {
		t.Fatalf("layout has %d vertices, want 402", lay.NumVertices())
	}
	// The new leaf should land near its anchor, not at the far edge of
	// the drawing: distance(400, 0) well under the drawing span.
	dx, dy := lay.X()[400]-lay.X()[0], lay.Y()[400]-lay.Y()[0]
	mn, mx := lay.Bounds()
	span := math.Max(mx[0]-mn[0], mx[1]-mn[1])
	if d := math.Hypot(dx, dy); d > span/4 {
		t.Fatalf("new vertex placed %.3g from anchor (span %.3g)", d, span)
	}
}

func TestWarmStartDeterministicAcrossBudgetsAndWorkspace(t *testing.T) {
	g := gen.Kron(10, 8, 7)
	prior, _, err := ParHDE(g, Options{Seed: 7, SkipConnectivityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	g2 := mutateEdges(t, g, 6, 11)
	base := Options{Seed: 7, Prior: prior, PriorDeltaEdges: 6, SkipConnectivityCheck: true}

	var ref *Layout
	for _, workers := range []int{1, 2, 4, 0} {
		opt := base
		opt.Workers = workers
		lay, rep, err := ParHDE(g2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Warm {
			t.Fatal("expected warm path")
		}
		if ref == nil {
			ref = lay.Clone()
			continue
		}
		for j := 0; j < ref.Dims(); j++ {
			a, b := ref.Coords.Col(j), lay.Coords.Col(j)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: coordinate (%d,%d) differs: %g vs %g", workers, i, j, a[i], b[i])
				}
			}
		}
	}

	// A workspace-backed run is bit-identical too, twice in a row (reuse).
	ws := workspace.New()
	for run := 0; run < 2; run++ {
		opt := base
		opt.Workspace = ws
		lay, rep, err := ParHDE(g2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Warm {
			t.Fatal("expected warm path")
		}
		for j := 0; j < ref.Dims(); j++ {
			a, b := ref.Coords.Col(j), lay.Coords.Col(j)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workspace run %d: coordinate (%d,%d) differs", run, i, j)
				}
			}
		}
	}
}

func TestWarmStartPriorNotMutated(t *testing.T) {
	g := gen.Grid2D(16, 16)
	prior, _, err := ParHDE(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := prior.Clone()
	g2 := mutateEdges(t, g, 4, 17)
	if _, rep, err := ParHDE(g2, Options{Seed: 2, Prior: prior, PriorDeltaEdges: 4}); err != nil || !rep.Warm {
		t.Fatalf("warm run failed: warm=%v err=%v", rep != nil && rep.Warm, err)
	}
	for j := 0; j < prior.Dims(); j++ {
		a, b := prior.Coords.Col(j), snapshot.Coords.Col(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prior coordinate (%d,%d) mutated", i, j)
			}
		}
	}
}
