package core

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/workspace"
)

// TestParHDEBitIdenticalAcrossWorkerBudgets is the layout-level budget
// invariance property: for a fixed seed, the coordinates are bitwise
// identical whether the run uses 1, 2, or 4 workers, decoupled or
// coupled, fresh allocations or a pooled workspace shared across all
// budgets.
func TestParHDEBitIdenticalAcrossWorkerBudgets(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	graphs := []struct {
		name string
		opt  Options
	}{
		{"decoupled", Options{Subspace: 8, Seed: 11}},
		{"coupled", Options{Subspace: 8, Seed: 11, Coupled: true}},
	}
	g := gen.Kron(13, 8, 3) // n=8192: spans two reduction tiles, admits 4-way block fan-out
	ws := workspace.New()   // shared across budgets: arenas must be budget-independent
	for _, c := range graphs {
		opt := c.opt
		opt.Workers = 1
		ref, refRep, err := ParHDE(g, opt)
		if err != nil {
			t.Fatalf("%s workers=1: %v", c.name, err)
		}
		if refRep.Workers != 1 {
			t.Fatalf("%s: Report.Workers = %d, want 1", c.name, refRep.Workers)
		}
		for _, p := range []int{2, 4} {
			opt := c.opt
			opt.Workers = p
			opt.Workspace = ws
			lay, rep, err := ParHDE(g, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, p, err)
			}
			if rep.Workers != p {
				t.Fatalf("%s workers=%d: Report.Workers = %d", c.name, p, rep.Workers)
			}
			if len(lay.Coords.Data) != len(ref.Coords.Data) {
				t.Fatalf("%s workers=%d: coordinate count diverged", c.name, p)
			}
			for k := range ref.Coords.Data {
				if lay.Coords.Data[k] != ref.Coords.Data[k] {
					t.Fatalf("%s workers=%d: Coords[%d] = %v, want %v (bitwise)",
						c.name, p, k, lay.Coords.Data[k], ref.Coords.Data[k])
				}
			}
		}
	}
}

// TestParHDEWorkersSnapshotDefault: Workers <= 0 snapshots GOMAXPROCS at
// layout start and reports the captured value.
func TestParHDEWorkersSnapshotDefault(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	g := gen.Grid2D(15, 15)
	_, rep, err := ParHDE(g, Options{Subspace: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 {
		t.Fatalf("Report.Workers = %d, want snapshot of GOMAXPROCS(2)", rep.Workers)
	}
}
