package core

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/workspace"
)

// TestParHDEBitIdenticalAcrossWorkerBudgets is the layout-level budget
// invariance property: for a fixed seed, the coordinates are bitwise
// identical whether the run uses 1, 2, or 4 workers, decoupled or
// coupled, fresh allocations or a pooled workspace shared across all
// budgets.
func TestParHDEBitIdenticalAcrossWorkerBudgets(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	graphs := []struct {
		name string
		opt  Options
	}{
		{"decoupled", Options{Subspace: 8, Seed: 11}},
		{"coupled", Options{Subspace: 8, Seed: 11, Coupled: true}},
		{"decoupled-nopack", Options{Subspace: 8, Seed: 11, NoPack: true}},
	}
	g := gen.Kron(13, 8, 3) // n=8192: spans two reduction tiles, admits 4-way block fan-out
	ws := workspace.New()   // shared across budgets: arenas must be budget-independent
	for _, c := range graphs {
		opt := c.opt
		opt.Workers = 1
		ref, refRep, err := ParHDE(g, opt)
		if err != nil {
			t.Fatalf("%s workers=1: %v", c.name, err)
		}
		if refRep.Workers != 1 {
			t.Fatalf("%s: Report.Workers = %d, want 1", c.name, refRep.Workers)
		}
		for _, p := range []int{2, 4} {
			opt := c.opt
			opt.Workers = p
			opt.Workspace = ws
			lay, rep, err := ParHDE(g, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, p, err)
			}
			if rep.Workers != p {
				t.Fatalf("%s workers=%d: Report.Workers = %d", c.name, p, rep.Workers)
			}
			if len(lay.Coords.Data) != len(ref.Coords.Data) {
				t.Fatalf("%s workers=%d: coordinate count diverged", c.name, p)
			}
			for k := range ref.Coords.Data {
				if lay.Coords.Data[k] != ref.Coords.Data[k] {
					t.Fatalf("%s workers=%d: Coords[%d] = %v, want %v (bitwise)",
						c.name, p, k, lay.Coords.Data[k], ref.Coords.Data[k])
				}
			}
		}
	}
}

// TestParHDEPackedMatchesUnpacked: the packed default and the NoPack
// ablation produce bitwise identical coordinates from one shared
// workspace — the packed kernels change timing only. Alternating the two
// paths over the same workspace is the case where a stale packed arena
// or misrouted scratch buffer would leak one run's state into the next.
func TestParHDEPackedMatchesUnpacked(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g := gen.Kron(13, 8, 3)
	ws := workspace.New()
	opt := Options{Subspace: 8, Seed: 11, Workers: 4, Workspace: ws}
	ref, _, err := ParHDE(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	refCoords := append([]float64(nil), ref.Coords.Data...) // ref aliases ws
	for _, c := range []struct {
		name   string
		noPack bool
	}{
		{"unpacked", true},
		{"packed-again", false},
		{"unpacked-again", true},
	} {
		o := opt
		o.NoPack = c.noPack
		lay, _, err := ParHDE(g, o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(lay.Coords.Data) != len(refCoords) {
			t.Fatalf("%s: coordinate count diverged", c.name)
		}
		for k := range refCoords {
			if lay.Coords.Data[k] != refCoords[k] {
				t.Fatalf("%s: Coords[%d] = %v, want %v (bitwise)",
					c.name, k, lay.Coords.Data[k], refCoords[k])
			}
		}
	}
}

// TestParHDEBitIdenticalUnderGOMAXPROCSFlips: the worker budget is
// snapshotted once at layout start, so flipping GOMAXPROCS continuously
// while the layout runs can neither re-partition a running kernel nor
// outrun the packed-arena sizing (kernels size per-worker slots from the
// snapshotted count before fanning out). Every flipped run must match
// the quiet single-worker reference bitwise.
func TestParHDEBitIdenticalUnderGOMAXPROCSFlips(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g := gen.Kron(13, 8, 3)
	ref, _, err := ParHDE(g, Options{Subspace: 8, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		procs := []int{1, 3, 2, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			runtime.GOMAXPROCS(procs[i%len(procs)])
			runtime.Gosched()
		}
	}()
	ws := workspace.New()
	for r := 0; r < 4; r++ {
		// Workers: 0 snapshots whatever GOMAXPROCS happens to be at entry —
		// a different budget each round, with the value still churning
		// underneath the run.
		lay, _, err := ParHDE(g, Options{Subspace: 8, Seed: 11, Workspace: ws})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for k := range ref.Coords.Data {
			if lay.Coords.Data[k] != ref.Coords.Data[k] {
				t.Fatalf("round %d: Coords[%d] = %v, want %v (bitwise)",
					r, k, lay.Coords.Data[k], ref.Coords.Data[k])
			}
		}
	}
	close(stop)
	<-done
}

// TestParHDEWorkersSnapshotDefault: Workers <= 0 snapshots GOMAXPROCS at
// layout start and reports the captured value.
func TestParHDEWorkersSnapshotDefault(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	g := gen.Grid2D(15, 15)
	_, rep, err := ParHDE(g, Options{Subspace: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 {
		t.Fatalf("Report.Workers = %d, want snapshot of GOMAXPROCS(2)", rep.Workers)
	}
}
