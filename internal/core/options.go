// Package core implements the paper's primary contribution: ParHDE, the
// shared-memory parallel High-Dimensional Embedding graph-layout algorithm
// (ICPP'20 Algorithm 3), together with the closely related PHDE and
// PivotMDS parallelizations (§3.2), the weighted-graph extension (§3.3),
// the prior-work baseline it is evaluated against (§4.2), and the §4.5
// extensions: zoomed neighborhood layout, plain-orthogonalization
// eigen-projection, and centroid refinement toward true eigenvectors.
package core

import (
	"repro/internal/bfs"
	"repro/internal/ortho"
	"repro/internal/pivot"
	"repro/internal/workspace"
)

// DefaultSubspace is the default subspace dimension s. The paper uses 10
// for timing runs and notes 50 is a common choice in HDE.
const DefaultSubspace = 10

// Options configures a ParHDE run.
type Options struct {
	// Subspace is s, the number of pivots / BFS distance vectors.
	Subspace int
	// Dims is the layout dimensionality p (2 by default; the paper fixes
	// p=2 but the code supports p ≤ kept-columns).
	Dims int
	// Ortho selects Modified (default) or Classical Gram-Schmidt for the
	// DOrtho phase (Table 7).
	Ortho ortho.Method
	// PlainOrtho switches D-orthogonalization to plain orthogonalization,
	// approximating Laplacian rather than degree-normalized eigenvectors
	// (§4.5.1).
	PlainOrtho bool
	// Pivots selects k-centers (default) or random pivot selection
	// (Table 6).
	Pivots pivot.Strategy
	// Seed determines the randomly-chosen start vertex and any random
	// pivots; runs are deterministic for a fixed seed.
	Seed uint64
	// Workers is the worker budget for every parallel kernel of the run.
	// It is captured once at layout start — ≤ 0 snapshots GOMAXPROCS at
	// that moment — and threaded through all phases, so a GOMAXPROCS
	// change mid-layout can never re-partition running kernels or
	// desynchronize worker-indexed scratch. Because every reduction runs
	// over the fixed linalg row tiling, the coordinates are bitwise
	// identical for every value of Workers.
	Workers int
	// BFS tunes the direction-optimizing traversal.
	BFS bfs.Options
	// Delta is the Δ-stepping bucket width for weighted graphs; ≤ 0 uses
	// the suggestion heuristic. Ignored for unweighted graphs.
	Delta float64
	// SkipConnectivityCheck suppresses the reachability verification after
	// the first traversal (benchmarks on known-connected inputs).
	SkipConnectivityCheck bool
	// LS selects the TripleProd step-1 kernel (see LSKernel).
	LS LSKernel
	// Coupled interleaves the BFS and DOrtho phases: each distance vector
	// is orthogonalized as soon as its traversal finishes and the raw
	// distance matrix is never stored, cutting the O(sn) extra memory of
	// Table 1 roughly in half. Only the default configuration supports it
	// (MGS — the §4.4 capability CGS gives up — with k-centers pivots on
	// an unweighted graph); the result is bitwise identical to the
	// decoupled run.
	Coupled bool
	// Workspace supplies pooled scratch for the run's large buffers
	// (BFS frontiers, the distance matrix, the DOrtho column arena, the
	// TripleProd panels, the output coordinates). nil allocates fresh
	// buffers per run. With a workspace the steady state performs no
	// O(n)-sized allocations, and results are bit-identical to a
	// fresh-allocation run; the returned Layout aliases workspace storage
	// and is valid only until the workspace's next run (Clone to retain).
	Workspace *workspace.Workspace
	// NoPack keeps the dense phases on the unpacked kernels: flat-arena
	// panel MGS (ortho.MGSUnpacked), the two-pass tiled TripleProd, and
	// the streaming AᵀB. The packed kernels are bitwise identical, so
	// this changes timing only — it exists as the ablation baseline the
	// scaling harness and the packed perf gates measure against.
	NoPack bool
	// TrackAllocs records per-phase heap-allocation deltas into
	// Report.PhaseAllocs. Each phase is bracketed by
	// runtime.ReadMemStats, which is process-global and stops the world
	// briefly: intended for the benchmark harness, not production serving.
	TrackAllocs bool
	// Prior supplies an earlier layout of (an earlier version of) the same
	// graph as a warm start. When the graph delta is small — see
	// PriorDeltaEdges / MaxPriorDelta — the run skips the full BFS + MGS
	// pipeline and instead refines the prior with WarmSweeps batch-parallel
	// SGD sweeps (sampled-edge attraction plus an implicit-orthogonality
	// correction against the degree inner product). The prior is read-only:
	// it is copied into the run's own buffers and never mutated, and may
	// have fewer rows than the current graph (vertices added since; new
	// vertices are seeded at the centroid of their placed neighbors).
	// Ineligible priors — weighted graph, dimension mismatch, more rows
	// than vertices, or a delta past the staleness bound — fall back to a
	// cold run; Report.Warm records which path ran.
	Prior *Layout
	// PriorDeltaEdges is the number of edges inserted or deleted since
	// Prior was computed (the catalog's pending-delta count). Used only for
	// the staleness test; < 0 means unknown and forces a cold run.
	PriorDeltaEdges int64
	// MaxPriorDelta is the staleness bound as a fraction of the current
	// edge count: warm start runs only if PriorDeltaEdges ≤ MaxPriorDelta·m
	// and the new-vertex fraction is within the same bound. ≤ 0 uses
	// DefaultMaxPriorDelta.
	MaxPriorDelta float64
	// WarmSweeps is the number of refinement sweeps of the warm path; ≤ 0
	// uses DefaultWarmSweeps.
	WarmSweeps int
}

// LSKernel selects how P = L·S is computed.
type LSKernel int

const (
	// LSAuto selects the blocked (tiled) kernel when a workspace is
	// attached or the subspace is wide (s ≥ 8) — one edge-list pass
	// advances all s columns, and with a workspace its repack panels are
	// pooled — and the column-wise kernel otherwise. The two kernels are
	// bitwise interchangeable, so the heuristic never changes results
	// (the ls ablation experiment measures the crossover per machine).
	LSAuto LSKernel = iota
	// LSColumnWise runs s independent fused SpMVs (the paper's kernel).
	LSColumnWise
	// LSTiled repacks S row-major and advances all columns in one graph
	// pass — the §3.1 "s ≫ 1" special-case optimization.
	LSTiled
)

// String names the kernel the way the -ls command-line flag spells it.
func (k LSKernel) String() string {
	switch k {
	case LSColumnWise:
		return "columnwise"
	case LSTiled:
		return "tiled"
	default:
		return "auto"
	}
}

// withDefaults normalizes zero values.
func (o Options) withDefaults() Options {
	if o.Subspace <= 0 {
		o.Subspace = DefaultSubspace
	}
	if o.Dims <= 0 {
		o.Dims = 2
	}
	return o
}
