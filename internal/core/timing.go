package core

import (
	"fmt"
	"runtime"
	"time"
)

// Breakdown records per-phase wall time: the raw material for the paper's
// Figures 3, 5, and 6. All durations are cumulative over a run.
type Breakdown struct {
	BFSTraversal time.Duration // actual traversals (or SSSP)
	BFSOther     time.Duration // source selection, min-update, widening B
	DOrtho       time.Duration // (D-)orthogonalization phase
	LS           time.Duration // TripleProd step 1: P = L·S
	Gemm         time.Duration // TripleProd step 2: Z = Sᵀ·P
	Eigensolve   time.Duration // s×s eigensolve ("Other" in Fig. 3)
	Project      time.Duration // [x, y] = S·Y ("Other" in Fig. 3)
	Centering    time.Duration // PHDE column centering / PivotMDS double centering
	LapBuild     time.Duration // prior baseline: explicit Laplacian materialization
	WarmRefine   time.Duration // warm-start SGD refinement (replaces all phases above)
	Total        time.Duration // whole-run wall time
}

// BFS returns the whole BFS-phase time (traversal + other).
func (b Breakdown) BFS() time.Duration { return b.BFSTraversal + b.BFSOther }

// TripleProd returns the whole TripleProd-phase time (LS + gemm).
func (b Breakdown) TripleProd() time.Duration { return b.LS + b.Gemm }

// Other returns the non-major-phase remainder (eigensolve + projection +
// centering), the paper's "Other" category.
func (b Breakdown) Other() time.Duration {
	return b.Eigensolve + b.Project + b.Centering + b.LapBuild + b.WarmRefine
}

// Percentages returns the Figure 3-style split: BFS, TripleProd, DOrtho,
// Other as percentages of total.
func (b Breakdown) Percentages() (bfsP, tripleP, orthoP, otherP float64) {
	tot := float64(b.Total)
	if tot == 0 {
		return 0, 0, 0, 0
	}
	return 100 * float64(b.BFS()) / tot,
		100 * float64(b.TripleProd()) / tot,
		100 * float64(b.DOrtho) / tot,
		100 * float64(b.Other()) / tot
}

// Phase is one named entry of the per-phase breakdown, in export form.
type Phase struct {
	Name string        // phase id, e.g. "bfs_traversal"
	D    time.Duration // cumulative wall time of the phase
}

// Phases returns the breakdown as an ordered name/duration list, the form
// a metrics layer exports (one gauge per phase).
func (b Breakdown) Phases() []Phase {
	return []Phase{
		{"bfs_traversal", b.BFSTraversal},
		{"bfs_other", b.BFSOther},
		{"dortho", b.DOrtho},
		{"ls", b.LS},
		{"gemm", b.Gemm},
		{"eigensolve", b.Eigensolve},
		{"project", b.Project},
		{"centering", b.Centering},
		{"lap_build", b.LapBuild},
		{"warm_refine", b.WarmRefine},
		{"total", b.Total},
	}
}

// String renders the Figure 3-style percentage split on one line.
func (b Breakdown) String() string {
	bp, tp, op, rp := b.Percentages()
	return fmt.Sprintf("total %v | BFS %v (%.1f%%) TripleProd %v (%.1f%%) DOrtho %v (%.1f%%) Other %v (%.1f%%)",
		b.Total.Round(time.Microsecond), b.BFS().Round(time.Microsecond), bp,
		b.TripleProd().Round(time.Microsecond), tp,
		b.DOrtho.Round(time.Microsecond), op,
		b.Other().Round(time.Microsecond), rp)
}

// timed runs f and adds its wall time to *acc.
func timed(acc *time.Duration, f func()) {
	start := time.Now()
	f()
	*acc += time.Since(start)
}

// PhaseAlloc records one phase's cumulative heap activity during a
// TrackAllocs run. Deltas are captured with runtime.ReadMemStats around
// each phase, so they are process-global: allocations by concurrent
// goroutines are attributed to whatever phase was running. Exact in the
// single-run benchmark harness, indicative elsewhere.
type PhaseAlloc struct {
	// Name matches the Breakdown phase names of Phases.
	Name string
	// Allocs counts heap objects allocated while the phase ran.
	Allocs uint64
	// Bytes counts heap bytes allocated while the phase ran.
	Bytes uint64
}

// allocTracker accumulates per-phase heap deltas; when disabled its timed
// costs one branch over the plain helper.
type allocTracker struct {
	enabled bool
	phases  []PhaseAlloc
	index   map[string]int
}

func newAllocTracker(enabled bool) *allocTracker {
	t := &allocTracker{enabled: enabled}
	if enabled {
		t.index = make(map[string]int)
	}
	return t
}

// timed is the tracking variant of the package-level timed: it adds f's
// wall time to *acc and, when tracking is enabled, its heap-allocation
// delta to the named phase (phases hit repeatedly, like the per-pivot BFS
// timers, accumulate).
func (t *allocTracker) timed(name string, acc *time.Duration, f func()) {
	if !t.enabled {
		timed(acc, f)
		return
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	timed(acc, f)
	runtime.ReadMemStats(&after)
	i, ok := t.index[name]
	if !ok {
		i = len(t.phases)
		t.phases = append(t.phases, PhaseAlloc{Name: name})
		t.index[name] = i
	}
	t.phases[i].Allocs += after.Mallocs - before.Mallocs
	t.phases[i].Bytes += after.TotalAlloc - before.TotalAlloc
}
