package core

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Warm-start refinement: instead of re-running the full BFS + MGS + eigen
// pipeline after a small graph mutation, the prior layout is refined with
// a few batch-parallel SGD sweeps in the style of El Gheche et al.'s
// spectral embedding with implicit orthogonality — each sweep pulls every
// vertex toward the mean of a deterministic sample of its neighbors
// (sampled-edge attraction, a damped degree-smoothing step that contracts
// toward the bottom of the Laplacian spectrum) and then restores the
// spectral-embedding invariants the smoothing erodes: each axis is
// deflated against the trivial eigenvector (D-weighted mean removal),
// D-orthogonalized against the earlier axes, and rescaled to its original
// D-norm. Every vertex update reads only the previous sweep's buffer and
// writes its own row of the next one, so the result is bitwise identical
// for every worker budget; the O(n·p) correction reductions run serially.

const (
	// DefaultWarmSweeps caps the refinement sweep count when
	// Options.WarmSweeps is unset; the actual default scales with
	// staleness (see defaultSweeps).
	DefaultWarmSweeps = 12
	// DefaultMaxPriorDelta is the staleness bound when
	// Options.MaxPriorDelta is unset: a prior is accepted while the
	// mutated edges and the new vertices are each within 2% of the
	// current graph.
	DefaultMaxPriorDelta = 0.02

	// warmSampleK caps the neighbors sampled per vertex per sweep.
	warmSampleK = 8
	// warmEta and warmEtaDecay schedule the attraction step size:
	// η_t = warmEta · warmEtaDecay^t.
	warmEta      = 0.6
	warmEtaDecay = 0.5
)

// warmEligible reports whether opt.Prior can warm-start a layout of g:
// the prior must exist, match the requested dimensionality, cover at most
// the current vertex set (vertex ids never shrink under dyngraph
// mutation), and the accumulated delta must be inside the staleness
// bound. Weighted graphs always run cold — the sweep kernel samples
// unweighted adjacency.
func warmEligible(g *graph.CSR, opt Options) bool {
	prior := opt.Prior
	if prior == nil || prior.Coords == nil || g.Weighted() {
		return false
	}
	n, n0 := g.NumV, prior.NumVertices()
	if prior.Dims() != opt.Dims || opt.Dims > 8 || n0 < 2 || n0 > n {
		return false
	}
	if opt.PriorDeltaEdges < 0 {
		return false
	}
	m := g.NumEdges()
	if m == 0 {
		return false
	}
	bound := opt.MaxPriorDelta
	if bound <= 0 {
		bound = DefaultMaxPriorDelta
	}
	return float64(opt.PriorDeltaEdges) <= bound*float64(m) &&
		float64(n-n0) <= bound*float64(n)
}

// warmRefine runs the sweep loop. The returned layout aliases the
// workspace Coords buffer when one is attached (same contract as the cold
// path); the prior is never written.
func warmRefine(ctx context.Context, bud parallel.Budget, g *graph.CSR, opt Options, rep *Report) (*Layout, error) {
	n, p := g.NumV, opt.Dims
	sweeps := opt.WarmSweeps
	if sweeps <= 0 {
		sweeps = defaultSweeps(g, opt)
	}

	ws := opt.Workspace
	var cur, nxt *linalg.Dense
	var deg []float64
	if ws != nil {
		cur = linalg.ViewDense(ws.Coords, n, p)
		nxt = linalg.ViewDense(ws.Warm, n, p)
		ws.Deg = g.WeightedDegreesIntoBudget(bud, ws.Deg)
		deg = ws.Deg
	} else {
		cur = linalg.NewDense(n, p)
		nxt = linalg.NewDense(n, p)
		deg = g.WeightedDegreesIntoBudget(bud, nil)
	}
	seedPrior(bud, g, opt.Prior, cur, opt.Seed)

	// Capture the spectral invariants of the (deflated) prior: each
	// axis's D-norm is held constant across sweeps so smoothing cannot
	// contract the drawing.
	target := make([]float64, p)
	for j := 0; j < p; j++ {
		col := cur.Col(j)
		deflate(deg, col)
		target[j] = math.Sqrt(ddot(deg, col, col))
	}

	for t := 0; t < sweeps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eta := warmEta * math.Pow(warmEtaDecay, float64(t))
		sweep(bud, g, cur, nxt, eta, opt.Seed, t)
		correct(deg, nxt, target)
		cur, nxt = nxt, cur
	}
	rep.RefineSweeps = sweeps

	if ws != nil && &cur.Data[0] != &ws.Coords[0] {
		out := linalg.ViewDense(ws.Coords, n, p)
		copy(out.Data, cur.Data)
		cur = out
	}
	return &Layout{Coords: cur}, nil
}

// defaultSweeps picks the sweep count for an unset Options.WarmSweeps:
// proportional to how stale the prior is (the larger of the edge-delta
// and new-vertex fractions), because a refinement only has to absorb a
// local perturbation of an already-converged embedding. Two sweeps is
// the floor (one to move, one to settle under the decayed step); the
// count is capped at DefaultWarmSweeps, reached around the
// DefaultMaxPriorDelta staleness bound.
func defaultSweeps(g *graph.CSR, opt Options) int {
	frac := float64(opt.PriorDeltaEdges) / float64(g.NumEdges())
	if vf := float64(g.NumV-opt.Prior.NumVertices()) / float64(g.NumV); vf > frac {
		frac = vf
	}
	sweeps := 2 + int(150*frac)
	if sweeps > DefaultWarmSweeps {
		sweeps = DefaultWarmSweeps
	}
	return sweeps
}

// seedPrior copies the prior coordinates into cur and places vertices the
// prior has never seen (id ≥ prior rows). New vertices are seeded in id
// order at the centroid of their already-placed neighbors — a vertex
// attached only to other new vertices uses whichever of them precede it —
// falling back to a deterministic jitter around the drawing centroid for
// vertices with no placed neighbor at all.
func seedPrior(bud parallel.Budget, g *graph.CSR, prior *Layout, cur *linalg.Dense, seed uint64) {
	n, p := cur.Rows, cur.Cols
	n0 := prior.NumVertices()
	var span float64
	centroid := make([]float64, p)
	for j := 0; j < p; j++ {
		src := prior.Coords.Col(j)
		dst := cur.Col(j)
		copyBlock(bud, dst[:n0], src)
		mn, mx := math.Inf(1), math.Inf(-1)
		sum := 0.0
		for _, v := range src {
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		centroid[j] = sum / float64(n0)
		if s := mx - mn; s > span {
			span = s
		}
	}
	if span == 0 {
		span = 1
	}
	for i := n0; i < n; i++ {
		placed := 0
		for j := 0; j < p; j++ {
			cur.Col(j)[i] = 0
		}
		for _, w := range g.Neighbors(int32(i)) {
			if int(w) >= i {
				continue
			}
			placed++
			for j := 0; j < p; j++ {
				cur.Col(j)[i] += cur.Col(j)[int(w)]
			}
		}
		if placed > 0 {
			for j := 0; j < p; j++ {
				cur.Col(j)[i] /= float64(placed)
			}
			continue
		}
		h := splitmix(seed ^ uint64(i)*0x9e3779b97f4a7c15)
		for j := 0; j < p; j++ {
			h = splitmix(h)
			// Uniform in ±span/200: close enough to the centroid not to
			// distort the drawing, distinct enough that coincident new
			// vertices separate under later sweeps.
			cur.Col(j)[i] = centroid[j] + span*(float64(h>>11)/float64(1<<53)-0.5)/100
		}
	}
}

// sweep advances every vertex one attraction step: toward the mean of up
// to warmSampleK sampled neighbors, damped by eta. Reads cur only, writes
// nxt only, so the partitioning of the vertex range cannot change any
// result bit.
func sweep(bud parallel.Budget, g *graph.CSR, cur, nxt *linalg.Dense, eta float64, seed uint64, t int) {
	n, p := cur.Rows, cur.Cols
	salt := splitmix(seed ^ (uint64(t)+1)*0xbf58476d1ce4e5b9)
	// Hoist the column slices: warmEligible caps p at 8.
	var cc, nc [8][]float64
	for j := 0; j < p; j++ {
		cc[j], nc[j] = cur.Col(j), nxt.Col(j)
	}
	body := func(lo, hi int) {
		var mean [8]float64
		for i := lo; i < hi; i++ {
			nb := g.Neighbors(int32(i))
			d := len(nb)
			if d == 0 {
				for j := 0; j < p; j++ {
					nc[j][i] = cc[j][i]
				}
				continue
			}
			for j := 0; j < p; j++ {
				mean[j] = 0
			}
			k := d
			if d <= warmSampleK {
				for _, w := range nb {
					for j := 0; j < p; j++ {
						mean[j] += cc[j][int(w)]
					}
				}
			} else {
				k = warmSampleK
				h := salt ^ uint64(i)*0x94d049bb133111eb
				for s := 0; s < warmSampleK; s++ {
					h = splitmix(h)
					w := nb[h%uint64(d)]
					for j := 0; j < p; j++ {
						mean[j] += cc[j][int(w)]
					}
				}
			}
			inv := eta / float64(k)
			for j := 0; j < p; j++ {
				c := cc[j][i]
				nc[j][i] = c + inv*(mean[j]-float64(k)*c)
			}
		}
	}
	if bud.Serial(n) {
		body(0, n)
		return
	}
	bud.ForBlock(n, body)
}

// correct restores the implicit-orthogonality invariants on x after a
// smoothing sweep: deflation against the trivial eigenvector, MGS
// D-orthogonalization of axis j against axes < j, and rescaling to the
// captured target D-norm. Serial by design — O(n·p²) on p=2 is noise next
// to the sweep, and a serial reduction is deterministic for free.
func correct(deg []float64, x *linalg.Dense, target []float64) {
	p := x.Cols
	for j := 0; j < p; j++ {
		col := x.Col(j)
		deflate(deg, col)
		for l := 0; l < j; l++ {
			prev := x.Col(l)
			pn := ddot(deg, prev, prev)
			if pn <= 0 {
				continue
			}
			r := ddot(deg, prev, col) / pn
			for i := range col {
				col[i] -= r * prev[i]
			}
		}
		if target[j] <= 0 {
			continue
		}
		nrm := math.Sqrt(ddot(deg, col, col))
		if nrm <= 0 {
			continue
		}
		scale := target[j] / nrm
		for i := range col {
			col[i] *= scale
		}
	}
}

// deflate removes the D-weighted mean of col — its component along the
// all-ones trivial eigenvector of Lu = µDu.
func deflate(deg, col []float64) {
	var sum, tot float64
	for i := range col {
		sum += deg[i] * col[i]
		tot += deg[i]
	}
	if tot <= 0 {
		return
	}
	mean := sum / tot
	for i := range col {
		col[i] -= mean
	}
}

// ddot is the D inner product Σ deg_i·a_i·b_i, evaluated serially.
func ddot(deg, a, b []float64) float64 {
	var s float64
	for i := range a {
		s += deg[i] * a[i] * b[i]
	}
	return s
}

// copyBlock copies src into dst under the run's worker budget.
func copyBlock(bud parallel.Budget, dst, src []float64) {
	if bud.Serial(len(dst)) {
		copy(dst, src)
		return
	}
	bud.ForBlock(len(dst), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
