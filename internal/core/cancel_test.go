package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestParHDECtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ParHDECtx(ctx, gen.Grid2D(10, 10), Options{Subspace: 8, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestParHDECtxCancelDuringCoupledBFS cancels a deliberately slow coupled
// run (large grid, many pivots) the moment the BFS phase starts: the
// per-pivot ctx check inside coupledPhase must abandon the remaining
// traversals in well under the time the full phase would take.
func TestParHDECtxCancelDuringCoupledBFS(t *testing.T) {
	g := gen.Grid2D(300, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = WithPhaseNotify(ctx, func(phase string) {
		if phase == "bfs" {
			cancel()
		}
	})
	start := time.Now()
	layout, _, err := ParHDECtx(ctx, g, Options{Subspace: 100, Seed: 1, Coupled: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if layout != nil {
		t.Fatal("cancelled run returned a layout")
	}
	// 100 traversals of a 90k-vertex grid take seconds; stopping at the
	// next pivot boundary must be orders of magnitude quicker.
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation honored only after %v", elapsed)
	}
}

func TestWithPhaseNotifyObservesPhaseOrder(t *testing.T) {
	var phases []string
	ctx := WithPhaseNotify(context.Background(), func(phase string) {
		phases = append(phases, phase)
	})
	if _, _, err := ParHDECtx(ctx, gen.Grid2D(12, 12), Options{Subspace: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	want := []string{"bfs", "dortho", "tripleprod", "eigensolve", "project"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase[%d] = %q, want %q (all: %v)", i, phases[i], want[i], phases)
		}
	}
}
