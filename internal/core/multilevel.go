package core

import (
	"math"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// MultilevelOptions configures MultilevelParHDE.
type MultilevelOptions struct {
	// Base configures the ParHDE solve on the coarsest graph.
	Base Options
	// Coarsen configures hierarchy construction.
	Coarsen coarsen.Options
	// SmoothSweeps is the number of weighted-centroid smoothing sweeps
	// applied after each prolongation (default 10).
	SmoothSweeps int
}

// MultilevelReport describes a multilevel run.
type MultilevelReport struct {
	// Levels is the vertex count per hierarchy level, finest first.
	Levels []int
	// CoarsestEdges is the edge count of the graph ParHDE solved on.
	CoarsestEdges int64
	// BaseReport is the ParHDE report of the coarsest-level solve.
	BaseReport *Report
}

// MultilevelParHDE implements the paper's §5 future-work direction (and
// the setting of the prior work [27]): build a heavy-edge-matching
// hierarchy, lay out the coarsest graph with ParHDE, then walk back to the
// fine graph, prolonging coordinates and smoothing each level with
// weighted-centroid (Gauss-Seidel-style) sweeps kept D-orthogonal to the
// degenerate direction. On meshes this matches single-level ParHDE quality
// while running the eigen-subspace machinery only on a tiny graph.
func MultilevelParHDE(g *graph.CSR, opt MultilevelOptions) (*Layout, *MultilevelReport, error) {
	if opt.SmoothSweeps <= 0 {
		opt.SmoothSweeps = 10
	}
	h, err := coarsen.Build(g, opt.Coarsen)
	if err != nil {
		return nil, nil, err
	}
	rep := &MultilevelReport{}
	for _, lvl := range h.Levels {
		rep.Levels = append(rep.Levels, lvl.G.NumV)
	}
	rep.CoarsestEdges = h.Coarsest().NumEdges()

	// Solve the coarsest level directly.
	base := opt.Base
	if base.Subspace <= 0 {
		base.Subspace = DefaultSubspace
	}
	coarseLay, baseRep, err := ParHDE(h.Coarsest(), base)
	if err != nil {
		return nil, nil, err
	}
	rep.BaseReport = baseRep

	// Walk the hierarchy fine-ward: prolong then smooth.
	lay := coarseLay
	for li := len(h.Levels) - 2; li >= 0; li-- {
		lvl := h.Levels[li]
		fine := linalg.NewDense(lvl.G.NumV, lay.Dims())
		for k := 0; k < lay.Dims(); k++ {
			copy(fine.Col(k), coarsen.Prolong(lvl, lay.Coords.Col(k)))
		}
		lay = &Layout{Coords: fine}
		smooth(lvl.G, lay, opt.SmoothSweeps)
	}
	return lay, rep, nil
}

// smooth performs damped weighted-centroid sweeps: x ← (x + D⁻¹Ax)/2,
// re-centering and D-orthonormalizing the axes afterwards so the layout
// does not collapse onto the trivial eigenvector.
func smooth(g *graph.CSR, l *Layout, sweeps int) {
	n := g.NumV
	deg := g.WeightedDegrees()
	y := make([]float64, n)
	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dnormalize(ones, deg)
	for it := 0; it < sweeps; it++ {
		for k := 0; k < l.Dims(); k++ {
			x := l.Coords.Col(k)
			linalg.WalkMulVec(g, deg, x, y)
			linalg.Axpy(1, x, y)
			linalg.Scale(0.5, y)
			// Deflate the trivial direction and earlier axes.
			c := linalg.DDot(ones, deg, y)
			linalg.Axpy(-c, ones, y)
			for j := 0; j < k; j++ {
				prev := l.Coords.Col(j)
				pn := linalg.DDot(prev, deg, prev)
				if pn > 0 {
					linalg.Axpy(-linalg.DDot(prev, deg, y)/pn, prev, y)
				}
			}
			nrm := math.Sqrt(linalg.DDot(y, deg, y))
			if nrm > 0 {
				linalg.Scale(1/nrm, y)
			}
			linalg.CopyVec(x, y)
		}
	}
}
