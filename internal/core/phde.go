package core

import (
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/pivot"
)

// PHDE computes a layout with the PCA-based High-Dimensional Embedding of
// Harel and Koren (ICPP'20 Algorithm 2, parallelized per §3.2): s
// traversals, two-phase column centering of the distance matrix, the top
// two eigenvectors of CᵀC, and the projection [x, y] = C·Y. Unlike
// ParHDE it involves no Laplacian product.
func PHDE(g *graph.CSR, opt Options) (*Layout, *Report, error) {
	return pcaEmbed(g, opt, false)
}

// PivotMDS computes a layout with Brandes and Pich's PivotMDS, whose
// computational profile matches PHDE except that the squared distance
// matrix is double-centered instead of column-centered (§3.2).
func PivotMDS(g *graph.CSR, opt Options) (*Layout, *Report, error) {
	return pcaEmbed(g, opt, true)
}

func pcaEmbed(g *graph.CSR, opt Options, doubleCenter bool) (*Layout, *Report, error) {
	opt = opt.withDefaults()
	if g.NumV < 2 {
		return nil, nil, fmt.Errorf("core: graph has %d vertices, need at least 2", g.NumV)
	}
	rep := &Report{}
	bd := &rep.Breakdown
	n := g.NumV
	s := opt.Subspace
	if s >= n {
		s = n - 1
	}
	var layout *Layout
	var err error
	timed(&bd.Total, func() {
		// --- BFS phase ---------------------------------------------------
		c := linalg.NewDense(n, s)
		start := int32(splitmix(opt.Seed) % uint64(n))
		var ps pivot.PhaseStats
		onTrav := func(f func()) { timed(&bd.BFSTraversal, f) }
		onOther := func(f func()) { timed(&bd.BFSOther, f) }
		if g.Weighted() {
			ps = pivot.PhaseWeighted(g, c, start, opt.Delta, onTrav, onOther)
		} else {
			ps = pivot.Phase(g, c, start, opt.Pivots, opt.BFS, onTrav, onOther)
		}
		rep.Sources = ps.Sources
		rep.BFSStats = ps.Traversal
		if !opt.SkipConnectivityCheck {
			col := c.Col(0)
			for i := range col {
				if col[i] < 0 || math.IsInf(col[i], 1) {
					err = fmt.Errorf("core: graph is not connected (vertex %d unreachable)", i)
					return
				}
			}
		}

		// --- Centering ("DblCntr"/"ColCenter" in Figure 6) ----------------
		timed(&bd.Centering, func() {
			if doubleCenter {
				linalg.SquareElements(c)
				linalg.DoubleCenter(c)
			} else {
				linalg.ColumnCenter(c)
			}
		})

		// --- MatMul: Z = CᵀC ----------------------------------------------
		var z *linalg.Dense
		timed(&bd.Gemm, func() { z = linalg.AtB(c, c) })

		// --- Eigensolve: top two eigenvectors of the covariance -----------
		var axes *linalg.Dense
		timed(&bd.Eigensolve, func() {
			rep.Eigenvalues, axes, err = eigen.TopK(z, opt.Dims)
		})
		if err != nil {
			return
		}
		rep.KeptColumns = s

		// --- Projection [x, y] = C·Y --------------------------------------
		timed(&bd.Project, func() {
			layout = &Layout{Coords: linalg.MulSmall(c, axes)}
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return layout, rep, nil
}
