package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bfs"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/parallel"
	"repro/internal/pivot"
)

// Report describes what a layout run did: the per-phase timing breakdown
// and the algorithmic statistics the evaluation section charts.
type Report struct {
	// Breakdown is the per-phase wall-time split.
	Breakdown Breakdown
	// Sources lists the chosen pivot vertices in selection order.
	Sources []int32
	// KeptColumns counts subspace columns that survived
	// D-orthogonalization; DroppedColumns counts those rejected as
	// (near-)dependent.
	KeptColumns    int
	DroppedColumns int // columns rejected as (near-)dependent
	// Eigenvalues are the projected-problem eigenvalues backing the chosen
	// axes (ascending for ParHDE: approximations to the smallest
	// non-degenerate generalized eigenvalues µ of Lu = µDu).
	Eigenvalues []float64
	// BFSStats records per-traversal direction choices and scanned-edge
	// counts: one entry per pivot (k-centers, coupled) or per 64-source
	// multi-source batch (random-msbfs).
	BFSStats []bfs.Stats
	// PhaseAllocs holds per-phase heap-allocation deltas; nil unless
	// Options.TrackAllocs was set.
	PhaseAllocs []PhaseAlloc
	// Workers is the worker budget the run actually used (the snapshot
	// taken when Options.Workers ≤ 0).
	Workers int
	// Warm reports that the run took the warm-start refinement path
	// (Options.Prior accepted) instead of the full BFS+MGS pipeline.
	Warm bool
	// RefineSweeps counts the SGD sweeps of a warm run (0 for cold runs).
	RefineSweeps int
}

// BFSTotals aggregates BFSStats across every traversal of the run: the
// top-down vs bottom-up step split and total scanned edges that the
// server exports as Prometheus counters and the scaling sweep records
// per point.
func (r *Report) BFSTotals() bfs.Stats {
	var t bfs.Stats
	for i := range r.BFSStats {
		t.Add(r.BFSStats[i])
	}
	return t
}

// ParHDE computes a p-dimensional layout of the connected graph g with the
// parallel High-Dimensional Embedding algorithm (Algorithm 3): s
// traversals from farthest-first (or random) pivots, D-orthogonalization
// of the distance vectors, the fused triple product SᵀLS, a small
// eigensolve, and the subspace projection.
func ParHDE(g *graph.CSR, opt Options) (*Layout, *Report, error) {
	return ParHDECtx(context.Background(), g, opt)
}

// ParHDECtx is ParHDE with cooperative cancellation: ctx is checked at
// every phase boundary (BFS → DOrtho → TripleProd → eigensolve →
// projection) and, in coupled mode, between every pivot traversal of the
// BFS loop, so a cancelled run stops within one traversal rather than
// after a phase completes. On cancellation the returned error satisfies
// errors.Is(err, ctx.Err()). Phase transitions are reported to any
// observer installed with WithPhaseNotify.
func ParHDECtx(ctx context.Context, g *graph.CSR, opt Options) (*Layout, *Report, error) {
	opt = opt.withDefaults()
	if g.NumV < 2 {
		return nil, nil, fmt.Errorf("core: graph has %d vertices, need at least 2", g.NumV)
	}
	rep := &Report{}
	bd := &rep.Breakdown
	tr := newAllocTracker(opt.TrackAllocs)
	n := g.NumV
	s := opt.Subspace
	if s >= n {
		s = n - 1
	}
	ws := opt.Workspace
	if ws != nil {
		ws.Reshape(n, s, opt.Dims)
	}
	// The worker budget is captured exactly once per layout: every kernel
	// below fans out across bud's worker count and nothing re-reads
	// GOMAXPROCS mid-run.
	bud := parallel.FixedBudget(opt.Workers)
	if opt.Workers <= 0 {
		bud = parallel.SnapshotBudget()
	}
	rep.Workers = bud.Workers()

	// --- Warm start ------------------------------------------------------
	// A small-delta prior replaces the whole pipeline with a few SGD
	// refinement sweeps; a stale or incompatible prior falls through to
	// the cold path below.
	if warmEligible(g, opt) {
		var layout *Layout
		var err error
		timed(&bd.Total, func() {
			if err = ctx.Err(); err != nil {
				return
			}
			NotifyPhase(ctx, "warm_refine")
			tr.timed("warm_refine", &bd.WarmRefine, func() {
				layout, err = warmRefine(ctx, bud, g, opt, rep)
			})
		})
		rep.PhaseAllocs = tr.phases
		if err != nil {
			return nil, nil, err
		}
		rep.Warm = true
		return layout, rep, nil
	}

	if opt.Coupled {
		if g.Weighted() || opt.Pivots != pivot.KCenters || opt.Ortho != ortho.MGS {
			return nil, nil, fmt.Errorf("core: coupled mode requires the default configuration (unweighted graph, k-centers pivots, MGS)")
		}
	}

	var layout *Layout
	var err error
	timed(&bd.Total, func() {
		var deg []float64
		var sMat *linalg.Dense
		var dNorms []float64
		// degrees computes diag(D) once per run, through the workspace's
		// cached buffer when one is attached.
		degrees := func() []float64 {
			if ws != nil {
				ws.Deg = g.WeightedDegreesIntoBudget(bud, ws.Deg)
				return ws.Deg
			}
			return g.WeightedDegreesIntoBudget(bud, nil)
		}
		start := int32(splitmix(opt.Seed) % uint64(n))
		onTrav := func(f func()) { tr.timed("bfs_traversal", &bd.BFSTraversal, f) }
		onOther := func(f func()) { tr.timed("bfs_other", &bd.BFSOther, f) }

		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "bfs")
		if opt.Coupled {
			// --- Coupled BFS + DOrtho: each distance vector is consumed by
			// incremental MGS as soon as its traversal finishes; the O(sn)
			// distance matrix B is never materialized.
			if !opt.PlainOrtho {
				deg = degrees()
			}
			var res ortho.Result
			res, err = coupledPhase(ctx, bud, g, s, start, deg, opt, rep, bd, tr)
			if err != nil {
				return
			}
			rep.KeptColumns = len(res.Kept)
			rep.DroppedColumns = res.Dropped
			if res.S.Cols < opt.Dims {
				err = fmt.Errorf("core: only %d independent distance vectors (need %d); increase the subspace dimension", res.S.Cols, opt.Dims)
				return
			}
			sMat = res.S
			dNorms = res.DNorms
		} else {
			// --- BFS phase -------------------------------------------------
			// Every entry of b is written before it is read, so a dirty
			// workspace-backed matrix behaves exactly like a fresh one.
			var b *linalg.Dense
			var psc *pivot.Scratch
			if ws != nil {
				b = ws.DistView(n, s)
				psc = ws.Pivot
			} else {
				b = linalg.NewDense(n, s)
			}
			var ps pivot.PhaseStats
			if g.Weighted() {
				// The Δ-stepping weighted path has its own internal
				// scheduling and stays on the live budget.
				ps = pivot.PhaseWeighted(g, b, start, opt.Delta, onTrav, onOther)
			} else {
				ps = pivot.PhaseBudget(bud, g, b, start, opt.Pivots, opt.BFS, psc, onTrav, onOther)
			}
			rep.Sources = ps.Sources
			rep.BFSStats = ps.Traversal
			if !opt.SkipConnectivityCheck {
				col := b.Col(0)
				for i := range col {
					if col[i] < 0 || math.IsInf(col[i], 1) {
						err = fmt.Errorf("core: graph is not connected (vertex %d unreachable from %d); extract the largest component first", i, ps.Sources[0])
						return
					}
				}
			}

			// --- DOrtho phase ----------------------------------------------
			if err = ctx.Err(); err != nil {
				return
			}
			NotifyPhase(ctx, "dortho")
			tr.timed("dortho", &bd.DOrtho, func() {
				var d []float64
				if !opt.PlainOrtho {
					deg = degrees()
					d = deg
				}
				var osc *ortho.Scratch
				if ws != nil {
					osc = ws.Ortho
				}
				method := opt.Ortho
				if opt.NoPack && method == ortho.MGS {
					method = ortho.MGSUnpacked
				}
				res := ortho.DOrthogonalizeBudget(bud, b, d, method, osc)
				rep.KeptColumns = len(res.Kept)
				rep.DroppedColumns = res.Dropped
				layoutCols := opt.Dims
				if res.S.Cols < layoutCols {
					err = fmt.Errorf("core: only %d independent distance vectors (need %d); increase the subspace dimension", res.S.Cols, layoutCols)
					return
				}
				b = nil // release the raw distance matrix reference
				sMat = res.S
				dNorms = res.DNorms
			})
			if err != nil {
				return
			}
		}
		if deg == nil {
			deg = degrees()
		}

		// --- TripleProd phase --------------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "tripleprod")
		var p *linalg.Dense
		tr.timed("ls", &bd.LS, func() {
			tiled := opt.LS == LSTiled ||
				(opt.LS == LSAuto && (ws != nil || sMat.Cols >= 8))
			switch {
			case tiled && ws != nil && !opt.NoPack:
				p = linalg.LapMulDenseTiledPackedBudget(bud, g, deg, sMat,
					linalg.ViewDense(ws.P, n, sMat.Cols), ws.SRM, ws.Pack)
			case tiled && ws != nil:
				p = linalg.LapMulDenseTiledBudget(bud, g, deg, sMat,
					linalg.ViewDense(ws.P, n, sMat.Cols), ws.SRM, ws.PRM)
			case tiled && !opt.NoPack:
				p = linalg.LapMulDenseTiledPackedBudget(bud, g, deg, sMat, nil, nil, nil)
			case tiled:
				p = linalg.LapMulDenseTiledBudget(bud, g, deg, sMat, nil, nil, nil)
			default:
				p = linalg.LapMulDenseBudget(bud, g, deg, sMat)
			}
		})
		var z *linalg.Dense
		tr.timed("gemm", &bd.Gemm, func() {
			var zOut *linalg.Dense
			var partials []float64
			var arena *linalg.PackArena
			if ws != nil {
				zOut = linalg.ViewDense(ws.Z, sMat.Cols, sMat.Cols)
				partials = ws.GemmPartials
				arena = ws.Pack
			}
			if opt.NoPack {
				z = linalg.AtBBudget(bud, sMat, p, zOut, partials)
			} else {
				z = linalg.AtBPackedBudget(bud, sMat, p, zOut, partials, arena)
			}
		})

		// --- Eigensolve ---------------------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "eigensolve")
		var axes *linalg.Dense
		tr.timed("eigensolve", &bd.Eigensolve, func() {
			axes, rep.Eigenvalues, err = projectedAxes(z, dNorms, opt.Dims)
		})
		if err != nil {
			return
		}

		// --- Projection [x, y] = S·Y --------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "project")
		tr.timed("project", &bd.Project, func() {
			if ws != nil {
				c := linalg.MulSmallBudget(bud, sMat, axes, linalg.ViewDense(ws.Coords, n, axes.Cols))
				layout = &Layout{Coords: c}
			} else {
				layout = &Layout{Coords: linalg.MulSmallBudget(bud, sMat, axes, nil)}
			}
		})
	})
	rep.PhaseAllocs = tr.phases
	if err != nil {
		return nil, nil, err
	}
	return layout, rep, nil
}

// projectedAxes solves the projected generalized eigenproblem
// (SᵀLS)y = µ(SᵀDS)y, where SᵀDS = diag(dNorms) because the columns are
// D-orthogonal (not D-orthonormal — Algorithm 3 normalizes in the
// Euclidean norm). Substituting y = T·z with T = diag(dNorms)^{-1/2}
// gives the standard symmetric problem (TZT)z = µz; the p axes are the
// back-substituted eigenvectors of the p smallest eigenvalues.
func projectedAxes(z *linalg.Dense, dNorms []float64, dims int) (*linalg.Dense, []float64, error) {
	k := z.Rows
	t := make([]float64, k)
	for i := range t {
		if dNorms[i] <= 0 {
			return nil, nil, fmt.Errorf("core: non-positive D-norm %g for column %d", dNorms[i], i)
		}
		t[i] = 1 / math.Sqrt(dNorms[i])
	}
	zs := linalg.NewDense(k, k)
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			zs.Set(i, j, z.At(i, j)*t[i]*t[j])
		}
	}
	vals, vecs, err := eigen.BottomK(zs, dims)
	if err != nil {
		return nil, nil, err
	}
	// Back-substitute y = T·z.
	for j := 0; j < vecs.Cols; j++ {
		col := vecs.Col(j)
		for i := range col {
			col[i] *= t[i]
		}
	}
	return vecs, vals, nil
}

// splitmix advances one splitmix64 step, used for the start-vertex draw.
func splitmix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// coupledPhase runs the k-centers BFS loop with incremental MGS: the same
// traversals and source selection as the decoupled path (so pivots and
// layout are bitwise identical) with each distance vector orthogonalized
// immediately after its BFS and then discarded. ctx is checked before
// every pivot traversal, so cancelling a long run (s up to 50 traversals
// over a million-vertex graph) takes effect within one BFS — milliseconds
// — rather than after the whole phase.
func coupledPhase(ctx context.Context, bud parallel.Budget, g *graph.CSR, s int, start int32, deg []float64, opt Options, rep *Report, bd *Breakdown, tr *allocTracker) (ortho.Result, error) {
	n := g.NumV
	var (
		runner     *bfs.Runner
		dist, dmin []int32
		col        []float64
		inc        *ortho.Incremental
		amIdx      []int
		amVals     []int32
	)
	if ws := opt.Workspace; ws != nil {
		runner = bfs.NewRunnerBudget(g, opt.BFS, ws.Pivot.BFS, bud)
		dist, dmin = ws.Pivot.Dist, ws.Pivot.DMin
		col = ws.Col
		inc = ortho.NewIncrementalBudget(bud, n, deg, ws.Ortho)
		ws.Pivot.Ensure(n)
		amIdx, amVals = ws.Pivot.ArgmaxArenas()
	} else {
		runner = bfs.NewRunnerBudget(g, opt.BFS, nil, bud)
		dist = make([]int32, n)
		dmin = make([]int32, n)
		col = make([]float64, n)
		inc = ortho.NewIncrementalBudget(bud, n, deg, nil)
	}
	parallelFillInt32(bud, dmin, int32(1)<<30)

	src := start
	rep.Sources = make([]int32, 0, s)
	rep.BFSStats = make([]bfs.Stats, 0, s)
	// Hoist the per-pivot closures out of the loop so the steady-state
	// loop body allocates nothing (a closure literal in the loop would be
	// constructed s times per run).
	var ts bfs.Stats
	traverse := func() { ts = runner.Distances(src, dist) }
	other := func() {
		// Fused widen + min-update + argmax: one pass over the distance
		// vector instead of three.
		src = int32(linalg.WidenMinArgmaxBudget(bud, col, dmin, dist, amIdx, amVals))
	}
	addCol := func() { inc.Add(col) }
	for i := 0; i < s; i++ {
		if err := ctx.Err(); err != nil {
			return ortho.Result{}, err
		}
		rep.Sources = append(rep.Sources, src)
		tr.timed("bfs_traversal", &bd.BFSTraversal, traverse)
		rep.BFSStats = append(rep.BFSStats, ts)
		if i == 0 && !opt.SkipConnectivityCheck {
			for v := range dist {
				if dist[v] == bfs.Unreached {
					return ortho.Result{}, fmt.Errorf("core: graph is not connected (vertex %d unreachable from %d); extract the largest component first", v, src)
				}
			}
		}
		tr.timed("bfs_other", &bd.BFSOther, other)
		tr.timed("dortho", &bd.DOrtho, addCol)
	}
	return inc.Result(), nil
}

// parallelFillInt32 sets every element of x to v.
func parallelFillInt32(bud parallel.Budget, x []int32, v int32) {
	if bud.Serial(len(x)) {
		for i := range x {
			x[i] = v
		}
		return
	}
	bud.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = v
		}
	})
}
