package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bfs"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/parallel"
	"repro/internal/pivot"
)

// Report describes what a layout run did: the per-phase timing breakdown
// and the algorithmic statistics the evaluation section charts.
type Report struct {
	Breakdown      Breakdown
	Sources        []int32
	KeptColumns    int
	DroppedColumns int
	// Eigenvalues are the projected-problem eigenvalues backing the chosen
	// axes (ascending for ParHDE: approximations to the smallest
	// non-degenerate generalized eigenvalues µ of Lu = µDu).
	Eigenvalues []float64
	BFSStats    []bfs.Stats
}

// ParHDE computes a p-dimensional layout of the connected graph g with the
// parallel High-Dimensional Embedding algorithm (Algorithm 3): s
// traversals from farthest-first (or random) pivots, D-orthogonalization
// of the distance vectors, the fused triple product SᵀLS, a small
// eigensolve, and the subspace projection.
func ParHDE(g *graph.CSR, opt Options) (*Layout, *Report, error) {
	return ParHDECtx(context.Background(), g, opt)
}

// ParHDECtx is ParHDE with cooperative cancellation: ctx is checked at
// every phase boundary (BFS → DOrtho → TripleProd → eigensolve →
// projection) and, in coupled mode, between every pivot traversal of the
// BFS loop, so a cancelled run stops within one traversal rather than
// after a phase completes. On cancellation the returned error satisfies
// errors.Is(err, ctx.Err()). Phase transitions are reported to any
// observer installed with WithPhaseNotify.
func ParHDECtx(ctx context.Context, g *graph.CSR, opt Options) (*Layout, *Report, error) {
	opt = opt.withDefaults()
	if g.NumV < 2 {
		return nil, nil, fmt.Errorf("core: graph has %d vertices, need at least 2", g.NumV)
	}
	rep := &Report{}
	bd := &rep.Breakdown
	n := g.NumV
	s := opt.Subspace
	if s >= n {
		s = n - 1
	}

	if opt.Coupled {
		if g.Weighted() || opt.Pivots != pivot.KCenters || opt.Ortho != ortho.MGS {
			return nil, nil, fmt.Errorf("core: coupled mode requires the default configuration (unweighted graph, k-centers pivots, MGS)")
		}
	}

	var layout *Layout
	var err error
	timed(&bd.Total, func() {
		var deg []float64
		var sMat *linalg.Dense
		var dNorms []float64
		start := int32(splitmix(opt.Seed) % uint64(n))
		onTrav := func(f func()) { timed(&bd.BFSTraversal, f) }
		onOther := func(f func()) { timed(&bd.BFSOther, f) }

		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "bfs")
		if opt.Coupled {
			// --- Coupled BFS + DOrtho: each distance vector is consumed by
			// incremental MGS as soon as its traversal finishes; the O(sn)
			// distance matrix B is never materialized.
			if !opt.PlainOrtho {
				deg = g.WeightedDegrees()
			}
			var res ortho.Result
			res, err = coupledPhase(ctx, g, s, start, deg, opt, rep, bd)
			if err != nil {
				return
			}
			rep.KeptColumns = len(res.Kept)
			rep.DroppedColumns = res.Dropped
			if res.S.Cols < opt.Dims {
				err = fmt.Errorf("core: only %d independent distance vectors (need %d); increase the subspace dimension", res.S.Cols, opt.Dims)
				return
			}
			sMat = res.S
			dNorms = res.DNorms
		} else {
			// --- BFS phase -------------------------------------------------
			b := linalg.NewDense(n, s)
			var ps pivot.PhaseStats
			if g.Weighted() {
				ps = pivot.PhaseWeighted(g, b, start, opt.Delta, onTrav, onOther)
			} else {
				ps = pivot.Phase(g, b, start, opt.Pivots, opt.BFS, onTrav, onOther)
			}
			rep.Sources = ps.Sources
			rep.BFSStats = ps.Traversal
			if !opt.SkipConnectivityCheck {
				col := b.Col(0)
				for i := range col {
					if col[i] < 0 || math.IsInf(col[i], 1) {
						err = fmt.Errorf("core: graph is not connected (vertex %d unreachable from %d); extract the largest component first", i, ps.Sources[0])
						return
					}
				}
			}

			// --- DOrtho phase ----------------------------------------------
			if err = ctx.Err(); err != nil {
				return
			}
			NotifyPhase(ctx, "dortho")
			timed(&bd.DOrtho, func() {
				var d []float64
				if !opt.PlainOrtho {
					deg = g.WeightedDegrees()
					d = deg
				}
				res := ortho.DOrthogonalize(b, d, opt.Ortho)
				rep.KeptColumns = len(res.Kept)
				rep.DroppedColumns = res.Dropped
				layoutCols := opt.Dims
				if res.S.Cols < layoutCols {
					err = fmt.Errorf("core: only %d independent distance vectors (need %d); increase the subspace dimension", res.S.Cols, layoutCols)
					return
				}
				b = nil // release the raw distance matrix reference
				sMat = res.S
				dNorms = res.DNorms
			})
			if err != nil {
				return
			}
		}
		if deg == nil {
			deg = g.WeightedDegrees()
		}

		// --- TripleProd phase --------------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "tripleprod")
		var p *linalg.Dense
		timed(&bd.LS, func() {
			if opt.LS == LSTiled {
				p = linalg.LapMulDenseTiled(g, deg, sMat)
			} else {
				p = linalg.LapMulDense(g, deg, sMat)
			}
		})
		var z *linalg.Dense
		timed(&bd.Gemm, func() { z = linalg.AtB(sMat, p) })

		// --- Eigensolve ---------------------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "eigensolve")
		var axes *linalg.Dense
		timed(&bd.Eigensolve, func() {
			axes, rep.Eigenvalues, err = projectedAxes(z, dNorms, opt.Dims)
		})
		if err != nil {
			return
		}

		// --- Projection [x, y] = S·Y --------------------------------------
		if err = ctx.Err(); err != nil {
			return
		}
		NotifyPhase(ctx, "project")
		timed(&bd.Project, func() {
			layout = &Layout{Coords: linalg.MulSmall(sMat, axes)}
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return layout, rep, nil
}

// projectedAxes solves the projected generalized eigenproblem
// (SᵀLS)y = µ(SᵀDS)y, where SᵀDS = diag(dNorms) because the columns are
// D-orthogonal (not D-orthonormal — Algorithm 3 normalizes in the
// Euclidean norm). Substituting y = T·z with T = diag(dNorms)^{-1/2}
// gives the standard symmetric problem (TZT)z = µz; the p axes are the
// back-substituted eigenvectors of the p smallest eigenvalues.
func projectedAxes(z *linalg.Dense, dNorms []float64, dims int) (*linalg.Dense, []float64, error) {
	k := z.Rows
	t := make([]float64, k)
	for i := range t {
		if dNorms[i] <= 0 {
			return nil, nil, fmt.Errorf("core: non-positive D-norm %g for column %d", dNorms[i], i)
		}
		t[i] = 1 / math.Sqrt(dNorms[i])
	}
	zs := linalg.NewDense(k, k)
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			zs.Set(i, j, z.At(i, j)*t[i]*t[j])
		}
	}
	vals, vecs, err := eigen.BottomK(zs, dims)
	if err != nil {
		return nil, nil, err
	}
	// Back-substitute y = T·z.
	for j := 0; j < vecs.Cols; j++ {
		col := vecs.Col(j)
		for i := range col {
			col[i] *= t[i]
		}
	}
	return vecs, vals, nil
}

// splitmix advances one splitmix64 step, used for the start-vertex draw.
func splitmix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// coupledPhase runs the k-centers BFS loop with incremental MGS: the same
// traversals and source selection as the decoupled path (so pivots and
// layout are bitwise identical) with each distance vector orthogonalized
// immediately after its BFS and then discarded. ctx is checked before
// every pivot traversal, so cancelling a long run (s up to 50 traversals
// over a million-vertex graph) takes effect within one BFS — milliseconds
// — rather than after the whole phase.
func coupledPhase(ctx context.Context, g *graph.CSR, s int, start int32, deg []float64, opt Options, rep *Report, bd *Breakdown) (ortho.Result, error) {
	n := g.NumV
	runner := bfs.NewRunner(g, opt.BFS)
	dist := make([]int32, n)
	dmin := make([]int32, n)
	parallelFillInt32(dmin, int32(1)<<30)
	col := make([]float64, n)
	inc := ortho.NewIncremental(n, deg)

	src := start
	for i := 0; i < s; i++ {
		if err := ctx.Err(); err != nil {
			return ortho.Result{}, err
		}
		rep.Sources = append(rep.Sources, src)
		var ts bfs.Stats
		timed(&bd.BFSTraversal, func() { ts = runner.Distances(src, dist) })
		rep.BFSStats = append(rep.BFSStats, ts)
		if i == 0 && !opt.SkipConnectivityCheck {
			for v := range dist {
				if dist[v] == bfs.Unreached {
					return ortho.Result{}, fmt.Errorf("core: graph is not connected (vertex %d unreachable from %d); extract the largest component first", v, src)
				}
			}
		}
		timed(&bd.BFSOther, func() {
			linalg.Int32ToFloat64(col, dist)
			linalg.MinUpdateInt32(dmin, dist)
			src = int32(parallel.MaxIndexInt32(n, func(j int) int32 { return dmin[j] }))
		})
		timed(&bd.DOrtho, func() { inc.Add(col) })
	}
	return inc.Result(), nil
}

// parallelFillInt32 sets every element of x to v.
func parallelFillInt32(x []int32, v int32) {
	parallel.ForBlock(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = v
		}
	})
}
