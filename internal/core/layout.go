package core

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Layout holds p-dimensional vertex coordinates produced by a drawing
// algorithm: column k of Coords is the coordinate vector x_k ∈ Rⁿ.
type Layout struct {
	Coords *linalg.Dense // n×p
}

// NumVertices returns n.
func (l *Layout) NumVertices() int { return l.Coords.Rows }

// Dims returns p.
func (l *Layout) Dims() int { return l.Coords.Cols }

// X returns the first coordinate vector.
func (l *Layout) X() []float64 { return l.Coords.Col(0) }

// Y returns the second coordinate vector (panics if p < 2).
func (l *Layout) Y() []float64 { return l.Coords.Col(1) }

// Bounds returns the per-dimension min and max coordinates.
func (l *Layout) Bounds() (min, max []float64) {
	p := l.Dims()
	min = make([]float64, p)
	max = make([]float64, p)
	for k := 0; k < p; k++ {
		col := l.Coords.Col(k)
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		min[k], max[k] = mn, mx
	}
	return min, max
}

// NormalizeUnit rescales coordinates in place into [0, 1]^p, preserving
// aspect ratio across dimensions (a drawing convenience; algorithms'
// native scales are arbitrary).
func (l *Layout) NormalizeUnit() {
	min, max := l.Bounds()
	span := 0.0
	for k := range min {
		if s := max[k] - min[k]; s > span {
			span = s
		}
	}
	if span == 0 {
		span = 1
	}
	for k := 0; k < l.Dims(); k++ {
		col := l.Coords.Col(k)
		mn := min[k]
		parallel.ForBlock(len(col), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				col[i] = (col[i] - mn) / span
			}
		})
	}
}

// Clone deep-copies the layout.
func (l *Layout) Clone() *Layout {
	return &Layout{Coords: l.Coords.Clone()}
}
