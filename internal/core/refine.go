package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// RefineStats reports the work of a refinement run.
type RefineStats struct {
	// Iterations is how many refinement sweeps ran before convergence or
	// the iteration cap.
	Iterations int
	// Residual is the final max over axes of ‖D⁻¹A·x − λx‖_D — how far
	// the axes are from true degree-normalized eigenvectors.
	Residual float64
}

// Refine implements the §4.5.3 extension: weighted-centroid refinement
// that drives an HDE layout toward the true degree-normalized
// eigenvectors. One sweep moves each vertex toward the weighted centroid
// of its neighbors — exactly one power-iteration step on the transition
// matrix D⁻¹A — followed by deflation of the trivial vector and
// D-orthonormalization of the axes. Kirmani et al. [27] report this
// HDE-seeded scheme is 22×–131× faster than cold power iteration; the
// warm start is why (see BenchmarkRefineVsPower).
//
// The layout is refined in place. tol stops early when axes move less
// than tol between sweeps (0 disables).
func Refine(g *graph.CSR, l *Layout, sweeps int, tol float64) RefineStats {
	n := g.NumV
	deg := g.WeightedDegrees()
	p := l.Dims()
	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dnormalize(ones, deg)
	y := make([]float64, n)

	var st RefineStats
	for it := 0; it < sweeps; it++ {
		st.Iterations++
		maxMove := 0.0
		for k := 0; k < p; k++ {
			x := l.Coords.Col(k)
			// Weighted centroid sweep = transition-matrix product.
			linalg.WalkMulVec(g, deg, x, y)
			// Deflate the trivial eigenvector and earlier axes.
			c := linalg.DDot(ones, deg, y)
			linalg.Axpy(-c, ones, y)
			for j := 0; j < k; j++ {
				prev := l.Coords.Col(j)
				c := linalg.DDot(prev, deg, y)
				linalg.Axpy(-c, prev, y)
			}
			dnormalize(y, deg)
			move := 0.0
			if linalg.Dot(x, y) < 0 {
				linalg.Scale(-1, y)
			}
			for i := range y {
				d := y[i] - x[i]
				move += d * d
			}
			move = math.Sqrt(move)
			if move > maxMove {
				maxMove = move
			}
			linalg.CopyVec(x, y)
		}
		if tol > 0 && maxMove < tol {
			break
		}
	}
	st.Residual = EigenResidual(g, l)
	return st
}

// EigenResidual measures max over axes of ‖W·x − λx‖_D with W = D⁻¹A and
// λ the D-Rayleigh quotient: zero iff each axis is an exact
// degree-normalized eigenvector.
func EigenResidual(g *graph.CSR, l *Layout) float64 {
	n := g.NumV
	deg := g.WeightedDegrees()
	y := make([]float64, n)
	worst := 0.0
	for k := 0; k < l.Dims(); k++ {
		x := l.Coords.Col(k)
		xn := make([]float64, n)
		linalg.CopyVec(xn, x)
		dnormalize(xn, deg)
		linalg.WalkMulVec(g, deg, xn, y)
		lambda := linalg.DDot(xn, deg, y)
		linalg.Axpy(-lambda, xn, y)
		r := math.Sqrt(linalg.DDot(y, deg, y))
		if r > worst {
			worst = r
		}
	}
	return worst
}

func dnormalize(x, d []float64) {
	nrm := math.Sqrt(linalg.DDot(x, d, x))
	if nrm > 0 {
		linalg.Scale(1/nrm, x)
	}
}
