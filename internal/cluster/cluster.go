// Package cluster implements parallel label-propagation community
// detection — the paper's §4.5.4 uses ParHDE layouts "to visualize output
// of graph partitioning and clustering algorithms, by using different
// colors for intra- and inter-partition edges", and label propagation is
// the standard lightweight clustering such visualizations start from.
package cluster

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Options controls label propagation.
type Options struct {
	// MaxIters bounds the sweeps (default 50).
	MaxIters int
	// Seed randomizes initial tie-breaking.
	Seed uint64
	// MinChanges stops early when a sweep moves fewer vertices (default
	// n/1000 + 1).
	MinChanges int
}

// LabelPropagation clusters g: every vertex starts in its own community
// and repeatedly adopts the label carried by the (weighted) majority of
// its neighbors, ties broken toward the smallest label. Sweeps are
// semi-synchronous (vertices read the previous sweep's labels), which
// parallelizes cleanly and avoids label oscillation on bipartite
// structures. Returns compact labels in [0, clusters).
func LabelPropagation(g *graph.CSR, opt Options) (labels []int32, clusters int) {
	n := g.NumV
	if opt.MaxIters <= 0 {
		opt.MaxIters = 50
	}
	if opt.MinChanges <= 0 {
		opt.MinChanges = n/1000 + 1
	}
	cur := make([]int32, n)
	next := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	for it := 0; it < opt.MaxIters; it++ {
		changes := parallel.SumInt64(n, func(v int) int64 {
			adj := g.Neighbors(int32(v))
			if len(adj) == 0 {
				next[v] = cur[v]
				return 0
			}
			best := bestLabel(g, int32(v), cur)
			next[v] = best
			if best != cur[v] {
				return 1
			}
			return 0
		})
		cur, next = next, cur
		if int(changes) < opt.MinChanges {
			break
		}
	}
	// Compact labels preserving order of first appearance.
	remap := make(map[int32]int32, 64)
	labels = make([]int32, n)
	for v := 0; v < n; v++ {
		id, ok := remap[cur[v]]
		if !ok {
			id = int32(len(remap))
			remap[cur[v]] = id
		}
		labels[v] = id
	}
	return labels, len(remap)
}

// bestLabel returns the weighted-majority label among v's neighbors,
// smallest label on ties.
func bestLabel(g *graph.CSR, v int32, labels []int32) int32 {
	adj := g.Neighbors(v)
	counts := make(map[int32]float64, len(adj))
	for k, u := range adj {
		w := 1.0
		if g.Weighted() {
			w = g.NeighborWeights(v)[k]
		}
		counts[labels[u]] += w
	}
	best := labels[v]
	bestW := counts[best] // 0 if none of the neighbors carries it
	// Deterministic iteration order for reproducibility.
	keys := make([]int32, 0, len(counts))
	for l := range counts {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, l := range keys {
		w := counts[l]
		if w > bestW || (w == bestW && l < best) {
			best, bestW = l, w
		}
	}
	return best
}

// Modularity computes the Newman modularity of a labeling — the usual
// score for judging whether a clustering is better than chance. Range
// roughly [−0.5, 1); random labelings score ≈ 0.
func Modularity(g *graph.CSR, labels []int32) float64 {
	if len(labels) != g.NumV {
		panic("cluster: label length mismatch")
	}
	m2 := float64(len(g.Adj)) // 2m in unweighted terms
	if g.Weighted() {
		m2 = 0
		for _, w := range g.Weights {
			m2 += w
		}
	}
	if m2 == 0 {
		return 0
	}
	deg := g.WeightedDegrees()
	intra := map[int32]float64{}
	degSum := map[int32]float64{}
	for v := int32(0); int(v) < g.NumV; v++ {
		degSum[labels[v]] += deg[v]
		for k, u := range g.Neighbors(v) {
			if labels[u] != labels[v] {
				continue
			}
			w := 1.0
			if g.Weighted() {
				w = g.NeighborWeights(v)[k]
			}
			intra[labels[v]] += w // counts each intra edge twice, matching 2m
		}
	}
	var q float64
	for l, in := range intra {
		q += in/m2 - (degSum[l]/m2)*(degSum[l]/m2)
	}
	// Communities with no internal edges still contribute their degree term.
	for l, ds := range degSum {
		if _, ok := intra[l]; !ok {
			q -= (ds / m2) * (ds / m2)
		}
	}
	return q
}
