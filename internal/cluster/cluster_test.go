package cluster

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// twoCliques builds two K_k cliques joined by a single bridge edge.
func twoCliques(t *testing.T, k int) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			edges = append(edges, graph.Edge{U: int32(k + i), V: int32(k + j)})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: int32(k)})
	g, err := graph.FromEdges(2*k, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelPropagationSeparatesCliques(t *testing.T) {
	g := twoCliques(t, 10)
	labels, clusters := LabelPropagation(g, Options{Seed: 1})
	if clusters != 2 {
		t.Fatalf("clusters = %d, want 2", clusters)
	}
	for i := 1; i < 10; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("clique 1 split at %d", i)
		}
		if labels[10+i] != labels[10] {
			t.Fatalf("clique 2 split at %d", i)
		}
	}
	if labels[0] == labels[10] {
		t.Fatal("cliques merged")
	}
}

func TestModularityCliquesVsRandomLabels(t *testing.T) {
	g := twoCliques(t, 12)
	labels, _ := LabelPropagation(g, Options{Seed: 2})
	q := Modularity(g, labels)
	if q < 0.4 {
		t.Fatalf("clique modularity %.3f too low", q)
	}
	// Everything in one community: modularity ≈ 0 by definition.
	one := make([]int32, g.NumV)
	if q1 := Modularity(g, one); q1 > 0.01 || q1 < -0.01 {
		t.Fatalf("single-community modularity %.3f, want ~0", q1)
	}
	// Random labels should score well below the detected clustering.
	rnd := graph.RandomPermutation(g.NumV, 3)
	rl := make([]int32, g.NumV)
	for i := range rl {
		rl[i] = rnd[i] % 4
	}
	if qr := Modularity(g, rl); qr >= q {
		t.Fatalf("random labels modularity %.3f not below detected %.3f", qr, q)
	}
}

func TestLabelPropagationWebCommunities(t *testing.T) {
	g := gen.WebGraph(5000, 14, 7)
	labels, clusters := LabelPropagation(g, Options{Seed: 4})
	if clusters < 5 || clusters >= g.NumV {
		t.Fatalf("clusters = %d", clusters)
	}
	q := Modularity(g, labels)
	if q < 0.2 {
		t.Fatalf("web modularity %.3f — host structure not detected", q)
	}
	// Labels compact.
	for _, l := range labels {
		if l < 0 || int(l) >= clusters {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := gen.Kron(8, 8, 2)
	a, ca := LabelPropagation(g, Options{Seed: 5})
	b, cb := LabelPropagation(g, Options{Seed: 5})
	if ca != cb {
		t.Fatal("cluster counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("labels differ across runs")
		}
	}
}

func TestModularityPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Modularity(gen.Path(4), []int32{0})
}
