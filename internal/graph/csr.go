// Package graph provides the compressed-sparse-row graph representation and
// the preprocessing pipeline the paper applies to every input: symmetrize,
// drop self loops and parallel edges, extract the largest connected
// component, and relabel vertices contiguously while preserving the
// original implied ordering (ICPP'20 §4.1).
package graph

import (
	"fmt"

	"repro/internal/parallel"
)

// CSR is an undirected simple graph in compressed-sparse-row form. Each
// undirected edge {u,v} is stored twice, once in each endpoint's adjacency
// list, and adjacency lists are sorted by neighbor id.
//
// Weights is nil for unweighted graphs (the common case the paper
// optimizes for: no weights stored, Laplacian never materialized). When
// non-nil, Weights[k] is the weight of the arc Adj[k] and the graph is
// treated as weighted, with HDE's similarity interpretation (heavier edge =
// more similar).
type CSR struct {
	NumV    int
	Offsets []int64 // len NumV+1; adjacency of v is Adj[Offsets[v]:Offsets[v+1]]
	Adj     []int32
	Weights []float64 // nil for unweighted graphs; else len(Adj)
}

// NumEdges returns m, the number of undirected edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the number of neighbors of v.
func (g *CSR) Degree(v int32) int32 {
	return int32(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v). It must
// only be called on weighted graphs.
func (g *CSR) NeighborWeights(v int32) []float64 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// WeightedDegrees returns the weighted degree (sum of incident edge
// weights) of every vertex — the diagonal of the degrees matrix D. For
// unweighted graphs this is the plain degree. The computation is
// parallelized over vertices.
func (g *CSR) WeightedDegrees() []float64 {
	return g.WeightedDegreesInto(nil)
}

// WeightedDegreesInto is WeightedDegrees writing into buf when its
// capacity suffices (allocating otherwise), so a pooled caller re-pays no
// O(n) allocation per run.
func (g *CSR) WeightedDegreesInto(buf []float64) []float64 {
	return g.WeightedDegreesIntoBudget(parallel.Live(), buf)
}

// WeightedDegreesIntoBudget is WeightedDegreesInto under an explicit
// worker budget. Each vertex's degree is summed by one worker in
// adjacency order, so the result is partition-independent.
func (g *CSR) WeightedDegreesIntoBudget(bud parallel.Budget, buf []float64) []float64 {
	d := buf
	if cap(d) < g.NumV {
		d = make([]float64, g.NumV)
	}
	d = d[:g.NumV]
	if g.Weights == nil {
		if bud.Serial(g.NumV) {
			for i := 0; i < g.NumV; i++ {
				d[i] = float64(g.Offsets[i+1] - g.Offsets[i])
			}
			return d
		}
		bud.For(g.NumV, func(i int) {
			d[i] = float64(g.Offsets[i+1] - g.Offsets[i])
		})
		return d
	}
	bud.For(g.NumV, func(i int) {
		var s float64
		for _, w := range g.Weights[g.Offsets[i]:g.Offsets[i+1]] {
			s += w
		}
		d[i] = s
	})
	return d
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *CSR) MaxDegree() int32 {
	if g.NumV == 0 {
		return 0
	}
	v := parallel.MaxIndexInt32(g.NumV, func(i int) int32 {
		return int32(g.Offsets[i+1] - g.Offsets[i])
	})
	return g.Degree(int32(v))
}

// Validate checks the CSR structural invariants: monotone offsets, sorted
// adjacency, in-range neighbor ids, no self loops, no duplicate neighbors,
// and symmetry (u ∈ Adj(v) ⇔ v ∈ Adj(u), with equal weights when
// weighted). It is used by tests and by loaders of untrusted input.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.NumV+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.NumV+1)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	if g.Offsets[g.NumV] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.Offsets[g.NumV], len(g.Adj))
	}
	if g.Weights != nil && len(g.Weights) != len(g.Adj) {
		return fmt.Errorf("graph: weights length %d, want %d", len(g.Weights), len(g.Adj))
	}
	for v := 0; v < g.NumV; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		if g.Offsets[v] < 0 || g.Offsets[v+1] > int64(len(g.Adj)) {
			return fmt.Errorf("graph: offsets of vertex %d out of range", v)
		}
		adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
		for k, u := range adj {
			if u < 0 || int(u) >= g.NumV {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if k > 0 && adj[k-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at position %d", v, k)
			}
		}
	}
	// Symmetry: every arc must have a reverse arc with matching weight.
	for v := 0; v < g.NumV; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := g.Adj[k]
			j, ok := g.findArc(u, int32(v))
			if !ok {
				return fmt.Errorf("graph: missing reverse arc %d->%d", u, v)
			}
			if g.Weights != nil && g.Weights[j] != g.Weights[k] {
				return fmt.Errorf("graph: asymmetric weight on edge {%d,%d}", v, u)
			}
		}
	}
	return nil
}

// findArc locates the arc u->w by binary search over u's sorted adjacency,
// returning its index into Adj.
func (g *CSR) findArc(u, w int32) (int64, bool) {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.Adj[mid] < w:
			lo = mid + 1
		case g.Adj[mid] > w:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

// HasEdge reports whether {u, v} is an edge.
func (g *CSR) HasEdge(u, v int32) bool {
	if u == v || int(u) >= g.NumV || int(v) >= g.NumV || u < 0 || v < 0 {
		return false
	}
	// Search the shorter adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	_, ok := g.findArc(u, v)
	return ok
}
