package graph

import (
	"math"
	"testing"
)

func pathGraph(t *testing.T, n int) *CSR {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	return mustFromEdges(t, n, edges, BuildOptions{KeepAllComponents: true})
}

func TestPseudoDiameterPath(t *testing.T) {
	g := pathGraph(t, 100)
	// Double sweep from the middle finds the exact diameter of a path.
	if d := PseudoDiameter(g, 50); d != 99 {
		t.Fatalf("path diameter %d, want 99", d)
	}
}

func TestPseudoDiameterCompleteAndEmpty(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}
	g := mustFromEdges(t, 3, edges, BuildOptions{})
	if d := PseudoDiameter(g, 0); d != 1 {
		t.Fatalf("triangle diameter %d", d)
	}
	empty := &CSR{NumV: 0, Offsets: []int64{0}}
	if d := PseudoDiameter(empty, 0); d != 0 {
		t.Fatalf("empty diameter %d", d)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := pathGraph(t, 5) // degrees: 1,2,2,2,1
	h := DegreeHistogram(g)
	if h[1] != 2 || h[2] != 3 {
		t.Fatalf("histogram %v", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(g.NumV) {
		t.Fatalf("histogram total %d", total)
	}
}

func TestGiniRegularVsSkewed(t *testing.T) {
	// A cycle is perfectly regular: Gini 0. A star is maximally skewed.
	cycle := func(n int) *CSR {
		edges := make([]Edge, 0, n)
		for i := 0; i < n; i++ {
			edges = append(edges, Edge{U: int32(i), V: int32((i + 1) % n)})
		}
		return mustFromEdges(t, n, edges, BuildOptions{})
	}(50)
	if gi := Gini(cycle); math.Abs(gi) > 1e-9 {
		t.Fatalf("cycle Gini %g", gi)
	}
	star := func(n int) *CSR {
		edges := make([]Edge, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, Edge{U: 0, V: int32(i)})
		}
		return mustFromEdges(t, n, edges, BuildOptions{})
	}(50)
	if gi := Gini(star); gi < 0.4 {
		t.Fatalf("star Gini %g not skewed", gi)
	}
}

func TestSummarize(t *testing.T) {
	g := pathGraph(t, 20)
	s := Summarize(g)
	if s.N != 20 || s.M != 19 || s.MaxDegree != 2 || s.PseudoDiameter != 19 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.AvgDegree-1.9) > 1e-12 || s.MeanGap != 2 {
		t.Fatalf("summary %+v", s)
	}
}

func TestLowDiameterDecomposition(t *testing.T) {
	g := mustFromEdges(t, 0, nil, BuildOptions{KeepAllComponents: true})
	if label, c := LowDiameterDecomposition(g, 0.2, 1); c != 0 || len(label) != 0 {
		t.Fatal("empty graph decomposition wrong")
	}

	grid := func() *CSR {
		var edges []Edge
		id := func(r, c int) int32 { return int32(r*40 + c) }
		for r := 0; r < 40; r++ {
			for c := 0; c < 40; c++ {
				if c+1 < 40 {
					edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
				}
				if r+1 < 40 {
					edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
				}
			}
		}
		return mustFromEdges(t, 1600, edges, BuildOptions{KeepAllComponents: true})
	}()
	for _, beta := range []float64{0.1, 0.3} {
		label, clusters := LowDiameterDecomposition(grid, beta, 7)
		if clusters < 2 {
			t.Fatalf("beta=%g: only %d clusters", beta, clusters)
		}
		for v, l := range label {
			if l < 0 || int(l) >= clusters {
				t.Fatalf("beta=%g: vertex %d unlabeled (%d)", beta, v, l)
			}
		}
		// Cut fraction is O(beta): allow a generous constant.
		if cf := CutFraction(grid, label); cf > 6*beta {
			t.Fatalf("beta=%g: cut fraction %.3f too high", beta, cf)
		}
		// Cluster radius is O(log n / beta) w.h.p.
		bound := int32(4 * math.Log(1600) / beta)
		if r := ClusterRadius(grid, label, clusters); r > bound {
			t.Fatalf("beta=%g: cluster radius %d exceeds O(log n/β) bound %d", beta, r, bound)
		}
	}
	// Larger beta → more clusters with smaller radius.
	lSmall, cSmall := LowDiameterDecomposition(grid, 0.05, 7)
	lBig, cBig := LowDiameterDecomposition(grid, 0.5, 7)
	if cBig <= cSmall {
		t.Fatalf("clusters did not grow with beta: %d vs %d", cSmall, cBig)
	}
	if ClusterRadius(grid, lBig, cBig) >= ClusterRadius(grid, lSmall, cSmall) {
		t.Fatal("cluster radius did not shrink with beta")
	}
}

func TestLDDDeterministicForSeed(t *testing.T) {
	g := pathGraph(t, 300)
	a, ca := LowDiameterDecomposition(g, 0.2, 5)
	b, cb := LowDiameterDecomposition(g, 0.2, 5)
	if ca != cb {
		t.Fatal("cluster counts differ for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("labels differ for same seed")
		}
	}
}

func TestParallelComponentsMatchesSerial(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := int64(trial * 7)
		n := 10 + trial*13
		g := mustFromEdges(t, n, randomEdges(n, n+trial*5, seed), BuildOptions{KeepAllComponents: true})
		want, wantCount := Components(g)
		got, gotCount := ParallelComponents(g)
		if wantCount != gotCount {
			t.Fatalf("trial %d: %d components, serial %d", trial, gotCount, wantCount)
		}
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("trial %d: label[%d] = %d, serial %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestParallelComponentsConnected(t *testing.T) {
	g := pathGraph(t, 5000)
	label, count := ParallelComponents(g)
	if count != 1 {
		t.Fatalf("connected path: %d components", count)
	}
	for _, l := range label {
		if l != 0 {
			t.Fatal("label nonzero on single component")
		}
	}
}

func TestParallelComponentsEmpty(t *testing.T) {
	g := &CSR{NumV: 0, Offsets: []int64{0}}
	if _, c := ParallelComponents(g); c != 0 {
		t.Fatalf("empty graph: %d components", c)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3; induce on {0,1,3}.
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 0, V: 3, W: 5}}
	g := mustFromEdges(t, 4, edges, BuildOptions{Weighted: true})
	sub, orig, err := InducedSubgraph(g, []int32{3, 0, 1}) // unordered input
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumV != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub n=%d m=%d", sub.NumV, sub.NumEdges())
	}
	want := []int32{0, 1, 3}
	for i := range want {
		if orig[i] != want[i] {
			t.Fatalf("orig = %v", orig)
		}
	}
	// Edge {0,3} weight preserved (new ids 0 and 2).
	if !sub.HasEdge(0, 2) {
		t.Fatal("edge {0,3} lost")
	}
	for k, u := range sub.Neighbors(0) {
		if u == 2 && sub.NeighborWeights(0)[k] != 5 {
			t.Fatalf("weight lost: %g", sub.NeighborWeights(0)[k])
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, _, err := InducedSubgraph(g, []int32{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := InducedSubgraph(g, []int32{99}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestNeighborhood(t *testing.T) {
	g := pathGraph(t, 20)
	vs, err := Neighborhood(g, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 { // 8,9,10,11,12
		t.Fatalf("2-hop neighborhood of path center: %v", vs)
	}
	if vs[0] != 10 {
		t.Fatal("center must come first")
	}
	if _, err := Neighborhood(g, -1, 2); err == nil {
		t.Fatal("bad center accepted")
	}
	if _, err := Neighborhood(g, 0, -1); err == nil {
		t.Fatal("negative hops accepted")
	}
	// hops=0 → just the center.
	vs, err = Neighborhood(g, 5, 0)
	if err != nil || len(vs) != 1 || vs[0] != 5 {
		t.Fatalf("0-hop neighborhood %v, err %v", vs, err)
	}
}
