package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the three parsers must never panic on arbitrary input —
// they either return a graph that passes validation or an error.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("0 1 2.5\n# comment\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		n, edges, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
				t.Fatalf("parsed edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
			}
		}
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n1 2 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		n, edges, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
				t.Fatalf("parsed entry {%d,%d} out of range [0,%d)", e.U, e.V, n)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization and corruptions of it.
	g := mustBuildFuzz(f)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 20 {
		tampered := append([]byte(nil), valid...)
		tampered[18] ^= 0xff
		f.Add(tampered)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("not a graph at all, just some text padding 0123456789"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted invalid graph: %v", err)
		}
	})
}

func mustBuildFuzz(f *testing.F) *CSR {
	f.Helper()
	g, err := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}, BuildOptions{KeepAllComponents: true})
	if err != nil {
		f.Fatal(err)
	}
	return g
}
