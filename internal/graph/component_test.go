package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComponentsTwoIslands(t *testing.T) {
	// {0,1,2} triangle and {3,4} edge.
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4}}
	g := mustFromEdges(t, 5, edges, BuildOptions{KeepAllComponents: true})
	label, count := Components(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("triangle not one component")
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Fatal("edge component mislabeled")
	}
}

func TestLargestComponentExtraction(t *testing.T) {
	// Big component on {1,3,5,7}, small on {0,2}.
	edges := []Edge{
		{U: 1, V: 3}, {U: 3, V: 5}, {U: 5, V: 7}, {U: 7, V: 1},
		{U: 0, V: 2},
	}
	g := mustFromEdges(t, 8, edges, BuildOptions{})
	if g.NumV != 4 {
		t.Fatalf("LCC size = %d, want 4", g.NumV)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("LCC edges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Order preservation: old 1<3<5<7 must map to new 0<1<2<3 — the cycle
	// structure must connect new 0-1, 1-2, 2-3, 3-0.
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("expected edge {%d,%d} after order-preserving relabel", e[0], e[1])
		}
	}
}

func TestLargestComponentIsNoopWhenConnected(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	g := mustFromEdges(t, 3, edges, BuildOptions{KeepAllComponents: true})
	if got := LargestComponent(g); got != g {
		t.Fatal("connected graph should be returned unchanged")
	}
}

func TestLargestComponentProperty(t *testing.T) {
	// After extraction the graph is connected, valid, and at least as large
	// as any other component.
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(120)
		m := r.Intn(2 * n)
		g, err := FromEdges(n, randomEdges(n, m, seed), BuildOptions{})
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		_, count := Components(g)
		return count == 1
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponentPreservesWeights(t *testing.T) {
	edges := []Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7},
		{U: 3, V: 4, W: 9}, // smaller component, dropped
	}
	g := mustFromEdges(t, 5, edges, BuildOptions{Weighted: true})
	if g.NumV != 3 || !g.Weighted() {
		t.Fatalf("LCC n=%d weighted=%v", g.NumV, g.Weighted())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weight of edge {0,1} must survive as 5.
	found := false
	for k, u := range g.Neighbors(0) {
		if u == 1 && g.NeighborWeights(0)[k] == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge weight lost in component extraction")
	}
}
