package graph

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// ParallelComponents labels connected components with a
// Shiloach-Vishkin-style label-propagation + pointer-jumping algorithm
// (the practical parallel connectivity of Shun, Dhulipala, and Blelloch
// [37], simplified): every vertex starts as its own label; rounds of
// min-label hooking across edges alternate with full path compression
// until no label changes. Labels are then normalized like Components'
// (ids ordered by each component's smallest vertex).
func ParallelComponents(g *CSR) (label []int32, count int) {
	n := g.NumV
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if n == 0 {
		return labels, 0
	}
	for {
		var changed int64
		// Hook: adopt the smaller label across every edge.
		parallel.ForBlock(n, func(lo, hi int) {
			var localChanged int64
			for v := lo; v < hi; v++ {
				lv := atomic.LoadInt32(&labels[v])
				for _, u := range g.Neighbors(int32(v)) {
					lu := atomic.LoadInt32(&labels[u])
					for lu < lv {
						if atomic.CompareAndSwapInt32(&labels[v], lv, lu) {
							localChanged = 1
							lv = lu
							break
						}
						lv = atomic.LoadInt32(&labels[v])
					}
				}
			}
			atomic.AddInt64(&changed, localChanged)
		})
		// Compress: pointer-jump every label to its root.
		parallel.For(n, func(v int) {
			l := atomic.LoadInt32(&labels[v])
			for {
				parent := atomic.LoadInt32(&labels[l])
				if parent == l {
					break
				}
				l = parent
			}
			atomic.StoreInt32(&labels[v], l)
		})
		if changed == 0 {
			break
		}
	}
	// Normalize to dense ids in order of smallest member (matching
	// Components' convention). Roots are always the smallest vertex of
	// their component after min-hooking, so ascending root order works.
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	var next int32
	for v := 0; v < n; v++ {
		r := labels[v]
		if remap[r] < 0 {
			remap[r] = next
			next++
		}
		labels[v] = remap[r]
	}
	return labels, int(next)
}
