package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomEdges generates a reproducible random edge list over n vertices.
func randomEdges(n, m int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: int32(r.Intn(n)),
			V: int32(r.Intn(n)),
			W: float64(1 + r.Intn(9)),
		}
	}
	return edges
}

func mustFromEdges(t *testing.T, n int, edges []Edge, opt BuildOptions) *CSR {
	t.Helper()
	g, err := FromEdges(n, edges, opt)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	// Triangle plus a pendant, with a self loop and duplicates to strip.
	edges := []Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 2}, // self loop
		{U: 3, V: 0},
	}
	g := mustFromEdges(t, 4, edges, BuildOptions{KeepAllComponents: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumV != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d, want 4, 4", g.NumV, g.NumEdges())
	}
	if g.Degree(0) != 3 || g.Degree(2) != 2 || g.Degree(3) != 1 {
		t.Fatalf("unexpected degrees %d %d %d", g.Degree(0), g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(1, 3) || g.HasEdge(2, 2) {
		t.Fatal("HasEdge inconsistent")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{U: 0, V: 3}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("expected error for negative vertex count")
	}
	if _, err := FromEdges(3, []Edge{{U: 0, V: 1, W: -2}}, BuildOptions{Weighted: true}); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestFromEdgesValidateProperty(t *testing.T) {
	// Any random multigraph with loops must preprocess into a valid simple
	// symmetric CSR.
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64, weighted bool) bool {
		n := 2 + int(uint64(seed)%97)
		edges := randomEdges(n, 3*n, seed)
		g, err := FromEdges(n, edges, BuildOptions{Weighted: weighted, KeepAllComponents: true})
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMergeKeepsMaxSimilarity(t *testing.T) {
	edges := []Edge{
		{U: 0, V: 1, W: 2},
		{U: 1, V: 0, W: 7}, // duplicate with higher similarity
		{U: 0, V: 1, W: 4},
	}
	g := mustFromEdges(t, 2, edges, BuildOptions{Weighted: true})
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if w := g.NeighborWeights(0)[0]; w != 7 {
		t.Fatalf("merged weight = %g, want 7", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegrees(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}
	g := mustFromEdges(t, 3, edges, BuildOptions{Weighted: true})
	d := g.WeightedDegrees()
	want := []float64{2, 5, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("deg[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	// Unweighted graphs: weighted degree equals plain degree.
	gu := g.Unweighted()
	du := gu.WeightedDegrees()
	for i := range du {
		if du[i] != float64(gu.Degree(int32(i))) {
			t.Fatalf("unweighted deg[%d] = %g", i, du[i])
		}
	}
}

func TestMaxDegree(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}}
	g := mustFromEdges(t, 4, edges, BuildOptions{})
	if md := g.MaxDegree(); md != 3 {
		t.Fatalf("MaxDegree = %d, want 3", md)
	}
	empty := &CSR{NumV: 0, Offsets: []int64{0}}
	if md := empty.MaxDegree(); md != 0 {
		t.Fatalf("empty MaxDegree = %d", md)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := mustFromEdges(t, 3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	cases := map[string]func(g *CSR){
		"asymmetric":   func(g *CSR) { g.Adj[0] = 2 },
		"unsorted":     func(g *CSR) { g.Adj[1], g.Adj[2] = g.Adj[2], g.Adj[1] },
		"out-of-range": func(g *CSR) { g.Adj[0] = 99 },
		"bad offsets":  func(g *CSR) { g.Offsets[1] = 100 },
		"self loop":    func(g *CSR) { g.Adj[0] = 0 },
	}
	for name, corrupt := range cases {
		g := &CSR{
			NumV:    good.NumV,
			Offsets: append([]int64(nil), good.Offsets...),
			Adj:     append([]int32(nil), good.Adj...),
		}
		corrupt(g)
		if g.Validate() == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestWithUnitWeights(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	wg := g.WithUnitWeights()
	if !wg.Weighted() {
		t.Fatal("expected weighted view")
	}
	for _, w := range wg.Weights {
		if w != 1 {
			t.Fatalf("unit weight = %g", w)
		}
	}
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
}
