package graph

import "math"

// LowDiameterDecomposition partitions the vertices into clusters of
// bounded diameter with few inter-cluster edges — the Miller-Peng-Xu
// style decomposition the paper's §3 names as future work for improving
// the worst-case depth of the level-synchronous BFS phase ("we will
// augment this step with a low diameter decomposition [11, 12, 37]").
//
// Each vertex draws an exponential(beta) start delay; a multi-source BFS
// then grows balls from all vertices simultaneously, each vertex joining
// the cluster whose (delay-shifted) wavefront reaches it first. With
// parameter beta, each cluster has radius O(log n / beta) w.h.p. and the
// expected fraction of cut edges is O(beta).
func LowDiameterDecomposition(g *CSR, beta float64, seed uint64) (label []int32, clusters int) {
	n := g.NumV
	label = make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	if n == 0 {
		return label, 0
	}
	if beta <= 0 {
		beta = 0.2
	}
	// Integer start times: round the exponential delays; vertices whose
	// delay round is reached before another cluster claimed them become
	// new cluster centers.
	delay := make([]int32, n)
	maxDelay := int32(0)
	state := seed
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		u := float64(state>>11) / (1 << 53)
		if u <= 0 {
			u = 1e-300
		}
		return u
	}
	// The shift is relative to the maximum delay so every vertex starts at
	// a nonnegative round: start(v) = maxExp − exp(v).
	exps := make([]float64, n)
	maxExp := 0.0
	for i := range exps {
		exps[i] = -math.Log(next()) / beta
		if exps[i] > maxExp {
			maxExp = exps[i]
		}
	}
	for i := range delay {
		delay[i] = int32(maxExp - exps[i])
		if delay[i] > maxDelay {
			maxDelay = delay[i]
		}
	}
	// Bucket vertices by start round.
	starts := make([][]int32, maxDelay+1)
	for v := 0; v < n; v++ {
		starts[delay[v]] = append(starts[delay[v]], int32(v))
	}
	var frontier []int32
	var nc int32
	for round := int32(0); ; round++ {
		// New centers: vertices whose start round arrived unclaimed.
		if int(round) < len(starts) {
			for _, v := range starts[round] {
				if label[v] < 0 {
					label[v] = nc
					nc++
					frontier = append(frontier, v)
				}
			}
		}
		if len(frontier) == 0 {
			if int(round) >= len(starts) {
				break
			}
			continue
		}
		var nextFrontier []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if label[v] < 0 {
					label[v] = label[u]
					nextFrontier = append(nextFrontier, v)
				}
			}
		}
		frontier = nextFrontier
	}
	return label, int(nc)
}

// CutFraction returns the fraction of edges whose endpoints carry
// different labels.
func CutFraction(g *CSR, label []int32) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	var cut int64
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && label[u] != label[v] {
				cut++
			}
		}
	}
	return float64(cut) / float64(m)
}

// ClusterRadius returns the maximum over clusters of the BFS eccentricity
// from the cluster's first-labeled vertex within the induced cluster
// subgraph — a diameter bound certificate for a decomposition.
func ClusterRadius(g *CSR, label []int32, clusters int) int32 {
	if clusters == 0 {
		return 0
	}
	// First-labeled vertex per cluster = its center by construction of
	// LowDiameterDecomposition's frontier order.
	center := make([]int32, clusters)
	for i := range center {
		center[i] = -1
	}
	for v := 0; v < g.NumV; v++ {
		l := label[v]
		if l >= 0 && center[l] < 0 {
			center[l] = int32(v)
		}
	}
	dist := make([]int32, g.NumV)
	var worst int32
	for c := 0; c < clusters; c++ {
		if center[c] < 0 {
			continue
		}
		// BFS restricted to the cluster.
		for i := range dist {
			dist[i] = -1
		}
		src := center[c]
		dist[src] = 0
		queue := []int32{src}
		for len(queue) > 0 {
			var next []int32
			for _, u := range queue {
				for _, v := range g.Neighbors(u) {
					if label[v] == int32(c) && dist[v] < 0 {
						dist[v] = dist[u] + 1
						if dist[v] > worst {
							worst = dist[v]
						}
						next = append(next, v)
					}
				}
			}
			queue = next
		}
	}
	return worst
}
