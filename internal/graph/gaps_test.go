package graph

import (
	"sync/atomic"
	"testing"
)

func TestGapSummaryPath(t *testing.T) {
	// A linear chain with linear ordering: the paper's "ideal case" — gap
	// of exactly 2 occurring n−2 times.
	n := 500
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	g := mustFromEdges(t, n, edges, BuildOptions{})
	gs := GapSummary(g)
	if gs.Count != int64(n-2) {
		t.Fatalf("gap count = %d, want %d", gs.Count, n-2)
	}
	if gs.Mean != 2 {
		t.Fatalf("mean gap = %g, want 2", gs.Mean)
	}
}

func TestGapCountIdentity(t *testing.T) {
	// Σ counts = 2m − (#vertices with degree ≥ 1) when every vertex has
	// degree ≥ 1 (the paper's Σc = 2m − n identity).
	g := mustFromEdges(t, 40, randomEdges(40, 200, 9), BuildOptions{})
	gs := GapSummary(g)
	nonZero := int64(0)
	for v := 0; v < g.NumV; v++ {
		if g.Degree(int32(v)) > 0 {
			nonZero++
		}
	}
	want := 2*g.NumEdges() - nonZero
	if gs.Count != want {
		t.Fatalf("gap count = %d, want 2m−n′ = %d", gs.Count, want)
	}
}

func TestGapsSinkMatchesSummary(t *testing.T) {
	g := mustFromEdges(t, 64, randomEdges(64, 300, 5), BuildOptions{})
	var count, sum int64
	Gaps(g, func(gap int64) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&sum, gap)
	})
	gs := GapSummary(g)
	if count != gs.Count {
		t.Fatalf("sink count %d != summary %d", count, gs.Count)
	}
	if gs.Count > 0 && float64(sum)/float64(count) != gs.Mean {
		t.Fatalf("sink mean %g != summary %g", float64(sum)/float64(count), gs.Mean)
	}
}

func TestGapsArePositive(t *testing.T) {
	g := mustFromEdges(t, 64, randomEdges(64, 300, 13), BuildOptions{})
	Gaps(g, func(gap int64) {
		if gap <= 0 {
			t.Errorf("non-positive gap %d from strictly sorted adjacency", gap)
		}
	})
}
