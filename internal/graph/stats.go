package graph

// PseudoDiameter estimates the graph diameter with the standard
// double-sweep heuristic: BFS from start, then BFS again from the farthest
// vertex found; the second eccentricity is a lower bound on (and usually
// equal to) the diameter. The diameter drives the paper's analysis of
// which graphs suit direction-optimizing BFS (Table 1's d_max term,
// Table 3's road_usa discussion).
func PseudoDiameter(g *CSR, start int32) int32 {
	if g.NumV == 0 {
		return 0
	}
	dist := make([]int32, g.NumV)
	far := bfsFarthest(g, start, dist)
	return bfsEcc(g, far, dist)
}

// bfsFarthest runs a serial BFS and returns a farthest reached vertex.
func bfsFarthest(g *CSR, src int32, dist []int32) int32 {
	bfsEcc(g, src, dist)
	best := src
	for v := 0; v < g.NumV; v++ {
		if dist[v] > dist[best] {
			best = int32(v)
		}
	}
	return best
}

// bfsEcc runs a serial BFS from src into dist and returns the
// eccentricity (max finite distance).
func bfsEcc(g *CSR, src int32, dist []int32) int32 {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	var ecc int32
	for len(queue) > 0 {
		var next []int32
		for _, u := range queue {
			d := dist[u]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = d + 1
					if d+1 > ecc {
						ecc = d + 1
					}
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return ecc
}

// DegreeHistogram returns counts[d] = number of vertices with degree d,
// up to maxDegree. Degree skew is the second axis (besides diameter) the
// paper uses to predict direction-optimizing BFS behavior.
func DegreeHistogram(g *CSR) []int64 {
	md := int(g.MaxDegree())
	counts := make([]int64, md+1)
	for v := 0; v < g.NumV; v++ {
		counts[g.Degree(int32(v))]++
	}
	return counts
}

// Gini computes the Gini coefficient of the degree distribution — 0 for
// perfectly regular graphs (grids), approaching 1 for extreme hub-and-
// spoke skew (stars, power-law graphs). A scalar summary of "skewed
// degree distribution" for experiment tables.
func Gini(g *CSR) float64 {
	n := g.NumV
	if n == 0 {
		return 0
	}
	// Sort degrees by counting sort over the histogram.
	hist := DegreeHistogram(g)
	var cumWeighted, total float64
	idx := 0
	for d, c := range hist {
		for i := int64(0); i < c; i++ {
			idx++
			cumWeighted += float64(idx) * float64(d)
			total += float64(d)
		}
	}
	if total == 0 {
		return 0
	}
	return (2*cumWeighted)/(float64(n)*total) - float64(n+1)/float64(n)
}

// AverageDegree returns 2m/n.
func AverageDegree(g *CSR) float64 {
	if g.NumV == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(g.NumV)
}

// Summary bundles the stats the experiment tables print per graph.
type Summary struct {
	N              int
	M              int64
	MaxDegree      int32
	AvgDegree      float64
	PseudoDiameter int32
	DegreeGini     float64
	MeanGap        float64
}

// Summarize computes a Summary (runs two serial BFS sweeps; intended for
// reporting, not hot paths).
func Summarize(g *CSR) Summary {
	gs := GapSummary(g)
	return Summary{
		N:              g.NumV,
		M:              g.NumEdges(),
		MaxDegree:      g.MaxDegree(),
		AvgDegree:      AverageDegree(g),
		PseudoDiameter: PseudoDiameter(g, 0),
		DegreeGini:     Gini(g),
		MeanGap:        gs.Mean,
	}
}
