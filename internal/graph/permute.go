package graph

import (
	"fmt"

	"repro/internal/parallel"
)

// Permute relabels the vertices of g by the permutation perm, where
// perm[old] = new. It is the operation behind the paper's §4.4 ordering
// study: randomly permuting a locality-ordered graph (sk-2005) destroys
// adjacency-gap locality and slows the LS SpMM by ~6.8×.
func Permute(g *CSR, perm []int32) (*CSR, error) {
	n := g.NumV
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	inv := make([]int32, n) // inv[new] = old
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	offsets := make([]int64, n+1)
	for nw := 0; nw < n; nw++ {
		old := inv[nw]
		offsets[nw+1] = offsets[nw] + (g.Offsets[old+1] - g.Offsets[old])
	}
	adj := make([]int32, len(g.Adj))
	var wts []float64
	if g.Weights != nil {
		wts = make([]float64, len(g.Weights))
	}
	parallel.For(n, func(nw int) {
		old := inv[nw]
		pos := offsets[nw]
		for k := g.Offsets[old]; k < g.Offsets[old+1]; k++ {
			adj[pos] = perm[g.Adj[k]]
			if wts != nil {
				wts[pos] = g.Weights[k]
			}
			pos++
		}
		// Re-sort the relabeled adjacency (insertion sort is fine for
		// typical degrees; fall back to a simple quicksort via sortInt32).
		sortAdjRange(adj, wts, offsets[nw], pos)
	})
	return &CSR{NumV: n, Offsets: offsets, Adj: adj, Weights: wts}, nil
}

// sortAdjRange sorts adj[lo:hi] ascending, permuting wts in lockstep when
// present.
func sortAdjRange(adj []int32, wts []float64, lo, hi int64) {
	// Insertion sort: adjacency lists are short relative to n and this
	// runs once per vertex during preprocessing.
	for i := lo + 1; i < hi; i++ {
		a := adj[i]
		var w float64
		if wts != nil {
			w = wts[i]
		}
		j := i - 1
		for j >= lo && adj[j] > a {
			adj[j+1] = adj[j]
			if wts != nil {
				wts[j+1] = wts[j]
			}
			j--
		}
		adj[j+1] = a
		if wts != nil {
			wts[j+1] = w
		}
	}
}

// RandomPermutation returns a uniformly random permutation of [0, n) using
// the given seed (Fisher–Yates over a splitmix64 stream, matching the
// generator package's RNG so experiments are reproducible end to end).
func RandomPermutation(n int, seed uint64) []int32 {
	return RandomPermutationInto(make([]int32, n), seed)
}

// RandomPermutationInto is RandomPermutation writing into the caller's
// slice (its length fixes n), so pooled workspaces can draw pivots
// without allocating.
func RandomPermutationInto(perm []int32, seed uint64) []int32 {
	n := len(perm)
	for i := range perm {
		perm[i] = int32(i)
	}
	s := seed
	nextU64 := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(nextU64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
