package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermuteIdentity(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOptions{})
	perm := []int32{0, 1, 2, 3}
	p, err := Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		a, b := g.Neighbors(v), p.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree changed at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("identity permutation changed adjacency at %d", v)
			}
		}
	}
}

func TestPermuteRejectsInvalid(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	for _, perm := range [][]int32{
		{0, 1},          // short
		{0, 1, 1},       // duplicate
		{0, 1, 5},       // out of range
		{0, -1, 2},      // negative
		{0, 1, 2, 3, 4}, // long
	} {
		if _, err := Permute(g, perm); err == nil {
			t.Fatalf("permutation %v accepted", perm)
		}
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64, weighted bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(80)
		g, err := FromEdges(n, randomEdges(n, 3*n, seed), BuildOptions{Weighted: weighted, KeepAllComponents: true})
		if err != nil {
			return false
		}
		perm := RandomPermutation(g.NumV, uint64(seed))
		p, err := Permute(g, perm)
		if err != nil || p.Validate() != nil {
			return false
		}
		if p.NumEdges() != g.NumEdges() {
			return false
		}
		// Every original edge must exist relabeled, with its weight.
		for v := int32(0); int(v) < g.NumV; v++ {
			for k, u := range g.Neighbors(v) {
				if !p.HasEdge(perm[v], perm[u]) {
					return false
				}
				if weighted {
					pv := perm[v]
					for j, pu := range p.Neighbors(pv) {
						if pu == perm[u] && p.NeighborWeights(pv)[j] != g.NeighborWeights(v)[k] {
							return false
						}
					}
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g := mustFromEdges(t, 30, randomEdges(30, 60, 7), BuildOptions{KeepAllComponents: true})
	perm := RandomPermutation(g.NumV, 42)
	inv := make([]int32, len(perm))
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	p, err := Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Permute(p, inv)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		a, b := g.Neighbors(v), back.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("round trip degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip adjacency mismatch at %d", v)
			}
		}
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		perm := RandomPermutation(257, seed)
		seen := make([]bool, 257)
		for _, p := range perm {
			if p < 0 || int(p) >= 257 || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutationDeterministic(t *testing.T) {
	a := RandomPermutation(100, 5)
	b := RandomPermutation(100, 5)
	c := RandomPermutation(100, 6)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different permutations")
	}
	if !diff {
		t.Fatal("different seeds produced identical permutations")
	}
}
