package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary CSR serialization: a compact on-disk format so large synthetic
// graphs can be generated once and reused across benchmark runs, the way
// the paper reuses its preprocessed SuiteSparse inputs.
//
// Layout (little endian):
//
//	magic   uint32  'PHDE' (0x45444850)
//	version uint32  1
//	flags   uint32  bit0 = weighted
//	numV    uint64
//	numArcs uint64
//	offsets [numV+1] uint64
//	adj     [numArcs] uint32
//	weights [numArcs] float64   (only when weighted)
const (
	binMagic   = 0x45444850
	binVersion = 1
)

// WriteBinary serializes g in the binary CSR format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if g.Weights != nil {
		flags |= 1
	}
	hdr := []uint64{
		uint64(binMagic)<<32 | uint64(binVersion),
		uint64(flags),
		uint64(g.NumV),
		uint64(len(g.Adj)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, off := range g.Offsets {
		binary.LittleEndian.PutUint64(buf, uint64(off))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, a := range g.Adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(a))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	if g.Weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates its
// structural invariants before returning it.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if hdr[0]>>32 != binMagic {
		return nil, fmt.Errorf("graph: bad binary magic %#x", hdr[0]>>32)
	}
	if uint32(hdr[0]) != binVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", uint32(hdr[0]))
	}
	weighted := hdr[1]&1 != 0
	numV := int64(hdr[2])
	numArcs := int64(hdr[3])
	if numV < 0 || numArcs < 0 || numV > 1<<31 || numArcs > 1<<33 {
		return nil, fmt.Errorf("graph: corrupt binary sizes (n=%d arcs=%d)", hdr[2], hdr[3])
	}
	// The header is untrusted: allocate incrementally (bounded growth per
	// read) so a forged size field costs at most reading to EOF rather
	// than a giant up-front allocation.
	g := &CSR{NumV: int(numV)}
	offsets, err := readChunkedU64(br, numV+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	g.Offsets = offsets
	adj, err := readChunkedU32(br, numArcs)
	if err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	g.Adj = adj
	if weighted {
		w, err := readChunkedF64(br, numArcs)
		if err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
		g.Weights = w
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary input failed validation: %w", err)
	}
	return g, nil
}

// chunkEntries bounds each allocation step while streaming untrusted
// length-prefixed arrays.
const chunkEntries = 1 << 16

func readChunkedU64(r io.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min64(count, chunkEntries))
	buf := make([]byte, 8*chunkEntries)
	for int64(len(out)) < count {
		want := min64(count-int64(len(out)), chunkEntries)
		if _, err := io.ReadFull(r, buf[:8*want]); err != nil {
			return nil, err
		}
		for i := int64(0); i < want; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}

func readChunkedU32(r io.Reader, count int64) ([]int32, error) {
	out := make([]int32, 0, min64(count, chunkEntries))
	buf := make([]byte, 4*chunkEntries)
	for int64(len(out)) < count {
		want := min64(count-int64(len(out)), chunkEntries)
		if _, err := io.ReadFull(r, buf[:4*want]); err != nil {
			return nil, err
		}
		for i := int64(0); i < want; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return out, nil
}

func readChunkedF64(r io.Reader, count int64) ([]float64, error) {
	raw, err := readChunkedU64(r, count)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = math.Float64frombits(uint64(v))
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
