package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one "u v" or
// "u v w" pair per line, '#' and '%' comment lines ignored. Vertex ids are
// 0-based. The number of vertices is 1 + the maximum id seen. The returned
// edges are raw (not preprocessed); pass them to FromEdges.
func ReadEdgeList(r io.Reader) (n int, edges []Edge, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maxID := int32(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return 0, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return 0, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return 0, nil, fmt.Errorf("graph: line %d: negative vertex id", line)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return 0, nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		}
		edges = append(edges, Edge{U: int32(u), V: int32(v), W: w})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return int(maxID + 1), edges, nil
}

// WriteEdgeList writes g as a 0-based edge list, each undirected edge once
// (u < v), with weights when present.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := int32(0); int(v) < g.NumV; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := g.Adj[k]
			if u <= v {
				continue
			}
			var err error
			if g.Weights != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, u, g.Weights[k])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (the format of
// the SuiteSparse collection the paper draws its real graphs from) into a
// raw edge list. Pattern, real, and integer fields are supported; the
// matrix is interpreted as a graph regardless of declared symmetry, since
// preprocessing symmetrizes anyway. Entries use 1-based indices.
func ReadMatrixMarket(r io.Reader) (n int, edges []Edge, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Header line.
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.ToLower(sc.Text())
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return 0, nil, fmt.Errorf("graph: missing MatrixMarket banner")
	}
	if !strings.Contains(header, "coordinate") {
		return 0, nil, fmt.Errorf("graph: only coordinate MatrixMarket files are supported")
	}
	pattern := strings.Contains(header, "pattern")
	// Skip comments, read size line.
	var rows, cols, nnz int64
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if _, err := fmt.Sscan(text, &rows, &cols, &nnz); err != nil {
			return 0, nil, fmt.Errorf("graph: bad MatrixMarket size line %q: %v", text, err)
		}
		break
	}
	if rows != cols {
		return 0, nil, fmt.Errorf("graph: MatrixMarket matrix is %dx%d, want square", rows, cols)
	}
	edges = make([]Edge, 0, nnz)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("graph: bad MatrixMarket entry %q", text)
		}
		i, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return 0, nil, err
		}
		j, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return 0, nil, err
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return 0, nil, fmt.Errorf("graph: MatrixMarket entry (%d,%d) out of range", i, j)
		}
		w := 1.0
		if !pattern && len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return 0, nil, err
			}
			if w < 0 {
				w = -w // graph similarity weights are magnitudes
			}
		}
		edges = append(edges, Edge{U: int32(i - 1), V: int32(j - 1), W: w})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return int(rows), edges, nil
}

// WriteMatrixMarket writes g as a MatrixMarket coordinate file
// (symmetric; pattern for unweighted graphs, real for weighted), each
// undirected edge once with 1-based indices — round-trippable with
// ReadMatrixMarket and consumable by SuiteSparse tooling.
func WriteMatrixMarket(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	field := "pattern"
	if g.Weighted() {
		field = "real"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s symmetric\n", field); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.NumV, g.NumV, g.NumEdges()); err != nil {
		return err
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := g.Adj[k]
			if u < v {
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", u+1, v+1, g.Weights[k])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u+1, v+1)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
