package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// goodBinary serializes a small valid 6×6 grid and returns the bytes
// plus the header geometry needed to corrupt specific regions.
func goodBinary(t *testing.T) (raw []byte, numV, numArcs int) {
	t.Helper()
	const side = 6
	var edges []Edge
	id := func(r, c int) int32 { return int32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	g, err := FromEdges(side*side, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g.NumV, len(g.Adj)
}

// TestReadBinaryFailurePaths corrupts a valid serialization in targeted
// ways and checks each failure is caught with a diagnosable error rather
// than a panic, hang, or silently wrong graph.
func TestReadBinaryFailurePaths(t *testing.T) {
	raw, numV, numArcs := goodBinary(t)
	const headerLen = 32 // magic|version, flags, numV, numArcs — 4×uint64
	offsetsEnd := headerLen + 8*(numV+1)
	adjEnd := offsetsEnd + 4*numArcs
	if adjEnd != len(raw) {
		t.Fatalf("geometry mismatch: adjEnd %d, len %d", adjEnd, len(raw))
	}

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		wantErr string
	}{
		{
			name:    "empty input",
			corrupt: func(b []byte) []byte { return nil },
			wantErr: "reading binary header",
		},
		{
			name:    "truncated header",
			corrupt: func(b []byte) []byte { return b[:headerLen/2] },
			wantErr: "reading binary header",
		},
		{
			name: "bad magic",
			corrupt: func(b []byte) []byte {
				b[7] ^= 0xff // high byte of the magic word
				return b
			},
			wantErr: "bad binary magic",
		},
		{
			name: "unsupported version",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[0:], binVersion+7)
				return b
			},
			wantErr: "unsupported binary version",
		},
		{
			name: "absurd vertex count",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[16:], 1<<40)
				return b
			},
			wantErr: "corrupt binary sizes",
		},
		{
			name: "absurd arc count",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[24:], 1<<40)
				return b
			},
			wantErr: "corrupt binary sizes",
		},
		{
			name:    "truncated offsets",
			corrupt: func(b []byte) []byte { return b[:headerLen+8*(numV/2)] },
			wantErr: "reading offsets",
		},
		{
			name:    "truncated adjacency",
			corrupt: func(b []byte) []byte { return b[:offsetsEnd+4*(numArcs/2)] },
			wantErr: "reading adjacency",
		},
		{
			name: "weighted flag without weight payload",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[8:], 1)
				return b
			},
			wantErr: "reading weights",
		},
		{
			name: "offsets not monotone",
			corrupt: func(b []byte) []byte {
				// Swap offsets[1] down below offsets[0]'s successor range
				// by writing a huge value then a small one.
				binary.LittleEndian.PutUint64(b[headerLen+8:], uint64(numArcs))
				return b
			},
			wantErr: "failed validation",
		},
		{
			name: "final offset disagrees with arc count",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[headerLen+8*numV:], uint64(numArcs-1))
				return b
			},
			wantErr: "failed validation",
		},
		{
			name: "neighbor out of range",
			corrupt: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offsetsEnd:], uint32(numV+5))
				return b
			},
			wantErr: "failed validation",
		},
		{
			name: "self loop",
			corrupt: func(b []byte) []byte {
				// Vertex 0's first neighbor becomes vertex 0.
				binary.LittleEndian.PutUint32(b[offsetsEnd:], 0)
				return b
			},
			wantErr: "failed validation",
		},
		{
			name: "broken symmetry",
			corrupt: func(b []byte) []byte {
				// Rewrite vertex 0's neighbor to a far vertex that has no
				// reverse arc back (grid vertex 0 links to 1 and 6).
				binary.LittleEndian.PutUint32(b[offsetsEnd:], 3)
				return b
			},
			wantErr: "failed validation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), raw...))
			g, err := ReadBinary(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("ReadBinary accepted corrupt input, returned %v", g)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}

	// The uncorrupted bytes still round-trip: the helpers above did not
	// damage the shared base slice.
	g, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("pristine input rejected: %v", err)
	}
	if g.NumV != numV || len(g.Adj) != numArcs {
		t.Fatalf("round trip: n=%d arcs=%d, want %d/%d", g.NumV, len(g.Adj), numV, numArcs)
	}
}

// TestReadBinaryTrailingGarbageIgnored documents that extra bytes after a
// complete record are not read: callers framing multiple records must
// track lengths themselves.
func TestReadBinaryTrailingGarbageIgnored(t *testing.T) {
	raw, numV, _ := goodBinary(t)
	raw = append(raw, 0xde, 0xad, 0xbe, 0xef)
	g, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != numV {
		t.Fatalf("NumV = %d, want %d", g.NumV, numV)
	}
}
