package graph

import (
	"fmt"
	"sort"
)

// InducedSubgraph extracts the subgraph induced by the given vertex set,
// relabeling the kept vertices contiguously in ascending original-id order
// (the same order-preserving convention as LargestComponent). Returns the
// subgraph and the mapping orig[new] = old. Duplicate ids are rejected.
func InducedSubgraph(g *CSR, vertices []int32) (*CSR, []int32, error) {
	orig := append([]int32(nil), vertices...)
	sort.Slice(orig, func(a, b int) bool { return orig[a] < orig[b] })
	newID := make(map[int32]int32, len(orig))
	for i, v := range orig {
		if v < 0 || int(v) >= g.NumV {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if i > 0 && orig[i-1] == v {
			return nil, nil, fmt.Errorf("graph: duplicate subgraph vertex %d", v)
		}
		newID[v] = int32(i)
	}
	var edges []Edge
	for _, v := range orig {
		for k, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			nu, ok := newID[u]
			if !ok {
				continue
			}
			w := 1.0
			if g.Weighted() {
				w = g.NeighborWeights(v)[k]
			}
			edges = append(edges, Edge{U: newID[v], V: nu, W: w})
		}
	}
	sub, err := FromEdges(len(orig), edges, BuildOptions{
		Weighted:          g.Weighted(),
		KeepAllComponents: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// Neighborhood returns all vertices within the given number of hops of
// center (including center itself).
func Neighborhood(g *CSR, center int32, hops int) ([]int32, error) {
	if center < 0 || int(center) >= g.NumV {
		return nil, fmt.Errorf("graph: neighborhood center %d out of range", center)
	}
	if hops < 0 {
		return nil, fmt.Errorf("graph: negative hop count %d", hops)
	}
	seen := map[int32]bool{center: true}
	frontier := []int32{center}
	out := []int32{center}
	for d := 0; d < hops && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					next = append(next, v)
					out = append(out, v)
				}
			}
		}
		frontier = next
	}
	return out, nil
}
