package graph

import "repro/internal/parallel"

// GapStats summarizes the adjacency-list gap distribution of a graph
// (ICPP'20 Figure 2). For a vertex u with sorted adjacencies v1 < v2 < …,
// the gaps are v2−v1, v3−v2, …; across the whole graph there are exactly
// 2m − n′ gaps where n′ is the number of vertices with nonzero degree.
// Small gaps mean accesses of the form S[v], v ∈ Adj(u) touch nearby
// memory — the property that makes sk-2005's LS step anomalously fast.
type GapStats struct {
	Count int64   // total number of gaps (2m − #nonzero-degree vertices)
	Mean  float64 // arithmetic mean gap
}

// Gaps computes, for every consecutive pair in every (sorted) adjacency
// list, the difference between neighbor ids, and feeds each gap to sink.
// sink is called concurrently from multiple goroutines and must be
// thread-safe (the Fibonacci-binning histogram uses atomic counters).
func Gaps(g *CSR, sink func(gap int64)) {
	parallel.ForBlock(g.NumV, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			for k := 1; k < len(adj); k++ {
				sink(int64(adj[k]) - int64(adj[k-1]))
			}
		}
	})
}

// GapSummary returns aggregate gap statistics in one pass.
func GapSummary(g *CSR) GapStats {
	type acc struct {
		count int64
		sum   int64
	}
	total := acc{}
	// Serial accumulate over parallel per-block partials via SumInt64 twice
	// would traverse twice; do a single blocked pass instead.
	partialCount := parallel.SumInt64(g.NumV, func(v int) int64 {
		d := g.Offsets[v+1] - g.Offsets[v]
		if d <= 1 {
			return 0
		}
		return d - 1
	})
	partialSum := parallel.SumInt64(g.NumV, func(v int) int64 {
		adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
		var s int64
		for k := 1; k < len(adj); k++ {
			s += int64(adj[k]) - int64(adj[k-1])
		}
		return s
	})
	total.count = partialCount
	total.sum = partialSum
	gs := GapStats{Count: total.count}
	if total.count > 0 {
		gs.Mean = float64(total.sum) / float64(total.count)
	}
	return gs
}
