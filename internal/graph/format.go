package graph

import (
	"bufio"
	"fmt"
	"io"
)

// Formats lists the input formats Read accepts, in the spelling the CLI
// flags and the upload API use.
var Formats = []string{"edges", "mtx", "bin"}

// Read parses a graph from r in the named format ("edges", "mtx", or
// "bin") and builds the CSR. The text formats go through FromEdges with
// the given build options; the binary format is a preprocessed CSR
// already, so opts is ignored for it.
func Read(r io.Reader, format string, opts BuildOptions) (*CSR, error) {
	switch format {
	case "bin":
		return ReadBinary(bufio.NewReader(r))
	case "edges", "mtx":
		var (
			n     int
			edges []Edge
			err   error
		)
		if format == "edges" {
			n, edges, err = ReadEdgeList(bufio.NewReader(r))
		} else {
			n, edges, err = ReadMatrixMarket(bufio.NewReader(r))
		}
		if err != nil {
			return nil, err
		}
		return FromEdges(n, edges, opts)
	default:
		return nil, fmt.Errorf("graph: unknown format %q (have %v)", format, Formats)
	}
}
