package graph

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// Edge is one endpoint pair of an input edge list. Direction is ignored
// during preprocessing (the paper symmetrizes directed inputs). W is the
// similarity weight; it is ignored when building an unweighted graph.
type Edge struct {
	U, V int32
	W    float64
}

// BuildOptions controls preprocessing performed by FromEdges.
type BuildOptions struct {
	// Weighted keeps edge weights. Parallel edges are merged by keeping
	// the maximum similarity weight.
	Weighted bool
	// KeepAllComponents skips the largest-connected-component extraction.
	KeepAllComponents bool
}

// FromEdges builds a preprocessed CSR graph from an arbitrary edge list,
// applying the paper's §4.1 pipeline: ignore direction, drop self loops,
// merge parallel edges, and (unless disabled) extract the largest connected
// component with an order-preserving contiguous relabeling.
func FromEdges(n int, edges []Edge, opt BuildOptions) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
		}
		if opt.Weighted && e.W < 0 {
			return nil, fmt.Errorf("graph: negative weight %g on edge {%d,%d}", e.W, e.U, e.V)
		}
	}
	g := assemble(n, edges, opt.Weighted)
	if !opt.KeepAllComponents {
		g = LargestComponent(g)
	}
	return g, nil
}

// assemble symmetrizes, deduplicates, and packs the edge list into CSR
// form. Counting and filling are parallelized over the arc array; the
// per-vertex sort/dedupe pass is parallelized over vertices.
func assemble(n int, edges []Edge, weighted bool) *CSR {
	// Count both directions of every non-loop edge.
	counts := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		counts[e.U+1]++
		counts[e.V+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]int32, counts[n])
	var wts []float64
	if weighted {
		wts = make([]float64, counts[n])
	}
	fill := make([]int64, n)
	copy(fill, counts[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		w := e.W
		if !weighted {
			w = 1
		}
		ku := fill[e.U]
		adj[ku] = e.V
		fill[e.U] = ku + 1
		kv := fill[e.V]
		adj[kv] = e.U
		fill[e.V] = kv + 1
		if weighted {
			wts[ku] = w
			wts[kv] = w
		}
	}
	// Sort each adjacency list and drop duplicates (parallel edges). When
	// weighted, duplicates are merged by keeping the maximum similarity.
	newLen := make([]int64, n)
	parallel.For(n, func(v int) {
		lo, hi := counts[v], counts[v+1]
		a := adj[lo:hi]
		if weighted {
			w := wts[lo:hi]
			idx := make([]int, len(a))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return a[idx[i]] < a[idx[j]] })
			sa := make([]int32, len(a))
			sw := make([]float64, len(a))
			for i, k := range idx {
				sa[i], sw[i] = a[k], w[k]
			}
			out := 0
			for i := 0; i < len(sa); i++ {
				if out > 0 && sa[i] == sa[out-1] {
					if sw[i] > sw[out-1] {
						sw[out-1] = sw[i]
					}
					continue
				}
				sa[out], sw[out] = sa[i], sw[i]
				out++
			}
			copy(a, sa[:out])
			copy(w, sw[:out])
			newLen[v] = int64(out)
			return
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		out := 0
		for i := 0; i < len(a); i++ {
			if out > 0 && a[i] == a[out-1] {
				continue
			}
			a[out] = a[i]
			out++
		}
		newLen[v] = int64(out)
	})
	// Compact into final CSR arrays.
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + newLen[v]
	}
	outAdj := make([]int32, offsets[n])
	var outW []float64
	if weighted {
		outW = make([]float64, offsets[n])
	}
	parallel.For(n, func(v int) {
		lo := counts[v]
		copy(outAdj[offsets[v]:offsets[v+1]], adj[lo:lo+newLen[v]])
		if weighted {
			copy(outW[offsets[v]:offsets[v+1]], wts[lo:lo+newLen[v]])
		}
	})
	return &CSR{NumV: n, Offsets: offsets, Adj: outAdj, Weights: outW}
}

// Unweighted returns a view of g with weights stripped. The topology
// arrays are shared with g.
func (g *CSR) Unweighted() *CSR {
	return &CSR{NumV: g.NumV, Offsets: g.Offsets, Adj: g.Adj}
}

// WithUnitWeights returns a weighted copy of g where every edge has weight
// one — the configuration of the paper's "unit weights for road_usa" SSSP
// experiment. Topology arrays are shared with g.
func (g *CSR) WithUnitWeights() *CSR {
	w := make([]float64, len(g.Adj))
	for i := range w {
		w[i] = 1
	}
	return &CSR{NumV: g.NumV, Offsets: g.Offsets, Adj: g.Adj, Weights: w}
}
