package graph

// Components labels the connected components of g. It returns a component
// id per vertex (ids are assigned in order of the smallest vertex in each
// component) and the number of components. A simple iterative BFS is used;
// this is a preprocessing step and is not on the timed path.
func Components(g *CSR) (label []int32, count int) {
	label = make([]int32, g.NumV)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int32, 0, 1024)
	var next int32
	for start := 0; start < g.NumV; start++ {
		if label[start] >= 0 {
			continue
		}
		id := next
		next++
		label[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if label[u] < 0 {
					label[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return label, int(next)
}

// LargestComponent extracts the largest connected component of g,
// renumbering the surviving vertices contiguously while preserving their
// original relative order (the paper's §4.1: "we remove vertices not in
// the component and renumber the vertices to be contiguous, but preserving
// the original implied ordering"). Order preservation matters because
// Figure 2 / §4.4 show vertex ordering dominates SpMV locality.
func LargestComponent(g *CSR) *CSR {
	label, count := Components(g)
	if count <= 1 {
		return g
	}
	sizes := make([]int64, count)
	for _, l := range label {
		sizes[l]++
	}
	best := int32(0)
	for i := 1; i < count; i++ {
		if sizes[i] > sizes[best] {
			best = int32(i)
		}
	}
	// Order-preserving relabeling: old id -> new id, increasing.
	newID := make([]int32, g.NumV)
	n := int32(0)
	for v := 0; v < g.NumV; v++ {
		if label[v] == best {
			newID[v] = n
			n++
		} else {
			newID[v] = -1
		}
	}
	offsets := make([]int64, n+1)
	pos := int64(0)
	outAdjLen := int64(0)
	for v := 0; v < g.NumV; v++ {
		if newID[v] < 0 {
			continue
		}
		outAdjLen += g.Offsets[v+1] - g.Offsets[v]
	}
	adj := make([]int32, outAdjLen)
	var wts []float64
	if g.Weights != nil {
		wts = make([]float64, outAdjLen)
	}
	ni := int32(0)
	for v := 0; v < g.NumV; v++ {
		if newID[v] < 0 {
			continue
		}
		offsets[ni] = pos
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			adj[pos] = newID[g.Adj[k]] // neighbors are in-component by construction
			if wts != nil {
				wts[pos] = g.Weights[k]
			}
			pos++
		}
		ni++
	}
	offsets[n] = pos
	return &CSR{NumV: int(n), Offsets: offsets, Adj: adj, Weights: wts}
}
