package graph

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
0 1
1 2 3.5

2 0
`
	n, edges, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
	if edges[1].W != 3.5 {
		t.Fatalf("weight = %g, want 3.5", edges[1].W)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n", "0 1 zzz\n"} {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustFromEdges(t, 6, randomEdges(6, 12, 3), BuildOptions{Weighted: true, KeepAllComponents: true})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	n, edges, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromEdges(maxInt(n, g.NumV), edges, BuildOptions{Weighted: true, KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	for v := int32(0); int(v) < g.NumV; v++ {
		for k, u := range g.Neighbors(v) {
			if !g2.HasEdge(v, u) {
				t.Fatalf("edge {%d,%d} lost", v, u)
			}
			_ = k
		}
	}
}

func TestReadMatrixMarket(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% SuiteSparse-style comment
3 3 3
1 2 1.5
2 3 -2.0
3 1 4.0
`
	n, edges, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
	if edges[0].U != 0 || edges[0].V != 1 {
		t.Fatalf("1-based conversion wrong: %+v", edges[0])
	}
	if edges[1].W != 2.0 {
		t.Fatalf("negative values should be folded to magnitude, got %g", edges[1].W)
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 1
1 2
`
	_, edges, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if edges[0].W != 1 {
		t.Fatalf("pattern weight = %g, want 1", edges[0].W)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2 4\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1\n",
	}
	for _, in := range cases {
		if _, _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := mustFromEdges(t, 50, randomEdges(50, 200, 11), BuildOptions{Weighted: weighted})
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumV != g.NumV || g2.NumEdges() != g.NumEdges() || g2.Weighted() != weighted {
			t.Fatalf("round trip mismatch: n %d/%d m %d/%d", g2.NumV, g.NumV, g2.NumEdges(), g.NumEdges())
		}
		for i := range g.Adj {
			if g.Adj[i] != g2.Adj[i] {
				t.Fatal("adjacency mismatch")
			}
			if weighted && g.Weights[i] != g2.Weights[i] {
				t.Fatal("weights mismatch")
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero header accepted")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := mustFromEdges(t, 20, randomEdges(20, 60, 17), BuildOptions{Weighted: weighted, KeepAllComponents: true})
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			t.Fatal(err)
		}
		n, edges, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := FromEdges(n, edges, BuildOptions{Weighted: weighted, KeepAllComponents: true})
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumV != g.NumV || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("weighted=%v: round trip n=%d/%d m=%d/%d", weighted, g2.NumV, g.NumV, g2.NumEdges(), g.NumEdges())
		}
		for v := int32(0); int(v) < g.NumV; v++ {
			for k, u := range g.Neighbors(v) {
				if !g2.HasEdge(v, u) {
					t.Fatalf("edge {%d,%d} lost", v, u)
				}
				if weighted {
					for j, u2 := range g2.Neighbors(v) {
						if u2 == u && g2.NeighborWeights(v)[j] != g.NeighborWeights(v)[k] {
							t.Fatalf("weight changed on {%d,%d}", v, u)
						}
					}
				}
			}
		}
	}
}

// failWriter errors after a fixed number of bytes, exercising writer error
// paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, fmt.Errorf("injected write failure")
	}
	return n, nil
}

func TestWritersPropagateErrors(t *testing.T) {
	g := mustFromEdges(t, 50, randomEdges(50, 200, 3), BuildOptions{Weighted: true})
	writers := map[string]func(w io.Writer) error{
		"edgelist": func(w io.Writer) error { return WriteEdgeList(w, g) },
		"mtx":      func(w io.Writer) error { return WriteMatrixMarket(w, g) },
		"binary":   func(w io.Writer) error { return WriteBinary(w, g) },
	}
	for name, write := range writers {
		for _, budget := range []int{0, 10, 100} {
			if err := write(&failWriter{left: budget}); err == nil {
				t.Errorf("%s: write succeeded with %d-byte budget", name, budget)
			}
		}
	}
}
