// Package quality implements the standard drawing-quality measures of the
// experimental literature the paper leans on (Brandes & Pich's study [6],
// Hachul & Jünger [21]): neighborhood preservation (do graph neighbors
// land nearby in the picture?) and sampled edge-crossing rate. Together
// with core.Evaluate's Hall energy and core.DistanceCorrelation they give
// a quantitative stand-in for the paper's visual drawing comparisons.
package quality

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// NeighborhoodPreservation computes the mean precision@k between graph
// neighborhoods and layout neighborhoods over a deterministic sample of
// vertices: for each sampled v, the k vertices closest in the drawing are
// compared with v's k graph-nearest vertices (BFS order, ties broken by
// id). Returns a value in [0, 1]; 1 means every drawn neighborhood is a
// graph neighborhood.
func NeighborhoodPreservation(g *graph.CSR, l *core.Layout, k, sample int, seed uint64) float64 {
	n := g.NumV
	if n < 2 || k < 1 {
		return 0
	}
	if k > n-1 {
		k = n - 1
	}
	if sample > n {
		sample = n
	}
	perm := graph.RandomPermutation(n, seed)
	var total float64
	dist := make([]int32, n)
	for si := 0; si < sample; si++ {
		v := perm[si]
		graphNear := graphKNearest(g, v, k, dist)
		layoutNear := layoutKNearest(l, v, k)
		inter := 0
		for u := range layoutNear {
			if graphNear[u] {
				inter++
			}
		}
		total += float64(inter) / float64(k)
	}
	return total / float64(sample)
}

// graphKNearest returns the k vertices (excluding v) closest to v in hop
// distance, ties broken by vertex id — computed with a truncated BFS.
func graphKNearest(g *graph.CSR, v int32, k int, dist []int32) map[int32]bool {
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int32{v}
	out := make(map[int32]bool, k)
	for len(queue) > 0 && len(out) < k {
		var next []int32
		// Sort current level by id for deterministic tie-breaking.
		sort.Slice(queue, func(a, b int) bool { return queue[a] < queue[b] })
		for _, u := range queue {
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					next = append(next, w)
				}
			}
		}
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		for _, w := range next {
			if len(out) == k {
				break
			}
			out[w] = true
		}
		queue = next
	}
	return out
}

// layoutKNearest returns the k vertices closest to v in the drawing,
// via a uniform grid over the unit-normalized coordinates.
func layoutKNearest(l *core.Layout, v int32, k int) map[int32]bool {
	n := l.NumVertices()
	x, y := l.X(), l.Y()
	// Normalize bounds for binning.
	minX, maxX := minMax(x)
	minY, maxY := minMax(y)
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	cells := int(math.Sqrt(float64(n))) + 1
	if cells > 512 {
		cells = 512
	}
	cellOf := func(u int32) (int, int) {
		cx := int((x[u] - minX) / spanX * float64(cells-1))
		cy := int((y[u] - minY) / spanY * float64(cells-1))
		return cx, cy
	}
	grid := make(map[[2]int][]int32, n/4)
	for u := int32(0); int(u) < n; u++ {
		cx, cy := cellOf(u)
		grid[[2]int{cx, cy}] = append(grid[[2]int{cx, cy}], u)
	}
	type cand struct {
		u int32
		d float64
	}
	var cands []cand
	cx, cy := cellOf(v)
	for ring := 0; ring < cells; ring++ {
		// Collect the ring's cells.
		added := false
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if maxAbs(dx, dy) != ring {
					continue
				}
				for _, u := range grid[[2]int{cx + dx, cy + dy}] {
					if u == v {
						continue
					}
					ddx, ddy := x[u]-x[v], y[u]-y[v]
					cands = append(cands, cand{u, ddx*ddx + ddy*ddy})
					added = true
				}
			}
		}
		// Stop once we have comfortably more than k candidates and one
		// further ring of margin (grid distance lower-bounds true
		// distance within a ring).
		if len(cands) >= 3*k && added {
			break
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].u < cands[b].u
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make(map[int32]bool, len(cands))
	for _, c := range cands {
		out[c.u] = true
	}
	return out
}

// SampledStress estimates the normalized stress of a layout from BFS
// distances of `sources` deterministically sampled vertices: over all
// pairs (s, v) with hop distance d > 0, with the classic 1/d² weights
// and the optimal uniform scale α = Σ wdr / Σ wr² applied to the
// drawing, it returns (1/|P|) Σ w(d − αr)². The α fit makes the measure
// scale-invariant, so layouts of different overall size are comparable;
// 0 is a perfect embedding of the sampled distances. Vertices
// unreachable from a source are skipped.
func SampledStress(g *graph.CSR, l *core.Layout, sources int, seed uint64) float64 {
	n := g.NumV
	if n < 2 || sources < 1 {
		return 0
	}
	if sources > n {
		sources = n
	}
	perm := graph.RandomPermutation(n, seed)
	p := l.Dims()
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = l.Coords.Col(j)
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var swdr, swrr float64 // Σ w·d·r, Σ w·r²
	type pair struct{ d, r float64 }
	var pairs []pair
	for si := 0; si < sources; si++ {
		s := perm[si]
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v := int32(0); int(v) < n; v++ {
			d := dist[v]
			if d <= 0 {
				continue
			}
			var rr float64
			for j := 0; j < p; j++ {
				diff := cols[j][v] - cols[j][s]
				rr += diff * diff
			}
			r := math.Sqrt(rr)
			fd := float64(d)
			w := 1 / (fd * fd)
			swdr += w * fd * r
			swrr += w * r * r
			pairs = append(pairs, pair{fd, r})
		}
	}
	if len(pairs) == 0 || swrr == 0 {
		return 0
	}
	alpha := swdr / swrr
	var total float64
	for _, q := range pairs {
		e := q.d - alpha*q.r
		total += e * e / (q.d * q.d)
	}
	return total / float64(len(pairs))
}

// SampledCrossingRate estimates the fraction of edge pairs that cross in
// the drawing by sampling `samples` random pairs of independent edges.
// A planar-quality mesh drawing should score orders of magnitude below a
// random placement.
func SampledCrossingRate(g *graph.CSR, l *core.Layout, samples int, seed uint64) float64 {
	m := g.NumEdges()
	if m < 2 || samples < 1 {
		return 0
	}
	// Collect edges once (u < v).
	edges := make([][2]int32, 0, m)
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges = append(edges, [2]int32{v, u})
			}
		}
	}
	state := seed
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state
	}
	x, y := l.X(), l.Y()
	crossings := 0
	valid := 0
	for t := 0; t < samples; t++ {
		e1 := edges[next()%uint64(len(edges))]
		e2 := edges[next()%uint64(len(edges))]
		if e1[0] == e2[0] || e1[0] == e2[1] || e1[1] == e2[0] || e1[1] == e2[1] {
			continue // shared endpoint: not a crossing candidate
		}
		valid++
		if segmentsCross(
			x[e1[0]], y[e1[0]], x[e1[1]], y[e1[1]],
			x[e2[0]], y[e2[0]], x[e2[1]], y[e2[1]]) {
			crossings++
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(crossings) / float64(valid)
}

// segmentsCross reports proper intersection of segments ab and cd.
func segmentsCross(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
	d1 := orient(cx, cy, dx, dy, ax, ay)
	d2 := orient(cx, cy, dx, dy, bx, by)
	d3 := orient(ax, ay, bx, by, cx, cy)
	d4 := orient(ax, ay, bx, by, dx, dy)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

func orient(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

func minMax(v []float64) (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
