package quality

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestNeighborhoodPreservationGridPerfect(t *testing.T) {
	// For a grid drawn at its true coordinates, layout neighborhoods are
	// graph neighborhoods.
	rows, cols := 15, 15
	g := gen.Grid2D(rows, cols)
	coords := linalg.NewDense(g.NumV, 2)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords.Set(r*cols+c, 0, float64(c))
			coords.Set(r*cols+c, 1, float64(r))
		}
	}
	exact := &core.Layout{Coords: coords}
	np := NeighborhoodPreservation(g, exact, 4, 50, 1)
	if np < 0.9 {
		t.Fatalf("exact grid neighborhood preservation %.3f", np)
	}
	rnd := NeighborhoodPreservation(g, core.RandomLayout(g.NumV, 2, 2), 4, 50, 1)
	if np <= rnd {
		t.Fatalf("exact %.3f not above random %.3f", np, rnd)
	}
}

func TestNeighborhoodPreservationHDE(t *testing.T) {
	g := gen.PlateWithHoles(25, 25)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hde := NeighborhoodPreservation(g, lay, 6, 60, 3)
	rnd := NeighborhoodPreservation(g, core.RandomLayout(g.NumV, 2, 4), 6, 60, 3)
	if hde <= 2*rnd {
		t.Fatalf("HDE preservation %.3f not well above random %.3f", hde, rnd)
	}
}

func TestNeighborhoodPreservationEdgeCases(t *testing.T) {
	g := gen.Path(3)
	l := core.RandomLayout(3, 2, 1)
	if v := NeighborhoodPreservation(g, l, 0, 3, 1); v != 0 {
		t.Fatalf("k=0 returned %g", v)
	}
	// k larger than n−1 clamps.
	if v := NeighborhoodPreservation(g, l, 10, 3, 1); v <= 0 || v > 1 {
		t.Fatalf("clamped k returned %g", v)
	}
}

func TestCrossingRateGridVsRandom(t *testing.T) {
	rows, cols := 12, 12
	g := gen.Grid2D(rows, cols)
	coords := linalg.NewDense(g.NumV, 2)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords.Set(r*cols+c, 0, float64(c))
			coords.Set(r*cols+c, 1, float64(r))
		}
	}
	exact := &core.Layout{Coords: coords}
	if cr := SampledCrossingRate(g, exact, 5000, 1); cr != 0 {
		t.Fatalf("exact grid drawing has crossing rate %.4f", cr)
	}
	rnd := SampledCrossingRate(g, core.RandomLayout(g.NumV, 2, 5), 5000, 1)
	if rnd < 0.05 {
		t.Fatalf("random drawing crossing rate %.4f implausibly low", rnd)
	}
}

func TestCrossingRateHDEBelowRandom(t *testing.T) {
	g := gen.PlateWithHoles(20, 20)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hde := SampledCrossingRate(g, lay, 8000, 2)
	rnd := SampledCrossingRate(g, core.RandomLayout(g.NumV, 2, 3), 8000, 2)
	if hde >= rnd/4 {
		t.Fatalf("HDE crossing rate %.4f not well below random %.4f", hde, rnd)
	}
}

func TestSegmentsCross(t *testing.T) {
	if !segmentsCross(0, 0, 2, 2, 0, 2, 2, 0) {
		t.Fatal("X segments should cross")
	}
	if segmentsCross(0, 0, 1, 0, 0, 1, 1, 1) {
		t.Fatal("parallel segments should not cross")
	}
	if segmentsCross(0, 0, 1, 1, 2, 2, 3, 3) {
		t.Fatal("collinear disjoint segments should not cross")
	}
}

func TestCrossingRateDegenerate(t *testing.T) {
	g := gen.Path(2) // one edge: no pairs
	l := core.RandomLayout(2, 2, 1)
	if cr := SampledCrossingRate(g, l, 100, 1); cr != 0 {
		t.Fatalf("single-edge crossing rate %g", cr)
	}
}

func TestProcrustesIdentityAndRotation(t *testing.T) {
	g := gen.Grid2D(10, 10)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Self-distance zero.
	d, err := ProcrustesDistance(lay, lay, false)
	if err != nil || d > 1e-12 {
		t.Fatalf("self distance %g, err %v", d, err)
	}
	// Rotated + scaled + translated copy: still zero.
	rot := lay.Clone()
	theta := 0.7
	c, s := math.Cos(theta), math.Sin(theta)
	for i := 0; i < rot.NumVertices(); i++ {
		x, y := rot.X()[i], rot.Y()[i]
		rot.X()[i] = 3*(c*x-s*y) + 10
		rot.Y()[i] = 3*(s*x+c*y) - 4
	}
	d, err = ProcrustesDistance(lay, rot, false)
	if err != nil || d > 1e-9 {
		t.Fatalf("rotated distance %g, err %v", d, err)
	}
	// Reflected copy: zero only when reflections are allowed.
	ref := lay.Clone()
	for i := range ref.X() {
		ref.X()[i] = -ref.X()[i]
	}
	dNo, _ := ProcrustesDistance(lay, ref, false)
	dYes, _ := ProcrustesDistance(lay, ref, true)
	if dYes > 1e-9 {
		t.Fatalf("reflection not absorbed: %g", dYes)
	}
	if dNo <= dYes {
		t.Fatalf("proper-only distance %g not above reflection-allowed %g", dNo, dYes)
	}
}

func TestProcrustesHDECloseToSpectral(t *testing.T) {
	// Figure 1's claim, quantified: the ParHDE drawing is far closer to
	// the true spectral drawing than a random layout is.
	g := gen.PlateWithHoles(25, 25)
	hde, _, err := core.ParHDE(g, core.Options{Subspace: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pw := eigen.WalkPower(g, 2, eigen.PowerOptions{Seed: 1, MaxIters: 5000, Tol: 1e-9})
	spectral := &core.Layout{Coords: pw.Vectors}
	dHDE, err := ProcrustesDistance(spectral, hde, true)
	if err != nil {
		t.Fatal(err)
	}
	dRnd, err := ProcrustesDistance(spectral, core.RandomLayout(g.NumV, 2, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	if dHDE >= dRnd/3 {
		t.Fatalf("HDE Procrustes distance %.4f not well below random %.4f", dHDE, dRnd)
	}
}

func TestProcrustesErrors(t *testing.T) {
	a := core.RandomLayout(5, 2, 1)
	b := core.RandomLayout(6, 2, 1)
	if _, err := ProcrustesDistance(a, b, false); err == nil {
		t.Fatal("size mismatch accepted")
	}
	c := core.RandomLayout(5, 3, 1)
	if _, err := ProcrustesDistance(a, c, false); err == nil {
		t.Fatal("3D accepted")
	}
}
