package quality

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// ProcrustesDistance computes the normalized orthogonal Procrustes
// distance between two 2-D layouts of the same vertex set: both are
// centered and scaled to unit Frobenius norm, b is optimally rotated (and,
// if allowReflection, reflected) onto a, and the residual
// ‖A − B·R‖_F² ∈ [0, 2] is returned. Zero means the drawings are
// identical up to translation, rotation, reflection, and scale — exactly
// the invariances of spectral layouts, whose axes are defined only up to
// sign and rotation within eigenspaces. This makes "ParHDE captures the
// same structure as the spectral drawing" (Figure 1) a measurable claim.
func ProcrustesDistance(a, b *core.Layout, allowReflection bool) (float64, error) {
	if a.NumVertices() != b.NumVertices() {
		return 0, fmt.Errorf("quality: layouts have %d and %d vertices", a.NumVertices(), b.NumVertices())
	}
	if a.Dims() != 2 || b.Dims() != 2 {
		return 0, fmt.Errorf("quality: Procrustes alignment implemented for 2-D layouts")
	}
	n := a.NumVertices()
	ax, ay := normalize2D(a)
	bx, by := normalize2D(b)

	// Cross-covariance M = AᵀB (2×2).
	var m00, m01, m10, m11 float64
	for i := 0; i < n; i++ {
		m00 += ax[i] * bx[i]
		m01 += ax[i] * by[i]
		m10 += ay[i] * bx[i]
		m11 += ay[i] * by[i]
	}
	// Optimal rotation maximizes tr(MR). For 2×2, the best proper rotation
	// has tr = sqrt((m00+m11)² + (m01−m10)²); the best improper
	// (reflection) has tr = sqrt((m00−m11)² + (m01+m10)²).
	properTr := math.Hypot(m00+m11, m01-m10)
	improperTr := math.Hypot(m00-m11, m01+m10)
	best := properTr
	if allowReflection && improperTr > best {
		best = improperTr
	}
	// Residual with unit-norm inputs: ‖A − BR‖² = 2 − 2·tr(MR).
	d := 2 - 2*best
	if d < 0 {
		d = 0
	}
	return d, nil
}

// normalize2D returns centered, unit-Frobenius-norm copies of the two
// coordinate columns.
func normalize2D(l *core.Layout) (x, y []float64) {
	n := l.NumVertices()
	x = append([]float64(nil), l.X()...)
	y = append([]float64(nil), l.Y()...)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var norm float64
	for i := 0; i < n; i++ {
		x[i] -= mx
		y[i] -= my
		norm += x[i]*x[i] + y[i]*y[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return x, y
	}
	for i := 0; i < n; i++ {
		x[i] /= norm
		y[i] /= norm
	}
	return x, y
}
