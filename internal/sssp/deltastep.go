// Package sssp implements single-source shortest paths for the weighted
// extension of ParHDE (ICPP'20 §3.3): the Δ-stepping algorithm of Meyer
// and Sanders as organized in the GAP Benchmark Suite — shared buckets plus
// thread-local buckets, light/heavy edge partitioning, no bucket
// recycling, settled vertices skipped by a current-distance check — and a
// binary-heap Dijkstra used as the correctness oracle.
package sssp

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Inf marks unreachable vertices in a distance vector.
var Inf = math.Inf(1)

// Stats reports work done by a Δ-stepping run.
type Stats struct {
	Buckets      int   // non-empty buckets processed
	LightPhases  int   // inner light-edge relaxation rounds
	Relaxations  int64 // successful distance improvements
	EdgesScanned int64
}

// DeltaStepping computes shortest-path distances from src on a weighted
// graph, writing them into dist (length NumV; unreachable = +Inf). delta
// is the bucket width Δ; edges with weight ≤ Δ are light and are relaxed
// iteratively within a bucket, heavier edges once per bucket. delta must
// be positive.
func DeltaStepping(g *graph.CSR, src int32, delta float64, dist []float64) Stats {
	if !g.Weighted() {
		panic("sssp: DeltaStepping requires a weighted graph")
	}
	if delta <= 0 {
		panic("sssp: non-positive delta")
	}
	n := g.NumV
	bits := make([]uint64, n)
	infBits := math.Float64bits(Inf)
	parallel.For(n, func(i int) { bits[i] = infBits })
	atomic.StoreUint64(&bits[src], math.Float64bits(0))

	var st Stats
	workers := parallel.Workers()
	type bv struct {
		bucket int32
		v      int32
	}
	locals := make([][]bv, workers)

	// Shared buckets, grown on demand; GAP likewise never recycles them.
	var buckets [][]int32
	putShared := func(b int32, v int32) {
		for int(b) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
	}
	putShared(0, src)

	distOf := func(v int32) float64 {
		return math.Float64frombits(atomic.LoadUint64(&bits[v]))
	}
	relax := func(v int32, nd float64) bool {
		for {
			old := atomic.LoadUint64(&bits[v])
			if nd >= math.Float64frombits(old) {
				return false
			}
			if atomic.CompareAndSwapUint64(&bits[v], old, math.Float64bits(nd)) {
				return true
			}
		}
	}
	bucketOf := func(d float64) int32 { return int32(d / delta) }

	// processFrontier relaxes the given edge class for every live vertex in
	// frontier, accumulating newly bucketed vertices in per-worker locals.
	processFrontier := func(frontier []int32, cur int32, light bool) {
		var wg sync.WaitGroup
		wg.Add(workers)
		var scanned, relaxed int64
		for wk := 0; wk < workers; wk++ {
			go func(wk int) {
				defer wg.Done()
				local := locals[wk][:0]
				var lScan, lRelax int64
				lo := wk * len(frontier) / workers
				hi := (wk + 1) * len(frontier) / workers
				for _, u := range frontier[lo:hi] {
					du := distOf(u)
					// Skip vertices already settled into an earlier bucket
					// (stale queue entries), per the GAP implementation.
					if bucketOf(du) != cur && light {
						continue
					}
					adj := g.Adj[g.Offsets[u]:g.Offsets[u+1]]
					wts := g.Weights[g.Offsets[u]:g.Offsets[u+1]]
					for k, v := range adj {
						w := wts[k]
						if light != (w <= delta) {
							continue
						}
						lScan++
						nd := du + w
						if relax(v, nd) {
							lRelax++
							local = append(local, bv{bucketOf(nd), v})
						}
					}
				}
				locals[wk] = local
				atomic.AddInt64(&scanned, lScan)
				atomic.AddInt64(&relaxed, lRelax)
			}(wk)
		}
		wg.Wait()
		st.EdgesScanned += scanned
		st.Relaxations += relaxed
		// Second phase: merge thread-local buckets into the shared ones.
		for wk := 0; wk < workers; wk++ {
			for _, e := range locals[wk] {
				putShared(e.bucket, e.v)
			}
		}
	}

	for cur := int32(0); ; cur++ {
		for int(cur) < len(buckets) && buckets[cur] == nil {
			cur++
		}
		if int(cur) >= len(buckets) {
			break
		}
		st.Buckets++
		// Settled set for this bucket feeds the single heavy pass.
		var settled []int32
		for len(buckets[cur]) > 0 {
			st.LightPhases++
			frontier := buckets[cur]
			buckets[cur] = nil
			// Deduplicate against settled by distance check inside
			// processFrontier; remember for heavy pass.
			for _, u := range frontier {
				if bucketOf(distOf(u)) == cur {
					settled = append(settled, u)
				}
			}
			processFrontier(frontier, cur, true)
		}
		processFrontier(settled, cur, false)
	}

	parallel.For(n, func(i int) { dist[i] = math.Float64frombits(bits[i]) })
	return st
}

// SuggestDelta returns the standard Δ heuristic: average edge weight times
// (roughly) the ratio that balances light-phase rounds against bucket
// count — Δ = max weight / average degree is the GAP default; we use the
// simpler max(1, avgWeight) when degrees are tiny.
func SuggestDelta(g *graph.CSR) float64 {
	if !g.Weighted() || len(g.Weights) == 0 {
		return 1
	}
	var maxW float64
	for _, w := range g.Weights {
		if w > maxW {
			maxW = w
		}
	}
	avgDeg := float64(len(g.Adj)) / float64(g.NumV)
	d := maxW / avgDeg
	if d <= 0 {
		d = 1
	}
	return d
}
