package sssp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

func weightedFixture(seed uint64) *graph.CSR {
	return gen.WithRandomWeights(gen.Grid2D(25, 25), 10, seed)
}

func TestDeltaSteppingMatchesDijkstraFixtures(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"grid":  weightedFixture(1),
		"kron":  gen.WithRandomWeights(gen.Kron(9, 8, 2), 20, 2),
		"road":  gen.WithRandomWeights(gen.Road(30, 30, 3), 5, 3),
		"cycle": gen.WithRandomWeights(gen.Cycle(777), 9, 4),
	}
	for name, g := range graphs {
		want := make([]float64, g.NumV)
		got := make([]float64, g.NumV)
		for _, delta := range []float64{0.5, 1, 3, 25} {
			Dijkstra(g, 0, want)
			DeltaStepping(g, 0, delta, got)
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-9 {
					t.Fatalf("%s Δ=%g: dist[%d] = %g, want %g", name, delta, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDeltaSteppingProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(150)
		edges := make([]graph.Edge, 3*n)
		for i := range edges {
			edges[i] = graph.Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)),
				W: 1 + float64(r.Intn(30)),
			}
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{Weighted: true})
		if err != nil || g.NumV < 2 {
			return true
		}
		src := int32(r.Intn(g.NumV))
		delta := []float64{0.7, 2, 11}[r.Intn(3)]
		want := make([]float64, g.NumV)
		got := make([]float64, g.NumV)
		Dijkstra(g, src, want)
		DeltaStepping(g, src, delta, got)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnitWeightsMatchBFS(t *testing.T) {
	// §4.4: with unit weights, SSSP distances must equal BFS hop counts.
	base := gen.Road(40, 40, 7)
	g := base.WithUnitWeights()
	hops := make([]int32, g.NumV)
	bfs.Serial(base, 0, hops)
	dist := make([]float64, g.NumV)
	DeltaStepping(g, 0, 1, dist)
	for i := range hops {
		if float64(hops[i]) != dist[i] {
			t.Fatalf("vertex %d: sssp %g, bfs %d", i, dist[i], hops[i])
		}
	}
}

func TestDeltaSteppingDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 2}}
	g, err := graph.FromEdges(4, edges, graph.BuildOptions{Weighted: true, KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]float64, 4)
	DeltaStepping(g, 0, 1, dist)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Fatalf("unreachable distances %v", dist)
	}
	if dist[0] != 0 || dist[1] != 2 {
		t.Fatalf("reachable distances wrong: %v", dist)
	}
}

func TestDeltaSteppingStats(t *testing.T) {
	g := weightedFixture(9)
	dist := make([]float64, g.NumV)
	st := DeltaStepping(g, 0, 2, dist)
	if st.Buckets == 0 || st.LightPhases == 0 || st.Relaxations == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Relaxations < int64(g.NumV-1) {
		t.Fatalf("fewer relaxations (%d) than reachable vertices", st.Relaxations)
	}
}

func TestDeltaSensitivity(t *testing.T) {
	// Correctness must hold at extreme Δ: Δ ≥ max weight degenerates
	// toward Bellman-Ford rounds, tiny Δ toward Dijkstra.
	g := weightedFixture(11)
	want := make([]float64, g.NumV)
	Dijkstra(g, 5, want)
	for _, delta := range []float64{0.1, 1000} {
		got := make([]float64, g.NumV)
		DeltaStepping(g, 5, delta, got)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("Δ=%g wrong at %d", delta, i)
			}
		}
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	unweighted := gen.Path(5)
	assertPanics(t, func() { DeltaStepping(unweighted, 0, 1, make([]float64, 5)) })
	assertPanics(t, func() { Dijkstra(unweighted, 0, make([]float64, 5)) })
	weighted := weightedFixture(1)
	assertPanics(t, func() { DeltaStepping(weighted, 0, 0, make([]float64, weighted.NumV)) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSuggestDelta(t *testing.T) {
	g := weightedFixture(13)
	if d := SuggestDelta(g); d <= 0 {
		t.Fatalf("SuggestDelta = %g", d)
	}
	if d := SuggestDelta(gen.Path(5)); d != 1 {
		t.Fatalf("unweighted SuggestDelta = %g, want 1", d)
	}
}
