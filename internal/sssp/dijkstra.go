package sssp

import (
	"container/heap"

	"repro/internal/graph"
)

// Dijkstra computes shortest-path distances from src with a binary heap —
// the sequential reference implementation used to validate Δ-stepping and
// as the serial baseline in the weighted-graph experiments.
func Dijkstra(g *graph.CSR, src int32, dist []float64) {
	if !g.Weighted() {
		panic("sssp: Dijkstra requires a weighted graph")
	}
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue // stale entry
		}
		adj := g.Adj[g.Offsets[top.v]:g.Offsets[top.v+1]]
		wts := g.Weights[g.Offsets[top.v]:g.Offsets[top.v+1]]
		for k, u := range adj {
			if nd := top.d + wts[k]; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distEntry{v: u, d: nd})
			}
		}
	}
}

type distEntry struct {
	v int32
	d float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
