package partition

import "repro/internal/graph"

// RefineOptions controls boundary refinement.
type RefineOptions struct {
	// MaxPasses over the boundary (default 8).
	MaxPasses int
	// Imbalance is the allowed max-part overshoot factor (default 1.05).
	Imbalance float64
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	if o.Imbalance < 1 {
		o.Imbalance = 1.05
	}
	return o
}

// Refine improves a partition with Kernighan-Lin/FM-style boundary moves:
// each pass scans boundary vertices and greedily moves any vertex whose
// reassignment to a neighboring part reduces the edge cut without
// violating the balance constraint. §4.5.4 observes that layout
// coordinates reduce the work in exactly these KL-based refinement stages
// by providing a good starting partition — geometric bisection leaves only
// a thin boundary to fix. The assignment is modified in place; the number
// of moved vertices is returned.
func Refine(g *graph.CSR, part []int32, opt RefineOptions) int {
	opt = opt.withDefaults()
	if len(part) != g.NumV {
		panic("partition: assignment length mismatch")
	}
	numParts := int32(0)
	for _, p := range part {
		if p >= numParts {
			numParts = p + 1
		}
	}
	if numParts <= 1 {
		return 0
	}
	sizes := make([]int64, numParts)
	for _, p := range part {
		sizes[p]++
	}
	maxSize := int64(float64(g.NumV)/float64(numParts)*opt.Imbalance) + 1

	moved := 0
	conn := make([]int64, numParts) // scratch: edges from v into each part
	touched := make([]int32, 0, 16)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		passMoves := 0
		for v := int32(0); int(v) < g.NumV; v++ {
			home := part[v]
			// Count connectivity to each adjacent part.
			touched = touched[:0]
			boundary := false
			for _, u := range g.Neighbors(v) {
				p := part[u]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p]++
				if p != home {
					boundary = true
				}
			}
			if boundary {
				best := home
				bestGain := int64(0)
				for _, p := range touched {
					if p == home {
						continue
					}
					gain := conn[p] - conn[home]
					if gain > bestGain && sizes[p] < maxSize {
						bestGain, best = gain, p
					}
				}
				if best != home {
					part[v] = best
					sizes[home]--
					sizes[best]++
					moved++
					passMoves++
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if passMoves == 0 {
			break
		}
	}
	return moved
}
