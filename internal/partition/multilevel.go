package partition

import (
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/graph"
)

// MultilevelOptions configures the multilevel KL partitioner.
type MultilevelOptions struct {
	// Levels of recursive bisection: 2^Levels parts (default 3 → 8 parts).
	Levels int
	// Coarsen configures the hierarchy.
	Coarsen coarsen.Options
	// Refine configures the per-level boundary refinement.
	Refine RefineOptions
	// UseHDESeed partitions the coarsest graph geometrically from a ParHDE
	// layout instead of a random split — the §4.5.4 claim that coordinates
	// "reduce the work performed in the Kernighan-Lin based refinement
	// stages" made concrete and measurable.
	UseHDESeed bool
	// Subspace for the coarse HDE solve (default 20).
	Subspace int
	Seed     uint64
}

// MultilevelStats reports the work done per level.
type MultilevelStats struct {
	Levels []int // vertex counts, finest first
	// MovedPerLevel counts KL/FM moves during refinement at each level
	// (finest first) — the work HDE seeding is supposed to reduce.
	MovedPerLevel []int
	TotalMoved    int
}

// MultilevelPartition computes a 2^Levels-way partition of g in the
// classic multilevel style the ScalaPart lineage uses: coarsen by
// heavy-edge matching, partition the coarsest graph, then project the
// assignment back up the hierarchy with KL/FM boundary refinement at every
// level. The coarsest partition comes either from a random balanced split
// or (UseHDESeed) from recursive coordinate bisection of a ParHDE layout
// of the coarse graph.
func MultilevelPartition(g *graph.CSR, opt MultilevelOptions) ([]int32, MultilevelStats, error) {
	if opt.Levels <= 0 {
		opt.Levels = 3
	}
	if opt.Subspace <= 0 {
		opt.Subspace = 20
	}
	st := MultilevelStats{}
	h, err := coarsen.Build(g, opt.Coarsen)
	if err != nil {
		return nil, st, err
	}
	for _, lvl := range h.Levels {
		st.Levels = append(st.Levels, lvl.G.NumV)
	}

	coarsest := h.Coarsest()
	var part []int32
	if opt.UseHDESeed {
		lay, _, err := core.ParHDE(coarsest, core.Options{Subspace: opt.Subspace, Seed: opt.Seed})
		if err != nil {
			return nil, st, fmt.Errorf("partition: coarse layout: %w", err)
		}
		part, err = CoordinateBisection(lay, opt.Levels)
		if err != nil {
			return nil, st, err
		}
	} else {
		part = randomBalanced(coarsest.NumV, 1<<opt.Levels, opt.Seed)
	}

	// Refine at the coarsest level, then project fine-ward, refining at
	// each level.
	st.MovedPerLevel = make([]int, len(h.Levels))
	st.MovedPerLevel[len(h.Levels)-1] = Refine(coarsest, part, opt.Refine)
	for li := len(h.Levels) - 2; li >= 0; li-- {
		lvl := h.Levels[li]
		fine := make([]int32, lvl.G.NumV)
		for v := range fine {
			fine[v] = part[lvl.Map[v]]
		}
		part = fine
		st.MovedPerLevel[li] = Refine(lvl.G, part, opt.Refine)
	}
	// Coarse vertices stand for different numbers of fine vertices, so the
	// projected partition can drift out of balance; restore it at the
	// finest level with boundary moves, then re-refine the cut.
	imb := opt.Refine.withDefaults().Imbalance
	st.TotalMoved += rebalance(g, part, 1<<opt.Levels, imb)
	st.MovedPerLevel[0] += Refine(g, part, opt.Refine)
	for _, m := range st.MovedPerLevel {
		st.TotalMoved += m
	}
	return part, st, nil
}

// rebalance moves boundary vertices out of overweight parts (preferring
// moves that cost the cut least) until every part fits the imbalance
// budget. Returns the number of moves.
func rebalance(g *graph.CSR, part []int32, parts int, imbalance float64) int {
	limit := int64(float64(g.NumV)/float64(parts)*imbalance) + 1
	sizes := make([]int64, parts)
	for _, p := range part {
		sizes[p]++
	}
	moves := 0
	for pass := 0; pass < parts*4; pass++ {
		over := int32(-1)
		for p, s := range sizes {
			if s > limit {
				over = int32(p)
				break
			}
		}
		if over < 0 {
			break
		}
		// Move boundary vertices of the overweight part to their most
		// connected non-full neighbor part until it fits.
		for v := int32(0); int(v) < g.NumV && sizes[over] > limit; v++ {
			if part[v] != over {
				continue
			}
			best := int32(-1)
			bestConn := int64(-1)
			conn := map[int32]int64{}
			for _, u := range g.Neighbors(v) {
				if part[u] != over {
					conn[part[u]]++
				}
			}
			for p, c := range conn {
				if sizes[p] < limit && c > bestConn {
					best, bestConn = p, c
				}
			}
			if best < 0 {
				// Interior vertex or all neighbors full: allow a move to
				// the globally smallest part to guarantee progress.
				small := int32(0)
				for p := 1; p < parts; p++ {
					if sizes[p] < sizes[small] {
						small = int32(p)
					}
				}
				if sizes[small] >= limit {
					break
				}
				best = small
			}
			part[v] = best
			sizes[over]--
			sizes[best]++
			moves++
		}
	}
	return moves
}

// randomBalanced deals vertices into parts round-robin over a shuffled
// order: balanced but locality-blind, the baseline coarse seed.
func randomBalanced(n, parts int, seed uint64) []int32 {
	perm := graph.RandomPermutation(n, seed)
	part := make([]int32, n)
	for i, v := range perm {
		part[v] = int32(i % parts)
	}
	return part
}
