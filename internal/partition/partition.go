// Package partition implements the §4.5.4 extension: using ParHDE vertex
// coordinates for geometric graph partitioning (the role ScalaPart fills
// with a force-directed layout) and for visualizing partition structure by
// coloring intra- versus inter-partition edges.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// CoordinateBisection recursively partitions the vertices into 2^levels
// parts by splitting at the median along the widest coordinate axis of
// each block — classic geometric (inertial-free) recursive coordinate
// bisection driven by the layout.
func CoordinateBisection(l *core.Layout, levels int) ([]int32, error) {
	if levels < 0 || levels > 20 {
		return nil, fmt.Errorf("partition: bad level count %d", levels)
	}
	n := l.NumVertices()
	part := make([]int32, n)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	bisect(l, idx, 0, levels, part)
	return part, nil
}

func bisect(l *core.Layout, idx []int32, id int32, levels int, part []int32) {
	if levels == 0 || len(idx) <= 1 {
		for _, v := range idx {
			part[v] = id
		}
		return
	}
	// Pick the axis with the widest spread over this block.
	bestAxis, bestSpread := 0, -1.0
	for k := 0; k < l.Dims(); k++ {
		col := l.Coords.Col(k)
		lo, hi := col[idx[0]], col[idx[0]]
		for _, v := range idx {
			if col[v] < lo {
				lo = col[v]
			}
			if col[v] > hi {
				hi = col[v]
			}
		}
		if hi-lo > bestSpread {
			bestSpread, bestAxis = hi-lo, k
		}
	}
	col := l.Coords.Col(bestAxis)
	sort.Slice(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
	mid := len(idx) / 2
	bisect(l, idx[:mid], id*2, levels-1, part)
	bisect(l, idx[mid:], id*2+1, levels-1, part)
}

// CutStats summarizes a partition of g.
type CutStats struct {
	Parts     int
	CutEdges  int64   // edges with endpoints in different parts
	CutRatio  float64 // CutEdges / m
	Imbalance float64 // max part size / ideal size
}

// EvaluateCut computes cut statistics for the given assignment.
func EvaluateCut(g *graph.CSR, part []int32) CutStats {
	if len(part) != g.NumV {
		panic("partition: assignment length mismatch")
	}
	maxPart := int32(0)
	for _, p := range part {
		if p > maxPart {
			maxPart = p
		}
	}
	sizes := make([]int64, maxPart+1)
	for _, p := range part {
		sizes[p]++
	}
	var cut int64
	for v := int32(0); int(v) < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && part[u] != part[v] {
				cut++
			}
		}
	}
	st := CutStats{Parts: len(sizes), CutEdges: cut}
	if m := g.NumEdges(); m > 0 {
		st.CutRatio = float64(cut) / float64(m)
	}
	ideal := float64(g.NumV) / float64(len(sizes))
	var maxSize int64
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if ideal > 0 {
		st.Imbalance = float64(maxSize) / ideal
	}
	return st
}
