package partition

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestCoordinateBisectionBalancedParts(t *testing.T) {
	g := gen.Grid2D(32, 32)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	part, err := CoordinateBisection(lay, 2) // 4 parts
	if err != nil {
		t.Fatal(err)
	}
	st := EvaluateCut(g, part)
	if st.Parts != 4 {
		t.Fatalf("parts = %d", st.Parts)
	}
	if st.Imbalance > 1.01 {
		t.Fatalf("imbalance %.3f", st.Imbalance)
	}
	if st.CutRatio <= 0 || st.CutRatio > 0.25 {
		// A grid has a perfect 4-way cut ratio of about 2·32/1984 ≈ 3%; the
		// spectral-geometric cut should land well under 25%.
		t.Fatalf("cut ratio %.3f implausible for a grid", st.CutRatio)
	}
}

func TestGeometricBeatsRandomPartition(t *testing.T) {
	g := gen.PlateWithHoles(30, 30)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	geoPart, err := CoordinateBisection(lay, 3)
	if err != nil {
		t.Fatal(err)
	}
	rndPart, err := CoordinateBisection(core.RandomLayout(g.NumV, 2, 7), 3)
	if err != nil {
		t.Fatal(err)
	}
	geo := EvaluateCut(g, geoPart)
	rnd := EvaluateCut(g, rndPart)
	if geo.CutEdges >= rnd.CutEdges {
		t.Fatalf("geometric cut %d not below random-coordinates cut %d", geo.CutEdges, rnd.CutEdges)
	}
}

func TestBisectionLevelZero(t *testing.T) {
	coords := linalg.NewDense(5, 2)
	l := &core.Layout{Coords: coords}
	part, err := CoordinateBisection(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("level 0 should assign everything to part 0")
		}
	}
}

func TestBisectionRejectsBadLevels(t *testing.T) {
	l := &core.Layout{Coords: linalg.NewDense(5, 2)}
	if _, err := CoordinateBisection(l, -1); err == nil {
		t.Fatal("negative levels accepted")
	}
	if _, err := CoordinateBisection(l, 21); err == nil {
		t.Fatal("absurd levels accepted")
	}
}

func TestEvaluateCutPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateCut(gen.Path(4), []int32{0})
}

func TestRefineReducesCut(t *testing.T) {
	g := gen.Grid2D(30, 30)
	lay, _, err := core.ParHDE(g, core.Options{Subspace: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	part, err := CoordinateBisection(lay, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := EvaluateCut(g, part)
	moved := Refine(g, part, RefineOptions{})
	after := EvaluateCut(g, part)
	if after.CutEdges > before.CutEdges {
		t.Fatalf("refinement worsened cut: %d -> %d", before.CutEdges, after.CutEdges)
	}
	if moved > 0 && after.CutEdges == before.CutEdges {
		t.Fatalf("%d moves but cut unchanged", moved)
	}
	if after.Imbalance > 1.06 {
		t.Fatalf("refinement broke balance: %.3f", after.Imbalance)
	}
}

func TestRefineFixesBadPartition(t *testing.T) {
	// A deliberately bad partition (vertex parity) of a grid has a huge
	// cut; refinement must improve it substantially.
	g := gen.Grid2D(20, 20)
	part := make([]int32, g.NumV)
	for i := range part {
		part[i] = int32(i % 2)
	}
	before := EvaluateCut(g, part)
	Refine(g, part, RefineOptions{MaxPasses: 20})
	after := EvaluateCut(g, part)
	if after.CutEdges >= before.CutEdges/2 {
		t.Fatalf("refinement too weak: %d -> %d", before.CutEdges, after.CutEdges)
	}
}

func TestRefineSinglePartNoop(t *testing.T) {
	g := gen.Path(10)
	part := make([]int32, 10)
	if moved := Refine(g, part, RefineOptions{}); moved != 0 {
		t.Fatalf("single-part refinement moved %d", moved)
	}
}

func TestRefinePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Refine(gen.Path(4), []int32{0, 1}, RefineOptions{})
}

func TestMultilevelPartitionBothSeeds(t *testing.T) {
	g := gen.PlateWithHoles(35, 35)
	for _, hde := range []bool{false, true} {
		part, st, err := MultilevelPartition(g, MultilevelOptions{
			Levels:     2,
			UseHDESeed: hde,
			Seed:       3,
		})
		if err != nil {
			t.Fatalf("hde=%v: %v", hde, err)
		}
		if len(part) != g.NumV {
			t.Fatalf("hde=%v: partition length %d", hde, len(part))
		}
		cut := EvaluateCut(g, part)
		if cut.Parts != 4 {
			t.Fatalf("hde=%v: %d parts", hde, cut.Parts)
		}
		if cut.Imbalance > 1.15 {
			t.Fatalf("hde=%v: imbalance %.3f", hde, cut.Imbalance)
		}
		// Multilevel + KL must beat a random flat partition by a wide
		// margin on a mesh.
		if cut.CutRatio > 0.3 {
			t.Fatalf("hde=%v: cut ratio %.3f", hde, cut.CutRatio)
		}
		if st.TotalMoved == 0 || len(st.MovedPerLevel) != len(st.Levels) {
			t.Fatalf("hde=%v: stats %+v", hde, st)
		}
	}
}

func TestHDESeedReducesRefinementWork(t *testing.T) {
	// §4.5.4: coordinates reduce the work in KL-based refinement. The
	// HDE-seeded multilevel run must move substantially fewer vertices
	// than the random-seeded one, at comparable or better cut.
	g := gen.Grid2D(50, 50)
	_, stRand, err := MultilevelPartition(g, MultilevelOptions{Levels: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	partHDE, stHDE, err := MultilevelPartition(g, MultilevelOptions{Levels: 2, UseHDESeed: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stHDE.TotalMoved >= stRand.TotalMoved {
		t.Fatalf("HDE seed moved %d vertices, random seed %d — expected less work",
			stHDE.TotalMoved, stRand.TotalMoved)
	}
	cutHDE := EvaluateCut(g, partHDE)
	if cutHDE.CutRatio > 0.2 {
		t.Fatalf("HDE-seeded cut ratio %.3f", cutHDE.CutRatio)
	}
}
