// Package shard splits hdeserve into a stateless router and a fleet of
// layout workers. A consistent-hash ring over graph names decides which
// worker owns each graph (with a configurable number of replicas for
// redundancy and read fan-out), and the Router forwards the catalog,
// job, mutation, and streaming API to the owning worker while keeping a
// byte-budget LRU of hot rendered tiles that it revalidates with
// generation-keyed ETags. Workers stay plain single-process hdeserve
// servers; all fleet topology lives here.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring. Nodes are opaque strings —
// in hdeserve they are worker base URLs, which keeps ring membership
// stable across worker restarts (a worker that comes back on the same
// address owns the same arc without any remapping). Each node is placed
// at VirtualNodes points on the ring so load spreads evenly even with a
// handful of nodes.
type Ring struct {
	nodes  []string // distinct node ids, sorted
	points []ringPoint
}

// ringPoint is one virtual node: a position on the hash circle and the
// index of the owning node.
type ringPoint struct {
	hash uint64
	node int
}

// DefaultVirtualNodes is the virtual-node count used when NewRing gets
// a non-positive value. 128 keeps the max/min node-load ratio within a
// few percent for small fleets while costing <100KB of ring state.
const DefaultVirtualNodes = 128

// hash64 is FNV-64a with a 64-bit avalanche finalizer (the MurmurHash3
// fmix64 constants): stdlib-only, stable across processes and releases,
// and fast enough that routing never shows up in a profile. Raw FNV is
// not enough here — ring inputs are highly similar short strings (peer
// URLs differing in one digit, "name#0".."name#127" vnode keys,
// sequential graph names), and FNV's weak avalanche leaves their ring
// positions correlated badly enough that a 3-node fleet measured a
// 57/23/20 split. The finalizer restores a near-uniform spread.
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given nodes. Duplicate node ids are
// collapsed; virtualNodes <= 0 uses DefaultVirtualNodes. A ring over
// zero nodes is valid and routes nothing.
func NewRing(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var distinct []string
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Strings(distinct)

	r := &Ring{nodes: distinct}
	r.points = make([]ringPoint, 0, len(distinct)*virtualNodes)
	for i, node := range distinct {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", node, v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node // deterministic on (rare) collisions
	})
	return r
}

// Nodes returns the distinct node ids on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct nodes for key, clockwise from the
// key's ring position. The first entry is the primary owner; the rest
// are the natural fallbacks a router tries when the owner is down. n
// larger than the node count returns every node.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	taken := make([]bool, len(r.nodes))
	out := make([]string, 0, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(start+j)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
