package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config configures a Router. Zero values get the documented defaults.
type Config struct {
	// Peers are the worker base URLs (e.g. http://127.0.0.1:7101). They
	// are the ring's node ids, so the list must be identical (order
	// aside) on every router instance.
	Peers []string
	// Replication is how many distinct workers hold each graph (and how
	// many a read may fall back across). Default 2, clamped to the fleet
	// size.
	Replication int
	// VirtualNodes is the per-worker virtual node count on the ring.
	// Default DefaultVirtualNodes.
	VirtualNodes int
	// HealthInterval is how often each worker's /shardz is probed.
	// Default 2s.
	HealthInterval time.Duration
	// CacheBytes bounds the router's hot-tile LRU. Default 64 MiB;
	// negative disables caching entirely.
	CacheBytes int64
	// MaxUploadBytes bounds a POST /graphs body the router will buffer
	// for replication. Default 64 MiB.
	MaxUploadBytes int64
	// Metrics receives router metrics; a fresh registry is created when
	// nil. It is also served on the router's /metrics.
	Metrics *obs.Registry
	// Logger, when non-nil, receives access log lines and router events.
	Logger *log.Logger
	// Client performs forwarded requests. Default: 30s total timeout.
	// Streaming (SSE) forwards always use an untimed client regardless.
	Client *http.Client
}

// defaultGraph is the graph name the single-graph viewer endpoints
// (/, /layout.png, ...) resolve to, matching the worker's convention.
const defaultGraph = "default"

// workerHeader is the identity header every worker response carries;
// the router forwards it so clients can see which shard answered.
const workerHeader = "X-Hdeserve-Worker"

// peer is one worker as the router sees it: its fixed base URL plus the
// identity and health learned from /shardz probes.
type peer struct {
	url     string
	healthy atomic.Bool

	mu sync.Mutex
	id string // worker id from the last successful probe ("" = never seen)
}

// setID records the worker id learned from a probe.
func (p *peer) setID(id string) {
	p.mu.Lock()
	p.id = id
	p.mu.Unlock()
}

// workerID returns the last-known worker id, or "" if never probed.
func (p *peer) workerID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// Router is the stateless front end of a sharded hdeserve deployment.
// It owns no graphs and runs no layouts: every request is routed by
// consistent hash of the graph name (or by worker prefix of a job id)
// to the owning worker, with idempotent reads retried on sibling
// replicas and hot rendered tiles replicated into a local
// ETag-revalidated LRU. "Stateless" is load-bearing: a router restart
// loses only cache heat, so any number of routers can front one fleet.
type Router struct {
	cfg    Config
	ring   *Ring
	peers  map[string]*peer // by base URL
	reg    *obs.Registry
	cache  *tileLRU
	flight fetchGroup

	client       *http.Client
	streamClient *http.Client

	forwards    func(peerURL string) *obs.Counter
	forwardErrs func(peerURL string) *obs.Counter
	retries     *obs.Counter
	forwardDur  *obs.Histogram

	stop chan struct{}
	done chan struct{}
}

// NewRouter builds a router over cfg.Peers, probes every worker once
// synchronously (so routing decisions are informed from the first
// request), and starts the background health loop. Callers must Close
// it.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("shard: router needs at least one peer")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}

	rt := &Router{
		cfg:          cfg,
		ring:         NewRing(cfg.Peers, cfg.VirtualNodes),
		peers:        map[string]*peer{},
		reg:          cfg.Metrics,
		client:       cfg.Client,
		streamClient: &http.Client{}, // SSE must outlive any request timeout
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, u := range rt.ring.Nodes() {
		rt.peers[u] = &peer{url: u}
	}
	rt.cache = newTileLRU(cfg.CacheBytes,
		rt.reg.Counter("router_cache_hits_total"),
		rt.reg.Counter("router_cache_misses_total"),
		rt.reg.Counter("router_cache_evictions_total"))
	rt.reg.GaugeFunc("router_cache_bytes", func() float64 { return float64(rt.cache.Bytes()) })
	rt.forwards = func(u string) *obs.Counter {
		return rt.reg.Counter(fmt.Sprintf("router_forward_total{worker=%q}", u))
	}
	rt.forwardErrs = func(u string) *obs.Counter {
		return rt.reg.Counter(fmt.Sprintf("router_forward_errors_total{worker=%q}", u))
	}
	rt.retries = rt.reg.Counter("router_read_retries_total")
	rt.forwardDur = rt.reg.Histogram("router_forward_seconds")

	rt.probeAll()
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop. In-flight forwards are not interrupted.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.done
}

// logf writes a router event line when logging is configured.
func (rt *Router) logf(format string, args ...interface{}) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf("router: "+format, args...)
	}
}

// --- health ------------------------------------------------------------

// shardzBody is the worker /shardz response the router consumes.
type shardzBody struct {
	Worker string `json:"worker"`
	Ready  bool   `json:"ready"`
}

// healthLoop probes every peer each HealthInterval until Close.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll health-checks every peer concurrently and waits for all.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.probe(p)
		}(p)
	}
	wg.Wait()
}

// probe marks p healthy iff its /shardz answers 200 with ready=true,
// and records the worker id it reports (the id→URL map is how job-id
// prefixes route).
func (rt *Router) probe(p *peer) {
	client := &http.Client{Timeout: rt.cfg.HealthInterval}
	resp, err := client.Get(p.url + "/shardz")
	healthy := false
	if err == nil {
		var body shardzBody
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&body) == nil {
			healthy = body.Ready
			if body.Worker != "" {
				p.setID(body.Worker)
			}
		}
		resp.Body.Close()
	}
	was := p.healthy.Swap(healthy)
	if was != healthy {
		rt.logf("worker %s (%s) now healthy=%v", p.workerID(), p.url, healthy)
	}
	v := int64(0)
	if healthy {
		v = 1
	}
	rt.reg.Gauge(fmt.Sprintf("router_worker_healthy{worker=%q}", p.url)).Set(v)
}

// replicasFor returns the replica set for a graph name, healthy peers
// first so the common case never waits on a dead worker's timeout.
func (rt *Router) replicasFor(name string) []*peer {
	urls := rt.ring.Replicas(name, rt.cfg.Replication)
	out := make([]*peer, 0, len(urls))
	var down []*peer
	for _, u := range urls {
		p := rt.peers[u]
		if p.healthy.Load() {
			out = append(out, p)
		} else {
			down = append(down, p)
		}
	}
	return append(out, down...)
}

// Workers returns the last-probed worker id for each peer URL (peers
// never probed successfully map to ""). Tests and /shardz use it.
func (rt *Router) Workers() map[string]string {
	out := map[string]string{}
	for u, p := range rt.peers {
		out[u] = p.workerID()
	}
	return out
}

// --- forwarding core ---------------------------------------------------

// retryableStatus reports whether an idempotent read may be retried on
// a sibling replica after this upstream status. 429 is deliberately
// absent: admission-control rejection must reach the client untouched,
// retrying it elsewhere would defeat the worker's backpressure.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// do forwards method+pathQuery with body to a peer and returns the
// response, recording per-worker forward metrics.
func (rt *Router) do(client *http.Client, method string, p *peer, pathQuery string, hdr http.Header, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, p.url+pathQuery, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	rt.forwards(p.url).Inc()
	start := time.Now()
	resp, err := client.Do(req)
	rt.forwardDur.ObserveDuration(time.Since(start))
	if err != nil {
		rt.forwardErrs(p.url).Inc()
	}
	return resp, err
}

// passHeaders are the upstream response headers forwarded to clients.
var passHeaders = []string{"Content-Type", "ETag", workerHeader}

// copyResponse relays an upstream response (selected headers, status,
// body) to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, k := range passHeaders {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// errNoWorker is returned when every candidate replica failed.
var errNoWorker = errors.New("shard: no worker could serve the request")

// forwardRead sends an idempotent GET to the replicas in order,
// retrying across siblings on network errors and retryable 5xx; any
// other response — including 429 — is final and returned as-is.
func (rt *Router) forwardRead(pathQuery string, hdr http.Header, replicas []*peer) (*http.Response, error) {
	var lastErr error = errNoWorker
	for i, p := range replicas {
		if i > 0 {
			rt.retries.Inc()
		}
		resp, err := rt.do(rt.client, http.MethodGet, p, pathQuery, hdr, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && i < len(replicas)-1 {
			resp.Body.Close()
			lastErr = fmt.Errorf("shard: %s answered %d", p.url, resp.StatusCode)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// writeRouterErr writes the router's own JSON error envelope (same
// shape as the worker API's).
func writeRouterErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- cached reads ------------------------------------------------------

// fetched is the result of one upstream read as seen by the
// singleflight: either a cacheable 200 tile or a pass-through response.
type fetched struct {
	status int
	tile   *tile
}

// serveCachedView handles the four cacheable per-graph reads
// (layout.png, layout.svg, zoom.png, stats). Cache key is the full
// path+query; a hit is revalidated against the owner with
// If-None-Match, so a stale tile costs one conditional GET and a fresh
// one costs a 304 (no body) — this is how hot tiles are "replicated"
// into the router without the router understanding generations.
func (rt *Router) serveCachedView(name string, w http.ResponseWriter, r *http.Request) {
	key := r.URL.Path
	if r.URL.RawQuery != "" {
		key += "?" + r.URL.RawQuery
	}
	f, _, err := rt.flight.Do(key, func() (*fetched, error) {
		return rt.fetchTile(name, key)
	})
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	if f.tile == nil { // pass-through error response already consumed
		writeRouterErr(w, f.status, fmt.Errorf("worker answered %d for %s", f.status, key))
		return
	}
	t := f.tile
	w.Header().Set("ETag", t.etag)
	w.Header().Set("Content-Type", t.ctype)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, t.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(t.body)
}

// etagMatches reports whether an If-None-Match header value matches
// etag ("*" matches anything).
func etagMatches(inm, etag string) bool {
	for _, c := range strings.Split(inm, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// fetchTile resolves one cacheable read against the replica set,
// revalidating any cached copy. Non-200 finals are reported via
// fetched.status with a nil tile (and are never cached — a 404 must
// vanish the moment the graph is uploaded).
func (rt *Router) fetchTile(name, key string) (*fetched, error) {
	cached, ok := rt.cache.Get(key)
	hdr := http.Header{}
	if ok {
		hdr.Set("If-None-Match", cached.etag)
	}
	resp, err := rt.forwardRead(key, hdr, rt.replicasFor(name))
	if err != nil {
		if ok {
			// Every replica is down but we hold a copy: stale beats 502.
			rt.logf("serving stale %s: %v", key, err)
			return &fetched{status: http.StatusOK, tile: cached}, nil
		}
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return &fetched{status: http.StatusOK, tile: cached}, nil
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		t := &tile{
			etag:  resp.Header.Get("ETag"),
			ctype: resp.Header.Get("Content-Type"),
			body:  body,
		}
		if t.etag != "" && rt.cfg.CacheBytes > 0 {
			rt.cache.Put(key, t)
		}
		return &fetched{status: http.StatusOK, tile: t}, nil
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return &fetched{status: resp.StatusCode}, nil
	}
}

// --- handlers ----------------------------------------------------------

// routerRoutes bounds the access-log route label, mirroring the
// worker's routeOf.
func routerRouteOf(r *http.Request) string {
	switch r.URL.Path {
	case "/", "/layout.png", "/layout.svg", "/zoom.png", "/stats",
		"/healthz", "/shardz", "/metrics", "/graphs", "/jobs":
		return r.URL.Path
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/graphs/"):
		return "/graphs/"
	case strings.HasPrefix(r.URL.Path, "/jobs/"):
		return "/jobs/"
	}
	return "other"
}

// Handler returns the router's instrumented HTTP mux. It exposes the
// same API surface as a worker (see internal/server.RoutePatterns), so
// clients cannot tell a router from a single-process hdeserve.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardDefault(w, r)
	})
	for _, p := range []string{"/layout.png", "/layout.svg", "/zoom.png", "/stats"} {
		mux.HandleFunc("GET "+p, func(w http.ResponseWriter, r *http.Request) {
			rt.serveCachedView(defaultGraph, w, r)
		})
	}
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /shardz", rt.handleShardz)
	mux.Handle("GET /metrics", rt.reg.Handler())

	mux.HandleFunc("GET /graphs", rt.handleGraphsList)
	mux.HandleFunc("POST /graphs", rt.handleGraphUpload)
	mux.HandleFunc("DELETE /graphs/{name}", rt.handleGraphDelete)
	for _, suffix := range []string{"layout.png", "layout.svg", "zoom.png", "stats"} {
		mux.HandleFunc("GET /graphs/{name}/"+suffix, func(w http.ResponseWriter, r *http.Request) {
			rt.serveCachedView(r.PathValue("name"), w, r)
		})
	}
	mux.HandleFunc("PATCH /graphs/{name}", rt.handleGraphMutate)
	mux.HandleFunc("GET /graphs/{name}/stream", rt.handleStream)

	mux.HandleFunc("POST /jobs", rt.handleJobSubmit)
	mux.HandleFunc("GET /jobs", rt.handleJobsList)
	mux.HandleFunc("GET /jobs/{id}", rt.handleJobByID)
	mux.HandleFunc("DELETE /jobs/{id}", rt.handleJobByID)

	return obs.Middleware(rt.reg, rt.cfg.Logger, routerRouteOf, mux)
}

// forwardDefault proxies the HTML viewer page to the default graph's
// owner, uncached.
func (rt *Router) forwardDefault(w http.ResponseWriter, r *http.Request) {
	pathQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQuery += "?" + r.URL.RawQuery
	}
	resp, err := rt.forwardRead(pathQuery, nil, rt.replicasFor(defaultGraph))
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// handleHealthz answers 200 while at least one worker is healthy — the
// router itself holds no state worth reporting on.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, p := range rt.peers {
		if p.healthy.Load() {
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprintln(w, "ok")
			return
		}
	}
	writeRouterErr(w, http.StatusServiceUnavailable, errors.New("no healthy workers"))
}

// routerShardz is the router's /shardz body: the fleet as it sees it.
type routerShardz struct {
	Router bool              `json:"router"`
	Peers  []routerPeerState `json:"peers"`
}

// routerPeerState is one worker's health entry in the router's /shardz.
type routerPeerState struct {
	URL     string `json:"url"`
	Worker  string `json:"worker,omitempty"`
	Healthy bool   `json:"healthy"`
}

// handleShardz reports per-worker health and identity — the operator's
// one-stop fleet inventory.
func (rt *Router) handleShardz(w http.ResponseWriter, r *http.Request) {
	out := routerShardz{Router: true}
	for _, u := range rt.ring.Nodes() {
		p := rt.peers[u]
		out.Peers = append(out.Peers, routerPeerState{
			URL: u, Worker: p.workerID(), Healthy: p.healthy.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// --- /graphs -----------------------------------------------------------

// handleGraphsList fans out to every healthy worker and merges the
// catalogs, deduplicating replicated names. bytes is the fleet-wide
// resident total (replicas count once per copy, since each costs real
// memory on its worker).
func (rt *Router) handleGraphsList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Graphs []json.RawMessage `json:"graphs"`
		Bytes  int64             `json:"bytes"`
	}
	var (
		mu        sync.Mutex
		merged    []json.RawMessage
		seen      = map[string]bool{}
		bytesSum  int64
		reachable int
	)
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		if !p.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			resp, err := rt.do(rt.client, http.MethodGet, p, "/graphs", nil, nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var lr listResp
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&lr) != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			reachable++
			bytesSum += lr.Bytes
			for _, g := range lr.Graphs {
				var meta struct {
					Name string `json:"name"`
				}
				if json.Unmarshal(g, &meta) != nil || seen[meta.Name] {
					continue
				}
				seen[meta.Name] = true
				merged = append(merged, g)
			}
		}(p)
	}
	wg.Wait()
	if reachable == 0 {
		writeRouterErr(w, http.StatusBadGateway, errNoWorker)
		return
	}
	sort.Slice(merged, func(i, j int) bool { return string(merged[i]) < string(merged[j]) })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"graphs": merged, "bytes": bytesSum,
	})
}

// handleGraphUpload buffers the upload once and writes it to every
// replica of the name, primary first. The client sees the primary's
// response; a secondary failure is logged and counted but does not fail
// the upload (the next health-driven re-upload path is the operator
// re-POSTing, documented in OPERATIONS.md).
func (rt *Router) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeRouterErr(w, http.StatusBadRequest, errors.New("missing required query parameter: name"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeRouterErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds %d bytes", rt.cfg.MaxUploadBytes))
			return
		}
		writeRouterErr(w, http.StatusBadRequest, err)
		return
	}
	pathQuery := r.URL.Path + "?" + r.URL.RawQuery
	hdr := http.Header{"Content-Type": r.Header.Values("Content-Type")}
	replicas := rt.replicasFor(name)

	resp, err := rt.do(rt.client, http.MethodPost, replicas[0], pathQuery, hdr, body)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		for _, p := range replicas[1:] {
			if sr, err := rt.do(rt.client, http.MethodPost, p, pathQuery, hdr, body); err != nil {
				rt.logf("replicating graph %q to %s: %v", name, p.url, err)
			} else {
				if sr.StatusCode != http.StatusCreated && sr.StatusCode != http.StatusConflict {
					rt.logf("replicating graph %q to %s: status %d", name, p.url, sr.StatusCode)
				}
				_, _ = io.Copy(io.Discard, sr.Body)
				sr.Body.Close()
			}
		}
	}
	copyResponse(w, resp)
}

// handleGraphDelete deletes the graph from every replica and drops its
// tiles from the router cache. The primary's response is the client's.
func (rt *Router) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	replicas := rt.replicasFor(name)
	resp, err := rt.do(rt.client, http.MethodDelete, replicas[0], r.URL.Path, nil, nil)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	for _, p := range replicas[1:] {
		if sr, err := rt.do(rt.client, http.MethodDelete, p, r.URL.Path, nil, nil); err != nil {
			rt.logf("deleting graph %q on %s: %v", name, p.url, err)
		} else {
			_, _ = io.Copy(io.Discard, sr.Body)
			sr.Body.Close()
		}
	}
	rt.cache.DropPrefix("/graphs/" + name + "/")
	copyResponse(w, resp)
}

// handleGraphMutate forwards a PATCH to the primary only: mutations are
// not idempotent, so there is no retry and no secondary write — a
// replica's copy goes stale until the operator re-uploads or the
// primary's stream is re-consumed (see OPERATIONS.md).
func (rt *Router) handleGraphMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxUploadBytes))
	if err != nil {
		writeRouterErr(w, http.StatusBadRequest, err)
		return
	}
	pathQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQuery += "?" + r.URL.RawQuery
	}
	hdr := http.Header{"Content-Type": r.Header.Values("Content-Type")}
	resp, err := rt.do(rt.client, http.MethodPatch, rt.replicasFor(name)[0], pathQuery, hdr, body)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	rt.cache.DropPrefix("/graphs/" + name + "/")
	copyResponse(w, resp)
}

// handleStream proxies the SSE layout stream from the graph's primary,
// flushing every chunk so deltas reach the client as they happen. The
// proxy uses an untimed client: a stream is expected to stay open for
// the whole editing session.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	pathQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQuery += "?" + r.URL.RawQuery
	}
	p := rt.replicasFor(name)[0]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.url+pathQuery, nil)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	rt.forwards(p.url).Inc()
	resp, err := rt.streamClient.Do(req)
	if err != nil {
		rt.forwardErrs(p.url).Inc()
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Cache-Control", "Connection", workerHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// --- /jobs -------------------------------------------------------------

// handleJobSubmit peeks the job body's graph name, forwards the
// submission to the graph's primary, and — when the primary accepted —
// re-submits best-effort to the other replicas so their copies get
// layouts too (that is what makes replica reads useful). The client
// sees only the primary's response; a 429 from it is backpressure and
// passes through verbatim, never retried elsewhere.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeRouterErr(w, http.StatusBadRequest, err)
		return
	}
	var peek struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeRouterErr(w, http.StatusBadRequest, fmt.Errorf("malformed job request: %w", err))
		return
	}
	if peek.Graph == "" {
		writeRouterErr(w, http.StatusBadRequest, errors.New("missing required field: graph"))
		return
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	replicas := rt.replicasFor(peek.Graph)
	resp, err := rt.do(rt.client, http.MethodPost, replicas[0], "/jobs", hdr, body)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		for _, p := range replicas[1:] {
			if sr, err := rt.do(rt.client, http.MethodPost, p, "/jobs", hdr, body); err != nil {
				rt.logf("replicating job for %q to %s: %v", peek.Graph, p.url, err)
			} else {
				_, _ = io.Copy(io.Discard, sr.Body)
				sr.Body.Close()
			}
		}
	}
	copyResponse(w, resp)
}

// handleJobsList fans out to every healthy worker and concatenates the
// job lists, sorted by id. Replicated submissions appear once per
// worker that ran them — distinct ids, distinct work.
func (rt *Router) handleJobsList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	var (
		mu        sync.Mutex
		merged    []json.RawMessage
		reachable int
	)
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		if !p.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			resp, err := rt.do(rt.client, http.MethodGet, p, "/jobs", nil, nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var lr listResp
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&lr) != nil {
				return
			}
			mu.Lock()
			reachable++
			merged = append(merged, lr.Jobs...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if reachable == 0 {
		writeRouterErr(w, http.StatusBadGateway, errNoWorker)
		return
	}
	sort.Slice(merged, func(i, j int) bool { return string(merged[i]) < string(merged[j]) })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{"jobs": merged})
}

// peerForJobID resolves a job id to the worker that issued it via the
// id's worker prefix ("w1-j000042" came from worker "w1"). Nil when the
// prefix is absent or names no known worker — then the caller fans out.
func (rt *Router) peerForJobID(id string) *peer {
	i := strings.IndexByte(id, '-')
	if i <= 0 {
		return nil
	}
	prefix := id[:i]
	for _, p := range rt.peers {
		if p.workerID() == prefix {
			return p
		}
	}
	return nil
}

// handleJobByID routes GET/DELETE /jobs/{id} by worker prefix; ids
// without a resolvable prefix are tried on every healthy worker and the
// first non-404 answer wins.
func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if p := rt.peerForJobID(id); p != nil {
		resp, err := rt.do(rt.client, r.Method, p, r.URL.Path, nil, nil)
		if err != nil {
			writeRouterErr(w, http.StatusBadGateway, err)
			return
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	for _, u := range rt.ring.Nodes() {
		p := rt.peers[u]
		if !p.healthy.Load() {
			continue
		}
		resp, err := rt.do(rt.client, r.Method, p, r.URL.Path, nil, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	writeRouterErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}
