package shard

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// tile is one cached render (or stats body) as served by a worker: the
// payload plus the headers the router needs to revalidate and re-serve
// it. The ETag is the worker's generation-keyed cache key, so the
// router never has to understand generations — a conditional GET
// answering 304 proves the bytes are still current.
type tile struct {
	etag  string
	ctype string
	body  []byte
}

// weight is the tile's charge against the cache byte budget.
func (t *tile) weight() int64 {
	return int64(len(t.body) + len(t.etag) + len(t.ctype))
}

// tileLRU is the router's byte-budget LRU of hot tiles, the sharded
// sibling of the worker's render cache (internal/server cache.go): a
// crawler walking the zoom key space must evict old tiles, not OOM the
// router. maxBytes <= 0 disables the bound. Tiles are immutable after
// Put.
type tileLRU struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions *obs.Counter
}

// tileEntry is the list payload: key plus the cached tile.
type tileEntry struct {
	key string
	t   *tile
}

// newTileLRU returns a cache with the given byte budget; the counters
// must be non-nil.
func newTileLRU(maxBytes int64, hits, misses, evictions *obs.Counter) *tileLRU {
	return &tileLRU{
		max:       maxBytes,
		ll:        list.New(),
		items:     map[string]*list.Element{},
		hits:      hits,
		misses:    misses,
		evictions: evictions,
	}
}

// Get returns the cached tile for key and marks it most-recently-used.
func (c *tileLRU) Get(key string) (*tile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits.Inc()
	return e.Value.(*tileEntry).t, true
}

// Put inserts or replaces key and evicts LRU entries until the cache
// fits the budget. A tile larger than the whole budget is not cached.
func (c *tileLRU) Put(key string, t *tile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && t.weight() > c.max {
		if e, ok := c.items[key]; ok {
			c.remove(e)
		}
		return
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*tileEntry)
		c.size += t.weight() - ent.t.weight()
		ent.t = t
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&tileEntry{key: key, t: t})
		c.size += t.weight()
	}
	for c.max > 0 && c.size > c.max {
		back := c.ll.Back()
		if back == nil || back.Value.(*tileEntry).key == key {
			break // never evict the entry just inserted
		}
		c.remove(back)
		c.evictions.Inc()
	}
}

// Drop removes key if present (used when a graph is deleted so stale
// tiles cannot outlive their graph on the router).
func (c *tileLRU) Drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.remove(e)
	}
}

// DropPrefix removes every tile whose key starts with prefix. Graph
// deletion uses it: all of a graph's tiles share the /graphs/{name}/
// key prefix.
func (c *tileLRU) DropPrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for key, e := range c.items {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			doomed = append(doomed, e)
		}
	}
	for _, e := range doomed {
		c.remove(e)
	}
}

// remove deletes e from the cache. Caller holds c.mu.
func (c *tileLRU) remove(e *list.Element) {
	ent := e.Value.(*tileEntry)
	c.ll.Remove(e)
	delete(c.items, ent.key)
	c.size -= ent.t.weight()
}

// Bytes returns the cached payload size.
func (c *tileLRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Len returns the number of cached tiles.
func (c *tileLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// fetchGroup deduplicates concurrent upstream fetches by key (the
// router-side singleflight, mirroring internal/server flight.go): while
// a fetch for a tile is in flight, later requests for the same tile
// share its result instead of hitting the worker again.
type fetchGroup struct {
	mu sync.Mutex
	m  map[string]*fetchCall
}

// fetchCall is one in-flight fetch and its eventual result.
type fetchCall struct {
	done chan struct{}
	val  *fetched
	err  error
}

// Do runs fn once per key among concurrent callers; every caller gets
// the same result. shared reports whether this caller joined an
// existing flight.
func (g *fetchGroup) Do(key string, fn func() (*fetched, error)) (val *fetched, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*fetchCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &fetchCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
