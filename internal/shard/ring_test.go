package shard

import (
	"fmt"
	"testing"
)

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("graph-%d", i))]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / keys
		// Perfect balance is 0.25; 128 vnodes should keep every node
		// within a generous 2x band.
		if frac < 0.125 || frac > 0.5 {
			t.Errorf("node %s owns %.1f%% of keys", n, 100*frac)
		}
	}
}

func TestRingStabilityUnderNodeLoss(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	full := NewRing(nodes, 0)
	without := NewRing(nodes[:3], 0) // d removed

	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("graph-%d", i)
		was, now := full.Owner(key), without.Owner(key)
		if was == "http://d:1" {
			continue // had to move
		}
		if was == now {
			kept++
		} else {
			moved++
		}
	}
	// Consistent hashing's whole point: keys not owned by the lost node
	// keep their owner.
	if moved != 0 {
		t.Errorf("%d keys moved that were not on the removed node (%d stayed)", moved, kept)
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		reps := r.Replicas(key, 2)
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("Replicas(%q, 2) = %v", key, reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("Replicas[0] %q != Owner %q", reps[0], r.Owner(key))
		}
		// Asking for more replicas than nodes returns every node once.
		if all := r.Replicas(key, 99); len(all) != 3 {
			t.Fatalf("Replicas(%q, 99) = %v", key, all)
		}
	}
}

func TestRingDegenerateCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Owner("x") != "" || empty.Replicas("x", 2) != nil {
		t.Fatal("empty ring must route nothing")
	}
	dup := NewRing([]string{"http://a:1", "http://a:1", ""}, 16)
	if got := dup.Nodes(); len(got) != 1 || got[0] != "http://a:1" {
		t.Fatalf("Nodes() = %v; duplicates and blanks must collapse", got)
	}
	if dup.Owner("anything") != "http://a:1" {
		t.Fatal("single-node ring must own everything")
	}
}
