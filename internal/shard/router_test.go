package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// newWorker boots a real hdeserve worker with the given id and returns
// its server and test listener.
func newWorker(t *testing.T, id string) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.NewWithConfig(gen.Grid2D(12, 12),
		core.Options{Subspace: 8, Seed: 1},
		server.Config{WorkerID: id, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// newRouter builds a router over the peers with health probing done
// once (the synchronous startup round) and a long re-probe interval so
// tests control timing.
func newRouter(t *testing.T, replication int, peers ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(Config{
		Peers:          peers,
		Replication:    replication,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

// metricValue scrapes url+/metrics and returns the value of the first
// series whose name starts with prefix (0 when absent).
func metricValue(t *testing.T, url, prefix string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			var v float64
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				fmt.Sscanf(line[i+1:], "%g", &v)
				return v
			}
		}
	}
	return 0
}

// uploadVia POSTs a small grid through the router under name.
func uploadVia(t *testing.T, routerURL, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, gen.Grid2D(8, 8)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/graphs?name="+name+"&format=edges", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", name, resp.StatusCode)
	}
}

// TestRouterShardsGraphsAcrossWorkers is the tentpole's core contract:
// uploads land on the ring owner, jobs run there (visible in the id
// prefix), reads route back, and the merged catalog spans the fleet.
func TestRouterShardsGraphsAcrossWorkers(t *testing.T) {
	s1, w1 := newWorker(t, "w1")
	s2, w2 := newWorker(t, "w2")
	rt, rts := newRouter(t, 1, w1.URL, w2.URL)

	if got := rt.Workers(); got[w1.URL] != "w1" || got[w2.URL] != "w2" {
		t.Fatalf("probe did not learn worker ids: %v", got)
	}

	// Pick six names the ring splits across both workers (ports are
	// random, so fixed names could all land on one side).
	ring := NewRing([]string{w1.URL, w2.URL}, 0)
	var names []string
	next := 0
	for _, owner := range []string{w1.URL, w1.URL, w1.URL, w2.URL, w2.URL, w2.URL} {
		for ; ; next++ {
			n := fmt.Sprintf("g%d", next)
			if ring.Owner(n) == owner {
				names = append(names, n)
				next++
				break
			}
		}
	}
	for _, n := range names {
		uploadVia(t, rts.URL, n)
	}
	// Placement matches the ring: with replication 1 each graph lives on
	// exactly its owner.
	workerOf := map[string]*server.Server{w1.URL: s1, w2.URL: s2}
	placed := map[string]int{}
	for _, n := range names {
		owner := ring.Owner(n)
		placed[owner]++
		if _, ok := workerOf[owner].Catalog().Get(n); !ok {
			t.Fatalf("graph %q missing on its owner %s", n, owner)
		}
		for u, s := range workerOf {
			if u == owner {
				continue
			}
			if _, ok := s.Catalog().Get(n); ok {
				t.Fatalf("graph %q leaked onto non-owner %s", n, u)
			}
		}
	}
	if placed[w1.URL] == 0 || placed[w2.URL] == 0 {
		t.Fatalf("six graphs all hashed to one worker: %v", placed)
	}

	// The merged catalog spans both workers, deduplicating "default".
	resp, err := http.Get(rts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Graphs) != len(names)+1 { // six uploads + one "default"
		t.Fatalf("merged catalog has %d entries, want %d", len(list.Graphs), len(names)+1)
	}

	// A job for g0 runs on g0's owner — the id carries its prefix — and
	// GET /jobs/{id} routes back there.
	body := fmt.Sprintf(`{"graph":%q,"subspace":8,"seed":1}`, names[0])
	resp, err = http.Post(rts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantPrefix := rt.Workers()[ring.Owner(names[0])] + "-"
	if !strings.HasPrefix(st.ID, wantPrefix) {
		t.Fatalf("job id %q does not carry owner prefix %q", st.ID, wantPrefix)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r2, err := http.Get(rts.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("job get status %d", r2.StatusCode)
		}
		if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}

	// Reads route to the owner; the second hit revalidates the cached
	// tile (one 304 round trip, zero body bytes moved).
	for i := 0; i < 2; i++ {
		r3, err := http.Get(rts.URL + "/graphs/" + names[0] + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		if r3.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d (read %d)", r3.StatusCode, i)
		}
		r3.Body.Close()
	}
	if hits := metricValue(t, rts.URL, "router_cache_hits_total"); hits < 1 {
		t.Fatalf("router_cache_hits_total = %g after repeat read", hits)
	}

	// Unknown graphs pass the worker's 404 through.
	r4, err := http.Get(rts.URL + "/graphs/nope/stats")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph status %d, want 404", r4.StatusCode)
	}

	// DELETE reaches the owner and empties its catalog slot.
	req, _ := http.NewRequest(http.MethodDelete, rts.URL+"/graphs/"+names[0], nil)
	r5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", r5.StatusCode)
	}
	if _, ok := workerOf[ring.Owner(names[0])].Catalog().Get(names[0]); ok {
		t.Fatalf("%s still on its owner after DELETE via router", names[0])
	}
}

// fakeWorker is a scriptable worker: always ready on /shardz, with a
// caller-supplied handler for everything else.
func fakeWorker(t *testing.T, id string, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /shardz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"worker":%q,"ready":true}`, id)
	})
	if h != nil {
		mux.HandleFunc("/", h)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// nameOwnedBy finds a graph name whose ring owner is the given peer.
func nameOwnedBy(t *testing.T, ring *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("k%d", i)
		if ring.Owner(name) == owner {
			return name
		}
	}
	t.Fatal("no key hashed to owner")
	return ""
}

// TestRouterBackpressurePassThrough: a worker's 429 is the admission
// controller speaking; the router must relay it verbatim and never
// retry it on a sibling.
func TestRouterBackpressurePassThrough(t *testing.T) {
	var submitsA, submitsB int
	wa := fakeWorker(t, "wa", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
			submitsA++
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full"}`)
		}
	})
	wb := fakeWorker(t, "wb", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
			submitsB++
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"wb-j000001","state":"queued"}`)
		}
	})
	_, rts := newRouter(t, 1, wa.URL, wb.URL)

	name := nameOwnedBy(t, NewRing([]string{wa.URL, wb.URL}, 0), wa.URL)
	body := fmt.Sprintf(`{"graph":%q,"subspace":8}`, name)
	resp, err := http.Post(rts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 passed through", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error != "job queue full" {
		t.Fatalf("429 body not relayed verbatim: %q %v", e.Error, err)
	}
	if submitsA != 1 || submitsB != 0 {
		t.Fatalf("submits A=%d B=%d; 429 must not be retried elsewhere", submitsA, submitsB)
	}
}

// TestRouterReplicaFallbackRead: when a graph's owner is down or
// erroring, an idempotent read lands on the next replica instead of
// failing, and the retry is counted.
func TestRouterReplicaFallbackRead(t *testing.T) {
	wa := fakeWorker(t, "wa", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	wb := fakeWorker(t, "wb", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", `"g:x:1:1:stats"`)
		fmt.Fprint(w, `{"ok":true}`)
	})
	_, rts := newRouter(t, 2, wa.URL, wb.URL)

	name := nameOwnedBy(t, NewRing([]string{wa.URL, wb.URL}, 0), wa.URL)
	resp, err := http.Get(rts.URL + "/graphs/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; want 200 from the replica", resp.StatusCode)
	}
	if retries := metricValue(t, rts.URL, "router_read_retries_total"); retries < 1 {
		t.Fatalf("router_read_retries_total = %g, want >= 1", retries)
	}

	// Same story when the owner is flat-out dead (connection refused).
	wa.Close()
	resp2, err := http.Get(rts.URL + "/graphs/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d with owner dead; want 200 from the replica", resp2.StatusCode)
	}
}

// TestRouterSSEPassThrough: the event stream proxies through with
// frames intact.
func TestRouterSSEPassThrough(t *testing.T) {
	wa := fakeWorker(t, "wa", func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/stream") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: snapshot\ndata: {\"gen\":1}\n\n")
		fmt.Fprint(w, "event: delta\ndata: {\"gen\":2}\n\n")
	})
	_, rts := newRouter(t, 1, wa.URL)

	resp, err := http.Get(rts.URL + "/graphs/any/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events []string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			events = append(events, strings.TrimPrefix(sc.Text(), "event: "))
		}
	}
	if len(events) != 2 || events[0] != "snapshot" || events[1] != "delta" {
		t.Fatalf("events = %v", events)
	}
}

// TestRouterJobIDFanout: a job id whose prefix names no known worker is
// hunted across the fleet; the first non-404 wins.
func TestRouterJobIDFanout(t *testing.T) {
	wa := fakeWorker(t, "wa", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	wb := fakeWorker(t, "wb", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/old-j000007" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"old-j000007","state":"done"}`)
	})
	_, rts := newRouter(t, 1, wa.URL, wb.URL)

	resp, err := http.Get(rts.URL + "/jobs/old-j000007")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanout status %d", resp.StatusCode)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.ID != "old-j000007" {
		t.Fatalf("fanout body: %v %v", st, err)
	}

	// A truly unknown id 404s with the router's own envelope.
	resp2, err := http.Get(rts.URL + "/jobs/zz-j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d", resp2.StatusCode)
	}
}

// TestRouterHealthz: up while any worker lives, 503 once none do.
func TestRouterHealthz(t *testing.T) {
	wa := fakeWorker(t, "wa", nil)
	rt, rts := newRouter(t, 1, wa.URL)

	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d with live worker", resp.StatusCode)
	}

	wa.Close()
	rt.probeAll()
	resp2, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with fleet down, want 503", resp2.StatusCode)
	}
}
