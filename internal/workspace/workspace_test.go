package workspace

import (
	"testing"
)

func TestReshapeGrowsAndRetains(t *testing.T) {
	ws := New()
	ws.Reshape(100, 4, 2)
	if len(ws.Col) != 100 || ws.B.Rows != 100 || ws.B.Cols != 4 {
		t.Fatalf("after Reshape(100,4,2): col %d, B %dx%d", len(ws.Col), ws.B.Rows, ws.B.Cols)
	}
	if got := len(ws.Coords); got != 200 {
		t.Fatalf("coords len %d, want 200", got)
	}
	// Growing reallocates; shrinking must reslice the same backing array.
	ws.Reshape(500, 8, 2)
	big := &ws.Col[0]
	ws.Reshape(50, 2, 2)
	if len(ws.Col) != 50 {
		t.Fatalf("col len %d after shrink", len(ws.Col))
	}
	if &ws.Col[0] != big {
		t.Fatal("shrinking Reshape reallocated instead of reslicing")
	}
}

func TestDistViewAliasesB(t *testing.T) {
	ws := New()
	ws.Reshape(10, 3, 2)
	v := ws.DistView(10, 3)
	v.Col(2)[9] = 42
	if ws.B.At(9, 2) != 42 {
		t.Fatal("DistView does not alias the workspace distance matrix")
	}
}

func TestPoolRecyclesByShape(t *testing.T) {
	p := NewPool()
	ws := p.Get(100, 200, 4, 2)
	if len(ws.Col) != 100 {
		t.Fatalf("pooled workspace not reshaped: col len %d", len(ws.Col))
	}
	ws.Col[0] = 7 // dirty it
	ws.Release()
	again := p.Get(100, 200, 4, 2)
	// sync.Pool gives no guarantee, but single-goroutine get-put-get on
	// one bucket recycles in practice; either way the shape must hold.
	if len(again.Col) != 100 || again.B.Cols != 4 {
		t.Fatalf("recycled workspace misshapen: col %d, B cols %d", len(again.Col), again.B.Cols)
	}
	other := p.Get(100, 300, 4, 2) // different m: distinct bucket
	if other == again {
		t.Fatal("workspaces with different shapes shared one pool bucket")
	}
	again.Release()
	other.Release()
}

func TestReleaseWithoutPoolIsNoop(t *testing.T) {
	ws := New()
	ws.Reshape(10, 2, 2)
	ws.Release() // must not panic
}
