// Package workspace provides pooled, size-checked scratch memory for the
// layout pipeline's hot path. A steady-state ParHDE run touches four
// large buffer families — the BFS frontier/queue scratch and hop vectors,
// the column-major distance matrix B, the DOrtho kept-column arena behind
// S, and the TripleProd product P with its row-major repack panels — and
// without reuse every queued layout job re-pays those O(n·s) allocations
// and the GC traffic they induce, exactly the unbatched memory waste
// BatchLayout attributes to shared-memory layout codes. A Workspace owns
// one instance of every buffer; a Pool is a sync.Pool-backed arena of
// Workspaces keyed by graph shape (n, m, s) so concurrent users exchange
// correctly sized scratch without cross-shape churn.
//
// Ownership contract: a Workspace serves one layout run at a time. The
// run's outputs that alias workspace storage (the layout coordinates and
// the orthogonalization result) are valid only until the workspace's next
// run; callers that retain results across runs must deep-copy them first
// (core.Layout.Clone). Results computed through a workspace are
// bit-identical to a fresh-allocation run with the same options, for any
// worker budget: every reduction arena here is sized by the fixed
// problem-shape tiling (linalg.ReduceBlocks), never by the worker count,
// so a GOMAXPROCS change between or during runs cannot leave an arena
// short or change any sum's combine order.
package workspace

import (
	"sync"

	"repro/internal/linalg"
	"repro/internal/ortho"
	"repro/internal/pivot"
)

// Workspace holds every reusable scratch buffer of one ParHDE run. The
// zero value from New is empty; Reshape sizes it for a (n, s) problem and
// is idempotent for a same-shaped sequence of runs, so a job-engine
// worker that owns one Workspace and reshapes it per job allocates only
// when the graph shape actually changes.
type Workspace struct {
	n, s int

	// Pivot is the BFS-phase scratch: traversal frontiers/queues plus the
	// per-pivot hop vector and the k-centers min-distance vector.
	Pivot *pivot.Scratch
	// Col is the widened float64 hop column of the coupled BFS+DOrtho loop.
	Col []float64
	// Deg caches the weighted-degree vector diag(D) between runs.
	Deg []float64
	// B backs the n×s distance matrix of the decoupled path.
	B *linalg.Dense
	// Ortho is the DOrtho kept-column arena, work vector, and the
	// reduction-partials buffer reused across every MGS inner product.
	Ortho *ortho.Scratch
	// SRM and PRM are the n·s row-major repack panels of the blocked
	// TripleProd kernel (one edge-list pass advances all s columns).
	SRM, PRM []float64
	// P backs the n×s TripleProd product L·S.
	P []float64
	// Z backs the s×s projected matrix Sᵀ(LS).
	Z []float64
	// GemmPartials is the per-tile panel arena of the deterministic AᵀB
	// reduction, sized by linalg.ReduceBlocks(n) — a function of n only,
	// so no worker-count change can desynchronize it from the kernel's
	// tile grid.
	GemmPartials []float64
	// Pack is the per-worker packed-chunk arena of the cache-resident
	// dense kernels (packed AᵀB and the fused TripleProd unpack). The
	// kernels size it themselves from the worker count they snapshot at
	// entry, so it carries across budget changes; it only grows.
	Pack *linalg.PackArena
	// Coords backs the n×p output layout. The Layout returned from a
	// workspace-backed run aliases it; Clone before the next run if
	// retained.
	Coords []float64
	// Warm is the n×p ping-pong buffer of the warm-start refinement
	// sweeps (each sweep reads one coordinate buffer and writes the
	// other; Coords always holds the final result).
	Warm []float64

	pool *Pool
	key  Shape
}

// New returns an empty workspace; the first Reshape sizes it.
func New() *Workspace {
	return &Workspace{}
}

// Reshape grows the workspace to serve an n-vertex, s-pivot, p-dimension
// run. Buffers already large enough are kept as-is (capacity is never
// shed), so reshaping between same-shaped jobs performs no allocations.
func (ws *Workspace) Reshape(n, s, p int) {
	if ws.Pivot == nil {
		ws.Pivot = pivot.NewScratch(n)
	} else {
		ws.Pivot.Ensure(n)
	}
	ws.Col = growFloat(ws.Col, n)
	if ws.B == nil || ws.B.Rows != n || ws.B.Cols < s {
		ws.B = linalg.NewDense(n, s)
	}
	if ws.Ortho == nil {
		ws.Ortho = ortho.NewScratch(n, s)
	} else {
		ws.Ortho.Ensure(n, s)
	}
	ws.SRM = growFloat(ws.SRM, n*s)
	ws.PRM = growFloat(ws.PRM, n*s)
	ws.P = growFloat(ws.P, n*s)
	ws.Z = growFloat(ws.Z, s*s)
	ws.GemmPartials = growFloat(ws.GemmPartials, linalg.ReduceBlocks(n)*s*s)
	if ws.Pack == nil {
		ws.Pack = &linalg.PackArena{}
	}
	ws.Coords = growFloat(ws.Coords, n*p)
	ws.Warm = growFloat(ws.Warm, n*p)
	ws.n, ws.s = n, s
}

// DistView returns the n×cols distance-matrix view over B's storage.
func (ws *Workspace) DistView(n, cols int) *linalg.Dense {
	return linalg.ViewDense(ws.B.Data, n, cols)
}

// Release returns the workspace to the pool it was acquired from (no-op
// for workspaces made with New). The caller must not use it afterwards.
func (ws *Workspace) Release() {
	if ws.pool != nil {
		ws.pool.put(ws)
	}
}

// growFloat returns buf resliced to n elements, reallocating only when
// capacity is short.
func growFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Shape keys a pool bucket: vertex count, edge count, and subspace
// dimension. No current buffer scales with m, but it participates in the
// key so kernels that later add edge-sized scratch cannot silently share
// misshapen arenas across graphs with equal n.
type Shape struct {
	N int   // vertex count
	M int64 // undirected edge count
	S int   // subspace dimension
}

// Pool is a sync.Pool-backed arena of Workspaces bucketed by Shape.
// Get/put pairs on the same shape recycle fully warmed workspaces across
// goroutines; idle buckets drain under GC pressure like any sync.Pool, so
// a burst of odd-shaped jobs cannot pin memory forever.
type Pool struct {
	mu      sync.Mutex
	buckets map[Shape]*sync.Pool
}

// NewPool returns an empty workspace pool.
func NewPool() *Pool {
	return &Pool{buckets: map[Shape]*sync.Pool{}}
}

// Default is the process-wide workspace pool.
var Default = NewPool()

// Get returns a workspace shaped for an n-vertex, m-edge, s-pivot,
// p-dimension run: a recycled same-shape workspace when one is pooled, a
// freshly sized one otherwise. Pair with Release.
func (p *Pool) Get(n int, m int64, s, dims int) *Workspace {
	key := Shape{N: n, M: m, S: s}
	p.mu.Lock()
	b, ok := p.buckets[key]
	if !ok {
		b = &sync.Pool{}
		p.buckets[key] = b
	}
	p.mu.Unlock()
	ws, _ := b.Get().(*Workspace)
	if ws == nil {
		ws = New()
	}
	ws.pool, ws.key = p, key
	ws.Reshape(n, s, dims)
	return ws
}

func (p *Pool) put(ws *Workspace) {
	p.mu.Lock()
	b, ok := p.buckets[ws.key]
	p.mu.Unlock()
	if ok {
		b.Put(ws)
	}
}
