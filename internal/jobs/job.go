package jobs

import (
	"context"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/pipeline"
)

// State is a job's position in its lifecycle. Transitions only move
// forward: Queued → Running → one of the terminal states, or Queued →
// Cancelled directly when a job is cancelled before a worker picks it up.
type State int

const (
	// StateQueued means the job waits in the queue for a worker.
	StateQueued State = iota
	// StateRunning means a worker is computing the layout now.
	StateRunning
	// StateDone means the job finished and its result is available.
	StateDone
	// StateFailed means the pipeline returned an error (kept in Status).
	StateFailed
	// StateCancelled means the job was cancelled before or during a run.
	StateCancelled
)

// String spells the state the way the HTTP API reports it.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// terminal reports whether no further transition is allowed.
func (s State) terminal() bool { return s >= StateDone }

// PhaseSeconds is one per-phase timing entry of a finished job's report.
type PhaseSeconds struct {
	Name    string  `json:"name"`    // phase id, e.g. "bfs_traversal"
	Seconds float64 `json:"seconds"` // cumulative wall time in seconds
}

// Status is a point-in-time snapshot of a job, shaped for JSON.
type Status struct {
	ID        string `json:"id"`        // engine-assigned job id
	Graph     string `json:"graph"`     // catalog name of the input graph
	Algorithm string `json:"algorithm"` // pipeline algorithm name
	State     string `json:"state"`     // State.String() of the snapshot
	// Phase is the engine phase currently executing (running jobs only).
	Phase string `json:"phase,omitempty"`
	// Error carries the failure message of a StateFailed job.
	Error string `json:"error,omitempty"`
	// Created, Started, and Finished are the lifecycle timestamps;
	// Started and Finished are nil until the transition happens.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`  // nil while queued
	Finished *time.Time `json:"finished,omitempty"` // nil until terminal
	// ElapsedSeconds is run time so far (running) or total (terminal).
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// Phases is the core.Breakdown per-phase split, present once done.
	Phases []PhaseSeconds `json:"phases,omitempty"`
}

// Job is one queued/running/finished layout request. All mutable fields
// are guarded by mu; Status() takes consistent snapshots for the API.
type Job struct {
	id    string
	graph string // catalog name, for display
	g     *graph.CSR
	cfg   pipeline.Config
	spec  []byte // re-parseable request body journaled as the intent record

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	phase    string
	err      error
	result   *pipeline.Result
	created  time.Time
	started  time.Time
	finished time.Time
	// userCancel marks an explicit Cancel call (as opposed to the engine
	// shutting down); only user-cancelled jobs retire their intent record.
	userCancel bool
}

// hasSpec reports whether the job carries a journaled request spec (and
// therefore may own an intent record on disk).
func (j *Job) hasSpec() bool { return j.spec != nil }

// ID returns the job's engine-assigned identifier.
func (j *Job) ID() string { return j.id }

// Graph returns the catalog name the job was submitted against.
func (j *Job) Graph() string { return j.graph }

// Input returns the graph the job operates on (resolved at submit time,
// so catalog eviction cannot invalidate it).
func (j *Job) Input() *graph.CSR { return j.g }

// Config returns the pipeline configuration the job runs.
func (j *Job) Config() pipeline.Config { return j.cfg }

// Result returns the pipeline result, or nil unless the job is done.
func (j *Job) Result() *pipeline.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setPhase records the engine phase currently executing (the
// core.WithPhaseNotify observer).
func (j *Job) setPhase(phase string) {
	j.mu.Lock()
	j.phase = phase
	j.mu.Unlock()
}

// begin moves the job to Running. It returns false if the job reached a
// terminal state first (cancelled while queued).
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state; later calls are no-ops so a
// racing Cancel cannot overwrite a completed result.
func (j *Job) finish(s State, res *pipeline.Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = s
	j.result = res
	j.err = err
	j.phase = ""
	j.finished = time.Now()
	return true
}

// cancelQueued finishes the job as Cancelled only if it is still waiting
// for a worker; running and finished jobs are left untouched.
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.err = context.Canceled
	j.finished = time.Now()
	return true
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Graph:     j.graph,
		Algorithm: j.cfg.Algorithm.String(),
		State:     j.state.String(),
		Phase:     j.phase,
		Created:   j.created,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
		switch {
		case !j.finished.IsZero():
			st.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
		default:
			st.ElapsedSeconds = time.Since(j.started).Seconds()
		}
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.result != nil && j.result.Report != nil {
		for _, p := range j.result.Report.Breakdown.Phases() {
			st.Phases = append(st.Phases, PhaseSeconds{Name: p.Name, Seconds: p.D.Seconds()})
		}
	}
	return st
}
