package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(-1)
	if err := c.Add("grid", gen.Grid2D(12, 12), "test"); err != nil {
		t.Fatal(err)
	}
	return c
}

// blockingRun returns a run hook that blocks until its context is
// cancelled or release is closed, plus the release func.
func blockingRun() (runFunc, chan struct{}) {
	release := make(chan struct{})
	return func(ctx context.Context, g *graph.CSR, cfg pipeline.Config) (*pipeline.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &pipeline.Result{}, nil
		}
	}, release
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %v, want %v", j.ID(), j.State(), want)
}

func TestSubmitRunsRealPipeline(t *testing.T) {
	e := New(testCatalog(t), Config{Workers: 2})
	defer e.Close()
	j, err := e.Submit("grid", pipeline.Config{Layout: core.Options{Subspace: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	res := j.Result()
	if res == nil || res.Layout == nil || res.Layout.NumVertices() != 144 {
		t.Fatalf("result = %+v", res)
	}
	st := j.Status()
	if st.State != "done" || st.Graph != "grid" || st.Algorithm != "parhde" {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Phases) == 0 {
		t.Fatal("status has no per-phase breakdown")
	}
	var total float64
	for _, p := range st.Phases {
		if p.Name == "total" {
			total = p.Seconds
		}
	}
	if total <= 0 {
		t.Fatalf("phases missing total: %+v", st.Phases)
	}
}

func TestSubmitUnknownGraph(t *testing.T) {
	e := New(testCatalog(t), Config{Workers: 1})
	defer e.Close()
	if _, err := e.Submit("nope", pipeline.Config{}); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("error = %v, want catalog.ErrNotFound", err)
	}
}

// TestBoundedQueueAdmission is the acceptance check: 50 concurrent
// submissions against a 2-worker engine with a 4-deep queue must accept
// exactly workers+depth jobs (workers hold one each, queue holds four)
// and reject every other submission with ErrQueueFull.
func TestBoundedQueueAdmission(t *testing.T) {
	run, release := blockingRun()
	e := New(testCatalog(t), Config{Workers: 2, QueueDepth: 4, run: run})
	defer e.Close()

	// Occupy both workers and let them park in the blocking run.
	var held []*Job
	for i := 0; i < 2; i++ {
		j, err := e.Submit("grid", pipeline.Config{})
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, j)
	}
	for _, j := range held {
		waitState(t, j, StateRunning)
	}

	const clients = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit("grid", pipeline.Config{})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted++
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if accepted != 4 || rejected != clients-4 {
		t.Fatalf("accepted %d rejected %d, want 4 / %d", accepted, rejected, clients-4)
	}
	close(release)
}

func TestCancelQueuedJob(t *testing.T) {
	run, release := blockingRun()
	defer close(release)
	e := New(testCatalog(t), Config{Workers: 1, QueueDepth: 4, run: run})
	defer e.Close()
	first, err := e.Submit("grid", pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateRunning)
	queued, err := e.Submit("grid", pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := e.Cancel(queued.ID())
	if err != nil {
		t.Fatal(err)
	}
	// A queued job flips to cancelled immediately, not when dequeued.
	if got := j.State(); got != StateCancelled {
		t.Fatalf("state = %v, want cancelled", got)
	}
	if _, err := e.Cancel("jnope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel(unknown) = %v, want ErrUnknownJob", err)
	}
}

// TestCancelRunningJobInterruptsLayout cancels a real coupled-ParHDE run
// mid-BFS-loop: the per-pivot ctx check must stop the layout long before
// it finishes all s traversals.
func TestCancelRunningJobInterruptsLayout(t *testing.T) {
	c := catalog.New(-1)
	if err := c.Add("slow", gen.Grid2D(250, 250), "test"); err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{Workers: 1})
	defer e.Close()
	j, err := e.Submit("slow", pipeline.Config{
		Layout: core.Options{Subspace: 50, Seed: 1, Coupled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	if _, err := e.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitState(t, j, StateCancelled)
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if j.Result() != nil {
		t.Fatal("cancelled job has a result")
	}
	if st := j.Status(); st.Error == "" {
		t.Fatal("cancelled job has no error in status")
	}
}

func TestFailedJobState(t *testing.T) {
	c := catalog.New(-1)
	// Two disconnected vertices: ParHDE rejects disconnected graphs.
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("split", g, "test"); err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{Workers: 1})
	defer e.Close()
	j, err := e.Submit("split", pipeline.Config{Layout: core.Options{Subspace: 4}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if st := j.Status(); !strings.Contains(st.Error, "not connected") {
		t.Fatalf("error = %q", st.Error)
	}
}

// TestShutdownNoGoroutineLeak is the acceptance check: after Close, the
// worker pool is gone and queued/running jobs are cancelled.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	run, release := blockingRun()
	defer close(release)
	e := New(testCatalog(t), Config{Workers: 4, QueueDepth: 8, run: run})
	var js []*Job
	for i := 0; i < 8; i++ {
		j, err := e.Submit("grid", pipeline.Config{})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	e.Close()
	for _, j := range js {
		if s := j.State(); !s.terminal() {
			t.Fatalf("job %s left in %v after Close", j.ID(), s)
		}
	}
	if _, err := e.Submit("grid", pipeline.Config{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
	// Give exiting goroutines a moment, then compare counts.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

func TestResultRetentionTTLAndCount(t *testing.T) {
	fast := func(ctx context.Context, g *graph.CSR, cfg pipeline.Config) (*pipeline.Result, error) {
		return &pipeline.Result{}, nil
	}
	e := New(testCatalog(t), Config{Workers: 1, ResultTTL: 50 * time.Millisecond, MaxResults: 2, run: fast})
	defer e.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := e.Submit("grid", pipeline.Config{})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		ids = append(ids, j.ID())
	}
	// Count budget: only the 2 newest finished jobs stay queryable.
	if _, ok := e.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived the count budget")
	}
	if _, ok := e.Get(ids[3]); !ok {
		t.Fatal("newest finished job was purged")
	}
	// TTL: after expiry everything finished is gone.
	time.Sleep(80 * time.Millisecond)
	if got := len(e.List()); got != 0 {
		t.Fatalf("%d jobs survived the TTL", got)
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	c := testCatalog(t)
	e := New(c, Config{Workers: 1, DataDir: dir})
	defer e.Close()
	j, err := e.Submit("grid", pipeline.Config{Layout: core.Options{Subspace: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	// finalize persists before OnDone/terminal state is visible? The
	// write happens on the worker before finalize returns, so poll
	// briefly for the file.
	path := filepath.Join(dir, j.ID()+".json")
	var b []byte
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b, err = os.ReadFile(path); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("persisted record: %v", err)
	}
	var rec struct {
		Status Status    `json:"status"`
		Dims   int       `json:"dims"`
		Coords []float64 `json:"coords"`
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status.ID != j.ID() || rec.Dims != 2 || len(rec.Coords) != 2*144 {
		t.Fatalf("record = id %s dims %d coords %d", rec.Status.ID, rec.Dims, len(rec.Coords))
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	run, release := blockingRun()
	e := New(testCatalog(t), Config{Workers: 1, QueueDepth: 1, Metrics: reg, run: run})
	defer e.Close()
	j1, err := e.Submit("grid", pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateRunning)
	if _, err := e.Submit("grid", pipeline.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("grid", pipeline.Config{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	close(release)
	waitState(t, j1, StateDone)
	if got := reg.Counter("jobs_submitted_total").Value(); got != 2 {
		t.Fatalf("jobs_submitted_total = %d", got)
	}
	if got := reg.Counter("jobs_rejected_total").Value(); got != 1 {
		t.Fatalf("jobs_rejected_total = %d", got)
	}
}
