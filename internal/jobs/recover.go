package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// Intent journaling: with DataDir set, SubmitSpec writes one
// <jobID>.intent.json before the submission returns, and finalize removes
// it when the job is genuinely resolved (done, failed, or cancelled by an
// explicit Cancel call). A worker that dies — crash or shutdown — with
// jobs queued or running therefore leaves exactly those jobs' intents
// behind, and the next process on the same DataDir replays them through
// PendingIntents. Together with the completed-job Record files this makes
// the versioned persistence directory the full wire/recovery format of a
// layout worker: records describe what finished, intents describe what
// must run again.

// Intent is the on-disk shape of a submitted-but-unresolved job
// (DataDir/<jobID>.intent.json).
type Intent struct {
	// Version is the schema version the intent was written with; the same
	// tolerance policy as Record applies (see ReadRecord).
	Version int `json:"version"`
	// ID is the job id the intent was journaled under.
	ID string `json:"id"`
	// Graph is the catalog name the job was submitted against.
	Graph string `json:"graph"`
	// Spec is the original validated request body, verbatim. The engine
	// treats it as opaque: the layer that built the submission (the HTTP
	// server) re-parses it on recovery, so the wire format and the
	// recovery format are the same bytes.
	Spec json.RawMessage `json:"spec"`
	// Created is the original submission time.
	Created time.Time `json:"created"`
}

// intentPath returns the intent file path for a job id inside dir.
func intentPath(dir, id string) string {
	return filepath.Join(dir, id+".intent.json")
}

// writeIntent journals j's spec under DataDir/<id>.intent.json, creating
// the directory on first use.
func (e *Engine) writeIntent(j *Job) error {
	if err := os.MkdirAll(e.cfg.DataDir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(Intent{
		Version: PersistVersion,
		ID:      j.id,
		Graph:   j.graph,
		Spec:    json.RawMessage(j.spec),
		Created: j.created,
	})
	if err != nil {
		return err
	}
	path := intentPath(e.cfg.DataDir, j.id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// removeIntent retires a resolved job's intent record (missing files are
// fine: the job may have been submitted without a spec, or by an engine
// without a DataDir).
func (e *Engine) removeIntent(id string) {
	if err := os.Remove(intentPath(e.cfg.DataDir, id)); err != nil && !os.IsNotExist(err) {
		if e.cfg.Logger != nil {
			e.cfg.Logger.Printf("jobs: removing intent %s: %v", id, err)
		}
	}
}

// RemoveIntent deletes the intent record for id inside dir. Recovery
// calls it after resubmitting (the resubmission journals a fresh intent
// under its new id) or after deciding an intent is unrecoverable.
func RemoveIntent(dir, id string) error {
	err := os.Remove(intentPath(dir, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// PendingIntents scans dir for journaled intents whose jobs never
// resolved, oldest first. An intent whose completed Record exists (the
// crash hit between persisting the result and retiring the intent) is
// skipped and cleaned up. Corrupt or future-versioned intent files are
// skipped — reported in errs, never fatal — so one bad record cannot
// block a worker from recovering the rest.
func PendingIntents(dir string) (pending []Intent, errs []error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.intent.json"))
	if err != nil {
		return nil, []error{err}
	}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		var in Intent
		if err := json.Unmarshal(b, &in); err != nil {
			errs = append(errs, fmt.Errorf("jobs: decoding %s: %w", filepath.Base(path), err))
			continue
		}
		if in.Version > PersistVersion {
			errs = append(errs, fmt.Errorf("jobs: intent %s has schema version %d, newer than supported %d",
				filepath.Base(path), in.Version, PersistVersion))
			continue
		}
		if in.ID == "" || in.Graph == "" {
			errs = append(errs, fmt.Errorf("jobs: intent %s missing id or graph", filepath.Base(path)))
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, in.ID+".json")); err == nil {
			// The job completed; only the intent cleanup was lost.
			_ = os.Remove(path)
			continue
		}
		pending = append(pending, in)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Created.Before(pending[j].Created) })
	return pending, errs
}

// seqRe extracts the numeric sequence from a persisted job filename
// (records and intents both embed the id, which ends in jNNNNNN).
var seqRe = regexp.MustCompile(`j(\d+)(?:\.intent)?\.json$`)

// maxPersistedSeq returns the highest id sequence number any record or
// intent in dir was written with under the given prefix, so a restarted
// engine continues numbering where its predecessor stopped.
func maxPersistedSeq(dir, prefix string) int64 {
	paths, err := filepath.Glob(filepath.Join(dir, prefix+"j*.json"))
	if err != nil {
		return 0
	}
	var max int64
	for _, path := range paths {
		m := seqRe.FindStringSubmatch(filepath.Base(path))
		if m == nil {
			continue
		}
		if n, err := strconv.ParseInt(m[1], 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}
