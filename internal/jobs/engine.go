// Package jobs is the async layout engine: layout requests become
// queued, cancellable, observable jobs instead of work done inline in an
// HTTP handler. A bounded FIFO queue with admission control feeds a
// fixed worker pool; each job runs the full pipeline under a
// context.Context so cancellation interrupts the engine mid-phase (and,
// in coupled mode, mid-BFS-loop). Finished jobs are retained under a
// TTL + count budget and can optionally be persisted to disk, and the
// engine exports queue/state/latency metrics through internal/obs.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workspace"
)

// Defaults for the zero-value Config.
const (
	DefaultQueueDepth = 64
	DefaultResultTTL  = time.Hour
	DefaultMaxResults = 256
)

// Sentinel errors; the HTTP layer maps these onto status codes.
var (
	// ErrQueueFull reports admission-control rejection (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed reports a submit after shutdown began (HTTP 503).
	ErrClosed = errors.New("jobs: engine closed")
	// ErrUnknownJob reports an unknown job id (HTTP 404).
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// runFunc executes one layout; overridable in tests to model slow or
// failing work without building giant graphs.
type runFunc func(ctx context.Context, g *graph.CSR, cfg pipeline.Config) (*pipeline.Result, error)

// Config tunes an Engine. The zero value gets sane defaults.
type Config struct {
	// Workers is the layout worker pool size (0 = GOMAXPROCS). Each
	// layout is internally parallel already, so more workers trade
	// per-job latency for throughput under concurrent load.
	Workers int
	// IDPrefix is prepended to every job id. A sharded deployment gives
	// each layout worker a distinct prefix ("w1-" → "w1-j000001") so the
	// router can map a job id back to the process that owns it.
	IDPrefix string
	// KernelWorkers is the per-layout kernel worker budget
	// (core.Options.Workers) applied to jobs that don't set their own.
	// It defaults to max(1, GOMAXPROCS / Workers): with the pool
	// saturated, Workers × KernelWorkers goroutines ≈ GOMAXPROCS,
	// instead of the P² oversubscription of every layout fanning its
	// kernels out GOMAXPROCS-wide.
	KernelWorkers int
	// QueueDepth bounds the jobs waiting for a worker; submissions
	// beyond it are rejected with ErrQueueFull (0 = DefaultQueueDepth).
	QueueDepth int
	// ResultTTL is how long finished jobs stay queryable
	// (0 = DefaultResultTTL, negative = forever).
	ResultTTL time.Duration
	// MaxResults caps retained finished jobs; the oldest are dropped
	// first (0 = DefaultMaxResults, negative = unbounded).
	MaxResults int
	// DataDir, when non-empty, receives one <jobID>.json per completed
	// job (status, phase timings, coordinates).
	DataDir string
	// Metrics receives queue/state/latency series (nil = private registry).
	Metrics *obs.Registry
	// OnDone, when non-nil, runs after every terminal transition, from
	// the worker goroutine (the server uses it to install fresh layouts).
	OnDone func(*Job)
	// Logger receives non-fatal engine warnings (nil = discard).
	Logger *log.Logger

	run runFunc // test seam; nil = pipeline.RunCtx
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.KernelWorkers <= 0 {
		c.KernelWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.KernelWorkers < 1 {
			c.KernelWorkers = 1
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.ResultTTL == 0 {
		c.ResultTTL = DefaultResultTTL
	}
	if c.MaxResults == 0 {
		c.MaxResults = DefaultMaxResults
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.run == nil {
		c.run = pipeline.RunCtx
	}
	return c
}

// Engine runs layout jobs over a catalog of graphs.
type Engine struct {
	cat *catalog.Catalog
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int64
	jobs     map[string]*Job
	finished []string // terminal job ids in completion order, for purging

	submitted *obs.Counter
	rejected  *obs.Counter
	byState   map[State]*obs.Counter
	running   *obs.Gauge
	latency   *obs.Histogram
}

// New starts an engine with cfg.Workers workers resolving graph names
// against cat. Call Close to stop it.
func New(cat *catalog.Catalog, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cat:        cat,
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       map[string]*Job{},
		submitted:  cfg.Metrics.Counter("jobs_submitted_total"),
		rejected:   cfg.Metrics.Counter("jobs_rejected_total"),
		running:    cfg.Metrics.Gauge("jobs_running"),
		latency:    cfg.Metrics.Histogram("job_duration_seconds"),
		byState: map[State]*obs.Counter{
			StateDone:      cfg.Metrics.Counter(`jobs_finished_total{state="done"}`),
			StateFailed:    cfg.Metrics.Counter(`jobs_finished_total{state="failed"}`),
			StateCancelled: cfg.Metrics.Counter(`jobs_finished_total{state="cancelled"}`),
		},
	}
	cfg.Metrics.GaugeFunc("jobs_queue_depth", func() float64 { return float64(len(e.queue)) })
	// Continue the id sequence past any persisted records of a previous
	// life so a restarted worker never reuses an id (and never overwrites
	// an old record on disk).
	if cfg.DataDir != "" {
		e.seq = maxPersistedSeq(cfg.DataDir, cfg.IDPrefix)
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Submit enqueues a layout of the named catalog graph. It resolves the
// graph immediately (so a later eviction cannot break a queued job) and
// rejects with ErrQueueFull when the queue is saturated.
func (e *Engine) Submit(graphName string, cfg pipeline.Config) (*Job, error) {
	return e.SubmitSpec(graphName, cfg, nil)
}

// SubmitSpec is Submit plus a self-contained, re-parseable description of
// the request (the validated API body, typically). With DataDir set the
// spec is journaled as an intent record before the job is enqueued, so a
// worker that dies mid-run can recover the job on restart (see
// PendingIntents). A nil spec submits without an intent: the job runs
// normally but is not crash-recoverable.
func (e *Engine) SubmitSpec(graphName string, cfg pipeline.Config, spec []byte) (*Job, error) {
	g, ok := e.cat.Get(graphName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", catalog.ErrNotFound, graphName)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.purgeLocked()
	e.seq++
	ctx, cancel := context.WithCancel(e.baseCtx)
	j := &Job{
		id:      fmt.Sprintf("%sj%06d", e.cfg.IDPrefix, e.seq),
		graph:   graphName,
		g:       g,
		spec:    spec,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
	}
	select {
	case e.queue <- j:
		// Journal the intent before Submit returns: once the caller holds
		// a 202, the job either completes or survives as a pending intent.
		// (A small file write under e.mu — submissions are not a hot path.)
		if spec != nil && e.cfg.DataDir != "" {
			if err := e.writeIntent(j); err != nil && e.cfg.Logger != nil {
				e.cfg.Logger.Printf("jobs: journaling intent for %s: %v", j.id, err)
			}
		}
		e.jobs[j.id] = j
		e.submitted.Inc()
		return j, nil
	default:
		cancel()
		e.rejected.Inc()
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, len(e.queue))
	}
}

// Get returns the job with the given id.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purgeLocked()
	j, ok := e.jobs[id]
	return j, ok
}

// List returns a snapshot of every retained job, oldest first.
func (e *Engine) List() []Status {
	e.mu.Lock()
	e.purgeLocked()
	js := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		js = append(js, j)
	}
	e.mu.Unlock()
	sort.Slice(js, func(i, k int) bool { return js[i].id < js[k].id })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of the job with the given id. A queued
// job flips to Cancelled immediately; a running job stops at its next
// context check and flips when its worker observes the cancellation.
// Cancelling a finished job is a no-op.
func (e *Engine) Cancel(id string) (*Job, error) {
	j, ok := e.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	// Mark this as an explicit caller cancellation before the context
	// fires: finalize distinguishes it from a shutdown-time cancellation,
	// which must keep the job's intent record for restart recovery.
	j.mu.Lock()
	j.userCancel = true
	j.mu.Unlock()
	// Queued → cancelled shortcut: if no worker has started the job,
	// finish it here so its state is visible immediately and the worker
	// skips it on dequeue. A running job is only finished by its worker,
	// which observes the context cancellation below.
	if j.cancelQueued() {
		e.finalize(j, false)
	}
	j.cancel()
	return j, nil
}

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the workers to exit. It is safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	e.baseCancel()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	// Each worker owns one workspace for the jobs it runs: consecutive
	// same-shaped layouts reuse warm buffers and the steady state performs
	// no O(n)-sized allocations. Worker-private ownership means no
	// cross-goroutine handoff and no locking on the hot path.
	ws := workspace.New()
	for j := range e.queue {
		e.runJob(j, ws)
	}
}

func (e *Engine) runJob(j *Job, ws *workspace.Workspace) {
	if !j.begin() {
		// Cancelled while queued; Cancel already finalized it.
		return
	}
	e.running.Add(1)
	ctx := core.WithPhaseNotify(j.ctx, j.setPhase)
	// Work on a copy of the config: j.cfg is read concurrently by
	// Status(), and the workspace is a per-run attachment, not part of
	// the submitted configuration. Only the plain ParHDE algorithm
	// honors a workspace (the others allocate privately).
	cfg := j.cfg
	if cfg.Algorithm == pipeline.ParHDE {
		cfg.Layout.Workspace = ws
	}
	// Cap each layout's kernel fan-out so Workers concurrent jobs don't
	// oversubscribe the machine; a job that set its own budget keeps it.
	if cfg.Layout.Workers <= 0 {
		cfg.Layout.Workers = e.cfg.KernelWorkers
	}
	res, err := e.cfg.run(ctx, j.g, cfg)
	e.running.Add(-1)
	switch {
	case err == nil:
		// A workspace-backed layout aliases the worker's scratch and is
		// only valid until the next job; deep-copy it so retained results
		// stay immutable.
		if cfg.Layout.Workspace != nil && res != nil && res.Layout != nil {
			res.Layout = res.Layout.Clone()
		}
		j.finish(StateDone, res, nil)
	case j.ctx.Err() != nil:
		j.finish(StateCancelled, nil, err)
	default:
		j.finish(StateFailed, nil, err)
	}
	e.finalize(j, true)
}

// finalize records metrics, persistence, and the OnDone hook for a job
// that just reached a terminal state. ran says a worker executed it (so
// the latency histogram only sees real runs, not queue-cancelled jobs).
func (e *Engine) finalize(j *Job, ran bool) {
	j.mu.Lock()
	state := j.state
	dur := j.finished.Sub(j.started)
	userCancel := j.userCancel
	j.mu.Unlock()
	if c, ok := e.byState[state]; ok {
		c.Inc()
	}
	if ran {
		e.latency.ObserveDuration(dur)
	}
	e.mu.Lock()
	e.finished = append(e.finished, j.id)
	e.mu.Unlock()
	if state == StateDone && e.cfg.DataDir != "" {
		if err := e.persist(j); err != nil && e.cfg.Logger != nil {
			e.cfg.Logger.Printf("jobs: persisting %s: %v", j.id, err)
		}
	}
	// Retire the intent record: the job reached a terminal state the
	// operator asked for (done, failed, or explicitly cancelled). The one
	// exception is a shutdown-time cancellation — the job was interrupted,
	// not resolved — whose intent must survive for restart recovery.
	if e.cfg.DataDir != "" && j.hasSpec() {
		if state != StateCancelled || userCancel {
			e.removeIntent(j.id)
		}
	}
	if e.cfg.OnDone != nil {
		e.cfg.OnDone(j)
	}
	j.cancel() // release the context's resources
}

// purgeLocked drops finished jobs past the TTL and beyond the retained
// count budget, oldest first. Caller holds e.mu.
func (e *Engine) purgeLocked() {
	ttl := e.cfg.ResultTTL
	now := time.Now()
	keep := e.finished[:0]
	for i, id := range e.finished {
		j, ok := e.jobs[id]
		if !ok {
			continue
		}
		excess := e.cfg.MaxResults > 0 && len(e.finished)-i > e.cfg.MaxResults
		expired := ttl > 0 && now.Sub(j.finishedAt()) > ttl
		if excess || expired {
			delete(e.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	e.finished = keep
}

// finishedAt returns the terminal timestamp (zero if still active).
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// PersistVersion is the schema version persist stamps into every record
// it writes. The schema evolves additively: bumping the version marks
// records whose fields a strictly older reader could misinterpret, not
// every new optional field.
const PersistVersion = 1

// Record is the on-disk shape of a completed job (DataDir/<jobID>.json).
type Record struct {
	// Version is the schema version the record was written with. Records
	// from before versioning decode as 0 and remain readable.
	Version int `json:"version"`
	// Status snapshots the job at completion time.
	Status Status `json:"status"`
	// Quality carries the layout quality metrics, when evaluated.
	Quality interface{} `json:"quality,omitempty"`
	// Dims is the layout dimensionality p.
	Dims int `json:"dims"`
	// Coords is column-major: coordinate k of all vertices occupies
	// Coords[k*n : (k+1)*n], matching linalg.Dense storage.
	Coords []float64 `json:"coords"`
}

// ReadRecord loads one persisted job record. The reader is tolerant by
// policy: legacy records without a version field (version 0) and any
// record up to PersistVersion are accepted, and unknown fields from
// additive newer writers are ignored. Records declaring a version beyond
// PersistVersion are rejected rather than silently misread.
func ReadRecord(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("jobs: decoding %s: %w", filepath.Base(path), err)
	}
	if rec.Version > PersistVersion {
		return nil, fmt.Errorf("jobs: record %s has schema version %d, newer than supported %d", filepath.Base(path), rec.Version, PersistVersion)
	}
	if rec.Dims > 0 && len(rec.Coords)%rec.Dims != 0 {
		return nil, fmt.Errorf("jobs: record %s has %d coords, not divisible by %d dims", filepath.Base(path), len(rec.Coords), rec.Dims)
	}
	return &rec, nil
}

// persist writes the finished job's result to DataDir/<id>.json.
func (e *Engine) persist(j *Job) error {
	res := j.Result()
	if res == nil || res.Layout == nil {
		return nil
	}
	if err := os.MkdirAll(e.cfg.DataDir, 0o755); err != nil {
		return err
	}
	rec := Record{
		Version: PersistVersion,
		Status:  j.Status(),
		Quality: res.Quality,
		Dims:    res.Layout.Dims(),
		Coords:  res.Layout.Coords.Data,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := filepath.Join(e.cfg.DataDir, j.id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
