package jobs

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pipeline"
)

// TestKernelWorkersDefault: the per-layout kernel budget defaults to
// GOMAXPROCS / Workers so a saturated pool lands near GOMAXPROCS total
// goroutines instead of Workers × GOMAXPROCS.
func TestKernelWorkersDefault(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	cases := []struct {
		workers, kernel, want int
	}{
		{4, 0, 1}, // full pool: serial kernels
		{2, 0, 2}, // half pool: split the machine
		{1, 0, 4}, // single worker: kernels get everything
		{8, 0, 1}, // oversubscribed pool still gets >= 1
		{2, 3, 3}, // explicit value wins
	}
	for _, c := range cases {
		got := Config{Workers: c.workers, KernelWorkers: c.kernel}.withDefaults().KernelWorkers
		if got != c.want {
			t.Errorf("Workers=%d KernelWorkers=%d: default %d, want %d", c.workers, c.kernel, got, c.want)
		}
	}
}

// TestKernelWorkersAppliedToJobs: a job that doesn't pin its own layout
// budget runs with the engine's KernelWorkers; a job that does keeps it.
func TestKernelWorkersAppliedToJobs(t *testing.T) {
	var sawDefault, sawExplicit int32
	e := New(testCatalog(t), Config{
		Workers:       1,
		KernelWorkers: 3,
		run: func(ctx context.Context, g *graph.CSR, cfg pipeline.Config) (*pipeline.Result, error) {
			if cfg.Layout.Workers == 3 {
				atomic.AddInt32(&sawDefault, 1)
			}
			if cfg.Layout.Workers == 2 {
				atomic.AddInt32(&sawExplicit, 1)
			}
			return &pipeline.Result{}, nil
		},
	})
	defer e.Close()
	j1, err := e.Submit("grid", pipeline.Config{SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := e.Submit("grid", pipeline.Config{Layout: core.Options{Workers: 2}, SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	waitState(t, j2, StateDone)
	if sawDefault != 1 || sawExplicit != 1 {
		t.Fatalf("engine budget applied %d times, explicit kept %d times; want 1 and 1", sawDefault, sawExplicit)
	}
}

// TestBoundedGoroutinesUnderSaturatedQueue is the oversubscription
// regression test: with the pool saturated by real layout jobs, the
// process goroutine count stays near baseline + Workers. Before the
// KernelWorkers default, every running layout fanned its kernels out
// GOMAXPROCS-wide, so W jobs cost up to W × GOMAXPROCS goroutines.
func TestBoundedGoroutinesUnderSaturatedQueue(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const workers = 4
	// KernelWorkers defaults to 4/4 = 1: layouts run their kernels
	// serially, so the only fan-out is the worker pool itself.
	e := New(testCatalog(t), Config{Workers: workers})
	defer e.Close()
	base := runtime.NumGoroutine()
	var jobsList []*Job
	for i := 0; i < 24; i++ {
		j, err := e.Submit("grid", pipeline.Config{SkipQuality: true})
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	peak := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		done := 0
		for _, j := range jobsList {
			if j.State() == StateDone {
				done++
			}
		}
		if done == len(jobsList) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %d/%d done", done, len(jobsList))
		}
		time.Sleep(200 * time.Microsecond)
	}
	// Slack covers the engine's own bookkeeping goroutines and the
	// runtime's background helpers — not kernel fan-out, which would add
	// multiples of GOMAXPROCS.
	const slack = 6
	if peak > base+workers+slack {
		t.Fatalf("goroutine peak %d with baseline %d and %d workers — kernel oversubscription?", peak, base, workers)
	}
}
