package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pipeline"
)

// fastRun is a run hook that completes immediately with a (tiny) layout,
// so the persistence path writes a real record.
func fastRun(ctx context.Context, g *graph.CSR, cfg pipeline.Config) (*pipeline.Result, error) {
	return &pipeline.Result{Layout: core.RandomLayout(g.NumV, 2, 1)}, nil
}

func intentFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.intent.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestIntentRetiredOnDone(t *testing.T) {
	dir := t.TempDir()
	e := New(testCatalog(t), Config{Workers: 1, DataDir: dir, run: fastRun})
	defer e.Close()
	j, err := e.SubmitSpec("grid", pipeline.Config{}, []byte(`{"graph":"grid"}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	e.Close()
	if left := intentFiles(t, dir); len(left) != 0 {
		t.Fatalf("intents left after done: %v", left)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID()+".json")); err != nil {
		t.Fatalf("done job has no record: %v", err)
	}
}

func TestIntentRetiredOnUserCancel(t *testing.T) {
	dir := t.TempDir()
	run, release := blockingRun()
	e := New(testCatalog(t), Config{Workers: 1, QueueDepth: 8, DataDir: dir, run: run})
	defer e.Close()
	defer close(release)
	// First job occupies the worker; the second stays queued.
	if _, err := e.SubmitSpec("grid", pipeline.Config{}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j2, err := e.SubmitSpec("grid", pipeline.Config{}, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(intentFiles(t, dir)) != 2 {
		t.Fatalf("want 2 intents journaled, have %v", intentFiles(t, dir))
	}
	if _, err := e.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateCancelled)
	if _, err := os.Stat(filepath.Join(dir, j2.ID()+".intent.json")); !os.IsNotExist(err) {
		t.Fatalf("user-cancelled job kept its intent (stat err=%v)", err)
	}
}

func TestIntentSurvivesShutdownAndRecovers(t *testing.T) {
	dir := t.TempDir()
	run, release := blockingRun()
	e := New(testCatalog(t), Config{Workers: 1, QueueDepth: 8, IDPrefix: "w1-", DataDir: dir, run: run})
	running, err := e.SubmitSpec("grid", pipeline.Config{}, []byte(`{"graph":"grid","subspace":8}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := e.SubmitSpec("grid", pipeline.Config{}, []byte(`{"graph":"grid","subspace":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(running.ID(), "w1-j") {
		t.Fatalf("id %q missing prefix", running.ID())
	}
	e.Close() // shutdown cancels both; neither was resolved
	close(release)

	pending, errs := PendingIntents(dir)
	if len(errs) != 0 {
		t.Fatalf("unexpected intent errors: %v", errs)
	}
	if len(pending) != 2 {
		t.Fatalf("want 2 pending intents, have %+v", pending)
	}
	// Oldest first, specs verbatim.
	if pending[0].ID != running.ID() || pending[1].ID != queued.ID() {
		t.Fatalf("pending order %q, %q", pending[0].ID, pending[1].ID)
	}
	if string(pending[0].Spec) != `{"graph":"grid","subspace":8}` || pending[0].Graph != "grid" {
		t.Fatalf("intent round-trip: %+v", pending[0])
	}

	// A new engine on the same dir continues the id sequence past both.
	e2 := New(testCatalog(t), Config{Workers: 1, IDPrefix: "w1-", DataDir: dir, run: fastRun})
	defer e2.Close()
	j, err := e2.SubmitSpec("grid", pipeline.Config{}, pending[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "w1-j000003" {
		t.Fatalf("restarted engine issued id %q, want w1-j000003", j.ID())
	}
	for _, in := range pending {
		if err := RemoveIntent(dir, in.ID); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, j, StateDone)
	e2.Close()
	if left := intentFiles(t, dir); len(left) != 0 {
		t.Fatalf("intents left after recovery: %v", left)
	}
}

func TestPendingIntentsToleratesCorruptAndFuture(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("j000001.intent.json", []byte(`{not json`))
	future, _ := json.Marshal(Intent{Version: PersistVersion + 1, ID: "j000002", Graph: "g"})
	write("j000002.intent.json", future)
	write("j000003.intent.json", []byte(`{"version":1,"graph":"g"}`)) // missing id
	ok, _ := json.Marshal(Intent{Version: PersistVersion, ID: "j000004", Graph: "g",
		Spec: json.RawMessage(`{}`), Created: time.Now()})
	write("j000004.intent.json", ok)
	// j000005 completed but its intent cleanup was lost mid-crash.
	done, _ := json.Marshal(Intent{Version: PersistVersion, ID: "j000005", Graph: "g", Spec: json.RawMessage(`{}`)})
	write("j000005.intent.json", done)
	write("j000005.json", []byte(`{"version":1}`))

	pending, errs := PendingIntents(dir)
	if len(pending) != 1 || pending[0].ID != "j000004" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(errs) != 3 {
		t.Fatalf("want 3 skip errors (corrupt, future, missing-id), got %v", errs)
	}
	if _, err := os.Stat(filepath.Join(dir, "j000005.intent.json")); !os.IsNotExist(err) {
		t.Fatal("completed job's stale intent not cleaned up")
	}
	if got := maxPersistedSeq(dir, ""); got != 5 {
		t.Fatalf("maxPersistedSeq = %d, want 5", got)
	}
}
