package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

func writeRecord(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadRecordCurrent(t *testing.T) {
	rec := Record{
		Version: PersistVersion,
		Status:  Status{ID: "j000001", State: "done"},
		Dims:    2,
		Coords:  []float64{1, 2, 3, 4},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(writeRecord(t, "cur.json", string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != PersistVersion || got.Status.ID != "j000001" || got.Dims != 2 || len(got.Coords) != 4 {
		t.Fatalf("record = %+v", got)
	}
}

func TestReadRecordLegacyWithoutVersion(t *testing.T) {
	// Pre-versioning writers emitted no version key; an additive newer
	// writer may emit keys this reader has never heard of. Both must load.
	path := writeRecord(t, "legacy.json",
		`{"status":{"id":"j000002","state":"done"},"dims":2,"coords":[1,2,3,4],"futureField":"ignored"}`)
	got, err := ReadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 0 {
		t.Fatalf("legacy record decoded version %d, want 0", got.Version)
	}
	if got.Status.ID != "j000002" || len(got.Coords) != 4 {
		t.Fatalf("record = %+v", got)
	}
}

func TestReadRecordRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"future version", `{"version":99,"dims":2,"coords":[1,2]}`, "newer than supported"},
		{"corrupt json", `{"version":1,"dims":`, "decoding"},
		{"coords not divisible by dims", `{"version":1,"dims":3,"coords":[1,2,3,4]}`, "not divisible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRecord(writeRecord(t, "rec.json", tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := ReadRecord(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
}

// TestWorkerWorkspaceReuseMatchesFresh runs the same job repeatedly
// through a single worker — whose workspace is dirtied by each run — and
// checks every retained layout is bit-identical to a fresh standalone
// pipeline run, proving the clone-out of workspace-backed results.
func TestWorkerWorkspaceReuseMatchesFresh(t *testing.T) {
	cfg := pipeline.Config{Layout: core.Options{Subspace: 8, Seed: 7}, SkipQuality: true}
	want, err := pipeline.Run(gen.Grid2D(12, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(testCatalog(t), Config{Workers: 1})
	defer e.Close()
	var jobsRun []*Job
	for i := 0; i < 3; i++ {
		j, err := e.Submit("grid", cfg)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		jobsRun = append(jobsRun, j)
	}
	for i, j := range jobsRun {
		got := j.Result().Layout.Coords.Data
		if len(got) != len(want.Layout.Coords.Data) {
			t.Fatalf("job %d: %d coords, want %d", i, len(got), len(want.Layout.Coords.Data))
		}
		for k := range got {
			if got[k] != want.Layout.Coords.Data[k] {
				t.Fatalf("job %d: coord %d = %v, fresh run has %v", i, k, got[k], want.Layout.Coords.Data[k])
			}
		}
	}
}
