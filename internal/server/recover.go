package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/jobs"
)

// Worker restart recovery. A layout worker's durable state is its
// DataDir: graph snapshots under graphs/ (written on upload) and the jobs
// engine's record/intent files. recoverState replays both at startup —
// graphs back into the catalog first, then every unresolved intent
// resubmitted through the same validation path as a live POST /jobs — so
// a worker that dies mid-job comes back owning the same shard with the
// interrupted work re-queued. Mutation-refinement jobs are the deliberate
// exception: their prior layout died with the process, so they are not
// journaled and a PATCH-heavy client re-drives them (see OPERATIONS.md).

// graphsDir is where uploaded graph snapshots live inside DataDir.
func (s *Server) graphsDir() string {
	return filepath.Join(s.cfg.DataDir, "graphs")
}

// logf writes a server-level (non-access) log line when logging is on.
func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Printf("server: "+format, args...)
	}
}

// recoverState rebuilds this worker's shard from DataDir; errors are
// logged, never fatal — a corrupt snapshot must not keep the worker down.
func (s *Server) recoverState() {
	restored, errs := s.cat.LoadDir(s.graphsDir())
	for _, err := range errs {
		s.logf("restoring graphs: %v", err)
	}
	if len(restored) > 0 {
		s.logf("restored %d graph(s) from %s", len(restored), s.graphsDir())
	}

	pending, ierrs := jobs.PendingIntents(s.cfg.DataDir)
	for _, err := range ierrs {
		s.logf("scanning intents: %v", err)
	}
	for _, in := range pending {
		if s.resubmitIntent(in) {
			// The resubmission journaled a fresh intent under its new id;
			// retiring the old one makes replay idempotent.
			if err := jobs.RemoveIntent(s.cfg.DataDir, in.ID); err != nil {
				s.logf("retiring replayed intent %s: %v", in.ID, err)
			}
		}
	}
}

// resubmitIntent replays one journaled submission. It reports whether the
// old intent should be retired: true on success and on permanent
// failures (malformed spec, vanished graph), false on transient ones
// (queue full) so the next restart tries again.
func (s *Server) resubmitIntent(in jobs.Intent) bool {
	dec := json.NewDecoder(bytes.NewReader(in.Spec))
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		s.logf("intent %s has an unreadable spec, dropping: %v", in.ID, err)
		return true
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err == nil {
		err = validateJobRequest(req)
	}
	if err != nil {
		s.logf("intent %s no longer validates, dropping: %v", in.ID, err)
		return true
	}
	j, err := s.eng.SubmitSpec(req.Graph, submitConfig(alg, req), in.Spec)
	switch {
	case err == nil:
		s.logf("recovered job %s as %s (graph %q)", in.ID, j.ID(), req.Graph)
		return true
	case errors.Is(err, jobs.ErrQueueFull):
		s.logf("intent %s not replayed, queue full; kept for next restart", in.ID)
		return false
	case errors.Is(err, catalog.ErrNotFound):
		s.logf("intent %s references vanished graph %q, dropping", in.ID, req.Graph)
		return true
	default:
		s.logf("intent %s not replayed: %v; kept for next restart", in.ID, err)
		return false
	}
}
