package server

import (
	"os"
	"strings"
	"testing"
)

// mdTableFirstColumn extracts the backticked first-column values of the
// markdown table found inside the named "## " section of doc. It fails
// the test if the section or table is missing, so a reorganized doc
// cannot silently disable the cross-check.
func mdTableFirstColumn(t *testing.T, doc, section string) []string {
	t.Helper()
	header := "## " + section
	i := strings.Index(doc, header)
	if i < 0 {
		t.Fatalf("section %q not found in doc", header)
	}
	body := doc[i+len(header):]
	if j := strings.Index(body, "\n## "); j >= 0 {
		body = body[:j]
	}
	var out []string
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue // prose, separator row, or header row
		}
		cell := strings.TrimPrefix(line, "| `")
		end := strings.Index(cell, "`")
		if end < 0 {
			t.Fatalf("unterminated code span in table row: %s", line)
		}
		out = append(out, cell[:end])
	}
	if len(out) == 0 {
		t.Fatalf("no table rows found under %q", header)
	}
	return out
}

// TestAPIDocRouteTableMatchesMux holds API.md's "## Route table" to the
// exact route set the server registers (RoutePatterns), in both
// directions: a route added without documentation fails, and a
// documented route that no longer exists fails.
func TestAPIDocRouteTableMatchesMux(t *testing.T) {
	raw, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatalf("read API.md: %v", err)
	}
	documented := mdTableFirstColumn(t, string(raw), "Route table")

	live := make(map[string]bool)
	for _, p := range RoutePatterns() {
		live[p] = true
	}
	docSet := make(map[string]bool)
	for _, p := range documented {
		if docSet[p] {
			t.Errorf("API.md documents route %q twice", p)
		}
		docSet[p] = true
	}

	for p := range live {
		if !docSet[p] {
			t.Errorf("route %q is registered but missing from API.md's Route table", p)
		}
	}
	for p := range docSet {
		if !live[p] {
			t.Errorf("API.md documents route %q which the server does not register", p)
		}
	}
}
