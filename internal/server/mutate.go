package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/dyngraph"
	"repro/internal/pipeline"
)

// PATCH /graphs/{name}: apply a batch of mutations to a (possibly
// just-promoted) dynamic graph, refresh the catalog snapshot, and queue a
// refinement layout. The response is 202 with the queued job — mutations
// are durable immediately (and visible to /graphs and future jobs), the
// picture catches up when the refinement installs and streams its delta.

// maxMutationBody bounds one PATCH body.
const maxMutationBody = 8 << 20

// mutationOp is one entry of the PATCH body's "mutations" array.
type mutationOp struct {
	// Op is one of "addEdge", "delEdge", "addVertices", "delVertex".
	Op string `json:"op"`
	U  int32  `json:"u"`
	V  int32  `json:"v"`
	// Count is the number of vertices an addVertices op appends.
	Count int `json:"count"`
}

// mutationRequest is the PATCH /graphs/{name} body.
type mutationRequest struct {
	Mutations []mutationOp `json:"mutations"`
}

// decodeMutations converts the wire ops to dyngraph mutations.
func decodeMutations(ops []mutationOp) ([]dyngraph.Mutation, error) {
	if len(ops) == 0 {
		return nil, errors.New("empty mutation batch")
	}
	out := make([]dyngraph.Mutation, len(ops))
	for i, op := range ops {
		m := dyngraph.Mutation{U: op.U, V: op.V, Count: op.Count}
		switch op.Op {
		case "addEdge":
			m.Op = dyngraph.AddEdge
		case "delEdge":
			m.Op = dyngraph.DelEdge
		case "addVertices":
			m.Op = dyngraph.AddVertices
		case "delVertex":
			m.Op = dyngraph.DelVertex
		default:
			return nil, fmt.Errorf("mutation %d: unknown op %q (have addEdge, delEdge, addVertices, delVertex)", i, op.Op)
		}
		out[i] = m
	}
	return out, nil
}

// handleGraphMutate is PATCH /graphs/{name}.
func (s *Server) handleGraphMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutationBody))
	dec.DisallowUnknownFields()
	var req mutationRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed mutation request: %w", err))
		return
	}
	batch, err := decodeMutations(req.Mutations)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	d, err := s.cat.Promote(name, dyngraph.Options{RebuildThreshold: s.cfg.RebuildThreshold})
	if err != nil {
		if errors.Is(err, dyngraph.ErrWeighted) {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeErr(w, codeFor(err), err)
		return
	}
	res, err := d.Apply(batch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Fold the delta into the catalog snapshot so this and every later
	// layout job runs against the mutated graph, and so the entry's
	// generation (part of every render-cache key) moves past any cached
	// tile of the old graph.
	if _, _, err := s.cat.Refresh(name); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	s.mutationsApplied.Add(int64(res.Applied))

	// Queue the refinement. The accumulated not-yet-installed delta rides
	// along as the warm-start staleness input; the current view's layout
	// (if any) is the prior.
	s.mu.Lock()
	s.pending[name] += int64(res.Applied)
	delta := s.pending[name]
	v := s.views[name]
	s.mu.Unlock()

	cfg := pipeline.Config{Algorithm: pipeline.ParHDE}
	if v != nil {
		cfg.Layout = v.opt
		cfg.Layout.Workspace = nil
		cfg.Layout.Prior = v.layout
		cfg.Layout.PriorDeltaEdges = delta
	}
	j, err := s.eng.Submit(name, cfg)
	if err != nil {
		// The mutation itself is applied and durable; only the refinement
		// could not be queued. 429/503 tell the client to retry the (now
		// delta-free) layout submission, not the mutation.
		writeErr(w, codeFor(err), fmt.Errorf("mutations applied but refinement not queued: %w", err))
		return
	}
	s.mu.Lock()
	s.jobDelta[j.ID()] = delta
	s.mu.Unlock()

	gen, _ := s.cat.Generation(name)
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"graph":      name,
		"applied":    res.Applied,
		"vertices":   res.NumV,
		"generation": gen,
		"job":        j.Status(),
	})
}
