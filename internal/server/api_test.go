package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// pathGraph returns an edge-list body for a path on n vertices.
func pathGraph(n int) string {
	var sb strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	return sb.String()
}

// gridGraph returns an edge-list body for a side×side grid (slow enough
// to layout, at s=50 coupled, that cancellation and queue tests can
// catch jobs in flight).
func gridGraph(side int) string {
	var sb strings.Builder
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				fmt.Fprintf(&sb, "%d %d\n", id(r, c), id(r, c+1))
			}
			if r+1 < side {
				fmt.Fprintf(&sb, "%d %d\n", id(r, c), id(r+1, c))
			}
		}
	}
	return sb.String()
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

func doReq(t *testing.T, method, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

func uploadGraph(t *testing.T, baseURL, name, body string) {
	t.Helper()
	resp, b := postJSON(t, baseURL+"/graphs?name="+name+"&format=edges", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, b)
	}
}

func jobStatus(t *testing.T, baseURL, id string) jobs.Status {
	t.Helper()
	resp, b := doReq(t, "GET", baseURL+"/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d: %s", id, resp.StatusCode, b)
	}
	var st jobs.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJobState(t *testing.T, baseURL, id, want string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := jobStatus(t, baseURL, id)
		if st.State == want {
			return st
		}
		if st.State == "failed" && want != "failed" {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return jobs.Status{}
}

func TestGraphUploadJobAndViews(t *testing.T) {
	_, ts := newTestServerPair(t, Config{Workers: 2})

	// The startup graph is a pinned catalog entry.
	resp, b := doReq(t, "GET", ts.URL+"/graphs")
	if resp.StatusCode != 200 || !bytes.Contains(b, []byte(`"name":"default"`)) {
		t.Fatalf("GET /graphs: %d %s", resp.StatusCode, b)
	}

	uploadGraph(t, ts.URL, "path", pathGraph(40))

	// Known but not laid out yet: 409, not 404 or 500.
	resp, _ = doReq(t, "GET", ts.URL+"/graphs/path/layout.png")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("layout before job: status %d, want 409", resp.StatusCode)
	}

	resp, b = postJSON(t, ts.URL+"/jobs", `{"graph":"path","subspace":8,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, b)
	}
	var st jobs.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	done := waitJobState(t, ts.URL, st.ID, "done")
	if len(done.Phases) == 0 {
		t.Fatalf("done job has no phase breakdown: %+v", done)
	}

	// The completed job installs the layout; the per-graph views go live
	// (poll briefly: install runs just after the state flips).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ = doReq(t, "GET", ts.URL+"/graphs/path/layout.png")
		if resp.StatusCode == 200 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("layout after job: status %d", resp.StatusCode)
	}
	resp, b = doReq(t, "GET", ts.URL+"/graphs/path/stats")
	if resp.StatusCode != 200 || !bytes.Contains(b, []byte(`"graph":"path"`)) {
		t.Fatalf("stats after job: %d %s", resp.StatusCode, b)
	}
	resp, _ = doReq(t, "GET", ts.URL+"/graphs/path/zoom.png?v=5&hops=3")
	if resp.StatusCode != 200 {
		t.Fatalf("zoom after job: status %d", resp.StatusCode)
	}
	// GET /jobs lists the job.
	resp, b = doReq(t, "GET", ts.URL+"/jobs")
	if resp.StatusCode != 200 || !bytes.Contains(b, []byte(st.ID)) {
		t.Fatalf("GET /jobs: %d %s", resp.StatusCode, b)
	}
}

func TestAPIStatusCodes(t *testing.T) {
	_, ts := newTestServerPair(t, Config{Workers: 1})

	cases := []struct {
		method, path, body string
		want               int
	}{
		// 404: unknown graph and job ids.
		{"GET", "/graphs/nope/layout.png", "", 404},
		{"GET", "/graphs/nope/stats", "", 404},
		{"GET", "/graphs/nope/zoom.png?v=0&hops=2", "", 404},
		{"GET", "/jobs/jnope", "", 404},
		{"DELETE", "/jobs/jnope", "", 404},
		{"DELETE", "/graphs/nope", "", 404},
		{"POST", "/jobs", `{"graph":"nope"}`, 404},
		// 400: malformed bodies and options.
		{"POST", "/jobs", `{not json`, 400},
		{"POST", "/jobs", `{"graph":"default","algorithm":"quantum"}`, 400},
		{"POST", "/jobs", `{"graph":"default","subspaec":10}`, 400}, // typo → unknown field
		{"POST", "/jobs", `{"graph":"default","dims":99}`, 400},
		{"POST", "/jobs", `{"subspace":10}`, 400},                    // missing graph
		{"POST", "/graphs?format=edges", "0 1\n", 400},               // missing name
		{"POST", "/graphs?name=x&format=nope", "0 1\n", 400},         // unknown format
		{"POST", "/graphs?name=bad/name&format=edges", "0 1\n", 400}, // invalid name
		{"POST", "/graphs?name=x&format=edges", "zz\n", 400},         // parse error
		{"GET", "/zoom.png?v=-1", "", 400},
		// 409: duplicates, pinned deletes, not-laid-out views.
		{"POST", "/graphs?name=default&format=edges", "0 1\n", 409},
		{"DELETE", "/graphs/default", "", 409},
	}
	for _, c := range cases {
		var resp *http.Response
		var b []byte
		switch c.method {
		case "POST":
			resp, b = postJSON(t, ts.URL+c.path, c.body)
		default:
			resp, b = doReq(t, c.method, ts.URL+c.path)
		}
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, b)
		}
	}

	// Upload + delete round trip: 201 then 204 then 404.
	uploadGraph(t, ts.URL, "tmp", pathGraph(5))
	if resp, b := doReq(t, "DELETE", ts.URL+"/graphs/tmp"); resp.StatusCode != 204 {
		t.Fatalf("DELETE /graphs/tmp: %d %s", resp.StatusCode, b)
	}
	if resp, _ := doReq(t, "DELETE", ts.URL+"/graphs/tmp"); resp.StatusCode != 404 {
		t.Fatalf("second DELETE: %d, want 404", resp.StatusCode)
	}
}

// TestQueueSaturation429 is the HTTP half of the bounded-queue acceptance
// criterion: 50 concurrent submissions against a 2-worker engine with a
// 4-deep queue must get 429s once the queue is full, and every response
// is either 202 or 429 — nothing blurs into a 500.
func TestQueueSaturation429(t *testing.T) {
	_, ts := newTestServerPair(t, Config{Workers: 2, QueueDepth: 4})
	uploadGraph(t, ts.URL, "slow", gridGraph(120))

	const clients = 50
	body := `{"graph":"slow","subspace":50,"seed":1,"coupled":true,"skipQuality":true}`
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	accepted, rejected := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("submission %d: status %d", i, c)
		}
	}
	// 2 workers + 4 queue slots bound concurrent acceptance; a handful
	// more can squeeze in if a job finishes mid-burst, but with multi-
	// second coupled layouts the rejection count must stay large.
	if accepted < 4 {
		t.Errorf("accepted %d, want >= 4", accepted)
	}
	if rejected < clients-10 {
		t.Errorf("rejected %d of %d, want >= %d", rejected, clients, clients-10)
	}
	t.Logf("accepted %d rejected %d", accepted, rejected)
}

// TestCancelRunningJobViaHTTP is the cancellation acceptance criterion:
// DELETE /jobs/{id} on a running job is observable as state "cancelled"
// via GET /jobs/{id}, quickly.
func TestCancelRunningJobViaHTTP(t *testing.T) {
	// The graph must run long enough that the job is still in flight when
	// the DELETE lands; the blocked/fused kernels keep shrinking layout
	// times, so keep this comfortably large.
	_, ts := newTestServerPair(t, Config{Workers: 1})
	uploadGraph(t, ts.URL, "slow", gridGraph(300))

	resp, b := postJSON(t, ts.URL+"/jobs",
		`{"graph":"slow","subspace":50,"seed":1,"coupled":true,"skipQuality":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, b)
	}
	var st jobs.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts.URL, st.ID, "running")

	if resp, b := doReq(t, "DELETE", ts.URL+"/jobs/"+st.ID); resp.StatusCode != 200 {
		t.Fatalf("DELETE /jobs/%s: %d %s", st.ID, resp.StatusCode, b)
	}
	start := time.Now()
	got := waitJobState(t, ts.URL, st.ID, "cancelled")
	if d := time.Since(start); d > 15*time.Second {
		t.Fatalf("cancellation visible after %v", d)
	}
	if got.Error == "" {
		t.Fatal("cancelled status carries no error")
	}
	// The slow graph never got a layout installed.
	resp, _ = doReq(t, "GET", ts.URL+"/graphs/slow/layout.png")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled graph layout: status %d, want 409", resp.StatusCode)
	}
}
